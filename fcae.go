// Package fcae is an LSM-tree key-value store with an FPGA compaction
// acceleration engine (FCAE), reproducing "FPGA-based Compaction Engine
// for Accelerating LSM-tree Key-Value Stores" (Sun, Yu, Zhou, Xue — ICDE
// 2020). The store is a from-scratch LevelDB-style database; the engine is
// a functional simulator of the paper's KCU1500 pipeline that executes the
// same merges the hardware would while accounting device cycles with the
// paper's pipeline model.
//
// Quickstart:
//
//	db, err := fcae.Open(dir, fcae.Options{Executor: fcae.MustNewEngineExecutor(fcae.MultiInputEngineConfig())})
//	...
//	db.Put([]byte("k"), []byte("v"))
//	v, err := db.Get([]byte("k"))
//
// Omitting Executor selects the software (CPU) compactor, the paper's
// baseline.
package fcae

import (
	"fcae/internal/compaction"
	"fcae/internal/core"
	"fcae/internal/lsm"
)

// Re-exported database types. See the lsm package for method documentation.
type (
	// DB is the key-value store handle.
	DB = lsm.DB
	// Options configure Open; the zero value uses the paper's defaults
	// (Table IV: 16-byte keys are a workload property; 4 KiB blocks,
	// leveling ratio 10, 2 MiB tables).
	Options = lsm.Options
	// Batch is an atomic group of writes.
	Batch = lsm.Batch
	// Iterator walks user keys in ascending order at a fixed snapshot.
	Iterator = lsm.Iterator
	// Snapshot is a consistent read view.
	Snapshot = lsm.Snapshot
	// Stats aggregates operational counters, including the engine's
	// modeled kernel and PCIe transfer time.
	Stats = lsm.Stats
)

// Engine types for configuring the FCAE backend.
type (
	// EngineConfig describes one synthesized engine: decoder lanes N,
	// value lane width V, AXI widths, clock, and the paper's pipeline
	// optimizations (key-value separation, index/data separation).
	EngineConfig = core.Config
	// EngineUtilization is a chip resource estimate (paper Table VII).
	EngineUtilization = core.Utilization
	// CompactionExecutor executes merge jobs; implemented by the CPU
	// reference executor and the FCAE engine executor.
	CompactionExecutor = compaction.Executor
)

// Errors re-exported from the store.
var (
	// ErrNotFound is returned by Get when a key has no value.
	ErrNotFound = lsm.ErrNotFound
	// ErrClosed is returned after Close.
	ErrClosed = lsm.ErrClosed
)

// Open opens (creating if necessary) a database in dir.
func Open(dir string, opts Options) (*DB, error) { return lsm.Open(dir, opts) }

// Repair rebuilds a database whose MANIFEST/CURRENT metadata is lost or
// corrupt from its table files alone. Run it BEFORE Open: opening a
// directory without metadata creates a fresh store and garbage-collects
// the orphaned tables. See lsm.Repair for semantics and limitations.
func Repair(dir string, opts Options) error { return lsm.Repair(dir, opts) }

// DefaultEngineConfig returns the paper's 2-input engine (V=16, W=64),
// which handles every level except L0 (paper §VII-B).
func DefaultEngineConfig() EngineConfig { return core.DefaultConfig() }

// MultiInputEngineConfig returns the 9-input engine of §VII-C (V=8, W_in=8
// so the design fits the chip), which also covers L0 compactions.
func MultiInputEngineConfig() EngineConfig { return core.MultiInputConfig() }

// NewEngineExecutor returns a compaction executor backed by a simulated
// FCAE engine with cfg. Pass it in Options.Executor; jobs whose fan-in
// exceeds cfg.N fall back to software automatically (paper §VI-A).
func NewEngineExecutor(cfg EngineConfig) (CompactionExecutor, error) {
	return core.NewExecutor(cfg)
}

// MustNewEngineExecutor is NewEngineExecutor, panicking on an invalid
// configuration. Intended for static configurations.
func MustNewEngineExecutor(cfg EngineConfig) CompactionExecutor {
	x, err := core.NewExecutor(cfg)
	if err != nil {
		panic(err)
	}
	return x
}

// CPUExecutor returns the software reference compactor (the paper's CPU
// baseline). It is also the implicit default when Options.Executor is nil.
func CPUExecutor() CompactionExecutor { return compaction.CPU{} }
