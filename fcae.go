// Package fcae is an LSM-tree key-value store with an FPGA compaction
// acceleration engine (FCAE), reproducing "FPGA-based Compaction Engine
// for Accelerating LSM-tree Key-Value Stores" (Sun, Yu, Zhou, Xue — ICDE
// 2020). The store is a from-scratch LevelDB-style database; the engine is
// a functional simulator of the paper's KCU1500 pipeline that executes the
// same merges the hardware would while accounting device cycles with the
// paper's pipeline model.
//
// The API groups into four areas:
//
//   - Database lifecycle: Open, Repair, DB and its Put/Get/Write/Iterator
//     methods, Batch, Snapshot. The zero Options value is a working
//     configuration (the paper's Table IV defaults); Options.Validate
//     rejects contradictory settings with a descriptive error instead of
//     silently clamping them.
//
//   - Engine configuration: EngineConfig describes a synthesized engine
//     (decoder lanes N, value lane width V, AXI widths, clock);
//     DefaultEngineConfig and MultiInputEngineConfig are the paper's two
//     build points, NewEngineExecutor turns one into a CompactionExecutor
//     for Options.Executor, and CPUExecutor is the software baseline.
//
//   - Observability: an EventListener set in Options receives typed
//     lifecycle events (flushes, compactions with per-phase Trace spans
//     and modeled kernel/PCIe transfer time, write stalls, table
//     lifecycle, background errors); DB.Metrics snapshots the named
//     counter/gauge/histogram registry alongside the flat DB.Stats.
//     Events are sequenced under the store mutex but delivered strictly
//     outside it — listeners may read DB state but must not invoke
//     blocking operations such as Flush or Close.
//
//   - Network service: OpenServer serves a store over TCP (pipelined
//     binary protocol, group-commit write coalescing, stall-aware write
//     admission, an HTTP admin plane with /metrics and /healthz);
//     DialServer returns the pooled pipelining Client. cmd/fcaeserver is
//     the standalone binary.
//
// Quickstart:
//
//	db, err := fcae.Open(dir, fcae.Options{Executor: fcae.MustNewEngineExecutor(fcae.MultiInputEngineConfig())})
//	...
//	db.Put([]byte("k"), []byte("v"))
//	v, err := db.Get([]byte("k"))
//
// Omitting Executor selects the software (CPU) compactor, the paper's
// baseline.
package fcae

import (
	"fcae/internal/compaction"
	"fcae/internal/core"
	"fcae/internal/dispatch"
	"fcae/internal/lsm"
	"fcae/internal/obs"
	"fcae/internal/server"
	"fcae/internal/server/client"
)

// Database lifecycle types. See the lsm package for method documentation.
type (
	// DB is the key-value store handle.
	DB = lsm.DB
	// Options configure Open; the zero value uses the paper's defaults
	// (Table IV: 16-byte keys are a workload property; 4 KiB blocks,
	// leveling ratio 10, 2 MiB tables). Options.Validate reports
	// contradictory settings; Open calls it for you.
	Options = lsm.Options
	// Batch is an atomic group of writes.
	Batch = lsm.Batch
	// Iterator walks user keys in ascending order at a fixed snapshot.
	Iterator = lsm.Iterator
	// Snapshot is a consistent read view.
	Snapshot = lsm.Snapshot
	// Stats aggregates operational counters, including the engine's
	// modeled kernel and PCIe transfer time.
	Stats = lsm.Stats
)

// Engine types for configuring the FCAE backend.
type (
	// EngineConfig describes one synthesized engine: decoder lanes N,
	// value lane width V, AXI widths, clock, and the paper's pipeline
	// optimizations (key-value separation, index/data separation).
	EngineConfig = core.Config
	// EngineUtilization is a chip resource estimate (paper Table VII).
	EngineUtilization = core.Utilization
	// CompactionExecutor executes merge jobs; implemented by the CPU
	// reference executor and the FCAE engine executor.
	CompactionExecutor = compaction.Executor
)

// Offload-scheduler types. Options.DispatchConfig consolidates the device
// channel pool, the shared flush/compaction worker-pool size, the fault
// injector and the scheduler tuning in one place (the former
// Options.{DeviceExecutors,CompactionWorkers,FaultInjector,Dispatch}
// fields remain as deprecated aliases). DB.DispatchStats reports the
// per-lane routing counters.
type (
	// DispatchConfig consolidates the offload scheduler's configuration:
	// device channels, shared worker-pool size, fault injection and
	// tuning. Set it in Options.DispatchConfig; it has its own Validate.
	DispatchConfig = lsm.DispatchConfig
	// DispatchTuning sets the offload scheduler's queue depth, device
	// deadline, retry policy, image budget, and the priority-lane
	// controls (AgingWait, DisablePriorityLanes). The zero value picks
	// working defaults.
	DispatchTuning = dispatch.Tuning
	// Lane identifies which dispatch lane completed a merge: LaneCPU,
	// DeviceLane(i), or the zero LaneNone for undispatched work.
	Lane = obs.Lane
	// RouteReason explains why a job routed to the CPU lane; the zero
	// RouteNone means it completed on a device.
	RouteReason = obs.RouteReason
	// Priority is a compaction job's dispatch priority: PriorityL0 jobs
	// dequeue ahead of PriorityDeep ones.
	Priority = obs.Priority
	// DispatchStats is a snapshot of the scheduler's routing counters:
	// device vs CPU jobs, per-lane totals, faults, timeouts, retries and
	// the per-reason fallback counts.
	DispatchStats = dispatch.Stats
	// FaultInjector decides, per device attempt, whether and how the
	// simulated device misbehaves. Set it in Options.FaultInjector.
	FaultInjector = dispatch.FaultInjector
	// Fault is one injected misbehavior: an error, a mid-merge write
	// failure, a stall or added latency.
	Fault = dispatch.Fault
	// FaultKind enumerates the injectable misbehaviors.
	FaultKind = dispatch.FaultKind
)

// Fault kinds for FaultInjector implementations.
const (
	// FaultNone leaves the attempt untouched.
	FaultNone = dispatch.FaultNone
	// FaultError fails the attempt immediately.
	FaultError = dispatch.FaultError
	// FaultWrite fails the attempt mid-merge after some output bytes.
	FaultWrite = dispatch.FaultWrite
	// FaultStall hangs the attempt until the device deadline cuts it.
	FaultStall = dispatch.FaultStall
	// FaultSlow adds latency without failing.
	FaultSlow = dispatch.FaultSlow
)

// Dispatch lanes, route reasons and priorities carried by compaction
// events, traces and DispatchStats.
const (
	// LaneNone marks undispatched work (trivial moves).
	LaneNone = obs.LaneNone
	// LaneCPU is the host software lane.
	LaneCPU = obs.LaneCPU

	// RouteNone: the job completed on a device.
	RouteNone = obs.RouteNone
	// RouteNoDevice: no device channels are configured.
	RouteNoDevice = obs.RouteNoDevice
	// RouteFanIn: the job exceeded the engine's input width.
	RouteFanIn = obs.RouteFanIn
	// RouteImageBudget: the input images exceeded the device image budget.
	RouteImageBudget = obs.RouteImageBudget
	// RouteArena: the job did not fit the per-channel staging arena.
	RouteArena = obs.RouteArena
	// RouteSaturated: every device queue slot was full at submission.
	RouteSaturated = obs.RouteSaturated
	// RouteDeviceFault: device attempts exhausted the retry budget.
	RouteDeviceFault = obs.RouteDeviceFault

	// PriorityDeep is the default priority for deep-level compactions.
	PriorityDeep = obs.PriorityDeep
	// PriorityL0 marks flush-driven L0 jobs; they dequeue first.
	PriorityL0 = obs.PriorityL0
)

// DeviceLane returns the Lane for device channel i (0-based).
func DeviceLane(i int) Lane { return obs.DeviceLane(i) }

// NewProbInjector returns a FaultInjector that faults a device attempt
// with the given probability (split evenly across error, mid-merge write
// failure and stall), deterministically per seed.
var NewProbInjector = dispatch.NewProbInjector

// NewScriptInjector returns a FaultInjector that replays the given fault
// script in order, then injects nothing. Intended for tests.
var NewScriptInjector = dispatch.NewScriptInjector

// Observability types. An EventListener set in Options.EventListener
// receives typed lifecycle events; DB.Metrics returns a Metrics snapshot
// of the named instrument registry. See the obs package for the full
// delivery contract.
type (
	// EventListener receives store lifecycle events. Embed NoopListener
	// to stay forward-compatible as events are added.
	EventListener = obs.EventListener
	// NoopListener implements EventListener with empty methods.
	NoopListener = obs.NoopListener
	// MultiListener fans events out to several listeners in order.
	MultiListener = obs.MultiListener

	// FlushBeginEvent announces an immutable-memtable flush.
	FlushBeginEvent = obs.FlushBeginEvent
	// FlushEndEvent reports a finished (or failed) flush.
	FlushEndEvent = obs.FlushEndEvent
	// CompactionBeginEvent announces a scheduled compaction.
	CompactionBeginEvent = obs.CompactionBeginEvent
	// CompactionEndEvent reports a finished compaction: inputs, outputs,
	// pairs merged/dropped, executor, modeled kernel + transfer time and
	// the per-phase Trace.
	CompactionEndEvent = obs.CompactionEndEvent
	// WriteStallBeginEvent announces a foreground write throttle.
	WriteStallBeginEvent = obs.WriteStallBeginEvent
	// WriteStallEndEvent reports the end of a write throttle.
	WriteStallEndEvent = obs.WriteStallEndEvent
	// TableCreatedEvent reports a new live table file.
	TableCreatedEvent = obs.TableCreatedEvent
	// TableDeletedEvent reports removal of an obsolete table file.
	TableDeletedEvent = obs.TableDeletedEvent
	// BackgroundErrorEvent reports a background failure or a recovered
	// listener panic.
	BackgroundErrorEvent = obs.BackgroundErrorEvent
	// TableInfo identifies one table file inside an event.
	TableInfo = obs.TableInfo
	// StallReason says why a write throttled.
	StallReason = obs.StallReason

	// Metrics is a typed snapshot of the store's metric registry, with
	// JSON and expvar-style text encoders.
	Metrics = obs.Metrics
	// HistogramSnapshot is one histogram's state inside a Metrics.
	HistogramSnapshot = obs.HistogramSnapshot
	// Trace holds a compaction's phase spans (open_runs, build_images,
	// merge, flush_table, manifest_apply).
	Trace = obs.Trace
	// Span is one recorded trace phase.
	Span = obs.Span
	// TraceWriter is an EventListener writing one JSON line per finished
	// compaction, the `dbbench -trace` format.
	TraceWriter = obs.TraceWriter
	// TraceRecord is the JSONL schema TraceWriter emits.
	TraceRecord = obs.TraceRecord
)

// Stall reasons carried by WriteStallBegin/End events.
const (
	// StallL0Slowdown is the soft 1 ms throttle when L0 backs up.
	StallL0Slowdown = obs.StallL0Slowdown
	// StallMemTableFull waits on the previous memtable flush.
	StallMemTableFull = obs.StallMemTableFull
	// StallL0Stop is the hard stop at the L0 file-count limit.
	StallL0Stop = obs.StallL0Stop
)

// NewTraceWriter returns a TraceWriter appending JSONL trace records to w.
// Set it as (or inside) Options.EventListener.
var NewTraceWriter = obs.NewTraceWriter

// Errors re-exported from the store.
var (
	// ErrNotFound is returned by Get when a key has no value.
	ErrNotFound = lsm.ErrNotFound
	// ErrClosed is returned after Close.
	ErrClosed = lsm.ErrClosed
)

// Network service types. OpenServer starts the TCP KV service (pipelined
// length-prefixed binary protocol with out-of-order responses, a
// group-commit write coalescer, stall-aware write admission, and an HTTP
// admin plane serving /metrics and /healthz); DialServer returns the
// pooled, pipelining client for it. cmd/fcaeserver wraps OpenServer as a
// standalone binary.
type (
	// Server is the TCP KV service handle. Close drains connections,
	// commits queued writes, and closes the store.
	Server = server.Server
	// ServerConfig tunes the server: listen addresses, in-flight and
	// group-commit bounds, commit window, frame and scan limits.
	ServerConfig = server.Config
	// Client is the pooled, pipelining network client.
	Client = client.Client
	// ClientOptions configures DialServer: address, pool size, pipeline
	// depth, dial and per-op timeouts.
	ClientOptions = client.Options
	// ClientBatch accumulates Put/Delete ops for one atomic Client.Write.
	ClientBatch = server.Batch
	// ServerError carries a server-side error message across the wire.
	ServerError = client.ServerError
	// KV is one key/value pair in a Client.Scan result.
	KV = server.KV
)

// Network service errors.
var (
	// ErrServerBusy reports a write shed by the server's admission
	// control (store stalled or commit queue full); retry after backoff.
	ErrServerBusy = server.ErrServerBusy
	// ErrServerClosing reports a request rejected because the server is
	// draining.
	ErrServerClosing = server.ErrServerClosing
	// ErrClientClosed reports an operation on a closed Client.
	ErrClientClosed = client.ErrClientClosed
	// ErrOpTimeout reports a client operation that outlived its deadline.
	ErrOpTimeout = client.ErrOpTimeout
)

// OpenServer opens (creating if necessary) the store at dir and serves
// it on cfg.Addr. The returned Server owns the store: Server.Close
// drains and closes it.
func OpenServer(dir string, opts Options, cfg ServerConfig) (*Server, error) {
	return server.Open(dir, opts, cfg)
}

// DialServer connects a client pool to a Server's address.
func DialServer(opts ClientOptions) (*Client, error) { return client.Dial(opts) }

// Open opens (creating if necessary) a database in dir. Contradictory
// options are rejected with a descriptive error (see Options.Validate).
func Open(dir string, opts Options) (*DB, error) { return lsm.Open(dir, opts) }

// Repair rebuilds a database whose MANIFEST/CURRENT metadata is lost or
// corrupt from its table files alone. Run it BEFORE Open: opening a
// directory without metadata creates a fresh store and garbage-collects
// the orphaned tables. See lsm.Repair for semantics and limitations.
func Repair(dir string, opts Options) error { return lsm.Repair(dir, opts) }

// DefaultEngineConfig returns the paper's 2-input engine (V=16, W=64),
// which handles every level except L0 (paper §VII-B).
func DefaultEngineConfig() EngineConfig { return core.DefaultConfig() }

// MultiInputEngineConfig returns the 9-input engine of §VII-C (V=8, W_in=8
// so the design fits the chip), which also covers L0 compactions.
func MultiInputEngineConfig() EngineConfig { return core.MultiInputConfig() }

// NewEngineExecutor returns a compaction executor backed by a simulated
// FCAE engine with cfg. Pass it in Options.Executor; jobs whose fan-in
// exceeds cfg.N fall back to software automatically (paper §VI-A). The
// executor also publishes engine_* gauges into DB.Metrics.
func NewEngineExecutor(cfg EngineConfig) (CompactionExecutor, error) {
	return core.NewExecutor(cfg)
}

// MustNewEngineExecutor is NewEngineExecutor, panicking on an invalid
// configuration. Intended for static configurations.
func MustNewEngineExecutor(cfg EngineConfig) CompactionExecutor {
	x, err := core.NewExecutor(cfg)
	if err != nil {
		panic(err)
	}
	return x
}

// CPUExecutor returns the software reference compactor (the paper's CPU
// baseline). It is also the implicit default when Options.Executor is nil.
func CPUExecutor() CompactionExecutor { return compaction.CPU{} }

// PipelinedCPUExecutor returns the software compactor with its
// stage-parallel data path enabled: per-run block read-ahead, the merge,
// and a pool of encoder workers run concurrently with byte-identical
// outputs. depth is the bounded queue depth per stage (<= 0 falls back
// to the sequential path); encoders <= 0 selects min(GOMAXPROCS, 4).
// Equivalent to setting DispatchTuning.PipelineDepth/PipelineEncoders
// without an explicit Executor.
func PipelinedCPUExecutor(depth, encoders int) CompactionExecutor {
	return compaction.CPU{Pipeline: compaction.PipelineConfig{Depth: depth, Encoders: encoders}}
}
