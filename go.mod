module fcae

go 1.22
