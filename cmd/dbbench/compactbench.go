package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"fcae/internal/compaction"
	"fcae/internal/keys"
	"fcae/internal/sstable"
	"fcae/internal/workload"
)

// The -compact-bench mode times a single N-run compaction end-to-end on
// the CPU lane, sequential vs pipelined, without a store around it: the
// runs are built in memory, outputs are discarded, and the pipeline's
// per-stage stall counters say where the remaining time goes.

// compactBenchSide is one data path's row in the report.
type compactBenchSide struct {
	WallNanos int64   `json:"wall_nanos"`
	OpsPerSec float64 `json:"ops_per_sec"` // merged pairs per second
	MBPerSec  float64 `json:"mb_per_sec"`  // input bytes per second
	PairsOut  int     `json:"pairs_out"`
	Outputs   int     `json:"outputs"`

	// Pipeline stage counters (pipelined side only).
	Blocks             int64 `json:"pipeline_blocks,omitempty"`
	PrefetchStalls     int64 `json:"prefetch_stalls,omitempty"`
	PrefetchStallNanos int64 `json:"prefetch_stall_nanos,omitempty"`
	EncodeStalls       int64 `json:"encode_stalls,omitempty"`
	EncodeStallNanos   int64 `json:"encode_stall_nanos,omitempty"`
	SubmitStalls       int64 `json:"submit_stalls,omitempty"`
	SubmitStallNanos   int64 `json:"submit_stall_nanos,omitempty"`
	SizeSyncs          int64 `json:"size_syncs,omitempty"`
}

// compactBenchReport is the -compact-bench -json schema, uploaded by CI
// as BENCH_compaction.json.
type compactBenchReport struct {
	Config     map[string]any   `json:"config"`
	InputBytes int64            `json:"input_bytes"`
	Sequential compactBenchSide `json:"sequential"`
	Pipelined  compactBenchSide `json:"pipelined"`
	Speedup    float64          `json:"speedup"`
}

type discardFile struct{}

func (discardFile) Write(p []byte) (int, error) { return len(p), nil }
func (discardFile) Close() error                { return nil }

type discardEnv struct{ next uint64 }

func (e *discardEnv) NewOutput() (uint64, io.WriteCloser, error) {
	e.next++
	return e.next, discardFile{}, nil
}

type sliceReaderAt []byte

func (s sliceReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(s)) {
		return 0, io.EOF
	}
	n := copy(p, s[off:])
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

// buildCompactJob builds `runs` sorted in-memory runs of `entries` keys
// each, interleaved across runs so the merge actually alternates.
func buildCompactJob(runs, entries, keySize, valueSize int, ratio float64) (*compaction.Job, error) {
	opts := sstable.Options{Compression: sstable.SnappyCompression}
	job := &compaction.Job{
		SmallestSnapshot: keys.MaxSeq,
		BottomLevel:      true,
		TableOpts:        opts,
		MaxOutputBytes:   2 << 20,
	}
	values := workload.NewValueGen(valueSize, ratio, 42)
	for r := 0; r < runs; r++ {
		var buf bytes.Buffer
		w := sstable.NewWriter(&buf, opts)
		for i := 0; i < entries; i++ {
			user := fmt.Sprintf("%0*d", keySize, i*runs+r)
			ik := keys.MakeInternal(nil, []byte(user), uint64(r*10_000_000+i), keys.KindSet)
			if err := w.Add(ik, values.Value()); err != nil {
				return nil, err
			}
		}
		if _, err := w.Finish(); err != nil {
			return nil, err
		}
		data := append([]byte(nil), buf.Bytes()...)
		job.Runs = append(job.Runs, []compaction.Table{{
			Num:  uint64(r + 1),
			Size: int64(len(data)),
			Data: sliceReaderAt(data),
		}})
	}
	return job, nil
}

func timeCompact(cpu compaction.CPU, job *compaction.Job) (compactBenchSide, error) {
	start := time.Now()
	res, err := cpu.Compact(job, &discardEnv{})
	if err != nil {
		return compactBenchSide{}, err
	}
	wall := time.Since(start)
	pl := res.Stats.Pipeline
	return compactBenchSide{
		WallNanos:          wall.Nanoseconds(),
		OpsPerSec:          float64(res.Stats.PairsIn) / wall.Seconds(),
		MBPerSec:           float64(job.InputBytes()) / 1e6 / wall.Seconds(),
		PairsOut:           res.Stats.PairsOut,
		Outputs:            len(res.Outputs),
		Blocks:             pl.Blocks,
		PrefetchStalls:     pl.PrefetchStalls,
		PrefetchStallNanos: pl.PrefetchStallNanos,
		EncodeStalls:       pl.EncodeStalls,
		EncodeStallNanos:   pl.EncodeStallNanos,
		SubmitStalls:       pl.SubmitStalls,
		SubmitStallNanos:   pl.SubmitStallNanos,
		SizeSyncs:          pl.SizeSyncs,
	}, nil
}

// runCompactBench executes the mode and, with -json, writes the report.
func runCompactBench(runs, entries, keySize, valueSize int, ratio float64, depth, encoders int, jsonPath string) error {
	if runs < 2 {
		return fmt.Errorf("-compact-runs must be >= 2, got %d", runs)
	}
	job, err := buildCompactJob(runs, entries, keySize, valueSize, ratio)
	if err != nil {
		return err
	}
	fmt.Printf("compact-bench: runs=%d entries/run=%d input=%.1f MB depth=%d encoders=%d\n",
		runs, entries, float64(job.InputBytes())/1e6, depth, encoders)

	// One warm-up each, then the timed pass, interleaved to share cache
	// state fairly.
	if _, err := timeCompact(compaction.CPU{}, job); err != nil {
		return err
	}
	pipeCPU := compaction.CPU{Pipeline: compaction.PipelineConfig{Depth: depth, Encoders: encoders}}
	if _, err := timeCompact(pipeCPU, job); err != nil {
		return err
	}
	seq, err := timeCompact(compaction.CPU{}, job)
	if err != nil {
		return err
	}
	pipe, err := timeCompact(pipeCPU, job)
	if err != nil {
		return err
	}

	speedup := float64(seq.WallNanos) / float64(pipe.WallNanos)
	fmt.Printf("sequential: %8.1f ms  %7.0f pairs/s  %6.2f MB/s  outputs=%d\n",
		float64(seq.WallNanos)/1e6, seq.OpsPerSec, seq.MBPerSec, seq.Outputs)
	fmt.Printf("pipelined:  %8.1f ms  %7.0f pairs/s  %6.2f MB/s  outputs=%d  (%.2fx)\n",
		float64(pipe.WallNanos)/1e6, pipe.OpsPerSec, pipe.MBPerSec, pipe.Outputs, speedup)
	fmt.Printf("stage stalls: prefetch=%d (%.1f ms) encode=%d (%.1f ms) submit=%d (%.1f ms) size-syncs=%d blocks=%d\n",
		pipe.PrefetchStalls, float64(pipe.PrefetchStallNanos)/1e6,
		pipe.EncodeStalls, float64(pipe.EncodeStallNanos)/1e6,
		pipe.SubmitStalls, float64(pipe.SubmitStallNanos)/1e6,
		pipe.SizeSyncs, pipe.Blocks)

	if jsonPath != "" {
		report := compactBenchReport{
			Config: map[string]any{
				"compact_runs":      runs,
				"compact_entries":   entries,
				"key_size":          keySize,
				"value_size":        valueSize,
				"compression_ratio": ratio,
				"pipeline_depth":    depth,
				"pipeline_encoders": encoders,
			},
			InputBytes: job.InputBytes(),
			Sequential: seq,
			Pipelined:  pipe,
			Speedup:    speedup,
		}
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("json report written to %s\n", jsonPath)
	}
	return nil
}
