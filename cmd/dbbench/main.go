// Command dbbench is a db_bench-style wall-clock benchmark against the
// real store: it measures this Go implementation on the local machine
// (unlike cmd/experiments, which regenerates the paper's numbers through
// the calibrated models).
//
// Usage:
//
//	dbbench [-db DIR] [-benchmarks fillseq,fillrandom,overwrite,readrandom,readseq,deleterandom]
//	        [-num 100000] [-value_size 128] [-key_size 16] [-backend cpu|fcae]
//	        [-engine_n 9] [-engine_v 8] [-compression_ratio 0.5]
//	        [-trace out.jsonl] [-metrics]
//
// -trace writes one JSON line per compaction (inputs, outputs, pairs,
// modeled kernel/PCIe time, phase spans); -metrics dumps the final metrics
// snapshot as JSON on stdout, machine-readable for BENCH_*.json tooling.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fcae"
	"fcae/internal/workload"
)

func main() {
	dir := flag.String("db", "", "database directory (default: a temp dir)")
	benches := flag.String("benchmarks", "fillseq,fillrandom,overwrite,readrandom,readseq,seekrandom,readwhilewriting", "comma-separated benchmark list")
	num := flag.Int("num", 100000, "operations per benchmark")
	valueSize := flag.Int("value_size", 128, "value length in bytes")
	keySize := flag.Int("key_size", 16, "key length in bytes")
	backend := flag.String("backend", "cpu", "compaction backend: cpu or fcae")
	engineN := flag.Int("engine_n", 9, "FCAE decoder lanes")
	engineV := flag.Int("engine_v", 8, "FCAE value lane width")
	ratio := flag.Float64("compression_ratio", 0.5, "value compressibility")
	tracePath := flag.String("trace", "", "write per-compaction JSONL trace records to this file")
	metrics := flag.Bool("metrics", false, "dump the final metrics snapshot as JSON")
	flag.Parse()

	if *dir == "" {
		d, err := os.MkdirTemp("", "fcae-dbbench-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(d)
		*dir = d
	}

	opts := fcae.Options{}
	if *backend == "fcae" {
		cfg := fcae.MultiInputEngineConfig()
		cfg.N = *engineN
		cfg.V = *engineV
		exec, err := fcae.NewEngineExecutor(cfg)
		if err != nil {
			fatal(err)
		}
		opts.Executor = exec
	}
	var tw *fcae.TraceWriter
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tw = fcae.NewTraceWriter(f)
		opts.EventListener = tw
	}
	db, err := fcae.Open(*dir, opts)
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	fmt.Printf("fcae dbbench: dir=%s backend=%s num=%d key=%dB value=%dB\n",
		*dir, *backend, *num, *keySize, *valueSize)

	for _, name := range strings.Split(*benches, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if err := runBench(db, name, *num, *keySize, *valueSize, *ratio); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}

	st := db.Stats()
	fmt.Printf("\nstats: flushes=%d compactions=%d (hw=%d swFallback=%d trivial=%d)\n",
		st.Flushes, st.Compactions, st.HWCompactions, st.SWFallbacks, st.TrivialMoves)
	fmt.Printf("compaction bytes: read=%d written=%d; modeled kernel=%s pcie=%s; stalls=%s\n",
		st.CompactionRead, st.CompactionWrite, st.KernelTime, st.TransferTime, st.StallTime)
	levels := db.LevelFiles()
	fmt.Printf("level files: %v\n", levels)

	if *metrics {
		out, err := db.Metrics().JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s\n", out)
	}
	if tw != nil {
		if err := tw.Err(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
		fmt.Printf("trace written to %s\n", *tracePath)
	}
}

func runBench(db *fcae.DB, name string, num, keySize, valueSize int, ratio float64) error {
	keys := workload.NewKeyGen(keySize)
	values := workload.NewValueGen(valueSize, ratio, 42)

	var seq workload.Sequence
	write := true
	switch name {
	case "fillseq":
		seq = &workload.Sequential{}
	case "fillrandom", "overwrite":
		seq = workload.NewUniform(uint64(num), 4711)
	case "readrandom":
		seq, write = workload.NewUniform(uint64(num), 1213), false
	case "readseq":
		seq, write = &workload.Sequential{}, false
	case "deleterandom":
		seq = workload.NewUniform(uint64(num), 99)
	case "seekrandom":
		return runSeekRandom(db, num, keySize)
	case "readwhilewriting":
		return runReadWhileWriting(db, num, keySize, valueSize, ratio)
	default:
		return fmt.Errorf("unknown benchmark %q", name)
	}

	start := time.Now()
	found := 0
	for i := 0; i < num; i++ {
		k := keys.Key(seq.Next())
		switch {
		case name == "deleterandom":
			if err := db.Delete(k); err != nil {
				return err
			}
		case write:
			if err := db.Put(k, values.Value()); err != nil {
				return err
			}
		default:
			if _, err := db.Get(k); err == nil {
				found++
			} else if err != fcae.ErrNotFound {
				return err
			}
		}
	}
	elapsed := time.Since(start)
	opsPerSec := float64(num) / elapsed.Seconds()
	mb := float64(num*(keySize+valueSize)) / 1e6
	extra := ""
	if !write {
		extra = fmt.Sprintf(" (found %d)", found)
	}
	fmt.Printf("%-12s : %10.3f micros/op; %8.1f ops/sec; %7.1f MB/s%s\n",
		name, float64(elapsed.Microseconds())/float64(num), opsPerSec, mb/elapsed.Seconds(), extra)
	return nil
}

// runSeekRandom measures iterator seek + short scan latency.
func runSeekRandom(db *fcae.DB, num, keySize int) error {
	keys := workload.NewKeyGen(keySize)
	seq := workload.NewUniform(uint64(num), 77)
	start := time.Now()
	entries := 0
	for i := 0; i < num/10; i++ { // seeks are pricier; 10% of the op count
		it, err := db.NewIterator()
		if err != nil {
			return err
		}
		for ok, n := it.Seek(keys.Key(seq.Next())), 0; ok && n < 10; ok, n = it.Next(), n+1 {
			entries++
		}
		if err := it.Close(); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("%-12s : %10.3f micros/op; %8.1f seeks/sec (%d entries)\n",
		"seekrandom", float64(elapsed.Microseconds())/float64(num/10),
		float64(num/10)/elapsed.Seconds(), entries)
	return nil
}

// runReadWhileWriting measures read latency with one writer running, the
// contention scenario the paper's offload targets.
func runReadWhileWriting(db *fcae.DB, num, keySize, valueSize int, ratio float64) error {
	keys := workload.NewKeyGen(keySize)
	values := workload.NewValueGen(valueSize, ratio, 5)
	stop := make(chan struct{})
	writerErr := make(chan error, 1)
	go func() {
		wkeys := workload.NewKeyGen(keySize)
		wseq := workload.NewUniform(uint64(num), 31)
		for {
			select {
			case <-stop:
				writerErr <- nil
				return
			default:
			}
			if err := db.Put(wkeys.Key(wseq.Next()), values.Value()); err != nil {
				writerErr <- err
				return
			}
		}
	}()
	seq := workload.NewUniform(uint64(num), 13)
	start := time.Now()
	found := 0
	for i := 0; i < num; i++ {
		if _, err := db.Get(keys.Key(seq.Next())); err == nil {
			found++
		} else if err != fcae.ErrNotFound {
			close(stop)
			<-writerErr
			return err
		}
	}
	elapsed := time.Since(start)
	close(stop)
	if err := <-writerErr; err != nil {
		return err
	}
	fmt.Printf("%-12s : %10.3f micros/op; %8.1f reads/sec (found %d)\n",
		"readwhilewriting", float64(elapsed.Microseconds())/float64(num),
		float64(num)/elapsed.Seconds(), found)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dbbench:", err)
	os.Exit(1)
}
