// Command dbbench is a db_bench-style wall-clock benchmark against the
// real store: it measures this Go implementation on the local machine
// (unlike cmd/experiments, which regenerates the paper's numbers through
// the calibrated models).
//
// Usage:
//
//	dbbench [-db DIR] [-benchmarks fillseq,fillrandom,overwrite,readrandom,readseq,deleterandom]
//	        [-num 100000] [-value_size 128] [-key_size 16] [-backend cpu|fcae]
//	        [-engine_n 9] [-engine_v 8] [-compression_ratio 0.5]
//	        [-compaction-workers 1] [-device-channels 1] [-fault-rate 0.0] [-fault-seed 1]
//	        [-priority-lanes=true] [-arena-bytes 0]
//	        [-pipeline-depth 0] [-pipeline-encoders 0]
//	        [-trace out.jsonl] [-metrics] [-json out.json]
//	dbbench -compact-bench [-compact-runs 2] [-compact-entries 100000] [-json out.json]
//
// -device-channels builds that many independent engine instances behind
// the offload scheduler (backend=fcae only); -compaction-workers runs
// that many background compactors against them; -fault-rate injects
// device faults (errors, mid-merge write failures, stalls) at the given
// probability, exercising the CPU-fallback path. -priority-lanes=false
// collapses the scheduler's two-priority queue back to a single FIFO;
// -arena-bytes sizes each channel's persistent device-memory staging
// arena (0 = modeled default, negative disables; backend=fcae only).
// -trace writes one JSON line per compaction (inputs, outputs, pairs,
// modeled kernel/PCIe time, phase spans); -metrics dumps the final
// metrics snapshot as JSON on stdout; -json writes a machine-readable
// result blob (config, per-benchmark ops/s, store stats, dispatch
// routing counters) to a file.
//
// -pipeline-depth enables the CPU lane's stage-parallel compaction data
// path (read-ahead -> merge -> encode) with the given queue depth;
// -pipeline-encoders sets its encoder worker count. -compact-bench
// skips the store entirely and times one N-run compaction end-to-end,
// sequential vs pipelined, reporting pairs/s, MB/s and per-stage stall
// counters (see compactbench.go).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fcae"
	"fcae/internal/workload"
)

// benchResult is one benchmark's row in the -json report.
type benchResult struct {
	Name        string  `json:"name"`
	Ops         int     `json:"ops"`
	MicrosPerOp float64 `json:"micros_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	Found       int     `json:"found,omitempty"`
}

// jsonReport is the -json output schema.
type jsonReport struct {
	Config     map[string]any     `json:"config"`
	Benchmarks []benchResult      `json:"benchmarks"`
	Stats      fcae.Stats         `json:"stats"`
	Dispatch   fcae.DispatchStats `json:"dispatch"`
	LevelFiles []int              `json:"level_files"`
}

func main() {
	dir := flag.String("db", "", "database directory (default: a temp dir)")
	benches := flag.String("benchmarks", "fillseq,fillrandom,overwrite,readrandom,readseq,seekrandom,readwhilewriting", "comma-separated benchmark list")
	num := flag.Int("num", 100000, "operations per benchmark")
	valueSize := flag.Int("value_size", 128, "value length in bytes")
	keySize := flag.Int("key_size", 16, "key length in bytes")
	backend := flag.String("backend", "cpu", "compaction backend: cpu or fcae")
	engineN := flag.Int("engine_n", 9, "FCAE decoder lanes")
	engineV := flag.Int("engine_v", 8, "FCAE value lane width")
	ratio := flag.Float64("compression_ratio", 0.5, "value compressibility")
	workers := flag.Int("compaction-workers", 1, "concurrent background compaction workers")
	channels := flag.Int("device-channels", 1, "device channels (engine instances) behind the scheduler; backend=fcae only")
	faultRate := flag.Float64("fault-rate", 0, "device fault injection probability [0,1); backend=fcae only")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector RNG seed")
	priorityLanes := flag.Bool("priority-lanes", true, "dispatch L0 jobs ahead of deep-level jobs (false = single FIFO)")
	arenaBytes := flag.Int64("arena-bytes", 0, "per-channel device staging arena size (0 = modeled default, <0 disables); backend=fcae only")
	tracePath := flag.String("trace", "", "write per-compaction JSONL trace records to this file")
	metrics := flag.Bool("metrics", false, "dump the final metrics snapshot as JSON")
	jsonPath := flag.String("json", "", "write a machine-readable result blob to this file")
	pipelineDepth := flag.Int("pipeline-depth", 0, "CPU compaction pipeline queue depth (0 = sequential reference path)")
	pipelineEncoders := flag.Int("pipeline-encoders", 0, "CPU compaction pipeline encoder workers (0 = min(GOMAXPROCS, 4))")
	compactBench := flag.Bool("compact-bench", false, "time one N-run compaction, sequential vs pipelined, then exit (no store)")
	compactRuns := flag.Int("compact-runs", 2, "input runs for -compact-bench")
	compactEntries := flag.Int("compact-entries", 100000, "entries per run for -compact-bench")
	flag.Parse()

	if *compactBench {
		depth := *pipelineDepth
		if depth <= 0 {
			depth = 4
		}
		if err := runCompactBench(*compactRuns, *compactEntries, *keySize, *valueSize, *ratio,
			depth, *pipelineEncoders, *jsonPath); err != nil {
			fatal(err)
		}
		return
	}

	if *dir == "" {
		d, err := os.MkdirTemp("", "fcae-dbbench-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(d)
		*dir = d
	}

	// The legacy -compaction-workers flag keeps its historical meaning (N
	// merge compactors implies N+1 pool workers); everything else feeds
	// the consolidated DispatchConfig.
	opts := fcae.Options{CompactionWorkers: *workers}
	opts.DispatchConfig.Tuning = fcae.DispatchTuning{
		DisablePriorityLanes: !*priorityLanes,
		PipelineDepth:        *pipelineDepth,
		PipelineEncoders:     *pipelineEncoders,
	}
	if *backend == "fcae" {
		cfg := fcae.MultiInputEngineConfig()
		cfg.N = *engineN
		cfg.V = *engineV
		cfg.StagingBytes = *arenaBytes
		if *channels < 1 {
			fatal(fmt.Errorf("-device-channels must be >= 1, got %d", *channels))
		}
		devs := make([]fcae.CompactionExecutor, *channels)
		for i := range devs {
			exec, err := fcae.NewEngineExecutor(cfg)
			if err != nil {
				fatal(err)
			}
			devs[i] = exec
		}
		opts.DispatchConfig.Devices = devs
		if *faultRate > 0 {
			opts.DispatchConfig.FaultInjector = fcae.NewProbInjector(*faultSeed, *faultRate)
		}
	} else {
		if *faultRate > 0 {
			fatal(fmt.Errorf("-fault-rate requires -backend fcae (no device to fault)"))
		}
		if *arenaBytes != 0 {
			fatal(fmt.Errorf("-arena-bytes requires -backend fcae (no device memory to stage)"))
		}
	}
	var tw *fcae.TraceWriter
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tw = fcae.NewTraceWriter(f)
		opts.EventListener = tw
	}
	db, err := fcae.Open(*dir, opts)
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	fmt.Printf("fcae dbbench: dir=%s backend=%s num=%d key=%dB value=%dB workers=%d channels=%d fault-rate=%g\n",
		*dir, *backend, *num, *keySize, *valueSize, *workers, *channels, *faultRate)

	var results []benchResult
	for _, name := range strings.Split(*benches, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		res, err := runBench(db, name, *num, *keySize, *valueSize, *ratio)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		results = append(results, res)
	}

	st := db.Stats()
	ds := db.DispatchStats()
	fmt.Printf("\nstats: flushes=%d compactions=%d (hw=%d swFallback=%d trivial=%d)\n",
		st.Flushes, st.Compactions, st.HWCompactions, st.SWFallbacks, st.TrivialMoves)
	fmt.Printf("compaction bytes: read=%d written=%d; modeled kernel=%s pcie=%s; stalls=%s\n",
		st.CompactionRead, st.CompactionWrite, st.KernelTime, st.TransferTime, st.StallTime)
	fmt.Printf("dispatch: device=%d cpu=%d lanes=%v faults=%d timeouts=%d retries=%d fallbacks(fanin=%d budget=%d arena=%d saturated=%d fault=%d) promotions=%d arena-bytes=%d\n",
		ds.DeviceJobs, ds.CPUJobs, ds.LaneJobs, ds.Faults, ds.Timeouts, ds.Retries,
		ds.FallbackFanIn, ds.FallbackBudget, ds.FallbackArena, ds.FallbackSaturated, ds.FallbackFault,
		ds.AgingPromotions, ds.ArenaBytes)
	if len(ds.ArenaHighWater) > 0 {
		fmt.Printf("arena high-water per channel: %v bytes\n", ds.ArenaHighWater)
	}
	levels := db.LevelFiles()
	fmt.Printf("level files: %v\n", levels)

	if *metrics {
		out, err := db.Metrics().JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s\n", out)
	}
	if *jsonPath != "" {
		report := jsonReport{
			Config: map[string]any{
				"backend":            *backend,
				"num":                *num,
				"key_size":           *keySize,
				"value_size":         *valueSize,
				"compression_ratio":  *ratio,
				"compaction_workers": *workers,
				"device_channels":    *channels,
				"fault_rate":         *faultRate,
				"fault_seed":         *faultSeed,
				"priority_lanes":     *priorityLanes,
				"arena_bytes":        *arenaBytes,
				"benchmarks":         *benches,
			},
			Benchmarks: results,
			Stats:      st,
			Dispatch:   ds,
			LevelFiles: levels[:],
		}
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("json report written to %s\n", *jsonPath)
	}
	if tw != nil {
		if err := tw.Err(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
		fmt.Printf("trace written to %s\n", *tracePath)
	}
}

func runBench(db *fcae.DB, name string, num, keySize, valueSize int, ratio float64) (benchResult, error) {
	keys := workload.NewKeyGen(keySize)
	values := workload.NewValueGen(valueSize, ratio, 42)

	var seq workload.Sequence
	write := true
	switch name {
	case "fillseq":
		seq = &workload.Sequential{}
	case "fillrandom", "overwrite":
		seq = workload.NewUniform(uint64(num), 4711)
	case "readrandom":
		seq, write = workload.NewUniform(uint64(num), 1213), false
	case "readseq":
		seq, write = &workload.Sequential{}, false
	case "deleterandom":
		seq = workload.NewUniform(uint64(num), 99)
	case "seekrandom":
		return runSeekRandom(db, num, keySize)
	case "readwhilewriting":
		return runReadWhileWriting(db, num, keySize, valueSize, ratio)
	default:
		return benchResult{}, fmt.Errorf("unknown benchmark %q", name)
	}

	start := time.Now()
	found := 0
	for i := 0; i < num; i++ {
		k := keys.Key(seq.Next())
		switch {
		case name == "deleterandom":
			if err := db.Delete(k); err != nil {
				return benchResult{}, err
			}
		case write:
			if err := db.Put(k, values.Value()); err != nil {
				return benchResult{}, err
			}
		default:
			if _, err := db.Get(k); err == nil {
				found++
			} else if err != fcae.ErrNotFound {
				return benchResult{}, err
			}
		}
	}
	elapsed := time.Since(start)
	res := benchResult{
		Name:        name,
		Ops:         num,
		MicrosPerOp: float64(elapsed.Microseconds()) / float64(num),
		OpsPerSec:   float64(num) / elapsed.Seconds(),
		MBPerSec:    float64(num*(keySize+valueSize)) / 1e6 / elapsed.Seconds(),
		Found:       found,
	}
	extra := ""
	if !write {
		extra = fmt.Sprintf(" (found %d)", found)
	}
	fmt.Printf("%-12s : %10.3f micros/op; %8.1f ops/sec; %7.1f MB/s%s\n",
		name, res.MicrosPerOp, res.OpsPerSec, res.MBPerSec, extra)
	return res, nil
}

// runSeekRandom measures iterator seek + short scan latency.
func runSeekRandom(db *fcae.DB, num, keySize int) (benchResult, error) {
	keys := workload.NewKeyGen(keySize)
	seq := workload.NewUniform(uint64(num), 77)
	start := time.Now()
	entries := 0
	for i := 0; i < num/10; i++ { // seeks are pricier; 10% of the op count
		it, err := db.NewIterator()
		if err != nil {
			return benchResult{}, err
		}
		for ok, n := it.Seek(keys.Key(seq.Next())), 0; ok && n < 10; ok, n = it.Next(), n+1 {
			entries++
		}
		if err := it.Close(); err != nil {
			return benchResult{}, err
		}
	}
	elapsed := time.Since(start)
	res := benchResult{
		Name:        "seekrandom",
		Ops:         num / 10,
		MicrosPerOp: float64(elapsed.Microseconds()) / float64(num/10),
		OpsPerSec:   float64(num/10) / elapsed.Seconds(),
		Found:       entries,
	}
	fmt.Printf("%-12s : %10.3f micros/op; %8.1f seeks/sec (%d entries)\n",
		"seekrandom", res.MicrosPerOp, res.OpsPerSec, entries)
	return res, nil
}

// runReadWhileWriting measures read latency with one writer running, the
// contention scenario the paper's offload targets.
func runReadWhileWriting(db *fcae.DB, num, keySize, valueSize int, ratio float64) (benchResult, error) {
	keys := workload.NewKeyGen(keySize)
	values := workload.NewValueGen(valueSize, ratio, 5)
	stop := make(chan struct{})
	writerErr := make(chan error, 1)
	go func() {
		wkeys := workload.NewKeyGen(keySize)
		wseq := workload.NewUniform(uint64(num), 31)
		for {
			select {
			case <-stop:
				writerErr <- nil
				return
			default:
			}
			if err := db.Put(wkeys.Key(wseq.Next()), values.Value()); err != nil {
				writerErr <- err
				return
			}
		}
	}()
	seq := workload.NewUniform(uint64(num), 13)
	start := time.Now()
	found := 0
	for i := 0; i < num; i++ {
		if _, err := db.Get(keys.Key(seq.Next())); err == nil {
			found++
		} else if err != fcae.ErrNotFound {
			close(stop)
			<-writerErr
			return benchResult{}, err
		}
	}
	elapsed := time.Since(start)
	close(stop)
	if err := <-writerErr; err != nil {
		return benchResult{}, err
	}
	res := benchResult{
		Name:        "readwhilewriting",
		Ops:         num,
		MicrosPerOp: float64(elapsed.Microseconds()) / float64(num),
		OpsPerSec:   float64(num) / elapsed.Seconds(),
		Found:       found,
	}
	fmt.Printf("%-12s : %10.3f micros/op; %8.1f reads/sec (found %d)\n",
		"readwhilewriting", res.MicrosPerOp, res.OpsPerSec, found)
	return res, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dbbench:", err)
	os.Exit(1)
}
