// Command experiments regenerates the paper's tables and figures and
// prints them in the paper's layout.
//
// Usage:
//
//	experiments [-run all|tableV|fig9|tableVI|fig10|fig11|tableVII|fig12|fig13|fig14|tableVIII|fig15|fig16|ablation]
//	            [-scale 1.0] [-maxgb 1024]
//
// -scale shrinks data sizes for quick runs (0.1 completes in seconds);
// -maxgb bounds the Fig 14 / Table VIII sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fcae/internal/bench"
)

func main() {
	run := flag.String("run", "all", "experiment to regenerate (comma separated), or 'all'")
	scale := flag.Float64("scale", 1.0, "data-size scale factor (1.0 = paper sizes)")
	maxGB := flag.Float64("maxgb", 1024, "largest Fig 14 data size in GB")
	format := flag.String("format", "text", "output format: text or csv")
	flag.Parse()

	sc := bench.Scale(*scale)
	want := map[string]bool{}
	for _, id := range strings.Split(strings.ToLower(*run), ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]

	emit := func(reports ...*bench.Report) {
		for _, r := range reports {
			if r == nil {
				continue
			}
			if all || want[strings.ToLower(r.ID)] {
				if *format == "csv" {
					fmt.Print(r.CSV())
				} else {
					fmt.Println(r.String())
				}
			}
		}
	}

	need := func(ids ...string) bool {
		if all {
			return true
		}
		for _, id := range ids {
			if want[id] {
				return true
			}
		}
		return false
	}

	if need("tablev", "fig9") {
		tv, f9 := bench.TableV(sc)
		emit(tv, f9)
	}
	if need("tablevi", "fig11") {
		tv, f11 := bench.TableVI(sc)
		emit(tv, f11)
	}
	if need("fig10") {
		emit(bench.Fig10(sc))
	}
	if need("tablevii") {
		emit(bench.TableVII())
	}
	if need("fig12", "fig13") {
		f12, f13 := bench.Fig12And13(sc)
		emit(f12, f13)
	}
	if need("fig14", "tableviii") {
		f14, t8 := bench.Fig14(sc, *maxGB)
		emit(f14, t8)
	}
	if need("fig15") {
		emit(bench.Fig15(sc))
	}
	if need("fig16") {
		emit(bench.Fig16(sc))
	}
	if need("ablation") {
		emit(bench.Ablations(sc), bench.ScheduleAblation(sc))
	}
	if need("nearstorage") {
		emit(bench.NearStorage(sc))
	}
	if need("stageutil") {
		emit(bench.StageUtilization(sc, bench.DefaultEngineConfig()))
	}
	if need("tiered") {
		emit(bench.TieredSim(sc))
	}
	if !all && len(want) == 0 {
		fmt.Fprintln(os.Stderr, "nothing selected; see -run")
		os.Exit(2)
	}
}
