// Command ycsb runs YCSB-style workloads (paper Table IX: Load, A-F)
// against the real store on the local machine.
//
// Usage:
//
//	ycsb [-db DIR] [-workloads load,a,b,c,d,e,f] [-records 100000]
//	     [-ops 100000] [-value_size 1024] [-backend cpu|fcae]
//	     [-compaction-workers 1] [-device-channels 1] [-fault-rate 0.0]
//	     [-priority-lanes=true] [-arena-bytes 0] [-metrics]
//
// -device-channels builds that many engine instances behind the offload
// scheduler (backend=fcae only); -compaction-workers runs that many
// background compactors; -fault-rate injects device faults at the given
// probability. -priority-lanes=false collapses the scheduler's
// two-priority queue to a single FIFO; -arena-bytes sizes each channel's
// persistent device-memory staging arena (0 = modeled default, negative
// disables; backend=fcae only). -metrics dumps the final metrics
// snapshot as JSON on stdout, machine-readable for BENCH_*.json tooling.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fcae"
	"fcae/internal/workload"
)

type spec struct {
	name                            string
	read, update, insert, scan, rmw float64
	latest                          bool
}

var specs = map[string]spec{
	"load": {name: "Load", insert: 1},
	"a":    {name: "A", read: 0.5, update: 0.5},
	"b":    {name: "B", read: 0.95, update: 0.05},
	"c":    {name: "C", read: 1},
	"d":    {name: "D", read: 0.95, insert: 0.05, latest: true},
	"e":    {name: "E", scan: 0.95, insert: 0.05},
	"f":    {name: "F", read: 0.5, rmw: 0.5},
}

const scanLength = 50

func main() {
	dir := flag.String("db", "", "database directory (default: a temp dir)")
	workloads := flag.String("workloads", "load,a,b,c,d,e,f", "comma-separated workload list")
	records := flag.Int("records", 100000, "records loaded before the mixed workloads")
	ops := flag.Int("ops", 100000, "operations per workload")
	valueSize := flag.Int("value_size", 1024, "value length in bytes")
	backend := flag.String("backend", "cpu", "compaction backend: cpu or fcae")
	workers := flag.Int("compaction-workers", 1, "concurrent background compaction workers")
	channels := flag.Int("device-channels", 1, "device channels (engine instances) behind the scheduler; backend=fcae only")
	faultRate := flag.Float64("fault-rate", 0, "device fault injection probability [0,1); backend=fcae only")
	priorityLanes := flag.Bool("priority-lanes", true, "dispatch L0 jobs ahead of deep-level jobs (false = single FIFO)")
	arenaBytes := flag.Int64("arena-bytes", 0, "per-channel device staging arena size (0 = modeled default, <0 disables); backend=fcae only")
	seed := flag.Int64("seed", 7, "RNG seed; every generator derives from this one stream")
	metrics := flag.Bool("metrics", false, "dump the final metrics snapshot as JSON")
	flag.Parse()

	if *dir == "" {
		d, err := os.MkdirTemp("", "fcae-ycsb-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(d)
		*dir = d
	}
	// -compaction-workers keeps its historical meaning (N merge compactors
	// implies N+1 pool workers); the rest feeds DispatchConfig.
	opts := fcae.Options{CompactionWorkers: *workers}
	opts.DispatchConfig.Tuning = fcae.DispatchTuning{DisablePriorityLanes: !*priorityLanes}
	if *backend == "fcae" {
		if *channels < 1 {
			fatal(fmt.Errorf("-device-channels must be >= 1, got %d", *channels))
		}
		cfg := fcae.MultiInputEngineConfig()
		cfg.StagingBytes = *arenaBytes
		devs := make([]fcae.CompactionExecutor, *channels)
		for i := range devs {
			devs[i] = fcae.MustNewEngineExecutor(cfg)
		}
		opts.DispatchConfig.Devices = devs
		if *faultRate > 0 {
			opts.DispatchConfig.FaultInjector = fcae.NewProbInjector(*seed, *faultRate)
		}
	} else {
		if *faultRate > 0 {
			fatal(fmt.Errorf("-fault-rate requires -backend fcae (no device to fault)"))
		}
		if *arenaBytes != 0 {
			fatal(fmt.Errorf("-arena-bytes requires -backend fcae (no device memory to stage)"))
		}
	}
	db, err := fcae.Open(*dir, opts)
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	fmt.Printf("fcae ycsb: backend=%s records=%d ops=%d value=%dB\n", *backend, *records, *ops, *valueSize)
	inserted := uint64(0)
	for _, name := range strings.Split(strings.ToLower(*workloads), ",") {
		name = strings.TrimSpace(name)
		sp, ok := specs[name]
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", name))
		}
		n := *ops
		if name == "load" {
			n = *records
		}
		if err := run(db, sp, n, *records, *valueSize, *seed, &inserted); err != nil {
			fatal(fmt.Errorf("workload %s: %w", sp.name, err))
		}
	}

	if *metrics {
		out, err := db.Metrics().JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s\n", out)
	}
}

func run(db *fcae.DB, sp spec, n, records, valueSize int, seed int64, inserted *uint64) error {
	rng := workload.NewRand(seed)
	keys := workload.NewKeyGen(16)
	values := workload.NewValueGenRand(valueSize, 0.5, rng)
	mix := workload.NewMixRand(sp.read, sp.update, sp.insert, sp.scan, sp.rmw, rng)
	var pick workload.Sequence
	latest := workload.NewLatestRand(uint64(records), rng)
	if sp.latest {
		pick = latest
	} else {
		pick = workload.NewZipfianRand(uint64(records), rng)
	}

	start := time.Now()
	var reads, writes, scans, notFound int
	for i := 0; i < n; i++ {
		op := mix.Next()
		if sp.name == "Load" {
			op = workload.OpInsert
		}
		switch op {
		case workload.OpRead:
			if _, err := db.Get(keys.Key(pick.Next())); err == fcae.ErrNotFound {
				notFound++
			} else if err != nil {
				return err
			}
			reads++
		case workload.OpUpdate:
			if err := db.Put(keys.Key(pick.Next()), values.Value()); err != nil {
				return err
			}
			writes++
		case workload.OpInsert:
			id := *inserted
			*inserted++
			latest.Observe(id)
			if err := db.Put(keys.Key(id), values.Value()); err != nil {
				return err
			}
			writes++
		case workload.OpScan:
			it, err := db.NewIterator()
			if err != nil {
				return err
			}
			for ok, c := it.Seek(keys.Key(pick.Next())), 0; ok && c < scanLength; ok, c = it.Next(), c+1 {
			}
			if err := it.Close(); err != nil {
				return err
			}
			scans++
		case workload.OpRMW:
			k := append([]byte(nil), keys.Key(pick.Next())...)
			if _, err := db.Get(k); err != nil && err != fcae.ErrNotFound {
				return err
			}
			if err := db.Put(k, values.Value()); err != nil {
				return err
			}
			reads++
			writes++
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("%-5s: %9.1f ops/sec (%d reads, %d writes, %d scans, %d not-found) in %s\n",
		sp.name, float64(n)/elapsed.Seconds(), reads, writes, scans, notFound, elapsed.Round(time.Millisecond))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ycsb:", err)
	os.Exit(1)
}
