// Command ycsb runs YCSB-style workloads (paper Table IX: Load, A-F)
// against the real store — in-process by default, or over the wire
// against a running fcaeserver with -addr.
//
// Usage:
//
//	ycsb [-db DIR] [-workloads load,a,b,c,d,e,f] [-records 100000]
//	     [-ops 100000] [-value_size 1024] [-backend cpu|fcae]
//	     [-compaction-workers 1] [-device-channels 1] [-fault-rate 0.0]
//	     [-priority-lanes=true] [-arena-bytes 0] [-metrics]
//	     [-addr host:port] [-admin host:port] [-client-conns 2] [-pipeline 128]
//
// -device-channels builds that many engine instances behind the offload
// scheduler (backend=fcae only); -compaction-workers runs that many
// background compactors; -fault-rate injects device faults at the given
// probability. -priority-lanes=false collapses the scheduler's
// two-priority queue to a single FIFO; -arena-bytes sizes each channel's
// persistent device-memory staging arena (0 = modeled default, negative
// disables; backend=fcae only). -metrics dumps the final metrics
// snapshot as JSON on stdout, machine-readable for BENCH_*.json tooling.
//
// Network mode: -addr drives the same workloads through the
// server/client wire protocol instead of the library; the store flags
// (-db, -backend, -compaction-workers, ...) belong to the server process
// and are rejected here. Writes shed by the server's admission control
// (busy) are retried with backoff and counted. With -metrics, the
// snapshot is scraped from the server's admin /metrics endpoint (-admin,
// default derived from -addr by incrementing the port), so it includes
// the server_* and dispatch_* instruments of the serving process.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"fcae"
	"fcae/internal/workload"
)

type spec struct {
	name                            string
	read, update, insert, scan, rmw float64
	latest                          bool
}

var specs = map[string]spec{
	"load": {name: "Load", insert: 1},
	"a":    {name: "A", read: 0.5, update: 0.5},
	"b":    {name: "B", read: 0.95, update: 0.05},
	"c":    {name: "C", read: 1},
	"d":    {name: "D", read: 0.95, insert: 0.05, latest: true},
	"e":    {name: "E", scan: 0.95, insert: 0.05},
	"f":    {name: "F", read: 0.5, rmw: 0.5},
}

const scanLength = 50

// kv abstracts the workload's target so one driver serves both the
// in-process store and the wire client.
type kv interface {
	Get(key []byte) ([]byte, error)
	Put(key, value []byte) error
	// Scan walks up to limit entries from start, returning how many it saw.
	Scan(start []byte, limit int) (int, error)
	// BusyRetries reports writes that were shed with ErrServerBusy and
	// retried (always 0 in-process).
	BusyRetries() int
}

// dbKV is the in-process backend.
type dbKV struct {
	db *fcae.DB
}

func (d *dbKV) Get(key []byte) ([]byte, error) { return d.db.Get(key) }

func (d *dbKV) Put(key, value []byte) error { return d.db.Put(key, value) }

func (d *dbKV) Scan(start []byte, limit int) (int, error) {
	it, err := d.db.NewIterator()
	if err != nil {
		return 0, err
	}
	n := 0
	for ok := it.Seek(start); ok && n < limit; ok = it.Next() {
		n++
	}
	if err := it.Close(); err != nil {
		return n, err
	}
	return n, nil
}

func (d *dbKV) BusyRetries() int { return 0 }

// netKV drives a remote fcaeserver. Busy shedding (the server's
// stall-aware admission control) is retried with exponential backoff —
// exactly what a production client does during a write stall.
type netKV struct {
	cl      *fcae.Client
	retries int
}

const maxBusyRetries = 200

func (n *netKV) Get(key []byte) ([]byte, error) { return n.cl.Get(key) }

func (n *netKV) Put(key, value []byte) error {
	backoff := time.Millisecond
	for attempt := 0; ; attempt++ {
		err := n.cl.Put(key, value)
		if !errors.Is(err, fcae.ErrServerBusy) || attempt >= maxBusyRetries {
			return err
		}
		n.retries++
		time.Sleep(backoff)
		if backoff < 64*time.Millisecond {
			backoff *= 2
		}
	}
}

func (n *netKV) Scan(start []byte, limit int) (int, error) {
	kvs, err := n.cl.Scan(start, limit)
	return len(kvs), err
}

func (n *netKV) BusyRetries() int { return n.retries }

func main() {
	dir := flag.String("db", "", "database directory (default: a temp dir); in-process mode only")
	workloads := flag.String("workloads", "load,a,b,c,d,e,f", "comma-separated workload list")
	records := flag.Int("records", 100000, "records loaded before the mixed workloads")
	ops := flag.Int("ops", 100000, "operations per workload")
	valueSize := flag.Int("value_size", 1024, "value length in bytes")
	backend := flag.String("backend", "cpu", "compaction backend: cpu or fcae; in-process mode only")
	workers := flag.Int("compaction-workers", 1, "concurrent background compaction workers; in-process mode only")
	channels := flag.Int("device-channels", 1, "device channels (engine instances) behind the scheduler; backend=fcae only")
	faultRate := flag.Float64("fault-rate", 0, "device fault injection probability [0,1); backend=fcae only")
	priorityLanes := flag.Bool("priority-lanes", true, "dispatch L0 jobs ahead of deep-level jobs (false = single FIFO)")
	arenaBytes := flag.Int64("arena-bytes", 0, "per-channel device staging arena size (0 = modeled default, <0 disables); backend=fcae only")
	seed := flag.Int64("seed", 7, "RNG seed; every generator derives from this one stream")
	metrics := flag.Bool("metrics", false, "dump the final metrics snapshot as JSON")
	addr := flag.String("addr", "", "fcaeserver KV address; set to run over the wire instead of in-process")
	adminAddr := flag.String("admin", "", "fcaeserver admin address for -metrics scraping (default: -addr's port + 1)")
	clientConns := flag.Int("client-conns", 2, "network mode: client connection-pool size")
	pipeline := flag.Int("pipeline", 128, "network mode: max outstanding requests per connection")
	flag.Parse()

	var store kv
	if *addr != "" {
		for flagName, bad := range map[string]bool{
			"-db":                 *dir != "",
			"-backend":            *backend != "cpu",
			"-compaction-workers": *workers != 1,
			"-device-channels":    *channels != 1,
			"-fault-rate":         *faultRate != 0,
			"-arena-bytes":        *arenaBytes != 0,
			"-priority-lanes":     !*priorityLanes,
		} {
			if bad {
				fatal(fmt.Errorf("%s configures the store and conflicts with -addr: set it on the fcaeserver process", flagName))
			}
		}
		cl, err := fcae.DialServer(fcae.ClientOptions{
			Addr:        *addr,
			Conns:       *clientConns,
			MaxPipeline: *pipeline,
		})
		if err != nil {
			fatal(err)
		}
		defer cl.Close()
		store = &netKV{cl: cl}
		fmt.Printf("fcae ycsb: addr=%s records=%d ops=%d value=%dB\n", *addr, *records, *ops, *valueSize)
	} else {
		if *dir == "" {
			d, err := os.MkdirTemp("", "fcae-ycsb-")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(d)
			*dir = d
		}
		// -compaction-workers keeps its historical meaning (N merge compactors
		// implies N+1 pool workers); the rest feeds DispatchConfig.
		opts := fcae.Options{CompactionWorkers: *workers}
		opts.DispatchConfig.Tuning = fcae.DispatchTuning{DisablePriorityLanes: !*priorityLanes}
		if *backend == "fcae" {
			if *channels < 1 {
				fatal(fmt.Errorf("-device-channels must be >= 1, got %d", *channels))
			}
			cfg := fcae.MultiInputEngineConfig()
			cfg.StagingBytes = *arenaBytes
			devs := make([]fcae.CompactionExecutor, *channels)
			for i := range devs {
				devs[i] = fcae.MustNewEngineExecutor(cfg)
			}
			opts.DispatchConfig.Devices = devs
			if *faultRate > 0 {
				opts.DispatchConfig.FaultInjector = fcae.NewProbInjector(*seed, *faultRate)
			}
		} else {
			if *faultRate > 0 {
				fatal(fmt.Errorf("-fault-rate requires -backend fcae (no device to fault)"))
			}
			if *arenaBytes != 0 {
				fatal(fmt.Errorf("-arena-bytes requires -backend fcae (no device memory to stage)"))
			}
		}
		db, err := fcae.Open(*dir, opts)
		if err != nil {
			fatal(err)
		}
		defer db.Close()
		store = &dbKV{db: db}
		fmt.Printf("fcae ycsb: backend=%s records=%d ops=%d value=%dB\n", *backend, *records, *ops, *valueSize)
	}

	inserted := uint64(0)
	for _, name := range strings.Split(strings.ToLower(*workloads), ",") {
		name = strings.TrimSpace(name)
		sp, ok := specs[name]
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", name))
		}
		n := *ops
		if name == "load" {
			n = *records
		}
		if err := run(store, sp, n, *records, *valueSize, *seed, &inserted); err != nil {
			fatal(fmt.Errorf("workload %s: %w", sp.name, err))
		}
	}

	if *metrics {
		out, err := fetchMetrics(store, *addr, *adminAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s\n", out)
	}
}

// fetchMetrics returns the final metrics snapshot: the in-process
// registry, or (network mode) the serving process's /metrics document.
func fetchMetrics(store kv, addr, adminAddr string) ([]byte, error) {
	d, ok := store.(*dbKV)
	if ok {
		return d.db.Metrics().JSON()
	}
	if adminAddr == "" {
		derived, err := deriveAdminAddr(addr)
		if err != nil {
			return nil, fmt.Errorf("-metrics with -addr needs -admin (%w)", err)
		}
		adminAddr = derived
	}
	cl := &http.Client{Timeout: 10 * time.Second}
	resp, err := cl.Get("http://" + adminAddr + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("scrape /metrics: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape /metrics: status %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// deriveAdminAddr mirrors fcaeserver's default port layout (admin = KV
// port + 1) when -admin isn't given.
func deriveAdminAddr(addr string) (string, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", err
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return "", err
	}
	return net.JoinHostPort(host, strconv.Itoa(p+1)), nil
}

func run(store kv, sp spec, n, records, valueSize int, seed int64, inserted *uint64) error {
	rng := workload.NewRand(seed)
	keys := workload.NewKeyGen(16)
	values := workload.NewValueGenRand(valueSize, 0.5, rng)
	mix := workload.NewMixRand(sp.read, sp.update, sp.insert, sp.scan, sp.rmw, rng)
	var pick workload.Sequence
	latest := workload.NewLatestRand(uint64(records), rng)
	if sp.latest {
		pick = latest
	} else {
		pick = workload.NewZipfianRand(uint64(records), rng)
	}

	startRetries := store.BusyRetries()
	start := time.Now()
	var reads, writes, scans, notFound int
	for i := 0; i < n; i++ {
		op := mix.Next()
		if sp.name == "Load" {
			op = workload.OpInsert
		}
		switch op {
		case workload.OpRead:
			if _, err := store.Get(keys.Key(pick.Next())); errors.Is(err, fcae.ErrNotFound) {
				notFound++
			} else if err != nil {
				return err
			}
			reads++
		case workload.OpUpdate:
			if err := store.Put(keys.Key(pick.Next()), values.Value()); err != nil {
				return err
			}
			writes++
		case workload.OpInsert:
			id := *inserted
			*inserted++
			latest.Observe(id)
			if err := store.Put(keys.Key(id), values.Value()); err != nil {
				return err
			}
			writes++
		case workload.OpScan:
			if _, err := store.Scan(keys.Key(pick.Next()), scanLength); err != nil {
				return err
			}
			scans++
		case workload.OpRMW:
			k := append([]byte(nil), keys.Key(pick.Next())...)
			if _, err := store.Get(k); err != nil && !errors.Is(err, fcae.ErrNotFound) {
				return err
			}
			if err := store.Put(k, values.Value()); err != nil {
				return err
			}
			reads++
			writes++
		}
	}
	elapsed := time.Since(start)
	extra := ""
	if r := store.BusyRetries() - startRetries; r > 0 {
		extra = fmt.Sprintf(", %d busy-retries", r)
	}
	fmt.Printf("%-5s: %9.1f ops/sec (%d reads, %d writes, %d scans, %d not-found%s) in %s\n",
		sp.name, float64(n)/elapsed.Seconds(), reads, writes, scans, notFound, extra, elapsed.Round(time.Millisecond))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ycsb:", err)
	os.Exit(1)
}
