// Command sstdump inspects an SSTable file: its block layout (the
// structures the engine's Decoder walks, paper §II-B) and optionally every
// entry.
//
// Usage:
//
//	sstdump [-entries] [-blocks] FILE.ldb ...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"fcae/internal/keys"
	"fcae/internal/sstable"
)

func main() {
	entries := flag.Bool("entries", false, "dump every key-value entry")
	blocks := flag.Bool("blocks", true, "dump the data block layout")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: sstdump [-entries] [-blocks] FILE.ldb|DBDIR ...")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		st, err := os.Stat(path)
		if err == nil && st.IsDir() {
			// Dump every table in a database directory.
			matches, _ := filepath.Glob(filepath.Join(path, "*.ldb"))
			sort.Strings(matches)
			for _, m := range matches {
				if err := dump(m, *blocks, *entries); err != nil {
					fmt.Fprintf(os.Stderr, "sstdump: %s: %v\n", m, err)
					os.Exit(1)
				}
			}
			continue
		}
		if err := dump(path, *blocks, *entries); err != nil {
			fmt.Fprintf(os.Stderr, "sstdump: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
}

func dump(path string, blocks, entries bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	r, err := sstable.NewReader(f, st.Size(), sstable.Options{}, nil, 0)
	if err != nil {
		return err
	}

	fmt.Printf("%s: %d bytes\n", path, st.Size())
	if blocks {
		layout, err := r.Layout()
		if err != nil {
			return err
		}
		for i, b := range layout.Blocks {
			p, ok := keys.Parse(b.IndexKey)
			sep := fmt.Sprintf("%q", b.IndexKey)
			if ok {
				sep = p.String()
			}
			fmt.Printf("  block %4d: %6d bytes (%d decoded, %s)  %4d entries  %2d restarts  sep=%s\n",
				i, b.PayloadLen, b.ContentLen, b.Compression, b.Entries, b.Restarts, sep)
		}
		fmt.Printf("  %d data blocks: %d payload bytes (%d decoded), %d entries, %d restarts\n",
			len(layout.Blocks), layout.PayloadBytes, layout.ContentBytes,
			layout.Entries, layout.Restarts)
	}

	it := r.NewIterator()
	n := 0
	var first, last keys.ParsedKey
	for it.SeekToFirst(); it.Valid(); it.Next() {
		p, ok := keys.Parse(it.Key())
		if !ok {
			return fmt.Errorf("unparseable internal key at entry %d", n)
		}
		if n == 0 {
			first = cloneParsed(p)
		}
		last = cloneParsed(p)
		if entries {
			fmt.Printf("  %s = %q\n", p, it.Value())
		}
		n++
	}
	if err := it.Error(); err != nil {
		return err
	}
	fmt.Printf("  %d entries", n)
	if n > 0 {
		fmt.Printf("; smallest %s, largest %s", first, last)
	}
	fmt.Println()
	return nil
}

func cloneParsed(p keys.ParsedKey) keys.ParsedKey {
	p.User = append([]byte(nil), p.User...)
	return p
}
