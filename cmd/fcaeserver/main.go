// Command fcaeserver serves an fcae store over TCP: the pipelined binary
// KV protocol on -addr, and an HTTP admin plane (/metrics, /healthz,
// /stats) on -admin. SIGINT/SIGTERM drain gracefully: accepting stops,
// in-flight requests finish, queued writes commit, then the store closes.
//
// Usage:
//
//	fcaeserver -db DIR [-addr 127.0.0.1:4490] [-admin 127.0.0.1:4491]
//	           [-backend cpu|fcae] [-engine_n 9] [-engine_v 8]
//	           [-compaction-workers 1] [-device-channels 1] [-fault-rate 0.0]
//	           [-priority-lanes=true] [-arena-bytes 0]
//	           [-max-inflight 256] [-write-queue 1024] [-commit-window 0]
//	           [-group-ops 512] [-group-bytes 1048576] [-max-scan 1024]
//
// The store flags mirror cmd/dbbench so a served store and a library
// benchmark run the same offload configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fcae"
)

func main() {
	dir := flag.String("db", "", "database directory (required)")
	addr := flag.String("addr", "127.0.0.1:4490", "KV protocol listen address")
	admin := flag.String("admin", "127.0.0.1:4491", "HTTP admin listen address (empty disables)")
	backend := flag.String("backend", "cpu", "compaction backend: cpu or fcae")
	engineN := flag.Int("engine_n", 9, "FCAE decoder lanes")
	engineV := flag.Int("engine_v", 8, "FCAE value lane width")
	workers := flag.Int("compaction-workers", 1, "concurrent background compaction workers")
	channels := flag.Int("device-channels", 1, "device channels behind the scheduler; backend=fcae only")
	faultRate := flag.Float64("fault-rate", 0, "device fault injection probability [0,1); backend=fcae only")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector RNG seed")
	priorityLanes := flag.Bool("priority-lanes", true, "dispatch L0 jobs ahead of deep-level jobs")
	arenaBytes := flag.Int64("arena-bytes", 0, "per-channel device staging arena size; backend=fcae only")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently-executing requests (0 = default 256)")
	writeQueue := flag.Int("write-queue", 0, "group-commit queue capacity (0 = default 1024)")
	commitWindow := flag.Duration("commit-window", 0, "group-commit collection window (0 = opportunistic)")
	groupOps := flag.Int("group-ops", 0, "max ops per coalesced commit (0 = default 512)")
	groupBytes := flag.Int("group-bytes", 0, "max payload bytes per coalesced commit (0 = default 1MiB)")
	maxScan := flag.Int("max-scan", 0, "max entries per SCAN (0 = default 1024)")
	flag.Parse()

	if *dir == "" {
		fatal(fmt.Errorf("-db is required"))
	}

	opts := fcae.Options{CompactionWorkers: *workers}
	opts.DispatchConfig.Tuning = fcae.DispatchTuning{DisablePriorityLanes: !*priorityLanes}
	switch *backend {
	case "fcae":
		cfg := fcae.MultiInputEngineConfig()
		cfg.N = *engineN
		cfg.V = *engineV
		cfg.StagingBytes = *arenaBytes
		if *channels < 1 {
			fatal(fmt.Errorf("-device-channels must be >= 1, got %d", *channels))
		}
		devs := make([]fcae.CompactionExecutor, *channels)
		for i := range devs {
			exec, err := fcae.NewEngineExecutor(cfg)
			if err != nil {
				fatal(err)
			}
			devs[i] = exec
		}
		opts.DispatchConfig.Devices = devs
		if *faultRate > 0 {
			opts.DispatchConfig.FaultInjector = fcae.NewProbInjector(*faultSeed, *faultRate)
		}
	case "cpu":
		if *faultRate > 0 {
			fatal(fmt.Errorf("-fault-rate requires -backend fcae"))
		}
		if *arenaBytes != 0 {
			fatal(fmt.Errorf("-arena-bytes requires -backend fcae"))
		}
	default:
		fatal(fmt.Errorf("unknown backend %q", *backend))
	}

	srv, err := fcae.OpenServer(*dir, opts, fcae.ServerConfig{
		Addr:           *addr,
		AdminAddr:      *admin,
		MaxInFlight:    *maxInflight,
		WriteQueue:     *writeQueue,
		CommitWindow:   *commitWindow,
		MaxGroupOps:    *groupOps,
		MaxGroupBytes:  *groupBytes,
		MaxScanEntries: *maxScan,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fcaeserver: serving %s on %s", *dir, srv.Addr())
	if a := srv.AdminAddr(); a != nil {
		fmt.Printf(" (admin %s)", a)
	}
	fmt.Printf(" backend=%s workers=%d channels=%d\n", *backend, *workers, *channels)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("fcaeserver: %s — draining\n", got)
	start := time.Now()
	if err := srv.Close(); err != nil {
		fatal(fmt.Errorf("shutdown: %w", err))
	}
	fmt.Printf("fcaeserver: drained and closed in %s\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fcaeserver:", err)
	os.Exit(1)
}
