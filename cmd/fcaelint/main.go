// Command fcaelint runs the repo's static-analysis suite (internal/lint)
// over the module and prints file:line:col diagnostics. It exits 1 when
// any analyzer reports a finding and 2 when the module fails to load (or
// on bad usage), so the verify line can gate on it:
//
//	go run ./cmd/fcaelint ./...
//	go run ./cmd/fcaelint ./internal/lint
//
// Package arguments are ./... (or none — the whole module) or
// module-relative package directories, with an optional /... suffix
// (./internal/lint, internal/lsm/...). The suite ALWAYS loads and
// cross-checks the whole module — interface resolution and lock-order
// graphs need every package — directory arguments only narrow which
// findings are reported, so a subtree run stays as precise as a full
// one. A directory that does not exist under the module root exits 2.
//
// Flags:
//
//	-json               emit a report object: {"resolver": {mode,
//	                    static_edges, dynamic_edges}, "findings": [...]}
//	                    where each finding is {file, line, col, analyzer,
//	                    message}. The resolver header records how many
//	                    call-graph edges came from direct (static)
//	                    resolution vs interface/func-value (dynamic)
//	                    resolution, so consumers can tell whether a clean
//	                    run actually had dynamic dispatch coverage.
//	-baseline FILE      suppress findings listed in FILE (see below)
//	-write-baseline FILE  write the current findings to FILE and exit 0
//	-C DIR              analyze the module containing DIR instead of cwd
//	-list               list the analyzers and exit
//
// A baseline file holds one "file: analyzer: message" line per accepted
// finding — deliberately line-number-free so entries survive unrelated
// edits. Use -write-baseline once to adopt a legacy tree, then burn the
// file down finding by finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"fcae/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonReport is the -json wire schema: a resolver header describing how
// the call graph was built, then the findings.
type jsonReport struct {
	Resolver jsonResolver `json:"resolver"`
	Findings []jsonDiag   `json:"findings"`
}

// jsonResolver records the call-graph resolution mode and edge counts of
// the run. Mode is "dynamic": the suite resolves interface method calls
// through instantiated-type sets and func-value calls through
// assignment flow, in addition to direct static calls. StaticEdges and
// DynamicEdges count call sites resolved each way — a clean run with
// zero dynamic edges means no interface seams were exercised, not that
// they were checked.
type jsonResolver struct {
	Mode         string `json:"mode"`
	StaticEdges  int64  `json:"static_edges"`
	DynamicEdges int64  `json:"dynamic_edges"`
}

// jsonDiag is the -json wire schema, one object per finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Category is the analyzer's machine-readable finding class (e.g.
	// hotalloc's "make"/"append"/"box"), when the analyzer assigns one.
	Category string `json:"category,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fcaelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	baselinePath := fs.String("baseline", "", "suppress findings listed in this file")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this file and exit 0")
	dir := fs.String("C", "", "analyze the module containing this directory (default: cwd)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: fcaelint [-list] [-json] [-baseline file] [-write-baseline file] [-C dir] [./... | pkg-dir ...]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	// Non-./... arguments are module-relative package directories that
	// narrow the *reported* findings; the whole module is still loaded
	// and analyzed so cross-package facts stay complete.
	var filters []string
	for _, arg := range fs.Args() {
		if arg == "./..." || arg == "..." {
			continue
		}
		f := filepath.ToSlash(filepath.Clean(strings.TrimSuffix(arg, "/...")))
		filters = append(filters, strings.TrimPrefix(f, "./"))
	}

	start := *dir
	if start == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "fcaelint:", err)
			return 2
		}
		start = wd
	}
	root, err := lint.FindModuleRoot(start)
	if err != nil {
		fmt.Fprintln(stderr, "fcaelint:", err)
		return 2
	}
	for _, f := range filters {
		st, err := os.Stat(filepath.Join(root, filepath.FromSlash(f)))
		if err != nil || !st.IsDir() {
			fmt.Fprintf(stderr, "fcaelint: package path %q is not a directory under module root %s\n", f, root)
			return 2
		}
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "fcaelint:", err)
		return 2
	}
	diags, stats := lint.CheckStats(pkgs, lint.Analyzers())

	rel := func(filename string) string {
		if r, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return filename
	}

	if len(filters) > 0 {
		kept := diags[:0]
		for _, d := range diags {
			if underAnyFilter(rel(d.Pos.Filename), filters) {
				kept = append(kept, d)
			}
		}
		diags = kept
	}

	if *writeBaseline != "" {
		var b strings.Builder
		for _, d := range diags {
			b.WriteString(baselineKey(rel(d.Pos.Filename), d.Analyzer, d.Message))
			b.WriteByte('\n')
		}
		if err := os.WriteFile(*writeBaseline, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintln(stderr, "fcaelint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "fcaelint: wrote %d baseline entrie(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}

	if *baselinePath != "" {
		accepted, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "fcaelint:", err)
			return 2
		}
		kept := diags[:0]
		suppressed := 0
		for _, d := range diags {
			if accepted[baselineKey(rel(d.Pos.Filename), d.Analyzer, d.Message)] {
				suppressed++
				continue
			}
			kept = append(kept, d)
		}
		diags = kept
		if suppressed > 0 {
			fmt.Fprintf(stderr, "fcaelint: %d finding(s) suppressed by baseline\n", suppressed)
		}
	}

	if *jsonOut {
		report := jsonReport{
			Resolver: jsonResolver{
				Mode:         "dynamic",
				StaticEdges:  stats.StaticEdges,
				DynamicEdges: stats.DynamicEdges,
			},
			Findings: make([]jsonDiag, 0, len(diags)),
		}
		for _, d := range diags {
			report.Findings = append(report.Findings, jsonDiag{
				File:     rel(d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Category: d.Category,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "fcaelint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "fcaelint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// underAnyFilter reports whether a module-relative file path falls under
// one of the requested package directories.
func underAnyFilter(relFile string, filters []string) bool {
	for _, f := range filters {
		if f == "." || strings.HasPrefix(relFile, f+"/") {
			return true
		}
	}
	return false
}

// baselineKey is the line-number-free identity of a finding.
func baselineKey(relFile, analyzer, message string) string {
	return relFile + ": " + analyzer + ": " + message
}

// loadBaseline reads accepted-finding keys, one per line; blank lines and
// #-comments are skipped.
func loadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	accepted := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		accepted[line] = true
	}
	return accepted, nil
}
