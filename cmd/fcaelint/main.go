// Command fcaelint runs the repo's static-analysis suite (internal/lint)
// over the module and prints file:line:col diagnostics. It exits non-zero
// when any analyzer reports a finding, so the verify line can gate on it:
//
//	go run ./cmd/fcaelint ./...
//
// The only accepted package pattern is ./... (or none, which means the
// same): the suite always loads and cross-checks the whole module.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fcae/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fcaelint [-list] [./...]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "..." {
			fmt.Fprintf(os.Stderr, "fcaelint: unsupported pattern %q (the suite always checks the whole module)\n", arg)
			os.Exit(2)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	diags := lint.Check(pkgs, lint.Analyzers())
	for _, d := range diags {
		line := d.String()
		// Print paths relative to the module root for stable output.
		line = strings.TrimPrefix(line, root+string(os.PathSeparator))
		fmt.Println(line)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fcaelint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fcaelint:", err)
	os.Exit(2)
}
