package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// dirtyModule is a synthetic module with one deliberate uncheckedclose
// finding (an error-returning function deferring f.Close bare).
var dirtyModule = map[string]string{
	"go.mod": "module fixture\n\ngo 1.22\n",
	"a.go": `package a

import "os"

func open(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}
`,
	"sub/sub.go": "package sub\n\n// Ok is clean.\nfunc Ok() int { return 1 }\n",
}

var cleanModule = map[string]string{
	"go.mod": "module fixture\n\ngo 1.22\n",
	"a.go":   "package a\n\nfunc ok() int { return 1 }\n",
}

// seamedModule is clean but exercises both resolution modes: Run makes a
// direct call to helper (a static edge) and an interface call through
// Doer (a dynamic edge to Impl.Do).
var seamedModule = map[string]string{
	"go.mod": "module fixture\n\ngo 1.22\n",
	"a.go": `package a

// Doer is a seam.
type Doer interface{ Do() }

// Impl implements Doer.
type Impl struct{ n int }

// Do counts.
func (i *Impl) Do() { i.n++ }

func helper() {}

// Run drives the seam.
func Run(d Doer) {
	helper()
	d.Do()
}

// Live keeps Impl in the instantiated set.
var Live = &Impl{}
`,
}

var brokenModule = map[string]string{
	"go.mod": "module fixture\n\ngo 1.22\n",
	"a.go":   "package a\n\nfunc broken( {\n",
}

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunExitCodesAndOutput(t *testing.T) {
	t.Parallel()
	dirty := writeModule(t, dirtyModule)
	clean := writeModule(t, cleanModule)
	broken := writeModule(t, brokenModule)
	seamed := writeModule(t, seamedModule)

	baseline := filepath.Join(t.TempDir(), "baseline.txt")
	{
		var out, errb bytes.Buffer
		if code := run([]string{"-C", dirty, "-write-baseline", baseline}, &out, &errb); code != 0 {
			t.Fatalf("write-baseline exit = %d, want 0 (stderr: %s)", code, errb.String())
		}
		data, err := os.ReadFile(baseline)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "a.go: uncheckedclose:") {
			t.Fatalf("baseline content = %q, want an a.go uncheckedclose entry", data)
		}
	}

	tests := []struct {
		name     string
		args     []string
		wantCode int
		check    func(t *testing.T, stdout, stderr string)
	}{
		{
			name:     "findings exit 1 with text output",
			args:     []string{"-C", dirty},
			wantCode: 1,
			check: func(t *testing.T, stdout, stderr string) {
				if !strings.Contains(stdout, "a.go:") || !strings.Contains(stdout, "uncheckedclose") {
					t.Errorf("stdout = %q, want module-relative uncheckedclose finding", stdout)
				}
				if !strings.Contains(stderr, "1 finding(s)") {
					t.Errorf("stderr = %q, want finding count", stderr)
				}
			},
		},
		{
			name:     "json schema",
			args:     []string{"-C", dirty, "-json"},
			wantCode: 1,
			check: func(t *testing.T, stdout, stderr string) {
				var report jsonReport
				if err := json.Unmarshal([]byte(stdout), &report); err != nil {
					t.Fatalf("stdout is not a JSON report object: %v\n%s", err, stdout)
				}
				if report.Resolver.Mode != "dynamic" {
					t.Errorf("resolver mode = %q, want dynamic", report.Resolver.Mode)
				}
				if report.Resolver.StaticEdges < 0 || report.Resolver.DynamicEdges < 0 {
					t.Errorf("resolver edge counts must be non-negative: %+v", report.Resolver)
				}
				if len(report.Findings) != 1 {
					t.Fatalf("got %d findings, want 1: %+v", len(report.Findings), report.Findings)
				}
				d := report.Findings[0]
				if d.File != "a.go" || d.Line != 10 || d.Col == 0 || d.Analyzer != "uncheckedclose" || d.Message == "" {
					t.Errorf("diag = %+v, want file a.go line 10 with analyzer and message", d)
				}
			},
		},
		{
			name:     "json resolver counts dynamic edges",
			args:     []string{"-C", seamed, "-json"},
			wantCode: 0,
			check: func(t *testing.T, stdout, stderr string) {
				var report jsonReport
				if err := json.Unmarshal([]byte(stdout), &report); err != nil {
					t.Fatalf("stdout is not a JSON report object: %v\n%s", err, stdout)
				}
				if report.Resolver.DynamicEdges == 0 {
					t.Errorf("module with an interface seam should report dynamic edges: %+v", report.Resolver)
				}
				if report.Resolver.StaticEdges == 0 {
					t.Errorf("module with a direct call should report static edges: %+v", report.Resolver)
				}
			},
		},
		{
			name:     "baseline suppresses to exit 0",
			args:     []string{"-C", dirty, "-baseline", baseline},
			wantCode: 0,
			check: func(t *testing.T, stdout, stderr string) {
				if !strings.Contains(stderr, "suppressed by baseline") {
					t.Errorf("stderr = %q, want suppression note", stderr)
				}
				if strings.Contains(stdout, "uncheckedclose") {
					t.Errorf("stdout = %q, want no findings printed", stdout)
				}
			},
		},
		{
			name:     "clean module exits 0",
			args:     []string{"-C", clean},
			wantCode: 0,
		},
		{
			name:     "load failure exits 2",
			args:     []string{"-C", broken},
			wantCode: 2,
			check: func(t *testing.T, stdout, stderr string) {
				if stderr == "" {
					t.Error("want a load error on stderr")
				}
			},
		},
		{
			name:     "path filter narrows findings to the subtree",
			args:     []string{"-C", dirty, "./sub"},
			wantCode: 0,
			check: func(t *testing.T, stdout, stderr string) {
				if strings.Contains(stdout, "uncheckedclose") {
					t.Errorf("stdout = %q, want root finding filtered out by ./sub", stdout)
				}
			},
		},
		{
			name:     "path filter keeps matching findings",
			args:     []string{"-C", dirty, ".", "./sub/..."},
			wantCode: 1,
			check: func(t *testing.T, stdout, stderr string) {
				if !strings.Contains(stdout, "uncheckedclose") {
					t.Errorf("stdout = %q, want the root finding kept by the . filter", stdout)
				}
			},
		},
		{
			name:     "nonexistent package dir exits 2",
			args:     []string{"-C", clean, "./no/such/dir"},
			wantCode: 2,
			check: func(t *testing.T, stdout, stderr string) {
				if !strings.Contains(stderr, "not a directory") {
					t.Errorf("stderr = %q, want a not-a-directory error", stderr)
				}
			},
		},
		{
			name:     "missing baseline file exits 2",
			args:     []string{"-C", dirty, "-baseline", filepath.Join(dirty, "nope.txt")},
			wantCode: 2,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tt.args, &stdout, &stderr)
			if code != tt.wantCode {
				t.Fatalf("run(%v) = %d, want %d\nstdout: %s\nstderr: %s",
					tt.args, code, tt.wantCode, stdout.String(), stderr.String())
			}
			if tt.check != nil {
				tt.check(t, stdout.String(), stderr.String())
			}
		})
	}
}
