package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// dirtyModule is a synthetic module with one deliberate uncheckedclose
// finding (an error-returning function deferring f.Close bare).
var dirtyModule = map[string]string{
	"go.mod": "module fixture\n\ngo 1.22\n",
	"a.go": `package a

import "os"

func open(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}
`,
}

var cleanModule = map[string]string{
	"go.mod": "module fixture\n\ngo 1.22\n",
	"a.go":   "package a\n\nfunc ok() int { return 1 }\n",
}

var brokenModule = map[string]string{
	"go.mod": "module fixture\n\ngo 1.22\n",
	"a.go":   "package a\n\nfunc broken( {\n",
}

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunExitCodesAndOutput(t *testing.T) {
	t.Parallel()
	dirty := writeModule(t, dirtyModule)
	clean := writeModule(t, cleanModule)
	broken := writeModule(t, brokenModule)

	baseline := filepath.Join(t.TempDir(), "baseline.txt")
	{
		var out, errb bytes.Buffer
		if code := run([]string{"-C", dirty, "-write-baseline", baseline}, &out, &errb); code != 0 {
			t.Fatalf("write-baseline exit = %d, want 0 (stderr: %s)", code, errb.String())
		}
		data, err := os.ReadFile(baseline)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "a.go: uncheckedclose:") {
			t.Fatalf("baseline content = %q, want an a.go uncheckedclose entry", data)
		}
	}

	tests := []struct {
		name     string
		args     []string
		wantCode int
		check    func(t *testing.T, stdout, stderr string)
	}{
		{
			name:     "findings exit 1 with text output",
			args:     []string{"-C", dirty},
			wantCode: 1,
			check: func(t *testing.T, stdout, stderr string) {
				if !strings.Contains(stdout, "a.go:") || !strings.Contains(stdout, "uncheckedclose") {
					t.Errorf("stdout = %q, want module-relative uncheckedclose finding", stdout)
				}
				if !strings.Contains(stderr, "1 finding(s)") {
					t.Errorf("stderr = %q, want finding count", stderr)
				}
			},
		},
		{
			name:     "json schema",
			args:     []string{"-C", dirty, "-json"},
			wantCode: 1,
			check: func(t *testing.T, stdout, stderr string) {
				var diags []jsonDiag
				if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
					t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, stdout)
				}
				if len(diags) != 1 {
					t.Fatalf("got %d findings, want 1: %+v", len(diags), diags)
				}
				d := diags[0]
				if d.File != "a.go" || d.Line != 10 || d.Col == 0 || d.Analyzer != "uncheckedclose" || d.Message == "" {
					t.Errorf("diag = %+v, want file a.go line 10 with analyzer and message", d)
				}
			},
		},
		{
			name:     "baseline suppresses to exit 0",
			args:     []string{"-C", dirty, "-baseline", baseline},
			wantCode: 0,
			check: func(t *testing.T, stdout, stderr string) {
				if !strings.Contains(stderr, "suppressed by baseline") {
					t.Errorf("stderr = %q, want suppression note", stderr)
				}
				if strings.Contains(stdout, "uncheckedclose") {
					t.Errorf("stdout = %q, want no findings printed", stdout)
				}
			},
		},
		{
			name:     "clean module exits 0",
			args:     []string{"-C", clean},
			wantCode: 0,
		},
		{
			name:     "load failure exits 2",
			args:     []string{"-C", broken},
			wantCode: 2,
			check: func(t *testing.T, stdout, stderr string) {
				if stderr == "" {
					t.Error("want a load error on stderr")
				}
			},
		},
		{
			name:     "bad pattern exits 2",
			args:     []string{"-C", clean, "./internal/..."},
			wantCode: 2,
		},
		{
			name:     "missing baseline file exits 2",
			args:     []string{"-C", dirty, "-baseline", filepath.Join(dirty, "nope.txt")},
			wantCode: 2,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tt.args, &stdout, &stderr)
			if code != tt.wantCode {
				t.Fatalf("run(%v) = %d, want %d\nstdout: %s\nstderr: %s",
					tt.args, code, tt.wantCode, stdout.String(), stderr.String())
			}
			if tt.check != nil {
				tt.check(t, stdout.String(), stderr.String())
			}
		})
	}
}
