// Command fcaesim runs the FCAE engine simulator standalone: it builds
// synthetic input SSTables, compacts them on the engine and on the CPU
// reference executor, verifies the outputs match, and prints the modeled
// speeds — a one-shot view of the paper's compaction-speed experiment.
//
// Usage:
//
//	fcaesim [-n 2] [-v 16] [-win 64] [-value_size 512] [-mb 16]
//	        [-no-kv-separation] [-no-index-separation]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"fcae/internal/compaction"
	"fcae/internal/core"
	"fcae/internal/keys"
	"fcae/internal/model"
	"fcae/internal/sstable"
)

type memReaderAt []byte

func (m memReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m)) {
		return 0, fmt.Errorf("read past end")
	}
	n := copy(p, m[off:])
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

type memEnv struct {
	next  uint64
	files map[uint64]*bytes.Buffer
}

type bufCloser struct{ *bytes.Buffer }

func (bufCloser) Close() error { return nil }

func (e *memEnv) NewOutput() (uint64, io.WriteCloser, error) {
	e.next++
	b := &bytes.Buffer{}
	e.files[e.next] = b
	return e.next, bufCloser{b}, nil
}

func main() {
	n := flag.Int("n", 2, "engine decoder lanes (N)")
	v := flag.Int("v", 16, "value lane width V (bytes/cycle)")
	win := flag.Int("win", 64, "AXI read width W_in (bytes/cycle)")
	valueSize := flag.Int("value_size", 512, "value length")
	mb := flag.Int("mb", 16, "total input size in MiB")
	noKV := flag.Bool("no-kv-separation", false, "disable key-value separation (§V-C ablation)")
	noIdx := flag.Bool("no-index-separation", false, "disable index/data separation (§V-B ablation)")
	tracePath := flag.String("trace", "", "write a per-selection pipeline trace CSV to this file")
	traceLimit := flag.Int("trace-limit", 1000, "number of selections to trace")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.N, cfg.V, cfg.WIn = *n, *v, *win
	cfg.KeyValueSeparation = !*noKV
	cfg.IndexDataSeparation = !*noIdx
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "fcaesim:", err)
		os.Exit(1)
	}
	u := cfg.Resources()
	fmt.Printf("engine: N=%d V=%d WIn=%d WOut=%d @%.0fMHz  resources BRAM=%.1f%% FF=%.1f%% LUT=%.1f%% fits=%v\n",
		cfg.N, cfg.V, cfg.WIn, cfg.WOut, cfg.ClockHz/1e6, u.BRAM, u.FF, u.LUT, cfg.Fits())

	// Build N sorted runs of incompressible data.
	rng := rand.New(rand.NewSource(1))
	perRun := (*mb << 20) / *n / (*valueSize + 30)
	job := &compaction.Job{
		SmallestSnapshot: keys.MaxSeq,
		BottomLevel:      true,
		TableOpts:        sstable.Options{Compression: sstable.SnappyCompression},
		MaxOutputBytes:   2 << 20,
	}
	for r := 0; r < *n; r++ {
		var buf bytes.Buffer
		w := sstable.NewWriter(&buf, job.TableOpts)
		val := make([]byte, *valueSize)
		for i := 0; i < perRun; i++ {
			user := fmt.Sprintf("k%015d", i*(3+2*r))
			rng.Read(val)
			if err := w.Add(keys.MakeInternal(nil, []byte(user), uint64(1+r*10_000_000+i), keys.KindSet), val); err != nil {
				fatal(err)
			}
		}
		if _, err := w.Finish(); err != nil {
			fatal(err)
		}
		job.Runs = append(job.Runs, []compaction.Table{{Num: uint64(r + 1), Size: int64(buf.Len()), Data: memReaderAt(buf.Bytes())}})
	}
	fmt.Printf("job: %d runs, %.1f MiB input, value=%dB\n", job.NumRuns(), float64(job.InputBytes())/(1<<20), *valueSize)

	// Engine path.
	exec, err := core.NewExecutor(cfg)
	if err != nil {
		fatal(err)
	}
	fpgaEnv := &memEnv{files: map[uint64]*bytes.Buffer{}}
	fres, err := exec.Compact(job, fpgaEnv)
	if err != nil {
		fatal(err)
	}
	speed := float64(job.InputBytes()) / fres.Stats.KernelTime.Seconds() / 1e6
	fmt.Printf("FCAE : kernel=%v transfer=%v pairs=%d dropped=%d outputs=%d  speed=%.1f MB/s\n",
		fres.Stats.KernelTime, fres.Stats.TransferTime, fres.Stats.PairsIn, fres.Stats.PairsDropped, len(fres.Outputs), speed)

	// CPU reference path + modeled baseline speed.
	cpuEnv := &memEnv{files: map[uint64]*bytes.Buffer{}}
	cres, err := compaction.CPU{}.Compact(job, cpuEnv)
	if err != nil {
		fatal(err)
	}
	pairTime := model.CPUPairTime(16+8, *valueSize, job.NumRuns())
	cpuSpeed := float64(job.InputBytes()) / (float64(cres.Stats.PairsIn) * pairTime.Seconds()) / 1e6
	fmt.Printf("CPU  : modeled speed=%.1f MB/s (i7-8700K model, %d-way merge)\n", cpuSpeed, job.NumRuns())
	fmt.Printf("accel: %.1fx\n", speed/cpuSpeed)

	// Verify functional equivalence entry by entry.
	if cres.Stats.PairsOut != fres.Stats.PairsOut {
		fatal(fmt.Errorf("pair counts diverge: cpu=%d fcae=%d", cres.Stats.PairsOut, fres.Stats.PairsOut))
	}
	if !sameContents(cpuEnv, cres, fpgaEnv, fres) {
		fatal(fmt.Errorf("outputs diverge"))
	}
	fmt.Println("verify: FCAE output identical to CPU output")

	// Per-stage utilization (the §V-D bottleneck analysis).
	eng, err := core.NewEngine(cfg)
	if err != nil {
		fatal(err)
	}
	var images []*core.InputImage
	for _, run := range job.Runs {
		img, err := core.BuildInputImage(run, cfg.WIn, job.TableOpts)
		if err != nil {
			fatal(err)
		}
		images = append(images, img)
	}
	params := core.Params{Compress: true, SmallestSnapshot: keys.MaxSeq, BottomLevel: true}
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer tf.Close()
		params.TraceWriter = tf
		params.TraceLimit = *traceLimit
	}
	er, err := eng.Run(images, params)
	if err != nil {
		fatal(err)
	}
	st := er.Stats
	pct := func(busy float64) float64 { return busy / st.Cycles * 100 }
	fmt.Printf("stages: decoder %.1f%%  comparer %.1f%%  transfer %.1f%%  encoder %.1f%%  (bottleneck: %s)\n",
		pct(st.DecoderBusy), pct(st.ComparerBusy), pct(st.TransferBusy), pct(st.EncoderBusy),
		cfg.BottleneckStage(16+8, *valueSize))
	if *tracePath != "" {
		fmt.Printf("trace: wrote up to %d selections to %s\n", *traceLimit, *tracePath)
	}
}

func sameContents(ea *memEnv, ra *compaction.Result, eb *memEnv, rb *compaction.Result) bool {
	read := func(e *memEnv, r *compaction.Result) []string {
		var out []string
		for _, ot := range r.Outputs {
			buf := e.files[ot.Num]
			rd, err := sstable.NewReader(memReaderAt(buf.Bytes()), int64(buf.Len()), sstable.Options{}, nil, ot.Num)
			if err != nil {
				fatal(err)
			}
			it := rd.NewIterator()
			for it.SeekToFirst(); it.Valid(); it.Next() {
				out = append(out, string(it.Key())+"\x00"+string(it.Value()))
			}
		}
		return out
	}
	a, b := read(ea, ra), read(eb, rb)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fcaesim:", err)
	os.Exit(1)
}
