package dispatch

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fcae/internal/compaction"
)

// fakeExec is a scriptable device/CPU executor.
type fakeExec struct {
	name    string
	maxRuns int
	delay   time.Duration
	err     error
	// writeOut, when >0, makes Compact push that many bytes through the
	// Env so faultEnv write errors can trip.
	writeOut int
	calls    atomic.Int64
}

func (f *fakeExec) Name() string { return f.name }
func (f *fakeExec) MaxRuns() int { return f.maxRuns }

func (f *fakeExec) Compact(job *compaction.Job, env compaction.Env) (*compaction.Result, error) {
	f.calls.Add(1)
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.writeOut > 0 {
		num, w, err := env.NewOutput()
		if err != nil {
			return nil, err
		}
		if _, err := w.Write(make([]byte, f.writeOut)); err != nil {
			_ = w.Close() // best-effort cleanup on the injected error path
			return nil, fmt.Errorf("fake merge: %w", err)
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		return &compaction.Result{Outputs: []compaction.OutputTable{{Num: num, Size: int64(f.writeOut)}}}, nil
	}
	if f.err != nil {
		return nil, f.err
	}
	return &compaction.Result{}, nil
}

// nullEnv discards output bytes.
type nullEnv struct{ next atomic.Uint64 }

func (e *nullEnv) NewOutput() (uint64, io.WriteCloser, error) {
	return e.next.Add(1), nopWriteCloser{}, nil
}

type nopWriteCloser struct{}

func (nopWriteCloser) Write(p []byte) (int, error) { return len(p), nil }
func (nopWriteCloser) Close() error                { return nil }

func testJob(runs int) *compaction.Job {
	job := &compaction.Job{}
	for i := 0; i < runs; i++ {
		job.Runs = append(job.Runs, []compaction.Table{{Num: uint64(i + 1), Size: 1 << 10}})
	}
	return job
}

func newTestSched(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

// TestRoutingTable exercises the admission policy cases.
func TestRoutingTable(t *testing.T) {
	t.Run("no-device", func(t *testing.T) {
		cpu := &fakeExec{name: "cpu"}
		s := newTestSched(t, Config{CPU: cpu})
		_, route, err := s.Execute(testJob(2), &nullEnv{})
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if route.Lane != "cpu" || route.Reason != ReasonNoDevice || route.Fallback() {
			t.Fatalf("route = %+v, want cpu lane, reason %q, not a fallback", route, ReasonNoDevice)
		}
		if cpu.calls.Load() != 1 {
			t.Fatalf("cpu calls = %d, want 1", cpu.calls.Load())
		}
	})

	t.Run("device-default", func(t *testing.T) {
		dev := &fakeExec{name: "fcae", maxRuns: 4}
		cpu := &fakeExec{name: "cpu"}
		s := newTestSched(t, Config{Devices: []compaction.Executor{dev}, CPU: cpu})
		_, route, err := s.Execute(testJob(2), &nullEnv{})
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if !route.OnDevice() || route.Lane != "device-0" || route.Executor != "fcae" || route.Reason != "" {
			t.Fatalf("route = %+v, want device-0/fcae", route)
		}
		if dev.calls.Load() != 1 || cpu.calls.Load() != 0 {
			t.Fatalf("calls dev=%d cpu=%d, want 1/0", dev.calls.Load(), cpu.calls.Load())
		}
	})

	t.Run("fanin-overflow", func(t *testing.T) {
		dev := &fakeExec{name: "fcae", maxRuns: 4}
		cpu := &fakeExec{name: "cpu"}
		s := newTestSched(t, Config{Devices: []compaction.Executor{dev}, CPU: cpu})
		_, route, err := s.Execute(testJob(5), &nullEnv{})
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if !route.Fallback() || route.Reason != ReasonFanIn {
			t.Fatalf("route = %+v, want CPU fallback with reason %q", route, ReasonFanIn)
		}
		if dev.calls.Load() != 0 {
			t.Fatalf("device ran a job it must reject (fan-in %d > %d)", 5, 4)
		}
		if got := s.Stats().FallbackFanIn; got != 1 {
			t.Fatalf("FallbackFanIn = %d, want 1", got)
		}
	})

	t.Run("image-budget", func(t *testing.T) {
		dev := &fakeExec{name: "fcae", maxRuns: 8}
		s := newTestSched(t, Config{
			Devices: []compaction.Executor{dev},
			CPU:     &fakeExec{name: "cpu"},
			Tuning:  Tuning{DeviceImageBudget: 1 << 10}, // one 1KiB table already at the cap
		})
		_, route, err := s.Execute(testJob(2), &nullEnv{}) // 2KiB input > 1KiB budget
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if !route.Fallback() || route.Reason != ReasonBudget {
			t.Fatalf("route = %+v, want CPU fallback with reason %q", route, ReasonBudget)
		}
		if got := s.Stats().FallbackBudget; got != 1 {
			t.Fatalf("FallbackBudget = %d, want 1", got)
		}
	})

	t.Run("saturated", func(t *testing.T) {
		// One slow device channel with a minimal queue: the first job
		// occupies the channel, the second fills the queue, the third must
		// route to CPU instead of blocking.
		dev := &fakeExec{name: "fcae", delay: 200 * time.Millisecond}
		cpu := &fakeExec{name: "cpu"}
		s := newTestSched(t, Config{
			Devices: []compaction.Executor{dev},
			CPU:     cpu,
			Tuning:  Tuning{QueueDepth: 1},
		})
		// Occupy the channel first, then the queue slot: launching both
		// background jobs at once would race each other for the queue and
		// one could itself take the saturation path.
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _ = s.Execute(testJob(1), &nullEnv{})
		}()
		deadline := time.Now().Add(5 * time.Second)
		for dev.calls.Load() == 0 { // channel busy, queue empty
			if time.Now().After(deadline) {
				t.Fatal("device never picked up the first job")
			}
			time.Sleep(time.Millisecond)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _ = s.Execute(testJob(1), &nullEnv{})
		}()
		for s.Stats().QueueDepth < 1 { // second job parked in the queue
			if time.Now().After(deadline) {
				t.Fatal("queue never filled")
			}
			time.Sleep(time.Millisecond)
		}
		_, route, err := s.Execute(testJob(1), &nullEnv{})
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if !route.Fallback() || route.Reason != ReasonSaturated {
			t.Fatalf("route = %+v, want CPU fallback with reason %q", route, ReasonSaturated)
		}
		wg.Wait()
		if got := s.Stats().FallbackSaturated; got != 1 {
			t.Fatalf("FallbackSaturated = %d, want 1", got)
		}
	})
}

// TestFaultRetryThenSuccess proves a single injected fault is retried on
// the device and succeeds without CPU involvement.
func TestFaultRetryThenSuccess(t *testing.T) {
	dev := &fakeExec{name: "fcae"}
	cpu := &fakeExec{name: "cpu"}
	s := newTestSched(t, Config{
		Devices:  []compaction.Executor{dev},
		CPU:      cpu,
		Injector: NewScriptInjector(Fault{Kind: FaultError}),
		Tuning:   Tuning{RetryBackoff: time.Millisecond},
	})
	_, route, err := s.Execute(testJob(1), &nullEnv{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !route.OnDevice() || route.DeviceAttempts != 2 || route.Faults != 1 {
		t.Fatalf("route = %+v, want device success after 2 attempts / 1 fault", route)
	}
	if cpu.calls.Load() != 0 {
		t.Fatalf("cpu ran despite successful retry")
	}
	st := s.Stats()
	if st.Faults != 1 || st.Retries != 1 || st.FallbackFault != 0 {
		t.Fatalf("stats = %+v, want 1 fault, 1 retry, 0 fault-fallbacks", st)
	}
}

// TestFaultExhaustionFallsBack proves persistent device faults degrade to
// the CPU lane rather than failing the job.
func TestFaultExhaustionFallsBack(t *testing.T) {
	dev := &fakeExec{name: "fcae"}
	cpu := &fakeExec{name: "cpu"}
	s := newTestSched(t, Config{
		Devices:  []compaction.Executor{dev},
		CPU:      cpu,
		Injector: NewScriptInjector(Fault{Kind: FaultError}, Fault{Kind: FaultError}),
		Tuning:   Tuning{RetryBackoff: time.Millisecond},
	})
	_, route, err := s.Execute(testJob(1), &nullEnv{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !route.Fallback() || route.Reason != ReasonFault || route.Faults != 2 {
		t.Fatalf("route = %+v, want CPU fallback with reason %q after 2 faults", route, ReasonFault)
	}
	if cpu.calls.Load() != 1 {
		t.Fatalf("cpu calls = %d, want 1", cpu.calls.Load())
	}
	if got := s.Stats().FallbackFault; got != 1 {
		t.Fatalf("FallbackFault = %d, want 1", got)
	}
}

// TestWriteFaultMidMerge proves an injected mid-merge write error is
// tagged as a device fault (retried) rather than surfaced.
func TestWriteFaultMidMerge(t *testing.T) {
	dev := &fakeExec{name: "fcae", writeOut: 4096}
	s := newTestSched(t, Config{
		Devices:  []compaction.Executor{dev},
		CPU:      &fakeExec{name: "cpu"},
		Injector: NewScriptInjector(Fault{Kind: FaultWrite, FailAfterBytes: 100}),
		Tuning:   Tuning{RetryBackoff: time.Millisecond},
	})
	res, route, err := s.Execute(testJob(1), &nullEnv{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !route.OnDevice() || route.Faults != 1 {
		t.Fatalf("route = %+v, want device success after mid-merge write fault", route)
	}
	if len(res.Outputs) != 1 {
		t.Fatalf("outputs = %d, want 1 from the clean retry", len(res.Outputs))
	}
}

// TestStallTimesOut proves a stalled channel is cut at the deadline and
// the job completes elsewhere.
func TestStallTimesOut(t *testing.T) {
	dev := &fakeExec{name: "fcae"}
	s := newTestSched(t, Config{
		Devices:  []compaction.Executor{dev},
		CPU:      &fakeExec{name: "cpu"},
		Injector: NewScriptInjector(Fault{Kind: FaultStall}, Fault{Kind: FaultStall}),
		Tuning:   Tuning{DeviceDeadline: 20 * time.Millisecond, RetryBackoff: time.Millisecond},
	})
	start := time.Now()
	_, route, err := s.Execute(testJob(1), &nullEnv{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !route.Fallback() || route.Reason != ReasonFault {
		t.Fatalf("route = %+v, want CPU fallback after stalls", route)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stalled %v, deadline did not fire", elapsed)
	}
	st := s.Stats()
	if st.Timeouts != 2 {
		t.Fatalf("Timeouts = %d, want 2", st.Timeouts)
	}
}

// TestGenuineErrorNotMasked proves a non-injected merge failure surfaces
// to the caller instead of being retried or hidden behind the CPU lane.
func TestGenuineErrorNotMasked(t *testing.T) {
	realErr := errors.New("sstable: corrupt block")
	dev := &fakeExec{name: "fcae", err: realErr}
	cpu := &fakeExec{name: "cpu"}
	s := newTestSched(t, Config{Devices: []compaction.Executor{dev}, CPU: cpu})
	_, _, err := s.Execute(testJob(1), &nullEnv{})
	if !errors.Is(err, realErr) {
		t.Fatalf("err = %v, want the genuine merge error", err)
	}
	if cpu.calls.Load() != 0 || dev.calls.Load() != 1 {
		t.Fatalf("calls dev=%d cpu=%d, want exactly one device attempt", dev.calls.Load(), cpu.calls.Load())
	}
}

// TestExecuteAfterClose returns ErrClosed.
func TestExecuteAfterClose(t *testing.T) {
	s, err := New(Config{Devices: []compaction.Executor{&fakeExec{name: "fcae"}}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, _, err := s.Execute(testJob(1), &nullEnv{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Execute after Close = %v, want ErrClosed", err)
	}
}

// TestChannelsRunConcurrently proves two device channels overlap work.
func TestChannelsRunConcurrently(t *testing.T) {
	var active, peak atomic.Int64
	track := func() func() {
		n := active.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		return func() { active.Add(-1) }
	}
	mk := func(i int) compaction.Executor {
		return &trackingExec{fakeExec: fakeExec{name: fmt.Sprintf("fcae%d", i), delay: 100 * time.Millisecond}, track: track}
	}
	s := newTestSched(t, Config{Devices: []compaction.Executor{mk(0), mk(1)}})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := s.Execute(testJob(1), &nullEnv{}); err != nil {
				t.Errorf("Execute: %v", err)
			}
		}()
	}
	wg.Wait()
	if peak.Load() < 2 {
		t.Fatalf("peak concurrent device merges = %d, want >= 2", peak.Load())
	}
	st := s.Stats()
	if st.DeviceJobs != 4 || len(st.LaneJobs) != 2 || st.LaneJobs[0] == 0 || st.LaneJobs[1] == 0 {
		t.Fatalf("stats = %+v, want 4 device jobs spread across both lanes", st)
	}
}

type trackingExec struct {
	fakeExec
	track func() func()
}

func (e *trackingExec) Compact(job *compaction.Job, env compaction.Env) (*compaction.Result, error) {
	done := e.track()
	defer done()
	return e.fakeExec.Compact(job, env)
}

// TestTuningValidate covers the rejection paths.
func TestTuningValidate(t *testing.T) {
	bad := []Tuning{
		{QueueDepth: -1},
		{DeviceDeadline: -time.Second},
		{MaxDeviceRetries: -2},
		{RetryBackoff: -time.Millisecond},
		{DeviceImageBudget: -1},
		{CPUSlots: -1},
	}
	for i, tn := range bad {
		if err := tn.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, tn)
		}
	}
	if err := (Tuning{}).Validate(); err != nil {
		t.Errorf("zero Tuning rejected: %v", err)
	}
	if _, err := New(Config{Devices: []compaction.Executor{nil}}); err == nil {
		t.Errorf("New accepted a nil device channel")
	}
}
