package dispatch

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fcae/internal/compaction"
	"fcae/internal/obs"
)

// fakeExec is a scriptable device/CPU executor.
type fakeExec struct {
	name    string
	maxRuns int
	delay   time.Duration
	err     error
	// writeOut, when >0, makes Compact push that many bytes through the
	// Env so faultEnv write errors can trip.
	writeOut int
	calls    atomic.Int64
}

func (f *fakeExec) Name() string { return f.name }
func (f *fakeExec) MaxRuns() int { return f.maxRuns }

func (f *fakeExec) Compact(job *compaction.Job, env compaction.Env) (*compaction.Result, error) {
	f.calls.Add(1)
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.writeOut > 0 {
		num, w, err := env.NewOutput()
		if err != nil {
			return nil, err
		}
		if _, err := w.Write(make([]byte, f.writeOut)); err != nil {
			_ = w.Close() // best-effort cleanup on the injected error path
			return nil, fmt.Errorf("fake merge: %w", err)
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		return &compaction.Result{Outputs: []compaction.OutputTable{{Num: num, Size: int64(f.writeOut)}}}, nil
	}
	if f.err != nil {
		return nil, f.err
	}
	return &compaction.Result{}, nil
}

// nullEnv discards output bytes.
type nullEnv struct{ next atomic.Uint64 }

func (e *nullEnv) NewOutput() (uint64, io.WriteCloser, error) {
	return e.next.Add(1), nopWriteCloser{}, nil
}

type nopWriteCloser struct{}

func (nopWriteCloser) Write(p []byte) (int, error) { return len(p), nil }
func (nopWriteCloser) Close() error                { return nil }

func testJob(runs int) *compaction.Job {
	job := &compaction.Job{}
	for i := 0; i < runs; i++ {
		job.Runs = append(job.Runs, []compaction.Table{{Num: uint64(i + 1), Size: 1 << 10}})
	}
	return job
}

func newTestSched(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

// TestRoutingTable exercises the admission policy cases.
func TestRoutingTable(t *testing.T) {
	t.Run("no-device", func(t *testing.T) {
		cpu := &fakeExec{name: "cpu"}
		s := newTestSched(t, Config{CPU: cpu})
		_, route, err := s.Execute(testJob(2), &nullEnv{}, PriorityDeep)
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if route.Lane != obs.LaneCPU || route.Reason != ReasonNoDevice || route.Fallback() {
			t.Fatalf("route = %+v, want cpu lane, reason %q, not a fallback", route, ReasonNoDevice)
		}
		if cpu.calls.Load() != 1 {
			t.Fatalf("cpu calls = %d, want 1", cpu.calls.Load())
		}
	})

	t.Run("device-default", func(t *testing.T) {
		dev := &fakeExec{name: "fcae", maxRuns: 4}
		cpu := &fakeExec{name: "cpu"}
		s := newTestSched(t, Config{Devices: []compaction.Executor{dev}, CPU: cpu})
		_, route, err := s.Execute(testJob(2), &nullEnv{}, PriorityDeep)
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if !route.OnDevice() || route.Lane != obs.DeviceLane(0) || route.Executor != "fcae" || route.Reason != obs.RouteNone {
			t.Fatalf("route = %+v, want device-0/fcae", route)
		}
		if dev.calls.Load() != 1 || cpu.calls.Load() != 0 {
			t.Fatalf("calls dev=%d cpu=%d, want 1/0", dev.calls.Load(), cpu.calls.Load())
		}
	})

	t.Run("fanin-overflow", func(t *testing.T) {
		dev := &fakeExec{name: "fcae", maxRuns: 4}
		cpu := &fakeExec{name: "cpu"}
		s := newTestSched(t, Config{Devices: []compaction.Executor{dev}, CPU: cpu})
		_, route, err := s.Execute(testJob(5), &nullEnv{}, PriorityDeep)
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if !route.Fallback() || route.Reason != ReasonFanIn {
			t.Fatalf("route = %+v, want CPU fallback with reason %q", route, ReasonFanIn)
		}
		if dev.calls.Load() != 0 {
			t.Fatalf("device ran a job it must reject (fan-in %d > %d)", 5, 4)
		}
		if got := s.Stats().FallbackFanIn; got != 1 {
			t.Fatalf("FallbackFanIn = %d, want 1", got)
		}
	})

	t.Run("image-budget", func(t *testing.T) {
		dev := &fakeExec{name: "fcae", maxRuns: 8}
		s := newTestSched(t, Config{
			Devices: []compaction.Executor{dev},
			CPU:     &fakeExec{name: "cpu"},
			Tuning:  Tuning{DeviceImageBudget: 1 << 10}, // one 1KiB table already at the cap
		})
		_, route, err := s.Execute(testJob(2), &nullEnv{}, PriorityDeep) // 2KiB input > 1KiB budget
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if !route.Fallback() || route.Reason != ReasonBudget {
			t.Fatalf("route = %+v, want CPU fallback with reason %q", route, ReasonBudget)
		}
		if got := s.Stats().FallbackBudget; got != 1 {
			t.Fatalf("FallbackBudget = %d, want 1", got)
		}
	})

	t.Run("saturated", func(t *testing.T) {
		// One slow device channel with a minimal queue: the first job
		// occupies the channel, the second fills the queue, the third must
		// route to CPU instead of blocking.
		dev := &fakeExec{name: "fcae", delay: 200 * time.Millisecond}
		cpu := &fakeExec{name: "cpu"}
		s := newTestSched(t, Config{
			Devices: []compaction.Executor{dev},
			CPU:     cpu,
			Tuning:  Tuning{QueueDepth: 1},
		})
		// Occupy the channel first, then the queue slot: launching both
		// background jobs at once would race each other for the queue and
		// one could itself take the saturation path.
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _ = s.Execute(testJob(1), &nullEnv{}, PriorityDeep)
		}()
		deadline := time.Now().Add(5 * time.Second)
		for dev.calls.Load() == 0 { // channel busy, queue empty
			if time.Now().After(deadline) {
				t.Fatal("device never picked up the first job")
			}
			time.Sleep(time.Millisecond)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _ = s.Execute(testJob(1), &nullEnv{}, PriorityDeep)
		}()
		for s.Stats().QueueDepth < 1 { // second job parked in the queue
			if time.Now().After(deadline) {
				t.Fatal("queue never filled")
			}
			time.Sleep(time.Millisecond)
		}
		_, route, err := s.Execute(testJob(1), &nullEnv{}, PriorityDeep)
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if !route.Fallback() || route.Reason != ReasonSaturated {
			t.Fatalf("route = %+v, want CPU fallback with reason %q", route, ReasonSaturated)
		}
		wg.Wait()
		if got := s.Stats().FallbackSaturated; got != 1 {
			t.Fatalf("FallbackSaturated = %d, want 1", got)
		}
	})
}

// TestFaultRetryThenSuccess proves a single injected fault is retried on
// the device and succeeds without CPU involvement.
func TestFaultRetryThenSuccess(t *testing.T) {
	dev := &fakeExec{name: "fcae"}
	cpu := &fakeExec{name: "cpu"}
	s := newTestSched(t, Config{
		Devices:  []compaction.Executor{dev},
		CPU:      cpu,
		Injector: NewScriptInjector(Fault{Kind: FaultError}),
		Tuning:   Tuning{RetryBackoff: time.Millisecond},
	})
	_, route, err := s.Execute(testJob(1), &nullEnv{}, PriorityDeep)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !route.OnDevice() || route.DeviceAttempts != 2 || route.Faults != 1 {
		t.Fatalf("route = %+v, want device success after 2 attempts / 1 fault", route)
	}
	if cpu.calls.Load() != 0 {
		t.Fatalf("cpu ran despite successful retry")
	}
	st := s.Stats()
	if st.Faults != 1 || st.Retries != 1 || st.FallbackFault != 0 {
		t.Fatalf("stats = %+v, want 1 fault, 1 retry, 0 fault-fallbacks", st)
	}
}

// TestFaultExhaustionFallsBack proves persistent device faults degrade to
// the CPU lane rather than failing the job.
func TestFaultExhaustionFallsBack(t *testing.T) {
	dev := &fakeExec{name: "fcae"}
	cpu := &fakeExec{name: "cpu"}
	s := newTestSched(t, Config{
		Devices:  []compaction.Executor{dev},
		CPU:      cpu,
		Injector: NewScriptInjector(Fault{Kind: FaultError}, Fault{Kind: FaultError}),
		Tuning:   Tuning{RetryBackoff: time.Millisecond},
	})
	_, route, err := s.Execute(testJob(1), &nullEnv{}, PriorityDeep)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !route.Fallback() || route.Reason != ReasonFault || route.Faults != 2 {
		t.Fatalf("route = %+v, want CPU fallback with reason %q after 2 faults", route, ReasonFault)
	}
	if cpu.calls.Load() != 1 {
		t.Fatalf("cpu calls = %d, want 1", cpu.calls.Load())
	}
	if got := s.Stats().FallbackFault; got != 1 {
		t.Fatalf("FallbackFault = %d, want 1", got)
	}
}

// TestWriteFaultMidMerge proves an injected mid-merge write error is
// tagged as a device fault (retried) rather than surfaced.
func TestWriteFaultMidMerge(t *testing.T) {
	dev := &fakeExec{name: "fcae", writeOut: 4096}
	s := newTestSched(t, Config{
		Devices:  []compaction.Executor{dev},
		CPU:      &fakeExec{name: "cpu"},
		Injector: NewScriptInjector(Fault{Kind: FaultWrite, FailAfterBytes: 100}),
		Tuning:   Tuning{RetryBackoff: time.Millisecond},
	})
	res, route, err := s.Execute(testJob(1), &nullEnv{}, PriorityDeep)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !route.OnDevice() || route.Faults != 1 {
		t.Fatalf("route = %+v, want device success after mid-merge write fault", route)
	}
	if len(res.Outputs) != 1 {
		t.Fatalf("outputs = %d, want 1 from the clean retry", len(res.Outputs))
	}
}

// TestStallTimesOut proves a stalled channel is cut at the deadline and
// the job completes elsewhere.
func TestStallTimesOut(t *testing.T) {
	dev := &fakeExec{name: "fcae"}
	s := newTestSched(t, Config{
		Devices:  []compaction.Executor{dev},
		CPU:      &fakeExec{name: "cpu"},
		Injector: NewScriptInjector(Fault{Kind: FaultStall}, Fault{Kind: FaultStall}),
		Tuning:   Tuning{DeviceDeadline: 20 * time.Millisecond, RetryBackoff: time.Millisecond},
	})
	start := time.Now()
	_, route, err := s.Execute(testJob(1), &nullEnv{}, PriorityDeep)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !route.Fallback() || route.Reason != ReasonFault {
		t.Fatalf("route = %+v, want CPU fallback after stalls", route)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stalled %v, deadline did not fire", elapsed)
	}
	st := s.Stats()
	if st.Timeouts != 2 {
		t.Fatalf("Timeouts = %d, want 2", st.Timeouts)
	}
}

// TestGenuineErrorNotMasked proves a non-injected merge failure surfaces
// to the caller instead of being retried or hidden behind the CPU lane.
func TestGenuineErrorNotMasked(t *testing.T) {
	realErr := errors.New("sstable: corrupt block")
	dev := &fakeExec{name: "fcae", err: realErr}
	cpu := &fakeExec{name: "cpu"}
	s := newTestSched(t, Config{Devices: []compaction.Executor{dev}, CPU: cpu})
	_, _, err := s.Execute(testJob(1), &nullEnv{}, PriorityDeep)
	if !errors.Is(err, realErr) {
		t.Fatalf("err = %v, want the genuine merge error", err)
	}
	if cpu.calls.Load() != 0 || dev.calls.Load() != 1 {
		t.Fatalf("calls dev=%d cpu=%d, want exactly one device attempt", dev.calls.Load(), cpu.calls.Load())
	}
}

// TestExecuteAfterClose returns ErrClosed.
func TestExecuteAfterClose(t *testing.T) {
	s, err := New(Config{Devices: []compaction.Executor{&fakeExec{name: "fcae"}}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, _, err := s.Execute(testJob(1), &nullEnv{}, PriorityDeep); !errors.Is(err, ErrClosed) {
		t.Fatalf("Execute after Close = %v, want ErrClosed", err)
	}
}

// TestChannelsRunConcurrently proves two device channels overlap work.
func TestChannelsRunConcurrently(t *testing.T) {
	var active, peak atomic.Int64
	track := func() func() {
		n := active.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		return func() { active.Add(-1) }
	}
	mk := func(i int) compaction.Executor {
		return &trackingExec{fakeExec: fakeExec{name: fmt.Sprintf("fcae%d", i), delay: 100 * time.Millisecond}, track: track}
	}
	s := newTestSched(t, Config{Devices: []compaction.Executor{mk(0), mk(1)}})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := s.Execute(testJob(1), &nullEnv{}, PriorityDeep); err != nil {
				t.Errorf("Execute: %v", err)
			}
		}()
	}
	wg.Wait()
	if peak.Load() < 2 {
		t.Fatalf("peak concurrent device merges = %d, want >= 2", peak.Load())
	}
	st := s.Stats()
	if st.DeviceJobs != 4 || len(st.LaneJobs) != 2 || st.LaneJobs[0] == 0 || st.LaneJobs[1] == 0 {
		t.Fatalf("stats = %+v, want 4 device jobs spread across both lanes", st)
	}
}

type trackingExec struct {
	fakeExec
	track func() func()
}

func (e *trackingExec) Compact(job *compaction.Job, env compaction.Env) (*compaction.Result, error) {
	done := e.track()
	defer done()
	return e.fakeExec.Compact(job, env)
}

// gateExec records Compact order and blocks every merge until the gate
// closes, so tests can park jobs in the priority queue deterministically.
type gateExec struct {
	fakeExec
	gate chan struct{}

	mu    sync.Mutex
	order []uint64 // first input table number of each Compact, in call order
}

func (e *gateExec) Compact(job *compaction.Job, env compaction.Env) (*compaction.Result, error) {
	e.mu.Lock()
	e.order = append(e.order, job.Runs[0][0].Num)
	e.mu.Unlock()
	<-e.gate
	return e.fakeExec.Compact(job, env)
}

func (e *gateExec) callOrder() []uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]uint64(nil), e.order...)
}

// testJobNum is testJob(1) with a chosen table number, so gateExec can
// tell queued jobs apart.
func testJobNum(num uint64) *compaction.Job {
	return &compaction.Job{Runs: [][]compaction.Table{{{Num: num, Size: 1 << 10}}}}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPriorityOrdering proves a queued L0 job is dispatched before a deep
// job that was enqueued earlier: job 1 occupies the single channel, job 2
// (deep) parks in the low lane, job 3 (L0) arrives later but runs first.
func TestPriorityOrdering(t *testing.T) {
	dev := &gateExec{fakeExec: fakeExec{name: "fcae", maxRuns: 4}, gate: make(chan struct{})}
	s := newTestSched(t, Config{
		Devices: []compaction.Executor{dev},
		CPU:     &fakeExec{name: "cpu"},
		Tuning:  Tuning{QueueDepth: 4, AgingWait: time.Hour},
	})
	var wg sync.WaitGroup
	run := func(num uint64, pri Priority) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := s.Execute(testJobNum(num), &nullEnv{}, pri); err != nil {
				t.Errorf("Execute(%d): %v", num, err)
			}
		}()
	}
	run(1, PriorityDeep)
	waitFor(t, "job 1 on the channel", func() bool { return len(dev.callOrder()) == 1 })
	run(2, PriorityDeep)
	waitFor(t, "job 2 queued low", func() bool { return s.Stats().QueueDepthLow == 1 })
	run(3, PriorityL0)
	waitFor(t, "job 3 queued high", func() bool { return s.Stats().QueueDepthHigh == 1 })
	close(dev.gate)
	wg.Wait()
	if got := dev.callOrder(); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 2 {
		t.Fatalf("device order = %v, want [1 3 2] (L0 job 3 ahead of earlier deep job 2)", got)
	}
	if got := s.Stats().AgingPromotions; got != 0 {
		t.Fatalf("AgingPromotions = %d, want 0", got)
	}
}

// TestAgingPromotion proves the starvation bound: a deep job that waited
// past AgingWait dequeues ahead of a younger L0 backlog.
func TestAgingPromotion(t *testing.T) {
	dev := &gateExec{fakeExec: fakeExec{name: "fcae", maxRuns: 4}, gate: make(chan struct{})}
	s := newTestSched(t, Config{
		Devices: []compaction.Executor{dev},
		CPU:     &fakeExec{name: "cpu"},
		Tuning:  Tuning{QueueDepth: 4, AgingWait: 30 * time.Millisecond},
	})
	var wg sync.WaitGroup
	run := func(num uint64, pri Priority) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := s.Execute(testJobNum(num), &nullEnv{}, pri); err != nil {
				t.Errorf("Execute(%d): %v", num, err)
			}
		}()
	}
	run(1, PriorityDeep)
	waitFor(t, "job 1 on the channel", func() bool { return len(dev.callOrder()) == 1 })
	run(2, PriorityDeep)
	waitFor(t, "job 2 queued low", func() bool { return s.Stats().QueueDepthLow == 1 })
	time.Sleep(60 * time.Millisecond) // job 2 ages past AgingWait
	run(3, PriorityL0)
	waitFor(t, "job 3 queued high", func() bool { return s.Stats().QueueDepthHigh == 1 })
	close(dev.gate)
	wg.Wait()
	if got := dev.callOrder(); len(got) != 3 || got[1] != 2 {
		t.Fatalf("device order = %v, want aged deep job 2 ahead of L0 job 3", got)
	}
	if got := s.Stats().AgingPromotions; got != 1 {
		t.Fatalf("AgingPromotions = %d, want 1", got)
	}
}

// TestPriorityDisabled proves DisablePriorityLanes restores plain FIFO:
// an L0 job queues behind the earlier deep job.
func TestPriorityDisabled(t *testing.T) {
	dev := &gateExec{fakeExec: fakeExec{name: "fcae", maxRuns: 4}, gate: make(chan struct{})}
	s := newTestSched(t, Config{
		Devices: []compaction.Executor{dev},
		CPU:     &fakeExec{name: "cpu"},
		Tuning:  Tuning{QueueDepth: 4, AgingWait: time.Hour, DisablePriorityLanes: true},
	})
	var wg sync.WaitGroup
	run := func(num uint64, pri Priority) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := s.Execute(testJobNum(num), &nullEnv{}, pri); err != nil {
				t.Errorf("Execute(%d): %v", num, err)
			}
		}()
	}
	run(1, PriorityDeep)
	waitFor(t, "job 1 on the channel", func() bool { return len(dev.callOrder()) == 1 })
	run(2, PriorityDeep)
	waitFor(t, "job 2 queued", func() bool { return s.Stats().QueueDepthLow == 1 })
	run(3, PriorityL0)
	waitFor(t, "job 3 queued", func() bool { return s.Stats().QueueDepthLow == 2 })
	if got := s.Stats().QueueDepthHigh; got != 0 {
		t.Fatalf("QueueDepthHigh = %d, want 0 with lanes disabled", got)
	}
	close(dev.gate)
	wg.Wait()
	if got := dev.callOrder(); len(got) != 3 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("device order = %v, want FIFO [1 2 3]", got)
	}
}

// arenaExec is a fakeExec that reports a staging arena, implementing the
// scheduler's ArenaSizer.
type arenaExec struct {
	fakeExec
	arenaBytes  int64
	inputBudget int64
	highWater   atomic.Int64
}

func (e *arenaExec) ArenaBytes() int64       { return e.arenaBytes }
func (e *arenaExec) ArenaInputBudget() int64 { return e.inputBudget }
func (e *arenaExec) ArenaHighWater() int64   { return e.highWater.Load() }

// TestArenaHighWaterStats proves Stats surfaces each channel's live
// high-water mark per snapshot and PublishMetrics exposes the pool peak
// as dispatch_arena_high_water_bytes.
func TestArenaHighWaterStats(t *testing.T) {
	devA := &arenaExec{fakeExec: fakeExec{name: "fcae0"}, arenaBytes: 1 << 20, inputBudget: 1 << 19}
	devB := &arenaExec{fakeExec: fakeExec{name: "fcae1"}, arenaBytes: 1 << 20, inputBudget: 1 << 19}
	s := newTestSched(t, Config{Devices: []compaction.Executor{devA, devB}, CPU: &fakeExec{name: "cpu"}})
	if hw := s.Stats().ArenaHighWater; hw != nil {
		t.Fatalf("ArenaHighWater = %v before any occupancy, want nil (omitted)", hw)
	}
	devA.highWater.Store(4096)
	devB.highWater.Store(8192)
	st := s.Stats()
	if len(st.ArenaHighWater) != 2 || st.ArenaHighWater[0] != 4096 || st.ArenaHighWater[1] != 8192 {
		t.Fatalf("ArenaHighWater = %v, want [4096 8192]", st.ArenaHighWater)
	}
	r := obs.NewRegistry()
	s.PublishMetrics(r)
	snap := r.Snapshot()
	if got := snap.Gauges["dispatch_arena_high_water_bytes"]; got != 8192 {
		t.Fatalf("dispatch_arena_high_water_bytes = %v, want 8192 (most-pressured channel)", got)
	}
	if got := snap.Gauges["dispatch_arena_high_water_bytes_chan0"]; got != 4096 {
		t.Fatalf("dispatch_arena_high_water_bytes_chan0 = %v, want 4096", got)
	}
	if got := snap.Gauges["dispatch_arena_high_water_bytes_chan1"]; got != 8192 {
		t.Fatalf("dispatch_arena_high_water_bytes_chan1 = %v, want 8192", got)
	}
}

// TestArenaHighWaterGaugeSkipsNonSizers proves the per-channel high-water
// gauges only register for channels whose executor stages through an
// arena: a plain device channel gets no _chan<i> gauge.
func TestArenaHighWaterGaugeSkipsNonSizers(t *testing.T) {
	dev := &arenaExec{fakeExec: fakeExec{name: "fcae0"}, arenaBytes: 1 << 20, inputBudget: 1 << 19}
	plain := &fakeExec{name: "fcae1"}
	s := newTestSched(t, Config{Devices: []compaction.Executor{dev, plain}, CPU: &fakeExec{name: "cpu"}})
	r := obs.NewRegistry()
	s.PublishMetrics(r)
	snap := r.Snapshot()
	if _, ok := snap.Gauges["dispatch_arena_high_water_bytes_chan0"]; !ok {
		t.Fatalf("missing dispatch_arena_high_water_bytes_chan0 for the arena-sized channel")
	}
	if _, ok := snap.Gauges["dispatch_arena_high_water_bytes_chan1"]; ok {
		t.Fatalf("dispatch_arena_high_water_bytes_chan1 registered for a channel with no arena")
	}
}

// TestArenaAdmission proves a job larger than the channels' staging
// arenas routes straight to the CPU lane without a device attempt.
func TestArenaAdmission(t *testing.T) {
	dev := &arenaExec{fakeExec: fakeExec{name: "fcae", maxRuns: 4}, arenaBytes: 1 << 20, inputBudget: 512}
	cpu := &fakeExec{name: "cpu"}
	s := newTestSched(t, Config{Devices: []compaction.Executor{dev}, CPU: cpu})
	if got := s.ArenaBudget(); got != 512 {
		t.Fatalf("ArenaBudget = %d, want 512", got)
	}
	_, route, err := s.Execute(testJob(1), &nullEnv{}, PriorityDeep) // 1KiB input > 512B budget
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !route.Fallback() || route.Reason != ReasonArena || route.Lane != obs.LaneCPU {
		t.Fatalf("route = %+v, want CPU fallback with reason %q", route, ReasonArena)
	}
	if dev.calls.Load() != 0 || cpu.calls.Load() != 1 {
		t.Fatalf("calls dev=%d cpu=%d, want 0/1 (admission must not touch the device)", dev.calls.Load(), cpu.calls.Load())
	}
	st := s.Stats()
	if st.FallbackArena != 1 {
		t.Fatalf("FallbackArena = %d, want 1", st.FallbackArena)
	}
	if st.ArenaBytes != 1<<20 {
		t.Fatalf("Stats().ArenaBytes = %d, want %d", st.ArenaBytes, 1<<20)
	}
}

// TestArenaExhaustedFallsBack proves a device-side arena overflow routes
// to the CPU lane deterministically: one attempt, no retries.
func TestArenaExhaustedFallsBack(t *testing.T) {
	dev := &fakeExec{name: "fcae", err: fmt.Errorf("stage run 0: %w", compaction.ErrArenaExhausted)}
	cpu := &fakeExec{name: "cpu"}
	s := newTestSched(t, Config{
		Devices: []compaction.Executor{dev},
		CPU:     cpu,
		Tuning:  Tuning{RetryBackoff: time.Millisecond},
	})
	_, route, err := s.Execute(testJob(1), &nullEnv{}, PriorityDeep)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !route.Fallback() || route.Reason != ReasonArena {
		t.Fatalf("route = %+v, want CPU fallback with reason %q", route, ReasonArena)
	}
	if route.DeviceAttempts != 1 || dev.calls.Load() != 1 {
		t.Fatalf("attempts=%d devCalls=%d, want exactly one device attempt (no retries on a deterministic overflow)", route.DeviceAttempts, dev.calls.Load())
	}
	if cpu.calls.Load() != 1 {
		t.Fatalf("cpu calls = %d, want 1", cpu.calls.Load())
	}
	st := s.Stats()
	if st.FallbackArena != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v, want 1 arena fallback and 0 retries", st)
	}
}

// TestTuningValidate covers the rejection paths.
func TestTuningValidate(t *testing.T) {
	bad := []Tuning{
		{QueueDepth: -1},
		{DeviceDeadline: -time.Second},
		{MaxDeviceRetries: -2},
		{RetryBackoff: -time.Millisecond},
		{DeviceImageBudget: -1},
		{CPUSlots: -1},
		{AgingWait: -time.Second},
	}
	for i, tn := range bad {
		if err := tn.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, tn)
		}
	}
	if err := (Tuning{}).Validate(); err != nil {
		t.Errorf("zero Tuning rejected: %v", err)
	}
	if _, err := New(Config{Devices: []compaction.Executor{nil}}); err == nil {
		t.Errorf("New accepted a nil device channel")
	}
}
