// Package dispatch is the host-side compaction-offload scheduler (the
// paper's Fig. 6 routing box grown into a subsystem, following LUDA's
// observation that offload wins hinge on keeping the device busy, not on
// the kernel alone). It owns a bounded job queue feeding a pool of device
// channels — each wrapping one compaction executor instance, the analogue
// of one FCAE compaction unit — plus a software (CPU) lane, and routes
// every job through an admission policy:
//
//   - fan-in: jobs whose run count exceeds the device's N go to the CPU
//     lane (the paper's "#SSTable in L0 > N-1 → SW compaction" rule);
//   - image budget: jobs whose input bytes exceed the device image budget
//     go to the CPU lane (the images would not fit card DRAM);
//   - backpressure: when the device queue is full the job runs on the CPU
//     lane immediately instead of stalling the compaction worker;
//   - fault fallback: a device attempt that faults or times out is
//     retried with backoff, then degraded to the CPU lane — a flaky card
//     slows compaction down, it never wedges the store.
//
// The scheduler is deliberately oblivious to what a job merges: it sees
// compaction.Job/Env and returns compaction.Result, so the lsm layer's
// manifest bookkeeping is untouched by routing decisions.
package dispatch

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fcae/internal/compaction"
	"fcae/internal/obs"
)

// Route reasons reported in Route.Reason and the obs trace records.
const (
	// ReasonFanIn: the job's run count exceeded the device's MaxRuns.
	ReasonFanIn = "fanin"
	// ReasonBudget: the job's input bytes exceeded DeviceImageBudget.
	ReasonBudget = "image-budget"
	// ReasonSaturated: the device queue was full at admission.
	ReasonSaturated = "saturated"
	// ReasonFault: device attempts faulted until retries were exhausted.
	ReasonFault = "device-fault"
	// ReasonNoDevice: the scheduler has no device channels configured.
	ReasonNoDevice = "no-device"
)

// Tuning bounds the scheduler's queueing and retry behavior. The zero
// value selects the documented defaults.
type Tuning struct {
	// QueueDepth bounds the device job queue (default 2x channels). A
	// full queue routes new jobs to the CPU lane instead of blocking.
	QueueDepth int
	// DeviceDeadline caps one device attempt's stall time (default 2s).
	// Only injected stalls are cut short — a merge that is actually
	// executing is never abandoned, so no orphan writer survives a
	// timeout.
	DeviceDeadline time.Duration
	// MaxDeviceRetries is how many times a faulted job is re-dispatched
	// to the device pool before falling back to the CPU lane (default 1;
	// set -1 to disable retries).
	MaxDeviceRetries int
	// RetryBackoff is the base backoff between device retries, scaled
	// linearly by attempt number (default 10ms).
	RetryBackoff time.Duration
	// DeviceImageBudget caps the input bytes of a device job; larger jobs
	// route to the CPU lane. 0 means unlimited.
	DeviceImageBudget int64
	// CPUSlots bounds concurrent CPU-lane merges; 0 means unbounded (the
	// caller's worker count is the natural bound).
	CPUSlots int
}

// Validate rejects nonsensical tuning values.
func (t Tuning) Validate() error {
	neg := func(name string, v int64) error {
		return fmt.Errorf("dispatch: invalid Tuning: %s is negative (%d)", name, v)
	}
	switch {
	case t.QueueDepth < 0:
		return neg("QueueDepth", int64(t.QueueDepth))
	case t.DeviceDeadline < 0:
		return neg("DeviceDeadline", int64(t.DeviceDeadline))
	case t.MaxDeviceRetries < -1:
		return fmt.Errorf("dispatch: invalid Tuning: MaxDeviceRetries is %d (minimum -1)", t.MaxDeviceRetries)
	case t.RetryBackoff < 0:
		return neg("RetryBackoff", int64(t.RetryBackoff))
	case t.DeviceImageBudget < 0:
		return neg("DeviceImageBudget", t.DeviceImageBudget)
	case t.CPUSlots < 0:
		return neg("CPUSlots", int64(t.CPUSlots))
	}
	return nil
}

func (t Tuning) withDefaults(channels int) Tuning {
	if t.QueueDepth == 0 {
		t.QueueDepth = 2 * channels
	}
	if t.DeviceDeadline == 0 {
		t.DeviceDeadline = 2 * time.Second
	}
	if t.MaxDeviceRetries == 0 {
		t.MaxDeviceRetries = 1
	}
	if t.MaxDeviceRetries < 0 {
		t.MaxDeviceRetries = 0
	}
	if t.RetryBackoff == 0 {
		t.RetryBackoff = 10 * time.Millisecond
	}
	return t
}

// Config assembles a Scheduler.
type Config struct {
	// Devices are the device channels, one executor instance per channel
	// (instances must not be shared: each is one simulated compaction
	// unit with its own pipeline). Empty means every job runs on the CPU
	// lane.
	Devices []compaction.Executor
	// CPU is the software fallback lane; nil selects compaction.CPU.
	CPU compaction.Executor
	// Injector, when non-nil, is consulted once per device attempt.
	Injector FaultInjector
	// Tuning bounds queueing and retries; zero value = defaults.
	Tuning Tuning
}

// Route describes where one job ran and why.
type Route struct {
	// Lane is "device-<i>" or "cpu".
	Lane string
	// Executor is the Name() of the executor that produced the result.
	Executor string
	// Reason explains a CPU routing ("" when the job ran on a device, or
	// when the scheduler has devices and chose one by default).
	Reason string
	// DeviceAttempts counts device-lane attempts, including faulted ones.
	DeviceAttempts int
	// Faults counts injected faults and timeouts observed by this job.
	Faults int
}

// OnDevice reports whether the job completed on a device channel.
func (r Route) OnDevice() bool { return r.Lane != "" && r.Lane != "cpu" }

// Fallback reports whether the job ran on the CPU lane despite device
// channels being configured — the stat the paper's Fig. 6 "SW compaction"
// arrow counts. A pure-CPU configuration is not a fallback.
func (r Route) Fallback() bool {
	return r.Lane == "cpu" && r.Reason != "" && r.Reason != ReasonNoDevice
}

// Stats is a snapshot of the scheduler's routing counters.
type Stats struct {
	// DeviceJobs / CPUJobs count completed merges per lane class.
	DeviceJobs int64 `json:"device_jobs"`
	CPUJobs    int64 `json:"cpu_jobs"`
	// LaneJobs breaks DeviceJobs down per device channel.
	LaneJobs []int64 `json:"lane_jobs,omitempty"`
	// Faults counts injected device faults (including timeouts); Timeouts
	// counts the deadline subset. Retries counts re-dispatches.
	Faults   int64 `json:"faults"`
	Timeouts int64 `json:"timeouts"`
	Retries  int64 `json:"retries"`
	// CPU-fallback routings by reason.
	FallbackFanIn     int64 `json:"fallback_fanin"`
	FallbackBudget    int64 `json:"fallback_budget"`
	FallbackSaturated int64 `json:"fallback_saturated"`
	FallbackFault     int64 `json:"fallback_fault"`
	// QueueDepth is the instantaneous device-queue occupancy.
	QueueDepth int `json:"queue_depth"`
}

// request is one job handed to a device channel.
type request struct {
	job *compaction.Job
	env compaction.Env
	// dequeued ends the job's dispatch_queue trace span; the channel
	// calls it once at pickup.
	dequeued func()
	// done is send-only from the request's perspective: the channel
	// goroutine (or Close's drain) resolves it exactly once; only the
	// Execute call that made the channel receives.
	done chan<- deviceResult
}

type deviceResult struct {
	res  *compaction.Result
	lane int
	err  error
}

// Scheduler routes compaction jobs between the device channel pool and
// the CPU lane. Safe for concurrent Execute calls; Close joins every
// channel goroutine.
type Scheduler struct {
	// Immutable after New.
	devices  []compaction.Executor
	cpu      compaction.Executor
	injector FaultInjector
	tun      Tuning
	maxRuns  int
	queue    chan *request
	cpuSlots chan struct{} // nil when CPUSlots == 0
	stop     chan struct{}
	wg       sync.WaitGroup

	mu     sync.Mutex
	closed bool
	st     Stats
}

// New builds a scheduler and starts one goroutine per device channel.
// The caller must Close it to join them.
func New(cfg Config) (*Scheduler, error) {
	if err := cfg.Tuning.Validate(); err != nil {
		return nil, err
	}
	for i, d := range cfg.Devices {
		if d == nil {
			return nil, fmt.Errorf("dispatch: device channel %d is nil", i)
		}
	}
	cpu := cfg.CPU
	if cpu == nil {
		cpu = compaction.CPU{}
	}
	s := &Scheduler{
		devices:  cfg.Devices,
		cpu:      cpu,
		injector: cfg.Injector,
		tun:      cfg.Tuning.withDefaults(len(cfg.Devices)),
		stop:     make(chan struct{}),
	}
	// The pool's admission limit is the weakest channel's (0 = unlimited).
	for _, d := range s.devices {
		if m := d.MaxRuns(); m > 0 && (s.maxRuns == 0 || m < s.maxRuns) {
			s.maxRuns = m
		}
	}
	s.queue = make(chan *request, s.tun.QueueDepth)
	if s.tun.CPUSlots > 0 {
		s.cpuSlots = make(chan struct{}, s.tun.CPUSlots)
	}
	if len(s.devices) > 0 {
		s.st.LaneJobs = make([]int64, len(s.devices))
	}
	for i := range s.devices {
		s.wg.Add(1)
		go s.channelLoop(i)
	}
	return s, nil
}

// Channels returns the device channel count.
func (s *Scheduler) Channels() int { return len(s.devices) }

// MaxRuns returns the device pool's admission fan-in limit (0 unlimited).
func (s *Scheduler) MaxRuns() int { return s.maxRuns }

// Close stops the channel goroutines and fails stranded requests. Safe to
// call twice. In-flight Execute calls return ErrClosed.
//
// New makes s.stop, but shutdown is Close's one job: closing the stop
// channel here is the designed hand-off, declared below so chanflow
// holds every other close site to the owner rule.
//
//fcae:chan-owner dispatch.Scheduler.stop
func (s *Scheduler) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	for {
		select {
		case req := <-s.queue:
			req.done <- deviceResult{err: ErrClosed}
		default:
			return nil
		}
	}
}

// Execute runs one compaction job through the routing policy and returns
// the merged result plus the route taken. Blocking: the calling worker
// owns the job until a lane resolves it.
func (s *Scheduler) Execute(job *compaction.Job, env compaction.Env) (*compaction.Result, Route, error) {
	var route Route
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, route, ErrClosed
	}
	switch {
	case len(s.devices) == 0:
		route.Reason = ReasonNoDevice
		return s.runCPU(job, env, &route)
	case s.maxRuns > 0 && job.NumRuns() > s.maxRuns:
		route.Reason = ReasonFanIn
		s.noteFallback(ReasonFanIn)
		return s.runCPU(job, env, &route)
	case s.tun.DeviceImageBudget > 0 && job.InputBytes() > s.tun.DeviceImageBudget:
		route.Reason = ReasonBudget
		s.noteFallback(ReasonBudget)
		return s.runCPU(job, env, &route)
	}

	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if !s.sleep(time.Duration(attempt) * s.tun.RetryBackoff) {
				return nil, route, ErrClosed
			}
		}
		done := make(chan deviceResult, 1)
		req := &request{
			job:      job,
			env:      env,
			dequeued: job.Trace.StartSpan("dispatch_queue"),
			done:     done,
		}
		if attempt == 0 {
			// First admission never blocks: a saturated device pool means
			// the CPU lane is the faster path (backpressure routing).
			select {
			case s.queue <- req:
			default:
				route.Reason = ReasonSaturated
				s.noteFallback(ReasonSaturated)
				return s.runCPU(job, env, &route)
			}
		} else {
			select {
			case s.queue <- req:
			case <-s.stop:
				return nil, route, ErrClosed
			}
		}
		route.DeviceAttempts++
		var r deviceResult
		select {
		case r = <-done:
		case <-s.stop:
			return nil, route, ErrClosed
		}
		switch {
		case r.err == nil:
			route.Lane = laneName(r.lane)
			route.Executor = s.devices[r.lane].Name()
			s.noteDeviceJob(r.lane)
			return r.res, route, nil
		case errors.Is(r.err, ErrClosed):
			return nil, route, r.err
		case !errors.Is(r.err, ErrDeviceFault) && !errors.Is(r.err, ErrDeviceTimeout):
			// A genuine merge failure (corrupt input, disk full) is not
			// device flakiness; masking it behind a CPU retry would hide
			// data errors, so it surfaces to the caller as-is.
			route.Lane = laneName(r.lane)
			route.Executor = s.devices[r.lane].Name()
			return nil, route, r.err
		}
		route.Faults++
		s.noteFault(errors.Is(r.err, ErrDeviceTimeout))
		if attempt >= s.tun.MaxDeviceRetries {
			route.Reason = ReasonFault
			s.noteFallback(ReasonFault)
			return s.runCPU(job, env, &route)
		}
		s.noteRetry()
	}
}

// runCPU executes the job on the software lane.
func (s *Scheduler) runCPU(job *compaction.Job, env compaction.Env, route *Route) (*compaction.Result, Route, error) {
	route.Lane = "cpu"
	route.Executor = s.cpu.Name()
	if s.cpuSlots != nil {
		select {
		case s.cpuSlots <- struct{}{}:
			defer func() { <-s.cpuSlots }()
		case <-s.stop:
			return nil, *route, ErrClosed
		}
	}
	done := job.Trace.StartSpan("cpu_merge")
	res, err := s.cpu.Compact(job, env)
	done()
	s.noteCPUJob()
	return res, *route, err
}

// channelLoop is one device channel: it drains the shared queue and runs
// attempts on its own executor instance.
func (s *Scheduler) channelLoop(lane int) {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case req := <-s.queue:
			req.dequeued()
			res, err := s.deviceAttempt(lane, req)
			req.done <- deviceResult{res: res, lane: lane, err: err}
		}
	}
}

// deviceAttempt runs one attempt on lane, applying any injected fault.
// The deadline cuts short only injected stalls: a merge that actually
// started always runs to completion, so a timed-out attempt never leaves
// a concurrent writer behind.
func (s *Scheduler) deviceAttempt(lane int, req *request) (*compaction.Result, error) {
	var fault Fault
	if s.injector != nil {
		fault = s.injector.NextFault(lane, req.job)
	}
	switch fault.Kind {
	case FaultStall:
		stall := s.tun.DeviceDeadline
		if fault.Delay > 0 && fault.Delay < stall {
			stall = fault.Delay
		}
		if !s.sleep(stall) {
			return nil, ErrClosed
		}
		if fault.Delay == 0 || fault.Delay >= s.tun.DeviceDeadline {
			return nil, fmt.Errorf("%w: %s stalled %s", ErrDeviceTimeout, laneName(lane), s.tun.DeviceDeadline)
		}
	case FaultSlow:
		if !s.sleep(fault.Delay) {
			return nil, ErrClosed
		}
	case FaultError:
		return nil, fmt.Errorf("%w: %s rejected the job", ErrDeviceFault, laneName(lane))
	}
	env := req.env
	var fe *faultEnv
	if fault.Kind == FaultWrite {
		fe = newFaultEnv(req.env, fault.FailAfterBytes)
		env = fe
	}
	done := req.job.Trace.StartSpan("device_merge")
	res, err := s.devices[lane].Compact(req.job, env)
	done()
	if err != nil && fe != nil && fe.tripped() {
		// The executor failed because of the injected output error: tag
		// it so the scheduler retries/falls back instead of surfacing it.
		err = fmt.Errorf("%w: mid-merge write on %s: %w", ErrDeviceFault, laneName(lane), err)
	}
	return res, err
}

// sleep waits d or until Close; it reports whether the full wait elapsed.
func (s *Scheduler) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.stop:
		return false
	}
}

func laneName(lane int) string { return fmt.Sprintf("device-%d", lane) }

// Stats returns a snapshot of the routing counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.st
	out.LaneJobs = append([]int64(nil), s.st.LaneJobs...)
	out.QueueDepth = len(s.queue)
	return out
}

func (s *Scheduler) noteDeviceJob(lane int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.DeviceJobs++
	for len(s.st.LaneJobs) <= lane {
		s.st.LaneJobs = append(s.st.LaneJobs, 0)
	}
	s.st.LaneJobs[lane]++
}

func (s *Scheduler) noteCPUJob() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.CPUJobs++
}

func (s *Scheduler) noteFault(timeout bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.Faults++
	if timeout {
		s.st.Timeouts++
	}
}

func (s *Scheduler) noteRetry() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.Retries++
}

func (s *Scheduler) noteFallback(reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch reason {
	case ReasonFanIn:
		s.st.FallbackFanIn++
	case ReasonBudget:
		s.st.FallbackBudget++
	case ReasonSaturated:
		s.st.FallbackSaturated++
	case ReasonFault:
		s.st.FallbackFault++
	}
}

// PublishMetrics implements obs.MetricsPublisher: routing counters appear
// as callback gauges (dispatch_device_jobs, dispatch_cpu_jobs,
// dispatch_lane<i>_jobs, dispatch_faults, dispatch_timeouts,
// dispatch_retries, dispatch_fallback_{fanin,budget,saturated,fault},
// dispatch_queue_depth).
func (s *Scheduler) PublishMetrics(r *obs.Registry) {
	stat := func(pick func(Stats) float64) func() float64 {
		return func() float64 { return pick(s.Stats()) }
	}
	r.GaugeFunc("dispatch_device_jobs", stat(func(st Stats) float64 { return float64(st.DeviceJobs) }))
	r.GaugeFunc("dispatch_cpu_jobs", stat(func(st Stats) float64 { return float64(st.CPUJobs) }))
	r.GaugeFunc("dispatch_faults", stat(func(st Stats) float64 { return float64(st.Faults) }))
	r.GaugeFunc("dispatch_timeouts", stat(func(st Stats) float64 { return float64(st.Timeouts) }))
	r.GaugeFunc("dispatch_retries", stat(func(st Stats) float64 { return float64(st.Retries) }))
	r.GaugeFunc("dispatch_fallback_fanin", stat(func(st Stats) float64 { return float64(st.FallbackFanIn) }))
	r.GaugeFunc("dispatch_fallback_budget", stat(func(st Stats) float64 { return float64(st.FallbackBudget) }))
	r.GaugeFunc("dispatch_fallback_saturated", stat(func(st Stats) float64 { return float64(st.FallbackSaturated) }))
	r.GaugeFunc("dispatch_fallback_fault", stat(func(st Stats) float64 { return float64(st.FallbackFault) }))
	r.GaugeFunc("dispatch_queue_depth", stat(func(st Stats) float64 { return float64(st.QueueDepth) }))
	for i := range s.devices {
		lane := i
		r.GaugeFunc(fmt.Sprintf("dispatch_lane%d_jobs", lane), func() float64 {
			st := s.Stats()
			if lane < len(st.LaneJobs) {
				return float64(st.LaneJobs[lane])
			}
			return 0
		})
	}
}
