// Package dispatch is the host-side compaction-offload scheduler (the
// paper's Fig. 6 routing box grown into a subsystem, following LUDA's
// observation that offload wins hinge on keeping the device busy, not on
// the kernel alone). It owns a two-priority job queue feeding a pool of
// device channels — each wrapping one compaction executor instance, the
// analogue of one FCAE compaction unit — plus a software (CPU) lane, and
// routes every job through an admission policy:
//
//   - fan-in: jobs whose run count exceeds the device's N go to the CPU
//     lane (the paper's "#SSTable in L0 > N-1 → SW compaction" rule);
//   - image budget: jobs whose input bytes exceed the device image budget
//     go to the CPU lane (the images would not fit card DRAM);
//   - arena: jobs whose input bytes exceed the per-channel staging arena
//     go to the CPU lane (the images would not fit the channel's
//     persistent device-memory allocation);
//   - backpressure: when the device queue is full the job runs on the CPU
//     lane immediately instead of stalling the compaction worker;
//   - fault fallback: a device attempt that faults or times out is
//     retried with backoff, then degraded to the CPU lane — a flaky card
//     slows compaction down, it never wedges the store.
//
// Admitted jobs queue at one of two priorities: PriorityL0 jobs (the
// L0→L1 compactions that gate foreground writes) dequeue ahead of
// PriorityDeep jobs in queue order — no mid-job preemption — with
// starvation aging: a deep job whose head-of-queue wait exceeds
// Tuning.AgingWait is promoted past the L0 backlog so deep levels still
// drain under sustained flush pressure.
//
// The scheduler is deliberately oblivious to what a job merges: it sees
// compaction.Job/Env and returns compaction.Result, so the lsm layer's
// manifest bookkeeping is untouched by routing decisions.
package dispatch

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fcae/internal/compaction"
	"fcae/internal/obs"
)

// Lane identifies the lane that completed a job (see obs.Lane).
type Lane = obs.Lane

// RouteReason explains a CPU routing (see obs.RouteReason).
type RouteReason = obs.RouteReason

// Priority is the queue lane a job is enqueued on (see obs.Priority).
type Priority = obs.Priority

// Priorities, low to high.
const (
	// PriorityDeep is the default for deep-level compactions.
	PriorityDeep = obs.PriorityDeep
	// PriorityL0 marks flush-driven L0 jobs; they dequeue first.
	PriorityL0 = obs.PriorityL0
)

// Route reasons reported in Route.Reason and the obs trace records.
const (
	// ReasonFanIn: the job's run count exceeded the device's MaxRuns.
	ReasonFanIn = obs.RouteFanIn
	// ReasonBudget: the job's input bytes exceeded DeviceImageBudget.
	ReasonBudget = obs.RouteImageBudget
	// ReasonArena: the job would not fit the per-channel staging arena,
	// at admission (sized check) or at run time (builder exhausted it).
	ReasonArena = obs.RouteArena
	// ReasonSaturated: the device queue was full at admission.
	ReasonSaturated = obs.RouteSaturated
	// ReasonFault: device attempts faulted until retries were exhausted.
	ReasonFault = obs.RouteDeviceFault
	// ReasonNoDevice: the scheduler has no device channels configured.
	ReasonNoDevice = obs.RouteNoDevice
)

// ArenaSizer is implemented by device executors that stage jobs in a
// persistent device-memory arena (core.Executor). The scheduler uses it
// for admission: jobs whose input bytes exceed the smallest channel's
// budget route to the CPU lane up front instead of failing mid-build.
type ArenaSizer interface {
	// ArenaBytes is the arena's total capacity (0 = no arena).
	ArenaBytes() int64
	// ArenaInputBudget is the largest job input size the arena can
	// stage (0 = no arena, unlimited admission).
	ArenaInputBudget() int64
	// ArenaHighWater is the peak arena occupancy over the channel's
	// lifetime (0 = no arena). Unlike the two sizing bounds it moves
	// while the scheduler runs, so Stats reads it per snapshot.
	ArenaHighWater() int64
}

// Tuning bounds the scheduler's queueing and retry behavior. The zero
// value selects the documented defaults.
type Tuning struct {
	// QueueDepth bounds the device job queue across both priorities
	// (default 2x channels). A full queue routes new jobs to the CPU
	// lane instead of blocking.
	QueueDepth int
	// DeviceDeadline caps one device attempt's stall time (default 2s).
	// Only injected stalls are cut short — a merge that is actually
	// executing is never abandoned, so no orphan writer survives a
	// timeout.
	DeviceDeadline time.Duration
	// MaxDeviceRetries is how many times a faulted job is re-dispatched
	// to the device pool before falling back to the CPU lane (default 1;
	// set -1 to disable retries).
	MaxDeviceRetries int
	// RetryBackoff is the base backoff between device retries, scaled
	// linearly by attempt number (default 10ms).
	RetryBackoff time.Duration
	// DeviceImageBudget caps the input bytes of a device job; larger jobs
	// route to the CPU lane. 0 means unlimited.
	DeviceImageBudget int64
	// CPUSlots bounds concurrent CPU-lane merges; 0 means unbounded (the
	// caller's worker count is the natural bound).
	CPUSlots int
	// AgingWait is the starvation bound for deep-priority jobs: a deep
	// job that has waited this long at its queue head is dequeued ahead
	// of pending L0 jobs (default 500ms).
	AgingWait time.Duration
	// DisablePriorityLanes collapses the two priorities into one FIFO
	// queue (the pre-priority behavior), for ablation and benchmarks.
	DisablePriorityLanes bool
	// PipelineDepth enables the CPU lane's stage-parallel data path
	// (read-ahead → merge → encode) with the given bounded queue depth;
	// 0 keeps the sequential reference path. Ignored when Config.CPU is
	// set explicitly.
	PipelineDepth int
	// PipelineEncoders is the CPU pipeline's encoder worker count; <= 0
	// selects min(GOMAXPROCS, 4). Ignored when PipelineDepth is 0 or
	// Config.CPU is set.
	PipelineEncoders int
}

// Validate rejects nonsensical tuning values.
func (t Tuning) Validate() error {
	neg := func(name string, v int64) error {
		return fmt.Errorf("dispatch: invalid Tuning: %s is negative (%d)", name, v)
	}
	switch {
	case t.QueueDepth < 0:
		return neg("QueueDepth", int64(t.QueueDepth))
	case t.DeviceDeadline < 0:
		return neg("DeviceDeadline", int64(t.DeviceDeadline))
	case t.MaxDeviceRetries < -1:
		return fmt.Errorf("dispatch: invalid Tuning: MaxDeviceRetries is %d (minimum -1)", t.MaxDeviceRetries)
	case t.RetryBackoff < 0:
		return neg("RetryBackoff", int64(t.RetryBackoff))
	case t.DeviceImageBudget < 0:
		return neg("DeviceImageBudget", t.DeviceImageBudget)
	case t.CPUSlots < 0:
		return neg("CPUSlots", int64(t.CPUSlots))
	case t.AgingWait < 0:
		return neg("AgingWait", int64(t.AgingWait))
	case t.PipelineDepth < 0:
		return neg("PipelineDepth", int64(t.PipelineDepth))
	}
	return nil
}

func (t Tuning) withDefaults(channels int) Tuning {
	if t.QueueDepth == 0 {
		t.QueueDepth = 2 * channels
	}
	if t.DeviceDeadline == 0 {
		t.DeviceDeadline = 2 * time.Second
	}
	if t.MaxDeviceRetries == 0 {
		t.MaxDeviceRetries = 1
	}
	if t.MaxDeviceRetries < 0 {
		t.MaxDeviceRetries = 0
	}
	if t.RetryBackoff == 0 {
		t.RetryBackoff = 10 * time.Millisecond
	}
	if t.AgingWait == 0 {
		t.AgingWait = 500 * time.Millisecond
	}
	return t
}

// Config assembles a Scheduler.
type Config struct {
	// Devices are the device channels, one executor instance per channel
	// (instances must not be shared: each is one simulated compaction
	// unit with its own pipeline). Empty means every job runs on the CPU
	// lane.
	Devices []compaction.Executor
	// CPU is the software fallback lane; nil selects compaction.CPU.
	CPU compaction.Executor
	// Injector, when non-nil, is consulted once per device attempt.
	Injector FaultInjector
	// Tuning bounds queueing and retries; zero value = defaults.
	Tuning Tuning
}

// Route describes where one job ran and why.
type Route struct {
	// Lane is the device channel or obs.LaneCPU.
	Lane Lane
	// Executor is the Name() of the executor that produced the result.
	Executor string
	// Reason explains a CPU routing (RouteNone when the job ran on a
	// device, or when the scheduler has devices and chose one by
	// default).
	Reason RouteReason
	// Priority is the queue priority the job was dispatched with.
	Priority Priority
	// DeviceAttempts counts device-lane attempts, including faulted ones.
	DeviceAttempts int
	// Faults counts injected faults and timeouts observed by this job.
	Faults int
}

// OnDevice reports whether the job completed on a device channel.
func (r Route) OnDevice() bool { return r.Lane.IsDevice() }

// Fallback reports whether the job ran on the CPU lane despite device
// channels being configured — the stat the paper's Fig. 6 "SW compaction"
// arrow counts. A pure-CPU configuration is not a fallback.
func (r Route) Fallback() bool {
	return r.Lane == obs.LaneCPU && r.Reason != obs.RouteNone && r.Reason != ReasonNoDevice
}

// Stats is a snapshot of the scheduler's routing counters.
type Stats struct {
	// DeviceJobs / CPUJobs count completed merges per lane class.
	DeviceJobs int64 `json:"device_jobs"`
	CPUJobs    int64 `json:"cpu_jobs"`
	// LaneJobs breaks DeviceJobs down per device channel.
	LaneJobs []int64 `json:"lane_jobs,omitempty"`
	// Faults counts injected device faults (including timeouts); Timeouts
	// counts the deadline subset. Retries counts re-dispatches.
	Faults   int64 `json:"faults"`
	Timeouts int64 `json:"timeouts"`
	Retries  int64 `json:"retries"`
	// CPU-fallback routings by reason.
	FallbackFanIn     int64 `json:"fallback_fanin"`
	FallbackBudget    int64 `json:"fallback_budget"`
	FallbackArena     int64 `json:"fallback_arena"`
	FallbackSaturated int64 `json:"fallback_saturated"`
	FallbackFault     int64 `json:"fallback_fault"`
	// QueueDepth is the instantaneous device-queue occupancy across both
	// priorities; QueueDepthHigh/QueueDepthLow split it per lane.
	QueueDepth     int `json:"queue_depth"`
	QueueDepthHigh int `json:"queue_depth_high"`
	QueueDepthLow  int `json:"queue_depth_low"`
	// AgingPromotions counts deep jobs dequeued ahead of a pending L0
	// backlog because they aged past Tuning.AgingWait.
	AgingPromotions int64 `json:"aging_promotions"`
	// ArenaBytes is the summed staging-arena capacity across channels.
	ArenaBytes int64 `json:"arena_bytes"`
	// ArenaHighWater is each channel's peak staging-arena occupancy
	// (indexed like LaneJobs; 0 for channels without an arena). Peaks
	// near the per-channel capacity mean jobs are about to spill to
	// heap fallback; peaks far below it mean the carve is oversized.
	ArenaHighWater []int64 `json:"arena_high_water,omitempty"`
}

// request is one job handed to a device channel.
type request struct {
	job *compaction.Job
	env compaction.Env
	pri Priority
	// queuedAt is when the request entered the queue; the aging rule
	// compares against it.
	queuedAt time.Time
	// dequeued ends the job's dispatch_queue trace span; the channel
	// calls it once at pickup.
	dequeued func()
	// done is send-only from the request's perspective: the channel
	// goroutine (or Close's drain) resolves it exactly once; only the
	// Execute call that made the channel receives.
	done chan<- deviceResult
}

type deviceResult struct {
	res  *compaction.Result
	lane int
	err  error
}

// Scheduler routes compaction jobs between the device channel pool and
// the CPU lane. Safe for concurrent Execute calls; Close joins every
// channel goroutine.
type Scheduler struct {
	// Immutable after New.
	devices     []compaction.Executor
	cpu         compaction.Executor
	injector    FaultInjector
	tun         Tuning
	maxRuns     int
	arenaBytes  int64         // summed channel arena capacity
	arenaBudget int64         // smallest positive channel input budget
	qcond       *sync.Cond    // signals queue state changes; locks qmu
	cpuSlots    chan struct{} // nil when CPUSlots == 0
	stop        chan struct{}
	wg          sync.WaitGroup

	qmu        sync.Mutex
	high       []*request // PriorityL0 jobs, FIFO
	low        []*request // PriorityDeep jobs, FIFO
	qclosed    bool
	promotions int64

	mu     sync.Mutex
	closed bool
	st     Stats
}

// New builds a scheduler and starts one goroutine per device channel.
// The caller must Close it to join them.
func New(cfg Config) (*Scheduler, error) {
	if err := cfg.Tuning.Validate(); err != nil {
		return nil, err
	}
	for i, d := range cfg.Devices {
		if d == nil {
			return nil, fmt.Errorf("dispatch: device channel %d is nil", i)
		}
	}
	cpu := cfg.CPU
	if cpu == nil {
		cpu = compaction.CPU{Pipeline: compaction.PipelineConfig{
			Depth:    cfg.Tuning.PipelineDepth,
			Encoders: cfg.Tuning.PipelineEncoders,
		}}
	}
	s := &Scheduler{
		devices:  cfg.Devices,
		cpu:      cpu,
		injector: cfg.Injector,
		tun:      cfg.Tuning.withDefaults(len(cfg.Devices)),
		stop:     make(chan struct{}),
	}
	s.qcond = sync.NewCond(&s.qmu)
	// The pool's admission limits are the weakest channel's (0 = none).
	for _, d := range s.devices {
		if m := d.MaxRuns(); m > 0 && (s.maxRuns == 0 || m < s.maxRuns) {
			s.maxRuns = m
		}
		if az, ok := d.(ArenaSizer); ok {
			s.arenaBytes += az.ArenaBytes()
			if b := az.ArenaInputBudget(); b > 0 && (s.arenaBudget == 0 || b < s.arenaBudget) {
				s.arenaBudget = b
			}
		}
	}
	if s.tun.CPUSlots > 0 {
		s.cpuSlots = make(chan struct{}, s.tun.CPUSlots)
	}
	if len(s.devices) > 0 {
		s.st.LaneJobs = make([]int64, len(s.devices))
	}
	for i := range s.devices {
		s.wg.Add(1)
		go s.channelLoop(i)
	}
	return s, nil
}

// Channels returns the device channel count.
func (s *Scheduler) Channels() int { return len(s.devices) }

// MaxRuns returns the device pool's admission fan-in limit (0 unlimited).
func (s *Scheduler) MaxRuns() int { return s.maxRuns }

// ArenaBudget returns the admission input-bytes bound derived from the
// channels' staging arenas (0 when no channel has one).
func (s *Scheduler) ArenaBudget() int64 { return s.arenaBudget }

// Close stops the channel goroutines and fails stranded requests. Safe to
// call twice. In-flight Execute calls return ErrClosed.
//
// New makes s.stop, but shutdown is Close's one job: closing the stop
// channel here is the designed hand-off, declared below so chanflow
// holds every other close site to the owner rule.
//
//fcae:chan-owner dispatch.Scheduler.stop
func (s *Scheduler) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	// Wake channel goroutines blocked in dequeue and enqueue waiters;
	// both exit on qclosed.
	s.qmu.Lock()
	s.qclosed = true
	s.qcond.Broadcast()
	s.qmu.Unlock()
	s.wg.Wait()
	// Fail whatever was still queued. The sends happen outside qmu (done
	// is buffered, but no channel op runs under a held mutex).
	s.qmu.Lock()
	stranded := append(s.high, s.low...)
	s.high, s.low = nil, nil
	s.qmu.Unlock()
	for _, req := range stranded {
		req.done <- deviceResult{err: ErrClosed}
	}
	return nil
}

// enqueue queues req at its priority. ok is false when the queue is full
// and block is unset (backpressure routing); err is ErrClosed after
// Close. Blocking waits are woken by dequeues and by Close.
func (s *Scheduler) enqueue(req *request, block bool) (ok bool, err error) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	for {
		if s.qclosed {
			return false, ErrClosed
		}
		if len(s.high)+len(s.low) < s.tun.QueueDepth {
			break
		}
		if !block {
			return false, nil
		}
		s.qcond.Wait()
	}
	req.queuedAt = time.Now()
	if req.pri == PriorityL0 && !s.tun.DisablePriorityLanes {
		s.high = append(s.high, req)
	} else {
		s.low = append(s.low, req)
	}
	s.qcond.Broadcast()
	return true, nil
}

// dequeue blocks for the next request, honoring priority and the aging
// rule; it returns nil when the scheduler closes.
func (s *Scheduler) dequeue() *request {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	for {
		if s.qclosed {
			return nil
		}
		if len(s.high) > 0 || len(s.low) > 0 {
			break
		}
		s.qcond.Wait()
	}
	// L0 first; but a deep job that aged past AgingWait at its queue
	// head goes ahead of the L0 backlog (starvation bound).
	var req *request
	aged := len(s.low) > 0 && time.Since(s.low[0].queuedAt) >= s.tun.AgingWait
	if len(s.high) == 0 || aged {
		if aged && len(s.high) > 0 {
			s.promotions++
		}
		req = s.low[0]
		s.low = popFront(s.low)
	} else {
		req = s.high[0]
		s.high = popFront(s.high)
	}
	// A slot freed: wake blocked enqueuers.
	s.qcond.Broadcast()
	return req
}

// popFront drops q's head in place, clearing the vacated tail slot so the
// request doesn't leak through the backing array.
func popFront(q []*request) []*request {
	copy(q, q[1:])
	q[len(q)-1] = nil
	return q[:len(q)-1]
}

// Execute runs one compaction job through the routing policy and returns
// the merged result plus the route taken. Blocking: the calling worker
// owns the job until a lane resolves it. pri selects the queue priority;
// PriorityL0 jobs dequeue ahead of PriorityDeep ones.
func (s *Scheduler) Execute(job *compaction.Job, env compaction.Env, pri Priority) (*compaction.Result, Route, error) {
	route := Route{Priority: pri}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, route, ErrClosed
	}
	switch {
	case len(s.devices) == 0:
		route.Reason = ReasonNoDevice
		return s.runCPU(job, env, &route)
	case s.maxRuns > 0 && job.NumRuns() > s.maxRuns:
		route.Reason = ReasonFanIn
		s.noteFallback(ReasonFanIn)
		return s.runCPU(job, env, &route)
	case s.tun.DeviceImageBudget > 0 && job.InputBytes() > s.tun.DeviceImageBudget:
		route.Reason = ReasonBudget
		s.noteFallback(ReasonBudget)
		return s.runCPU(job, env, &route)
	case s.arenaBudget > 0 && job.InputBytes() > s.arenaBudget:
		route.Reason = ReasonArena
		s.noteFallback(ReasonArena)
		return s.runCPU(job, env, &route)
	}

	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if !s.sleep(time.Duration(attempt) * s.tun.RetryBackoff) {
				return nil, route, ErrClosed
			}
		}
		done := make(chan deviceResult, 1)
		req := &request{
			job:      job,
			env:      env,
			pri:      pri,
			dequeued: job.Trace.StartSpan("dispatch_queue"),
			done:     done,
		}
		// First admission never blocks: a saturated device pool means
		// the CPU lane is the faster path (backpressure routing).
		ok, err := s.enqueue(req, attempt > 0)
		if err != nil {
			return nil, route, err
		}
		if !ok {
			route.Reason = ReasonSaturated
			s.noteFallback(ReasonSaturated)
			return s.runCPU(job, env, &route)
		}
		route.DeviceAttempts++
		var r deviceResult
		select {
		case r = <-done:
		case <-s.stop:
			return nil, route, ErrClosed
		}
		switch {
		case r.err == nil:
			route.Lane = obs.DeviceLane(r.lane)
			route.Executor = s.devices[r.lane].Name()
			s.noteDeviceJob(r.lane)
			return r.res, route, nil
		case errors.Is(r.err, ErrClosed):
			return nil, route, r.err
		case errors.Is(r.err, compaction.ErrArenaExhausted):
			// The channel's staging arena could not hold the job — a
			// deterministic property of the job's shape, not flakiness:
			// rerunning on a device would fail the same way, so route to
			// the CPU lane without burning retries.
			route.Reason = ReasonArena
			s.noteFallback(ReasonArena)
			return s.runCPU(job, env, &route)
		case !errors.Is(r.err, ErrDeviceFault) && !errors.Is(r.err, ErrDeviceTimeout):
			// A genuine merge failure (corrupt input, disk full) is not
			// device flakiness; masking it behind a CPU retry would hide
			// data errors, so it surfaces to the caller as-is.
			route.Lane = obs.DeviceLane(r.lane)
			route.Executor = s.devices[r.lane].Name()
			return nil, route, r.err
		}
		route.Faults++
		s.noteFault(errors.Is(r.err, ErrDeviceTimeout))
		if attempt >= s.tun.MaxDeviceRetries {
			route.Reason = ReasonFault
			s.noteFallback(ReasonFault)
			return s.runCPU(job, env, &route)
		}
		s.noteRetry()
	}
}

// runCPU executes the job on the software lane.
func (s *Scheduler) runCPU(job *compaction.Job, env compaction.Env, route *Route) (*compaction.Result, Route, error) {
	route.Lane = obs.LaneCPU
	route.Executor = s.cpu.Name()
	if s.cpuSlots != nil {
		select {
		case s.cpuSlots <- struct{}{}:
			defer func() { <-s.cpuSlots }()
		case <-s.stop:
			return nil, *route, ErrClosed
		}
	}
	done := job.Trace.StartSpan("cpu_merge")
	res, err := s.cpu.Compact(job, env)
	done()
	s.noteCPUJob()
	return res, *route, err
}

// channelLoop is one device channel: it drains the priority queue and
// runs attempts on its own executor instance.
func (s *Scheduler) channelLoop(lane int) {
	defer s.wg.Done()
	for {
		req := s.dequeue()
		if req == nil {
			return
		}
		req.dequeued()
		res, err := s.deviceAttempt(lane, req)
		req.done <- deviceResult{res: res, lane: lane, err: err}
	}
}

// deviceAttempt runs one attempt on lane, applying any injected fault.
// The deadline cuts short only injected stalls: a merge that actually
// started always runs to completion, so a timed-out attempt never leaves
// a concurrent writer behind.
func (s *Scheduler) deviceAttempt(lane int, req *request) (*compaction.Result, error) {
	var fault Fault
	if s.injector != nil {
		fault = s.injector.NextFault(lane, req.job)
	}
	switch fault.Kind {
	case FaultStall:
		stall := s.tun.DeviceDeadline
		if fault.Delay > 0 && fault.Delay < stall {
			stall = fault.Delay
		}
		if !s.sleep(stall) {
			return nil, ErrClosed
		}
		if fault.Delay == 0 || fault.Delay >= s.tun.DeviceDeadline {
			return nil, fmt.Errorf("%w: %s stalled %s", ErrDeviceTimeout, laneName(lane), s.tun.DeviceDeadline)
		}
	case FaultSlow:
		if !s.sleep(fault.Delay) {
			return nil, ErrClosed
		}
	case FaultError:
		return nil, fmt.Errorf("%w: %s rejected the job", ErrDeviceFault, laneName(lane))
	}
	env := req.env
	var fe *faultEnv
	if fault.Kind == FaultWrite {
		fe = newFaultEnv(req.env, fault.FailAfterBytes)
		env = fe
	}
	done := req.job.Trace.StartSpan("device_merge")
	res, err := s.devices[lane].Compact(req.job, env)
	done()
	if err != nil && fe != nil && fe.tripped() {
		// The executor failed because of the injected output error: tag
		// it so the scheduler retries/falls back instead of surfacing it.
		err = fmt.Errorf("%w: mid-merge write on %s: %w", ErrDeviceFault, laneName(lane), err)
	}
	return res, err
}

// sleep waits d or until Close; it reports whether the full wait elapsed.
func (s *Scheduler) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.stop:
		return false
	}
}

func laneName(lane int) string { return obs.DeviceLane(lane).String() }

// Stats returns a snapshot of the routing counters. The two mutexes are
// taken in sequence, never nested.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	out := s.st
	out.LaneJobs = append([]int64(nil), s.st.LaneJobs...)
	s.mu.Unlock()
	s.qmu.Lock()
	out.QueueDepthHigh = len(s.high)
	out.QueueDepthLow = len(s.low)
	out.QueueDepth = len(s.high) + len(s.low)
	out.AgingPromotions = s.promotions
	s.qmu.Unlock()
	out.ArenaBytes = s.arenaBytes
	// High-water marks move while the scheduler runs; read them live,
	// outside both mutexes (the executors do their own locking).
	for i, d := range s.devices {
		if az, ok := d.(ArenaSizer); ok {
			if hw := az.ArenaHighWater(); hw > 0 {
				if out.ArenaHighWater == nil {
					out.ArenaHighWater = make([]int64, len(s.devices))
				}
				out.ArenaHighWater[i] = hw
			}
		}
	}
	return out
}

func (s *Scheduler) noteDeviceJob(lane int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.DeviceJobs++
	for len(s.st.LaneJobs) <= lane {
		s.st.LaneJobs = append(s.st.LaneJobs, 0)
	}
	s.st.LaneJobs[lane]++
}

func (s *Scheduler) noteCPUJob() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.CPUJobs++
}

func (s *Scheduler) noteFault(timeout bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.Faults++
	if timeout {
		s.st.Timeouts++
	}
}

func (s *Scheduler) noteRetry() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.Retries++
}

func (s *Scheduler) noteFallback(reason RouteReason) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch reason {
	case ReasonFanIn:
		s.st.FallbackFanIn++
	case ReasonBudget:
		s.st.FallbackBudget++
	case ReasonArena:
		s.st.FallbackArena++
	case ReasonSaturated:
		s.st.FallbackSaturated++
	case ReasonFault:
		s.st.FallbackFault++
	}
}

// PublishMetrics implements obs.MetricsPublisher: routing counters appear
// as callback gauges (dispatch_device_jobs, dispatch_cpu_jobs,
// dispatch_lane<i>_jobs, dispatch_faults, dispatch_timeouts,
// dispatch_retries, dispatch_fallback_{fanin,budget,arena,saturated,fault},
// dispatch_queue_depth, dispatch_queue_high, dispatch_queue_low,
// dispatch_aging_promotions, dispatch_arena_bytes,
// dispatch_arena_high_water_bytes — the most-pressured channel's peak
// arena occupancy, i.e. how close the pool has come to heap spill — and,
// per arena-sized device channel, dispatch_arena_high_water_bytes_chan<i>
// so uneven per-channel pressure is visible, not just the max).
func (s *Scheduler) PublishMetrics(r *obs.Registry) {
	stat := func(pick func(Stats) float64) func() float64 {
		return func() float64 { return pick(s.Stats()) }
	}
	r.GaugeFunc("dispatch_device_jobs", stat(func(st Stats) float64 { return float64(st.DeviceJobs) }))
	r.GaugeFunc("dispatch_cpu_jobs", stat(func(st Stats) float64 { return float64(st.CPUJobs) }))
	r.GaugeFunc("dispatch_faults", stat(func(st Stats) float64 { return float64(st.Faults) }))
	r.GaugeFunc("dispatch_timeouts", stat(func(st Stats) float64 { return float64(st.Timeouts) }))
	r.GaugeFunc("dispatch_retries", stat(func(st Stats) float64 { return float64(st.Retries) }))
	r.GaugeFunc("dispatch_fallback_fanin", stat(func(st Stats) float64 { return float64(st.FallbackFanIn) }))
	r.GaugeFunc("dispatch_fallback_budget", stat(func(st Stats) float64 { return float64(st.FallbackBudget) }))
	r.GaugeFunc("dispatch_fallback_arena", stat(func(st Stats) float64 { return float64(st.FallbackArena) }))
	r.GaugeFunc("dispatch_fallback_saturated", stat(func(st Stats) float64 { return float64(st.FallbackSaturated) }))
	r.GaugeFunc("dispatch_fallback_fault", stat(func(st Stats) float64 { return float64(st.FallbackFault) }))
	r.GaugeFunc("dispatch_queue_depth", stat(func(st Stats) float64 { return float64(st.QueueDepth) }))
	r.GaugeFunc("dispatch_queue_high", stat(func(st Stats) float64 { return float64(st.QueueDepthHigh) }))
	r.GaugeFunc("dispatch_queue_low", stat(func(st Stats) float64 { return float64(st.QueueDepthLow) }))
	r.GaugeFunc("dispatch_aging_promotions", stat(func(st Stats) float64 { return float64(st.AgingPromotions) }))
	r.GaugeFunc("dispatch_arena_bytes", stat(func(st Stats) float64 { return float64(st.ArenaBytes) }))
	r.GaugeFunc("dispatch_arena_high_water_bytes", stat(func(st Stats) float64 {
		var peak int64
		for _, hw := range st.ArenaHighWater {
			if hw > peak {
				peak = hw
			}
		}
		return float64(peak)
	}))
	for i := range s.devices {
		lane := i
		r.GaugeFunc(fmt.Sprintf("dispatch_lane%d_jobs", lane), func() float64 {
			st := s.Stats()
			if lane < len(st.LaneJobs) {
				return float64(st.LaneJobs[lane])
			}
			return 0
		})
		if _, ok := s.devices[i].(ArenaSizer); !ok {
			continue
		}
		r.GaugeFunc(fmt.Sprintf("dispatch_arena_high_water_bytes_chan%d", lane), func() float64 {
			st := s.Stats()
			if lane < len(st.ArenaHighWater) {
				return float64(st.ArenaHighWater[lane])
			}
			return 0
		})
	}
}
