package dispatch

import (
	"errors"
	"io"
	"math/rand"
	"sync"
	"time"

	"fcae/internal/compaction"
)

// Fault injection. A simulated device can only fail if something makes it
// fail: the injector is consulted once per device attempt and decides
// whether the attempt proceeds cleanly, errors out before the merge,
// suffers an I/O error mid-merge (through a wrapped Env, so the executor
// fails through its own error path with half-written outputs on disk),
// stalls past the attempt deadline, or merely runs slow. Injected faults
// carry the ErrDeviceFault / ErrDeviceTimeout sentinels, which is what the
// scheduler's retry/fallback logic keys on — a genuine merge error (bad
// input bytes, disk full) deliberately does NOT match them and is returned
// to the caller unmasked.

// Sentinel errors produced by the fault layer and the scheduler.
var (
	// ErrDeviceFault marks an injected device error; the scheduler retries
	// and ultimately falls back to the CPU lane.
	ErrDeviceFault = errors.New("dispatch: injected device fault")
	// ErrDeviceTimeout marks a device attempt that exceeded its deadline
	// while stalled; handled like a fault.
	ErrDeviceTimeout = errors.New("dispatch: device attempt deadline exceeded")
	// ErrClosed is returned by Execute after Close.
	ErrClosed = errors.New("dispatch: scheduler closed")
)

// FaultKind classifies one injected fault.
type FaultKind int

const (
	// FaultNone lets the attempt run cleanly.
	FaultNone FaultKind = iota
	// FaultError fails the attempt before the merge starts (the card
	// rejects the job: DMA error, ECC fault).
	FaultError
	// FaultWrite injects a write error partway through the merge's output,
	// so the executor fails mid-compaction with real half-written tables
	// on disk — the integrity-critical case.
	FaultWrite
	// FaultStall wedges the attempt until the scheduler's deadline fires
	// (a hung channel); surfaces as ErrDeviceTimeout.
	FaultStall
	// FaultSlow delays the attempt by Delay, then runs it normally. Useful
	// for provoking queue backpressure and overlapping compactions.
	FaultSlow
)

// String names the kind for diagnostics.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultError:
		return "error"
	case FaultWrite:
		return "write-error"
	case FaultStall:
		return "stall"
	case FaultSlow:
		return "slow"
	}
	return "unknown"
}

// Fault is one injected behavior for a single device attempt.
type Fault struct {
	Kind FaultKind
	// Delay applies to FaultSlow (extra latency before the merge). For
	// FaultStall a zero Delay stalls for the full attempt deadline.
	Delay time.Duration
	// FailAfterBytes bounds how many output bytes a FaultWrite attempt
	// writes before the injected error; 0 fails on the first write.
	FailAfterBytes int64
}

// FaultInjector decides the fate of each device attempt. Implementations
// must be safe for concurrent use: every device channel consults the
// injector from its own goroutine.
type FaultInjector interface {
	// NextFault is called once per device attempt, before the merge.
	NextFault(lane int, job *compaction.Job) Fault
}

// ProbInjector injects faults at a fixed probability with a deterministic
// seeded stream, splitting faults evenly between pre-merge errors,
// mid-merge write errors and stalls. An optional SlowRate adds benign
// latency to otherwise-clean attempts.
type ProbInjector struct {
	mu sync.Mutex
	// rng and the rates are set at construction and then only read under
	// mu together with the rng draw, keeping the stream deterministic
	// under concurrent channels (ordering aside).
	rng       *rand.Rand
	rate      float64
	slowRate  float64
	slowDelay time.Duration
}

// NewProbInjector returns an injector that faults each device attempt
// with probability rate (0..1), deterministically from seed.
func NewProbInjector(seed int64, rate float64) *ProbInjector {
	return &ProbInjector{rng: rand.New(rand.NewSource(seed)), rate: rate}
}

// WithSlow adds benign latency: non-faulted attempts are delayed by delay
// with probability slowRate. Returns the receiver for chaining.
func (p *ProbInjector) WithSlow(slowRate float64, delay time.Duration) *ProbInjector {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.slowRate, p.slowDelay = slowRate, delay
	return p
}

// NextFault implements FaultInjector.
func (p *ProbInjector) NextFault(lane int, job *compaction.Job) Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng.Float64() < p.rate {
		switch p.rng.Intn(3) {
		case 0:
			return Fault{Kind: FaultError}
		case 1:
			// Fail somewhere inside the first output table's worth of
			// bytes so the executor dies mid-merge, not at the very start.
			return Fault{Kind: FaultWrite, FailAfterBytes: p.rng.Int63n(1 << 16)}
		default:
			return Fault{Kind: FaultStall}
		}
	}
	if p.slowRate > 0 && p.rng.Float64() < p.slowRate {
		return Fault{Kind: FaultSlow, Delay: p.slowDelay}
	}
	return Fault{}
}

// ScriptInjector replays a fixed fault sequence, one entry per device
// attempt across all lanes, then returns FaultNone forever. Deterministic
// by construction, it is the routing-test workhorse.
type ScriptInjector struct {
	mu     sync.Mutex
	script []Fault
	next   int
}

// NewScriptInjector returns an injector replaying script in order.
func NewScriptInjector(script ...Fault) *ScriptInjector {
	return &ScriptInjector{script: script}
}

// NextFault implements FaultInjector.
func (s *ScriptInjector) NextFault(lane int, job *compaction.Job) Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next >= len(s.script) {
		return Fault{}
	}
	f := s.script[s.next]
	s.next++
	return f
}

// faultEnv wraps a job's Env so that output writes start failing after a
// byte budget, simulating a device that dies mid-compaction. It is used
// by a single attempt goroutine at a time, so the byte counter needs no
// lock. Outputs created before the trip point stay on disk exactly as a
// real torn device write would leave them; the store's pending-output
// sweep reclaims them once the job resolves elsewhere.
type faultEnv struct {
	env       compaction.Env
	remaining int64
	hit       bool
}

func newFaultEnv(env compaction.Env, failAfter int64) *faultEnv {
	return &faultEnv{env: env, remaining: failAfter}
}

// tripped reports whether the injected write error fired.
func (f *faultEnv) tripped() bool { return f.hit }

// NewOutput implements compaction.Env.
func (f *faultEnv) NewOutput() (uint64, io.WriteCloser, error) {
	num, w, err := f.env.NewOutput()
	if err != nil {
		return num, w, err
	}
	return num, &faultWriter{env: f, w: w}, nil
}

// faultWriter charges writes against the shared budget.
type faultWriter struct {
	env *faultEnv
	w   io.WriteCloser
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	if fw.env.hit || int64(len(p)) > fw.env.remaining {
		fw.env.hit = true
		return 0, ErrDeviceFault
	}
	fw.env.remaining -= int64(len(p))
	return fw.w.Write(p)
}

func (fw *faultWriter) Close() error { return fw.w.Close() }
