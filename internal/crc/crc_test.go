package crc

import (
	"testing"
	"testing/quick"
)

func TestMaskUnmaskInverse(t *testing.T) {
	t.Parallel()
	f := func(c uint32) bool { return Unmask(Mask(c)) == c }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaskChangesValue(t *testing.T) {
	t.Parallel()
	v := Value([]byte("foo"))
	if Mask(Unmask(v)) != v {
		t.Fatal("mask/unmask not symmetric")
	}
	if Unmask(v) == v {
		t.Fatal("masking should change the checksum")
	}
}

func TestExtendMatchesConcatenation(t *testing.T) {
	t.Parallel()
	a, b := []byte("hello "), []byte("world")
	whole := Value(append(append([]byte(nil), a...), b...))
	if got := Extend(Value(a), b); got != whole {
		t.Fatalf("Extend = %08x, want %08x", got, whole)
	}
}

func TestValueDistinguishesInputs(t *testing.T) {
	t.Parallel()
	if Value([]byte("a")) == Value([]byte("b")) {
		t.Fatal("different inputs produced equal checksums")
	}
}
