// Package crc provides the masked CRC-32C checksums used by the WAL and
// SSTable formats. Masking (rotate + constant) follows LevelDB so that
// checksums of data that itself contains checksums stay well distributed.
package crc

import "hash/crc32"

var table = crc32.MakeTable(crc32.Castagnoli)

const maskDelta = 0xa282ead8

// Value returns the masked CRC of data.
func Value(data []byte) uint32 { return Mask(crc32.Checksum(data, table)) }

// Extend returns the masked CRC of the concatenation of the data that
// produced masked CRC c and data.
func Extend(c uint32, data []byte) uint32 {
	return Mask(crc32.Update(Unmask(c), table, data))
}

// Mask converts a raw CRC to its stored form.
func Mask(c uint32) uint32 { return (c>>15 | c<<17) + maskDelta }

// Unmask recovers the raw CRC from its stored form.
func Unmask(m uint32) uint32 {
	r := m - maskDelta
	return r>>17 | r<<15
}
