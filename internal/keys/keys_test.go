package keys

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMakeInternalRoundTrip(t *testing.T) {
	t.Parallel()
	cases := []struct {
		user string
		seq  uint64
		kind Kind
	}{
		{"", 0, KindDelete},
		{"a", 1, KindSet},
		{"hello", 12345, KindSet},
		{"\xff\xff", MaxSeq, KindDelete},
	}
	for _, c := range cases {
		ik := MakeInternal(nil, []byte(c.user), c.seq, c.kind)
		if got := string(UserKey(ik)); got != c.user {
			t.Errorf("UserKey(%q@%d) = %q", c.user, c.seq, got)
		}
		seq, kind := DecodeTrailer(ik)
		if seq != c.seq || kind != c.kind {
			t.Errorf("DecodeTrailer(%q@%d:%v) = %d, %v", c.user, c.seq, c.kind, seq, kind)
		}
	}
}

func TestCompareOrdersUserKeyAscending(t *testing.T) {
	t.Parallel()
	a := MakeInternal(nil, []byte("aaa"), 5, KindSet)
	b := MakeInternal(nil, []byte("bbb"), 5, KindSet)
	if Compare(a, b) >= 0 {
		t.Fatal("aaa should sort before bbb")
	}
	if Compare(b, a) <= 0 {
		t.Fatal("bbb should sort after aaa")
	}
	if Compare(a, a) != 0 {
		t.Fatal("equal keys must compare 0")
	}
}

func TestCompareOrdersSeqDescending(t *testing.T) {
	t.Parallel()
	newer := MakeInternal(nil, []byte("k"), 10, KindSet)
	older := MakeInternal(nil, []byte("k"), 3, KindSet)
	if Compare(newer, older) >= 0 {
		t.Fatal("newer sequence must sort first")
	}
}

func TestCompareDeleteVsSetSameSeq(t *testing.T) {
	t.Parallel()
	del := MakeInternal(nil, []byte("k"), 7, KindDelete)
	set := MakeInternal(nil, []byte("k"), 7, KindSet)
	// Set (kind=1) packs to a larger trailer, so it sorts first.
	if Compare(set, del) >= 0 {
		t.Fatal("set should sort before delete at equal seq")
	}
}

func TestSeparatorProperties(t *testing.T) {
	t.Parallel()
	f := func(a, b []byte) bool {
		if bytes.Compare(a, b) >= 0 {
			a, b = b, a
		}
		if bytes.Equal(a, b) {
			return true
		}
		sep := Separator(a, b)
		return bytes.Compare(sep, a) >= 0 && bytes.Compare(sep, b) < 0 && len(sep) <= len(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSeparatorShortens(t *testing.T) {
	t.Parallel()
	sep := Separator([]byte("abcdefgh"), []byte("abzzz"))
	if want := "abd"; string(sep) != want {
		t.Fatalf("Separator = %q, want %q", sep, want)
	}
}

func TestSuccessorProperties(t *testing.T) {
	t.Parallel()
	f := func(a []byte) bool {
		s := Successor(a)
		return bytes.Compare(s, a) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSuccessorAllFF(t *testing.T) {
	t.Parallel()
	in := []byte{0xff, 0xff}
	if got := Successor(in); !bytes.Equal(got, in) {
		t.Fatalf("Successor(ff ff) = %x", got)
	}
}

func TestRangeContains(t *testing.T) {
	t.Parallel()
	r := Range{Start: []byte("b"), Limit: []byte("d")}
	for _, tc := range []struct {
		k  string
		in bool
	}{{"a", false}, {"b", true}, {"c", true}, {"d", false}, {"e", false}} {
		if got := r.Contains([]byte(tc.k)); got != tc.in {
			t.Errorf("Contains(%q) = %v, want %v", tc.k, got, tc.in)
		}
	}
	unbounded := Range{Start: []byte("b")}
	if !unbounded.Contains([]byte("zzzz")) {
		t.Error("unbounded range should contain large keys")
	}
}

func TestRangeOverlaps(t *testing.T) {
	t.Parallel()
	ab := Range{Start: []byte("a"), Limit: []byte("b")}
	bc := Range{Start: []byte("b"), Limit: []byte("c")}
	ac := Range{Start: []byte("a"), Limit: []byte("c")}
	if ab.Overlaps(bc) {
		t.Error("adjacent half-open ranges must not overlap")
	}
	if !ab.Overlaps(ac) || !bc.Overlaps(ac) {
		t.Error("contained ranges must overlap")
	}
	inf := Range{Start: []byte("a")}
	if !inf.Overlaps(bc) {
		t.Error("unbounded range overlaps everything above its start")
	}
}

func TestParse(t *testing.T) {
	t.Parallel()
	ik := MakeInternal(nil, []byte("user"), 42, KindSet)
	p, ok := Parse(ik)
	if !ok || string(p.User) != "user" || p.Seq != 42 || p.Kind != KindSet {
		t.Fatalf("Parse = %+v, %v", p, ok)
	}
	if _, ok := Parse([]byte("short")); ok {
		t.Fatal("Parse must reject short keys")
	}
}

func TestCompareLookupSkipsNewerEntries(t *testing.T) {
	t.Parallel()
	// A Get at snapshot seq=5 must land on the entry with seq<=5.
	lookup := MakeInternal(nil, []byte("k"), 5, KindSet)
	newer := MakeInternal(nil, []byte("k"), 9, KindSet)
	older := MakeInternal(nil, []byte("k"), 3, KindSet)
	if Compare(newer, lookup) >= 0 {
		t.Fatal("newer entry must sort before the lookup key")
	}
	if Compare(older, lookup) <= 0 {
		t.Fatal("older entry must sort after the lookup key")
	}
}
