// Package keys implements the internal key encoding used throughout the
// store. An internal key is the user key followed by an 8-byte trailer that
// packs a 56-bit sequence number and an 8-bit value kind, mirroring the
// LevelDB format the paper's engine operates on (the trailer is the "mark
// fields" of paper §V-A; the engine treats user key + trailer as one unit).
package keys

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Kind discriminates live values from tombstones inside the trailer.
type Kind uint8

const (
	// KindDelete marks a tombstone. It sorts after KindSet at equal
	// (userkey, seq) but that pair never occurs in practice.
	KindDelete Kind = 0
	// KindSet marks a live value.
	KindSet Kind = 1
)

// MaxSeq is the largest representable sequence number (56 bits).
const MaxSeq = uint64(1)<<56 - 1

// TrailerSize is the byte length of the seq+kind trailer.
const TrailerSize = 8

func (k Kind) String() string {
	switch k {
	case KindDelete:
		return "DEL"
	case KindSet:
		return "SET"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MakeInternal appends the trailer for (seq, kind) to user and returns the
// internal key. dst may be nil; the user key is copied.
func MakeInternal(dst, user []byte, seq uint64, kind Kind) []byte {
	dst = append(dst, user...)
	var tr [TrailerSize]byte
	binary.LittleEndian.PutUint64(tr[:], seq<<8|uint64(kind))
	return append(dst, tr[:]...)
}

// UserKey returns the user-key prefix of an internal key. It panics if ikey
// is shorter than the trailer.
func UserKey(ikey []byte) []byte {
	return ikey[:len(ikey)-TrailerSize]
}

// DecodeTrailer splits an internal key's trailer into sequence and kind.
func DecodeTrailer(ikey []byte) (seq uint64, kind Kind) {
	x := binary.LittleEndian.Uint64(ikey[len(ikey)-TrailerSize:])
	return x >> 8, Kind(x & 0xff)
}

// Valid reports whether ikey is long enough to hold a trailer.
func Valid(ikey []byte) bool { return len(ikey) >= TrailerSize }

// Compare orders internal keys: ascending user key, then descending
// sequence number, then descending kind, so that the newest entry for a
// user key sorts first.
func Compare(a, b []byte) int {
	if c := bytes.Compare(UserKey(a), UserKey(b)); c != 0 {
		return c
	}
	ta := binary.LittleEndian.Uint64(a[len(a)-TrailerSize:])
	tb := binary.LittleEndian.Uint64(b[len(b)-TrailerSize:])
	switch {
	case ta > tb:
		return -1
	case ta < tb:
		return 1
	}
	return 0
}

// CompareUser orders plain user keys bytewise.
func CompareUser(a, b []byte) int { return bytes.Compare(a, b) }

// Separator returns a key k with a <= k < b in user-key order that is as
// short as possible, used for index block separators. a and b are user
// keys; the result may alias a.
func Separator(a, b []byte) []byte {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	if i >= n {
		// One is a prefix of the other; a itself is the shortest choice.
		return a
	}
	if a[i] < 0xff && a[i]+1 < b[i] {
		sep := make([]byte, i+1)
		copy(sep, a[:i+1])
		sep[i]++
		return sep
	}
	return a
}

// Successor returns a short key >= a in user-key order, used as the final
// index entry of a table.
func Successor(a []byte) []byte {
	for i := 0; i < len(a); i++ {
		if a[i] != 0xff {
			s := make([]byte, i+1)
			copy(s, a[:i+1])
			s[i]++
			return s
		}
	}
	return a
}

// Range is an inclusive-exclusive span of user keys. An empty Limit means
// unbounded above.
type Range struct {
	Start []byte // inclusive
	Limit []byte // exclusive; nil = +inf
}

// Contains reports whether the range contains user key k.
func (r Range) Contains(k []byte) bool {
	if bytes.Compare(k, r.Start) < 0 {
		return false
	}
	return r.Limit == nil || bytes.Compare(k, r.Limit) < 0
}

// Overlaps reports whether two ranges intersect.
func (r Range) Overlaps(o Range) bool {
	if r.Limit != nil && bytes.Compare(o.Start, r.Limit) >= 0 {
		return false
	}
	if o.Limit != nil && bytes.Compare(r.Start, o.Limit) >= 0 {
		return false
	}
	return true
}

// ParsedKey is a decoded internal key, convenient for tests and debugging.
type ParsedKey struct {
	User []byte
	Seq  uint64
	Kind Kind
}

// Parse decodes ikey. ok is false when the key is too short.
func Parse(ikey []byte) (p ParsedKey, ok bool) {
	if !Valid(ikey) {
		return p, false
	}
	p.User = UserKey(ikey)
	p.Seq, p.Kind = DecodeTrailer(ikey)
	if p.Kind != KindDelete && p.Kind != KindSet {
		return p, false
	}
	return p, true
}

func (p ParsedKey) String() string {
	return fmt.Sprintf("%q@%d:%v", p.User, p.Seq, p.Kind)
}
