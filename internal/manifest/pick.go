package manifest

import (
	"fcae/internal/keys"
)

// Compaction describes one merge job: the files consumed from Level and
// Level+1 and the bookkeeping needed to install the result. It is exactly
// the unit the paper's host scheduler offloads to the FPGA (paper §IV
// steps 1-3); NumInputs tells the scheduler whether the job fits the
// engine's N-input limit (paper §VI-A).
type Compaction struct {
	Level  int
	Inputs [2][]*FileMetadata // Inputs[0] from Level, Inputs[1] from Level+1
	Cfg    Config

	// Tiered marks a full-level tiered merge: all runs of Level combine
	// into ONE fresh run at OutputLevel(), without touching the next
	// level's existing runs (the lazy part).
	Tiered bool

	// SmallestUser / LargestUser bound the union of all inputs.
	SmallestUser []byte
	LargestUser  []byte

	// grandparents are level+2 files overlapping the output range, used to
	// cut output tables before they overlap too much of level+2.
	grandparents []*FileMetadata
}

// NumInputFiles returns the total file count consumed.
func (c *Compaction) NumInputFiles() int { return len(c.Inputs[0]) + len(c.Inputs[1]) }

// NumInputs returns the number of sorted runs feeding the merge: at level
// 0 every file is its own run (key ranges may overlap); a leveled deeper
// level contributes a single concatenated run (paper §IV step 2); a tiered
// level contributes one run per RunID group.
func (c *Compaction) NumInputs() int {
	n := 0
	switch {
	case c.Level == 0:
		n = len(c.Inputs[0])
	case c.Tiered:
		n = len(RunGroupsOf(c.Inputs[0]))
	case len(c.Inputs[0]) > 0:
		n = 1
	}
	if len(c.Inputs[1]) > 0 {
		n++
	}
	return n
}

// OutputLevel is where the merge's output tables land: Level+1, except a
// tiered merge of the deepest level, which rewrites in place.
func (c *Compaction) OutputLevel() int {
	if c.Tiered && c.Level == NumLevels-1 {
		return c.Level
	}
	return c.Level + 1
}

// RunGroupsOf groups files (sorted by RunID, Smallest — version storage
// order) into their sorted runs, oldest first.
func RunGroupsOf(files []*FileMetadata) [][]*FileMetadata {
	if len(files) == 0 {
		return nil
	}
	var groups [][]*FileMetadata
	start := 0
	for i := 1; i <= len(files); i++ {
		if i == len(files) || files[i].RunID != files[start].RunID {
			groups = append(groups, files[start:i])
			start = i
		}
	}
	return groups
}

// InputBytes returns the total input size.
func (c *Compaction) InputBytes() uint64 {
	var n uint64
	for _, side := range c.Inputs {
		for _, f := range side {
			n += f.Size
		}
	}
	return n
}

// IsTrivialMove reports whether the job can be satisfied by re-linking a
// single input file into the next level without rewriting it.
func (c *Compaction) IsTrivialMove() bool {
	if len(c.Inputs[0]) != 1 || len(c.Inputs[1]) != 0 {
		return false
	}
	// Avoid moving a file that overlaps too many grandparent bytes, which
	// would make a future compaction at level+1 expensive.
	var overlap uint64
	for _, f := range c.grandparents {
		overlap += f.Size
	}
	return overlap <= 10*c.Cfg.MaxOutputFileBytes
}

// IsBottomLevel reports whether no data deeper than the merge's output can
// hold older versions of its keys, allowing tombstones to be dropped. A
// tiered merge must also treat the output level's other, unconsumed runs
// as "deeper": a dropped tombstone would resurrect their entries.
func (c *Compaction) IsBottomLevel(v *Version) bool {
	if c.Tiered {
		inputs := make(map[uint64]bool, len(c.Inputs[0]))
		for _, f := range c.Inputs[0] {
			inputs[f.Num] = true
		}
		for level := c.OutputLevel(); level < NumLevels; level++ {
			for _, f := range v.Levels[level] {
				if inputs[f.Num] {
					continue
				}
				if fileRangeOverlaps(f, c.SmallestUser, c.LargestUser) {
					return false
				}
			}
		}
		return true
	}
	for level := c.Level + 2; level < NumLevels; level++ {
		for _, f := range v.Levels[level] {
			if fileRangeOverlaps(f, c.SmallestUser, c.LargestUser) {
				return false
			}
		}
	}
	return true
}

// PickCompaction selects the most urgent compaction in v, or nil when no
// level needs work. Size-triggered compactions take priority; the
// compactPointers rotate through each level's key space so work spreads
// evenly.
func (vs *VersionSet) PickCompaction() *Compaction {
	return vs.PickCompactionFiltered(nil)
}

// PickCompactionFiltered is PickCompaction restricted to levels the caller
// accepts: allowed is consulted with each candidate's input and output
// level, and rejected levels are skipped in score order. Concurrent
// compaction workers use it to pick non-overlapping level ranges while one
// or more jobs are already in flight; nil means no restriction.
func (vs *VersionSet) PickCompactionFiltered(allowed func(level, outputLevel int) bool) *Compaction {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	v := vs.current

	if vs.cfg.TieredRuns > 0 {
		return vs.pickTiered(v, allowed)
	}
	bestLevel, bestScore := -1, 0.0
	for level := 0; level < NumLevels-1; level++ {
		if allowed != nil && !allowed(level, level+1) {
			continue
		}
		var score float64
		if level == 0 {
			score = float64(len(v.Levels[0])) / float64(vs.cfg.L0CompactionTrigger)
		} else {
			score = float64(v.LevelBytes(level)) / float64(vs.cfg.MaxBytes(level))
		}
		if score > bestScore {
			bestLevel, bestScore = level, score
		}
	}
	if bestScore < 1.0 {
		return nil
	}
	return vs.buildCompactionLocked(v, bestLevel)
}

// tieredOutputLevel mirrors Compaction.OutputLevel for a tiered merge of
// level before the Compaction exists.
func tieredOutputLevel(level int) int {
	if level == NumLevels-1 {
		return level
	}
	return level + 1
}

// pickTiered selects a full-level merge when a level's run count reaches
// the tiering threshold. L0 keeps its file-count trigger.
func (vs *VersionSet) pickTiered(v *Version, allowed func(level, outputLevel int) bool) *Compaction {
	bestLevel, bestScore := -1, 0.0
	if allowed == nil || allowed(0, 1) {
		if sc := float64(len(v.Levels[0])) / float64(vs.cfg.L0CompactionTrigger); sc > bestScore {
			bestLevel, bestScore = 0, sc
		}
	}
	for level := 1; level < NumLevels; level++ {
		if allowed != nil && !allowed(level, tieredOutputLevel(level)) {
			continue
		}
		sc := float64(v.NumRuns(level)) / float64(vs.cfg.TieredRuns)
		if sc > bestScore {
			bestLevel, bestScore = level, sc
		}
	}
	if bestScore < 1.0 {
		return nil
	}
	c := &Compaction{Level: bestLevel, Cfg: vs.cfg, Tiered: bestLevel > 0}
	if bestLevel == 0 {
		// L0 merge: all files, pushed as one run into L1; L1's existing
		// runs are left alone.
		c.Inputs[0] = append([]*FileMetadata(nil), v.Levels[0]...)
		c.Tiered = true
	} else {
		c.Inputs[0] = append([]*FileMetadata(nil), v.Levels[bestLevel]...)
	}
	c.SmallestUser, c.LargestUser = inputUserRange(c.Inputs[0])
	return c
}

// PickCompactionAtLevel forces a compaction at the given level, used by
// manual compaction and tests. Returns nil if the level is empty.
func (vs *VersionSet) PickCompactionAtLevel(level int) *Compaction {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	v := vs.current
	if len(v.Levels[level]) == 0 {
		return nil
	}
	if vs.cfg.TieredRuns > 0 {
		// Tiered mode always merges whole levels.
		c := &Compaction{Level: level, Cfg: vs.cfg, Tiered: true}
		c.Inputs[0] = append([]*FileMetadata(nil), v.Levels[level]...)
		c.SmallestUser, c.LargestUser = inputUserRange(c.Inputs[0])
		return c
	}
	return vs.buildCompactionLocked(v, level)
}

func (vs *VersionSet) buildCompactionLocked(v *Version, level int) *Compaction {
	c := &Compaction{Level: level, Cfg: vs.cfg}

	// Seed with the file after the compact pointer (round robin).
	var seed *FileMetadata
	ptr := vs.compactPointers[level]
	for _, f := range v.Levels[level] {
		if ptr == nil || keys.Compare(f.Largest, ptr) > 0 {
			seed = f
			break
		}
	}
	if seed == nil {
		seed = v.Levels[level][0]
	}
	c.Inputs[0] = []*FileMetadata{seed}

	if level == 0 {
		// Level 0 files may overlap each other: take the transitive set.
		s, l := keys.UserKey(seed.Smallest), keys.UserKey(seed.Largest)
		c.Inputs[0] = v.Overlapping(0, s, l)
	}
	vs.setupOtherInputs(v, c)
	return c
}

// setupOtherInputs computes the level+1 inputs and optionally grows the
// level inputs when doing so does not pull in more level+1 data.
func (vs *VersionSet) setupOtherInputs(v *Version, c *Compaction) {
	smallest, largest := inputUserRange(c.Inputs[0])
	c.Inputs[1] = v.Overlapping(c.Level+1, smallest, largest)

	allSmallest, allLargest := unionRange(smallest, largest, c.Inputs[1])

	// Growth: see if more level files fit without expanding level+1.
	if len(c.Inputs[1]) > 0 {
		expanded0 := v.Overlapping(c.Level, allSmallest, allLargest)
		if len(expanded0) > len(c.Inputs[0]) {
			s1, l1 := inputUserRange(expanded0)
			expanded1 := v.Overlapping(c.Level+1, s1, l1)
			if len(expanded1) == len(c.Inputs[1]) {
				c.Inputs[0] = expanded0
				smallest, largest = s1, l1
				allSmallest, allLargest = unionRange(smallest, largest, c.Inputs[1])
			}
		}
	}
	c.SmallestUser, c.LargestUser = allSmallest, allLargest
	if c.Level+2 < NumLevels {
		c.grandparents = v.Overlapping(c.Level+2, allSmallest, allLargest)
	}
}

// inputUserRange returns the inclusive user-key bounds of files.
func inputUserRange(files []*FileMetadata) (smallest, largest []byte) {
	for _, f := range files {
		fs, fl := keys.UserKey(f.Smallest), keys.UserKey(f.Largest)
		if smallest == nil || keys.CompareUser(fs, smallest) < 0 {
			smallest = fs
		}
		if largest == nil || keys.CompareUser(fl, largest) > 0 {
			largest = fl
		}
	}
	return smallest, largest
}

func unionRange(smallest, largest []byte, files []*FileMetadata) (s, l []byte) {
	s, l = smallest, largest
	fs, fl := inputUserRange(files)
	if fs != nil && keys.CompareUser(fs, s) < 0 {
		s = fs
	}
	if fl != nil && keys.CompareUser(fl, l) > 0 {
		l = fl
	}
	return s, l
}

// RecordCompactPointer persists the resume point for level into edit.
func (c *Compaction) RecordCompactPointer(edit *VersionEdit) {
	if len(c.Inputs[0]) > 0 {
		last := c.Inputs[0][len(c.Inputs[0])-1]
		edit.SetCompactPointer(c.Level, last.Largest)
	}
}
