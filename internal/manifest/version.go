package manifest

import (
	"fmt"
	"sort"

	"fcae/internal/keys"
)

// Version is an immutable snapshot of the table set. Level 0 holds files
// with possibly overlapping key ranges, newest first; levels >= 1 are
// sorted by smallest key and non-overlapping (paper §II-A).
type Version struct {
	Levels [NumLevels][]*FileMetadata
}

// Clone returns a shallow copy (file metadata is shared; the per-level
// slices are fresh).
func (v *Version) Clone() *Version {
	n := &Version{}
	for i := range v.Levels {
		n.Levels[i] = append([]*FileMetadata(nil), v.Levels[i]...)
	}
	return n
}

// NumFiles returns the file count at level.
func (v *Version) NumFiles(level int) int { return len(v.Levels[level]) }

// TotalFiles returns the file count across levels.
func (v *Version) TotalFiles() int {
	n := 0
	for i := range v.Levels {
		n += len(v.Levels[i])
	}
	return n
}

// LevelBytes returns the total table bytes at level.
func (v *Version) LevelBytes(level int) uint64 {
	var n uint64
	for _, f := range v.Levels[level] {
		n += f.Size
	}
	return n
}

// userRange converts file bounds to a user-key range (inclusive both ends,
// so Limit is exclusive only notionally; overlap checks below compare
// inclusively).
func fileRangeOverlaps(f *FileMetadata, smallest, largest []byte) bool {
	// smallest/largest are user keys; nil means unbounded.
	if largest != nil && keys.CompareUser(keys.UserKey(f.Smallest), largest) > 0 {
		return false
	}
	if smallest != nil && keys.CompareUser(keys.UserKey(f.Largest), smallest) < 0 {
		return false
	}
	return true
}

// Overlapping returns the files at level intersecting the inclusive user
// key range [smallest, largest]. At level 0 the range is expanded to cover
// transitively overlapping files, as LevelDB does, so a compaction consumes
// every L0 file whose range touches the result set.
func (v *Version) Overlapping(level int, smallest, largest []byte) []*FileMetadata {
	var out []*FileMetadata
	files := v.Levels[level]
	for i := 0; i < len(files); i++ {
		f := files[i]
		if !fileRangeOverlaps(f, smallest, largest) {
			continue
		}
		if level == 0 {
			// Grow the range and restart if this file extends it.
			fs, fl := keys.UserKey(f.Smallest), keys.UserKey(f.Largest)
			restart := false
			if smallest != nil && keys.CompareUser(fs, smallest) < 0 {
				smallest = fs
				restart = true
			}
			if largest != nil && keys.CompareUser(fl, largest) > 0 {
				largest = fl
				restart = true
			}
			if restart {
				out = out[:0]
				i = -1
				continue
			}
		}
		out = append(out, f)
	}
	return out
}

// PickLevelForMemTableOutput chooses the level for a fresh flush. LevelDB
// pushes non-overlapping output down up to two levels to reduce write
// amplification; we flush to L0 always for simplicity and paper fidelity
// (the paper's flushes land in L0, making L0→L1 the 9-input case).
func (v *Version) PickLevelForMemTableOutput() int { return 0 }

// ForEachOverlapping visits files that may contain userKey, newest first:
// L0 files from newest to oldest, then one file per deeper level. The
// visit function returns false to stop.
func (v *Version) ForEachOverlapping(userKey []byte, visit func(level int, f *FileMetadata) bool) {
	// L0: all overlapping files, newest (highest number) first.
	var l0 []*FileMetadata
	for _, f := range v.Levels[0] {
		if keys.CompareUser(userKey, keys.UserKey(f.Smallest)) >= 0 &&
			keys.CompareUser(userKey, keys.UserKey(f.Largest)) <= 0 {
			l0 = append(l0, f)
		}
	}
	sort.Slice(l0, func(i, j int) bool { return l0[i].Num > l0[j].Num })
	for _, f := range l0 {
		if !visit(0, f) {
			return
		}
	}
	for level := 1; level < NumLevels; level++ {
		// Probe each sorted run, newest first: within one level, a more
		// recent run holds strictly newer data (full-run tiering moves
		// whole levels down together), so the first hit wins.
		for _, run := range v.RunGroups(level) {
			i := sort.Search(len(run), func(i int) bool {
				return keys.CompareUser(keys.UserKey(run[i].Largest), userKey) >= 0
			})
			if i < len(run) && keys.CompareUser(userKey, keys.UserKey(run[i].Smallest)) >= 0 {
				if !visit(level, run[i]) {
					return
				}
			}
		}
	}
}

// Apply produces the next version from an edit. Added files are inserted
// in sorted order (levels >= 1) or kept in insertion order for level 0.
func (v *Version) Apply(edit *VersionEdit) (*Version, error) {
	next := v.Clone()
	for _, d := range edit.Deleted {
		files := next.Levels[d.Level]
		idx := -1
		for i, f := range files {
			if f.Num == d.Num {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("manifest: deleting unknown file %d at level %d", d.Num, d.Level)
		}
		next.Levels[d.Level] = append(files[:idx:idx], files[idx+1:]...)
	}
	for _, a := range edit.Added {
		meta := a.Meta
		if meta.AllowedSeeks == 0 {
			// LevelDB heuristic: one seek per 16 KiB of file is "free".
			meta.AllowedSeeks = int(meta.Size / 16384)
			if meta.AllowedSeeks < 100 {
				meta.AllowedSeeks = 100
			}
		}
		next.Levels[a.Level] = append(next.Levels[a.Level], meta)
	}
	for level := 1; level < NumLevels; level++ {
		files := next.Levels[level]
		sort.Slice(files, func(i, j int) bool {
			if files[i].RunID != files[j].RunID {
				return files[i].RunID < files[j].RunID
			}
			return keys.Compare(files[i].Smallest, files[j].Smallest) < 0
		})
	}
	return next, next.checkInvariants()
}

// checkInvariants validates sortedness and non-overlap within each sorted
// run at levels >= 1. Distinct runs may overlap freely (tiered mode);
// leveled levels put every file in run 0, so the check degenerates to the
// classic whole-level invariant.
func (v *Version) checkInvariants() error {
	for level := 1; level < NumLevels; level++ {
		files := v.Levels[level]
		for i := 1; i < len(files); i++ {
			prev, cur := files[i-1], files[i]
			if prev.RunID != cur.RunID {
				continue
			}
			if keys.CompareUser(keys.UserKey(prev.Largest), keys.UserKey(cur.Smallest)) >= 0 {
				return fmt.Errorf("manifest: level %d run %d files %d and %d overlap: %q vs %q",
					level, cur.RunID, prev.Num, cur.Num, keys.UserKey(prev.Largest), keys.UserKey(cur.Smallest))
			}
		}
	}
	return nil
}

// RunGroups returns the level's files grouped into sorted runs, newest run
// (largest RunID) first. Levels are stored sorted by (RunID, Smallest), so
// groups are consecutive slices.
func (v *Version) RunGroups(level int) [][]*FileMetadata {
	files := v.Levels[level]
	if len(files) == 0 {
		return nil
	}
	var groups [][]*FileMetadata
	start := 0
	for i := 1; i <= len(files); i++ {
		if i == len(files) || files[i].RunID != files[start].RunID {
			groups = append(groups, files[start:i])
			start = i
		}
	}
	// Reverse: newest RunID last in storage order, first for probing.
	for i, j := 0, len(groups)-1; i < j; i, j = i+1, j-1 {
		groups[i], groups[j] = groups[j], groups[i]
	}
	return groups
}

// NumRuns returns the number of sorted runs at level (each L0 file is its
// own run).
func (v *Version) NumRuns(level int) int {
	if level == 0 {
		return len(v.Levels[0])
	}
	return len(v.RunGroups(level))
}

// DebugString renders the version's level shape, useful in tests and the
// stats output.
func (v *Version) DebugString() string {
	s := ""
	for level := 0; level < NumLevels; level++ {
		if len(v.Levels[level]) == 0 {
			continue
		}
		s += fmt.Sprintf("L%d:", level)
		for _, f := range v.Levels[level] {
			s += fmt.Sprintf(" %d(%dB)", f.Num, f.Size)
		}
		s += "\n"
	}
	return s
}
