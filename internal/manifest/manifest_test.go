package manifest

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"

	"fcae/internal/keys"
)

func ik(user string, seq uint64) []byte {
	return keys.MakeInternal(nil, []byte(user), seq, keys.KindSet)
}

func meta(num uint64, size uint64, lo, hi string) *FileMetadata {
	return &FileMetadata{Num: num, Size: size, Smallest: ik(lo, 100), Largest: ik(hi, 1)}
}

func TestEditRoundTrip(t *testing.T) {
	e := &VersionEdit{}
	e.SetLogNum(7)
	e.SetNextFileNum(42)
	e.SetLastSeq(999)
	e.SetCompactPointer(3, ik("ptr", 5))
	e.DeleteFile(1, 10)
	e.AddFile(2, meta(11, 2048, "aaa", "zzz"))

	dec, err := DecodeEdit(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !dec.HasLogNum || dec.LogNum != 7 {
		t.Error("log num lost")
	}
	if !dec.HasNextFileNum || dec.NextFileNum != 42 {
		t.Error("next file num lost")
	}
	if !dec.HasLastSeq || dec.LastSeq != 999 {
		t.Error("last seq lost")
	}
	if !bytes.Equal(dec.CompactPointers[3], ik("ptr", 5)) {
		t.Error("compact pointer lost")
	}
	if len(dec.Deleted) != 1 || dec.Deleted[0] != (DeletedFile{1, 10}) {
		t.Error("deleted file lost")
	}
	if len(dec.Added) != 1 || dec.Added[0].Meta.Num != 11 || dec.Added[0].Level != 2 {
		t.Error("added file lost")
	}
	if !bytes.Equal(dec.Added[0].Meta.Smallest, ik("aaa", 100)) {
		t.Error("smallest key lost")
	}
}

func TestDecodeEditRejectsGarbage(t *testing.T) {
	if _, err := DecodeEdit([]byte{0xff, 0x01, 0x02}); err == nil {
		t.Fatal("garbage edit accepted")
	}
	// Level out of range.
	e := &VersionEdit{}
	e.DeleteFile(1, 5)
	enc := e.Encode()
	enc[1] = NumLevels + 1
	if _, err := DecodeEdit(enc); err == nil {
		t.Fatal("out-of-range level accepted")
	}
}

func TestVersionApplyAddDelete(t *testing.T) {
	v := &Version{}
	e := &VersionEdit{}
	e.AddFile(1, meta(1, 100, "a", "c"))
	e.AddFile(1, meta(2, 100, "d", "f"))
	v2, err := v.Apply(e)
	if err != nil {
		t.Fatal(err)
	}
	if v2.NumFiles(1) != 2 {
		t.Fatalf("NumFiles = %d", v2.NumFiles(1))
	}
	if v.NumFiles(1) != 0 {
		t.Fatal("Apply mutated the original version")
	}

	e2 := &VersionEdit{}
	e2.DeleteFile(1, 1)
	v3, err := v2.Apply(e2)
	if err != nil {
		t.Fatal(err)
	}
	if v3.NumFiles(1) != 1 || v3.Levels[1][0].Num != 2 {
		t.Fatal("delete did not remove file 1")
	}

	e3 := &VersionEdit{}
	e3.DeleteFile(1, 999)
	if _, err := v3.Apply(e3); err == nil {
		t.Fatal("deleting unknown file must fail")
	}
}

func TestVersionApplyDetectsOverlap(t *testing.T) {
	v := &Version{}
	e := &VersionEdit{}
	e.AddFile(1, meta(1, 100, "a", "m"))
	e.AddFile(1, meta(2, 100, "k", "z")) // overlaps
	if _, err := v.Apply(e); err == nil {
		t.Fatal("overlapping files at level 1 accepted")
	}
}

func TestVersionApplySortsLevels(t *testing.T) {
	v := &Version{}
	e := &VersionEdit{}
	e.AddFile(2, meta(2, 100, "x", "z"))
	e.AddFile(2, meta(1, 100, "a", "c"))
	v2, err := v.Apply(e)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Levels[2][0].Num != 1 {
		t.Fatal("level 2 not sorted by smallest key")
	}
}

func TestOverlappingLevel1(t *testing.T) {
	v := &Version{}
	e := &VersionEdit{}
	e.AddFile(1, meta(1, 100, "a", "c"))
	e.AddFile(1, meta(2, 100, "e", "g"))
	e.AddFile(1, meta(3, 100, "i", "k"))
	v, _ = v.Apply(e)

	got := v.Overlapping(1, []byte("d"), []byte("f"))
	if len(got) != 1 || got[0].Num != 2 {
		t.Fatalf("Overlapping(d,f) = %v", got)
	}
	got = v.Overlapping(1, []byte("c"), []byte("i"))
	if len(got) != 3 {
		t.Fatalf("Overlapping(c,i) returned %d files", len(got))
	}
	got = v.Overlapping(1, []byte("x"), []byte("z"))
	if len(got) != 0 {
		t.Fatal("no overlap expected")
	}
}

func TestOverlappingLevel0Transitive(t *testing.T) {
	v := &Version{}
	e := &VersionEdit{}
	e.AddFile(0, meta(1, 100, "a", "e"))
	e.AddFile(0, meta(2, 100, "d", "j"))
	e.AddFile(0, meta(3, 100, "i", "p"))
	e.AddFile(0, meta(4, 100, "x", "z"))
	v, _ = v.Apply(e)

	// Query hits file 1 only, but 1 overlaps 2 which overlaps 3.
	got := v.Overlapping(0, []byte("b"), []byte("c"))
	if len(got) != 3 {
		t.Fatalf("transitive L0 overlap returned %d files, want 3", len(got))
	}
}

func TestForEachOverlappingOrder(t *testing.T) {
	v := &Version{}
	e := &VersionEdit{}
	e.AddFile(0, meta(10, 100, "a", "z"))
	e.AddFile(0, meta(12, 100, "a", "z")) // newer L0 file
	e.AddFile(1, meta(5, 100, "a", "m"))
	v, _ = v.Apply(e)

	var visited []uint64
	v.ForEachOverlapping([]byte("b"), func(level int, f *FileMetadata) bool {
		visited = append(visited, f.Num)
		return true
	})
	want := []uint64{12, 10, 5} // newest L0 first, then level 1
	if len(visited) != len(want) {
		t.Fatalf("visited %v", visited)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited %v, want %v", visited, want)
		}
	}
}

func TestConfigMaxBytes(t *testing.T) {
	cfg := Config{}.WithDefaults()
	if cfg.MaxBytes(1) != 10<<20 {
		t.Fatalf("L1 budget = %d", cfg.MaxBytes(1))
	}
	if cfg.MaxBytes(2) != 100<<20 {
		t.Fatalf("L2 budget = %d", cfg.MaxBytes(2))
	}
	cfg.LevelRatio = 4
	if cfg.MaxBytes(3) != 10<<20*16 {
		t.Fatalf("ratio-4 L3 budget = %d", cfg.MaxBytes(3))
	}
}

func TestVersionSetPersistence(t *testing.T) {
	dir := t.TempDir()
	vs, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	edit := &VersionEdit{}
	edit.AddFile(0, meta(vs.AllocFileNum(), 4096, "k1", "k9"))
	edit.SetLastSeq(77)
	edit.SetLogNum(3)
	if err := vs.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	if err := vs.Close(); err != nil {
		t.Fatal(err)
	}

	vs2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer vs2.Close()
	if vs2.Current().NumFiles(0) != 1 {
		t.Fatalf("recovered %d L0 files", vs2.Current().NumFiles(0))
	}
	if vs2.LastSeq() != 77 {
		t.Fatalf("recovered seq %d", vs2.LastSeq())
	}
	if vs2.LogNum() != 3 {
		t.Fatalf("recovered log num %d", vs2.LogNum())
	}
}

func TestPickCompactionL0Trigger(t *testing.T) {
	dir := t.TempDir()
	vs, err := Open(dir, Config{L0CompactionTrigger: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer vs.Close()
	edit := &VersionEdit{}
	for i := 0; i < 3; i++ {
		edit.AddFile(0, meta(vs.AllocFileNum(), 1<<20, "a", "z"))
	}
	if err := vs.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	if c := vs.PickCompaction(); c != nil {
		t.Fatal("compaction picked below L0 trigger")
	}
	edit2 := &VersionEdit{}
	edit2.AddFile(0, meta(vs.AllocFileNum(), 1<<20, "a", "z"))
	if err := vs.LogAndApply(edit2); err != nil {
		t.Fatal(err)
	}
	c := vs.PickCompaction()
	if c == nil || c.Level != 0 {
		t.Fatalf("expected L0 compaction, got %+v", c)
	}
	if len(c.Inputs[0]) != 4 {
		t.Fatalf("L0 compaction should take all 4 overlapping files, got %d", len(c.Inputs[0]))
	}
	if c.NumInputs() != 4 {
		t.Fatalf("NumInputs = %d; every L0 file is its own run", c.NumInputs())
	}
}

func TestPickCompactionSizeTrigger(t *testing.T) {
	dir := t.TempDir()
	vs, err := Open(dir, Config{BaseLevelBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer vs.Close()
	edit := &VersionEdit{}
	// 3 MB at level 1 (budget 1 MB) -> score 3.
	for i := 0; i < 3; i++ {
		lo := fmt.Sprintf("k%02d", i*10)
		hi := fmt.Sprintf("k%02d", i*10+5)
		edit.AddFile(1, meta(vs.AllocFileNum(), 1<<20, lo, hi))
	}
	// Level 2 file overlapping the first level-1 file.
	edit.AddFile(2, meta(vs.AllocFileNum(), 1<<20, "k00", "k09"))
	if err := vs.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	c := vs.PickCompaction()
	if c == nil || c.Level != 1 {
		t.Fatalf("expected L1 compaction, got %+v", c)
	}
	if c.NumInputs() != 2 {
		t.Fatalf("NumInputs = %d, want 2 (one run per level)", c.NumInputs())
	}
	if len(c.Inputs[1]) != 1 {
		t.Fatalf("level-2 inputs = %d", len(c.Inputs[1]))
	}
}

func TestTrivialMove(t *testing.T) {
	dir := t.TempDir()
	vs, err := Open(dir, Config{BaseLevelBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer vs.Close()
	edit := &VersionEdit{}
	edit.AddFile(1, meta(vs.AllocFileNum(), 2<<20, "a", "c"))
	// Nothing at level 2: moving down requires no rewrite.
	if err := vs.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	c := vs.PickCompaction()
	if c == nil {
		t.Fatal("no compaction picked")
	}
	if !c.IsTrivialMove() {
		t.Fatal("expected a trivial move")
	}
}

func TestCompactPointerRotation(t *testing.T) {
	dir := t.TempDir()
	vs, err := Open(dir, Config{BaseLevelBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer vs.Close()
	edit := &VersionEdit{}
	edit.AddFile(1, meta(vs.AllocFileNum(), 1<<20, "a", "b"))
	edit.AddFile(1, meta(vs.AllocFileNum(), 1<<20, "c", "d"))
	if err := vs.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	c1 := vs.PickCompaction()
	if c1 == nil {
		t.Fatal("no compaction")
	}
	first := c1.Inputs[0][0].Num
	// Record the pointer as a compaction would.
	e := &VersionEdit{}
	c1.RecordCompactPointer(e)
	if err := vs.LogAndApply(e); err != nil {
		t.Fatal(err)
	}
	c2 := vs.PickCompaction()
	if c2 == nil {
		t.Fatal("no second compaction")
	}
	if c2.Inputs[0][0].Num == first {
		t.Fatal("compact pointer did not rotate to the next file")
	}
}

func TestIsBottomLevel(t *testing.T) {
	dir := t.TempDir()
	vs, err := Open(dir, Config{BaseLevelBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer vs.Close()
	edit := &VersionEdit{}
	edit.AddFile(1, meta(vs.AllocFileNum(), 1<<20, "a", "c"))
	edit.AddFile(3, meta(vs.AllocFileNum(), 1<<20, "a", "c"))
	if err := vs.LogAndApply(edit); err != nil {
		t.Fatal(err)
	}
	c := vs.PickCompactionAtLevel(1)
	if c == nil {
		t.Fatal("no compaction at level 1")
	}
	if c.IsBottomLevel(vs.Current()) {
		t.Fatal("level-3 data overlaps; not bottom level")
	}
	c3 := vs.PickCompactionAtLevel(3)
	if c3 == nil {
		t.Fatal("no compaction at level 3")
	}
	if !c3.IsBottomLevel(vs.Current()) {
		t.Fatal("level 3 is the bottom here")
	}
}

func TestRecoveryAcrossManyEdits(t *testing.T) {
	dir := t.TempDir()
	vs, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Apply a long history of adds and deletes.
	var live []uint64
	for i := 0; i < 200; i++ {
		edit := &VersionEdit{}
		num := vs.AllocFileNum()
		lo := fmt.Sprintf("k%06d", i*10)
		hi := fmt.Sprintf("k%06d", i*10+5)
		edit.AddFile(2, meta(num, 1000+uint64(i), lo, hi))
		live = append(live, num)
		if i%3 == 2 {
			edit.DeleteFile(2, live[0])
			live = live[1:]
		}
		edit.SetLastSeq(uint64(i * 100))
		if err := vs.LogAndApply(edit); err != nil {
			t.Fatal(err)
		}
	}
	wantFiles := vs.Current().NumFiles(2)
	wantSeq := vs.LastSeq()
	vs.Close()

	vs2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer vs2.Close()
	if vs2.Current().NumFiles(2) != wantFiles {
		t.Fatalf("recovered %d files, want %d", vs2.Current().NumFiles(2), wantFiles)
	}
	if vs2.LastSeq() != wantSeq {
		t.Fatalf("recovered seq %d, want %d", vs2.LastSeq(), wantSeq)
	}
	// Live file numbers must match exactly.
	recovered := vs2.LiveFileNums()
	for _, n := range live {
		if !recovered[n] {
			t.Fatalf("live file %d lost across recovery", n)
		}
	}
}

func TestRecoveryCompactsManifest(t *testing.T) {
	// Reopening rolls a fresh MANIFEST (a snapshot), replacing the long
	// edit history; the old manifest is removed.
	dir := t.TempDir()
	vs, _ := Open(dir, Config{})
	for i := 0; i < 50; i++ {
		edit := &VersionEdit{}
		edit.AddFile(1, meta(vs.AllocFileNum(), 100, fmt.Sprintf("a%03d", i), fmt.Sprintf("a%03dz", i)))
		if err := vs.LogAndApply(edit); err != nil {
			t.Fatal(err)
		}
	}
	vs.Close()
	vs2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	vs2.Close()

	manifests := 0
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "MANIFEST-") {
			manifests++
		}
	}
	if manifests != 1 {
		t.Fatalf("expected exactly one MANIFEST after reopen, found %d", manifests)
	}
}

func TestCorruptCurrentRejected(t *testing.T) {
	dir := t.TempDir()
	vs, _ := Open(dir, Config{})
	vs.Close()
	if err := os.WriteFile(CurrentPath(dir), []byte("MANIFEST-999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Config{}); err == nil {
		t.Fatal("CURRENT pointing at a missing manifest accepted")
	}
}
