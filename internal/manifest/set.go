package manifest

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"fcae/internal/crc"
	"fcae/internal/keys"
	"fcae/internal/wal"
)

// Config holds the level-shaping parameters the paper varies (Table IV).
type Config struct {
	// LevelRatio is Size(L_{i+1})/Size(L_i) — paper "leveling ratio",
	// default 10, range [4,16].
	LevelRatio int
	// BaseLevelBytes is the size budget of L1.
	BaseLevelBytes uint64
	// L0CompactionTrigger is the file count that schedules an L0 merge.
	L0CompactionTrigger int
	// MaxOutputFileBytes bounds compaction output tables (paper: ~2 MB).
	MaxOutputFileBytes uint64
	// TieredRuns, when > 0, switches levels >= 1 to tiered (lazy)
	// compaction: each level accumulates up to TieredRuns overlapping
	// sorted runs before a full-level merge pushes one combined run down —
	// the write-optimized scheme (SifrDB, PebblesDB) the paper's 9-input
	// engine targets (§VII-C).
	TieredRuns int
}

// WithDefaults fills unset fields with the paper's defaults.
func (c Config) WithDefaults() Config {
	if c.LevelRatio <= 0 {
		c.LevelRatio = 10
	}
	if c.BaseLevelBytes == 0 {
		c.BaseLevelBytes = 10 << 20
	}
	if c.L0CompactionTrigger <= 0 {
		c.L0CompactionTrigger = 4
	}
	if c.MaxOutputFileBytes == 0 {
		c.MaxOutputFileBytes = 2 << 20
	}
	return c
}

// MaxBytes returns the byte budget of level (levels >= 1).
func (c Config) MaxBytes(level int) uint64 {
	b := c.BaseLevelBytes
	for l := 1; l < level; l++ {
		b *= uint64(c.LevelRatio)
	}
	return b
}

// VersionSet owns the current version, the MANIFEST log and the file
// number / sequence counters.
type VersionSet struct {
	// dir and cfg are set once in Open and immutable afterwards.
	dir string
	cfg Config

	mu sync.Mutex

	current     *Version
	manifest    *wal.Writer
	manifestF   *os.File
	manifestNum uint64

	nextFileNum uint64
	lastSeq     uint64
	logNum      uint64
	// replayedManifest is the file recovery loaded, removed once a fresh
	// snapshot manifest has replaced it.
	replayedManifest string

	compactPointers [NumLevels][]byte
}

func manifestCRC(t byte, payload []byte) uint32 {
	return crc.Extend(crc.Value([]byte{t}), payload)
}

// CurrentPath returns the CURRENT pointer file path for dir.
func CurrentPath(dir string) string { return filepath.Join(dir, "CURRENT") }

// ManifestPath returns the path of MANIFEST number num.
func ManifestPath(dir string, num uint64) string {
	return filepath.Join(dir, fmt.Sprintf("MANIFEST-%06d", num))
}

// Open recovers (or creates) the version state in dir.
func Open(dir string, cfg Config) (*VersionSet, error) {
	vs := &VersionSet{
		dir:         dir,
		cfg:         cfg.WithDefaults(),
		current:     &Version{},
		nextFileNum: 2,
	}
	currentData, err := os.ReadFile(CurrentPath(dir))
	vs.mu.Lock()
	defer vs.mu.Unlock()
	switch {
	case os.IsNotExist(err):
		// Fresh database.
	case err != nil:
		return nil, err
	default:
		if err := vs.replayLocked(string(currentData)); err != nil {
			return nil, err
		}
	}
	if err := vs.rollManifestLocked(); err != nil {
		return nil, err
	}
	return vs, nil
}

// replayLocked loads the manifest named by the CURRENT file contents.
func (vs *VersionSet) replayLocked(name string) error {
	for len(name) > 0 && (name[len(name)-1] == '\n' || name[len(name)-1] == '\r') {
		name = name[:len(name)-1]
	}
	f, err := os.Open(filepath.Join(vs.dir, name))
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	vs.replayedManifest = name
	r := wal.NewReader(f, manifestCRC)
	v := &Version{}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("manifest %s: %w", name, err)
		}
		edit, err := DecodeEdit(rec)
		if err != nil {
			return err
		}
		if v, err = v.Apply(edit); err != nil {
			return err
		}
		if edit.HasNextFileNum {
			vs.nextFileNum = edit.NextFileNum
		}
		if edit.HasLastSeq {
			vs.lastSeq = edit.LastSeq
		}
		if edit.HasLogNum {
			vs.logNum = edit.LogNum
		}
		for level, key := range edit.CompactPointers {
			vs.compactPointers[level] = key
		}
	}
	vs.current = v
	return nil
}

// rollManifestLocked starts a fresh MANIFEST containing a snapshot of the
// state and atomically repoints CURRENT at it.
func (vs *VersionSet) rollManifestLocked() error {
	num := vs.allocFileNumLocked()
	path := ManifestPath(vs.dir, num)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := wal.NewWriter(f, manifestCRC)

	snap := &VersionEdit{}
	snap.SetNextFileNum(vs.nextFileNum)
	snap.SetLastSeq(vs.lastSeq)
	snap.SetLogNum(vs.logNum)
	for level, key := range vs.compactPointers {
		if key != nil {
			snap.SetCompactPointer(level, key)
		}
	}
	for level, files := range vs.current.Levels {
		for _, meta := range files {
			snap.AddFile(level, meta)
		}
	}
	if err := w.Append(snap.Encode()); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := setCurrent(vs.dir, num); err != nil {
		_ = f.Close()
		return err
	}
	if vs.manifestF != nil {
		// The superseded manifest is deleted next; its close error is moot.
		_ = vs.manifestF.Close()
		os.Remove(ManifestPath(vs.dir, vs.manifestNum))
	}
	if vs.replayedManifest != "" {
		// The recovery source is superseded by the fresh snapshot.
		os.Remove(filepath.Join(vs.dir, vs.replayedManifest))
		vs.replayedManifest = ""
	}
	vs.manifest, vs.manifestF, vs.manifestNum = w, f, num
	return nil
}

// setCurrent atomically points CURRENT at manifest num.
func setCurrent(dir string, num uint64) error {
	tmp := filepath.Join(dir, fmt.Sprintf("CURRENT.%06d.tmp", num))
	content := fmt.Sprintf("MANIFEST-%06d\n", num)
	if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, CurrentPath(dir))
}

// Close releases the manifest file handle.
func (vs *VersionSet) Close() error {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if vs.manifestF != nil {
		err := vs.manifestF.Close()
		vs.manifestF = nil
		return err
	}
	return nil
}

// Current returns the live version. The returned value is immutable.
func (vs *VersionSet) Current() *Version {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	return vs.current
}

// Config returns the level configuration.
func (vs *VersionSet) Config() Config { return vs.cfg }

// AllocFileNum reserves and returns a fresh file number.
func (vs *VersionSet) AllocFileNum() uint64 {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	return vs.allocFileNumLocked()
}

func (vs *VersionSet) allocFileNumLocked() uint64 {
	n := vs.nextFileNum
	vs.nextFileNum++
	return n
}

// LastSeq returns the newest assigned sequence number.
func (vs *VersionSet) LastSeq() uint64 {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	return vs.lastSeq
}

// SetLastSeq advances the sequence counter.
func (vs *VersionSet) SetLastSeq(n uint64) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if n > vs.lastSeq {
		vs.lastSeq = n
	}
}

// LogNum returns the WAL number recorded as durable.
func (vs *VersionSet) LogNum() uint64 {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	return vs.logNum
}

// LogAndApply durably logs edit and installs the resulting version.
func (vs *VersionSet) LogAndApply(edit *VersionEdit) error {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if !edit.HasNextFileNum {
		edit.SetNextFileNum(vs.nextFileNum)
	}
	if !edit.HasLastSeq {
		edit.SetLastSeq(vs.lastSeq)
	}
	next, err := vs.current.Apply(edit)
	if err != nil {
		return err
	}
	if err := vs.manifest.Append(edit.Encode()); err != nil {
		return err
	}
	if err := vs.manifest.Sync(); err != nil {
		return err
	}
	vs.current = next
	if edit.HasLogNum {
		vs.logNum = edit.LogNum
	}
	if edit.HasLastSeq && edit.LastSeq > vs.lastSeq {
		vs.lastSeq = edit.LastSeq
	}
	for level, key := range edit.CompactPointers {
		vs.compactPointers[level] = key
	}
	return nil
}

// LiveFileNums returns the numbers of all tables referenced by the current
// version, used by garbage collection of obsolete files.
func (vs *VersionSet) LiveFileNums() map[uint64]bool {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	live := make(map[uint64]bool)
	for _, files := range vs.current.Levels {
		for _, f := range files {
			live[f.Num] = true
		}
	}
	return live
}

// MaxNextLevelOverlappingBytes reports the worst-case overlap between a
// file at some level and the next level, a write-amplification signal
// surfaced in stats.
func (vs *VersionSet) MaxNextLevelOverlappingBytes() uint64 {
	vs.mu.Lock()
	v := vs.current
	vs.mu.Unlock()
	var max uint64
	for level := 1; level < NumLevels-1; level++ {
		for _, f := range v.Levels[level] {
			var sum uint64
			for _, o := range v.Overlapping(level+1, keys.UserKey(f.Smallest), keys.UserKey(f.Largest)) {
				sum += o.Size
			}
			if sum > max {
				max = sum
			}
		}
	}
	return max
}
