// Package manifest tracks the set of live SSTables across levels: versions,
// version edits logged to the MANIFEST file, and compaction picking. This
// is the substrate the paper's host-side scheduler (paper §IV step 1-2 and
// §VI-A) consults to decide which SSTables participate in a compaction and
// whether the job fits the FPGA's N-input limit.
package manifest

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// NumLevels is the number of on-disk levels (L0..L6), matching LevelDB.
const NumLevels = 7

// FileMetadata describes one live SSTable.
type FileMetadata struct {
	Num      uint64
	Size     uint64
	Smallest []byte // smallest internal key
	Largest  []byte // largest internal key

	// RunID groups files into sorted runs. Files within one run are
	// disjoint and sorted; different runs of a level may overlap (tiered /
	// lazy compaction, the paper's §VII-C scenario). Leveled levels >= 1
	// use RunID 0 for the whole level; L0 files and tiered runs carry
	// unique ids, larger = more recent.
	RunID uint64

	// AllowedSeeks drives seek-triggered compaction: when a file is
	// consulted too many times without yielding, compacting it pays off.
	AllowedSeeks int
}

// DeletedFile identifies a table removed from a level.
type DeletedFile struct {
	Level int
	Num   uint64
}

// NewFile identifies a table added to a level.
type NewFile struct {
	Level int
	Meta  *FileMetadata
}

// VersionEdit is a delta between two versions, durably logged to MANIFEST.
type VersionEdit struct {
	HasLogNum      bool
	LogNum         uint64
	HasNextFileNum bool
	NextFileNum    uint64
	HasLastSeq     bool
	LastSeq        uint64

	CompactPointers map[int][]byte // level -> internal key
	Deleted         []DeletedFile
	Added           []NewFile
}

// Edit record field tags.
const (
	tagLogNum         = 1
	tagNextFileNum    = 2
	tagLastSeq        = 3
	tagCompactPointer = 4
	tagDeletedFile    = 5
	tagNewFile        = 6
	tagNewFileRun     = 7 // tagNewFile plus a run id
)

// ErrCorruptEdit reports a malformed manifest record.
var ErrCorruptEdit = errors.New("manifest: corrupt version edit")

// SetLogNum records the WAL number whose contents are reflected on disk.
func (e *VersionEdit) SetLogNum(n uint64) { e.HasLogNum, e.LogNum = true, n }

// SetNextFileNum records the next unallocated file number.
func (e *VersionEdit) SetNextFileNum(n uint64) { e.HasNextFileNum, e.NextFileNum = true, n }

// SetLastSeq records the newest durable sequence number.
func (e *VersionEdit) SetLastSeq(n uint64) { e.HasLastSeq, e.LastSeq = true, n }

// SetCompactPointer records where the next compaction at level resumes.
func (e *VersionEdit) SetCompactPointer(level int, key []byte) {
	if e.CompactPointers == nil {
		e.CompactPointers = make(map[int][]byte)
	}
	e.CompactPointers[level] = append([]byte(nil), key...)
}

// DeleteFile marks a table as removed.
func (e *VersionEdit) DeleteFile(level int, num uint64) {
	e.Deleted = append(e.Deleted, DeletedFile{Level: level, Num: num})
}

// AddFile records a new table at level.
func (e *VersionEdit) AddFile(level int, meta *FileMetadata) {
	e.Added = append(e.Added, NewFile{Level: level, Meta: meta})
}

func putUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(dst, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

func putBytes(dst, b []byte) []byte {
	dst = putUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// Encode serializes the edit into one manifest record.
func (e *VersionEdit) Encode() []byte {
	var buf []byte
	if e.HasLogNum {
		buf = putUvarint(buf, tagLogNum)
		buf = putUvarint(buf, e.LogNum)
	}
	if e.HasNextFileNum {
		buf = putUvarint(buf, tagNextFileNum)
		buf = putUvarint(buf, e.NextFileNum)
	}
	if e.HasLastSeq {
		buf = putUvarint(buf, tagLastSeq)
		buf = putUvarint(buf, e.LastSeq)
	}
	for level, key := range e.CompactPointers {
		buf = putUvarint(buf, tagCompactPointer)
		buf = putUvarint(buf, uint64(level))
		buf = putBytes(buf, key)
	}
	for _, d := range e.Deleted {
		buf = putUvarint(buf, tagDeletedFile)
		buf = putUvarint(buf, uint64(d.Level))
		buf = putUvarint(buf, d.Num)
	}
	for _, a := range e.Added {
		if a.Meta.RunID != 0 {
			buf = putUvarint(buf, tagNewFileRun)
			buf = putUvarint(buf, a.Meta.RunID)
		} else {
			buf = putUvarint(buf, tagNewFile)
		}
		buf = putUvarint(buf, uint64(a.Level))
		buf = putUvarint(buf, a.Meta.Num)
		buf = putUvarint(buf, a.Meta.Size)
		buf = putBytes(buf, a.Meta.Smallest)
		buf = putBytes(buf, a.Meta.Largest)
	}
	return buf
}

type editDecoder struct {
	buf []byte
}

func (d *editDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, ErrCorruptEdit
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *editDecoder) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(d.buf)) < n {
		return nil, ErrCorruptEdit
	}
	b := append([]byte(nil), d.buf[:n]...)
	d.buf = d.buf[n:]
	return b, nil
}

func (d *editDecoder) level() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v >= NumLevels {
		return 0, fmt.Errorf("%w: level %d out of range", ErrCorruptEdit, v)
	}
	return int(v), nil
}

// DecodeEdit parses a manifest record into an edit.
func DecodeEdit(record []byte) (*VersionEdit, error) {
	e := &VersionEdit{}
	d := editDecoder{buf: record}
	for len(d.buf) > 0 {
		tag, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		switch tag {
		case tagLogNum:
			v, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			e.SetLogNum(v)
		case tagNextFileNum:
			v, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			e.SetNextFileNum(v)
		case tagLastSeq:
			v, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			e.SetLastSeq(v)
		case tagCompactPointer:
			level, err := d.level()
			if err != nil {
				return nil, err
			}
			key, err := d.bytes()
			if err != nil {
				return nil, err
			}
			e.SetCompactPointer(level, key)
		case tagDeletedFile:
			level, err := d.level()
			if err != nil {
				return nil, err
			}
			num, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			e.DeleteFile(level, num)
		case tagNewFile, tagNewFileRun:
			var runID uint64
			var err error
			if tag == tagNewFileRun {
				if runID, err = d.uvarint(); err != nil {
					return nil, err
				}
			}
			level, err := d.level()
			if err != nil {
				return nil, err
			}
			num, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			size, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			smallest, err := d.bytes()
			if err != nil {
				return nil, err
			}
			largest, err := d.bytes()
			if err != nil {
				return nil, err
			}
			e.AddFile(level, &FileMetadata{Num: num, Size: size, RunID: runID, Smallest: smallest, Largest: largest})
		default:
			return nil, fmt.Errorf("%w: unknown tag %d", ErrCorruptEdit, tag)
		}
	}
	return e, nil
}
