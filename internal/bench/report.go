// Package bench regenerates every table and figure of the paper's
// evaluation (§VII). Each experiment returns a Report whose rows mirror
// the paper's layout; cmd/experiments prints them and the top-level
// benchmarks log them. Compaction-speed experiments run the real engine
// simulator on synthetic SSTables; end-to-end experiments run the
// virtual-clock store model (internal/lsmsim).
package bench

import (
	"fmt"
	"strings"
)

// Report is one regenerated table or figure.
type Report struct {
	ID     string // e.g. "TableV", "Fig10"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the report as comma-separated rows (header first), with the
// report ID prefixed to every line so concatenated output stays parseable.
func (r *Report) CSV() string {
	var b strings.Builder
	write := func(cells []string) {
		b.WriteString(r.ID)
		for _, c := range cells {
			b.WriteByte(',')
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	write(r.Header)
	for _, row := range r.Rows {
		write(row)
	}
	return b.String()
}

// Scale shrinks expensive experiments for quick runs: 1.0 is the paper's
// scale, smaller values reduce data sizes proportionally.
type Scale float64

// Quick is a reduced scale suitable for CI and -short benchmarks.
const Quick Scale = 0.1

// Full runs the paper's sizes.
const Full Scale = 1.0

func (s Scale) bytes(n int64) int64 {
	v := int64(float64(n) * float64(s))
	if v < 1<<20 {
		v = 1 << 20
	}
	return v
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
