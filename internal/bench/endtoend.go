package bench

import (
	"fmt"

	"fcae/internal/core"
	"fcae/internal/lsmsim"
)

// fillPair runs the fill workload on both backends.
func fillPair(cfg lsmsim.Config) (cpu, fcae lsmsim.Result) {
	cpuCfg := cfg
	cpuCfg.Backend = lsmsim.BackendCPU
	cpu = lsmsim.RunFill(cpuCfg)
	fcaeCfg := cfg
	fcaeCfg.Backend = lsmsim.BackendFCAE
	fcae = lsmsim.RunFill(fcaeCfg)
	return cpu, fcae
}

// TableVI reproduces Table VI: random-write throughput across value
// lengths and V, on a 1 GB load. Fig 11 is the same data as ratios.
func TableVI(scale Scale) (tableVI, fig11 *Report) {
	tableVI = &Report{
		ID:     "TableVI",
		Title:  "Write throughput (MB/s) with different value length and V (db_bench, 1 GB)",
		Header: []string{"Lvalue", "LevelDB", "V=8", "V=16", "V=32", "V=64"},
	}
	fig11 = &Report{
		ID:     "Fig11",
		Title:  "Acceleration ratio of LevelDB-FCAE throughput",
		Header: []string{"Lvalue", "V=8", "V=16", "V=32", "V=64"},
	}
	data := scale.bytes(1 << 30)
	for _, lv := range ValueLengths {
		base := lsmsim.Config{ValueLen: lv, DataBytes: data}
		cpu := lsmsim.RunFill(base)
		rowT := []string{fmt.Sprint(lv), f1(cpu.Throughput)}
		rowR := []string{fmt.Sprint(lv)}
		for _, v := range VWidths {
			cfg := base
			cfg.Backend = lsmsim.BackendFCAE
			eng := core.MultiInputConfig()
			eng.V = v
			cfg.Engine = eng
			r := lsmsim.RunFill(cfg)
			rowT = append(rowT, f1(r.Throughput))
			rowR = append(rowR, f2(r.Throughput/cpu.Throughput))
		}
		tableVI.Rows = append(tableVI.Rows, rowT)
		fig11.Rows = append(fig11.Rows, rowR)
	}
	tableVI.Notes = append(tableVI.Notes,
		"paper LevelDB: 2.4 2.9 2.5 2.8 2.3 2.3; paper V=64: 5.4 7.6 7.2 9.3 11.6 14.4 (max speedup 6.4x)")
	return tableVI, fig11
}

// Fig10 reproduces the 2-input data-size sweep (0.2-2 GB, Lvalue=512,
// V=16).
func Fig10(scale Scale) *Report {
	r := &Report{
		ID:     "Fig10",
		Title:  "Write throughput vs data size (N=2, Lvalue=512, V=16)",
		Header: []string{"GB", "LevelDB", "LevelDB-FCAE", "speedup"},
	}
	for _, gb := range []float64{0.2, 0.5, 1.0, 1.5, 2.0} {
		cfg := lsmsim.Config{
			ValueLen:  512,
			DataBytes: scale.bytes(int64(gb * (1 << 30))),
			Engine:    core.DefaultConfig(), // 2-input
		}
		cpu, fcae := fillPair(cfg)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.1f", gb), f1(cpu.Throughput), f1(fcae.Throughput),
			f2(fcae.Throughput / cpu.Throughput),
		})
	}
	r.Notes = append(r.Notes,
		"paper: LevelDB decreases dramatically with size; LevelDB-FCAE degrades gently (L0 merges fall back to software at N=2)")
	return r
}

// Fig14Sizes is the multi-input data-size sweep; the full paper range runs
// to 1024 GB.
var Fig14Sizes = []float64{0.2, 0.4, 0.8, 1, 2, 4, 8, 16, 64, 256, 1024}

// Fig14 reproduces the multi-input size sweep and Table VIII's PCIe
// transfer percentages, which come from the same runs.
func Fig14(scale Scale, maxGB float64) (fig14, tableVIII *Report) {
	fig14 = &Report{
		ID:     "Fig14",
		Title:  "Write throughput vs data size (9-input FCAE, Lvalue=512)",
		Header: []string{"GB", "LevelDB", "LevelDB-FCAE", "speedup"},
	}
	tableVIII = &Report{
		ID:     "TableVIII",
		Title:  "PCIe transfer percentage of system execution time",
		Header: []string{"GB", "transfer%"},
	}
	for _, gb := range Fig14Sizes {
		if gb > maxGB {
			break
		}
		cfg := lsmsim.Config{ValueLen: 512, DataBytes: scale.bytes(int64(gb * (1 << 30)))}
		cpu, fcae := fillPair(cfg)
		fig14.Rows = append(fig14.Rows, []string{
			fmt.Sprintf("%.1f", gb), f2(cpu.Throughput), f2(fcae.Throughput),
			f2(fcae.Throughput / cpu.Throughput),
		})
		pct := 0.0
		if fcae.Elapsed > 0 {
			pct = float64(fcae.PCIeTime) / float64(fcae.Elapsed) * 100
		}
		tableVIII.Rows = append(tableVIII.Rows, []string{fmt.Sprintf("%.1f", gb), f1(pct)})
	}
	fig14.Notes = append(fig14.Notes, "paper: speedup settles around 2.5x at very large sizes")
	tableVIII.Notes = append(tableVIII.Notes, "paper: 9% at 0.2 GB down to <1% at 1 TB")
	return fig14, tableVIII
}

// Fig15 reproduces the sensitivity study: key length, value length, block
// size and leveling ratio (paper Fig 15 a-d).
func Fig15(scale Scale) *Report {
	r := &Report{
		ID:     "Fig15",
		Title:  "Sensitivity of the speedup to store settings (1 GB fill)",
		Header: []string{"param", "value", "LevelDB", "LevelDB-FCAE", "speedup"},
	}
	data := scale.bytes(1 << 30)
	add := func(param string, value string, cfg lsmsim.Config) {
		cfg.DataBytes = data
		cpu, fcae := fillPair(cfg)
		r.Rows = append(r.Rows, []string{
			param, value, f1(cpu.Throughput), f1(fcae.Throughput),
			f2(fcae.Throughput / cpu.Throughput),
		})
	}
	for _, kl := range []int{16, 32, 64, 128, 256} {
		add("keyLen", fmt.Sprint(kl), lsmsim.Config{KeyLen: kl, ValueLen: 128})
	}
	for _, vl := range []int{64, 256, 1024, 2048} {
		add("valueLen", fmt.Sprint(vl), lsmsim.Config{ValueLen: vl})
	}
	for _, bs := range []int{2 << 10, 4 << 10, 64 << 10, 1 << 20} {
		add("blockKB", fmt.Sprint(bs>>10), lsmsim.Config{ValueLen: 128, BlockSize: bs})
	}
	for _, ratio := range []int{4, 8, 10, 16} {
		add("levelRatio", fmt.Sprint(ratio), lsmsim.Config{ValueLen: 128, LevelRatio: ratio})
	}
	r.Notes = append(r.Notes,
		"paper: speedup falls as key length grows, rises with value length, is flat in block size (~2.4x), and falls as the leveling ratio grows")
	return r
}

// Fig16 reproduces the YCSB comparison (Load + workloads A-F).
func Fig16(scale Scale) *Report {
	r := &Report{
		ID:     "Fig16",
		Title:  "YCSB throughput (kops/s), 16 B keys + 1 KiB values",
		Header: []string{"workload", "LevelDB", "LevelDB-FCAE", "speedup"},
	}
	load := scale.bytes(20 << 30)
	ops := load / 1040 // paper: operation count equals the record count
	for _, w := range lsmsim.YCSBWorkloads {
		cfg := lsmsim.Config{ValueLen: 1024}
		cpu := lsmsim.RunYCSB(cfg, w, load, ops)
		cfg.Backend = lsmsim.BackendFCAE
		fcae := lsmsim.RunYCSB(cfg, w, load, ops)
		r.Rows = append(r.Rows, []string{
			w.Name, f1(cpu.KOpsPerSec), f1(fcae.KOpsPerSec),
			f2(fcae.KOpsPerSec / cpu.KOpsPerSec),
		})
	}
	r.Notes = append(r.Notes,
		"paper: LevelDB-FCAE wins every workload; speedup grows with write ratio, up to 2.2x on Load; read-only C is unchanged")
	return r
}

// ScheduleAblation quantifies the paper's concurrent-flush benefit
// (§VI-A). The benefit is largest where merges are long — the CPU
// baseline — so the table shows both: the baseline with flushes given
// their own core (the schedule FCAE gets for free), and the FCAE backend
// with flushes forced to wait for the running engine job.
func ScheduleAblation(scale Scale) *Report {
	r := &Report{
		ID:    "AblationSchedule",
		Title: "Flush/compaction overlap ablation (1 GB fill)",
		Header: []string{"Lvalue", "LevelDB", "LevelDB+overlap", "benefit",
			"FCAE", "FCAE serialized", "benefit"},
	}
	data := scale.bytes(1 << 30)
	for _, lv := range []int{128, 512, 2048} {
		cpuSer := lsmsim.RunFill(lsmsim.Config{ValueLen: lv, DataBytes: data})
		cpuOver := lsmsim.RunFill(lsmsim.Config{ValueLen: lv, DataBytes: data, OverlapCPUFlush: true})
		fOver := lsmsim.RunFill(lsmsim.Config{ValueLen: lv, DataBytes: data, Backend: lsmsim.BackendFCAE})
		fSer := lsmsim.RunFill(lsmsim.Config{ValueLen: lv, DataBytes: data, Backend: lsmsim.BackendFCAE, SerializeFlush: true})
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(lv),
			f1(cpuSer.Throughput), f1(cpuOver.Throughput), f2(cpuOver.Throughput / cpuSer.Throughput),
			f1(fOver.Throughput), f1(fSer.Throughput), f2(fOver.Throughput / fSer.Throughput),
		})
	}
	r.Notes = append(r.Notes,
		"paper §VI-A: overlapping flushes with merges pays when merges are long (software); with the engine's short merges the schedule barely matters")
	return r
}

// NearStorage explores the paper's §VII-E future-work direction: the
// engine embedded in the SSD controller versus the evaluated PCIe card,
// across data sizes.
func NearStorage(scale Scale) *Report {
	r := &Report{
		ID:     "NearStorage",
		Title:  "Engine placement: PCIe card vs near-storage (§VII-E extension)",
		Header: []string{"GB", "LevelDB", "FCAE-PCIe", "FCAE-near-storage", "near/pcie"},
	}
	for _, gb := range []float64{16, 256, 1024} {
		data := scale.bytes(int64(gb * (1 << 30)))
		cpu := lsmsim.RunFill(lsmsim.Config{ValueLen: 512, DataBytes: data})
		pcie := lsmsim.RunFill(lsmsim.Config{ValueLen: 512, DataBytes: data, Backend: lsmsim.BackendFCAE})
		near := lsmsim.RunFill(lsmsim.Config{ValueLen: 512, DataBytes: data, Backend: lsmsim.BackendFCAE,
			Placement: lsmsim.PlacementNearStorage})
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.0f", gb), f1(cpu.Throughput), f1(pcie.Throughput), f1(near.Throughput),
			f2(near.Throughput / pcie.Throughput),
		})
	}
	r.Notes = append(r.Notes,
		"paper §VII-E: near-storage 'can fully utilize the internal bandwidth of SSD, so that the redundant data transfer is minimized'")
	return r
}

// TieredSim compares leveled and tiered (lazy) compaction end to end on
// both backends — the §VII-C scenario: tiered merges carry multi-run
// fan-in, so the 9-input engine covers them while a 2-input engine falls
// back to software.
func TieredSim(scale Scale) *Report {
	r := &Report{
		ID:    "Tiered",
		Title: "Leveled vs tiered compaction (1 GB fill, Lvalue=512)",
		Header: []string{"scheme", "backend", "MB/s", "WA", "hwJobs",
			"swFallbacks"},
	}
	data := scale.bytes(1 << 30)
	row := func(scheme string, cfg lsmsim.Config) {
		res := lsmsim.RunFill(cfg)
		r.Rows = append(r.Rows, []string{
			scheme, cfg.Backend.String(), f1(res.Throughput), f1(res.WriteAmp),
			fmt.Sprint(res.HWCompactions), fmt.Sprint(res.SWFallbacks),
		})
	}
	row("leveled", lsmsim.Config{ValueLen: 512, DataBytes: data})
	row("leveled", lsmsim.Config{ValueLen: 512, DataBytes: data, Backend: lsmsim.BackendFCAE})
	row("tiered", lsmsim.Config{ValueLen: 512, DataBytes: data, TieredRuns: 4})
	row("tiered-2in", lsmsim.Config{ValueLen: 512, DataBytes: data, TieredRuns: 4,
		Backend: lsmsim.BackendFCAE, Engine: core.DefaultConfig()})
	row("tiered-9in", lsmsim.Config{ValueLen: 512, DataBytes: data, TieredRuns: 4,
		Backend: lsmsim.BackendFCAE})
	r.Notes = append(r.Notes,
		"paper §VII-C: lazy compaction (SifrDB/PebblesDB) needs N>2; only the 9-input engine keeps tiered merges in hardware")
	return r
}

// All regenerates every report at the given scale; maxGB bounds the Fig 14
// sweep.
func All(scale Scale, maxGB float64) []*Report {
	tableV, fig9 := TableV(scale)
	tableVI, fig11 := TableVI(scale)
	fig12, fig13 := Fig12And13(scale)
	fig14, tableVIII := Fig14(scale, maxGB)
	return []*Report{
		tableV, fig9,
		tableVI, fig11,
		Fig10(scale),
		TableVII(),
		fig12, fig13,
		fig14, tableVIII,
		Fig15(scale),
		Fig16(scale),
		Ablations(scale),
		ScheduleAblation(scale),
		NearStorage(scale),
		TieredSim(scale),
	}
}
