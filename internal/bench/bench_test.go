package bench

import (
	"strconv"
	"strings"
	"testing"
)

// parse reads a numeric cell.
func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestReportRendering(t *testing.T) {
	r := &Report{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	s := r.String()
	for _, want := range []string{"X — demo", "a", "bb", "333", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestTableVShape(t *testing.T) {
	tv, f9 := TableV(Quick)
	if len(tv.Rows) != len(ValueLengths) {
		t.Fatalf("rows = %d", len(tv.Rows))
	}
	// CPU well below every FCAE cell; V=64 speed grows with value length.
	prevV64 := 0.0
	for _, row := range tv.Rows {
		cpu := parse(t, row[1])
		for _, cell := range row[2:] {
			if parse(t, cell) < cpu*10 {
				t.Fatalf("FCAE cell %s not >>10x CPU %s", cell, row[1])
			}
		}
		v64 := parse(t, row[5])
		if v64 < prevV64 {
			t.Fatalf("V=64 speed fell at Lvalue=%s", row[0])
		}
		prevV64 = v64
	}
	// Fig 9 peak must be in the paper's band (tens of x, approaching ~90).
	last := f9.Rows[len(f9.Rows)-1]
	if peak := parse(t, last[4]); peak < 60 || peak > 130 {
		t.Fatalf("Fig9 peak ratio %.1f outside the plausible band", peak)
	}
}

func TestTableVIIExactRows(t *testing.T) {
	r := TableVII()
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	fits := map[string]string{"2/64/16": "yes", "9/64/8": "no", "9/8/8": "yes"}
	for _, row := range r.Rows {
		key := row[0] + "/" + row[1] + "/" + row[2]
		if want, ok := fits[key]; ok && row[6] != want {
			t.Fatalf("config %s fits=%s, want %s", key, row[6], want)
		}
	}
}

func TestFig12Convergence(t *testing.T) {
	f12, f13 := Fig12And13(Quick)
	first := f12.Rows[0]
	last := f12.Rows[len(f12.Rows)-1]
	shortGap := parse(t, first[2]) / parse(t, first[1])
	longGap := parse(t, last[2]) / parse(t, last[1])
	if shortGap > 0.8 {
		t.Fatalf("9-input should be clearly slower at short values: %.2f", shortGap)
	}
	if longGap < 0.85 {
		t.Fatalf("9-input should converge at long values: %.2f", longGap)
	}
	// Fig 13: 9-input acceleration exceeds 2-input everywhere.
	for _, row := range f13.Rows {
		if parse(t, row[2]) <= parse(t, row[1]) {
			t.Fatalf("9-input acceleration should exceed 2-input at Lvalue=%s", row[0])
		}
	}
}

func TestTableVIRatiosAboveOne(t *testing.T) {
	_, f11 := TableVI(Quick)
	for _, row := range f11.Rows {
		for _, cell := range row[1:] {
			if parse(t, cell) <= 1 {
				t.Fatalf("FCAE must beat LevelDB at Lvalue=%s: ratio %s", row[0], cell)
			}
		}
	}
}

func TestFig10LevelDBFalls(t *testing.T) {
	r := Fig10(Quick)
	first := parse(t, r.Rows[0][1])
	last := parse(t, r.Rows[len(r.Rows)-1][1])
	if last >= first {
		t.Fatalf("LevelDB should fall with data size: %.1f -> %.1f", first, last)
	}
}

func TestFig16ReadOnlyNeutral(t *testing.T) {
	r := Fig16(Quick)
	for _, row := range r.Rows {
		if row[0] == "C" {
			if ratio := parse(t, row[3]); ratio < 0.99 || ratio > 1.01 {
				t.Fatalf("workload C ratio %.2f, want 1.00", ratio)
			}
		}
	}
}

func TestAblationsShowBenefit(t *testing.T) {
	r := Ablations(Quick)
	for _, row := range r.Rows {
		full := parse(t, row[1])
		noKV := parse(t, row[2])
		noIdx := parse(t, row[3])
		if noKV >= full {
			t.Fatalf("Lvalue=%s: removing key-value separation should hurt (%v vs %v)", row[0], noKV, full)
		}
		if noIdx > full*1.01 {
			t.Fatalf("Lvalue=%s: removing index separation should not help", row[0])
		}
	}
}

func TestNearStorageNeverRegresses(t *testing.T) {
	r := NearStorage(Quick)
	for _, row := range r.Rows {
		if parse(t, row[4]) < 0.99 {
			t.Fatalf("near-storage regressed at %s GB: %s", row[0], row[4])
		}
	}
}

func TestScaleBytesFloor(t *testing.T) {
	if Scale(0.0001).bytes(1<<30) < 1<<20 {
		t.Fatal("scale floor violated")
	}
	if Full.bytes(1<<30) != 1<<30 {
		t.Fatal("full scale must be identity")
	}
}

func TestReportCSV(t *testing.T) {
	r := &Report{ID: "X", Header: []string{"a", "b"}, Rows: [][]string{{"1", `va"l,ue`}}}
	csv := r.CSV()
	if !strings.Contains(csv, "X,a,b\n") {
		t.Fatalf("missing header line:\n%s", csv)
	}
	if !strings.Contains(csv, `"va""l,ue"`) {
		t.Fatalf("quoting broken:\n%s", csv)
	}
}

func TestStageUtilizationShape(t *testing.T) {
	r := StageUtilization(Quick, DefaultEngineConfig())
	if len(r.Rows) != len(ValueLengths) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// At the shortest values the comparer dominates; at the longest the
	// decoder does (paper §V-D1 crossover).
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if parse(t, first[2]) < parse(t, first[1]) {
		t.Fatalf("at Lvalue=64 comparer (%s%%) should dominate decoder (%s%%)", first[2], first[1])
	}
	if parse(t, last[1]) < parse(t, last[2]) {
		t.Fatalf("at Lvalue=2048 decoder (%s%%) should dominate comparer (%s%%)", last[1], last[2])
	}
	if last[5] != "decoder" || first[5] != "comparer" {
		t.Fatalf("bottleneck labels wrong: %v / %v", first[5], last[5])
	}
}

func TestTieredSimShape(t *testing.T) {
	r := TieredSim(Quick)
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byScheme := map[string][]string{}
	for _, row := range r.Rows {
		byScheme[row[0]] = row
	}
	// The 2-input engine must show fallbacks on tiered merges; the
	// 9-input engine must keep jobs in hardware.
	if parse(t, byScheme["tiered-2in"][5]) == 0 {
		t.Fatal("tiered-2in shows no software fallbacks")
	}
	if parse(t, byScheme["tiered-9in"][4]) == 0 {
		t.Fatal("tiered-9in ran nothing in hardware")
	}
	// Tiered WA undercuts leveled WA on the CPU backend.
	if parse(t, byScheme["tiered"][3]) >= parse(t, byScheme["leveled"][3]) {
		t.Fatal("tiered write amplification should undercut leveled")
	}
}

func TestScheduleAblationShape(t *testing.T) {
	r := ScheduleAblation(Quick)
	for _, row := range r.Rows {
		// Overlapping flushes with long software merges must help.
		if parse(t, row[3]) < 1.05 {
			t.Fatalf("Lvalue=%s: CPU overlap benefit %s too small", row[0], row[3])
		}
	}
}
