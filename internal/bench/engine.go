package bench

import (
	"bytes"
	"fmt"
	"math/rand"

	"fcae/internal/compaction"
	"fcae/internal/core"
	"fcae/internal/keys"
	"fcae/internal/model"
	"fcae/internal/sstable"
)

// memReaderAt adapts a byte slice for table input.
type memReaderAt []byte

func (m memReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m)) {
		return 0, fmt.Errorf("bench: read past end")
	}
	n := copy(p, m[off:])
	if n < len(p) {
		return n, fmt.Errorf("bench: short read")
	}
	return n, nil
}

// buildRun renders n sorted entries with incompressible values into one
// SSTable held in memory: the input shape of the paper's compaction-speed
// experiments (16-byte keys, Table IV).
func buildRun(prefix byte, n, valueLen int, seqBase uint64, stride int, rng *rand.Rand) compaction.Table {
	var buf bytes.Buffer
	w := sstable.NewWriter(&buf, sstable.Options{Compression: sstable.SnappyCompression})
	val := make([]byte, valueLen)
	for i := 0; i < n; i++ {
		user := fmt.Sprintf("%c%015d", prefix, i*stride) // 16-byte user key
		ik := keys.MakeInternal(nil, []byte(user), seqBase+uint64(i), keys.KindSet)
		rng.Read(val)
		if err := w.Add(ik, val); err != nil {
			panic(err)
		}
	}
	if _, err := w.Finish(); err != nil {
		panic(err)
	}
	return compaction.Table{Num: 1, Size: int64(buf.Len()), Data: memReaderAt(buf.Bytes())}
}

// speedJob builds a 2-run compaction job shaped like an L_i -> L_{i+1}
// merge (the lower level ~8x larger) totalling roughly totalBytes of
// payload.
func speedJob(valueLen int, totalBytes int64, runs int, rng *rand.Rand) *compaction.Job {
	perRun := int(totalBytes) / (valueLen + 30) / runs
	if perRun < 200 {
		perRun = 200
	}
	job := &compaction.Job{
		SmallestSnapshot: keys.MaxSeq,
		BottomLevel:      true,
		TableOpts:        sstable.Options{Compression: sstable.SnappyCompression},
		MaxOutputBytes:   2 << 20,
	}
	if runs == 2 {
		// Upper input 1/9 of the job, lower input 8/9 (typical leveled merge).
		nUp := perRun * 2 / 9 * runs / 2
		if nUp < 100 {
			nUp = 100
		}
		nLow := perRun*runs - nUp
		job.Runs = append(job.Runs,
			[]compaction.Table{buildRun('a', nUp, valueLen, 1, 16, rng)},
			[]compaction.Table{buildRun('a', nLow, valueLen, 1_000_000, 2, rng)})
		return job
	}
	// Multi-input jobs: runs cover successive key ranges with a small
	// overlap at the seams, so consecutive selections drain one decoder
	// lane at a time. This matches the paper's Fig 12 observation that the
	// 9-input engine stays Data-Block-Decoder-bound at long values ("the
	// period of the latter module is almost the same for N=2 and N=9");
	// uniformly interleaved runs would instead let all N decoders work in
	// parallel and the Comparer would bound throughput.
	for r := 0; r < runs; r++ {
		job.Runs = append(job.Runs,
			[]compaction.Table{buildRunRange(byte('a'+r), perRun, valueLen, uint64(1+r*10_000_000), rng)})
	}
	return job
}

// buildRunRange renders one run whose keys live in their own range.
func buildRunRange(prefix byte, n, valueLen int, seqBase uint64, rng *rand.Rand) compaction.Table {
	return buildRun(prefix, n, valueLen, seqBase, 3, rng)
}

// engineSpeed runs the engine on job and returns the paper's
// compaction-speed metric: input SSTable bytes / kernel time, in MB/s.
func engineSpeed(cfg core.Config, job *compaction.Job) float64 {
	eng, err := core.NewEngine(cfg)
	if err != nil {
		panic(err)
	}
	var images []*core.InputImage
	for _, run := range job.Runs {
		img, err := core.BuildInputImage(run, cfg.WIn, job.TableOpts)
		if err != nil {
			panic(err)
		}
		images = append(images, img)
	}
	res, err := eng.Run(images, core.Params{
		Compress:         true,
		SmallestSnapshot: job.SmallestSnapshot,
		BottomLevel:      job.BottomLevel,
	})
	if err != nil {
		panic(err)
	}
	return float64(job.InputBytes()) / res.Stats.KernelTime(cfg.ClockHz).Seconds() / 1e6
}

// cpuSpeed returns the modeled CPU baseline compaction speed (Table V's
// CPU column) for the same job shape.
func cpuSpeed(valueLen int, job *compaction.Job) float64 {
	var pairs int64
	for _, run := range job.Runs {
		_ = run
	}
	// Pairs from payload size: keys are 16 bytes plus the 8-byte trailer.
	pairs = job.InputBytes() / int64(valueLen+30)
	t := model.CPUPairTime(24, valueLen, job.NumRuns())
	return float64(job.InputBytes()) / (float64(pairs) * t.Seconds()) / 1e6
}

// DefaultEngineConfig exposes the 2-input configuration for callers
// outside this package (cmd/experiments).
func DefaultEngineConfig() core.Config { return core.DefaultConfig() }

// ValueLengths is the paper's sweep (Tables V and VI).
var ValueLengths = []int{64, 128, 256, 512, 1024, 2048}

// VWidths is the paper's value-lane sweep.
var VWidths = []int{8, 16, 32, 64}

// TableV reproduces Table V: 2-input compaction speed, CPU vs FCAE across
// value lengths and V. Fig 9 is the same data as acceleration ratios, so
// both are emitted.
func TableV(scale Scale) (tableV, fig9 *Report) {
	tableV = &Report{
		ID:     "TableV",
		Title:  "Compaction speed (MB/s) with different value length and V (N=2)",
		Header: []string{"Lvalue", "CPU", "V=8", "V=16", "V=32", "V=64"},
	}
	fig9 = &Report{
		ID:     "Fig9",
		Title:  "Acceleration ratio of FCAE compaction speed (N=2)",
		Header: []string{"Lvalue", "V=8", "V=16", "V=32", "V=64"},
	}
	rng := rand.New(rand.NewSource(1))
	jobBytes := scale.bytes(18 << 20)
	for _, lv := range ValueLengths {
		job := speedJob(lv, jobBytes, 2, rng)
		cpu := cpuSpeed(lv, job)
		rowV := []string{fmt.Sprint(lv), f1(cpu)}
		rowR := []string{fmt.Sprint(lv)}
		for _, v := range VWidths {
			cfg := core.DefaultConfig()
			cfg.V = v
			speed := engineSpeed(cfg, job)
			rowV = append(rowV, f1(speed))
			rowR = append(rowR, f1(speed/cpu))
		}
		tableV.Rows = append(tableV.Rows, rowV)
		fig9.Rows = append(fig9.Rows, rowR)
	}
	tableV.Notes = append(tableV.Notes,
		"paper CPU: 5.3 6.9 9.0 12.2 14.8 13.3; paper V=64: 175.8 291.7 524.9 745.4 1026.3 1205.6")
	fig9.Notes = append(fig9.Notes, "paper peak ratio ~90x at V=64, Lvalue=2048")
	return tableV, fig9
}

// Fig12And13 reproduce the 2-input vs 9-input comparison at V=8 (paper
// §VII-C1): absolute speeds (Fig 12) and acceleration over the CPU
// baseline of matching merge width (Fig 13).
func Fig12And13(scale Scale) (fig12, fig13 *Report) {
	fig12 = &Report{
		ID:     "Fig12",
		Title:  "Compaction speed (MB/s): 2-input vs 9-input FCAE (V=8)",
		Header: []string{"Lvalue", "2-input", "9-input"},
	}
	fig13 = &Report{
		ID:     "Fig13",
		Title:  "Acceleration ratio vs CPU baseline: 2-input vs 9-input",
		Header: []string{"Lvalue", "2-input", "9-input"},
	}
	rng := rand.New(rand.NewSource(2))
	jobBytes := scale.bytes(18 << 20)
	for _, lv := range ValueLengths {
		job2 := speedJob(lv, jobBytes, 2, rng)
		job9 := speedJob(lv, jobBytes, 9, rng)

		cfg2 := core.DefaultConfig()
		cfg2.V = 8
		s2 := engineSpeed(cfg2, job2)
		cfg9 := core.MultiInputConfig() // N=9, V=8, WIn=8
		s9 := engineSpeed(cfg9, job9)

		cpu2 := cpuSpeed(lv, job2)
		cpu9 := cpuSpeed(lv, job9)

		fig12.Rows = append(fig12.Rows, []string{fmt.Sprint(lv), f1(s2), f1(s9)})
		fig13.Rows = append(fig13.Rows, []string{fmt.Sprint(lv), f1(s2 / cpu2), f1(s9 / cpu9)})
	}
	fig12.Notes = append(fig12.Notes,
		"paper: 9-input slower at short values (Comparer-bound), gap closes at long values (Decoder-bound)")
	fig13.Notes = append(fig13.Notes, "paper peak: 92.0x for the 9-input engine")
	return fig12, fig13
}

// TableVII reproduces the resource utilization table from the engine's
// resource model.
func TableVII() *Report {
	r := &Report{
		ID:     "TableVII",
		Title:  "Resource utilization for different FPGA configurations (%)",
		Header: []string{"N", "WIn", "V", "BRAM", "FF", "LUT", "fits"},
	}
	configs := []struct{ n, win, v int }{
		{2, 64, 16}, {2, 64, 8}, {9, 64, 8}, {9, 16, 16}, {9, 16, 8}, {9, 8, 8},
	}
	for _, c := range configs {
		cfg := core.Config{N: c.n, WIn: c.win, WOut: 64, V: c.v}
		u := cfg.Resources()
		fits := "yes"
		if !cfg.Fits() {
			fits = "no"
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(c.n), fmt.Sprint(c.win), fmt.Sprint(c.v),
			f1(u.BRAM), f1(u.FF), f1(u.LUT), fits,
		})
	}
	r.Notes = append(r.Notes, "paper: 18/10/72, 17/9/63, 35/27/206, 30/18/125, 26/16/103, 25/14/84")
	return r
}

// StageUtilization reports each pipeline stage's busy share of the kernel
// time across value lengths — the measured counterpart of the paper's
// §V-D bottleneck analysis (Decoder-bound vs Comparer-bound).
func StageUtilization(scale Scale, cfg core.Config) *Report {
	r := &Report{
		ID:    "StageUtil",
		Title: fmt.Sprintf("Pipeline stage utilization (N=%d, V=%d)", cfg.N, cfg.V),
		Header: []string{"Lvalue", "decoder%", "comparer%", "transfer%", "encoder%",
			"bottleneck"},
	}
	rng := rand.New(rand.NewSource(4))
	jobBytes := scale.bytes(8 << 20)
	for _, lv := range ValueLengths {
		job := speedJob(lv, jobBytes, 2, rng)
		eng, err := core.NewEngine(cfg)
		if err != nil {
			panic(err)
		}
		var images []*core.InputImage
		for _, run := range job.Runs {
			img, err := core.BuildInputImage(run, cfg.WIn, job.TableOpts)
			if err != nil {
				panic(err)
			}
			images = append(images, img)
		}
		res, err := eng.Run(images, core.Params{Compress: true, SmallestSnapshot: job.SmallestSnapshot, BottomLevel: true})
		if err != nil {
			panic(err)
		}
		pct := func(busy float64) string {
			return f1(busy / res.Stats.Cycles * 100)
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(lv),
			pct(res.Stats.DecoderBusy), pct(res.Stats.ComparerBusy),
			pct(res.Stats.TransferBusy), pct(res.Stats.EncoderBusy),
			cfg.BottleneckStage(24, lv),
		})
	}
	r.Notes = append(r.Notes,
		"paper §V-D1: the bottleneck moves from the Comparer to the Data Block Decoder as L_value grows")
	return r
}

// Ablations quantifies the paper's two pipeline optimizations by running
// the same job with each disabled (DESIGN.md ablation benches 1-2).
func Ablations(scale Scale) *Report {
	r := &Report{
		ID:     "Ablation",
		Title:  "Pipeline optimization ablations (engine speed, MB/s)",
		Header: []string{"Lvalue", "full", "no KV separation", "no index/data separation"},
	}
	rng := rand.New(rand.NewSource(3))
	jobBytes := scale.bytes(8 << 20)
	for _, lv := range []int{128, 512, 2048} {
		job := speedJob(lv, jobBytes, 2, rng)
		full := engineSpeed(core.DefaultConfig(), job)
		noKV := core.DefaultConfig()
		noKV.KeyValueSeparation = false
		noIdx := core.DefaultConfig()
		noIdx.IndexDataSeparation = false
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(lv), f1(full), f1(engineSpeed(noKV, job)), f1(engineSpeed(noIdx, job)),
		})
	}
	r.Notes = append(r.Notes, "key-value separation dominates at long values (paper §V-C)")
	return r
}
