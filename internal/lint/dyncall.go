package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Dynamic-dispatch resolution. StaticCallee deliberately returns nil on
// interface method calls and calls through stored function values, which
// made every interface seam — compaction.Executor, FaultInjector,
// EventListener, the arena-backed Env writers — a blind spot for the
// module analyzers. The resolver here closes that gap in the
// type-set/RTA style:
//
//   - The live-type set is every module-local named type that is
//     instantiated somewhere in the module (composite literal, new(),
//     var declaration), closed transitively over field and element types
//     (a type reachable as a field of a live struct is live: its zero
//     value exists inside the parent).
//   - An interface method call resolves to the concrete method of every
//     live type implementing the interface — the union of possible
//     callees, so a composed summary can only overstate, never miss, a
//     dynamic path. Resolution is restricted to interfaces *declared in
//     the module* (compaction.Env, dispatch.FaultInjector, ...): those
//     are the deliberate seams. Stdlib and anonymous interfaces stay
//     unresolved — a one-method structural signature like `Close() error`
//     or `Flush() error` is satisfied by half the module by accident, and
//     resolving through it floods the analyses with impossible edges
//     (every wal sink "might be" the DB because both have Flush).
//   - A call through a function value resolves via a conservative
//     assignment-flow pass: the named functions and bound methods that
//     flow into each func-typed field, parameter and variable anywhere in
//     the module form that slot's callee set.
//
// Because the union over-approximates the targets of any one call site,
// a concrete implementation that is trivially lock-free can carry
// `//fcae:impl-pure` in its doc comment: lockorder and chanflow's
// under-lock rule skip such callees during dynamic propagation (and
// report the directive itself when the marked body visibly acquires a
// lock or blocks on a channel, so the exemption cannot rot silently).

// implPureDirective exempts a trivially lock-free implementation from
// dynamic-dispatch propagation in lockorder and chanflow.
const implPureDirective = "//fcae:impl-pure"

// ImplPure reports whether fi's doc comment carries //fcae:impl-pure,
// declaring the implementation free of lock acquisitions and blocking
// channel operations for dynamic-dispatch propagation purposes.
func (fi *FuncInfo) ImplPure() bool {
	if fi == nil || fi.Decl == nil || fi.Decl.Doc == nil {
		return false
	}
	for _, c := range fi.Decl.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == implPureDirective || strings.HasPrefix(text, implPureDirective+" ") {
			return true
		}
	}
	return false
}

// dynResolver holds the module's dynamic-dispatch facts. The live-type
// set and the assignment-flow slots are built once in BuildModule and
// read-only afterwards; per-call resolution results are memoized under mu
// because the analyzers run concurrently over a shared Module.
type dynResolver struct {
	m *Module

	// modulePkg marks the type-checker packages belonging to the module.
	modulePkg map[*types.Package]bool

	// instantiated is the live-type set in declaration order.
	instantiated []*types.Named

	// slots maps each func-typed object (struct field, parameter,
	// variable) to the named funcs and bound methods assigned into it
	// anywhere in the module, in declaration order.
	slots map[types.Object][]*FuncInfo

	mu           sync.Mutex
	ifaceCache   map[*types.Func][]*FuncInfo
	callCache    map[*ast.CallExpr][]*FuncInfo
	staticSeen   map[*ast.CallExpr]bool
	staticEdges  int64
	dynamicEdges int64
}

// ResolverStats counts the distinct call edges each resolver produced
// during analysis: StaticEdges are direct calls resolved to module
// functions, DynamicEdges are (call site, concrete callee) pairs produced
// by interface-dispatch and function-value resolution.
type ResolverStats struct {
	StaticEdges  int64
	DynamicEdges int64
}

// ResolverStats returns the edge counts accumulated so far.
func (m *Module) ResolverStats() ResolverStats {
	if m.dyn == nil {
		return ResolverStats{}
	}
	m.dyn.mu.Lock()
	defer m.dyn.mu.Unlock()
	return ResolverStats{StaticEdges: m.dyn.staticEdges, DynamicEdges: m.dyn.dynamicEdges}
}

// DynamicCallees resolves an interface method call or a call through a
// function value to the set of module functions it may reach, sorted by
// declaration position. Direct calls (StaticCallee territory) and calls
// whose targets cannot be determined resolve to nil.
func (m *Module) DynamicCallees(info *types.Info, call *ast.CallExpr) []*FuncInfo {
	r := m.dyn
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if res, ok := r.callCache[call]; ok {
		r.mu.Unlock()
		return res
	}
	r.mu.Unlock()
	res := r.resolve(info, call)
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.callCache[call]; ok {
		return prev // another analyzer resolved it concurrently
	}
	r.callCache[call] = res
	r.dynamicEdges += int64(len(res))
	return res
}

// noteStaticEdge counts a StaticCallee hit once per call site.
func (m *Module) noteStaticEdge(call *ast.CallExpr) {
	r := m.dyn
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.staticSeen[call] {
		r.staticSeen[call] = true
		r.staticEdges++
	}
}

// resolve classifies the call shape and dispatches to the interface or
// function-value resolver.
func (r *dynResolver) resolve(info *types.Info, call *ast.CallExpr) []*FuncInfo {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			switch sel.Kind() {
			case types.MethodVal:
				fn, ok := sel.Obj().(*types.Func)
				if ok && types.IsInterface(sel.Recv()) {
					recvNamed := namedOf(sel.Recv())
					if recvNamed == nil || !r.modulePkg[recvNamed.Obj().Pkg()] {
						return nil // stdlib or anonymous interface: not a module seam
					}
					return r.implsOf(fn)
				}
			case types.FieldVal:
				return r.slots[sel.Obj()]
			}
			return nil
		}
		// Package-qualified call through a func-typed package variable.
		if obj, ok := info.Uses[fun.Sel].(*types.Var); ok {
			return r.slots[obj]
		}
	case *ast.Ident:
		// Call through a func-typed local, parameter or package variable.
		if obj, ok := info.Uses[fun].(*types.Var); ok {
			return r.slots[obj]
		}
	}
	return nil
}

// implsOf returns the concrete methods of every live type implementing
// the interface that declares method, memoized per interface method.
func (r *dynResolver) implsOf(method *types.Func) []*FuncInfo {
	r.mu.Lock()
	if out, ok := r.ifaceCache[method]; ok {
		r.mu.Unlock()
		return out
	}
	r.mu.Unlock()

	recv := method.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*FuncInfo
	seen := make(map[*FuncInfo]bool)
	for _, named := range r.instantiated {
		// The pointer method set subsumes the value one, so checking *T
		// covers values and pointers stored in the interface alike — the
		// union can only grow, which is the conservative direction.
		if !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), method.Name())
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if fi := r.m.funcs[fn]; fi != nil && !seen[fi] {
			seen[fi] = true
			out = append(out, fi)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })

	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.ifaceCache[method]; ok {
		return prev
	}
	r.ifaceCache[method] = out
	return out
}

// buildDynResolver walks the whole module once, collecting the live-type
// set and the function-value assignment flows.
func buildDynResolver(m *Module) *dynResolver {
	r := &dynResolver{
		m:          m,
		slots:      make(map[types.Object][]*FuncInfo),
		ifaceCache: make(map[*types.Func][]*FuncInfo),
		callCache:  make(map[*ast.CallExpr][]*FuncInfo),
		staticSeen: make(map[*ast.CallExpr]bool),
	}

	instSet := make(map[*types.Named]bool)
	var queue []*types.Named
	modulePkgs := make(map[*types.Package]bool, len(m.Pkgs))
	for _, pkg := range m.Pkgs {
		modulePkgs[pkg.Types] = true
	}
	r.modulePkg = modulePkgs
	mark := func(t types.Type) {
		n := namedOf(t)
		if n == nil || instSet[n] {
			return
		}
		if !modulePkgs[n.Obj().Pkg()] {
			return // external type: its methods have no bodies here anyway
		}
		instSet[n] = true
		queue = append(queue, n)
	}

	slotSets := make(map[types.Object]map[*FuncInfo]bool)
	addFlow := func(pkg *Package, target types.Object, rhs ast.Expr) {
		if target == nil || rhs == nil {
			return
		}
		if _, ok := target.Type().Underlying().(*types.Signature); !ok {
			return
		}
		fi := r.funcValue(pkg, rhs)
		if fi == nil {
			return
		}
		if slotSets[target] == nil {
			slotSets[target] = make(map[*FuncInfo]bool)
		}
		slotSets[target][fi] = true
	}

	for _, pkg := range m.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					t := info.TypeOf(n)
					mark(t)
					if st, ok := baseStruct(t); ok {
						for i, elt := range n.Elts {
							if kv, ok := elt.(*ast.KeyValueExpr); ok {
								if id, ok := kv.Key.(*ast.Ident); ok {
									addFlow(pkg, info.Uses[id], kv.Value)
								}
								continue
							}
							if i < st.NumFields() {
								addFlow(pkg, st.Field(i), elt)
							}
						}
					}
				case *ast.ValueSpec:
					if n.Type != nil {
						mark(info.TypeOf(n.Type))
					}
					for i, name := range n.Names {
						if i < len(n.Values) {
							addFlow(pkg, info.Defs[name], n.Values[i])
						}
					}
				case *ast.AssignStmt:
					if len(n.Lhs) == len(n.Rhs) {
						for i := range n.Lhs {
							addFlow(pkg, lvalueObj(info, n.Lhs[i]), n.Rhs[i])
						}
					}
				case *ast.CallExpr:
					if builtinName(info, n) == "new" && len(n.Args) == 1 {
						mark(info.TypeOf(n.Args[0]))
					}
					if callee := m.staticCalleeOf(info, n); callee != nil {
						sig := callee.Obj.Type().(*types.Signature)
						for i, arg := range n.Args {
							if i < sig.Params().Len() {
								addFlow(pkg, sig.Params().At(i), arg)
							}
						}
					}
				}
				return true
			})
		}
	}

	// Close the live set over field and element types: the zero value of
	// a field exists inside every live parent, so its methods are
	// reachable through interfaces holding it.
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		switch u := n.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				mark(u.Field(i).Type())
			}
		case *types.Slice:
			mark(u.Elem())
		case *types.Array:
			mark(u.Elem())
		case *types.Map:
			mark(u.Elem())
		case *types.Chan:
			mark(u.Elem())
		case *types.Pointer:
			mark(u.Elem())
		}
	}

	for n := range instSet {
		r.instantiated = append(r.instantiated, n)
	}
	sort.Slice(r.instantiated, func(i, j int) bool {
		return r.instantiated[i].Obj().Pos() < r.instantiated[j].Obj().Pos()
	})
	for obj, set := range slotSets {
		funcs := make([]*FuncInfo, 0, len(set))
		for fi := range set {
			funcs = append(funcs, fi)
		}
		sort.Slice(funcs, func(i, j int) bool { return funcs[i].Decl.Pos() < funcs[j].Decl.Pos() })
		r.slots[obj] = funcs
	}
	return r
}

// funcValue resolves an expression to the module function it denotes — a
// named function or a bound/expression method — or nil. Function literals
// are deliberately not tracked: they have no FuncInfo, and the summaries
// they would contribute are already collected from their enclosing body.
func (r *dynResolver) funcValue(pkg *Package, e ast.Expr) *FuncInfo {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[x]
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[x]; sel != nil {
			obj = sel.Obj()
		} else {
			obj = pkg.Info.Uses[x.Sel]
		}
	}
	if fn, ok := obj.(*types.Func); ok {
		return r.m.funcs[fn]
	}
	return nil
}

// lvalueObj resolves an assignment target to its object: a plain
// identifier or a field selector. Index expressions and other shapes
// return nil (untracked).
func lvalueObj(info *types.Info, lhs ast.Expr) types.Object {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return nil
		}
		if obj := info.Defs[x]; obj != nil {
			return obj
		}
		return info.Uses[x]
	case *ast.SelectorExpr:
		if sel := info.Selections[x]; sel != nil {
			return sel.Obj()
		}
		return info.Uses[x.Sel]
	}
	return nil
}

// baseStruct returns the struct type beneath t, unwrapping pointers.
func baseStruct(t types.Type) (*types.Struct, bool) {
	if t == nil {
		return nil, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}
