package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc guards the paper's central performance claim: the merge kernel
// is cycle-accounted (§VI models throughput per pipeline stage), and the
// model only holds if the loop bodies behind the //fcae:cycle-accounting
// functions do no per-iteration heap work — one stray make or growing
// append inside the block-switch path shows up directly as lost device
// bandwidth. The analyzer marks the directive-carrying functions hot,
// propagates hotness through the static call graph (a callee invoked from
// a hot loop is hot in its entirety), and flags the allocation shapes Go
// hides in plain syntax inside hot loops:
//
//   - make() of slices, maps or channels            (category "make")
//   - growing append — onto a fresh/loop-local base (category "append")
//     (amortized appends onto reused fields or x[:0] bases pass)
//   - string concatenation                          (category "concat")
//   - interface boxing at call sites                (category "box")
//     (skipped inside return statements: error exits are cold)
//   - function literals, which escape as closures   (category "closure")
//
// A site that is deliberate — a grow-on-demand scratch buffer, a bounded
// debug path — is suppressed by `//fcae:alloc-ok <reason>` on the same
// line or the line above; the reason is mandatory so the exemption
// carries its justification in the diff.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "no per-iteration allocation in //fcae:cycle-accounting hot loops: flags " +
		"make, growing append, string concat, interface boxing and closures reached " +
		"from hot code; //fcae:alloc-ok <reason> suppresses a deliberate site",
	RunModule: runHotAlloc,
}

const allocOKDirective = "//fcae:alloc-ok"

// Hotness lattice: a function is hot when reachable from a directive
// function (its loops are the concern), loop-hot when reachable from
// inside a hot loop (its entire body executes per iteration).
const (
	haCold = iota
	haHot
	haLoopHot
)

// haSite is one candidate allocation site.
type haSite struct {
	pos      token.Pos
	category string
	what     string
	inLoop   bool
}

// haCall is one static call with loop context.
type haCall struct {
	callee *FuncInfo
	inLoop bool
}

type haBody struct {
	fi    *FuncInfo
	sites []haSite
	calls []haCall
}

func runHotAlloc(pass *ModulePass) {
	m := pass.Module
	okLines := collectAllocOKDirectives(pass)

	bodies := make(map[*FuncInfo]*haBody)
	for _, fi := range m.Funcs() {
		bodies[fi] = collectHotAllocBody(m, fi)
	}

	// Seed: the cycle-accounted functions themselves.
	hotness := make(map[*FuncInfo]int)
	for _, fi := range m.Funcs() {
		if hasCycleDirective(fi.Decl.Doc) {
			hotness[fi] = haHot
		}
	}

	// Propagate through the static call graph to fixpoint: a call from a
	// hot loop (or from anywhere in a loop-hot function) makes the callee
	// loop-hot; a straight-line call from hot code makes the callee hot.
	for changed := true; changed; {
		changed = false
		for _, fi := range m.Funcs() {
			h := hotness[fi]
			if h == haCold {
				continue
			}
			for _, c := range bodies[fi].calls {
				want := haHot
				if h == haLoopHot || c.inLoop {
					want = haLoopHot
				}
				if hotness[c.callee] < want {
					hotness[c.callee] = want
					changed = true
				}
			}
		}
	}

	for _, fi := range m.Funcs() {
		h := hotness[fi]
		if h == haCold {
			continue
		}
		for _, s := range bodies[fi].sites {
			if h == haHot && !s.inLoop {
				continue
			}
			if okLines.suppresses(m.Fset.Position(s.pos)) {
				continue
			}
			where := "hot loop"
			if h == haLoopHot && !s.inLoop {
				where = "loop-hot function"
			}
			pass.ReportCat(s.pos, s.category,
				"%s in %s of cycle-accounted %s allocates per iteration; hoist it to reusable scratch or mark %s <reason>",
				s.what, where, fi.Name(), allocOKDirective)
		}
	}
}

// collectHotAllocBody gathers allocation sites and static calls with their
// loop context. Function literals are themselves closure sites; their
// bodies are not descended (the closure allocation dominates).
func collectHotAllocBody(m *Module, fi *FuncInfo) *haBody {
	info := fi.Pkg.Info
	b := &haBody{fi: fi}
	walkParents(fi.Decl.Body, func(stack []ast.Node, n ast.Node) bool {
		inLoop := false
		inReturn := false
		for _, a := range stack {
			switch a.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				inLoop = true
			case *ast.ReturnStmt:
				inReturn = true
			}
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			b.sites = append(b.sites, haSite{n.Pos(), "closure", "function literal (escaping closure)", inLoop})
			return false
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n.X)) && isStringType(info.TypeOf(n.Y)) {
				b.sites = append(b.sites, haSite{n.Pos(), "concat", "string concatenation", inLoop})
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				b.sites = append(b.sites, haSite{n.Pos(), "concat", "string concatenation", inLoop})
			}
		case *ast.CallExpr:
			switch builtinName(info, n) {
			case "make":
				b.sites = append(b.sites, haSite{n.Pos(), "make", "make", inLoop})
				return true
			case "append":
				if len(n.Args) > 1 && isFreshAppendBase(info, n.Args[0], stack) {
					b.sites = append(b.sites, haSite{n.Pos(), "append", "append onto a fresh base", inLoop})
				}
				return true
			case "":
			default:
				return true // other builtins never box or allocate here
			}
			if callee := m.StaticCallee(info, n); callee != nil {
				b.calls = append(b.calls, haCall{callee, inLoop})
			} else {
				// Interface dispatch / function-value call inside a hot
				// region: every resolved implementation inherits the
				// hotness, so its alloc sites get flagged too.
				for _, dc := range m.DynamicCallees(info, n) {
					b.calls = append(b.calls, haCall{dc, inLoop})
				}
			}
			if !inReturn {
				if boxed := boxedArg(info, n); boxed != "" {
					b.sites = append(b.sites, haSite{n.Pos(), "box", "interface boxing of " + boxed, inLoop})
				}
			}
		}
		return true
	})
	return b
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// isFreshAppendBase reports whether the append base can't be amortizing:
// a nil conversion ([]byte(nil)), an empty composite literal, or a local
// declared inside an enclosing loop. Appends onto struct fields, x[:0]
// slices and outer-scope locals are assumed to reuse capacity.
func isFreshAppendBase(info *types.Info, base ast.Expr, stack []ast.Node) bool {
	switch e := ast.Unparen(base).(type) {
	case *ast.CallExpr:
		// A conversion like []byte(nil): one argument, Fun is a type.
		if len(e.Args) == 1 && builtinName(info, e) == "" {
			if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
				if id, ok := ast.Unparen(e.Args[0]).(*ast.Ident); ok && id.Name == "nil" {
					return true
				}
			}
		}
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			return false
		}
		// Declared inside one of the enclosing loops of this append?
		for _, a := range stack {
			switch a.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				if a.Pos() <= obj.Pos() && obj.Pos() < a.End() {
					return true
				}
			}
		}
	}
	return false
}

// boxedArg returns a description of the first argument boxed into an
// interface parameter, or "". Constants and untyped nil are free;
// f(xs...) forwards an existing slice.
func boxedArg(info *types.Info, call *ast.CallExpr) string {
	if call.Ellipsis.IsValid() {
		return ""
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return "" // builtin or conversion
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if tv, ok := info.Types[arg]; ok && (tv.Value != nil || tv.IsNil()) {
			continue // constant or nil: no runtime boxing
		}
		return at.String() + " argument"
	}
	return ""
}

// allocOKIndex maps file -> line -> directive reason for every
// //fcae:alloc-ok comment in the module.
type allocOKIndex map[string]map[int]string

// suppresses reports whether a directive sits on the finding's line or
// the line directly above it.
func (idx allocOKIndex) suppresses(pos token.Position) bool {
	lines := idx[pos.Filename]
	if lines == nil {
		return false
	}
	_, same := lines[pos.Line]
	_, above := lines[pos.Line-1]
	return same || above
}

func collectAllocOKDirectives(pass *ModulePass) allocOKIndex {
	idx := make(allocOKIndex)
	for _, pkg := range pass.Module.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allocOKDirective) {
						continue
					}
					reason := strings.TrimSpace(strings.TrimPrefix(c.Text, allocOKDirective))
					p := pass.Module.Fset.Position(c.Pos())
					if reason == "" {
						pass.ReportCat(c.Pos(), "directive",
							"malformed %s directive: the reason is mandatory (%s <reason>)",
							allocOKDirective, allocOKDirective)
						continue
					}
					if idx[p.Filename] == nil {
						idx[p.Filename] = make(map[int]string)
					}
					idx[p.Filename][p.Line] = reason
				}
			}
		}
	}
	return idx
}
