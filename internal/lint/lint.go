// Package lint implements fcaelint, the project's static-analysis suite.
// It is a self-contained analyzer framework built on the standard
// library's go/ast, go/parser and go/types packages — no external
// dependencies — mirroring the shape of golang.org/x/tools/go/analysis
// without importing it.
//
// The suite encodes invariants the compiler cannot check and that matter
// specifically to an LSM-tree store driving a device compaction engine:
// lock discipline around the DB's big mutex, the no-listener-callbacks-
// under-lock rule of the observability layer, error wrapping on recovery
// paths, iterator buffer lifetimes, swallowed I/O errors on durability
// paths, and containment of the paper's device-cycle accounting model.
// See DESIGN.md ("Static analysis") for the invariant each analyzer
// protects.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// Diagnostic is one finding, printed as file:line:col: analyzer: message.
// Category, when set, is a stable machine-readable finding class within
// the analyzer (surfaced by fcaelint -json; not part of the text format).
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Category string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding anchored at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check. Exactly one of Run and RunModule is set:
// Run sees one type-checked package at a time; RunModule sees the whole
// module at once through the facts framework (call graph, function
// summaries) and is how the cross-package analyzers work.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// Analyzers returns the full fcaelint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MutexGuard, ObsCallback, ErrWrap, BufAlias, UncheckedClose, CycleFlow,
		LockOrder, DevMem, Taint, GoLeak, ChanFlow, HotAlloc, EnumStr,
	}
}

// Check runs the given analyzers over every package and returns the
// findings sorted by file position. Analyzers run in parallel, each
// accumulating into its own slice; go/types structures are read-only
// after loading, so concurrent passes over shared packages are safe.
// (The dynamic resolver's caches are mutex-guarded for the same reason.)
func Check(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := CheckStats(pkgs, analyzers)
	return diags
}

// CheckStats is Check plus the call-edge counts the module analyzers
// resolved — the fcaelint -json report header, so a baseline records
// whether it was produced with dynamic resolution and how much of the
// call graph it covered.
func CheckStats(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, ResolverStats) {
	var mod *Module
	for _, a := range analyzers {
		if a.RunModule != nil {
			mod = BuildModule(pkgs)
			break
		}
	}
	results := make([][]Diagnostic, len(analyzers))
	var wg sync.WaitGroup
	for i, a := range analyzers {
		wg.Add(1)
		go func(i int, a *Analyzer) {
			defer wg.Done()
			var out []Diagnostic
			if a.RunModule != nil {
				a.RunModule(&ModulePass{Module: mod, analyzer: a, diags: &out})
			} else {
				for _, pkg := range pkgs {
					a.Run(&Pass{
						Fset:     pkg.Fset,
						Files:    pkg.Files,
						Pkg:      pkg.Types,
						Info:     pkg.Info,
						analyzer: a,
						diags:    &out,
					})
				}
			}
			results[i] = out
		}(i, a)
	}
	wg.Wait()
	var diags []Diagnostic
	for _, out := range results {
		diags = append(diags, out...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	var stats ResolverStats
	if mod != nil {
		stats = mod.ResolverStats()
	}
	return diags, stats
}

// errorType is the universe error interface, shared by several analyzers.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is exactly the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// hasMethod reports whether t's method set (or its pointer's) contains a
// method with the given name.
func hasMethod(pkg *types.Package, t types.Type, name string) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, pkg, name)
	_, ok := obj.(*types.Func)
	return ok
}
