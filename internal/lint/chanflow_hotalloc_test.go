package lint_test

import (
	"testing"

	"fcae/internal/lint"
)

// The golden corpora under testdata/{chanflow,hotalloc} cover the broad
// shapes; these unit tests pin the edge decisions each analyzer makes —
// directive semantics, cross-package composition, and the deliberate
// non-findings that keep the suite baseline-free on the real tree.

func TestChanFlowOwnerDirectiveGrantsClose(t *testing.T) {
	t.Parallel()
	src := `package p

type S struct{ ch chan int }

func newS() *S { return &S{ch: make(chan int)} }

// Stop is the designed hand-off.
//
//fcae:chan-owner p.S.ch
func (s *S) Stop() { close(s.ch) }

func (s *S) use() { s.ch <- 1; <-s.ch }
`
	wantClean(t, checkFixture(t, lint.ChanFlow, map[string]string{"p.go": src}))
}

func TestChanFlowCloseByNonOwnerAcrossPackages(t *testing.T) {
	t.Parallel()
	files := map[string]string{
		"q/q.go": `package q

type Q struct{ Ch chan int }

func New() *Q { return &Q{Ch: make(chan int)} }

func (q *Q) Use() { q.Ch <- 1; <-q.Ch }
`,
		"p.go": `package p

import "fixture/q"

func shutdown(v *q.Q) { close(v.Ch) }
`,
	}
	diags := checkFixture(t, lint.ChanFlow, files)
	wantFindings(t, diags, "p.shutdown closes q.Q.Ch but q.New makes it")
}

func TestChanFlowMalformedOwnerDirective(t *testing.T) {
	t.Parallel()
	src := `package p

type S struct{ ch chan int }

func newS() *S { return &S{ch: make(chan int)} }

//fcae:chan-owner
func (s *S) Stop() { close(s.ch) }

func (s *S) use() { s.ch <- 1; <-s.ch }
`
	diags := checkFixture(t, lint.ChanFlow, map[string]string{"p.go": src})
	wantFindings(t, diags,
		"malformed //fcae:chan-owner directive",
		"p.S.Stop closes p.S.ch but p.newS makes it")
}

func TestChanFlowSendWithoutStopSelect(t *testing.T) {
	t.Parallel()
	src := `package p

type W struct {
	out  chan int
	stop chan struct{}
}

func newW() *W { return &W{out: make(chan int), stop: make(chan struct{})} }

func (w *W) run() {
	for i := 0; ; i++ {
		w.out <- i
	}
}

func (w *W) drain() int { return <-w.out }

func (w *W) wait() { <-w.stop }

//fcae:chan-owner p.W.stop
func (w *W) Close() { close(w.stop) }
`
	diags := checkFixture(t, lint.ChanFlow, map[string]string{"p.go": src})
	wantFindings(t, diags, "worker-loop send on p.W.out must be a select case")
}

func TestChanFlowSendOutsideLoopOrWithoutStopFieldIsFine(t *testing.T) {
	t.Parallel()
	// No stop-style sibling field: the worker-send rule does not apply,
	// and a one-shot send outside any loop never does.
	src := `package p

type R struct{ done chan int }

func newR() *R { return &R{done: make(chan int, 1)} }

func (r *R) resolve(v int) { r.done <- v }

func (r *R) wait() int { return <-r.done }
`
	wantClean(t, checkFixture(t, lint.ChanFlow, map[string]string{"p.go": src}))
}

// The encode-pipeline ownership pattern (internal/sstable/pipeline.go):
// a multi-queue worker pool with NO stop-style field — shutdown is
// queue-close itself, granted to Close by directives, and workers drain
// via range. Completion hand-off uses a buffered per-task token channel
// (named ready, not a stop-style name) sent bare inside the worker loop:
// legal precisely because the struct carries no stop field, which is the
// contract this fixture pins.
func TestChanFlowPipelineQueueOwnership(t *testing.T) {
	t.Parallel()
	src := `package p

type task struct{ ready chan struct{} }

type P struct {
	encodeq chan *task
	orderq  chan *task
}

func newP() *P {
	p := &P{encodeq: make(chan *task, 4), orderq: make(chan *task, 4)}
	go p.encoder()
	go p.sequencer()
	return p
}

func (p *P) encoder() {
	for t := range p.encodeq {
		t.ready <- struct{}{}
	}
}

func (p *P) sequencer() {
	for t := range p.orderq {
		<-t.ready
	}
}

func (p *P) submit(t *task) {
	p.encodeq <- t
	p.orderq <- t
}

// Close flushes and joins; queue-close is the designed shutdown.
//
//fcae:chan-owner p.P.encodeq
//fcae:chan-owner p.P.orderq
func (p *P) Close() {
	close(p.encodeq)
	close(p.orderq)
}
`
	wantClean(t, checkFixture(t, lint.ChanFlow, map[string]string{"p.go": src}))
}

// The prefetch-producer pattern (internal/compaction/prefetch.go): a
// stop-carrying struct whose producer loop sends items, recycled buffers
// and an eof sentinel — every loop send a select case beside the stop
// receive (or a default, for the capacity-guaranteed constructor
// seeding). The sentinel replaces closing the data channel, so the only
// close is the granted stop.
func TestChanFlowSentinelProducerSelectSends(t *testing.T) {
	t.Parallel()
	src := `package p

type item struct{ eof bool }

type F struct {
	blocks chan item
	free   chan int
	stop   chan struct{}
}

func newF() *F {
	f := &F{blocks: make(chan item, 2), free: make(chan int, 4), stop: make(chan struct{})}
	for i := 0; i < 4; i++ {
		select {
		case f.free <- i:
		default:
		}
	}
	go f.fill()
	return f
}

func (f *F) fill() {
	for {
		var buf int
		select {
		case buf = <-f.free:
		case <-f.stop:
			return
		}
		_ = buf
		select {
		case f.blocks <- item{}:
		case <-f.stop:
			return
		}
	}
}

func (f *F) next() item { return <-f.blocks }

//fcae:chan-owner p.F.stop
func (f *F) Close() { close(f.stop) }
`
	wantClean(t, checkFixture(t, lint.ChanFlow, map[string]string{"p.go": src}))
}

func TestChanFlowDirectionSuggestionSkipsEscapes(t *testing.T) {
	t.Parallel()
	src := `package p

type S struct {
	sendOnly chan int
	aliased  chan int
}

func produce(s *S) { s.sendOnly <- 1; use(s.aliased) }

func consume(s *S) { <-s.sendOnly }

func use(ch chan int) { ch <- 2; <-ch }
`
	// sendOnly is bidirectional in use (send in produce, receive in
	// consume): no finding. aliased escapes into use(): no finding.
	wantClean(t, checkFixture(t, lint.ChanFlow, map[string]string{"p.go": src}))
}

func TestChanFlowBlockingOpUnderLockViaSummary(t *testing.T) {
	t.Parallel()
	src := `package p

import "sync"

type H struct {
	mu sync.Mutex
	ch chan int
}

func newH() *H { return &H{ch: make(chan int)} }

func (h *H) emit() { h.ch <- 1 }

func (h *H) locked() {
	h.mu.Lock()
	h.emit()
	h.mu.Unlock()
}

func (h *H) unlocked() {
	h.emit()
	<-h.ch
}
`
	diags := checkFixture(t, lint.ChanFlow, map[string]string{"p.go": src})
	wantFindings(t, diags, "call to p.H.emit in p.H.locked while p.H.mu is held")
}

func TestChanFlowNonBlockingOpsUnderLockAreFine(t *testing.T) {
	t.Parallel()
	// close() and a select with default never park the goroutine, so
	// holding the lock across them is safe.
	src := `package p

import "sync"

type H struct {
	mu sync.Mutex
	ch chan int
}

func newH() *H { return &H{ch: make(chan int, 1)} }

func (h *H) tryPut(v int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case h.ch <- v:
		return true
	default:
		return false
	}
}

// finish holds the close grant: the interesting assertion is that the
// close under mu is not reported as a blocking op.
//
//fcae:chan-owner p.H.ch
func (h *H) finish() {
	h.mu.Lock()
	close(h.ch)
	h.mu.Unlock()
}

func (h *H) drain() { <-h.ch }
`
	wantClean(t, checkFixture(t, lint.ChanFlow, map[string]string{"p.go": src}))
}

func TestHotAllocPropagatesThroughCallGraph(t *testing.T) {
	t.Parallel()
	src := `package p

//fcae:cycle-accounting
func kernel(rows [][]byte) int {
	n := 0
	for _, r := range rows {
		n += helper(r)
	}
	return n
}

func helper(r []byte) int {
	buf := make([]byte, len(r))
	return copy(buf, r)
}
`
	diags := checkFixture(t, lint.HotAlloc, map[string]string{"p.go": src})
	wantFindings(t, diags, "make in loop-hot function of cycle-accounted p.helper")
}

func TestHotAllocStraightLineCalleeOnlyFlagsItsLoops(t *testing.T) {
	t.Parallel()
	// helper is called outside any loop, so it is hot (its loops matter)
	// but not loop-hot: the one-time make outside its loop is fine, the
	// per-iteration make inside is not.
	src := `package p

//fcae:cycle-accounting
func kernel(rows [][]byte) int { return helper(rows) }

func helper(rows [][]byte) int {
	scratch := make([]byte, 64)
	n := 0
	for _, r := range rows {
		tmp := make([]byte, len(r))
		n += copy(tmp, r) + len(scratch)
	}
	return n
}
`
	diags := checkFixture(t, lint.HotAlloc, map[string]string{"p.go": src})
	wantFindings(t, diags, "make in hot loop of cycle-accounted p.helper")
}

func TestHotAllocAmortizedAppendAndReturnBoxingAreFine(t *testing.T) {
	t.Parallel()
	src := `package p

import "fmt"

type k struct{ buf []byte }

//fcae:cycle-accounting
func (s *k) run(rows [][]byte) error {
	for i, r := range rows {
		if len(r) == 0 {
			return fmt.Errorf("row %d empty", i)
		}
		s.buf = append(s.buf[:0], r...)
	}
	return nil
}
`
	wantClean(t, checkFixture(t, lint.HotAlloc, map[string]string{"p.go": src}))
}

func TestHotAllocAllocOKSuppressionAndMalformedDirective(t *testing.T) {
	t.Parallel()
	src := `package p

//fcae:cycle-accounting
func run(rows [][]byte) [][]byte {
	var out [][]byte
	for _, r := range rows {
		//fcae:alloc-ok retained output: each copy is handed to the caller
		cp := append([]byte(nil), r...)
		//fcae:alloc-ok
		tmp := make([]byte, 1)
		_ = tmp
		out = append(out, cp)
	}
	return out
}
`
	diags := checkFixture(t, lint.HotAlloc, map[string]string{"p.go": src})
	wantFindings(t, diags,
		"malformed //fcae:alloc-ok directive",
		"make in hot loop of cycle-accounted p.run")
}

func TestHotAllocColdCodeIsIgnored(t *testing.T) {
	t.Parallel()
	src := `package p

func cold(rows [][]byte) [][]byte {
	var out [][]byte
	for _, r := range rows {
		out = append(out, append([]byte(nil), r...))
	}
	return out
}
`
	wantClean(t, checkFixture(t, lint.HotAlloc, map[string]string{"p.go": src}))
}
