package lint

import (
	"go/ast"
	"go/types"
)

// GoLeak enforces the worker-join discipline on lifecycle types: any
// goroutine spawned on behalf of a type that has a Close or Stop method
// must be joinable by it. Concretely, for `go x.method(...)` (or a `go
// func(){...}()` inside a method) where x's type T declares Close/Stop:
//
//  1. T must have a sync.WaitGroup field;
//  2. the spawning function must call Add on that field lexically before
//     the go statement (Add-before-go, so Close cannot miss a racing
//     spawn);
//  3. the goroutine body must call Done on the field (normally the first
//     deferred statement);
//  4. Wait on the field must be reachable from T's Close or Stop through
//     static calls.
//
// This is the shutdown contract the lsm store and the dispatch scheduler
// rely on: Close returning means every background worker has exited, so
// nothing touches the closed state afterwards. Goroutines spawned by free
// functions (worker pools joined locally) are out of scope — the leak
// hazard is a long-lived object whose teardown forgets its workers.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc: "goroutines of a type with Close/Stop must be joined: wg.Add before go, " +
		"Done in the body, Wait reachable from Close/Stop",
	RunModule: runGoLeak,
}

func runGoLeak(pass *ModulePass) {
	m := pass.Module

	// Index the module's lifecycle types: named type -> Close/Stop funcs.
	closers := make(map[*types.Named][]*FuncInfo)
	for _, fi := range m.Funcs() {
		name := fi.Obj.Name()
		if name != "Close" && name != "Stop" {
			continue
		}
		if recv := fi.Obj.Type().(*types.Signature).Recv(); recv != nil {
			if n := namedOf(recv.Type()); n != nil {
				closers[n] = append(closers[n], fi)
			}
		}
	}

	waitOK := make(map[*types.Named]bool) // one Wait report per type
	for _, fi := range m.Funcs() {
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				checkGoStmt(pass, fi, gs, closers, waitOK)
			}
			return true
		})
	}
}

// checkGoStmt applies the join discipline to one go statement.
func checkGoStmt(pass *ModulePass, fi *FuncInfo, gs *ast.GoStmt, closers map[*types.Named][]*FuncInfo, waitOK map[*types.Named]bool) {
	m := pass.Module
	info := fi.Pkg.Info

	// Resolve the owning lifecycle type and the goroutine body.
	var (
		owner *types.Named
		body  *ast.BlockStmt
		bpkg  *Package
	)
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.SelectorExpr:
		// go x.method(...): the owner is x's named type.
		owner = namedOf(info.TypeOf(fun.X))
		if callee := m.StaticCallee(info, gs.Call); callee != nil {
			body, bpkg = callee.Decl.Body, callee.Pkg
		} else if dcs := m.DynamicCallees(info, gs.Call); len(dcs) > 0 {
			// Goroutine launched through an interface (or func value): the
			// body may be any resolved implementation, so the discipline
			// applies to each whose receiver is itself a lifecycle type.
			for _, dc := range dcs {
				checkDynamicSpawn(pass, gs, dc, closers, waitOK)
			}
			return
		}
	case *ast.FuncLit:
		// go func(){...}() inside a method: the receiver's type owns it.
		if recv := fi.Obj.Type().(*types.Signature).Recv(); recv != nil {
			owner = namedOf(recv.Type())
		}
		body, bpkg = fun.Body, fi.Pkg
	}
	if owner == nil || len(closers[owner]) == 0 {
		return // not a lifecycle type's worker; out of scope
	}

	if !hasWaitGroupField(owner) {
		pass.Reportf(gs.Pos(),
			"%s spawns a goroutine but has no sync.WaitGroup field; Close cannot join it (add a wg field: Add before go, defer Done in the body, Wait in Close)",
			owner.Obj().Name())
		return
	}

	// (2) Add on the owner's WaitGroup lexically before the go statement.
	addBefore := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if addBefore {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && call.Pos() < gs.Pos() &&
			isWGFieldCall(fi.Pkg, owner, call, "Add") {
			addBefore = true
		}
		return true
	})
	if !addBefore {
		pass.Reportf(gs.Pos(),
			"goroutine of %s is not registered before it starts; call the WaitGroup's Add before the go statement",
			owner.Obj().Name())
	}

	// (3) Done inside the goroutine body (skipped when the body is outside
	// the module — a summary can only understate).
	if body != nil {
		done := false
		ast.Inspect(body, func(n ast.Node) bool {
			if done {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && isWGFieldCall(bpkg, owner, call, "Done") {
				done = true
			}
			return true
		})
		if !done {
			pass.Reportf(gs.Pos(),
				"goroutine of %s never calls Done on its WaitGroup; Close would wait forever (defer it first in the body)",
				owner.Obj().Name())
		}
	}

	// (4) Wait reachable from Close/Stop, reported once per type.
	if _, seen := waitOK[owner]; !seen {
		ok := false
		for _, closer := range closers[owner] {
			if waitReachable(m, owner, closer, make(map[*FuncInfo]bool)) {
				ok = true
				break
			}
		}
		waitOK[owner] = ok
		if !ok {
			pass.Reportf(gs.Pos(),
				"%s spawns goroutines but neither Close nor Stop reaches a Wait on its WaitGroup; workers leak past shutdown",
				owner.Obj().Name())
		}
	}
}

// checkDynamicSpawn applies the join discipline to one concrete method a
// `go iface.M()` statement may resolve to. The Add-before-go check is
// skipped: the spawner holds only the interface and cannot name the
// concrete type's WaitGroup field, so registration is the implementation's
// contract (Done in the body, Wait from its own Close/Stop).
func checkDynamicSpawn(pass *ModulePass, gs *ast.GoStmt, dc *FuncInfo, closers map[*types.Named][]*FuncInfo, waitOK map[*types.Named]bool) {
	m := pass.Module
	recv := dc.Obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return
	}
	owner := namedOf(recv.Type())
	if owner == nil || len(closers[owner]) == 0 {
		return // implementation is not a lifecycle type; out of scope
	}

	if !hasWaitGroupField(owner) {
		pass.Reportf(gs.Pos(),
			"goroutine resolves to %s but %s has no sync.WaitGroup field; Close cannot join it (add a wg field: Done in the body, Wait in Close)",
			dc.Name(), owner.Obj().Name())
		return
	}

	done := false
	ast.Inspect(dc.Decl.Body, func(n ast.Node) bool {
		if done {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isWGFieldCall(dc.Pkg, owner, call, "Done") {
			done = true
		}
		return true
	})
	if !done {
		pass.Reportf(gs.Pos(),
			"goroutine resolves to %s which never calls Done on %s's WaitGroup; Close would wait forever (defer it first in the body)",
			dc.Name(), owner.Obj().Name())
	}

	if _, seen := waitOK[owner]; !seen {
		ok := false
		for _, closer := range closers[owner] {
			if waitReachable(m, owner, closer, make(map[*FuncInfo]bool)) {
				ok = true
				break
			}
		}
		waitOK[owner] = ok
		if !ok {
			pass.Reportf(gs.Pos(),
				"%s spawns goroutines but neither Close nor Stop reaches a Wait on its WaitGroup; workers leak past shutdown",
				owner.Obj().Name())
		}
	}
}

// hasWaitGroupField reports whether the named struct type declares a
// sync.WaitGroup field (embedded or named).
func hasWaitGroupField(n *types.Named) bool {
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isWaitGroup(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func isWaitGroup(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Name() == "WaitGroup" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync"
}

// isWGFieldCall reports whether call is `x.f.<method>(...)` where f is a
// sync.WaitGroup field and x's type is owner.
func isWGFieldCall(pkg *Package, owner *types.Named, call *ast.CallExpr, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || !isWaitGroup(pkg.Info.TypeOf(field)) {
		return false
	}
	return namedOf(pkg.Info.TypeOf(field.X)) == owner
}

// waitReachable walks static calls from start looking for a Wait on one of
// owner's WaitGroup fields.
func waitReachable(m *Module, owner *types.Named, start *FuncInfo, visited map[*FuncInfo]bool) bool {
	if visited[start] {
		return false
	}
	visited[start] = true
	found := false
	ast.Inspect(start.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isWGFieldCall(start.Pkg, owner, call, "Wait") {
			found = true
			return false
		}
		if callee := m.StaticCallee(start.Pkg.Info, call); callee != nil {
			if waitReachable(m, owner, callee, visited) {
				found = true
				return false
			}
			return true
		}
		for _, dc := range m.DynamicCallees(start.Pkg.Info, call) {
			if waitReachable(m, owner, dc, visited) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
