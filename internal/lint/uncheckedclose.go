package lint

import (
	"go/ast"
	"go/types"
)

// UncheckedClose flags statements that discard the error of a Close,
// Flush or Sync method call. On the WAL, SSTable-writer and manifest
// paths those errors are the durability signal — a swallowed Close error
// after buffered writes is silent data loss. The check covers plain
// expression statements, and `defer f.Close()` inside a function that
// itself returns an error: such a function has somewhere to put the
// error, so the discard must be acknowledged with the
// `defer func() { _ = f.Close() }()` pattern (or the error joined into
// the named result). In functions with no error result a bare deferred
// Close stays idiomatic, and a deliberate discard is spelled
// `_ = f.Close()` so the acknowledgment is visible in review.
var UncheckedClose = &Analyzer{
	Name: "uncheckedclose",
	Doc: "Close/Flush/Sync errors must be handled or explicitly discarded with _ =, " +
		"including defer f.Close() in error-returning functions",
	Run: runUncheckedClose,
}

var closeKin = map[string]bool{"Close": true, "Flush": true, "Sync": true}

func runUncheckedClose(pass *Pass) {
	for _, f := range pass.Files {
		// Function bodies are walked explicitly so deferred Closes can be
		// judged against the enclosing function's result list. A nested
		// function literal re-scopes the rule: its own signature decides.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCloseBody(pass, fd.Body, funcReturnsError(pass, fd.Type))
		}
	}
}

func checkCloseBody(pass *Pass, body *ast.BlockStmt, returnsError bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkCloseBody(pass, n.Body, funcReturnsError(pass, n.Type))
			return false
		case *ast.DeferStmt:
			if !returnsError {
				return true
			}
			if sel := closeKinCall(pass, n.Call); sel != nil {
				recv := types.ExprString(sel.X)
				pass.Reportf(n.Pos(),
					"defer %s.%s() discards the error in an error-returning function (capture it in the result or write `defer func() { _ = %s.%s() }()`)",
					recv, sel.Sel.Name, recv, sel.Sel.Name)
			}
			return true
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel := closeKinCall(pass, call); sel != nil {
				recv := types.ExprString(sel.X)
				pass.Reportf(n.Pos(), "%s.%s() error is silently dropped (handle it or write `_ = %s.%s()`)",
					recv, sel.Sel.Name, recv, sel.Sel.Name)
			}
			return true
		}
		return true
	})
}

// closeKinCall returns the selector of a no-arg Close/Flush/Sync method
// call whose sole result is an error, or nil.
func closeKinCall(pass *Pass, call *ast.CallExpr) *ast.SelectorExpr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !closeKin[sel.Sel.Name] || len(call.Args) != 0 {
		return nil
	}
	if pass.Info.Selections[sel] == nil {
		return nil // package function or conversion, not a method
	}
	if !isErrorType(pass.Info.TypeOf(call)) {
		return nil
	}
	return sel
}

// funcReturnsError reports whether the function type has an error among
// its results.
func funcReturnsError(pass *Pass, ft *ast.FuncType) bool {
	if ft.Results == nil {
		return false
	}
	for _, r := range ft.Results.List {
		if isErrorType(pass.Info.TypeOf(r.Type)) {
			return true
		}
	}
	return false
}
