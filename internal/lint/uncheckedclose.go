package lint

import (
	"go/ast"
	"go/types"
)

// UncheckedClose flags statements that discard the error of a Close,
// Flush or Sync method call. On the WAL, SSTable-writer and manifest
// paths those errors are the durability signal — a swallowed Close error
// after buffered writes is silent data loss. The check covers plain
// expression statements; `defer f.Close()` on read-only paths stays
// idiomatic and is not reported, and a deliberate discard must be spelled
// `_ = f.Close()` so the acknowledgment is visible in review.
var UncheckedClose = &Analyzer{
	Name: "uncheckedclose",
	Doc:  "Close/Flush/Sync errors must be handled or explicitly discarded with _ =",
	Run:  runUncheckedClose,
}

var closeKin = map[string]bool{"Close": true, "Flush": true, "Sync": true}

func runUncheckedClose(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !closeKin[sel.Sel.Name] || len(call.Args) != 0 {
				return true
			}
			// Only method calls whose sole result is an error.
			if pass.Info.Selections[sel] == nil {
				return true // package function or conversion, not a method
			}
			if !isErrorType(pass.Info.TypeOf(call)) {
				return true
			}
			recv := types.ExprString(sel.X)
			pass.Reportf(stmt.Pos(), "%s.%s() error is silently dropped (handle it or write `_ = %s.%s()`)",
				recv, sel.Sel.Name, recv, sel.Sel.Name)
			return true
		})
	}
}
