package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package of the module under
// analysis. Test files (_test.go) are excluded: the suite checks the
// production tree.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// LoadModule parses and type-checks every non-test package under the
// module rooted at root (the directory containing go.mod). Module-internal
// imports are resolved from source; standard-library imports go through
// the toolchain's export data, falling back to GOROOT source.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		root:    root,
		module:  modPath,
		parsed:  make(map[string]*parsedPkg),
		checked: make(map[string]*Package),
		std:     stdImporter(fset),
	}
	dirs, err := ld.discover()
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pp, err := ld.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if pp == nil {
			continue // no non-test Go files
		}
		ld.parsed[pp.importPath] = pp
	}
	paths := make([]string, 0, len(ld.parsed))
	for p := range ld.parsed {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		pkg, err := ld.check(p, nil)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

type parsedPkg struct {
	importPath string
	dir        string
	files      []*ast.File
	imports    []string
}

type loader struct {
	fset    *token.FileSet
	root    string
	module  string
	parsed  map[string]*parsedPkg
	checked map[string]*Package
	std     types.Importer
}

// discover returns every directory under root holding Go files, skipping
// hidden directories, vendor and testdata trees.
func (ld *loader) discover() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(ld.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != ld.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "vendor" || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// parseDir parses the non-test Go files of dir, returning nil when the
// directory holds none.
func (ld *loader) parseDir(dir string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil {
		return nil, err
	}
	importPath := ld.module
	if rel != "." {
		importPath = ld.module + "/" + filepath.ToSlash(rel)
	}
	pp := &parsedPkg{importPath: importPath, dir: dir}
	seen := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pp.files = append(pp.files, f)
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if !seen[p] {
				seen[p] = true
				pp.imports = append(pp.imports, p)
			}
		}
	}
	if len(pp.files) == 0 {
		return nil, nil
	}
	return pp, nil
}

// check type-checks importPath, memoized, detecting import cycles via the
// stack of in-progress paths.
func (ld *loader) check(importPath string, stack []string) (*Package, error) {
	if pkg, ok := ld.checked[importPath]; ok {
		return pkg, nil
	}
	for _, s := range stack {
		if s == importPath {
			return nil, fmt.Errorf("lint: import cycle through %s", importPath)
		}
	}
	pp, ok := ld.parsed[importPath]
	if !ok {
		return nil, fmt.Errorf("lint: unknown module package %s", importPath)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: &passImporter{ld: ld, stack: append(stack, importPath)},
	}
	tpkg, err := conf.Check(importPath, ld.fset, pp.files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        pp.dir,
		Fset:       ld.fset,
		Files:      pp.files,
		Types:      tpkg,
		Info:       info,
	}
	ld.checked[importPath] = pkg
	return pkg, nil
}

// passImporter resolves module-internal imports through the loader and
// everything else through the standard-library importer.
type passImporter struct {
	ld    *loader
	stack []string
}

func (pi *passImporter) Import(path string) (*types.Package, error) {
	if path == pi.ld.module || strings.HasPrefix(path, pi.ld.module+"/") {
		pkg, err := pi.ld.check(path, pi.stack)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return pi.ld.std.Import(path)
}

// stdImporter prefers the compiler export-data importer (fast) and falls
// back to compiling from GOROOT source when export data is unavailable.
func stdImporter(fset *token.FileSet) types.Importer {
	return &fallbackImporter{
		primary:  importer.ForCompiler(fset, "gc", nil),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
}

type fallbackImporter struct {
	primary  types.Importer
	fallback types.Importer
}

func (fi *fallbackImporter) Import(path string) (*types.Package, error) {
	pkg, err := fi.primary.Import(path)
	if err == nil {
		return pkg, nil
	}
	return fi.fallback.Import(path)
}
