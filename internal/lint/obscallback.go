package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ObsCallback enforces the observability delivery contract: no method of an
// EventListener interface value may be invoked while a mu mutex is held.
// Listener callbacks run arbitrary user code; calling one under the store
// mutex invites deadlock (a listener reading DB state) and unbounded lock
// hold times. The sanctioned pattern is to SEQUENCE under the lock — append
// a delivery closure to a queue — and DELIVER after Unlock.
//
// Lock state is tracked lexically per function body: a visible
// <expr>.mu.Lock() sets it, <expr>.mu.Unlock() clears it, and a method
// named *Locked starts with the mutex held (the mutexguard convention). A
// deferred Unlock does not clear the state — it runs at return, after any
// call in the body. Function literals are analyzed as fresh not-held
// bodies: a closure queued under the lock runs later, outside it, so
// listener calls inside it are legal.
var ObsCallback = &Analyzer{
	Name: "obscallback",
	Doc: "EventListener methods must not be invoked while mu is held; " +
		"queue a closure under the lock and deliver it after Unlock",
	Run: runObsCallback,
}

var unlockMethods = map[string]bool{
	"Unlock": true, "RUnlock": true,
}

func runObsCallback(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkObsBody(pass, fn.Body, strings.HasSuffix(fn.Name.Name, "Locked"), fn.Name.Name)
				}
			case *ast.FuncLit:
				checkObsBody(pass, fn.Body, false, "function literal")
			}
			return true
		})
	}
}

const (
	evLock = iota
	evUnlock
	evListenerCall
)

type obsEvent struct {
	pos  token.Pos
	kind int
	name string // listener method name for evListenerCall
}

// checkObsBody gathers this body's own lock transitions and listener calls
// (nested function literals are separate bodies) and sweeps them in source
// order.
func checkObsBody(pass *Pass, body *ast.BlockStmt, entryHeld bool, fnName string) {
	var events []obsEvent
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own body
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch {
			case lockMethods[sel.Sel.Name] && isMuSelector(pass, sel.X):
				if !deferred[n] {
					events = append(events, obsEvent{pos: n.Pos(), kind: evLock})
				}
			case unlockMethods[sel.Sel.Name] && isMuSelector(pass, sel.X):
				// A deferred Unlock runs at return: it never exposes the
				// rest of the body, so it does not clear the lexical state.
				if !deferred[n] {
					events = append(events, obsEvent{pos: n.Pos(), kind: evUnlock})
				}
			case isEventListener(pass.Info.TypeOf(sel.X)):
				events = append(events, obsEvent{pos: n.Pos(), kind: evListenerCall, name: sel.Sel.Name})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := entryHeld
	for _, e := range events {
		switch e.kind {
		case evLock:
			held = true
		case evUnlock:
			held = false
		case evListenerCall:
			if held {
				pass.Reportf(e.pos,
					"%s invokes EventListener method %s while mu is held (queue a delivery closure under the lock and invoke it after Unlock)",
					fnName, e.name)
			}
		}
	}
}

// isMuSelector reports whether e denotes a field or variable named "mu" of
// type sync.Mutex or sync.RWMutex.
func isMuSelector(pass *Pass, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name == "mu" && isSyncMutex(pass.Info.TypeOf(x))
	case *ast.Ident:
		return x.Name == "mu" && isSyncMutex(pass.Info.TypeOf(x))
	}
	return false
}

// isEventListener reports whether t is a named interface type called
// EventListener (the obs contract type, matched by name so the check works
// on any package declaring the convention).
func isEventListener(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Name() != "EventListener" {
		return false
	}
	_, isIface := n.Underlying().(*types.Interface)
	return isIface
}
