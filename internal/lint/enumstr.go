package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// EnumStr enforces the repo's enum convention on the Lane/RouteReason/
// Priority pattern: a package-level defined integer type with a String()
// method and declared constants. Such enums feed events, traces and the
// JSON metrics surface, where a constant that String() does not know
// prints as a bare number and silently breaks dashboards when someone
// appends a value to the iota block.
//
// For every enum type (defined integer type + String() string method +
// at least one package-level constant of that exact type):
//
//  1. each declared constant must be mentioned in the String() body —
//     a new constant someone forgot to add a case for is reported at its
//     declaration;
//  2. MarshalJSON and UnmarshalJSON must come as a pair — one without
//     the other means values encode but do not decode (or vice versa),
//     breaking the JSON round-trip. A deliberately one-sided surface (a
//     metrics-only enum that is emitted but never parsed) declares
//     itself with `//fcae:enum-no-roundtrip <reason>` on the present
//     method's doc comment; the reason is mandatory;
//  3. when the pair exists, each declared constant must also be
//     mentioned in the UnmarshalJSON body, so every value String()
//     produces parses back (MarshalJSON conventionally delegates to
//     String and is not checked for per-constant coverage). A decoder
//     that itself calls the enum's String method — the `for c := A; c <=
//     Z; c++ { if c.String() == s }` table-free idiom — delegates its
//     coverage to String and satisfies the rule wholesale.
var EnumStr = &Analyzer{
	Name: "enumstr",
	Doc: "enum constants (integer type with a String method) need a String case " +
		"and, when the type has JSON methods, an UnmarshalJSON case",
	RunModule: runEnumStr,
}

func runEnumStr(pass *ModulePass) {
	m := pass.Module
	for _, pkg := range m.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			basic, ok := named.Underlying().(*types.Basic)
			if !ok || basic.Info()&types.IsInteger == 0 {
				continue
			}
			stringFn := enumMethodBody(m, named, "String")
			if stringFn == nil {
				continue
			}
			consts := enumConsts(scope, named)
			if len(consts) == 0 {
				continue
			}

			stringRefs := objsUsedIn(stringFn)
			for _, c := range consts {
				if !stringRefs[c] {
					pass.ReportCat(c.Pos(), "string-case",
						"enum constant %s.%s has no case in %s.String; it prints as a bare number",
						named.Obj().Name(), c.Name(), named.Obj().Name())
				}
			}

			marshal := enumMethodBody(m, named, "MarshalJSON")
			unmarshal := enumMethodBody(m, named, "UnmarshalJSON")
			switch {
			case marshal != nil && unmarshal == nil:
				if enumNoRoundtrip(pass, marshal) {
					continue
				}
				pass.ReportCat(marshal.Decl.Pos(), "json-roundtrip",
					"%s has MarshalJSON but no UnmarshalJSON; encoded values cannot be decoded back",
					named.Obj().Name())
			case unmarshal != nil && marshal == nil:
				if enumNoRoundtrip(pass, unmarshal) {
					continue
				}
				pass.ReportCat(unmarshal.Decl.Pos(), "json-roundtrip",
					"%s has UnmarshalJSON but no MarshalJSON; the wire format is asymmetric",
					named.Obj().Name())
			case marshal != nil && unmarshal != nil:
				unmarshalRefs := objsUsedIn(unmarshal)
				if unmarshalRefs[stringFn.Obj] {
					continue // decoder compares against String(): coverage delegated
				}
				for _, c := range consts {
					if !unmarshalRefs[c] {
						pass.ReportCat(c.Pos(), "json-roundtrip",
							"enum constant %s.%s has no case in %s.UnmarshalJSON; its encoded form does not parse back",
							named.Obj().Name(), c.Name(), named.Obj().Name())
					}
				}
			}
		}
	}
}

const enumNoRoundtripDirective = "//fcae:enum-no-roundtrip"

// enumNoRoundtrip reports whether the one-sided JSON method declares the
// asymmetry deliberate. A reason-less directive is reported in place and
// still suppresses the pair finding — the intent was declared, the
// missing reason is the one thing left to fix.
func enumNoRoundtrip(pass *ModulePass, fi *FuncInfo) bool {
	if fi.Decl.Doc == nil {
		return false
	}
	for _, c := range fi.Decl.Doc.List {
		if strings.HasPrefix(c.Text, enumNoRoundtripDirective+" ") &&
			strings.TrimSpace(strings.TrimPrefix(c.Text, enumNoRoundtripDirective)) != "" {
			return true
		}
		if strings.TrimSpace(c.Text) == enumNoRoundtripDirective {
			pass.ReportCat(c.Pos(), "directive",
				"malformed %s directive: a reason is mandatory", enumNoRoundtripDirective)
			return true
		}
	}
	return false
}

// enumMethodBody returns the module FuncInfo of named's method, or nil
// when the method is absent or declared without a body in this module.
func enumMethodBody(m *Module, named *types.Named, method string) *FuncInfo {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), method)
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return m.FuncInfo(fn)
}

// enumConsts returns the package-level constants declared with exactly
// type named, in declaration order (scope names are sorted; re-sort by
// position for stable, source-ordered reporting).
func enumConsts(scope *types.Scope, named *types.Named) []*types.Const {
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && types.Identical(c.Type(), named) {
			out = append(out, c)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Pos() < out[j-1].Pos(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// objsUsedIn collects every object referenced by an identifier inside the
// function's body.
func objsUsedIn(fi *FuncInfo) map[types.Object]bool {
	used := make(map[types.Object]bool)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := fi.Pkg.Info.Uses[id]; obj != nil {
				used[obj] = true
			}
		}
		return true
	})
	return used
}
