package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrWrap flags fmt.Errorf calls that interpolate an error operand
// without %w. Recovery code (WAL replay, manifest load, table repair)
// matches causes with errors.Is/errors.As; an error formatted through %v
// or %s breaks that chain silently, so wrapping is mandatory whenever an
// error value reaches a format string.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf with an error operand must use %w so errors.Is/As keep working",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgFunc(pass, call, "fmt", "Errorf") || len(call.Args) < 2 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				return true // dynamic format string: out of scope
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil || strings.Contains(format, "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				t := pass.Info.TypeOf(arg)
				if t == nil {
					continue
				}
				if isErrorType(t) || (!types.IsInterface(t) && types.Implements(t, errorType)) ||
					types.Implements(types.NewPointer(t), errorType) && isConcreteNamed(t) {
					pass.Reportf(arg.Pos(), "error %s formatted into fmt.Errorf without %%w (errors.Is/As will not see it)",
						types.ExprString(arg))
					return true
				}
			}
			return true
		})
	}
}

// isConcreteNamed reports whether t is a named non-interface type (so a
// pointer-receiver Error method counts when the value is addressable).
func isConcreteNamed(t types.Type) bool {
	_, ok := t.(*types.Named)
	return ok && !types.IsInterface(t)
}

// isPkgFunc reports whether call invokes pkgPath.name.
func isPkgFunc(pass *Pass, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}
