package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MutexGuard enforces the repo's lock-discipline convention on structs
// with a `mu sync.Mutex` (or RWMutex) field: fields declared after mu are
// guarded by it, and any method that touches a guarded field must either
// acquire the mutex itself (a visible recv.mu.Lock / RLock in its body)
// or carry the "Locked" name suffix declaring that the caller holds mu.
// Fields declared before mu are the immutable-after-construction group
// and may be read freely — keep set-once configuration there.
var MutexGuard = &Analyzer{
	Name: "mutexguard",
	Doc: "methods touching mutex-guarded fields must lock mu or be named *Locked; " +
		"fields after the mu field are guarded, fields before it are immutable",
	Run: runMutexGuard,
}

var lockMethods = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
}

func runMutexGuard(pass *Pass) {
	// Pass 1: find guarded structs and their field sets.
	guarded := make(map[string]map[string]bool) // struct type name -> guarded fields
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fields := make(map[string]bool)
			sawMu := false
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					if sawMu {
						fields[name.Name] = true
						continue
					}
					if name.Name == "mu" && isSyncMutex(pass.Info.TypeOf(fld.Type)) {
						sawMu = true
					}
				}
			}
			if sawMu && len(fields) > 0 {
				guarded[ts.Name.Name] = fields
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return
	}

	// Pass 2: check each method of a guarded struct.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			typeName, recvObj := receiverOf(pass, fd)
			fields := guarded[typeName]
			if fields == nil || recvObj == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			if acquiresMu(pass, fd.Body, recvObj) {
				continue
			}
			reported := make(map[string]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				x, ok := sel.X.(*ast.Ident)
				if !ok || pass.Info.Uses[x] != recvObj {
					return true
				}
				name := sel.Sel.Name
				if fields[name] && !reported[name] {
					reported[name] = true
					pass.Reportf(sel.Pos(),
						"%s.%s accesses mu-guarded field %q without holding %s.mu (lock it or rename the method *Locked)",
						typeName, fd.Name.Name, name, x.Name)
				}
				return true
			})
		}
	}
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// receiverOf returns the receiver's base type name and its object.
func receiverOf(pass *Pass, fd *ast.FuncDecl) (string, types.Object) {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return "", nil
	}
	name := fd.Recv.List[0].Names[0]
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip generic instantiations if ever present.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", nil
	}
	return id.Name, pass.Info.Defs[name]
}

// acquiresMu reports whether body contains a recv.mu.Lock-style call.
func acquiresMu(pass *Pass, body *ast.BlockStmt, recvObj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !lockMethods[sel.Sel.Name] {
			return true
		}
		mu, ok := sel.X.(*ast.SelectorExpr)
		if !ok || mu.Sel.Name != "mu" {
			return true
		}
		x, ok := mu.X.(*ast.Ident)
		if ok && pass.Info.Uses[x] == recvObj {
			found = true
			return false
		}
		return true
	})
	return found
}
