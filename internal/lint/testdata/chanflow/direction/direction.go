// Fixture: bidirectional fields the module uses one-sidedly. results is
// only ever sent to (close counts as the send side), requests only ever
// received from — both should declare a direction. handed escapes into a
// helper and must not be flagged: the analyzer cannot see the callee's
// side of the aliased channel.
package direction

type Courier struct {
	results  chan int
	requests chan int
	handed   chan int
}

func run(c *Courier) {
	c.results <- 1
	close(c.results)
	v := <-c.requests
	_ = v
	hand(c.handed)
}

func hand(ch chan int) {
	ch <- 9
}
