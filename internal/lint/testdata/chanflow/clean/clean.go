// Fixture: the discipline chanflow wants, end to end. New owns both
// channels; Close holds the declared //fcae:chan-owner grant for stop;
// the worker's send selects on the stop channel; the results field is
// declared send-only because the type only ever produces into it.
package clean

import "sync"

type Pool struct {
	mu      sync.Mutex
	jobs    chan int
	stop    chan struct{}
	results chan<- int
	n       int
}

func New(results chan<- int) *Pool {
	return &Pool{
		jobs:    make(chan int, 8),
		stop:    make(chan struct{}),
		results: results,
	}
}

func (p *Pool) enqueue(j int) bool {
	for i := 0; i < 3; i++ {
		select {
		case p.jobs <- j:
			return true
		case <-p.stop:
			return false
		}
	}
	return false
}

func (p *Pool) tryEnqueue(j int) bool {
	for {
		select {
		case p.jobs <- j:
			return true
		default:
			return false
		}
	}
}

func (p *Pool) worker() {
	for j := range p.jobs {
		select {
		case p.results <- j * 2:
		case <-p.stop:
			return
		}
	}
}

// count touches state under the mutex without any channel traffic; the
// channel ops above happen lock-free.
func (p *Pool) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// Close shuts the pool down.
//
//fcae:chan-owner clean.Pool.stop
func (p *Pool) Close() {
	close(p.stop)
}
