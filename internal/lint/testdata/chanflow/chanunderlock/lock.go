// Fixture: blocking channel operations while a mutex is held — directly,
// and through a call chain the per-function summaries must follow.
// publishLater unlocks before sending, which is the fix and must stay
// silent.
package chanunderlock

import "sync"

type Hub struct {
	mu   sync.Mutex
	subs chan int
	seq  int
}

func newHub() *Hub {
	return &Hub{subs: make(chan int, 1)}
}

// publish sends while holding mu: every other path into the lock now
// waits on a channel consumer.
func (h *Hub) publish(v int) {
	h.mu.Lock()
	h.seq++
	h.subs <- v
	h.mu.Unlock()
}

// waitOne blocks on a receive under the same lock.
func (h *Hub) waitOne() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return <-h.subs
}

// forward only looks guilty through the summary: emit blocks on a send,
// and forward calls it with mu held.
func (h *Hub) forward(v int) {
	h.mu.Lock()
	h.emit(v)
	h.mu.Unlock()
}

func (h *Hub) emit(v int) {
	h.subs <- v
}

// publishLater is the compliant shape: drop the lock, then block.
func (h *Hub) publishLater(v int) {
	h.mu.Lock()
	h.seq++
	h.mu.Unlock()
	h.subs <- v
}
