// Fixture: worker-loop sends that ignore the type's stop channel. The
// bare send blocks forever once the consumer is gone; the select without
// a stop case or default is no better. tick's select is compliant and
// must stay silent.
package sendnostop

type Feeder struct {
	out  chan int
	ack  chan int
	stop chan struct{}
}

func newFeeder() *Feeder {
	return &Feeder{
		out:  make(chan int),
		ack:  make(chan int),
		stop: make(chan struct{}),
	}
}

// pump sends bare inside its loop: on shutdown it wedges or panics.
func (f *Feeder) pump() {
	for i := 0; ; i++ {
		f.out <- i
	}
}

// relay selects, but every case is a send; nothing lets it observe stop.
func (f *Feeder) relay(other chan int) {
	for i := 0; ; i++ {
		select {
		case f.out <- i:
		case f.ack <- i:
		}
	}
}

// tick is the compliant shape.
func (f *Feeder) tick() {
	for i := 0; ; i++ {
		select {
		case f.out <- i:
		case <-f.stop:
			return
		}
	}
}

// consume keeps both data channels genuinely bidirectional so the only
// findings here are the send-discipline ones.
func (f *Feeder) consume() (int, int) {
	return <-f.out, <-f.ack
}

// Close owns the shutdown signal.
//
//fcae:chan-owner sendnostop.Feeder.stop
func (f *Feeder) Close() {
	close(f.stop)
}
