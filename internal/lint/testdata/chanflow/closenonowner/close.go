// Fixture: close-by-non-owner, three ways. start makes the queue, but
// Shutdown closes it without a grant; Drain closes it under a directive
// naming the wrong channel (dangling key, its own finding); and a
// package-level channel made in init is closed by a helper.
package closenonowner

type Worker struct {
	queue chan string
}

func start() *Worker {
	w := &Worker{}
	w.queue = make(chan string, 4)
	go func() {
		for s := range w.queue {
			_ = s
		}
	}()
	return w
}

// Shutdown closes a channel it never made.
func (w *Worker) Shutdown() {
	close(w.queue)
}

// Drain declares ownership of a channel that does not exist, so the
// grant dangles and the close below is still unlicensed.
//
//fcae:chan-owner closenonowner.Worker.requests
func (w *Worker) Drain() {
	close(w.queue)
}

var events chan int

func setup() {
	events = make(chan int)
}

func teardown() {
	close(events)
}
