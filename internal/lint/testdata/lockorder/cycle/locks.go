// Fixture: a cross-function lock-order cycle. lockBUnderA acquires B.mu
// through a helper call while holding A.mu; lockAUnderB acquires them in
// the opposite order directly. Both closing edges must be reported.
package locks

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

var a A
var b B

func lockBUnderA() {
	a.mu.Lock()
	viaHelper()
	a.mu.Unlock()
}

func viaHelper() {
	b.mu.Lock()
	b.mu.Unlock()
}

func lockAUnderB() {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
