// Fixture: an acquisition contradicting a documented //fcae:lock-order
// directive. The declared order is Ev.mu before Store.mu; bad() takes
// Ev.mu while holding Store.mu, closing a two-edge cycle with the
// directive alone — no second code path is needed. The report lands on
// the acquisition, not the directive.
package locks

import "sync"

//fcae:lock-order locks.Ev.mu -> locks.Store.mu

type Ev struct{ mu sync.Mutex }

type Store struct{ mu sync.Mutex }

var ev Ev
var st Store

func bad() {
	st.mu.Lock()
	ev.mu.Lock()
	ev.mu.Unlock()
	st.mu.Unlock()
}
