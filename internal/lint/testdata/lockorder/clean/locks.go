// Fixture: consistent ordering plus the store's unlock-then-relock
// window. write holds DB.mu across makeRoom, which releases and
// reacquires it — release tracking must not read the relock as a
// recursive acquisition. applyLocked inherits DB.mu from its *Locked
// name and takes VS.mu under it, the same direction other() uses.
package locks

import "sync"

type DB struct {
	mu sync.Mutex
	n  int
}

type VS struct{ mu sync.Mutex }

var vs VS

func (db *DB) write() {
	db.mu.Lock()
	db.makeRoom()
	db.applyLocked()
	db.n++
	db.mu.Unlock()
}

func (db *DB) makeRoom() {
	db.mu.Unlock()
	db.mu.Lock()
}

func (db *DB) applyLocked() {
	vs.mu.Lock()
	vs.mu.Unlock()
}

func other(db *DB) {
	db.mu.Lock()
	vs.mu.Lock()
	vs.mu.Unlock()
	db.mu.Unlock()
}
