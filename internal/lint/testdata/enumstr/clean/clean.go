// Package fixture: enums that satisfy the convention. Kind covers every
// constant in both String and UnmarshalJSON; Tier's decoder delegates
// coverage to String with the range-scan idiom; Bare has no JSON methods,
// which is fine — the pair rule only fires on asymmetry.
package fixture

import (
	"fmt"
	"strconv"
)

// Kind is a record kind.
type Kind int

// Kinds.
const (
	KindFull Kind = iota
	KindFragment
)

// String covers every kind.
func (k Kind) String() string {
	switch k {
	case KindFull:
		return "full"
	case KindFragment:
		return "fragment"
	}
	return "unknown"
}

// MarshalJSON encodes the kind string.
func (k Kind) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, k.String()), nil
}

// UnmarshalJSON covers every kind.
func (k *Kind) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return err
	}
	switch s {
	case "full":
		*k = KindFull
	case "fragment":
		*k = KindFragment
	default:
		return fmt.Errorf("unknown kind %q", s)
	}
	return nil
}

// Tier is a storage tier.
type Tier int

// Tiers.
const (
	TierHot Tier = iota
	TierWarm
	TierCold
)

// String covers every tier.
func (t Tier) String() string {
	switch t {
	case TierHot:
		return "hot"
	case TierWarm:
		return "warm"
	case TierCold:
		return "cold"
	}
	return "unknown"
}

// MarshalJSON encodes the tier string.
func (t Tier) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, t.String()), nil
}

// UnmarshalJSON scans the value range against String, delegating
// coverage to it.
func (t *Tier) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return err
	}
	for c := TierHot; c <= TierCold; c++ {
		if c.String() == s {
			*t = c
			return nil
		}
	}
	return fmt.Errorf("unknown tier %q", s)
}

// Bare is an enum without a JSON surface.
type Bare int

// Bare values.
const (
	BareA Bare = iota
	BareB
)

// String covers every value.
func (b Bare) String() string {
	switch b {
	case BareA:
		return "a"
	case BareB:
		return "b"
	}
	return "unknown"
}
