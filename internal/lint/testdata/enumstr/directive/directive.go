// Package fixture: the //fcae:enum-no-roundtrip escape hatch. Signal is
// an emit-only metrics enum — it is marshaled into reports but never
// parsed back — and says so with a reasoned directive: no finding. Half
// declares the same intent without a reason, which is itself the finding
// (the pair rule stays suppressed; the missing reason is what's left to
// fix).
package fixture

import "strconv"

// Signal is an emit-only status value.
type Signal int

// Signals.
const (
	SignalOK Signal = iota
	SignalDegraded
)

// String covers every signal.
func (s Signal) String() string {
	switch s {
	case SignalOK:
		return "ok"
	case SignalDegraded:
		return "degraded"
	}
	return "unknown"
}

// MarshalJSON encodes the signal for the metrics report.
//
//fcae:enum-no-roundtrip emitted into reports, never parsed back
func (s Signal) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, s.String()), nil
}

// Half is emit-only too, but forgot to say why.
type Half int

// Half values.
const (
	HalfA Half = iota
	HalfB
)

// String covers every value.
func (h Half) String() string {
	switch h {
	case HalfA:
		return "a"
	case HalfB:
		return "b"
	}
	return "unknown"
}

// MarshalJSON encodes the value.
//
//fcae:enum-no-roundtrip
func (h Half) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, h.String()), nil
}
