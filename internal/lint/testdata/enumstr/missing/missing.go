// Package fixture: enum-convention violations. Phase's newest constant
// never made it into String; Mode has a MarshalJSON with no inverse; and
// Level's decoder forgot one case its encoder produces.
package fixture

import "strconv"

// Phase is a compaction phase.
type Phase int

// Phases.
const (
	PhaseBuild Phase = iota
	PhaseMerge
	PhaseFlush
)

// String is missing the PhaseFlush case.
func (p Phase) String() string {
	switch p {
	case PhaseBuild:
		return "build"
	case PhaseMerge:
		return "merge"
	}
	return "unknown"
}

// Mode selects an execution mode.
type Mode int

// Modes.
const (
	ModeHost Mode = iota
	ModeDevice
)

// String covers every mode.
func (m Mode) String() string {
	if m == ModeDevice {
		return "device"
	}
	_ = ModeHost
	return "host"
}

// MarshalJSON has no UnmarshalJSON inverse.
func (m Mode) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, m.String()), nil
}

// Level is a verbosity level.
type Level int

// Levels.
const (
	LevelInfo Level = iota
	LevelDebug
)

// String covers every level.
func (l Level) String() string {
	if l == LevelDebug {
		return "debug"
	}
	_ = LevelInfo
	return "info"
}

// MarshalJSON encodes the level string.
func (l Level) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, l.String()), nil
}

// UnmarshalJSON forgot the LevelDebug case.
func (l *Level) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return err
	}
	if s == "info" {
		*l = LevelInfo
	}
	return nil
}
