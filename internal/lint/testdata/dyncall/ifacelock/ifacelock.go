// Package fixture: a lock cycle only visible through interface dispatch.
// Device.Submit holds Device.mu and stages through the Sink seam; the
// only live Sink is Spiller, whose Stage takes Spiller.mu. The reverse
// edge is static: Spiller.Drain holds Spiller.mu and calls Device.Reset,
// which takes Device.mu. Without dynamic-dispatch resolution the first
// edge is invisible and the cycle goes unreported.
package fixture

import "sync"

// Sink stages bytes for the device.
type Sink interface{ Stage() }

// Device serializes submissions with its mutex.
type Device struct {
	mu   sync.Mutex
	sink Sink
}

// Submit stages through the interface with the device lock held.
func (d *Device) Submit() {
	d.mu.Lock()
	d.sink.Stage()
	d.mu.Unlock()
}

// Reset clears device state.
func (d *Device) Reset() {
	d.mu.Lock()
	d.mu.Unlock()
}

// Spiller implements Sink with its own lock.
type Spiller struct {
	mu  sync.Mutex
	dev *Device
}

// Stage implements Sink.
func (s *Spiller) Stage() {
	s.mu.Lock()
	s.mu.Unlock()
}

// Drain resets the device with the spiller lock held: the static half of
// the cycle.
func (s *Spiller) Drain() {
	s.mu.Lock()
	s.dev.Reset()
	s.mu.Unlock()
}

// New wires a device to its spiller.
func New() *Device {
	d := &Device{}
	d.sink = &Spiller{dev: d}
	return d
}
