// Package fixture: an unchecked decoded length crossing an interface.
// Use decodes a varint from untrusted bytes and hands it through the
// Decoder seam; the live implementation Raw indexes with it unchecked.
// Without dynamic-dispatch resolution the sink parameter summary never
// reaches the call site.
package fixture

import "encoding/binary"

// Decoder is the read seam.
type Decoder interface {
	ReadAt(buf []byte, n uint64) byte
}

// Raw reads without validation.
type Raw struct{}

// ReadAt indexes with n unchecked: a sink parameter.
func (Raw) ReadAt(buf []byte, n uint64) byte { return buf[n] }

// Use decodes a length and passes it through the seam unchecked.
func Use(d Decoder, buf []byte) byte {
	n, _ := binary.Uvarint(buf)
	return d.ReadAt(buf, n)
}

// Checked validates before the same call, staying clean.
func Checked(d Decoder, buf []byte) byte {
	n, _ := binary.Uvarint(buf)
	if n >= uint64(len(buf)) {
		return 0
	}
	return d.ReadAt(buf, n)
}

// New returns the live decoder.
func New() Decoder { return Raw{} }
