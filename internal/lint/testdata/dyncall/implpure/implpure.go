// Package fixture: the //fcae:impl-pure escape hatch. Store.Snapshot
// holds Store.mu and samples through the Gauge seam. The only live Gauge
// is Probe, whose Sample is itself lock-free but forwards through the
// Inner seam, where the type-set union picks up Blocker.Deep (a channel
// send) — a pairing this program never constructs on the locked path.
// The directive cuts Probe.Sample out of dynamic propagation; the
// analyzers validate that its body really has no direct lock or channel
// operation, so the exemption cannot rot silently. Expected: clean.
package fixture

import "sync"

// Gauge is the sampling seam.
type Gauge interface{ Sample() }

// Inner is the forwarding seam.
type Inner interface{ Deep() }

// Store snapshots under its mutex.
type Store struct {
	mu sync.Mutex
	g  Gauge
}

// Snapshot samples with the lock held.
func (s *Store) Snapshot() {
	s.mu.Lock()
	s.g.Sample()
	s.mu.Unlock()
}

// Probe forwards through Inner. Its body performs no lock or channel
// operation; the blocking path the resolver unions in through Inner is
// never wired on the locked Store path.
type Probe struct{ in Inner }

// Sample forwards to the inner seam.
//
//fcae:impl-pure the probe is wired to Quiet on the locked path
func (p *Probe) Sample() { p.in.Deep() }

// Quiet is the inner used on the locked path.
type Quiet struct{ n int64 }

// Deep implements Inner without blocking.
func (q *Quiet) Deep() { q.n++ }

// Blocker is an Inner used only on the unlocked pipeline.
type Blocker struct{ ch chan int64 }

// Deep hands the sample to a drain goroutine.
func (b *Blocker) Deep() { b.ch <- 1 }

// Drain receives what Blocker sends, on the unlocked path.
func (b *Blocker) Drain() int64 { return <-b.ch }

// New wires the locked store to a quiet probe; blockers live elsewhere.
func New() (*Store, *Blocker) {
	return &Store{g: &Probe{in: &Quiet{}}}, &Blocker{ch: make(chan int64, 1)}
}
