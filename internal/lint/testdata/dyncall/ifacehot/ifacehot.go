// Package fixture: a per-iteration allocation reached from a hot loop
// through interface dispatch. Accumulate is cycle-accounted and calls the
// Emitter seam per iteration; the live implementation Collector makes a
// fresh scratch slice on every call. Without dynamic-dispatch resolution
// the hotness never propagates into Collector.Emit.
package fixture

// Emitter is the output seam.
type Emitter interface{ Emit(n int) }

// Accumulate drains the modeled device FIFO.
//
//fcae:cycle-accounting
func Accumulate(e Emitter, rounds int) {
	for i := 0; i < rounds; i++ {
		e.Emit(i)
	}
}

// Collector implements Emitter.
type Collector struct{ buf []byte }

// Emit allocates scratch per call instead of reusing it.
func (c *Collector) Emit(n int) {
	tmp := make([]byte, n)
	c.buf = tmp
}

// New returns the live emitter.
func New() Emitter { return &Collector{} }
