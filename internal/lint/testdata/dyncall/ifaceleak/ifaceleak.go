// Package fixture: a goroutine leak hidden behind an interface. Pool
// launches workers it only knows as Runners; the live implementation is
// Worker, a lifecycle type whose Close waits on its WaitGroup — but Run
// never calls Done, so Close blocks forever. Without dynamic-dispatch
// resolution the goroutine body is unresolvable and the leak invisible.
package fixture

import "sync"

// Runner is the work seam.
type Runner interface{ Run() }

// Pool launches runners without knowing their concrete type.
type Pool struct{ r Runner }

// Start spawns the runner.
func (p *Pool) Start() { go p.r.Run() }

// Worker is a lifecycle type: Close joins its WaitGroup.
type Worker struct{ wg sync.WaitGroup }

// Run does the work but never calls Done.
func (w *Worker) Run() {}

// Close waits for workers that never signal completion.
func (w *Worker) Close() error {
	w.wg.Wait()
	return nil
}

// New wires a pool over a worker.
func New() *Pool { return &Pool{r: &Worker{}} }
