// Fixture: the same flows with validation — comparisons clear the taint,
// and a helper that checks its parameter is not a sink.
package taintcase

import "encoding/binary"

func checked(b []byte) []byte {
	n := int(binary.LittleEndian.Uint32(b))
	if n < 0 || n > len(b)-4 {
		return nil
	}
	return b[4 : 4+n]
}

func checkedHop(b []byte) byte {
	v, _ := binary.Uvarint(b)
	if v >= uint64(len(b)) {
		return 0
	}
	return pickChecked(b, int(v))
}

func pickChecked(b []byte, n int) byte {
	if n < 0 || n >= len(b) {
		return 0
	}
	return b[n]
}
