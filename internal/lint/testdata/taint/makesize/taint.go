// Fixture: a decoded count sizing an allocation. Unchecked it is an
// allocation bomb (a hostile 4-byte header can demand gigabytes); after a
// payload-derived bounds check it is fine.
package taintcase

import (
	"encoding/binary"
	"errors"
)

type entry struct {
	off uint64
	len uint32
}

func bomb(b []byte) []entry {
	n := int(binary.LittleEndian.Uint32(b))
	return make([]entry, n)
}

func checked(b []byte) ([]entry, error) {
	n := int(binary.LittleEndian.Uint32(b))
	if n > len(b[4:])/12 {
		return nil, errors.New("count exceeds payload")
	}
	return make([]entry, n), nil
}
