// Fixture: untrusted decoded lengths reaching bounds unchecked — once
// directly, once through a helper-function hop (pick uses its parameter
// as an unchecked index, so passing a tainted value to it is reported at
// the call site).
package taintcase

import "encoding/binary"

func pick(b []byte, n int) byte { return b[n] }

func hop(b []byte) byte {
	v, _ := binary.Uvarint(b)
	return pick(b, int(v))
}

func direct(b []byte) []byte {
	n := int(binary.LittleEndian.Uint32(b))
	return b[:n]
}
