// Fixture: deliberate hot-path allocations, each justified in place.
// Same-line and line-above directive placements both count; with every
// site suppressed the case is clean.
package allocok

type batcher struct {
	out [][]byte
}

// flush is the cycle-accounted path; the copies are retained output, so
// the allocations are the point, not an accident.
//
//fcae:cycle-accounting
func (b *batcher) flush(rows [][]byte) {
	for _, r := range rows {
		//fcae:alloc-ok retained output: the caller keeps every row copy
		cp := append([]byte(nil), r...)
		scratch := make([]byte, len(r)) //fcae:alloc-ok grow-once demo: sized per row for the fixture
		copy(scratch, cp)
		b.out = append(b.out, cp)
	}
}
