// Fixture: make() on the hot path, both directly in the kernel's loop
// and inside a helper that is only hot through call-graph propagation.
// The make in setup() runs once before the loop and must stay silent.
package hotmake

type codec struct {
	runs [][]byte
}

func setup(n int) *codec {
	return &codec{runs: make([][]byte, n)}
}

// kernel is the cycle-accounted entry point.
//
//fcae:cycle-accounting
func (c *codec) kernel() int {
	total := 0
	for _, r := range c.runs {
		buf := make([]byte, len(r))
		copy(buf, r)
		total += c.expand(buf)
	}
	return total
}

// expand is loop-hot via kernel's loop; its make allocates per pair even
// though no loop is visible here.
func (c *codec) expand(b []byte) int {
	tmp := make([]int, len(b))
	for i, v := range b {
		tmp[i] = int(v)
	}
	return len(tmp)
}
