// Fixture: growing appends in a hot loop. Both the fresh-base copy and
// the loop-local accumulator regrow every iteration; the receiver-field
// append at the end amortizes and must stay silent.
package appendgrowth

type sink struct {
	keep [][]byte
	all  []byte
}

// drain is the cycle-accounted consumer.
//
//fcae:cycle-accounting
func (s *sink) drain(pairs [][]byte) {
	for _, p := range pairs {
		cp := append([]byte(nil), p...)
		s.keep = append(s.keep, cp)

		var row []byte
		for _, b := range p {
			row = append(row, b)
		}
		if len(row) > 0 {
			s.all = append(s.all, row[0])
		}
	}
}
