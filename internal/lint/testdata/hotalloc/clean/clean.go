// Fixture: an allocation-free hot kernel. Every append amortizes into
// receiver-owned scratch, the helper reached from the loop is just as
// careful, and the error exit may box (returns are cold by definition).
package clean

import "fmt"

type merger struct {
	key  []byte
	out  []byte
	runs [][]byte
}

// merge is the cycle-accounted kernel.
//
//fcae:cycle-accounting
func (m *merger) merge() error {
	for _, r := range m.runs {
		if len(r) == 0 {
			return fmt.Errorf("empty run among %d", len(m.runs))
		}
		m.key = append(m.key[:0], r...)
		m.fold(r)
	}
	return nil
}

// fold is loop-hot through the call graph and reuses m.out.
func (m *merger) fold(r []byte) {
	m.out = append(m.out, r...)
}
