// Fixture: the allocation shapes Go hides in plain syntax — interface
// boxing at a call site, string concatenation, and a closure minted per
// iteration — plus a reasonless //fcae:alloc-ok, which is its own
// finding rather than a silent suppression.
package boxclosure

type meter struct {
	total int
	names string
}

func (m *meter) observe(v any) { _ = v }
func (m *meter) each(f func()) { f() }

// account is the cycle-accounted loop.
//
//fcae:cycle-accounting
func (m *meter) account(vals []int, tags []string) {
	for i, v := range vals {
		m.observe(v)
		m.names = m.names + tags[i]
		//fcae:alloc-ok
		m.each(func() { m.total += v })
	}
}
