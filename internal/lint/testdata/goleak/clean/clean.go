// Package cleancase holds compliant goroutine lifecycles: registered
// before the spawn, Done in the body, Wait reachable from Close.
package cleancase

import "sync"

// Pool follows the full discipline, with Wait reached transitively
// through a helper.
type Pool struct {
	wg sync.WaitGroup
	ch chan int
}

func (p *Pool) Start(n int) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	// Func-lit spawn with inline Done is fine too.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for range p.ch {
		}
	}()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for range p.ch {
	}
}

func (p *Pool) Close() {
	close(p.ch)
	p.drain()
}

func (p *Pool) drain() {
	p.wg.Wait()
}

// NoLifecycle has no Close or Stop, so its goroutines are out of scope
// (joined by the caller, not a teardown method).
type NoLifecycle struct {
	ch chan int
}

func (s *NoLifecycle) Start() {
	go func() {
		for range s.ch {
		}
	}()
}

// Run is a free function: its worker pool is joined locally and is not
// the analyzer's concern.
func Run(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}
