// Package leakcase holds lifecycle types whose goroutines violate the
// join discipline in four distinct ways.
package leakcase

import "sync"

// NoWG spawns a worker but has no WaitGroup at all: Close cannot join it.
type NoWG struct {
	ch chan int
}

func (p *NoWG) Start() {
	go p.worker()
}

func (p *NoWG) worker() {
	for range p.ch {
	}
}

func (p *NoWG) Close() {
	close(p.ch)
}

// NoAdd has the field and the worker calls Done, but the spawn is never
// registered: Close can return before the worker is counted.
type NoAdd struct {
	wg sync.WaitGroup
	ch chan int
}

func (p *NoAdd) Start() {
	go p.worker()
}

func (p *NoAdd) worker() {
	defer p.wg.Done()
	for range p.ch {
	}
}

func (p *NoAdd) Close() {
	close(p.ch)
	p.wg.Wait()
}

// NoDone registers the spawn but the worker never signals completion:
// Close blocks forever.
type NoDone struct {
	wg sync.WaitGroup
	ch chan int
}

func (p *NoDone) Start() {
	p.wg.Add(1)
	go p.worker()
}

func (p *NoDone) worker() {
	for range p.ch {
	}
}

func (p *NoDone) Close() {
	close(p.ch)
	p.wg.Wait()
}

// NoWait does the bookkeeping but Stop never joins: the worker leaks
// past shutdown.
type NoWait struct {
	wg sync.WaitGroup
	ch chan int
}

func (p *NoWait) Start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for range p.ch {
		}
	}()
}

func (p *NoWait) Stop() {
	close(p.ch)
}
