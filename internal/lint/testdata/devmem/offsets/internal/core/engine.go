// Fixture: every device-memory invariant violated outside memlayout.go.
package core

func view(im *InputImage, t TableDesc) []byte {
	return im.IndexMem[t.IndexOff : t.IndexOff+t.IndexLen]
}

func grow(im *InputImage, b []byte) {
	im.DataMem = b
}

func decodeMetaHeader(buf []byte) int {
	n := 0
	if len(buf) >= 20 {
		n = 12
	}
	return n
}

func busyWait(cycles int) int {
	total := 0
	for i := 0; i < cycles; i++ {
		total += i
	}
	return total
}
