// Fixture: the compliant shape — extent arithmetic confined to
// memlayout.go, widths as validated constants.
package core

type IndexEntry struct {
	Offset uint64
	Size   uint64
}

type TableDesc struct {
	IndexOff uint64
	IndexLen uint64
}

type InputImage struct {
	IndexMem []byte
	DataMem  []byte
}

const (
	metaInHeaderLen      = 4
	metaInEntryLen       = 8 + 8 + 4
	metaOutHeaderLen     = 4
	metaOutEntryFixedLen = 4 + 8
)

func (im *InputImage) slice(e IndexEntry) []byte {
	return im.DataMem[e.Offset : e.Offset+e.Size]
}
