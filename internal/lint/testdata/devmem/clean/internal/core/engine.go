// Fixture: reads without arithmetic and a directive-covered cycle loop
// are clean.
package core

func firstByte(im *InputImage, e IndexEntry) byte {
	return im.DataMem[e.Offset]
}

func metaEntrySpan(n int) int {
	return metaInHeaderLen + metaInEntryLen*n
}

//fcae:cycle-accounting
func countCycles(cycles int) int {
	total := 0
	for i := 0; i < cycles; i++ {
		total += i
	}
	return total
}
