package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// Taint tracks integers decoded from untrusted bytes — varint results and
// fixed-width binary reads, the values an SSTable block or WAL record
// hands us straight from disk — and reports slice or index expressions
// (and make() sizes, which a hostile length turns into a panic or an
// allocation bomb) whose bounds derive from such a value without a prior
// validation check. This is the hostile-uvarint bug class both fuzz-found block
// decoder panics belonged to, promoted to a compile-time finding.
//
// Sources: the first result of encoding/binary.Uvarint/Varint (the byte
// count is inherently bounded and stays clean) and the results of
// binary.{Little,Big}Endian.Uint16/32/64. Taint propagates through
// arithmetic, conversions and assignment, lexically in source order, and
// is cleared by any comparison mentioning the variable (the decoder
// idiom `if n > uint64(len(buf)) { return err }`) or by a clean
// reassignment. Tracking covers local integer variables only — values
// stored into struct fields or slices leave the analysis.
//
// The facts framework makes it interprocedural: each function gets a
// summary of (a) parameters it uses as unchecked bounds, directly or by
// forwarding to another sink parameter, and (b) whether it returns a
// still-tainted value. Summaries reach a fixpoint over the call graph,
// so passing a freshly decoded length to a helper that indexes with it
// is reported at the call site even across packages.
var Taint = &Analyzer{
	Name: "taint",
	Doc: "slice/index bounds derived from untrusted decoded bytes require a " +
		"prior validation check, including through helper calls",
	RunModule: runTaint,
}

const (
	actSanitize = iota // comparisons clear state first on position ties
	actAssign
	actUse
	actCall
	actReturn
)

type taintAction struct {
	pos  token.Pos
	kind int

	lhs   []types.Object // assign targets (nil entries for untracked lhs)
	rhs   []ast.Expr     // assign sources, pairwise with lhs
	multi *ast.CallExpr  // assign from one multi-value call

	objs []types.Object // sanitize: cleared objects

	expr ast.Expr // use: the bound expression
	what string   // use: "index" or "slice bound"

	call *ast.CallExpr // call / return payload
	rets []ast.Expr
}

// taintSummary is a function's contribution to callers.
type taintSummary struct {
	sinkParams     map[int]bool // parameter indices used as unchecked bounds
	returnsTainted bool
}

type taintBody struct {
	m       *Module
	fi      *FuncInfo
	pkg     *Package
	name    string
	params  []types.Object
	actions []taintAction
}

func runTaint(pass *ModulePass) {
	m := pass.Module
	var bodies []*taintBody
	var lits []*taintBody
	for _, fi := range m.Funcs() {
		b := collectTaintBody(m, fi.Pkg, fi.Decl.Body, fi)
		bodies = append(bodies, b)
		for _, lit := range nestedFuncLits(fi.Decl.Body) {
			lb := collectTaintBody(m, fi.Pkg, lit.Body, nil)
			lb.name = "function literal in " + fi.Name()
			lits = append(lits, lb)
		}
	}

	// Fixpoint over summaries: sink parameters and tainted returns only
	// ever get added, so iteration terminates.
	sums := make(map[*FuncInfo]*taintSummary, len(bodies))
	for _, b := range bodies {
		sums[b.fi] = &taintSummary{sinkParams: make(map[int]bool)}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range bodies {
			s := sums[b.fi]
			// Does a still-tainted value reach a return?
			r := sweepTaint(b, sums, nil, true, nil)
			if r && !s.returnsTainted {
				s.returnsTainted = true
				changed = true
			}
			// Which parameters reach an unchecked bound?
			for i, p := range b.params {
				if s.sinkParams[i] || p == nil || !isIntegerObj(p) {
					continue
				}
				hit := false
				sweepTaint(b, sums, map[types.Object]bool{p: true}, false,
					func(token.Pos, string) { hit = true })
				if hit {
					s.sinkParams[i] = true
					changed = true
				}
			}
		}
	}

	// Reporting pass: sources on, parameters clean.
	seen := make(map[token.Pos]bool)
	report := func(pos token.Pos, msg string) {
		if !seen[pos] {
			seen[pos] = true
			pass.Reportf(pos, "%s", msg)
		}
	}
	for _, b := range append(bodies, lits...) {
		sweepTaint(b, sums, nil, true, report)
	}
}

// collectTaintBody gathers the body's taint-relevant actions in lexical
// order. Nested function literals are separate bodies.
func collectTaintBody(m *Module, pkg *Package, body *ast.BlockStmt, fi *FuncInfo) *taintBody {
	b := &taintBody{m: m, fi: fi, pkg: pkg}
	if fi != nil {
		b.name = fi.Name()
		sig := fi.Obj.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			b.params = append(b.params, sig.Params().At(i))
		}
	}
	info := pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			act := taintAction{pos: n.Pos(), kind: actAssign}
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					act.multi = call
				}
			}
			for i, lhs := range n.Lhs {
				act.lhs = append(act.lhs, assignTarget(info, lhs))
				if act.multi == nil && i < len(n.Rhs) {
					act.rhs = append(act.rhs, n.Rhs[i])
				}
			}
			b.actions = append(b.actions, act)
		case *ast.ValueSpec:
			act := taintAction{pos: n.Pos(), kind: actAssign}
			for i, name := range n.Names {
				act.lhs = append(act.lhs, info.Defs[name])
				if i < len(n.Values) {
					act.rhs = append(act.rhs, n.Values[i])
				}
			}
			if len(n.Values) == 1 && len(n.Names) > 1 {
				if call, ok := ast.Unparen(n.Values[0]).(*ast.CallExpr); ok {
					act.multi = call
					act.rhs = nil
				}
			}
			b.actions = append(b.actions, act)
		case *ast.BinaryExpr:
			if isComparison(n.Op) {
				act := taintAction{pos: n.Pos(), kind: actSanitize}
				for _, side := range []ast.Expr{n.X, n.Y} {
					ast.Inspect(side, func(x ast.Node) bool {
						if id, ok := x.(*ast.Ident); ok {
							if obj := info.Uses[id]; obj != nil {
								act.objs = append(act.objs, obj)
							}
						}
						return true
					})
				}
				b.actions = append(b.actions, act)
			}
		case *ast.IndexExpr:
			if tv, ok := info.Types[n.X]; ok && !tv.IsType() {
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					b.actions = append(b.actions, taintAction{pos: n.Index.Pos(), kind: actUse, expr: n.Index, what: "index"})
				}
			}
		case *ast.SliceExpr:
			for _, bound := range []ast.Expr{n.Low, n.High, n.Max} {
				if bound != nil {
					b.actions = append(b.actions, taintAction{pos: bound.Pos(), kind: actUse, expr: bound, what: "slice bound"})
				}
			}
		case *ast.CallExpr:
			// A decoded length handed to make() sizes an allocation: a
			// hostile value either panics (negative after conversion) or
			// balloons memory. Treat the size/capacity arguments as bound
			// uses requiring the same prior check as an index.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if bi, ok := info.Uses[id].(*types.Builtin); ok && bi.Name() == "make" {
					for _, arg := range n.Args[1:] {
						b.actions = append(b.actions, taintAction{pos: arg.Pos(), kind: actUse, expr: arg, what: "make size"})
					}
				}
			}
			b.actions = append(b.actions, taintAction{pos: n.Pos(), kind: actCall, call: n})
		case *ast.ReturnStmt:
			b.actions = append(b.actions, taintAction{pos: n.Pos(), kind: actReturn, rets: n.Results})
		}
		return true
	})
	sort.SliceStable(b.actions, func(i, j int) bool {
		if b.actions[i].pos != b.actions[j].pos {
			return b.actions[i].pos < b.actions[j].pos
		}
		return b.actions[i].kind < b.actions[j].kind
	})
	return b
}

// sweepTaint runs the lexical state machine over a body. init seeds the
// tainted set (parameter-sink mode); sources enables the decoded-bytes
// sources (reporting and return-taint mode). report, when non-nil,
// receives each unchecked tainted bound. Returns whether a tainted value
// reached a return statement.
func sweepTaint(b *taintBody, sums map[*FuncInfo]*taintSummary, init map[types.Object]bool, sources bool, report func(token.Pos, string)) bool {
	state := make(map[types.Object]bool, len(init))
	for o := range init {
		state[o] = true
	}
	m := b.m
	tainted := func(e ast.Expr) bool { return taintedExpr(b.pkg, m, sums, state, e, sources) }
	returnsTainted := false
	for i := range b.actions {
		act := &b.actions[i]
		switch act.kind {
		case actSanitize:
			for _, o := range act.objs {
				delete(state, o)
			}
		case actAssign:
			if act.multi != nil {
				taintMultiAssign(b, sums, state, act, sources)
				continue
			}
			for i, lhs := range act.lhs {
				if lhs == nil {
					continue
				}
				if i < len(act.rhs) && tainted(act.rhs[i]) {
					state[lhs] = true
				} else {
					delete(state, lhs)
				}
			}
		case actUse:
			if report != nil && tainted(act.expr) {
				report(act.pos, "untrusted decoded value used as "+act.what+" without a prior bounds check")
			}
		case actCall:
			if report == nil || m == nil {
				continue
			}
			callee := m.StaticCallee(b.pkg.Info, act.call)
			if callee == nil {
				// Interface dispatch: the argument may land in any resolved
				// implementation's sink parameter.
				for _, dc := range m.DynamicCallees(b.pkg.Info, act.call) {
					s := sums[dc]
					if s == nil {
						continue
					}
					for i, arg := range act.call.Args {
						if s.sinkParams[i] && tainted(arg) {
							report(arg.Pos(), "untrusted decoded value may reach parameter "+
								paramName(dc, i)+" of "+dc.Name()+" via dynamic dispatch, which uses it as an unchecked bound")
						}
					}
				}
				continue
			}
			s := sums[callee]
			if s == nil {
				continue
			}
			for i, arg := range act.call.Args {
				if s.sinkParams[i] && tainted(arg) {
					report(arg.Pos(), "untrusted decoded value passed to parameter "+
						paramName(callee, i)+" of "+callee.Name()+", which uses it as an unchecked bound")
				}
			}
		case actReturn:
			for _, r := range act.rets {
				if tainted(r) {
					returnsTainted = true
				}
			}
		}
	}
	return returnsTainted
}

// taintMultiAssign handles `a, b := call(...)`.
func taintMultiAssign(b *taintBody, sums map[*FuncInfo]*taintSummary, state map[types.Object]bool, act *taintAction, sources bool) {
	taintedIdx := func(i int) bool {
		if !sources {
			return false
		}
		if fn := binaryFunc(b.pkg.Info, act.multi); fn != nil {
			// Uvarint/Varint: first result is the decoded value, second
			// is the byte count, inherently bounded by len(input).
			if fn.Name() == "Uvarint" || fn.Name() == "Varint" {
				return i == 0
			}
		}
		if b.m != nil {
			if callee := b.m.StaticCallee(b.pkg.Info, act.multi); callee != nil {
				if s := sums[callee]; s != nil && s.returnsTainted {
					lhs := act.lhs[i]
					return lhs != nil && isIntegerObj(lhs)
				}
			} else {
				for _, dc := range b.m.DynamicCallees(b.pkg.Info, act.multi) {
					if s := sums[dc]; s != nil && s.returnsTainted {
						lhs := act.lhs[i]
						return lhs != nil && isIntegerObj(lhs)
					}
				}
			}
		}
		return false
	}
	for i, lhs := range act.lhs {
		if lhs == nil {
			continue
		}
		if taintedIdx(i) {
			state[lhs] = true
		} else {
			delete(state, lhs)
		}
	}
}

// taintedExpr evaluates whether e carries taint under the current state.
func taintedExpr(pkg *Package, m *Module, sums map[*FuncInfo]*taintSummary, state map[types.Object]bool, e ast.Expr, sources bool) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return state[pkg.Info.Uses[x]]
	case *ast.ParenExpr:
		return taintedExpr(pkg, m, sums, state, x.X, sources)
	case *ast.UnaryExpr:
		return taintedExpr(pkg, m, sums, state, x.X, sources)
	case *ast.BinaryExpr:
		if isComparison(x.Op) || x.Op == token.LAND || x.Op == token.LOR {
			return false
		}
		return taintedExpr(pkg, m, sums, state, x.X, sources) ||
			taintedExpr(pkg, m, sums, state, x.Y, sources)
	case *ast.CallExpr:
		if tv, ok := pkg.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return taintedExpr(pkg, m, sums, state, x.Args[0], sources)
		}
		if !sources {
			return false
		}
		if fn := binaryFunc(pkg.Info, x); fn != nil {
			switch fn.Name() {
			case "Uint16", "Uint32", "Uint64":
				return true
			}
		}
		if m != nil {
			if callee := m.StaticCallee(pkg.Info, x); callee != nil {
				if s := sums[callee]; s != nil && s.returnsTainted {
					return true
				}
			} else {
				for _, dc := range m.DynamicCallees(pkg.Info, x) {
					if s := sums[dc]; s != nil && s.returnsTainted {
						return true
					}
				}
			}
		}
		return false
	}
	return false
}

// binaryFunc returns the encoding/binary function or method called, if any.
func binaryFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel]
		}
	case *ast.Ident:
		obj = info.Uses[fun]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
		return nil
	}
	return fn
}

// assignTarget resolves an assignment lhs to a tracked local object, or
// nil for blank, field, and element targets (which leave the analysis).
func assignTarget(info *types.Info, lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

func isIntegerObj(o types.Object) bool {
	t := o.Type()
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

func paramName(fi *FuncInfo, i int) string {
	sig := fi.Obj.Type().(*types.Signature)
	if i < sig.Params().Len() {
		if n := sig.Params().At(i).Name(); n != "" {
			return n
		}
	}
	return "#" + strconv.Itoa(i)
}
