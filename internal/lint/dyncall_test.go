package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fcae/internal/lint"
)

// TestImplPureIsLoadBearing proves the implpure golden case is clean
// *because of* the directive: the same fixture with the //fcae:impl-pure
// line stripped must produce the chan-under-lock finding the directive
// suppresses.
func TestImplPureIsLoadBearing(t *testing.T) {
	t.Parallel()
	src, err := os.ReadFile(filepath.Join("testdata", "dyncall", "implpure", "implpure.go"))
	if err != nil {
		t.Fatal(err)
	}
	stripped := strings.ReplaceAll(string(src), "//fcae:impl-pure", "// (directive stripped)")
	if stripped == string(src) {
		t.Fatal("fixture no longer contains //fcae:impl-pure")
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "implpure.go"), []byte(stripped), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Check(pkgs, []*lint.Analyzer{lint.ChanFlow})
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "call to fixture.Probe.Sample") &&
			strings.Contains(d.Message, "blocking channel operation") {
			found = true
		}
	}
	if !found {
		t.Errorf("stripping //fcae:impl-pure should surface the chan-under-lock finding; got %v", diags)
	}
}

// TestImplPureValidated proves a lying directive is itself reported: a
// marked body that directly blocks on a channel or takes a lock fails.
func TestImplPureValidated(t *testing.T) {
	t.Parallel()
	const src = `package fixture

import "sync"

type T struct {
	mu sync.Mutex
	ch chan int
}

// Grab lies about being pure.
//
//fcae:impl-pure not actually
func (t *T) Grab() {
	t.mu.Lock()
	t.mu.Unlock()
}

// Send lies about being pure.
//
//fcae:impl-pure not actually
func (t *T) Send() {
	t.ch <- 1
}
`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "lying.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Check(pkgs, []*lint.Analyzer{lint.LockOrder, lint.ChanFlow})
	var lockReport, chanReport bool
	for _, d := range diags {
		if strings.Contains(d.Message, "marked //fcae:impl-pure but acquires") {
			lockReport = true
		}
		if strings.Contains(d.Message, "marked //fcae:impl-pure but performs") {
			chanReport = true
		}
	}
	if !lockReport || !chanReport {
		t.Errorf("lying //fcae:impl-pure bodies must be reported (lock=%v chan=%v): %v", lockReport, chanReport, diags)
	}
}

// TestResolverStats checks CheckStats reports both static and dynamic
// call edges for a module with an interface seam.
func TestResolverStats(t *testing.T) {
	t.Parallel()
	dir, err := filepath.Abs(filepath.Join("testdata", "dyncall", "ifacelock"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, stats := lint.CheckStats(pkgs, []*lint.Analyzer{lint.LockOrder})
	if stats.StaticEdges == 0 {
		t.Errorf("expected static edges (Drain -> Reset), got %+v", stats)
	}
	if stats.DynamicEdges == 0 {
		t.Errorf("expected dynamic edges (Submit -> Stage), got %+v", stats)
	}
}

// TestDynamicCalleesStdlibInterfaceUnresolved checks the module-seam
// restriction: calls through stdlib or anonymous interfaces must not
// resolve (they would fan out to every accidental structural match).
func TestDynamicCalleesStdlibInterfaceUnresolved(t *testing.T) {
	t.Parallel()
	const src = `package fixture

import "io"

type sink struct{}

func (sink) Close() error { return nil }

func use(c io.Closer) error { return c.Close() }

func anon(f interface{ Flush() error }) error { return f.Flush() }

var _ = sink{}
var _ = use
var _ = anon
`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stdlib.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, stats := lint.CheckStats(pkgs, []*lint.Analyzer{lint.LockOrder})
	if stats.DynamicEdges != 0 {
		t.Errorf("stdlib/anonymous interface calls must stay unresolved, got %d dynamic edges", stats.DynamicEdges)
	}
}
