package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BufAlias flags retention of iterator Key()/Value() views. Every
// iterator in this store (block, table, memtable, merging) reuses its
// key/value buffers: the returned slices are valid only until the next
// positioning call. The classic LSM bug is keeping such a view — in a
// struct field, a slice, a map or across a Next() — and reading garbage
// after the iterator moves on. A view is any 0-argument Key()/Value()
// method call on a value whose type also has a Next method.
//
// Flagged retention shapes:
//   - storing the raw view into a struct field, map or slice element
//   - appending the view itself as an element (append(s, it.Key()) —
//     the copying form append(buf, it.Key()...) is fine)
//   - returning the raw view from any function not itself named
//     Key or Value (plain forwarders keep the documented lifetime)
//   - reading a local bound to the view after the iterator's Next/Prev
//     (in source order, within the same function)
var BufAlias = &Analyzer{
	Name: "bufalias",
	Doc:  "iterator Key()/Value() views must be copied before they outlive the next positioning call",
	Run:  runBufAlias,
}

func runBufAlias(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBufAlias(pass, fd)
		}
	}
}

// viewCall returns the receiver expression of e when e is a raw
// iterator Key()/Value() call, else nil.
func viewCall(pass *Pass, e ast.Expr) ast.Expr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Key" && sel.Sel.Name != "Value") {
		return nil
	}
	if pass.Info.Selections[sel] == nil {
		return nil // not a method call
	}
	if !hasMethod(pass.Pkg, pass.Info.TypeOf(sel.X), "Next") {
		return nil
	}
	return sel.X
}

type localView struct {
	obj  types.Object
	recv string // printed receiver expression of the view call
	pos  token.Pos
}

func checkBufAlias(pass *Pass, fd *ast.FuncDecl) {
	var locals []localView
	assignedIdents := make(map[*ast.Ident]bool)  // idents appearing as assignment targets
	writes := make(map[types.Object][]token.Pos) // all writes per local object
	repositions := make(map[string][]token.Pos)  // Next/Prev calls per printed receiver

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					assignedIdents[id] = true
					if obj := identObj(pass, id); obj != nil {
						writes[obj] = append(writes[obj], id.Pos())
					}
				}
			}
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				recv := viewCall(pass, rhs)
				if recv == nil {
					continue
				}
				switch lhs := n.Lhs[i].(type) {
				case *ast.SelectorExpr:
					pass.Reportf(rhs.Pos(),
						"%s view stored into field %s outlives the iterator's buffer; copy it (append(dst[:0], ...%s...))",
						types.ExprString(rhs), types.ExprString(lhs), types.ExprString(rhs))
				case *ast.IndexExpr:
					pass.Reportf(rhs.Pos(),
						"%s view stored into %s outlives the iterator's buffer; copy it first",
						types.ExprString(rhs), types.ExprString(lhs))
				case *ast.Ident:
					if obj := identObj(pass, lhs); obj != nil {
						locals = append(locals, localView{obj: obj, recv: types.ExprString(recv), pos: rhs.Pos()})
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && n.Ellipsis == token.NoPos {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					for _, arg := range n.Args[1:] {
						if viewCall(pass, arg) != nil {
							pass.Reportf(arg.Pos(),
								"%s view appended as an element retains the iterator's buffer; append a copy",
								types.ExprString(arg))
						}
					}
				}
			}
			// Track repositioning calls for the local-view pass.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && len(n.Args) == 0 &&
				(sel.Sel.Name == "Next" || sel.Sel.Name == "Prev") &&
				pass.Info.Selections[sel] != nil {
				recv := types.ExprString(sel.X)
				repositions[recv] = append(repositions[recv], n.Pos())
			}
		case *ast.ReturnStmt:
			if fd.Name.Name == "Key" || fd.Name.Name == "Value" {
				return true // forwarding iterator: same documented lifetime
			}
			for _, res := range n.Results {
				if viewCall(pass, res) != nil {
					pass.Reportf(res.Pos(),
						"returning raw %s leaks the iterator's reused buffer; return a copy",
						types.ExprString(res))
				}
			}
		}
		return true
	})

	if len(locals) == 0 {
		return
	}
	// For each local view, flag reads that happen (in source order) after
	// a repositioning of its iterator, unless the local was re-assigned
	// after that repositioning.
	for _, lv := range locals {
		reps := repositions[lv.recv]
		if len(reps) == 0 {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || assignedIdents[id] || identObj(pass, id) != lv.obj || id.Pos() <= lv.pos {
				return true
			}
			lastWrite := lv.pos
			for _, w := range writes[lv.obj] {
				if w < id.Pos() && w > lastWrite {
					lastWrite = w
				}
			}
			for _, r := range reps {
				if r > lastWrite && r < id.Pos() {
					pass.Reportf(id.Pos(),
						"%s read after %s.Next/Prev invalidated the view it holds; copy the bytes before advancing",
						id.Name, lv.recv)
					return true
				}
			}
			return true
		})
	}
}

// identObj resolves an identifier to its object (definition or use).
func identObj(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}
