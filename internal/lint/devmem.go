package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// DevMem enforces the device-memory layout invariants of internal/core,
// the package that models the FPGA engine's WIn/WOut memories (paper
// Tables II/III):
//
//  1. Data-block extents are produced only by the aligning InputBuilder.
//     Raw arithmetic on the layout fields IndexEntry.Offset/.Size and
//     TableDesc.IndexOff/.IndexLen — and any direct growth of the
//     DataMem/IndexMem regions — is confined to memlayout.go; everyone
//     else goes through the accessors so the 64 B/cycle AXI alignment
//     cannot be silently broken.
//  2. The MetaIn/MetaOut wire widths are declared as named package
//     constants whose values the analyzer validates against the paper's
//     layout (MetaIn: 4-byte header, 20-byte entries; MetaOut: 4-byte
//     header, 12 fixed bytes per entry), and the Meta encode/decode
//     functions may not use the bare magic numbers.
//  3. Every timing-relevant loop — one whose header or body touches
//     cycle/clock/busy quantities — must live in a function carrying the
//     //fcae:cycle-accounting directive, extending cycleflow (which only
//     sees arithmetic) to cover pure reads in loop conditions.
var DevMem = &Analyzer{
	Name: "devmem",
	Doc: "device-memory offsets only via the aligning builder in memlayout.go; " +
		"MetaIn/MetaOut widths as validated named constants; cycle loops under //fcae:cycle-accounting",
	Run: runDevMem,
}

// layoutFields are the extent-describing fields of the WIn image. Any
// arithmetic on them outside memlayout.go is a finding.
var layoutFields = map[string]map[string]bool{
	"IndexEntry": {"Offset": true, "Size": true},
	"TableDesc":  {"IndexOff": true, "IndexLen": true},
}

// memFields are the raw device-memory regions; only the builder appends
// to or reassigns them.
var memFields = map[string]map[string]bool{
	"InputImage": {"DataMem": true, "IndexMem": true},
}

// metaWidthConsts is the required named-constant layer over the paper's
// MetaIn/MetaOut encoding: header lengths and per-entry widths in bytes.
var metaWidthConsts = map[string]int64{
	"metaInHeaderLen":      4,         // count word
	"metaInEntryLen":       8 + 8 + 4, // srcA off, srcB off, block count
	"metaOutHeaderLen":     4,         // count word
	"metaOutEntryFixedLen": 4 + 8,     // key len + data len
}

func runDevMem(pass *Pass) {
	isCore := strings.HasSuffix(pass.Pkg.Path(), "internal/core")
	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if !(isCore && base == "memlayout.go") {
			checkLayoutArith(pass, f)
		}
		if isCore {
			checkMetaMagic(pass, f)
			checkCycleLoops(pass, f)
		}
	}
	if isCore {
		checkMetaConsts(pass)
	}
}

// checkLayoutArith flags raw offset arithmetic and region growth outside
// the builder.
func checkLayoutArith(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if !arithOp(n.Op) {
				return true
			}
			for _, op := range []ast.Expr{n.X, n.Y} {
				if _, field := coreFieldSel(pass, op, layoutFields); field != "" {
					pass.Reportf(op.Pos(),
						"raw arithmetic on device-memory layout field %s outside memlayout.go; extents come from the aligning InputBuilder (use its accessors)",
						field)
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if _, field := coreFieldSel(pass, lhs, memFields); field != "" {
						pass.Reportf(lhs.Pos(),
							"direct assignment to device memory region %s outside memlayout.go; regions are built only by the InputBuilder",
							field)
					}
				}
				return true
			}
			// Compound assignment (+=, <<=, ...) is arithmetic.
			for _, lhs := range n.Lhs {
				if _, field := coreFieldSel(pass, lhs, layoutFields); field != "" {
					pass.Reportf(lhs.Pos(),
						"raw arithmetic on device-memory layout field %s outside memlayout.go; extents come from the aligning InputBuilder (use its accessors)",
						field)
				}
				if _, field := coreFieldSel(pass, lhs, memFields); field != "" {
					pass.Reportf(lhs.Pos(),
						"direct growth of device memory region %s outside memlayout.go; regions are built only by the InputBuilder",
						field)
				}
			}
		case *ast.IncDecStmt:
			if _, field := coreFieldSel(pass, n.X, layoutFields); field != "" {
				pass.Reportf(n.X.Pos(),
					"raw arithmetic on device-memory layout field %s outside memlayout.go; extents come from the aligning InputBuilder (use its accessors)",
					field)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				if _, field := coreFieldSel(pass, n.Args[0], memFields); field != "" {
					pass.Reportf(n.Args[0].Pos(),
						"append to device memory region %s outside memlayout.go; regions are built only by the InputBuilder",
						field)
				}
			}
		}
		return true
	})
}

// coreFieldSel reports whether e (parens and conversions unwrapped) selects
// one of the given fields on an internal/core layout type; it returns the
// selector and "Type.field" on a match.
func coreFieldSel(pass *Pass, e ast.Expr, fields map[string]map[string]bool) (*ast.SelectorExpr, string) {
	e = ast.Unparen(e)
	for {
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			break
		}
		if tv, ok := pass.Info.Types[call.Fun]; !ok || !tv.IsType() {
			break
		}
		e = ast.Unparen(call.Args[0])
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	n := namedOf(pass.Info.TypeOf(sel.X))
	if n == nil || n.Obj().Pkg() == nil || !strings.HasSuffix(n.Obj().Pkg().Path(), "internal/core") {
		return nil, ""
	}
	set := fields[n.Obj().Name()]
	if set == nil || !set[sel.Sel.Name] {
		return nil, ""
	}
	return sel, n.Obj().Name() + "." + sel.Sel.Name
}

func arithOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.SHL, token.SHR, token.AND, token.OR, token.XOR, token.AND_NOT:
		return true
	}
	return false
}

// checkMetaConsts validates the required width constants against the
// paper's layout.
func checkMetaConsts(pass *Pass) {
	var anchor token.Pos
	if len(pass.Files) > 0 {
		anchor = pass.Files[0].Name.Pos()
	}
	for name, want := range metaWidthConsts {
		obj := pass.Pkg.Scope().Lookup(name)
		c, ok := obj.(*types.Const)
		if !ok {
			pass.Reportf(anchor, "package %s must declare const %s = %d (MetaIn/MetaOut wire width from the paper's layout)",
				pass.Pkg.Name(), name, want)
			continue
		}
		got, exact := constInt64(c)
		if !exact || got != want {
			pass.Reportf(c.Pos(), "const %s = %s does not match the paper's MetaIn/MetaOut layout (want %d)",
				name, c.Val().String(), want)
		}
	}
}

func constInt64(c *types.Const) (int64, bool) {
	v := c.Val()
	if v == nil {
		return 0, false
	}
	s := v.ExactString()
	n, err := strconv.ParseInt(s, 10, 64)
	return n, err == nil
}

// checkMetaMagic flags bare 20/12 integer literals in the Meta
// encode/decode functions — the entry widths must be spelled with the
// named constants so a layout change is made in exactly one place.
func checkMetaMagic(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !strings.Contains(fd.Name.Name, "Meta") {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.INT {
				return true
			}
			if lit.Value == "20" || lit.Value == "12" {
				pass.Reportf(lit.Pos(),
					"magic MetaIn/MetaOut entry width %s in %s; use the named layout constant (metaInEntryLen/metaOutEntryFixedLen)",
					lit.Value, fd.Name.Name)
			}
			return true
		})
	}
}

// checkCycleLoops requires //fcae:cycle-accounting on any function whose
// loops touch cycle-model quantities, even read-only.
func checkCycleLoops(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || hasCycleDirective(fd.Doc) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var loop ast.Node
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loop = n
			default:
				return true
			}
			if ident := firstCycleIdent(loop); ident != "" {
				pass.Reportf(loop.Pos(),
					"timing-relevant loop in %s touches %q but the function lacks the %s directive",
					fd.Name.Name, ident, cycleDirective)
				return false // one report per loop nest is enough
			}
			return true
		})
	}
}

// firstCycleIdent returns the first cycle-flavoured identifier (or field
// selector) inside n, or "".
func firstCycleIdent(n ast.Node) string {
	found := ""
	ast.Inspect(n, func(x ast.Node) bool {
		if found != "" {
			return false
		}
		if id, ok := x.(*ast.Ident); ok && cycleIdent.MatchString(id.Name) {
			found = id.Name
			return false
		}
		return true
	})
	return found
}
