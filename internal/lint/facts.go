package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The facts layer is what turns the suite from per-file syntax checks into
// whole-program analyses: a Module indexes every declared function of the
// loaded module, resolves static call targets, and lets analyzers build
// per-function summaries that compose across package boundaries (lockorder
// composes held-lock sets through calls; taint composes unchecked-bound
// parameter sinks). Dynamic dispatch — interface method calls, calls
// through stored function values — resolves through the type-set resolver
// in dyncall.go (Module.DynamicCallees): an interface call fans out to the
// concrete method of every instantiated module type implementing the
// interface, and a function-value call fans out to the named funcs and
// bound methods the assignment-flow pass saw stored into that slot. The
// union over-approximates any one call site, so analyzers that propagate
// "callee might do X" facts stay sound; the //fcae:impl-pure directive
// exempts implementations where the over-approximation would be noise.

// FuncInfo pairs a declared function with its body and owning package.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Name returns a diagnostic-friendly name: "pkg.Func" or "pkg.Type.Method".
func (fi *FuncInfo) Name() string {
	obj := fi.Obj
	name := obj.Name()
	if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
		if n := namedOf(recv.Type()); n != nil {
			name = n.Obj().Name() + "." + name
		}
	}
	if obj.Pkg() != nil {
		name = obj.Pkg().Name() + "." + name
	}
	return name
}

// Module is the shared facts framework: every type-checked package of the
// module plus a function index used to resolve static calls.
type Module struct {
	Pkgs []*Package
	Fset *token.FileSet

	funcs map[*types.Func]*FuncInfo
	order []*FuncInfo // deterministic iteration order (by position)
	dyn   *dynResolver
}

// BuildModule indexes the module's declared functions. Packages must come
// from one LoadModule call so type objects are shared.
func BuildModule(pkgs []*Package) *Module {
	m := &Module{Pkgs: pkgs, funcs: make(map[*types.Func]*FuncInfo)}
	if len(pkgs) > 0 {
		m.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				m.funcs[obj] = fi
				m.order = append(m.order, fi)
			}
		}
	}
	sort.Slice(m.order, func(i, j int) bool { return m.order[i].Decl.Pos() < m.order[j].Decl.Pos() })
	m.dyn = buildDynResolver(m)
	return m
}

// Funcs returns every declared function with a body, in file order.
func (m *Module) Funcs() []*FuncInfo { return m.order }

// FuncInfo returns the declaration facts for fn, or nil when fn is not a
// module function with a body (stdlib, interface method, external).
func (m *Module) FuncInfo(fn *types.Func) *FuncInfo { return m.funcs[fn] }

// StaticCallee resolves call to a module function when the call is direct:
// a plain function call, a package-qualified call, or a method call on a
// concrete receiver type. Interface dispatch and calls through function
// values return nil — use DynamicCallees for those.
func (m *Module) StaticCallee(info *types.Info, call *ast.CallExpr) *FuncInfo {
	fi := m.staticCalleeOf(info, call)
	if fi != nil {
		m.noteStaticEdge(call)
	}
	return fi
}

// staticCalleeOf is StaticCallee without the edge accounting, for use
// during resolver construction (before counters exist to be meaningful).
func (m *Module) staticCalleeOf(info *types.Info, call *ast.CallExpr) *FuncInfo {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified function
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	fi := m.funcs[fn]
	if fi == nil {
		return nil // not in module, or interface method without a body
	}
	// Interface methods share the declared *types.Func only on the
	// interface side; a Selection through an interface yields an object
	// with no body and is already filtered above.
	return fi
}

// ModulePass carries the whole module through one module-level analyzer.
type ModulePass struct {
	Module *Module

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding anchored at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Module.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportCat records a finding with a machine-readable category (the
// fcaelint -json "category" field).
func (p *ModulePass) ReportCat(pos token.Pos, category, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Module.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Category: category,
	})
}

// namedOf unwraps pointers to the defined type beneath t, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// nestedFuncLits returns every function literal anywhere inside body,
// including literals nested in other literals.
func nestedFuncLits(body *ast.BlockStmt) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})
	return lits
}
