package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ChanFlow enforces the channel hand-off discipline the dispatch layer's
// job queues depend on (paper §VI: the host keeps the device busy through
// bounded queues; a mis-owned close or a send racing a shutdown wedges or
// panics the scheduler). Four rules, each a class the compiler cannot
// check:
//
//  1. Single-owner close. The owner of a channel-typed struct field or
//     package-level channel is the function that make()s it; only the
//     owner — or a function whose doc comment declares
//     `//fcae:chan-owner <pkg.Type.field>` — may close it. Closing a
//     channel you did not create is how double-close and
//     send-on-closed panics are born.
//
//  2. Shutdown-aware worker sends. A send in a for-loop on a channel
//     field of a type that also carries a stop-style `chan struct{}`
//     field must sit in a `select` with a receive on a `chan struct{}`
//     (the stop/ctx case) or a `default` clause; a bare send keeps the
//     worker alive after Close and races send-after-close.
//
//  3. Directional fields. A bidirectional `chan T` field that the whole
//     module only ever sends to (or only receives from) should declare
//     the direction (`chan<- T` / `<-chan T`) so the compiler enforces
//     the hand-off. Fields that escape (aliased, passed along) are
//     skipped.
//
//  4. No blocking channel ops under a mutex. A send, blocking receive,
//     or default-less select while a sync.Mutex/RWMutex is held stalls
//     every other path into that lock — interprocedural through the
//     facts call graph via per-function summaries, the same way
//     lockorder composes held-lock sets (a call to a function that
//     blocks on a channel is reported at the call site when a lock is
//     held there).
var ChanFlow = &Analyzer{
	Name: "chanflow",
	Doc: "channel ownership/shutdown discipline: owner-only close (//fcae:chan-owner " +
		"declares extra holders), worker-loop sends select on stop, one-sided fields " +
		"declare a direction, no blocking channel ops while a mutex is held",
	RunModule: runChanFlow,
}

const chanOwnerDirective = "//fcae:chan-owner"

// chanDecl is one tracked channel declaration: a channel-typed struct
// field or a package-level channel variable.
type chanDecl struct {
	key   string // pkg.Type.field or pkg.name
	pos   token.Pos
	dir   types.ChanDir
	field bool
	// structHasStop marks fields of a struct that also carries a
	// stop-style chan struct{} field (rule 2's scope).
	structHasStop bool

	owners map[*FuncInfo]bool // functions that make() this channel
	sends  int                // includes close (send-side use)
	recvs  int
	escape bool // aliased/passed along: direction inference is off
	closes []chanClose
}

type chanClose struct {
	fn  *FuncInfo
	pos token.Pos
}

// walkParents is ast.Inspect with an ancestor stack: visit receives the
// chain of ancestors (innermost last) for every node; returning false
// skips the node's children.
func walkParents(root ast.Node, visit func(stack []ast.Node, n ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !visit(stack, n) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

func runChanFlow(pass *ModulePass) {
	m := pass.Module
	decls := collectChanDecls(m)

	// Phase 1: classify every use of a tracked channel, resolve owners,
	// and check rule 2 (whose evidence — the enclosing select — is local).
	for _, fi := range m.Funcs() {
		collectChanUses(pass, decls, fi)
	}

	// Rule 1: only the making function or a declared holder may close.
	holders := collectChanOwnerDirectives(pass, decls)
	for _, d := range sortedChanDecls(decls) {
		for _, cl := range d.closes {
			if len(d.owners) == 0 || d.owners[cl.fn] || holders[d.key][cl.fn] {
				continue
			}
			pass.ReportCat(cl.pos, "close-owner",
				"%s closes %s but %s makes it; only the owner (or a %s %s holder) may close",
				cl.fn.Name(), d.key, ownerNames(d.owners), chanOwnerDirective, d.key)
		}
	}

	// Rule 3: one-sided bidirectional fields should declare a direction.
	for _, d := range sortedChanDecls(decls) {
		if d.dir != types.SendRecv || d.escape || !d.field {
			continue
		}
		switch {
		case d.sends > 0 && d.recvs == 0:
			pass.ReportCat(d.pos, "direction",
				"%s is only ever sent to or closed; declare it send-only (chan<-) so the compiler enforces the hand-off", d.key)
		case d.recvs > 0 && d.sends == 0:
			pass.ReportCat(d.pos, "direction",
				"%s is only ever received from; declare it receive-only (<-chan) so the compiler enforces the hand-off", d.key)
		}
	}

	// Rule 4: blocking channel ops under a held mutex, interprocedural.
	runChanUnderLock(pass)
}

// collectChanDecls indexes channel-typed struct fields and package-level
// channel variables of every module package.
func collectChanDecls(m *Module) map[types.Object]*chanDecl {
	out := make(map[types.Object]*chanDecl)
	for _, pkg := range m.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			switch obj := scope.Lookup(name).(type) {
			case *types.TypeName:
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok {
					continue
				}
				hasStop := false
				for i := 0; i < st.NumFields(); i++ {
					if isStopChanField(st.Field(i)) {
						hasStop = true
						break
					}
				}
				for i := 0; i < st.NumFields(); i++ {
					f := st.Field(i)
					ch, ok := f.Type().Underlying().(*types.Chan)
					if !ok {
						continue
					}
					out[f] = &chanDecl{
						key:           pkg.Types.Name() + "." + named.Obj().Name() + "." + f.Name(),
						pos:           f.Pos(),
						dir:           ch.Dir(),
						field:         true,
						structHasStop: hasStop,
						owners:        make(map[*FuncInfo]bool),
					}
				}
			case *types.Var:
				ch, ok := obj.Type().Underlying().(*types.Chan)
				if !ok {
					continue
				}
				out[obj] = &chanDecl{
					key:    pkg.Types.Name() + "." + obj.Name(),
					pos:    obj.Pos(),
					dir:    ch.Dir(),
					owners: make(map[*FuncInfo]bool),
				}
			}
		}
	}
	return out
}

// isStopChanField reports whether f is a shutdown-signal field: a
// chan struct{} named like a stop channel.
func isStopChanField(f *types.Var) bool {
	switch f.Name() {
	case "stop", "quit", "done", "closing", "shutdown":
	default:
		return false
	}
	ch, ok := f.Type().Underlying().(*types.Chan)
	return ok && isEmptyStruct(ch.Elem())
}

func isEmptyStruct(t types.Type) bool {
	st, ok := t.Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// collectChanUses walks one declared function (function literals
// included, attributed to the declaration) classifying each reference to
// a tracked channel and checking rule 2 in place.
func collectChanUses(pass *ModulePass, decls map[types.Object]*chanDecl, fi *FuncInfo) {
	info := fi.Pkg.Info
	walkParents(fi.Decl.Body, func(stack []ast.Node, n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		d := decls[obj]
		if d == nil {
			return true
		}
		// The channel expression is the ident itself (package var,
		// composite-literal key) or the enclosing selector x.f.
		expr := ast.Node(id)
		top := len(stack) - 1
		if top >= 0 {
			if sel, ok := stack[top].(*ast.SelectorExpr); ok && sel.Sel == id {
				expr = sel
				top--
			}
		}
		for top >= 0 {
			if p, ok := stack[top].(*ast.ParenExpr); ok && p.X == expr {
				expr = p
				top--
				continue
			}
			break
		}
		if top < 0 {
			return true
		}
		switch parent := stack[top].(type) {
		case *ast.SendStmt:
			if parent.Chan == expr {
				d.sends++
				checkStopSelect(pass, info, d, stack[:top], parent)
			} else {
				d.escape = true // the channel value itself is being sent
			}
		case *ast.UnaryExpr:
			if parent.Op == token.ARROW && parent.X == expr {
				d.recvs++
			} else {
				d.escape = true
			}
		case *ast.RangeStmt:
			if parent.X == expr {
				d.recvs++
			} else {
				d.escape = true
			}
		case *ast.CallExpr:
			switch builtinName(info, parent) {
			case "close":
				d.sends++
				d.closes = append(d.closes, chanClose{fn: fi, pos: parent.Pos()})
			case "len", "cap":
				// Neutral: legal on any direction, says nothing about use.
			default:
				d.escape = true // passed to a function: aliases the channel
			}
		case *ast.AssignStmt:
			if assignedMake(info, parent, expr) {
				d.owners[fi] = true
			} else if exprInList(parent.Lhs, expr) {
				d.escape = true // overwritten with something other than make
			} else {
				d.escape = true // channel value copied out
			}
		case *ast.KeyValueExpr:
			if parent.Key == ast.Node(id) {
				if isMakeCall(info, parent.Value) {
					d.owners[fi] = true
				} else {
					d.escape = true
				}
			}
		case *ast.BinaryExpr:
			// nil comparison: neutral for direction purposes.
		case *ast.ValueSpec, *ast.Field:
			// The declaration itself.
		default:
			d.escape = true
		}
		return true
	})
}

// checkStopSelect implements rule 2 for one send: inside a for-loop, on a
// field of a stop-carrying type, the send must be a select case whose
// select also has a default or a receive on a chan struct{}. stack holds
// the send's ancestors, innermost (the CommClause, when there is one) last.
func checkStopSelect(pass *ModulePass, info *types.Info, d *chanDecl, stack []ast.Node, send *ast.SendStmt) {
	if !d.field || !d.structHasStop {
		return
	}
	inLoop := false
	for _, a := range stack {
		switch a.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			inLoop = true
		}
	}
	if !inLoop {
		return
	}
	// Is the send the comm of a select clause? The clause's ancestors are
	// [..., SelectStmt, BlockStmt (select body), CommClause].
	if len(stack) >= 3 {
		if cc, ok := stack[len(stack)-1].(*ast.CommClause); ok && cc.Comm == ast.Node(send) {
			if sel, ok := stack[len(stack)-3].(*ast.SelectStmt); ok && selectHasEscapeCase(info, sel) {
				return
			}
		}
	}
	pass.ReportCat(send.Pos(), "send-stop",
		"worker-loop send on %s must be a select case alongside a stop receive or default; a bare send races send-after-close on shutdown", d.key)
}

// selectHasEscapeCase reports whether sel can bail out of a blocked send:
// a default clause, or a receive case on a chan struct{} (stop or
// ctx.Done style).
func selectHasEscapeCase(info *types.Info, sel *ast.SelectStmt) bool {
	for _, s := range sel.Body.List {
		cc, ok := s.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default
		}
		var recvX ast.Expr
		switch c := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := ast.Unparen(c.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				recvX = u.X
			}
		case *ast.AssignStmt:
			if len(c.Rhs) == 1 {
				if u, ok := ast.Unparen(c.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					recvX = u.X
				}
			}
		}
		if recvX == nil {
			continue
		}
		if ch, ok := info.TypeOf(recvX).Underlying().(*types.Chan); ok && isEmptyStruct(ch.Elem()) {
			return true
		}
	}
	return false
}

// builtinName returns the name of the builtin being called, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

func isMakeCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && builtinName(info, call) == "make"
}

// assignedMake reports whether expr appears on the lhs of stmt with a
// make() call as its pairwise rhs.
func assignedMake(info *types.Info, stmt *ast.AssignStmt, expr ast.Node) bool {
	for i, lhs := range stmt.Lhs {
		if ast.Node(lhs) == expr && i < len(stmt.Rhs) && len(stmt.Lhs) == len(stmt.Rhs) {
			return isMakeCall(info, stmt.Rhs[i])
		}
	}
	return false
}

func exprInList(list []ast.Expr, expr ast.Node) bool {
	for _, e := range list {
		if ast.Node(e) == expr {
			return true
		}
	}
	return false
}

// collectChanOwnerDirectives parses //fcae:chan-owner <key> doc-comment
// directives into key -> holder set, reporting malformed or dangling ones.
func collectChanOwnerDirectives(pass *ModulePass, decls map[types.Object]*chanDecl) map[string]map[*FuncInfo]bool {
	known := make(map[string]bool, len(decls))
	for _, d := range decls {
		known[d.key] = true
	}
	holders := make(map[string]map[*FuncInfo]bool)
	for _, fi := range pass.Module.Funcs() {
		if fi.Decl.Doc == nil {
			continue
		}
		for _, c := range fi.Decl.Doc.List {
			if !strings.HasPrefix(c.Text, chanOwnerDirective) {
				continue
			}
			key := strings.TrimSpace(strings.TrimPrefix(c.Text, chanOwnerDirective))
			if key == "" {
				pass.ReportCat(c.Pos(), "directive",
					"malformed %s directive: want %q", chanOwnerDirective, chanOwnerDirective+" pkg.Type.field")
				continue
			}
			if !known[key] {
				pass.ReportCat(c.Pos(), "directive",
					"%s directive names unknown channel %q", chanOwnerDirective, key)
				continue
			}
			if holders[key] == nil {
				holders[key] = make(map[*FuncInfo]bool)
			}
			holders[key][fi] = true
		}
	}
	return holders
}

func sortedChanDecls(decls map[types.Object]*chanDecl) []*chanDecl {
	out := make([]*chanDecl, 0, len(decls))
	for _, d := range decls {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

func ownerNames(owners map[*FuncInfo]bool) string {
	var names []string
	for fi := range owners {
		names = append(names, fi.Name())
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// --- rule 4: blocking channel ops while a mutex is held ---------------------

// chanOp is one blocking channel operation or a static call made with the
// lexical lock context at that point.
type chanLockEvent struct {
	pos    token.Pos
	kind   int // clLock, clUnlock, clOp, clCall
	key    string
	what   string
	callee *FuncInfo
}

const (
	clLock = iota
	clUnlock
	clOp
	clCall
)

type chanLockBody struct {
	fi     *FuncInfo // nil for function literals
	name   string
	blocks bool // performs a blocking channel op directly
	// ops/calls carry the held-lock snapshot for reporting.
	ops []struct {
		pos  token.Pos
		what string
		held []string
	}
	calls []struct {
		pos    token.Pos
		callee *FuncInfo
		held   []string
	}
}

func runChanUnderLock(pass *ModulePass) {
	m := pass.Module
	var bodies []*chanLockBody
	var declBodies []*chanLockBody
	for _, fi := range m.Funcs() {
		b := sweepChanLockBody(m, fi.Pkg, fi.Decl.Body, lockEntryKey(fi), fi.Name())
		b.fi = fi
		bodies = append(bodies, b)
		declBodies = append(declBodies, b)
		// //fcae:impl-pure claims the body never blocks on a channel; a
		// direct blocking op inside it makes the directive the bug.
		if fi.ImplPure() && len(b.ops) > 0 {
			pass.ReportCat(b.ops[0].pos, "chan-under-lock",
				"%s is marked %s but performs a %s", fi.Name(), implPureDirective, b.ops[0].what)
		}
		for _, lit := range nestedFuncLits(fi.Decl.Body) {
			lb := sweepChanLockBody(m, fi.Pkg, lit.Body, "", "function literal in "+fi.Name())
			bodies = append(bodies, lb)
		}
	}

	// Fixpoint: blocking propagates up the static call graph.
	blocking := make(map[*FuncInfo]bool, len(declBodies))
	for _, b := range declBodies {
		blocking[b.fi] = b.blocks
	}
	for changed := true; changed; {
		changed = false
		for _, b := range declBodies {
			if blocking[b.fi] {
				continue
			}
			for _, c := range b.calls {
				if blocking[c.callee] {
					blocking[b.fi] = true
					changed = true
					break
				}
			}
		}
	}

	seen := make(map[token.Pos]bool)
	for _, b := range bodies {
		for _, op := range b.ops {
			if len(op.held) > 0 && !seen[op.pos] {
				seen[op.pos] = true
				pass.ReportCat(op.pos, "chan-under-lock",
					"%s in %s while %s is held: a channel wait under a mutex stalls every path into the lock",
					op.what, b.name, strings.Join(op.held, ", "))
			}
		}
		for _, c := range b.calls {
			if len(c.held) > 0 && blocking[c.callee] && !seen[c.pos] {
				seen[c.pos] = true
				pass.ReportCat(c.pos, "chan-under-lock",
					"call to %s in %s while %s is held: the callee performs a blocking channel operation",
					c.callee.Name(), b.name, strings.Join(c.held, ", "))
			}
		}
	}
}

// sweepChanLockBody walks one body lexically, recording lock transitions,
// blocking channel operations and static calls with the held set at each.
func sweepChanLockBody(m *Module, pkg *Package, body *ast.BlockStmt, entryKey, name string) *chanLockBody {
	var events []chanLockEvent
	deferred := make(map[*ast.CallExpr]bool)
	walkParents(body, func(stack []ast.Node, n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate body
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.SendStmt:
			if !isSelectComm(stack, n) {
				events = append(events, chanLockEvent{pos: n.Pos(), kind: clOp, what: "channel send"})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !isSelectComm(stack, n) {
				events = append(events, chanLockEvent{pos: n.Pos(), kind: clOp, what: "channel receive"})
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				events = append(events, chanLockEvent{pos: n.Pos(), kind: clOp, what: "blocking select"})
			}
		case *ast.RangeStmt:
			if _, ok := pkg.Info.TypeOf(n.X).Underlying().(*types.Chan); ok {
				events = append(events, chanLockEvent{pos: n.Pos(), kind: clOp, what: "range over channel"})
			}
		case *ast.CallExpr:
			if deferred[n] {
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && isSyncMutex(pkg.Info.TypeOf(sel.X)) {
				key := lockKeyOf(pkg, sel.X)
				if key == "" {
					return true
				}
				switch {
				case lockMethods[sel.Sel.Name]:
					events = append(events, chanLockEvent{pos: n.Pos(), kind: clLock, key: key})
				case unlockMethods[sel.Sel.Name]:
					events = append(events, chanLockEvent{pos: n.Pos(), kind: clUnlock, key: key})
				}
				return true
			}
			if callee := m.StaticCallee(pkg.Info, n); callee != nil {
				events = append(events, chanLockEvent{pos: n.Pos(), kind: clCall, callee: callee})
			} else {
				// Interface dispatch / function-value call: any resolved
				// implementation may block, except those declared
				// //fcae:impl-pure.
				for _, dc := range m.DynamicCallees(pkg.Info, n) {
					if dc.ImplPure() {
						continue
					}
					events = append(events, chanLockEvent{pos: n.Pos(), kind: clCall, callee: dc})
				}
			}
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	b := &chanLockBody{name: name}
	held := make(map[string]int)
	if entryKey != "" {
		held[entryKey] = 1
	}
	positives := func() []string {
		var out []string
		for k, c := range held {
			if c > 0 {
				out = append(out, k)
			}
		}
		sort.Strings(out)
		return out
	}
	for _, e := range events {
		switch e.kind {
		case clLock:
			held[e.key]++
		case clUnlock:
			held[e.key]--
		case clOp:
			b.blocks = true
			b.ops = append(b.ops, struct {
				pos  token.Pos
				what string
				held []string
			}{e.pos, e.what, positives()})
		case clCall:
			b.calls = append(b.calls, struct {
				pos    token.Pos
				callee *FuncInfo
				held   []string
			}{e.pos, e.callee, positives()})
		}
	}
	return b
}

// isSelectComm reports whether n is (inside) the comm statement of a
// select clause — the op the select itself arbitrates.
func isSelectComm(stack []ast.Node, n ast.Node) bool {
	child := n
	for i := len(stack) - 1; i >= 0; i-- {
		switch a := stack[i].(type) {
		case *ast.CommClause:
			return a.Comm == child
		case *ast.BlockStmt, *ast.FuncLit:
			return false
		}
		child = stack[i]
	}
	return false
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, s := range sel.Body.List {
		if cc, ok := s.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
