package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fcae/internal/lint"
)

// checkFixture writes files into a throwaway module, loads it, and runs a
// single analyzer over it. Map keys are module-relative paths.
func checkFixture(t *testing.T, a *lint.Analyzer, files map[string]string) []lint.Diagnostic {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := lint.LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	return lint.Check(pkgs, []*lint.Analyzer{a})
}

func wantFindings(t *testing.T, diags []lint.Diagnostic, substrs ...string) {
	t.Helper()
	if len(diags) != len(substrs) {
		t.Fatalf("got %d findings, want %d:\n%s", len(diags), len(substrs), render(diags))
	}
	for i, sub := range substrs {
		if !strings.Contains(diags[i].Message, sub) {
			t.Errorf("finding %d = %q, want substring %q", i, diags[i].Message, sub)
		}
	}
}

func wantClean(t *testing.T, diags []lint.Diagnostic) {
	t.Helper()
	if len(diags) != 0 {
		t.Fatalf("got %d findings on good fixture, want 0:\n%s", len(diags), render(diags))
	}
}

func render(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

func TestMutexGuardBad(t *testing.T) {
	t.Parallel()
	diags := checkFixture(t, lint.MutexGuard, map[string]string{
		"p.go": `package p

import "sync"

type store struct {
	cfg int // before mu: immutable after construction
	mu  sync.Mutex
	n   int
	m   map[string]int
}

func (s *store) Bump() { s.n++ }

func (s *store) Peek() (int, int) { return s.cfg, s.n }
`,
	})
	wantFindings(t, diags,
		`store.Bump accesses mu-guarded field "n"`,
		`store.Peek accesses mu-guarded field "n"`,
	)
}

func TestMutexGuardGood(t *testing.T) {
	t.Parallel()
	diags := checkFixture(t, lint.MutexGuard, map[string]string{
		"p.go": `package p

import "sync"

type store struct {
	cfg int
	mu  sync.RWMutex
	n   int
}

func (s *store) Bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

func (s *store) Read() int {
	s.mu.RLock()
	return s.n
}

func (s *store) bumpLocked() { s.n++ }

func (s *store) Cfg() int { return s.cfg }

type plain struct{ n int }

func (p *plain) Bump() { p.n++ }
`,
	})
	wantClean(t, diags)
}

func TestObsCallbackBad(t *testing.T) {
	t.Parallel()
	diags := checkFixture(t, lint.ObsCallback, map[string]string{
		"p.go": `package p

import "sync"

type Event struct{}

type EventListener interface {
	FlushBegin(Event)
	FlushEnd(Event)
}

type db struct {
	mu       sync.Mutex
	listener EventListener
}

func (d *db) underLock() {
	d.mu.Lock()
	d.listener.FlushBegin(Event{})
	d.mu.Unlock()
}

// A deferred Unlock runs at return; the call is still under the lock.
func (d *db) deferredUnlock() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.listener.FlushEnd(Event{})
}

// The *Locked suffix declares the caller holds mu on entry.
func (d *db) emitLocked() {
	d.listener.FlushBegin(Event{})
}
`,
	})
	wantFindings(t, diags,
		"underLock invokes EventListener method FlushBegin while mu is held",
		"deferredUnlock invokes EventListener method FlushEnd while mu is held",
		"emitLocked invokes EventListener method FlushBegin while mu is held",
	)
}

func TestObsCallbackGood(t *testing.T) {
	t.Parallel()
	diags := checkFixture(t, lint.ObsCallback, map[string]string{
		"p.go": `package p

import "sync"

type Event struct{}

type EventListener interface {
	FlushBegin(Event)
	FlushEnd(Event)
}

type db struct {
	mu       sync.Mutex
	evMu     sync.Mutex
	listener EventListener
	pending  []func(EventListener)
}

// The sanctioned pattern: sequence under mu, deliver after Unlock. The
// queued closure is a fresh body — listener calls inside it are legal even
// though the literal appears while mu is held.
func (d *db) queueAndDrain() {
	d.mu.Lock()
	ev := Event{}
	d.pending = append(d.pending, func(l EventListener) { l.FlushBegin(ev) })
	batch := d.pending
	d.pending = nil
	d.mu.Unlock()
	for _, fn := range batch {
		fn(d.listener)
	}
}

// Calling the listener after a visible Unlock is fine, as is holding a
// differently-named mutex (evMu serializes delivery by design).
func (d *db) deliver() {
	d.evMu.Lock()
	defer d.evMu.Unlock()
	d.mu.Lock()
	ev := Event{}
	d.mu.Unlock()
	d.listener.FlushEnd(ev)
}

// No mutex in scope at all.
func emit(l EventListener) { l.FlushBegin(Event{}) }

// Re-acquiring after delivery keeps later queue appends legal.
func (d *db) relock() {
	d.mu.Lock()
	d.mu.Unlock()
	d.listener.FlushBegin(Event{})
	d.mu.Lock()
	d.pending = nil
	d.mu.Unlock()
}
`,
	})
	wantClean(t, diags)
}

func TestErrWrapBad(t *testing.T) {
	t.Parallel()
	diags := checkFixture(t, lint.ErrWrap, map[string]string{
		"p.go": `package p

import "fmt"

type codedErr struct{ code int }

func (e *codedErr) Error() string { return "coded" }

func open(name string) error { return nil }

func bad(name string) error {
	if err := open(name); err != nil {
		return fmt.Errorf("open %s: %v", name, err)
	}
	return fmt.Errorf("coded: %s", &codedErr{1})
}
`,
	})
	wantFindings(t, diags,
		"error err formatted into fmt.Errorf without %w",
		"error &codedErr{…} formatted into fmt.Errorf without %w",
	)
}

func TestErrWrapGood(t *testing.T) {
	t.Parallel()
	diags := checkFixture(t, lint.ErrWrap, map[string]string{
		"p.go": `package p

import "fmt"

func open(name string) error { return nil }

func good(name string, n int) error {
	if err := open(name); err != nil {
		return fmt.Errorf("open %s: %w", name, err)
	}
	return fmt.Errorf("bad count %d for %s", n, name)
}
`,
	})
	wantClean(t, diags)
}

func TestBufAliasBad(t *testing.T) {
	t.Parallel()
	diags := checkFixture(t, lint.BufAlias, map[string]string{
		"p.go": `package p

type iter struct{ k, v []byte }

func (i *iter) Key() []byte   { return i.k }
func (i *iter) Value() []byte { return i.v }
func (i *iter) Next()         {}

type holder struct{ k []byte }

func storeField(it *iter, h *holder) { h.k = it.Key() }

func returnRaw(it *iter) []byte { return it.Value() }

func appendElem(it *iter, s [][]byte) [][]byte { return append(s, it.Key()) }

func useAfterNext(it *iter) int {
	k := it.Key()
	it.Next()
	return len(k)
}
`,
	})
	wantFindings(t, diags,
		"view stored into field h.k",
		"returning raw it.Value()",
		"view appended as an element",
		"k read after it.Next/Prev",
	)
}

func TestBufAliasGood(t *testing.T) {
	t.Parallel()
	diags := checkFixture(t, lint.BufAlias, map[string]string{
		"p.go": `package p

type iter struct{ k, v []byte }

func (i *iter) Key() []byte   { return i.k }
func (i *iter) Value() []byte { return i.v }
func (i *iter) Next()         {}
func (i *iter) Valid() bool   { return len(i.k) > 0 }

type holder struct{ k []byte }

// Copying into an owned buffer is the sanctioned pattern.
func storeCopy(it *iter, h *holder) { h.k = append(h.k[:0], it.Key()...) }

// Forwarding iterators keep the documented view lifetime.
type wrap struct{ it *iter }

func (w *wrap) Key() []byte   { return w.it.Key() }
func (w *wrap) Value() []byte { return w.it.Value() }
func (w *wrap) Next()         { w.it.Next() }

// The canonical scan loop: the view never outlives an iteration because
// the post-statement Next precedes the body in source order.
func scan(it *iter) int {
	n := 0
	for ; it.Valid(); it.Next() {
		k := it.Key()
		n += len(k)
	}
	return n
}

// Re-binding the local after Next starts a fresh view.
func rebind(it *iter) int {
	k := it.Key()
	n := len(k)
	it.Next()
	k = it.Key()
	return n + len(k)
}

// Transient use inside an expression is fine.
func transient(it *iter) int { return len(it.Key()) }
`,
	})
	wantClean(t, diags)
}

func TestUncheckedCloseBad(t *testing.T) {
	t.Parallel()
	diags := checkFixture(t, lint.UncheckedClose, map[string]string{
		"p.go": `package p

type file struct{}

func (f *file) Close() error { return nil }
func (f *file) Flush() error { return nil }
func (f *file) Sync() error  { return nil }

func bad(f *file) {
	f.Flush()
	f.Sync()
	f.Close()
}
`,
	})
	wantFindings(t, diags,
		"f.Flush() error is silently dropped",
		"f.Sync() error is silently dropped",
		"f.Close() error is silently dropped",
	)
}

func TestUncheckedCloseGood(t *testing.T) {
	t.Parallel()
	diags := checkFixture(t, lint.UncheckedClose, map[string]string{
		"p.go": `package p

type file struct{}

func (f *file) Close() error { return nil }

type quiet struct{}

func (q *quiet) Close() {}

func handled(f *file) error { return f.Close() }

func acknowledged(f *file) { _ = f.Close() }

func deferred(f *file) { defer f.Close() }

func voidClose(q *quiet) { q.Close() }
`,
	})
	wantClean(t, diags)
}

func TestCycleFlowBad(t *testing.T) {
	t.Parallel()
	diags := checkFixture(t, lint.CycleFlow, map[string]string{
		"internal/core/p.go": `package core

type stats struct{ kernelCycles uint64 }

func bump(s *stats, n uint64) {
	s.kernelCycles += n
}

func double(cycles uint64) uint64 {
	return cycles * 2
}

func tick() uint64 {
	busy := uint64(0)
	busy++
	return busy
}
`,
	})
	if len(diags) != 3 {
		t.Fatalf("got %d findings, want 3:\n%s", len(diags), render(diags))
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "//fcae:cycle-accounting") {
			t.Errorf("finding %q should point at the directive", d.Message)
		}
	}
}

func TestCycleFlowGood(t *testing.T) {
	t.Parallel()
	diags := checkFixture(t, lint.CycleFlow, map[string]string{
		"internal/core/p.go": `package core

type stats struct{ kernelCycles uint64 }

// bump charges n device cycles to the kernel counter.
//
//fcae:cycle-accounting
func bump(s *stats, n uint64) {
	s.kernelCycles += n
}

// Reading a counter without arithmetic is always allowed.
func read(s *stats) uint64 { return s.kernelCycles }
`,
		// Outside internal/core the analyzer is silent entirely.
		"other.go": `package fixture

func free(cycles uint64) uint64 { return cycles * 2 }
`,
	})
	wantClean(t, diags)
}

// TestRepoClean is the acceptance gate: the production tree must carry
// zero findings. It runs the full suite exactly as cmd/fcaelint does.
func TestRepoClean(t *testing.T) {
	t.Parallel()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	diags := lint.Check(pkgs, lint.Analyzers())
	if len(diags) != 0 {
		t.Fatalf("fcaelint found %d issue(s) in the repo:\n%s", len(diags), render(diags))
	}
}
