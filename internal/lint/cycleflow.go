package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// CycleFlow keeps the timing model honest. The simulated FPGA engine in
// internal/core derives every latency figure from cycle counters, and
// those counters must only change inside the accounting helpers that
// encode the paper's pipeline model (stage periods, bottleneck
// initiation interval, block-switch stalls). Ad-hoc arithmetic on a
// cycle/clock/busy quantity anywhere else drifts the model away from
// the published numbers without failing any test.
//
// A function that legitimately performs cycle accounting carries the
// directive comment `//fcae:cycle-accounting` in its doc comment; all
// other functions in internal/core may read cycle fields but not
// compute with them.
var CycleFlow = &Analyzer{
	Name: "cycleflow",
	Doc: "cycle-counter arithmetic in internal/core is restricted to functions " +
		"marked //fcae:cycle-accounting",
	Run: runCycleFlow,
}

const cycleDirective = "//fcae:cycle-accounting"

var cycleIdent = regexp.MustCompile(`(?i)cycle|clock|busy`)

func runCycleFlow(pass *Pass) {
	if !strings.HasSuffix(pass.Pkg.Path(), "internal/core") {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasCycleDirective(fd.Doc) {
				continue
			}
			checkCycleFlow(pass, fd)
		}
	}
}

func hasCycleDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), cycleDirective) {
			return true
		}
	}
	return false
}

func checkCycleFlow(pass *Pass, fd *ast.FuncDecl) {
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, what string) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		pass.Reportf(pos,
			"%s in %s computes with a cycle quantity outside an accounting helper "+
				"(move it into a //fcae:cycle-accounting function)",
			what, fd.Name.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
				if name := cycleOperand(n.X); name != "" {
					report(n.Pos(), "arithmetic on "+name)
				} else if name := cycleOperand(n.Y); name != "" {
					report(n.Pos(), "arithmetic on "+name)
				}
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN, token.REM_ASSIGN:
				for _, lhs := range n.Lhs {
					if name := cycleOperand(lhs); name != "" {
						report(n.Pos(), "compound assignment to "+name)
						break
					}
				}
				for _, rhs := range n.Rhs {
					if name := cycleOperand(rhs); name != "" {
						report(n.Pos(), "compound assignment using "+name)
						break
					}
				}
			}
		case *ast.IncDecStmt:
			if name := cycleOperand(n.X); name != "" {
				report(n.Pos(), "increment/decrement of "+name)
			}
		}
		return true
	})
}

// cycleOperand returns the name of a cycle-flavoured identifier directly
// naming the operand (an ident or the selected field of a selector
// chain), or "" when the operand is not a cycle quantity. Function names
// in call position are not operands.
func cycleOperand(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if cycleIdent.MatchString(e.Name) {
			return e.Name
		}
	case *ast.SelectorExpr:
		if cycleIdent.MatchString(e.Sel.Name) {
			return e.Sel.Name
		}
	case *ast.CallExpr:
		// The result of a call is fine to pass around; computing with it
		// is what the binary-expression walk already catches one level up,
		// and the callee name itself is not an operand.
		return ""
	}
	return ""
}
