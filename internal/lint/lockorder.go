package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the module's lock-acquisition graph and reports
// ordering violations. An edge A -> B means some path acquires B while A
// is held; a cycle in the graph (including the two-edge cycle formed when
// code acquires locks against a documented `//fcae:lock-order A -> B`
// directive) is a potential deadlock and is reported at each offending
// acquisition site.
//
// The analysis is interprocedural via the facts framework: each function
// gets a summary of the acquisitions it performs — directly or through
// the static calls in its body — together with the locks it holds and the
// caller-held locks it has net-released at that point. Summaries compose
// through the call graph to a fixpoint, so `db.mu.Lock(); db.flush()`
// where flush acquires vs.mu yields the edge DB.mu -> VersionSet.mu even
// though the two acquisitions live in different packages.
//
// Lock identity is `pkg.Type.field` for struct-field mutexes (the repo
// convention: one lock instance class per field) and `pkg.name` for
// variable mutexes. Held state is tracked lexically in source order, the
// same approximation obscallback uses: a deferred Unlock does not clear
// the state, deferred calls are ignored (they run at return), function
// literals are separate not-held bodies, and a method named *Locked
// starts with its receiver's mu held. The release set is what keeps the
// store's unlock-then-relock windows (makeRoomForWrite, flushMem) from
// reading as recursive acquisition: a callee's net-released locks cancel
// the caller's held set during composition.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "lock acquisitions must not cycle; //fcae:lock-order A -> B declares " +
		"the documented order and acquisitions contradicting it are reported",
	RunModule: runLockOrder,
}

const lockOrderDirective = "//fcae:lock-order"

// lockAcq is one acquisition fact: key is acquired while held are held,
// after the enclosing call chain net-released rel (caller locks that are
// no longer held when this acquisition runs).
type lockAcq struct {
	key  string
	held []string // sorted
	rel  []string // sorted
	pos  token.Pos
	fn   string // function lexically containing the Lock call
}

// lockCall is a static call made with the given lexical lock context.
type lockCall struct {
	callee *FuncInfo
	held   []string
	rel    []string
}

// loBody is one analyzed body: a declared function or a function literal.
type loBody struct {
	fi    *FuncInfo // nil for function literals
	name  string
	acqs  []lockAcq
	calls []lockCall
}

type loEdge struct {
	from, to string
	pos      token.Pos
	fn       string
	declared bool
}

func runLockOrder(pass *ModulePass) {
	m := pass.Module
	var decls []*loBody
	var lits []*loBody
	for _, fi := range m.Funcs() {
		b := sweepLockBody(m, fi.Pkg, fi.Decl.Body, lockEntryKey(fi), fi.Name())
		b.fi = fi
		decls = append(decls, b)
		// //fcae:impl-pure claims the body is lock-free; a direct
		// acquisition inside it invalidates the exemption everywhere the
		// dynamic resolver honored it, so the directive itself is the bug.
		if fi.ImplPure() && len(b.acqs) > 0 {
			pass.Reportf(b.acqs[0].pos, "%s is marked %s but acquires %s", fi.Name(), implPureDirective, b.acqs[0].key)
		}
		for _, lit := range nestedFuncLits(fi.Decl.Body) {
			lb := sweepLockBody(m, fi.Pkg, lit.Body, "", "function literal in "+fi.Name())
			lits = append(lits, lb)
		}
	}

	// Fixpoint over declared functions: a summary is the function's own
	// acquisitions plus the composed summaries of its static callees.
	// Records deduplicate on (key, held, rel), so the sets grow
	// monotonically and the iteration terminates.
	full := make(map[*FuncInfo][]lockAcq, len(decls))
	for _, b := range decls {
		full[b.fi] = dedupeAcqs(b.acqs)
	}
	for changed := true; changed; {
		changed = false
		for _, b := range decls {
			recs := composeLockBody(b, full)
			if len(recs) != len(full[b.fi]) {
				full[b.fi] = recs
				changed = true
			}
		}
	}
	// Function literals are never static call targets, so one composition
	// pass over the final summaries suffices.
	var all [][]lockAcq
	for _, b := range decls {
		all = append(all, full[b.fi])
	}
	for _, b := range lits {
		all = append(all, composeLockBody(b, full))
	}

	// Collapse the acquisition facts into a graph.
	edges := make(map[[2]string]*loEdge)
	reportedRec := make(map[token.Pos]bool)
	for _, recs := range all {
		for _, r := range recs {
			for _, h := range r.held {
				if h == r.key {
					if !reportedRec[r.pos] {
						reportedRec[r.pos] = true
						pass.Reportf(r.pos, "%s acquired in %s while already held (recursive locking deadlocks)", r.key, r.fn)
					}
					continue
				}
				k := [2]string{h, r.key}
				if edges[k] == nil {
					edges[k] = &loEdge{from: h, to: r.key, pos: r.pos, fn: r.fn}
				}
			}
		}
	}
	declared := collectLockDirectives(pass)
	for _, d := range declared {
		k := [2]string{d.from, d.to}
		if edges[k] == nil {
			edges[k] = d
		}
	}

	// Any edge inside a non-trivial strongly connected component closes a
	// cycle. Detected edges are reported at the acquisition site; declared
	// edges only when the cycle is formed purely by directives.
	sortedEdges := make([]*loEdge, 0, len(edges))
	for _, e := range edges {
		sortedEdges = append(sortedEdges, e)
	}
	sort.Slice(sortedEdges, func(i, j int) bool {
		if sortedEdges[i].from != sortedEdges[j].from {
			return sortedEdges[i].from < sortedEdges[j].from
		}
		return sortedEdges[i].to < sortedEdges[j].to
	})
	scc := lockSCC(sortedEdges)
	inCycle := func(e *loEdge) bool {
		return scc[e.from] == scc[e.to]
	}
	cycleHasDetected := make(map[int]bool)
	for _, e := range sortedEdges {
		if inCycle(e) && !e.declared {
			cycleHasDetected[scc[e.from]] = true
		}
	}
	for _, e := range sortedEdges {
		if !inCycle(e) {
			continue
		}
		cycle := lockCyclePath(sortedEdges, e, scc)
		if e.declared {
			if !cycleHasDetected[scc[e.from]] {
				pass.Reportf(e.pos, "declared lock-order edge %s -> %s participates in a cycle: %s", e.from, e.to, cycle)
			}
			continue
		}
		pass.Reportf(e.pos, "lock-order violation: %s acquired in %s while %s is held, completing cycle %s", e.to, e.fn, e.from, cycle)
	}
}

// sweepLockBody walks one body lexically and records its own lock
// transitions and static calls with the lock context at each point.
func sweepLockBody(m *Module, pkg *Package, body *ast.BlockStmt, entryKey, name string) *loBody {
	const (
		loLock = iota
		loUnlock
		loCall
	)
	type loEvent struct {
		pos    token.Pos
		kind   int
		key    string
		callee *FuncInfo
	}
	var events []loEvent
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own body
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.CallExpr:
			if deferred[n] {
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && isSyncMutex(pkg.Info.TypeOf(sel.X)) {
				key := lockKeyOf(pkg, sel.X)
				if key == "" {
					return true
				}
				switch {
				case lockMethods[sel.Sel.Name]:
					events = append(events, loEvent{pos: n.Pos(), kind: loLock, key: key})
				case unlockMethods[sel.Sel.Name]:
					events = append(events, loEvent{pos: n.Pos(), kind: loUnlock, key: key})
				}
				return true
			}
			if callee := m.StaticCallee(pkg.Info, n); callee != nil {
				events = append(events, loEvent{pos: n.Pos(), kind: loCall, callee: callee})
			} else {
				// Interface dispatch / function-value call: the acquisition
				// facts of every possible concrete callee apply, except
				// implementations marked //fcae:impl-pure.
				for _, dc := range m.DynamicCallees(pkg.Info, n) {
					if dc.ImplPure() {
						continue
					}
					events = append(events, loEvent{pos: n.Pos(), kind: loCall, callee: dc})
				}
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	b := &loBody{name: name}
	held := make(map[string]int)
	if entryKey != "" {
		held[entryKey] = 1
	}
	positives := func() []string {
		var out []string
		for k, c := range held {
			if c > 0 {
				out = append(out, k)
			}
		}
		sort.Strings(out)
		return out
	}
	negatives := func() []string {
		var out []string
		for k, c := range held {
			if c < 0 {
				out = append(out, k)
			}
		}
		sort.Strings(out)
		return out
	}
	for _, e := range events {
		switch e.kind {
		case loLock:
			b.acqs = append(b.acqs, lockAcq{key: e.key, held: positives(), rel: negatives(), pos: e.pos, fn: name})
			held[e.key]++
		case loUnlock:
			held[e.key]--
		case loCall:
			b.calls = append(b.calls, lockCall{callee: e.callee, held: positives(), rel: negatives()})
		}
	}
	return b
}

// composeLockBody merges a body's local acquisitions with its callees'
// summaries: a callee acquisition of a with held h and release r, reached
// while the caller holds H having net-released R, becomes an acquisition
// of a with held (H − r) ∪ h and release R ∪ r. The subtraction is what
// recognizes "callee unlocks the caller's mutex before relocking it".
func composeLockBody(b *loBody, full map[*FuncInfo][]lockAcq) []lockAcq {
	recs := append([]lockAcq(nil), b.acqs...)
	for _, c := range b.calls {
		for _, r := range full[c.callee] {
			heldEff := unionStrings(subtractStrings(c.held, r.rel), r.held)
			relEff := unionStrings(c.rel, r.rel)
			recs = append(recs, lockAcq{key: r.key, held: heldEff, rel: relEff, pos: r.pos, fn: r.fn})
		}
	}
	return dedupeAcqs(recs)
}

func dedupeAcqs(recs []lockAcq) []lockAcq {
	seen := make(map[string]bool, len(recs))
	out := recs[:0]
	for _, r := range recs {
		k := r.key + "|" + strings.Join(r.held, ",") + "|" + strings.Join(r.rel, ",")
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

func subtractStrings(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	drop := make(map[string]bool, len(b))
	for _, s := range b {
		drop[s] = true
	}
	var out []string
	for _, s := range a {
		if !drop[s] {
			out = append(out, s)
		}
	}
	return out
}

func unionStrings(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, s := range a {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// lockEntryKey returns the lock held on entry for *Locked methods: the
// receiver type's mu field, per the mutexguard convention.
func lockEntryKey(fi *FuncInfo) string {
	if !strings.HasSuffix(fi.Obj.Name(), "Locked") {
		return ""
	}
	recv := fi.Obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	n := namedOf(recv.Type())
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "mu" && isSyncMutex(f.Type()) {
			return n.Obj().Pkg().Name() + "." + n.Obj().Name() + ".mu"
		}
	}
	return ""
}

// lockKeyOf names the lock instance class denoted by the mutex expression
// e: pkg.Type.field for struct fields, pkg.name for variables. Returns ""
// when the expression has no stable name (skip the event).
func lockKeyOf(pkg *Package, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if n := namedOf(pkg.Info.TypeOf(x.X)); n != nil && n.Obj().Pkg() != nil {
			return n.Obj().Pkg().Name() + "." + n.Obj().Name() + "." + x.Sel.Name
		}
		return pkg.Types.Name() + "." + x.Sel.Name
	case *ast.Ident:
		return pkg.Types.Name() + "." + x.Name
	}
	return ""
}

// collectLockDirectives parses //fcae:lock-order A -> B comments.
func collectLockDirectives(pass *ModulePass) []*loEdge {
	var out []*loEdge
	for _, pkg := range pass.Module.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, lockOrderDirective) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(c.Text, lockOrderDirective))
					parts := strings.Split(rest, "->")
					if len(parts) != 2 || strings.TrimSpace(parts[0]) == "" || strings.TrimSpace(parts[1]) == "" {
						pass.Reportf(c.Pos(), "malformed %s directive: want %q", lockOrderDirective, lockOrderDirective+" pkg.Type.mu -> pkg.Type.mu")
						continue
					}
					out = append(out, &loEdge{
						from:     strings.TrimSpace(parts[0]),
						to:       strings.TrimSpace(parts[1]),
						pos:      c.Pos(),
						declared: true,
					})
				}
			}
		}
	}
	return out
}

// lockSCC computes strongly connected components (Tarjan) and returns a
// component id per node; nodes in the same non-trivial component are
// mutually reachable. Trivial single-node components get unique ids, so
// scc[a] == scc[b] for a != b implies a cycle through both.
func lockSCC(edges []*loEdge) map[string]int {
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, ncomp := 0, 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
	}
	for _, n := range order {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return comp
}

// lockCyclePath renders the cycle an in-SCC edge closes: a shortest path
// from e.to back to e.from through the component, prefixed with the edge.
func lockCyclePath(edges []*loEdge, e *loEdge, scc map[string]int) string {
	adj := make(map[string][]string)
	for _, x := range edges {
		if scc[x.from] == scc[e.from] && scc[x.to] == scc[e.from] {
			adj[x.from] = append(adj[x.from], x.to)
		}
	}
	// BFS from e.to to e.from.
	prev := map[string]string{e.to: e.to}
	queue := []string{e.to}
	for len(queue) > 0 && prev[e.from] == "" {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if _, seen := prev[w]; !seen {
				prev[w] = v
				queue = append(queue, w)
			}
		}
	}
	path := []string{e.from, e.to}
	if _, ok := prev[e.from]; ok && e.from != e.to {
		var back []string
		for v := e.from; v != e.to; v = prev[v] {
			back = append(back, v)
		}
		back = append(back, e.to)
		// back is e.from .. e.to reversed; rebuild forward from e.to.
		path = []string{e.from}
		for i := len(back) - 1; i >= 0; i-- {
			path = append(path, back[i])
		}
	}
	return strings.Join(path, " -> ")
}
