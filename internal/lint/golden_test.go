package lint_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"fcae/internal/lint"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata want.txt golden files")

// goldenAnalyzers maps each testdata/<name> corpus to the analyzers run
// over its cases. The dyncall corpus exercises the dynamic-dispatch
// resolver through every module analyzer that consumes it.
var goldenAnalyzers = map[string][]*lint.Analyzer{
	"lockorder": {lint.LockOrder},
	"devmem":    {lint.DevMem},
	"taint":     {lint.Taint},
	"goleak":    {lint.GoLeak},
	"chanflow":  {lint.ChanFlow},
	"hotalloc":  {lint.HotAlloc},
	"enumstr":   {lint.EnumStr},
	"dyncall":   {lint.LockOrder, lint.GoLeak, lint.Taint, lint.ChanFlow, lint.HotAlloc},
}

// TestGoldenCorpus loads every fixture module under testdata/<analyzer>/
// and compares the analyzer's findings against the case's want.txt. Each
// corpus must hold at least one true-positive and one clean case so a
// regression in either direction (missed finding, new false positive)
// breaks the build. Regenerate with `go test ./internal/lint -run Golden
// -update` after an intentional message or position change.
func TestGoldenCorpus(t *testing.T) {
	t.Parallel()
	for name, analyzers := range goldenAnalyzers {
		corpus := filepath.Join("testdata", name)
		entries, err := os.ReadDir(corpus)
		if err != nil {
			t.Fatalf("corpus %s: %v", name, err)
		}
		sawFinding, sawClean := false, false
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			caseDir := filepath.Join(corpus, e.Name())
			got := runGoldenCase(t, analyzers, caseDir)
			if got == "" {
				sawClean = true
			} else {
				sawFinding = true
			}
			wantPath := filepath.Join(caseDir, "want.txt")
			if *updateGolden {
				if err := os.WriteFile(wantPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			want, err := os.ReadFile(wantPath)
			if err != nil && !os.IsNotExist(err) {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("%s: findings mismatch\n--- got ---\n%s--- want ---\n%s", caseDir, got, want)
			}
		}
		if !*updateGolden && (!sawFinding || !sawClean) {
			t.Errorf("corpus %s must contain at least one finding case and one clean case (finding=%v clean=%v)",
				name, sawFinding, sawClean)
		}
	}
}

// runGoldenCase loads the fixture module in dir and renders the given
// analyzers' diagnostics with module-relative paths, one per line.
func runGoldenCase(t *testing.T, analyzers []*lint.Analyzer, dir string) string {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(abs)
	if err != nil {
		t.Fatalf("%s: load: %v", dir, err)
	}
	diags := lint.Check(pkgs, analyzers)
	var lines []string
	for _, d := range diags {
		rel, err := filepath.Rel(abs, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		lines = append(lines, fmt.Sprintf("%s:%d:%d: %s: %s",
			filepath.ToSlash(rel), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message))
	}
	sort.Strings(lines)
	if len(lines) == 0 {
		return ""
	}
	return strings.Join(lines, "\n") + "\n"
}
