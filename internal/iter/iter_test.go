package iter

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"fcae/internal/keys"
)

func ik(user string, seq uint64) []byte {
	return keys.MakeInternal(nil, []byte(user), seq, keys.KindSet)
}

func slice(entries ...string) *Slice {
	var ks, vs [][]byte
	for i, u := range entries {
		ks = append(ks, ik(u, uint64(1000-i)))
		vs = append(vs, []byte("v-"+u))
	}
	return NewSlice(ks, vs)
}

func collect(m *Merging) []string {
	var out []string
	for ; m.Valid(); m.Next() {
		out = append(out, string(keys.UserKey(m.Key())))
	}
	return out
}

func TestMergingTwoStreams(t *testing.T) {
	t.Parallel()
	m := NewMerging(slice("a", "c", "e"), slice("b", "d", "f"))
	m.SeekToFirst()
	got := collect(m)
	want := []string{"a", "b", "c", "d", "e", "f"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMergingEmptyChildren(t *testing.T) {
	t.Parallel()
	m := NewMerging(slice(), slice("a"), slice())
	m.SeekToFirst()
	if got := collect(m); len(got) != 1 || got[0] != "a" {
		t.Fatalf("got %v", got)
	}
	empty := NewMerging()
	empty.SeekToFirst()
	if empty.Valid() {
		t.Fatal("merge of nothing is valid")
	}
}

func TestMergingSeekGE(t *testing.T) {
	t.Parallel()
	m := NewMerging(slice("a", "c", "e"), slice("b", "d", "f"))
	m.SeekGE(ik("c", keys.MaxSeq))
	if got := collect(m); len(got) != 4 || got[0] != "c" {
		t.Fatalf("SeekGE(c) = %v", got)
	}
}

func TestMergingValuesTrackKeys(t *testing.T) {
	t.Parallel()
	m := NewMerging(slice("a", "c"), slice("b"))
	m.SeekToFirst()
	for ; m.Valid(); m.Next() {
		want := "v-" + string(keys.UserKey(m.Key()))
		if string(m.Value()) != want {
			t.Fatalf("value %q for key %q", m.Value(), m.Key())
		}
	}
}

func TestMergingSameUserKeyOrdersBySeq(t *testing.T) {
	t.Parallel()
	a := NewSlice([][]byte{ik("k", 5)}, [][]byte{[]byte("old")})
	b := NewSlice([][]byte{ik("k", 9)}, [][]byte{[]byte("new")})
	m := NewMerging(a, b)
	m.SeekToFirst()
	if string(m.Value()) != "new" {
		t.Fatal("newer sequence must come first")
	}
	m.Next()
	if string(m.Value()) != "old" {
		t.Fatal("older sequence second")
	}
}

func TestMergingRandomizedAgainstSort(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		var all []string
		var children []Iterator
		n := 1 + rng.Intn(6)
		seq := uint64(1)
		for c := 0; c < n; c++ {
			var ks, vs [][]byte
			var users []string
			for i := 0; i < rng.Intn(50); i++ {
				users = append(users, fmt.Sprintf("key%04d", rng.Intn(500)))
			}
			sort.Strings(users)
			prev := ""
			for _, u := range users {
				if u == prev {
					continue // unique user keys per child
				}
				prev = u
				ks = append(ks, ik(u, seq))
				vs = append(vs, []byte(u))
				all = append(all, u)
				seq++
			}
			children = append(children, NewSlice(ks, vs))
		}
		sort.Strings(all)
		m := NewMerging(children...)
		m.SeekToFirst()
		got := collect(m)
		if len(got) != len(all) {
			t.Fatalf("trial %d: %d entries, want %d", trial, len(got), len(all))
		}
		for i := range all {
			if got[i] != all[i] {
				t.Fatalf("trial %d: position %d: %q != %q", trial, i, got[i], all[i])
			}
		}
	}
}

func TestSliceSeekGE(t *testing.T) {
	t.Parallel()
	s := slice("b", "d")
	s.SeekGE(ik("c", keys.MaxSeq))
	if !s.Valid() || string(keys.UserKey(s.Key())) != "d" {
		t.Fatalf("SeekGE landed on %q", s.Key())
	}
	s.SeekGE(ik("z", keys.MaxSeq))
	if s.Valid() {
		t.Fatal("SeekGE past end valid")
	}
}

func reverseCollect(m *Merging) []string {
	var out []string
	for ; m.Valid(); m.Prev() {
		out = append(out, string(keys.UserKey(m.Key())))
	}
	return out
}

func TestMergingBackward(t *testing.T) {
	t.Parallel()
	m := NewMerging(slice("a", "c", "e"), slice("b", "d", "f"))
	m.SeekToLast()
	got := reverseCollect(m)
	want := []string{"f", "e", "d", "c", "b", "a"}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("backward merge = %v, want %v", got, want)
		}
	}
}

func TestMergingDirectionSwitch(t *testing.T) {
	t.Parallel()
	m := NewMerging(slice("a", "c", "e"), slice("b", "d", "f"))
	m.SeekToFirst() // a
	m.Next()        // b
	m.Next()        // c
	if got := string(keys.UserKey(m.Key())); got != "c" {
		t.Fatalf("position = %q", got)
	}
	m.Prev() // b
	if got := string(keys.UserKey(m.Key())); got != "b" {
		t.Fatalf("Prev after Next = %q", got)
	}
	m.Next() // c again
	if got := string(keys.UserKey(m.Key())); got != "c" {
		t.Fatalf("Next after Prev = %q", got)
	}
	m.Prev()
	m.Prev() // a
	if got := string(keys.UserKey(m.Key())); got != "a" {
		t.Fatalf("double Prev = %q", got)
	}
	m.Prev()
	if m.Valid() {
		t.Fatal("Prev past the beginning must invalidate")
	}
}

func TestMergingRandomWalkMatchesModel(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		// Build children with globally unique user keys.
		var model []string
		var children []Iterator
		n := 1 + rng.Intn(4)
		used := map[int]bool{}
		seq := uint64(1)
		for c := 0; c < n; c++ {
			var users []string
			for i := 0; i < 5+rng.Intn(25); i++ {
				k := rng.Intn(200)
				if used[k] {
					continue
				}
				used[k] = true
				users = append(users, fmt.Sprintf("key%04d", k))
			}
			sort.Strings(users)
			var ks, vs [][]byte
			for _, u := range users {
				ks = append(ks, ik(u, seq))
				vs = append(vs, []byte(u))
				model = append(model, u)
				seq++
			}
			children = append(children, NewSlice(ks, vs))
		}
		sort.Strings(model)
		if len(model) == 0 {
			continue
		}
		m := NewMerging(children...)
		m.SeekToFirst()
		pos := 0
		for step := 0; step < 200; step++ {
			if !m.Valid() {
				t.Fatalf("trial %d: invalid at model pos %d", trial, pos)
			}
			if got := string(keys.UserKey(m.Key())); got != model[pos] {
				t.Fatalf("trial %d step %d: %q != %q", trial, step, got, model[pos])
			}
			if rng.Intn(2) == 0 && pos+1 < len(model) {
				m.Next()
				pos++
			} else if pos > 0 {
				m.Prev()
				pos--
			} else {
				m.Next()
				pos++
				if pos >= len(model) {
					break
				}
			}
		}
	}
}
