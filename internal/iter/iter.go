// Package iter defines the internal iterator contract shared by the
// memtable, sstable and compaction layers, plus the k-way merging iterator
// that the software compactor and the DB read path are built on. The
// merging iterator is the software counterpart of the engine's Comparer
// module (paper §V-A): both repeatedly select the smallest key across N
// sorted inputs.
package iter

import (
	"container/heap"

	"fcae/internal/keys"
)

// Iterator walks a sorted sequence of internal key/value entries in both
// directions.
type Iterator interface {
	// Valid reports whether the iterator is positioned on an entry.
	Valid() bool
	// SeekGE positions at the first entry with internal key >= target.
	SeekGE(target []byte)
	// SeekToFirst positions at the first entry.
	SeekToFirst()
	// SeekToLast positions at the final entry.
	SeekToLast()
	// Next advances to the following entry.
	Next()
	// Prev steps to the preceding entry.
	Prev()
	// Key returns the current internal key. Only valid when Valid().
	Key() []byte
	// Value returns the current value. Only valid when Valid().
	Value() []byte
	// Error returns the first error the iterator encountered.
	Error() error
}

// Merging merges n child iterators into one sorted stream. Entries with
// equal internal keys never occur (sequence numbers are unique), so the
// merge is a strict weak order. The iterator supports both directions
// with LevelDB-style direction switching: reversing repositions every
// non-current child to just before the current key.
type Merging struct {
	children []Iterator
	h        mergeHeap
	inited   bool
	reverse  bool
}

// NewMerging returns a merging iterator over children.
func NewMerging(children ...Iterator) *Merging {
	return &Merging{children: children}
}

type mergeHeap struct {
	its     []Iterator
	reverse bool
}

func (h mergeHeap) Len() int { return len(h.its) }
func (h mergeHeap) Less(i, j int) bool {
	c := keys.Compare(h.its[i].Key(), h.its[j].Key())
	if h.reverse {
		return c > 0
	}
	return c < 0
}
func (h mergeHeap) Swap(i, j int)       { h.its[i], h.its[j] = h.its[j], h.its[i] }
func (h *mergeHeap) Push(x interface{}) { h.its = append(h.its, x.(Iterator)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.its
	n := len(old)
	x := old[n-1]
	h.its = old[:n-1]
	return x
}

func (m *Merging) rebuild() {
	m.h.its = m.h.its[:0]
	m.h.reverse = m.reverse
	for _, c := range m.children {
		if c.Valid() {
			m.h.its = append(m.h.its, c)
		}
	}
	heap.Init(&m.h)
	m.inited = true
}

// SeekToFirst positions every child at its start.
func (m *Merging) SeekToFirst() {
	for _, c := range m.children {
		c.SeekToFirst()
	}
	m.reverse = false
	m.rebuild()
}

// SeekToLast positions every child at its end.
func (m *Merging) SeekToLast() {
	for _, c := range m.children {
		c.SeekToLast()
	}
	m.reverse = true
	m.rebuild()
}

// SeekGE positions every child at target (forward direction).
func (m *Merging) SeekGE(target []byte) {
	for _, c := range m.children {
		c.SeekGE(target)
	}
	m.reverse = false
	m.rebuild()
}

// Valid reports whether an entry is available.
func (m *Merging) Valid() bool { return m.inited && len(m.h.its) > 0 }

// Key returns the extreme current key across children (smallest when
// iterating forward, largest in reverse).
func (m *Merging) Key() []byte { return m.h.its[0].Key() }

// Value returns the value paired with Key.
func (m *Merging) Value() []byte { return m.h.its[0].Value() }

// Next advances to the following entry, switching direction if needed.
func (m *Merging) Next() {
	if !m.Valid() {
		return
	}
	if m.reverse {
		// Reposition every non-current child after the current key.
		cur := append([]byte(nil), m.Key()...)
		top := m.h.its[0]
		for _, c := range m.children {
			if c == top {
				continue
			}
			c.SeekGE(cur)
			// Children sitting exactly on cur cannot exist (keys are
			// unique), so everything is strictly after it.
		}
		m.reverse = false
		top.Next()
		m.rebuild()
		return
	}
	top := m.h.its[0]
	top.Next()
	if top.Valid() {
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
}

// Prev steps to the preceding entry, switching direction if needed.
func (m *Merging) Prev() {
	if !m.Valid() {
		return
	}
	if !m.reverse {
		// Reposition every non-current child before the current key.
		cur := append([]byte(nil), m.Key()...)
		top := m.h.its[0]
		for _, c := range m.children {
			if c == top {
				continue
			}
			c.SeekGE(cur)
			if c.Valid() {
				c.Prev() // strictly before cur
			} else {
				c.SeekToLast() // all entries < cur
			}
		}
		m.reverse = true
		top.Prev()
		m.rebuild()
		return
	}
	top := m.h.its[0]
	top.Prev()
	if top.Valid() {
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
}

// Error returns the first child error.
func (m *Merging) Error() error {
	for _, c := range m.children {
		if err := c.Error(); err != nil {
			return err
		}
	}
	return nil
}

// Slice is an Iterator over in-memory entries, mainly for tests and for
// the engine simulator's decoded streams.
type Slice struct {
	Keys   [][]byte
	Values [][]byte
	pos    int
}

// NewSlice returns an iterator over parallel key/value slices, which must
// already be sorted by internal key.
func NewSlice(ks, vs [][]byte) *Slice {
	return &Slice{Keys: ks, Values: vs, pos: -1}
}

// Valid reports whether the position is in range.
func (s *Slice) Valid() bool { return s.pos >= 0 && s.pos < len(s.Keys) }

// SeekToFirst positions at index 0.
func (s *Slice) SeekToFirst() { s.pos = 0 }

// SeekToLast positions at the final entry.
func (s *Slice) SeekToLast() { s.pos = len(s.Keys) - 1 }

// SeekGE positions at the first key >= target.
func (s *Slice) SeekGE(target []byte) {
	s.pos = 0
	for s.pos < len(s.Keys) && keys.Compare(s.Keys[s.pos], target) < 0 {
		s.pos++
	}
}

// Next advances the position.
func (s *Slice) Next() { s.pos++ }

// Prev steps the position backwards.
func (s *Slice) Prev() { s.pos-- }

// Key returns the current key.
func (s *Slice) Key() []byte { return s.Keys[s.pos] }

// Value returns the current value.
func (s *Slice) Value() []byte { return s.Values[s.pos] }

// Error always returns nil.
func (s *Slice) Error() error { return nil }
