package lsm

import (
	"errors"
	"testing"
)

// TestOpsAfterCloseReturnErrClosed pins the contract the network server
// relies on: every DB operation issued after Close fails with the typed
// ErrClosed sentinel (matchable via errors.Is), never nil and never an
// untyped error.
func TestOpsAfterCloseReturnErrClosed(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var b Batch
	b.Put([]byte("k2"), []byte("v2"))
	checks := []struct {
		name string
		err  error
	}{
		{"Put", db.Put([]byte("k"), []byte("v"))},
		{"Delete", db.Delete([]byte("k"))},
		{"Write", db.Write(&b)},
		{"Flush", db.Flush()},
		{"CompactLevel", db.CompactLevel(0)},
		{"WaitIdle", db.WaitIdle()},
	}
	if _, err := db.Get([]byte("k")); true {
		checks = append(checks, struct {
			name string
			err  error
		}{"Get", err})
	}
	if _, err := db.Has([]byte("k")); true {
		checks = append(checks, struct {
			name string
			err  error
		}{"Has", err})
	}
	if _, err := db.NewIterator(); true {
		checks = append(checks, struct {
			name string
			err  error
		}{"NewIterator", err})
	}
	for _, c := range checks {
		if !errors.Is(c.err, ErrClosed) {
			t.Errorf("%s after Close = %v, want ErrClosed", c.name, c.err)
		}
	}

	// Close stays idempotent: a second call is a no-op, not a failure.
	if err := db.Close(); err != nil && !errors.Is(err, ErrClosed) {
		t.Errorf("second Close = %v, want nil or ErrClosed", err)
	}
}
