package lsm

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
)

// fileKind classifies database directory entries.
type fileKind int

const (
	kindUnknown fileKind = iota
	kindWAL
	kindTable
	kindManifest
	kindCurrent
	kindTemp
)

// walPath returns the WAL file path for number num.
func walPath(dir string, num uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%06d.log", num))
}

// tablePath returns the SSTable file path for number num.
func tablePath(dir string, num uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%06d.ldb", num))
}

// parseFileName classifies a directory entry and extracts its number.
func parseFileName(name string) (fileKind, uint64) {
	switch {
	case name == "CURRENT":
		return kindCurrent, 0
	case strings.HasPrefix(name, "MANIFEST-"):
		n, err := strconv.ParseUint(name[len("MANIFEST-"):], 10, 64)
		if err != nil {
			return kindUnknown, 0
		}
		return kindManifest, n
	case strings.HasSuffix(name, ".log"):
		n, err := strconv.ParseUint(strings.TrimSuffix(name, ".log"), 10, 64)
		if err != nil {
			return kindUnknown, 0
		}
		return kindWAL, n
	case strings.HasSuffix(name, ".ldb"):
		n, err := strconv.ParseUint(strings.TrimSuffix(name, ".ldb"), 10, 64)
		if err != nil {
			return kindUnknown, 0
		}
		return kindTable, n
	case strings.HasSuffix(name, ".tmp"):
		return kindTemp, 0
	}
	return kindUnknown, 0
}
