package lsm

// Snapshot is a consistent read view at a fixed sequence number. While a
// snapshot is live, compactions retain the entry versions it can observe.
type Snapshot struct {
	db  *DB
	seq uint64
}

// NewSnapshot captures the current state. Release it when done so
// compactions can reclaim shadowed entries.
func (db *DB) NewSnapshot() *Snapshot {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := &Snapshot{db: db, seq: db.seq}
	db.snapshots[s.seq]++
	return s
}

// Seq returns the snapshot's sequence number.
func (s *Snapshot) Seq() uint64 { return s.seq }

// Get reads key as of the snapshot.
func (s *Snapshot) Get(key []byte) ([]byte, error) {
	return s.db.getRetry(key, s.seq)
}

// NewIterator returns an iterator over the snapshot's view.
func (s *Snapshot) NewIterator() (*Iterator, error) {
	s.db.mu.Lock()
	if s.db.closed {
		s.db.mu.Unlock()
		return nil, ErrClosed
	}
	s.db.mu.Unlock()
	return s.db.newIteratorRetry(s.seq)
}

// Release drops the snapshot's pin on old entry versions. Releasing twice
// is a no-op.
func (s *Snapshot) Release() {
	if s.db == nil {
		return
	}
	db := s.db
	s.db = nil
	db.mu.Lock()
	defer db.mu.Unlock()
	if n := db.snapshots[s.seq]; n > 1 {
		db.snapshots[s.seq] = n - 1
	} else {
		delete(db.snapshots, s.seq)
	}
}
