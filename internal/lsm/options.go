// Package lsm implements the LSM-tree key-value store the FCAE engine
// integrates with: a LevelDB-like database with a WAL, skiplist memtables,
// leveled SSTables and background flush/compaction workers. The compaction
// execution backend is pluggable (paper Fig 1): the software executor is
// the CPU baseline, the FCAE executor offloads merges to the simulated
// FPGA card.
package lsm

import (
	"fmt"

	"fcae/internal/compaction"
	"fcae/internal/dispatch"
	"fcae/internal/manifest"
	"fcae/internal/obs"
	"fcae/internal/sstable"
)

// Options configure a DB. The zero value plus a directory is usable; the
// defaults mirror the paper's LevelDB settings (Table IV).
type Options struct {
	// MemTableBytes is the write buffer size before a flush is scheduled.
	MemTableBytes int64
	// BlockSize is the SSTable data block size (Table IV: 4 KiB default,
	// swept 2 KiB - 1 MiB in Fig 15c).
	BlockSize int
	// RestartInterval for data blocks.
	RestartInterval int
	// Compression selects per-block compression (snappy by default).
	Compression sstable.Compression
	// DisableCompression turns snappy off.
	DisableCompression bool
	// FilterBitsPerKey attaches bloom filters to tables (10 by default,
	// 0 < disables via DisableFilter).
	FilterBitsPerKey int
	// DisableFilter turns bloom filters off.
	DisableFilter bool
	// BlockCacheBytes bounds the shared block cache (default 8 MiB).
	BlockCacheBytes int64
	// LevelRatio is Size(L_{i+1})/Size(L_i) (Table IV: default 10,
	// range [4,16]).
	LevelRatio int
	// BaseLevelBytes is L1's byte budget (default 10 MiB).
	BaseLevelBytes uint64
	// MaxOutputFileBytes caps compaction output tables (default 2 MiB,
	// the paper's SSTable threshold).
	MaxOutputFileBytes uint64
	// L0CompactionTrigger schedules an L0 merge at this file count.
	L0CompactionTrigger int
	// TieredRuns, when > 0, switches levels >= 1 to tiered (lazy)
	// compaction: up to TieredRuns overlapping sorted runs accumulate per
	// level before a full-level merge pushes one combined run down. This
	// is the write-optimized scheme (SifrDB, PebblesDB) whose multi-run
	// merges motivate the paper's 9-input engine (§VII-C).
	TieredRuns int
	// L0SlowdownTrigger throttles writes at this L0 file count.
	L0SlowdownTrigger int
	// L0StopTrigger blocks writes at this L0 file count.
	L0StopTrigger int
	// Executor performs compaction merges; nil selects the software
	// executor (compaction.CPU). Jobs whose fan-in exceeds
	// Executor.MaxRuns fall back to software, the paper's §VI-A rule. A
	// non-CPU Executor becomes a single device channel on the dispatch
	// scheduler; use DeviceExecutors to configure more channels.
	Executor compaction.Executor
	// DeviceExecutors configures the dispatch scheduler's device channel
	// pool, one executor instance per simulated compaction unit (instances
	// must not be shared between channels). Mutually exclusive with
	// Executor.
	DeviceExecutors []compaction.Executor
	// CompactionWorkers is the number of concurrent compaction worker
	// goroutines feeding the scheduler (default 1). Workers pick
	// non-overlapping level ranges under the store mutex, so N workers can
	// keep N device channels busy.
	CompactionWorkers int
	// FaultInjector, when non-nil, injects device faults into every
	// device-channel attempt (see package dispatch). Requires at least one
	// device channel.
	FaultInjector dispatch.FaultInjector
	// Dispatch tunes the offload scheduler's queue depth, deadline, retry
	// and budget policy; the zero value selects the dispatch defaults.
	Dispatch dispatch.Tuning
	// SyncWrites fsyncs the WAL on every commit.
	SyncWrites bool
	// SkiplistSeed fixes memtable randomness for reproducible tests.
	SkiplistSeed int64
	// EventListener, when non-nil, receives store lifecycle events (see
	// package obs for the delivery contract: sequenced under the store
	// mutex, delivered strictly outside it).
	EventListener obs.EventListener
}

// Validate rejects contradictory or nonsensical settings with a
// descriptive error. Open calls it before applying defaults, so a zero
// Options value always validates; only explicit misconfiguration fails.
func (o Options) Validate() error {
	neg := func(name string, v int64) error {
		return fmt.Errorf("lsm: invalid Options: %s is negative (%d)", name, v)
	}
	switch {
	case o.MemTableBytes < 0:
		return neg("MemTableBytes", o.MemTableBytes)
	case o.BlockSize < 0:
		return neg("BlockSize", int64(o.BlockSize))
	case o.RestartInterval < 0:
		return neg("RestartInterval", int64(o.RestartInterval))
	case o.FilterBitsPerKey < 0:
		return neg("FilterBitsPerKey", int64(o.FilterBitsPerKey))
	case o.BlockCacheBytes < 0:
		return neg("BlockCacheBytes", o.BlockCacheBytes)
	case o.LevelRatio < 0:
		return neg("LevelRatio", int64(o.LevelRatio))
	case o.L0CompactionTrigger < 0:
		return neg("L0CompactionTrigger", int64(o.L0CompactionTrigger))
	case o.L0SlowdownTrigger < 0:
		return neg("L0SlowdownTrigger", int64(o.L0SlowdownTrigger))
	case o.L0StopTrigger < 0:
		return neg("L0StopTrigger", int64(o.L0StopTrigger))
	case o.TieredRuns < 0:
		return neg("TieredRuns", int64(o.TieredRuns))
	case o.CompactionWorkers < 0:
		return neg("CompactionWorkers", int64(o.CompactionWorkers))
	}
	if o.Executor != nil && len(o.DeviceExecutors) > 0 {
		return fmt.Errorf("lsm: invalid Options: Executor and DeviceExecutors are mutually exclusive; put every channel in DeviceExecutors")
	}
	if o.FaultInjector != nil && len(o.deviceExecutors()) == 0 {
		return fmt.Errorf("lsm: invalid Options: FaultInjector set but no device executors are configured; there is no device to fault")
	}
	if err := o.Dispatch.Validate(); err != nil {
		return fmt.Errorf("lsm: invalid Options: %w", err)
	}
	if o.DisableCompression && o.Compression == sstable.SnappyCompression {
		return fmt.Errorf("lsm: invalid Options: DisableCompression set but Compression requests snappy")
	}
	if o.DisableFilter && o.FilterBitsPerKey > 0 {
		return fmt.Errorf("lsm: invalid Options: DisableFilter set but FilterBitsPerKey is %d", o.FilterBitsPerKey)
	}
	// Contradictions are checked on the resolved values so that setting
	// only one trigger cannot silently invert the throttle ladder against
	// a defaulted neighbor.
	r := o.withDefaults()
	if r.L0SlowdownTrigger > r.L0StopTrigger {
		return fmt.Errorf("lsm: invalid Options: L0SlowdownTrigger (%d) exceeds L0StopTrigger (%d); writes would stop before they slow down",
			r.L0SlowdownTrigger, r.L0StopTrigger)
	}
	if r.L0CompactionTrigger > r.L0StopTrigger {
		return fmt.Errorf("lsm: invalid Options: L0CompactionTrigger (%d) exceeds L0StopTrigger (%d); writes would stop before a compaction is ever scheduled",
			r.L0CompactionTrigger, r.L0StopTrigger)
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.MemTableBytes <= 0 {
		o.MemTableBytes = 4 << 20
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 4096
	}
	if o.RestartInterval <= 0 {
		o.RestartInterval = 16
	}
	if o.Compression == 0 && !o.DisableCompression {
		o.Compression = sstable.SnappyCompression
	}
	if o.DisableCompression {
		o.Compression = sstable.NoCompression
	}
	if o.FilterBitsPerKey <= 0 && !o.DisableFilter {
		o.FilterBitsPerKey = 10
	}
	if o.DisableFilter {
		o.FilterBitsPerKey = 0
	}
	if o.BlockCacheBytes <= 0 {
		o.BlockCacheBytes = 8 << 20
	}
	if o.LevelRatio <= 0 {
		o.LevelRatio = 10
	}
	if o.BaseLevelBytes == 0 {
		o.BaseLevelBytes = 10 << 20
	}
	if o.MaxOutputFileBytes == 0 {
		o.MaxOutputFileBytes = 2 << 20
	}
	if o.L0CompactionTrigger <= 0 {
		o.L0CompactionTrigger = 4
	}
	if o.L0SlowdownTrigger <= 0 {
		o.L0SlowdownTrigger = 8
	}
	if o.L0StopTrigger <= 0 {
		o.L0StopTrigger = 12
	}
	if o.Executor == nil {
		o.Executor = compaction.CPU{}
	}
	if o.CompactionWorkers <= 0 {
		o.CompactionWorkers = 1
	}
	if o.SkiplistSeed == 0 {
		o.SkiplistSeed = 0xfcae
	}
	return o
}

// deviceExecutors resolves the scheduler's device channel pool: an
// explicit DeviceExecutors list wins; otherwise a non-CPU Executor becomes
// a single channel; a CPU (or nil) Executor means no devices at all, so
// every merge runs on the scheduler's CPU lane.
func (o Options) deviceExecutors() []compaction.Executor {
	if len(o.DeviceExecutors) > 0 {
		return o.DeviceExecutors
	}
	if o.Executor == nil {
		return nil
	}
	if _, isCPU := o.Executor.(compaction.CPU); isCPU {
		return nil
	}
	return []compaction.Executor{o.Executor}
}

func (o Options) tableOpts() sstable.Options {
	return sstable.Options{
		BlockSize:        o.BlockSize,
		RestartInterval:  o.RestartInterval,
		Compression:      o.Compression,
		FilterBitsPerKey: o.FilterBitsPerKey,
	}
}

func (o Options) manifestConfig() manifest.Config {
	return manifest.Config{
		LevelRatio:          o.LevelRatio,
		BaseLevelBytes:      o.BaseLevelBytes,
		L0CompactionTrigger: o.L0CompactionTrigger,
		MaxOutputFileBytes:  o.MaxOutputFileBytes,
		TieredRuns:          o.TieredRuns,
	}
}
