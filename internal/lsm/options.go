// Package lsm implements the LSM-tree key-value store the FCAE engine
// integrates with: a LevelDB-like database with a WAL, skiplist memtables,
// leveled SSTables and background flush/compaction workers. The compaction
// execution backend is pluggable (paper Fig 1): the software executor is
// the CPU baseline, the FCAE executor offloads merges to the simulated
// FPGA card.
package lsm

import (
	"fmt"

	"fcae/internal/compaction"
	"fcae/internal/dispatch"
	"fcae/internal/manifest"
	"fcae/internal/obs"
	"fcae/internal/sstable"
)

// DispatchConfig groups everything that feeds the offload scheduler and
// its shared worker pool: the device channels, the pool size, fault
// injection and the scheduler tuning. It replaces the four scattered
// Options fields (DeviceExecutors, CompactionWorkers, FaultInjector,
// Dispatch), which remain as deprecated aliases for one release.
type DispatchConfig struct {
	// Devices are the scheduler's device channels, one executor instance
	// per simulated compaction unit (instances must not be shared between
	// channels). Empty means every merge runs on the CPU lane.
	Devices []compaction.Executor
	// Workers sizes the shared background worker pool that drains both
	// flushes and compactions (flush claims the highest priority;
	// with more than one worker, one slot is always kept free for a
	// flush). Default 2 — one flush-capable worker plus one compactor,
	// the same parallelism as the old dedicated flush goroutine + one
	// compaction worker.
	Workers int
	// FaultInjector, when non-nil, injects device faults into every
	// device-channel attempt (see package dispatch). Requires at least
	// one device channel.
	FaultInjector dispatch.FaultInjector
	// Tuning bounds the scheduler's queueing, priority-aging, retry and
	// budget policy; the zero value selects the dispatch defaults.
	Tuning dispatch.Tuning
}

// Validate rejects contradictory or nonsensical dispatch settings.
func (c DispatchConfig) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("lsm: invalid DispatchConfig: Workers is negative (%d)", c.Workers)
	}
	for i, d := range c.Devices {
		if d == nil {
			return fmt.Errorf("lsm: invalid DispatchConfig: device channel %d is nil", i)
		}
	}
	if c.FaultInjector != nil && len(c.Devices) == 0 {
		return fmt.Errorf("lsm: invalid DispatchConfig: FaultInjector set but no device executors are configured; there is no device to fault")
	}
	if err := c.Tuning.Validate(); err != nil {
		return fmt.Errorf("lsm: invalid DispatchConfig: %w", err)
	}
	return nil
}

// Options configure a DB. The zero value plus a directory is usable; the
// defaults mirror the paper's LevelDB settings (Table IV).
type Options struct {
	// MemTableBytes is the write buffer size before a flush is scheduled.
	MemTableBytes int64
	// BlockSize is the SSTable data block size (Table IV: 4 KiB default,
	// swept 2 KiB - 1 MiB in Fig 15c).
	BlockSize int
	// RestartInterval for data blocks.
	RestartInterval int
	// Compression selects per-block compression (snappy by default).
	Compression sstable.Compression
	// DisableCompression turns snappy off.
	DisableCompression bool
	// FilterBitsPerKey attaches bloom filters to tables (10 by default,
	// 0 < disables via DisableFilter).
	FilterBitsPerKey int
	// DisableFilter turns bloom filters off.
	DisableFilter bool
	// BlockCacheBytes bounds the shared block cache (default 8 MiB).
	BlockCacheBytes int64
	// LevelRatio is Size(L_{i+1})/Size(L_i) (Table IV: default 10,
	// range [4,16]).
	LevelRatio int
	// BaseLevelBytes is L1's byte budget (default 10 MiB).
	BaseLevelBytes uint64
	// MaxOutputFileBytes caps compaction output tables (default 2 MiB,
	// the paper's SSTable threshold).
	MaxOutputFileBytes uint64
	// L0CompactionTrigger schedules an L0 merge at this file count.
	L0CompactionTrigger int
	// TieredRuns, when > 0, switches levels >= 1 to tiered (lazy)
	// compaction: up to TieredRuns overlapping sorted runs accumulate per
	// level before a full-level merge pushes one combined run down. This
	// is the write-optimized scheme (SifrDB, PebblesDB) whose multi-run
	// merges motivate the paper's 9-input engine (§VII-C).
	TieredRuns int
	// L0SlowdownTrigger throttles writes at this L0 file count.
	L0SlowdownTrigger int
	// L0StopTrigger blocks writes at this L0 file count.
	L0StopTrigger int
	// Executor performs compaction merges; nil selects the software
	// executor (compaction.CPU). Jobs whose fan-in exceeds
	// Executor.MaxRuns fall back to software, the paper's §VI-A rule. A
	// non-CPU Executor becomes a single device channel on the dispatch
	// scheduler; use DeviceExecutors to configure more channels.
	Executor compaction.Executor
	// DeviceExecutors configures the dispatch scheduler's device channel
	// pool, one executor instance per simulated compaction unit (instances
	// must not be shared between channels). Mutually exclusive with
	// Executor.
	//
	// Deprecated: set DispatchConfig.Devices instead. Kept working as an
	// alias for one release; setting both is a validation error.
	DeviceExecutors []compaction.Executor
	// CompactionWorkers is the number of concurrent compaction workers
	// feeding the scheduler (default 1). The flush worker is separate, so
	// a legacy value of N resolves to a shared pool of N+1 workers.
	//
	// Deprecated: set DispatchConfig.Workers instead (note the +1: it
	// counts the whole pool, flushes included). Kept working as an alias
	// for one release; setting both is a validation error.
	CompactionWorkers int
	// FaultInjector, when non-nil, injects device faults into every
	// device-channel attempt (see package dispatch). Requires at least one
	// device channel.
	//
	// Deprecated: set DispatchConfig.FaultInjector instead. Kept working
	// as an alias for one release; setting both is a validation error.
	FaultInjector dispatch.FaultInjector
	// Dispatch tunes the offload scheduler's queue depth, deadline, retry
	// and budget policy; the zero value selects the dispatch defaults.
	//
	// Deprecated: set DispatchConfig.Tuning instead. Kept working as an
	// alias for one release; setting both is a validation error.
	Dispatch dispatch.Tuning
	// DispatchConfig groups the offload scheduler's configuration: device
	// channels, the shared flush/compaction worker pool size, fault
	// injection and scheduler tuning. Zero-value fields fall back to the
	// deprecated aliases above, then to defaults.
	DispatchConfig DispatchConfig
	// SyncWrites fsyncs the WAL on every commit.
	SyncWrites bool
	// SkiplistSeed fixes memtable randomness for reproducible tests.
	SkiplistSeed int64
	// EventListener, when non-nil, receives store lifecycle events (see
	// package obs for the delivery contract: sequenced under the store
	// mutex, delivered strictly outside it).
	EventListener obs.EventListener
}

// Validate rejects contradictory or nonsensical settings with a
// descriptive error. Open calls it before applying defaults, so a zero
// Options value always validates; only explicit misconfiguration fails.
func (o Options) Validate() error {
	neg := func(name string, v int64) error {
		return fmt.Errorf("lsm: invalid Options: %s is negative (%d)", name, v)
	}
	switch {
	case o.MemTableBytes < 0:
		return neg("MemTableBytes", o.MemTableBytes)
	case o.BlockSize < 0:
		return neg("BlockSize", int64(o.BlockSize))
	case o.RestartInterval < 0:
		return neg("RestartInterval", int64(o.RestartInterval))
	case o.FilterBitsPerKey < 0:
		return neg("FilterBitsPerKey", int64(o.FilterBitsPerKey))
	case o.BlockCacheBytes < 0:
		return neg("BlockCacheBytes", o.BlockCacheBytes)
	case o.LevelRatio < 0:
		return neg("LevelRatio", int64(o.LevelRatio))
	case o.L0CompactionTrigger < 0:
		return neg("L0CompactionTrigger", int64(o.L0CompactionTrigger))
	case o.L0SlowdownTrigger < 0:
		return neg("L0SlowdownTrigger", int64(o.L0SlowdownTrigger))
	case o.L0StopTrigger < 0:
		return neg("L0StopTrigger", int64(o.L0StopTrigger))
	case o.TieredRuns < 0:
		return neg("TieredRuns", int64(o.TieredRuns))
	case o.CompactionWorkers < 0:
		return neg("CompactionWorkers", int64(o.CompactionWorkers))
	}
	if o.Executor != nil && len(o.DeviceExecutors) > 0 {
		return fmt.Errorf("lsm: invalid Options: Executor and DeviceExecutors are mutually exclusive; put every channel in DeviceExecutors")
	}
	if err := o.validateDispatch(); err != nil {
		return err
	}
	if o.DisableCompression && o.Compression == sstable.SnappyCompression {
		return fmt.Errorf("lsm: invalid Options: DisableCompression set but Compression requests snappy")
	}
	if o.DisableFilter && o.FilterBitsPerKey > 0 {
		return fmt.Errorf("lsm: invalid Options: DisableFilter set but FilterBitsPerKey is %d", o.FilterBitsPerKey)
	}
	// Contradictions are checked on the resolved values so that setting
	// only one trigger cannot silently invert the throttle ladder against
	// a defaulted neighbor.
	r := o.withDefaults()
	if r.L0SlowdownTrigger > r.L0StopTrigger {
		return fmt.Errorf("lsm: invalid Options: L0SlowdownTrigger (%d) exceeds L0StopTrigger (%d); writes would stop before they slow down",
			r.L0SlowdownTrigger, r.L0StopTrigger)
	}
	if r.L0CompactionTrigger > r.L0StopTrigger {
		return fmt.Errorf("lsm: invalid Options: L0CompactionTrigger (%d) exceeds L0StopTrigger (%d); writes would stop before a compaction is ever scheduled",
			r.L0CompactionTrigger, r.L0StopTrigger)
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.MemTableBytes <= 0 {
		o.MemTableBytes = 4 << 20
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 4096
	}
	if o.RestartInterval <= 0 {
		o.RestartInterval = 16
	}
	if o.Compression == 0 && !o.DisableCompression {
		o.Compression = sstable.SnappyCompression
	}
	if o.DisableCompression {
		o.Compression = sstable.NoCompression
	}
	if o.FilterBitsPerKey <= 0 && !o.DisableFilter {
		o.FilterBitsPerKey = 10
	}
	if o.DisableFilter {
		o.FilterBitsPerKey = 0
	}
	if o.BlockCacheBytes <= 0 {
		o.BlockCacheBytes = 8 << 20
	}
	if o.LevelRatio <= 0 {
		o.LevelRatio = 10
	}
	if o.BaseLevelBytes == 0 {
		o.BaseLevelBytes = 10 << 20
	}
	if o.MaxOutputFileBytes == 0 {
		o.MaxOutputFileBytes = 2 << 20
	}
	if o.L0CompactionTrigger <= 0 {
		o.L0CompactionTrigger = 4
	}
	if o.L0SlowdownTrigger <= 0 {
		o.L0SlowdownTrigger = 8
	}
	if o.L0StopTrigger <= 0 {
		o.L0StopTrigger = 12
	}
	if o.Executor == nil {
		o.Executor = compaction.CPU{}
	}
	if o.CompactionWorkers <= 0 {
		o.CompactionWorkers = 1
	}
	if o.SkiplistSeed == 0 {
		o.SkiplistSeed = 0xfcae
	}
	return o
}

// validateDispatch checks the DispatchConfig group: the group's own
// Validate on the resolved configuration, plus new-vs-deprecated-alias
// contradictions (a field set both ways is a config bug, not a merge).
func (o Options) validateDispatch() error {
	c := o.DispatchConfig
	if len(c.Devices) > 0 && (o.Executor != nil || len(o.DeviceExecutors) > 0) {
		return fmt.Errorf("lsm: invalid Options: DispatchConfig.Devices and the deprecated Executor/DeviceExecutors are both set; use DispatchConfig.Devices alone")
	}
	if c.Workers > 0 && o.CompactionWorkers > 0 {
		return fmt.Errorf("lsm: invalid Options: DispatchConfig.Workers (%d) and the deprecated CompactionWorkers (%d) are both set; use DispatchConfig.Workers alone",
			c.Workers, o.CompactionWorkers)
	}
	if c.FaultInjector != nil && o.FaultInjector != nil {
		return fmt.Errorf("lsm: invalid Options: DispatchConfig.FaultInjector and the deprecated FaultInjector are both set; use DispatchConfig.FaultInjector alone")
	}
	if c.Tuning != (dispatch.Tuning{}) && o.Dispatch != (dispatch.Tuning{}) {
		return fmt.Errorf("lsm: invalid Options: DispatchConfig.Tuning and the deprecated Dispatch tuning are both set; use DispatchConfig.Tuning alone")
	}
	if c.Workers < 0 {
		return fmt.Errorf("lsm: invalid Options: DispatchConfig.Workers is negative (%d)", c.Workers)
	}
	if err := o.dispatchConfig().Validate(); err != nil {
		return fmt.Errorf("lsm: invalid Options: %w", err)
	}
	return nil
}

// dispatchConfig resolves the effective dispatch configuration: explicit
// DispatchConfig fields win, zero fields fall back to the deprecated
// aliases, and a legacy CompactionWorkers count of N becomes a pool of
// N+1 (the old layout was N compaction workers plus a dedicated flush
// goroutine). The final default is a pool of 2.
func (o Options) dispatchConfig() DispatchConfig {
	c := o.DispatchConfig
	if len(c.Devices) == 0 {
		c.Devices = o.deviceExecutors()
	}
	if c.FaultInjector == nil {
		c.FaultInjector = o.FaultInjector
	}
	if c.Tuning == (dispatch.Tuning{}) {
		c.Tuning = o.Dispatch
	}
	if c.Workers <= 0 {
		if o.CompactionWorkers > 0 {
			c.Workers = o.CompactionWorkers + 1
		} else {
			c.Workers = 2
		}
	}
	return c
}

// deviceExecutors resolves the scheduler's device channel pool: the
// DispatchConfig.Devices list wins, then the deprecated DeviceExecutors;
// otherwise a non-CPU Executor becomes a single channel; a CPU (or nil)
// Executor means no devices at all, so every merge runs on the
// scheduler's CPU lane.
func (o Options) deviceExecutors() []compaction.Executor {
	if len(o.DispatchConfig.Devices) > 0 {
		return o.DispatchConfig.Devices
	}
	if len(o.DeviceExecutors) > 0 {
		return o.DeviceExecutors
	}
	if o.Executor == nil {
		return nil
	}
	if _, isCPU := o.Executor.(compaction.CPU); isCPU {
		return nil
	}
	return []compaction.Executor{o.Executor}
}

func (o Options) tableOpts() sstable.Options {
	return sstable.Options{
		BlockSize:        o.BlockSize,
		RestartInterval:  o.RestartInterval,
		Compression:      o.Compression,
		FilterBitsPerKey: o.FilterBitsPerKey,
	}
}

func (o Options) manifestConfig() manifest.Config {
	return manifest.Config{
		LevelRatio:          o.LevelRatio,
		BaseLevelBytes:      o.BaseLevelBytes,
		L0CompactionTrigger: o.L0CompactionTrigger,
		MaxOutputFileBytes:  o.MaxOutputFileBytes,
		TieredRuns:          o.TieredRuns,
	}
}
