package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"fcae/internal/core"
)

// TestConcurrentReadersWritersCompactions hammers the store with parallel
// writers, point readers and iterators while compactions run on the FCAE
// backend, under whatever detector the test runs with (-race in CI).
func TestConcurrentReadersWritersCompactions(t *testing.T) {
	exec, err := core.NewExecutor(core.MultiInputConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts()
	opts.Executor = exec
	db := openTest(t, opts)

	const (
		writers  = 4
		readers  = 4
		scanners = 2
		perG     = 1200
	)
	var wg sync.WaitGroup
	var stop atomic.Bool

	value := func(g, i int) []byte {
		return bytes.Repeat([]byte{byte('a' + g)}, 40+i%40)
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := []byte(fmt.Sprintf("w%d-key%06d", g, i))
				if err := db.Put(k, value(g, i)); err != nil {
					t.Errorf("writer %d: %v", g, err)
					return
				}
				if i%7 == 0 {
					if err := db.Delete([]byte(fmt.Sprintf("w%d-key%06d", g, i/2))); err != nil {
						t.Errorf("writer %d delete: %v", g, err)
						return
					}
				}
			}
		}(g)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for !stop.Load() {
				g := rng.Intn(writers)
				i := rng.Intn(perG)
				k := []byte(fmt.Sprintf("w%d-key%06d", g, i))
				v, err := db.Get(k)
				if err == ErrNotFound {
					continue
				}
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if len(v) > 0 && v[0] != byte('a'+g) {
					t.Errorf("reader saw foreign value for %q", k)
					return
				}
			}
		}(r)
	}
	for s := 0; s < scanners; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				it, err := db.NewIterator()
				if err != nil {
					t.Errorf("iterator: %v", err)
					return
				}
				var prev []byte
				n := 0
				for ok := it.First(); ok && n < 500; ok = it.Next() {
					if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
						t.Error("scan out of order under concurrency")
						it.Close()
						return
					}
					prev = append(prev[:0], it.Key()...)
					n++
				}
				if err := it.Error(); err != nil {
					t.Errorf("scan: %v", err)
				}
				it.Close()
			}
		}()
	}

	// Wait for the writers, then release readers and scanners.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	// Writers finish first; signal stop once the writer count drains. A
	// simple approach: wait for the writers via a second group.
	// (The readers loop on stop.Load; flip it when writers are done.)
	writersDone := make(chan struct{})
	go func() {
		// The writer goroutines are the first `writers` Adds; poll the DB
		// write counter instead of instrumenting them.
		for {
			st := db.Stats()
			if st.Writes >= int64(writers*perG) {
				close(writersDone)
				return
			}
			if stop.Load() {
				return
			}
		}
	}()
	<-writersDone
	stop.Store(true)
	<-done

	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.HWCompactions == 0 {
		t.Fatal("stress run triggered no engine compactions")
	}
	// Final spot-checks.
	for g := 0; g < writers; g++ {
		k := []byte(fmt.Sprintf("w%d-key%06d", g, perG-1))
		if _, err := db.Get(k); err != nil {
			t.Fatalf("final Get(%q): %v", k, err)
		}
	}
}

// TestGroupCommitCoalesces verifies that concurrent writers share WAL
// records and that every batch's contents survive.
func TestGroupCommitCoalesces(t *testing.T) {
	opts := Options{SyncWrites: true} // syncs make grouping observable
	db := openTest(t, opts)
	const writers, perW = 8, 300
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := []byte(fmt.Sprintf("g%d-%05d", g, i))
				if err := db.Put(k, k); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := db.Stats()
	if st.GroupedWrites != writers*perW {
		t.Fatalf("GroupedWrites = %d, want %d", st.GroupedWrites, writers*perW)
	}
	if st.GroupCommits >= st.GroupedWrites {
		t.Fatalf("no coalescing happened: %d commits for %d writes", st.GroupCommits, st.GroupedWrites)
	}
	t.Logf("coalesced %d writes into %d WAL records", st.GroupedWrites, st.GroupCommits)
	for g := 0; g < writers; g++ {
		for _, i := range []int{0, perW / 2, perW - 1} {
			k := []byte(fmt.Sprintf("g%d-%05d", g, i))
			if v, err := db.Get(k); err != nil || !bytes.Equal(v, k) {
				t.Fatalf("Get(%s): %v", k, err)
			}
		}
	}
}

// TestGroupCommitRecovery ensures grouped WAL records replay correctly.
func TestGroupCommitRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				db.Put([]byte(fmt.Sprintf("r%d-%04d", g, i)), []byte("v"))
			}
		}(g)
	}
	wg.Wait()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for g := 0; g < 4; g++ {
		for i := 0; i < 200; i++ {
			if _, err := db2.Get([]byte(fmt.Sprintf("r%d-%04d", g, i))); err != nil {
				t.Fatalf("recovered Get(r%d-%04d): %v", g, i, err)
			}
		}
	}
}
