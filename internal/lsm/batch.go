package lsm

import (
	"encoding/binary"
	"errors"

	"fcae/internal/keys"
)

// Batch collects writes for atomic commit. The wire format matches the WAL
// record layout: an 8-byte base sequence, a 4-byte count, then per-record
// kind byte + length-prefixed key (+ value for sets).
type Batch struct {
	rep   []byte
	count uint32
}

const batchHeaderSize = 12

// ErrBatchCorrupt reports a malformed batch replayed from the WAL.
var ErrBatchCorrupt = errors.New("lsm: corrupt write batch")

func (b *Batch) init() {
	if len(b.rep) == 0 {
		b.rep = make([]byte, batchHeaderSize, 256)
	}
}

// Put queues a key/value set.
func (b *Batch) Put(key, value []byte) {
	b.init()
	b.rep = append(b.rep, byte(keys.KindSet))
	b.rep = appendLenPrefixed(b.rep, key)
	b.rep = appendLenPrefixed(b.rep, value)
	b.count++
}

// Delete queues a tombstone.
func (b *Batch) Delete(key []byte) {
	b.init()
	b.rep = append(b.rep, byte(keys.KindDelete))
	b.rep = appendLenPrefixed(b.rep, key)
	b.count++
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return int(b.count) }

// Size returns the encoded byte size.
func (b *Batch) Size() int {
	b.init()
	return len(b.rep)
}

// Reset clears the batch for reuse.
func (b *Batch) Reset() {
	b.rep = b.rep[:0]
	b.count = 0
}

func appendLenPrefixed(dst, b []byte) []byte {
	var tmp [binary.MaxVarintLen32]byte
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(len(b)))]...)
	return append(dst, b...)
}

// seal stamps the base sequence and count, returning the wire form.
func (b *Batch) seal(baseSeq uint64) []byte {
	b.init()
	binary.LittleEndian.PutUint64(b.rep[0:8], baseSeq)
	binary.LittleEndian.PutUint32(b.rep[8:12], b.count)
	return b.rep
}

// iterate decodes rep, invoking fn for each record with its sequence.
func batchIterate(rep []byte, fn func(seq uint64, kind keys.Kind, key, value []byte) error) error {
	if len(rep) < batchHeaderSize {
		return ErrBatchCorrupt
	}
	seq := binary.LittleEndian.Uint64(rep[0:8])
	count := binary.LittleEndian.Uint32(rep[8:12])
	p := rep[batchHeaderSize:]
	for i := uint32(0); i < count; i++ {
		if len(p) == 0 {
			return ErrBatchCorrupt
		}
		kind := keys.Kind(p[0])
		p = p[1:]
		var key, value []byte
		var err error
		if key, p, err = readLenPrefixed(p); err != nil {
			return err
		}
		if kind == keys.KindSet {
			if value, p, err = readLenPrefixed(p); err != nil {
				return err
			}
		} else if kind != keys.KindDelete {
			return ErrBatchCorrupt
		}
		if err := fn(seq+uint64(i), kind, key, value); err != nil {
			return err
		}
	}
	if len(p) != 0 {
		return ErrBatchCorrupt
	}
	return nil
}

func readLenPrefixed(p []byte) ([]byte, []byte, error) {
	n, w := binary.Uvarint(p)
	if w <= 0 || uint64(len(p)-w) < n {
		return nil, nil, ErrBatchCorrupt
	}
	return p[w : w+int(n)], p[w+int(n):], nil
}

// batchSeq extracts the base sequence from a wire batch.
func batchSeq(rep []byte) (uint64, uint32, error) {
	if len(rep) < batchHeaderSize {
		return 0, 0, ErrBatchCorrupt
	}
	return binary.LittleEndian.Uint64(rep[0:8]), binary.LittleEndian.Uint32(rep[8:12]), nil
}
