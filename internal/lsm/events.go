package lsm

import (
	"fmt"

	"fcae/internal/manifest"
	"fcae/internal/obs"
)

// Event plumbing. Events are SEQUENCED under db.mu — each state change
// queues a delivery closure while the mutex is held, so the queue order is
// exactly the order the state machine executed — but DELIVERED outside it:
// workers and writers drain the queue via flushEvents after releasing
// db.mu. A second mutex (db.evMu) serializes delivery so the listener sees
// one event at a time, globally ordered. The fcaelint obscallback analyzer
// enforces the other half of the contract: no listener method may be
// invoked while db.mu is held.

// queueEventLocked appends one delivery closure. Callers hold db.mu.
func (db *DB) queueEventLocked(deliver func(obs.EventListener)) {
	if db.listener == nil {
		return
	}
	db.pendingEvents = append(db.pendingEvents, deliver)
}

// nextJobIDLocked allocates a flush/compaction job id. Callers hold db.mu.
func (db *DB) nextJobIDLocked() uint64 {
	db.jobSeq++
	return db.jobSeq
}

// flushEvents drains the pending queue and invokes the listener. Callers
// must NOT hold db.mu. The evMu -> mu lock order here is one-way: nothing
// acquires evMu while holding mu, so this cannot deadlock.
func (db *DB) flushEvents() {
	if db.listener == nil {
		return
	}
	db.evMu.Lock()
	defer db.evMu.Unlock()
	for {
		db.mu.Lock()
		if len(db.pendingEvents) == 0 {
			db.mu.Unlock()
			return
		}
		batch := db.pendingEvents
		db.pendingEvents = nil
		db.mu.Unlock()
		for _, deliver := range batch {
			db.deliver(deliver)
		}
	}
}

// deliver invokes one listener callback, converting a panic into a
// BackgroundError event so a buggy listener cannot kill a background
// worker. The store keeps running after a listener panic.
func (db *DB) deliver(fn func(obs.EventListener)) {
	defer func() {
		if r := recover(); r != nil {
			ev := obs.BackgroundErrorEvent{
				Op:  "listener",
				Err: fmt.Errorf("%w: %v", obs.ErrListenerPanic, r),
			}
			func() {
				// A listener that panics while being told it panicked is
				// given up on.
				defer func() { _ = recover() }()
				db.listener.BackgroundError(ev)
			}()
		}
	}()
	fn(db.listener)
}

// dbMetrics holds the registry instruments the hot paths publish into,
// resolved once at Open so no map lookup happens per operation.
type dbMetrics struct {
	writes        *obs.Counter
	writeBytes    *obs.Counter
	groupCommits  *obs.Counter
	groupedWrites *obs.Counter

	flushes    *obs.Counter
	flushBytes *obs.Counter
	flushWall  *obs.Histogram

	compactions     *obs.Counter
	hwCompactions   *obs.Counter
	swFallbacks     *obs.Counter
	trivialMoves    *obs.Counter
	seekCompactions *obs.Counter
	compactionRead  *obs.Counter
	compactionWrite *obs.Counter
	kernelNanos     *obs.Counter
	transferNanos   *obs.Counter
	compactionWall  *obs.Histogram

	pipelineBlocks         *obs.Counter
	pipelinePrefetchStalls *obs.Counter
	pipelinePrefetchNanos  *obs.Counter
	pipelineEncodeStalls   *obs.Counter
	pipelineEncodeNanos    *obs.Counter
	pipelineSubmitStalls   *obs.Counter
	pipelineSubmitNanos    *obs.Counter
	pipelineSizeSyncs      *obs.Counter

	stallCount *obs.Counter
	stallNanos *obs.Counter
	stallWait  *obs.Histogram

	tablesCreated *obs.Counter
	tablesDeleted *obs.Counter

	levelCompactions [manifest.NumLevels]*obs.Counter
	levelRead        [manifest.NumLevels]*obs.Counter
	levelWrite       [manifest.NumLevels]*obs.Counter
}

func newDBMetrics(r *obs.Registry) dbMetrics {
	m := dbMetrics{
		writes:        r.Counter("writes"),
		writeBytes:    r.Counter("write_bytes"),
		groupCommits:  r.Counter("group_commits"),
		groupedWrites: r.Counter("grouped_writes"),

		flushes:    r.Counter("flush_count"),
		flushBytes: r.Counter("flush_bytes"),
		flushWall:  r.Histogram("flush_wall_nanos"),

		compactions:     r.Counter("compaction_count"),
		hwCompactions:   r.Counter("compaction_hw"),
		swFallbacks:     r.Counter("compaction_sw_fallback"),
		trivialMoves:    r.Counter("compaction_trivial"),
		seekCompactions: r.Counter("compaction_seek"),
		compactionRead:  r.Counter("compaction_read_bytes"),
		compactionWrite: r.Counter("compaction_write_bytes"),
		kernelNanos:     r.Counter("compaction_kernel_nanos"),
		transferNanos:   r.Counter("compaction_transfer_nanos"),
		compactionWall:  r.Histogram("compaction_wall_nanos"),

		pipelineBlocks:         r.Counter("compaction_pipeline_blocks"),
		pipelinePrefetchStalls: r.Counter("compaction_pipeline_prefetch_stalls"),
		pipelinePrefetchNanos:  r.Counter("compaction_pipeline_prefetch_stall_nanos"),
		pipelineEncodeStalls:   r.Counter("compaction_pipeline_encode_stalls"),
		pipelineEncodeNanos:    r.Counter("compaction_pipeline_encode_stall_nanos"),
		pipelineSubmitStalls:   r.Counter("compaction_pipeline_submit_stalls"),
		pipelineSubmitNanos:    r.Counter("compaction_pipeline_submit_stall_nanos"),
		pipelineSizeSyncs:      r.Counter("compaction_pipeline_size_syncs"),

		stallCount: r.Counter("stall_count"),
		stallNanos: r.Counter("stall_nanos"),
		stallWait:  r.Histogram("stall_wait_nanos"),

		tablesCreated: r.Counter("table_created"),
		tablesDeleted: r.Counter("table_deleted"),
	}
	for i := 0; i < manifest.NumLevels; i++ {
		m.levelCompactions[i] = r.Counter(fmt.Sprintf("level%d_compactions", i))
		m.levelRead[i] = r.Counter(fmt.Sprintf("level%d_read_bytes", i))
		m.levelWrite[i] = r.Counter(fmt.Sprintf("level%d_write_bytes", i))
	}
	return m
}

// registerGauges wires the callback gauges: level shape, cache hit ratios
// and (when the executor publishes them) engine totals. Called once from
// Open, before the workers start.
func (db *DB) registerGauges() {
	r := db.reg
	for i := 0; i < manifest.NumLevels; i++ {
		level := i
		r.GaugeFunc(fmt.Sprintf("level%d_files", level), func() float64 {
			return float64(db.vs.Current().NumFiles(level))
		})
		r.GaugeFunc(fmt.Sprintf("level%d_bytes", level), func() float64 {
			return float64(db.vs.Current().LevelBytes(level))
		})
	}
	r.GaugeFunc("block_cache_bytes", func() float64 {
		return float64(db.blockCache.Size())
	})
	r.GaugeFunc("block_cache_hit_ratio", func() float64 {
		return hitRatio(db.blockCache.Stats())
	})
	r.GaugeFunc("table_cache_hit_ratio", func() float64 {
		return hitRatio(db.tables.stats())
	})
	db.sched.PublishMetrics(r)
	// Engine totals: channel 0 publishes under the plain engine_* names
	// (the historical single-executor layout); further channels would
	// collide on those names, so only the first publisher registers.
	for _, exec := range db.opts.deviceExecutors() {
		if p, ok := exec.(obs.MetricsPublisher); ok {
			p.PublishMetrics(r)
			break
		}
	}
}

func hitRatio(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// tableInfos converts one side of a compaction's inputs for an event.
func tableInfos(files []*manifest.FileMetadata, level int) []obs.TableInfo {
	out := make([]obs.TableInfo, 0, len(files))
	for _, f := range files {
		out = append(out, obs.TableInfo{Num: f.Num, Level: level, Size: int64(f.Size)})
	}
	return out
}
