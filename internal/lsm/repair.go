package lsm

import (
	"fmt"
	"os"

	"fcae/internal/keys"
	"fcae/internal/manifest"
	"fcae/internal/sstable"
)

// Repair rebuilds a database whose MANIFEST/CURRENT metadata is lost or
// corrupt, from the table files alone: every readable .ldb file is scanned
// for its key range and entry sequences and re-registered as its own
// sorted run at level 0... conceptually; since L0 is capped, files are
// placed at level 1 as individual runs (tiered layout), which preserves
// correctness because sequence numbers order overlapping entries and the
// read path probes runs newest-first. Unreadable tables are renamed aside
// with a .corrupt suffix. WAL files are left in place and replayed by the
// next Open.
//
// Limitation (shared with LevelDB's RepairDB): recency across recovered
// tables is approximated by file number, so when multiple tables hold
// versions of the same user key, an overwrite performed shortly before a
// compaction of much older data can surface the older version. Sequence
// numbers inside each table are preserved exactly.
func Repair(dir string, opts Options) (err error) {
	opts = opts.withDefaults()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}

	type tbl struct {
		num      uint64
		size     int64
		smallest []byte
		largest  []byte
		maxSeq   uint64
	}
	var tables []tbl
	var maxNum uint64

	for _, e := range entries {
		kind, num := parseFileName(e.Name())
		switch kind {
		case kindManifest, kindCurrent:
			// Discard old metadata; it is being rebuilt.
			os.Remove(dir + "/" + e.Name())
			continue
		case kindWAL:
			if num > maxNum {
				maxNum = num
			}
			continue
		case kindTable:
		default:
			continue
		}
		if num > maxNum {
			maxNum = num
		}
		t, err := scanTable(dir, num, opts)
		if err != nil {
			// Quarantine the unreadable table rather than losing data
			// silently or blocking recovery.
			os.Rename(tablePath(dir, num), tablePath(dir, num)+".corrupt")
			continue
		}
		tables = append(tables, tbl{num, t.size, t.smallest, t.largest, t.maxSeq})
	}

	vs, err := manifest.Open(dir, opts.manifestConfig())
	if err != nil {
		return err
	}
	defer func() {
		// The rebuilt manifest must land on disk: a Close failure after
		// LogAndApply is a durability signal, not cleanup noise.
		if cerr := vs.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("lsm: repair: close manifest: %w", cerr)
		}
	}()

	edit := &manifest.VersionEdit{}
	var lastSeq uint64
	for _, t := range tables {
		// Each recovered table becomes its own sorted run; RunID follows
		// recency (file number), so newer tables shadow older ones.
		edit.AddFile(1, &manifest.FileMetadata{
			Num:      t.num,
			Size:     uint64(t.size),
			RunID:    t.num,
			Smallest: t.smallest,
			Largest:  t.largest,
		})
		if t.maxSeq > lastSeq {
			lastSeq = t.maxSeq
		}
	}
	edit.SetLastSeq(lastSeq)
	edit.SetNextFileNum(maxNum + 1)
	if err := vs.LogAndApply(edit); err != nil {
		return fmt.Errorf("lsm: repair: %w", err)
	}
	return nil
}

type scannedTable struct {
	size     int64
	smallest []byte
	largest  []byte
	maxSeq   uint64
}

// scanTable validates a table file end to end and extracts its bounds.
func scanTable(dir string, num uint64, opts Options) (*scannedTable, error) {
	f, err := os.Open(tablePath(dir, num))
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	r, err := sstable.NewReader(f, st.Size(), opts.tableOpts(), nil, num)
	if err != nil {
		return nil, err
	}
	it := r.NewIterator()
	out := &scannedTable{size: st.Size()}
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if out.smallest == nil {
			out.smallest = append([]byte(nil), it.Key()...)
		}
		out.largest = append(out.largest[:0], it.Key()...)
		if seq, _ := keys.DecodeTrailer(it.Key()); seq > out.maxSeq {
			out.maxSeq = seq
		}
	}
	if err := it.Error(); err != nil {
		return nil, err
	}
	if out.smallest == nil {
		return nil, fmt.Errorf("lsm: table %06d is empty", num)
	}
	out.largest = append([]byte(nil), out.largest...)
	return out, nil
}
