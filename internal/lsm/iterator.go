package lsm

import (
	"errors"
	"io/fs"
	"os"

	"fcae/internal/iter"
	"fcae/internal/keys"
	"fcae/internal/sstable"
)

// Iterator walks user keys at a fixed snapshot, in either direction.
// Entries newer than the snapshot, shadowed versions and tombstones are
// filtered out. Key/Value views are valid until the next positioning call.
type Iterator struct {
	db       *DB
	seq      uint64
	internal *iter.Merging
	files    []*os.File
	err      error
	valid    bool
	reverse  bool // direction of the last positioning call
	key      []byte
	value    []byte
	closed   bool
}

// NewIterator returns an iterator over the current state of the database.
func (db *DB) NewIterator() (*Iterator, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	seq := db.seq
	db.mu.Unlock()
	return db.newIteratorRetry(seq)
}

// newIteratorRetry re-captures the version when a concurrent compaction
// unlinks a table between the version snapshot and the eager file opens.
func (db *DB) newIteratorRetry(seq uint64) (*Iterator, error) {
	for attempt := 0; ; attempt++ {
		it, err := db.newIteratorAt(seq)
		if (errors.Is(err, fs.ErrNotExist) || errors.Is(err, fs.ErrClosed)) && attempt < 100 {
			continue
		}
		return it, err
	}
}

// newIteratorAt builds the merged internal iterator pinned at seq. Each
// table gets its own file handle so compactions deleting inputs cannot
// invalidate a live iterator.
func (db *DB) newIteratorAt(seq uint64) (*Iterator, error) {
	db.mu.Lock()
	mem, imm := db.mem, db.imm
	v := db.vs.Current()
	db.mu.Unlock()

	it := &Iterator{db: db, seq: seq}
	var children []iter.Iterator
	children = append(children, mem.NewIterator())
	if imm != nil {
		children = append(children, imm.NewIterator())
	}
	fail := func(err error) (*Iterator, error) {
		for _, f := range it.files {
			_ = f.Close()
		}
		return nil, err
	}
	openTable := func(num uint64) (*sstable.Reader, error) {
		f, err := os.Open(tablePath(db.dir, num))
		if err != nil {
			return nil, err
		}
		it.files = append(it.files, f)
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		return sstable.NewReader(f, st.Size(), db.opts.tableOpts(), db.blockCache, num)
	}
	for _, fm := range v.Levels[0] {
		r, err := openTable(fm.Num)
		if err != nil {
			return fail(err)
		}
		children = append(children, r.NewIterator())
	}
	for level := 1; level < len(v.Levels); level++ {
		// One concatenating child per sorted run: a leveled level is a
		// single run; tiered levels contribute several (§VII-C).
		for _, run := range v.RunGroups(level) {
			readers := make([]*sstable.Reader, 0, len(run))
			for _, fm := range run {
				r, err := openTable(fm.Num)
				if err != nil {
					return fail(err)
				}
				readers = append(readers, r)
			}
			children = append(children, newLevelIter(readers))
		}
	}
	it.internal = iter.NewMerging(children...)
	return it, nil
}

// First positions at the smallest visible key.
func (it *Iterator) First() bool {
	it.internal.SeekToFirst()
	it.reverse = false
	return it.findNextUserEntry(nil)
}

// Last positions at the largest visible key.
func (it *Iterator) Last() bool {
	it.internal.SeekToLast()
	it.reverse = true
	return it.findPrevUserEntry()
}

// Seek positions at the first visible key >= userKey.
func (it *Iterator) Seek(userKey []byte) bool {
	it.internal.SeekGE(keys.MakeInternal(nil, userKey, it.seq, keys.KindSet))
	it.reverse = false
	return it.findNextUserEntry(nil)
}

// Next advances to the following visible key.
func (it *Iterator) Next() bool {
	if !it.valid {
		return false
	}
	skip := append([]byte(nil), it.key...)
	if it.reverse {
		// The internal iterator sits before the current key's span; jump
		// past every version of the current key. A zero trailer sorts
		// after all real entries of the same user key.
		it.internal.SeekGE(keys.MakeInternal(nil, skip, 0, keys.KindDelete))
		it.reverse = false
	} else {
		it.internal.Next()
	}
	return it.findNextUserEntry(skip)
}

// Prev steps to the preceding visible key.
func (it *Iterator) Prev() bool {
	if !it.valid {
		return false
	}
	if !it.reverse {
		// The internal iterator sits on the surfaced entry; step backward
		// past every version of the current key (newer, invisible
		// versions sort before it).
		cur := append([]byte(nil), it.key...)
		for it.internal.Valid() {
			p, ok := keys.Parse(it.internal.Key())
			if !ok {
				it.err = sstable.ErrCorrupt
				it.valid = false
				return false
			}
			if keys.CompareUser(p.User, cur) < 0 {
				break
			}
			it.internal.Prev()
		}
		it.reverse = true
	}
	return it.findPrevUserEntry()
}

// findNextUserEntry scans forward for the next visible entry, skipping
// entries for the user key `skip`, anything above the snapshot, shadowed
// versions and deletions.
func (it *Iterator) findNextUserEntry(skip []byte) bool {
	it.valid = false
	for it.internal.Valid() {
		ikey := it.internal.Key()
		p, ok := keys.Parse(ikey)
		if !ok {
			it.err = sstable.ErrCorrupt
			return false
		}
		switch {
		case p.Seq > it.seq:
			// Not visible in this snapshot.
		case skip != nil && keys.CompareUser(p.User, skip) == 0:
			// Older version of a key already surfaced (or deleted).
		case p.Kind == keys.KindDelete:
			skip = append(skip[:0], p.User...)
		default:
			it.key = append(it.key[:0], p.User...)
			it.value = append(it.value[:0], it.internal.Value()...)
			it.valid = true
			return true
		}
		it.internal.Next()
	}
	it.err = it.internal.Error()
	return false
}

// findPrevUserEntry scans backward for the previous visible entry
// (LevelDB's FindPrevUserEntry): walking backwards, the last visible
// entry seen for a user key before stepping past it is that key's newest
// version; a tombstone seen later (i.e. newer) discards it.
func (it *Iterator) findPrevUserEntry() bool {
	it.valid = false
	kind := keys.KindDelete // sentinel: nothing saved yet
	var savedKey, savedValue []byte
	for it.internal.Valid() {
		p, ok := keys.Parse(it.internal.Key())
		if !ok {
			it.err = sstable.ErrCorrupt
			return false
		}
		if p.Seq <= it.seq {
			if kind != keys.KindDelete && keys.CompareUser(p.User, savedKey) < 0 {
				// saved holds the newest visible version of savedKey.
				break
			}
			kind = p.Kind
			if kind == keys.KindDelete {
				savedKey = savedKey[:0]
				savedValue = savedValue[:0]
			} else {
				savedKey = append(savedKey[:0], p.User...)
				savedValue = append(savedValue[:0], it.internal.Value()...)
			}
		}
		it.internal.Prev()
	}
	if kind == keys.KindDelete {
		it.err = it.internal.Error()
		return false
	}
	it.key = append(it.key[:0], savedKey...)
	it.value = append(it.value[:0], savedValue...)
	it.valid = true
	return true
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool { return it.valid }

// Key returns the current user key.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.value }

// Error returns the first error encountered.
func (it *Iterator) Error() error { return it.err }

// Close releases the iterator's file handles.
func (it *Iterator) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	it.valid = false
	var err error
	for _, f := range it.files {
		if e := f.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// levelIter concatenates the tables of one level (>= 1), whose key ranges
// are disjoint and sorted.
type levelIter struct {
	readers []*sstable.Reader
	idx     int
	cur     *sstable.Iterator
	err     error
}

func newLevelIter(readers []*sstable.Reader) *levelIter {
	return &levelIter{readers: readers, idx: -1}
}

func (l *levelIter) open(i int) {
	l.idx = i
	if i >= 0 && i < len(l.readers) {
		l.cur = l.readers[i].NewIterator()
	} else {
		l.cur = nil
	}
}

func (l *levelIter) Valid() bool { return l.err == nil && l.cur != nil && l.cur.Valid() }

func (l *levelIter) SeekToFirst() {
	l.open(0)
	if l.cur != nil {
		l.cur.SeekToFirst()
		l.skipEmpty()
	}
}

func (l *levelIter) SeekGE(target []byte) {
	for i := range l.readers {
		l.open(i)
		l.cur.SeekGE(target)
		if l.cur.Valid() {
			return
		}
		if err := l.cur.Error(); err != nil {
			l.err = err
			return
		}
	}
	l.cur = nil
}

func (l *levelIter) SeekToLast() {
	l.open(len(l.readers) - 1)
	if l.cur != nil {
		l.cur.SeekToLast()
		l.skipEmptyBackward()
	}
}

func (l *levelIter) Next() {
	if l.cur == nil {
		return
	}
	l.cur.Next()
	l.skipEmpty()
}

func (l *levelIter) Prev() {
	if l.cur == nil {
		return
	}
	l.cur.Prev()
	l.skipEmptyBackward()
}

func (l *levelIter) skipEmptyBackward() {
	for l.err == nil && l.cur != nil && !l.cur.Valid() {
		if err := l.cur.Error(); err != nil {
			l.err = err
			return
		}
		if l.idx-1 < 0 {
			l.cur = nil
			return
		}
		l.open(l.idx - 1)
		l.cur.SeekToLast()
	}
}

func (l *levelIter) skipEmpty() {
	for l.err == nil && l.cur != nil && !l.cur.Valid() {
		if err := l.cur.Error(); err != nil {
			l.err = err
			return
		}
		if l.idx+1 >= len(l.readers) {
			l.cur = nil
			return
		}
		l.open(l.idx + 1)
		l.cur.SeekToFirst()
	}
}

func (l *levelIter) Key() []byte   { return l.cur.Key() }
func (l *levelIter) Value() []byte { return l.cur.Value() }
func (l *levelIter) Error() error {
	if l.err != nil {
		return l.err
	}
	if l.cur != nil {
		return l.cur.Error()
	}
	return nil
}
