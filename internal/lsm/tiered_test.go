package lsm

import (
	"fmt"
	"testing"

	"fcae/internal/core"
)

func tieredOpts() Options {
	o := smallOpts()
	o.TieredRuns = 4
	return o
}

func TestTieredModePreservesData(t *testing.T) {
	db := openTest(t, tieredOpts())
	want := fillRandom(t, db, 4000, 100, 71)
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Compactions == 0 {
		t.Fatal("tiered workload triggered no compactions")
	}
	verifyAll(t, db, want)
}

func TestTieredLevelsHoldMultipleRuns(t *testing.T) {
	db := openTest(t, tieredOpts()) // TieredRuns = 4
	// Three L0 merges, each pushing one fresh run into L1 without merging
	// L1's existing runs: L1 must accumulate three overlapping runs
	// (below the trigger, so they stay).
	for round := 0; round < 3; round++ {
		for i := 0; i < 400; i++ {
			k := fmt.Sprintf("key%05d", i*3+round)
			if err := db.Put([]byte(k), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := db.CompactLevel(0); err != nil {
			t.Fatal(err)
		}
	}
	if n := db.vs.Current().NumRuns(1); n != 3 {
		t.Fatalf("L1 holds %d runs, want 3 (lazy merges must not touch existing runs)", n)
	}
}

func TestTieredMultiRunJobsReachEngine(t *testing.T) {
	// The paper's §VII-C scenario: lazy compaction produces merges with
	// more than two sorted runs, which only the multi-input engine can
	// take; the 2-input engine must fall back for them.
	run := func(n int) (hw, fallback int64) {
		exec, err := core.NewExecutor(core.Config{N: n, V: 8, WIn: 8, WOut: 64})
		if err != nil {
			t.Fatal(err)
		}
		opts := tieredOpts()
		opts.Executor = exec
		db := openTest(t, opts)
		fillRandom(t, db, 5000, 100, 77)
		if err := db.WaitIdle(); err != nil {
			t.Fatal(err)
		}
		st := db.Stats()
		return st.HWCompactions, st.SWFallbacks
	}
	hw9, fb9 := run(9)
	hw2, fb2 := run(2)
	if hw9 == 0 {
		t.Fatal("9-input engine took no tiered merges")
	}
	if fb2 <= fb9 {
		t.Fatalf("2-input engine should fall back more often on tiered merges: %d vs %d (hw %d vs %d)",
			fb2, fb9, hw2, hw9)
	}
}

func TestTieredIteratorMergesRuns(t *testing.T) {
	db := openTest(t, tieredOpts())
	// Interleave overwrites so multiple runs hold versions of the same keys.
	for round := 0; round < 6; round++ {
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("key%04d", i)
			v := fmt.Sprintf("round%d", round)
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		if string(it.Value()) != "round5" {
			t.Fatalf("key %q shows stale version %q", it.Key(), it.Value())
		}
		n++
	}
	if n != 300 {
		t.Fatalf("scan saw %d keys, want 300", n)
	}
	// Backward too.
	for ok := it.Last(); ok; ok = it.Prev() {
		if string(it.Value()) != "round5" {
			t.Fatalf("backward: key %q shows stale version %q", it.Key(), it.Value())
		}
	}
}

func TestTieredDeletesRespectOtherRuns(t *testing.T) {
	// A tombstone must shadow values living in other runs of deeper
	// levels even after several tiered merges.
	db := openTest(t, tieredOpts())
	if err := db.Put([]byte("victim"), []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactLevel(0); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete([]byte("victim")); err != nil {
		t.Fatal(err)
	}
	// Push the tombstone down through several merges while the old value
	// sits in an older run.
	for i := 0; i < 3; i++ {
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := db.CompactLevel(0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Get([]byte("victim")); err != ErrNotFound {
		t.Fatalf("deleted key visible again: %v", err)
	}
	it, _ := db.NewIterator()
	defer it.Close()
	for ok := it.First(); ok; ok = it.Next() {
		if string(it.Key()) == "victim" {
			t.Fatal("tombstoned key resurfaced in scan")
		}
	}
}

func TestTieredRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := tieredOpts()
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := fillRandom(t, db, 3000, 80, 79)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	verifyAll(t, db2, want)
	// Run ids must survive the manifest round trip.
	v := db2.vs.Current()
	for level := 1; level < len(v.Levels); level++ {
		for _, g := range v.RunGroups(level) {
			for _, f := range g[1:] {
				if f.RunID != g[0].RunID {
					t.Fatal("run grouping broken after recovery")
				}
			}
		}
	}
}

func TestTieredModelCheck(t *testing.T) {
	runModelCheck(t, func() Options {
		o := tieredOpts()
		o.Executor, _ = core.NewExecutor(core.MultiInputConfig())
		return o
	}, 3000, 83)
}

func TestTieredWriteAmpLowerThanLeveled(t *testing.T) {
	// The point of lazy compaction: less rewriting per ingested byte.
	fill := func(opts Options) float64 {
		db := openTest(t, opts)
		fillRandom(t, db, 6000, 100, 89)
		if err := db.WaitIdle(); err != nil {
			t.Fatal(err)
		}
		return db.WriteAmplification()
	}
	leveled := fill(smallOpts())
	tiered := fill(tieredOpts())
	if tiered >= leveled {
		t.Fatalf("tiered WA %.2f should undercut leveled %.2f", tiered, leveled)
	}
}
