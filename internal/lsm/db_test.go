package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"fcae/internal/core"
	"fcae/internal/keys"
)

func openTest(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// smallOpts shrink thresholds so compactions trigger quickly in tests.
func smallOpts() Options {
	return Options{
		MemTableBytes:      32 << 10,
		BaseLevelBytes:     128 << 10,
		MaxOutputFileBytes: 32 << 10,
		BlockCacheBytes:    1 << 20,
	}
}

func TestPutGetDelete(t *testing.T) {
	db := openTest(t, Options{})
	if err := db.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("hello"))
	if err != nil || string(v) != "world" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := db.Delete([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("hello")); err != ErrNotFound {
		t.Fatalf("deleted key: err = %v", err)
	}
	if _, err := db.Get([]byte("never")); err != ErrNotFound {
		t.Fatalf("absent key: err = %v", err)
	}
}

func TestOverwrite(t *testing.T) {
	db := openTest(t, Options{})
	for i := 0; i < 10; i++ {
		if err := db.Put([]byte("k"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, err := db.Get([]byte("k"))
	if err != nil || string(v) != "v9" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}

func TestBatchAtomicCommit(t *testing.T) {
	db := openTest(t, Options{})
	var b Batch
	for i := 0; i < 100; i++ {
		b.Put([]byte(fmt.Sprintf("bk%03d", i)), []byte(fmt.Sprintf("bv%03d", i)))
	}
	b.Delete([]byte("bk050"))
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("bk050")); err != ErrNotFound {
		t.Fatal("delete in batch not applied")
	}
	v, err := db.Get([]byte("bk099"))
	if err != nil || string(v) != "bv099" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}

func TestFlushPersistsToL0(t *testing.T) {
	db := openTest(t, Options{})
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("val%04d", i)))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	files := db.LevelFiles()
	if files[0] == 0 {
		t.Fatal("flush produced no L0 table")
	}
	v, err := db.Get([]byte("key0042"))
	if err != nil || string(v) != "val0042" {
		t.Fatalf("Get after flush = %q, %v", v, err)
	}
}

// fillRandom writes n random-keyed entries and returns the model map.
func fillRandom(t *testing.T, db *DB, n, valueLen int, seed int64) map[string]string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	want := make(map[string]string)
	val := make([]byte, valueLen)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%08d", rng.Intn(n*4))
		rng.Read(val)
		if rng.Intn(10) == 0 && want[k] != "" {
			if err := db.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(want, k)
			continue
		}
		if err := db.Put([]byte(k), val); err != nil {
			t.Fatal(err)
		}
		want[k] = string(val)
	}
	return want
}

func verifyAll(t *testing.T, db *DB, want map[string]string) {
	t.Helper()
	for k, v := range want {
		got, err := db.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("Get(%q) mismatch (%d vs %d bytes)", k, len(got), len(v))
		}
	}
}

func TestCompactionsPreserveData(t *testing.T) {
	db := openTest(t, smallOpts())
	want := fillRandom(t, db, 4000, 100, 7)
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Compactions+st.TrivialMoves == 0 {
		t.Fatal("workload did not trigger any compaction")
	}
	levels := db.LevelFiles()
	deeper := 0
	for l := 1; l < len(levels); l++ {
		deeper += levels[l]
	}
	if deeper == 0 {
		t.Fatalf("no tables moved below L0: %v", levels)
	}
	verifyAll(t, db, want)
}

func TestFCAEBackendEndToEnd(t *testing.T) {
	exec, err := core.NewExecutor(core.MultiInputConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts()
	opts.Executor = exec
	db := openTest(t, opts)
	want := fillRandom(t, db, 4000, 100, 11)
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.HWCompactions == 0 {
		t.Fatal("no compactions ran on the FCAE backend")
	}
	if st.KernelTime <= 0 || st.TransferTime <= 0 {
		t.Fatalf("modeled times missing: %+v", st)
	}
	verifyAll(t, db, want)
}

func TestFCAEAndCPUProduceSameContents(t *testing.T) {
	exec, err := core.NewExecutor(core.MultiInputConfig())
	if err != nil {
		t.Fatal(err)
	}
	cpuOpts := smallOpts()
	fcaeOpts := smallOpts()
	fcaeOpts.Executor = exec

	cpuDB := openTest(t, cpuOpts)
	fcaeDB := openTest(t, fcaeOpts)
	// Same deterministic workload into both.
	rng := rand.New(rand.NewSource(3))
	val := make([]byte, 64)
	for i := 0; i < 3000; i++ {
		k := []byte(fmt.Sprintf("key%06d", rng.Intn(5000)))
		rng.Read(val)
		if err := cpuDB.Put(k, val); err != nil {
			t.Fatal(err)
		}
		if err := fcaeDB.Put(k, val); err != nil {
			t.Fatal(err)
		}
	}
	if err := cpuDB.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if err := fcaeDB.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	itC, err := cpuDB.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer itC.Close()
	itF, err := fcaeDB.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer itF.Close()
	okC, okF := itC.First(), itF.First()
	n := 0
	for okC && okF {
		if !bytes.Equal(itC.Key(), itF.Key()) || !bytes.Equal(itC.Value(), itF.Value()) {
			t.Fatalf("divergence at entry %d: %q vs %q", n, itC.Key(), itF.Key())
		}
		okC, okF = itC.Next(), itF.Next()
		n++
	}
	if okC != okF {
		t.Fatal("iterators ended at different lengths")
	}
	if n == 0 {
		t.Fatal("no entries compared")
	}
}

func TestRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("val%04d", i)))
	}
	// Close without flushing: data only in the WAL.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for _, i := range []int{0, 250, 499} {
		v, err := db2.Get([]byte(fmt.Sprintf("key%04d", i)))
		if err != nil || string(v) != fmt.Sprintf("val%04d", i) {
			t.Fatalf("recovered Get(%d) = %q, %v", i, v, err)
		}
	}
}

func TestRecoveryAfterCompactions(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := fillRandom(t, db, 3000, 80, 13)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	verifyAll(t, db2, want)
}

func TestIteratorFullScan(t *testing.T) {
	db := openTest(t, smallOpts())
	want := fillRandom(t, db, 2000, 50, 17)
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	got := make(map[string]string)
	var prev []byte
	for ok := it.First(); ok; ok = it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatal("iterator keys not strictly ascending")
		}
		prev = append(prev[:0], it.Key()...)
		got[string(it.Key())] = string(it.Value())
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan found %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q mismatch", k)
		}
	}
}

func TestIteratorSeek(t *testing.T) {
	db := openTest(t, Options{})
	for i := 0; i < 100; i += 2 {
		db.Put([]byte(fmt.Sprintf("key%03d", i)), []byte("v"))
	}
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if !it.Seek([]byte("key051")) || string(it.Key()) != "key052" {
		t.Fatalf("Seek(key051) landed on %q", it.Key())
	}
	if !it.Seek([]byte("key000")) || string(it.Key()) != "key000" {
		t.Fatalf("Seek(key000) landed on %q", it.Key())
	}
	if it.Seek([]byte("zzz")) {
		t.Fatal("Seek past end should be invalid")
	}
}

func TestIteratorHidesTombstonesAcrossLevels(t *testing.T) {
	db := openTest(t, Options{})
	db.Put([]byte("a"), []byte("1"))
	db.Put([]byte("b"), []byte("2"))
	db.Put([]byte("c"), []byte("3"))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Delete([]byte("b"))
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var seen []string
	for ok := it.First(); ok; ok = it.Next() {
		seen = append(seen, string(it.Key()))
	}
	if len(seen) != 2 || seen[0] != "a" || seen[1] != "c" {
		t.Fatalf("scan = %v, want [a c]", seen)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	db := openTest(t, Options{})
	db.Put([]byte("k"), []byte("old"))
	snap := db.NewSnapshot()
	defer snap.Release()
	db.Put([]byte("k"), []byte("new"))
	db.Delete([]byte("gone"))

	v, err := snap.Get([]byte("k"))
	if err != nil || string(v) != "old" {
		t.Fatalf("snapshot Get = %q, %v", v, err)
	}
	v, err = db.Get([]byte("k"))
	if err != nil || string(v) != "new" {
		t.Fatalf("live Get = %q, %v", v, err)
	}
}

func TestSnapshotSurvivesFlushAndCompaction(t *testing.T) {
	db := openTest(t, smallOpts())
	db.Put([]byte("pinned"), []byte("v1"))
	snap := db.NewSnapshot()
	defer snap.Release()
	fillRandom(t, db, 3000, 100, 23)
	db.Put([]byte("pinned"), []byte("v2"))
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	v, err := snap.Get([]byte("pinned"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("snapshot after compactions = %q, %v", v, err)
	}
}

func TestSnapshotIterator(t *testing.T) {
	db := openTest(t, Options{})
	db.Put([]byte("a"), []byte("1"))
	snap := db.NewSnapshot()
	defer snap.Release()
	db.Put([]byte("b"), []byte("2"))
	it, err := snap.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		n++
	}
	if n != 1 {
		t.Fatalf("snapshot iterator saw %d keys, want 1", n)
	}
}

func TestWriteStallCountersUnderPressure(t *testing.T) {
	opts := smallOpts()
	opts.MemTableBytes = 8 << 10
	opts.L0SlowdownTrigger = 2
	opts.L0StopTrigger = 4
	opts.L0CompactionTrigger = 2
	db := openTest(t, opts)
	val := bytes.Repeat([]byte("x"), 512)
	for i := 0; i < 2000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key%08d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.StallWrites == 0 {
		t.Fatal("aggressive thresholds should have stalled some writes")
	}
}

func TestCloseThenOperations(t *testing.T) {
	db := openTest(t, Options{})
	db.Put([]byte("k"), []byte("v"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("x"), []byte("y")); err != ErrClosed {
		t.Fatalf("Put after close: %v", err)
	}
	if _, err := db.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("Get after close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestManualCompactLevel(t *testing.T) {
	db := openTest(t, Options{})
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("v"))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactLevel(0); err != nil {
		t.Fatal(err)
	}
	files := db.LevelFiles()
	if files[0] != 0 {
		t.Fatalf("L0 still has %d files after manual compaction", files[0])
	}
	if files[1] == 0 {
		t.Fatal("manual compaction produced nothing at L1")
	}
	v, err := db.Get([]byte("key0042"))
	if err != nil || string(v) != "v" {
		t.Fatalf("Get after manual compaction = %q, %v", v, err)
	}
}

func TestEmptyBatchIsNoop(t *testing.T) {
	db := openTest(t, Options{})
	var b Batch
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Writes != 0 {
		t.Fatal("empty batch counted as a write")
	}
}

func TestLargeValues(t *testing.T) {
	db := openTest(t, Options{})
	val := bytes.Repeat([]byte("V"), 1<<20)
	if err := db.Put([]byte("big"), val); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get([]byte("big"))
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("big value: %v, %d bytes", err, len(got))
	}
}

func TestKeysWithBinaryContent(t *testing.T) {
	db := openTest(t, Options{})
	k := []byte{0x00, 0xff, 0x01, 0xfe}
	v := []byte{0xde, 0xad, 0xbe, 0xef}
	if err := db.Put(k, v); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get(k)
	if err != nil || !bytes.Equal(got, v) {
		t.Fatalf("binary key round trip: %v", err)
	}
}

func TestSeqAdvancesAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir, Options{})
	db.Put([]byte("k"), []byte("v1"))
	db.Close()
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	db2.Put([]byte("k"), []byte("v2"))
	v, err := db2.Get([]byte("k"))
	if err != nil || string(v) != "v2" {
		t.Fatalf("after reopen Get = %q, %v (sequence regression?)", v, err)
	}
	_ = keys.MaxSeq
}

func TestPropertyString(t *testing.T) {
	db := openTest(t, smallOpts())
	fillRandom(t, db, 1500, 80, 31)
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	s := db.PropertyString()
	for _, want := range []string{"Level", "compactions:", "write stalls:"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Fatalf("PropertyString missing %q:\n%s", want, s)
		}
	}
	if wa := db.WriteAmplification(); wa < 1 {
		t.Fatalf("WriteAmplification = %.2f", wa)
	}
}

func TestCompactRange(t *testing.T) {
	db := openTest(t, smallOpts())
	want := fillRandom(t, db, 2000, 80, 37)
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	files := db.LevelFiles()
	if files[0] != 0 {
		t.Fatalf("CompactRange left %d files in L0", files[0])
	}
	verifyAll(t, db, want)
}

func TestCompactRangePartial(t *testing.T) {
	db := openTest(t, Options{})
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("v"))
	}
	if err := db.CompactRange([]byte("key0050"), []byte("key0100")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("key0075"))
	if err != nil || string(v) != "v" {
		t.Fatalf("Get after partial CompactRange: %v", err)
	}
}

func TestSeekCompactionTriggers(t *testing.T) {
	opts := Options{}
	db := openTest(t, opts)
	// Two overlapping tables so a Get on a key in the second probes (and
	// misses) the first.
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("key%04d", i*2)), []byte("old"))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("key%04d", i*2+1)), []byte("new"))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Exhaust the newer table's seek allowance (min allowance is 100).
	for i := 0; i < 150; i++ {
		if _, err := db.Get([]byte("key0002")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().SeekCompactions == 0 {
		t.Fatal("repeated cross-table probes should trigger a seek compaction")
	}
	// Data intact afterwards.
	v, err := db.Get([]byte("key0003"))
	if err != nil || string(v) != "new" {
		t.Fatalf("Get after seek compaction = %q, %v", v, err)
	}
}

func TestApproximateSize(t *testing.T) {
	db := openTest(t, Options{})
	rng := rand.New(rand.NewSource(53))
	val := make([]byte, 100)
	for i := 0; i < 1000; i++ {
		rng.Read(val)
		db.Put([]byte(fmt.Sprintf("key%06d", i)), val)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	whole := db.ApproximateSize(nil, nil)
	if whole < 50<<10 {
		t.Fatalf("whole-range estimate %d implausibly small", whole)
	}
	half := db.ApproximateSize([]byte("key000000"), []byte("key000500"))
	if half == 0 || half > whole {
		t.Fatalf("half-range estimate %d vs whole %d", half, whole)
	}
	none := db.ApproximateSize([]byte("zzz"), nil)
	if none != 0 {
		t.Fatalf("empty-range estimate %d", none)
	}
}

func TestCheckpoint(t *testing.T) {
	db := openTest(t, smallOpts())
	want := fillRandom(t, db, 2500, 80, 61)
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	dest := t.TempDir() + "/checkpoint"
	if err := db.Checkpoint(dest); err != nil {
		t.Fatal(err)
	}
	// Mutate the source after the checkpoint.
	for k := range want {
		db.Put([]byte(k), []byte("mutated"))
		break
	}

	cp, err := Open(dest, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	verifyAll(t, cp, want)
	// The checkpoint is writable and independent.
	if err := cp.Put([]byte("new-in-checkpoint"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("new-in-checkpoint")); err != ErrNotFound {
		t.Fatal("checkpoint write leaked into the source store")
	}
}

func TestCheckpointRefusesExistingDir(t *testing.T) {
	db := openTest(t, Options{})
	if err := db.Checkpoint(t.TempDir()); err == nil {
		t.Fatal("existing destination accepted")
	}
}

func TestRepairRebuildsManifest(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Unique keys: Repair approximates cross-table recency by file number
	// (documented limitation), so overwritten keys may surface stale
	// versions; fresh keys are recovered exactly.
	want := map[string]string{}
	rng := rand.New(rand.NewSource(91))
	val := make([]byte, 80)
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key%08d", i)
		rng.Read(val)
		if err := db.Put([]byte(k), val); err != nil {
			t.Fatal(err)
		}
		want[k] = string(val)
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Destroy the metadata.
	os.Remove(dir + "/CURRENT")
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if kind, _ := parseFileName(e.Name()); kind == kindManifest {
			os.Remove(dir + "/" + e.Name())
		}
	}
	// NOTE: opening without repairing would create a fresh empty DB and
	// garbage-collect the orphaned tables — Repair must run first.
	if err := Repair(dir, smallOpts()); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	verifyAll(t, db2, want)
}

func TestRepairQuarantinesCorruptTables(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir, Options{})
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	db.Flush()
	db.Close()
	// Corrupt one table beyond recognition.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if kind, _ := parseFileName(e.Name()); kind == kindTable {
			os.WriteFile(dir+"/"+e.Name(), []byte("garbage"), 0o644)
			break
		}
	}
	if err := Repair(dir, Options{}); err != nil {
		t.Fatal(err)
	}
	found := false
	entries, _ = os.ReadDir(dir)
	for _, e := range entries {
		if len(e.Name()) > 8 && e.Name()[len(e.Name())-8:] == ".corrupt" {
			found = true
		}
	}
	if !found {
		t.Fatal("corrupt table was not quarantined")
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db2.Close()
}
