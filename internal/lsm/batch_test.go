package lsm

import (
	"bytes"
	"testing"

	"fcae/internal/keys"
)

func TestBatchEncodeIterate(t *testing.T) {
	var b Batch
	b.Put([]byte("alpha"), []byte("1"))
	b.Delete([]byte("beta"))
	b.Put([]byte("gamma"), []byte("3"))
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	rep := b.seal(100)

	type rec struct {
		seq   uint64
		kind  keys.Kind
		key   string
		value string
	}
	var got []rec
	err := batchIterate(rep, func(seq uint64, kind keys.Kind, key, value []byte) error {
		got = append(got, rec{seq, kind, string(key), string(value)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []rec{
		{100, keys.KindSet, "alpha", "1"},
		{101, keys.KindDelete, "beta", ""},
		{102, keys.KindSet, "gamma", "3"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestBatchSeqHeader(t *testing.T) {
	var b Batch
	b.Put([]byte("k"), []byte("v"))
	rep := b.seal(42)
	seq, count, err := batchSeq(rep)
	if err != nil || seq != 42 || count != 1 {
		t.Fatalf("batchSeq = %d, %d, %v", seq, count, err)
	}
}

func TestBatchReset(t *testing.T) {
	var b Batch
	b.Put([]byte("k"), []byte("v"))
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset did not clear the batch")
	}
	b.Put([]byte("k2"), []byte("v2"))
	rep := b.seal(1)
	n := 0
	batchIterate(rep, func(seq uint64, kind keys.Kind, key, value []byte) error {
		n++
		if !bytes.Equal(key, []byte("k2")) {
			t.Errorf("stale record after reset: %q", key)
		}
		return nil
	})
	if n != 1 {
		t.Fatalf("%d records after reset", n)
	}
}

func TestBatchCorruptRejected(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, batchHeaderSize-1),
		{0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0}, // count=1, no records
		append(make([]byte, batchHeaderSize), 99),
	}
	// Fix count in the last case's header.
	cases[3][8] = 1
	for i, c := range cases {
		err := batchIterate(c, func(uint64, keys.Kind, []byte, []byte) error { return nil })
		if err == nil {
			t.Errorf("case %d: corrupt batch accepted", i)
		}
	}
}

func TestBatchLargeValues(t *testing.T) {
	var b Batch
	big := bytes.Repeat([]byte("x"), 1<<20)
	b.Put([]byte("big"), big)
	rep := b.seal(7)
	err := batchIterate(rep, func(seq uint64, kind keys.Kind, key, value []byte) error {
		if !bytes.Equal(value, big) {
			t.Error("large value corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() < 1<<20 {
		t.Fatal("Size does not reflect payload")
	}
}

func TestParseFileName(t *testing.T) {
	cases := []struct {
		name string
		kind fileKind
		num  uint64
	}{
		{"CURRENT", kindCurrent, 0},
		{"MANIFEST-000005", kindManifest, 5},
		{"000123.log", kindWAL, 123},
		{"000456.ldb", kindTable, 456},
		{"CURRENT.000003.tmp", kindTemp, 0},
		{"garbage", kindUnknown, 0},
		{"xyz.ldb", kindUnknown, 0},
		{"MANIFEST-abc", kindUnknown, 0},
	}
	for _, c := range cases {
		kind, num := parseFileName(c.name)
		if kind != c.kind || num != c.num {
			t.Errorf("parseFileName(%q) = %v, %d; want %v, %d", c.name, kind, num, c.kind, c.num)
		}
	}
}
