package lsm

import (
	"strings"
	"testing"

	"fcae/internal/sstable"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		wantErr string // empty means valid
	}{
		{name: "zero value", opts: Options{}},
		{name: "paper defaults spelled out", opts: Options{
			MemTableBytes: 4 << 20, BlockSize: 4096, RestartInterval: 16,
			FilterBitsPerKey: 10, LevelRatio: 10,
			L0CompactionTrigger: 4, L0SlowdownTrigger: 8, L0StopTrigger: 12,
		}},
		{name: "tiered runs", opts: Options{TieredRuns: 4}},
		{name: "compression disabled alone", opts: Options{DisableCompression: true}},
		{name: "filter disabled alone", opts: Options{DisableFilter: true}},
		{name: "equal triggers", opts: Options{
			L0CompactionTrigger: 6, L0SlowdownTrigger: 6, L0StopTrigger: 6,
		}},

		{name: "negative memtable", opts: Options{MemTableBytes: -1},
			wantErr: "MemTableBytes is negative"},
		{name: "negative block size", opts: Options{BlockSize: -4096},
			wantErr: "BlockSize is negative"},
		{name: "negative restart interval", opts: Options{RestartInterval: -2},
			wantErr: "RestartInterval is negative"},
		{name: "negative filter bits", opts: Options{FilterBitsPerKey: -10},
			wantErr: "FilterBitsPerKey is negative"},
		{name: "negative cache", opts: Options{BlockCacheBytes: -1},
			wantErr: "BlockCacheBytes is negative"},
		{name: "negative level ratio", opts: Options{LevelRatio: -10},
			wantErr: "LevelRatio is negative"},
		{name: "negative tiered runs", opts: Options{TieredRuns: -1},
			wantErr: "TieredRuns is negative"},
		{name: "compression contradiction",
			opts:    Options{DisableCompression: true, Compression: sstable.SnappyCompression},
			wantErr: "DisableCompression set but Compression requests snappy"},
		{name: "filter contradiction",
			opts:    Options{DisableFilter: true, FilterBitsPerKey: 10},
			wantErr: "DisableFilter set but FilterBitsPerKey"},
		{name: "slowdown above stop",
			opts:    Options{L0SlowdownTrigger: 20, L0StopTrigger: 10},
			wantErr: "L0SlowdownTrigger (20) exceeds L0StopTrigger (10)"},
		{name: "slowdown above defaulted stop",
			opts:    Options{L0SlowdownTrigger: 50},
			wantErr: "exceeds L0StopTrigger (12)"},
		{name: "compaction trigger above stop",
			opts:    Options{L0CompactionTrigger: 30, L0StopTrigger: 16},
			wantErr: "L0CompactionTrigger (30) exceeds L0StopTrigger (16)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestOpenRejectsInvalidOptions checks that Open surfaces Validate errors
// before touching the directory.
func TestOpenRejectsInvalidOptions(t *testing.T) {
	dir := t.TempDir()
	_, err := Open(dir, Options{L0SlowdownTrigger: 99, L0StopTrigger: 3})
	if err == nil || !strings.Contains(err.Error(), "L0SlowdownTrigger") {
		t.Fatalf("Open with inverted triggers: err = %v", err)
	}
}
