package lsm

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
)

func TestBackwardFullScan(t *testing.T) {
	db := openTest(t, smallOpts())
	want := fillRandom(t, db, 2000, 50, 41)
	var sorted []string
	for k := range want {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	i := len(sorted) - 1
	for ok := it.Last(); ok; ok = it.Prev() {
		if i < 0 {
			t.Fatal("backward scan returned extra keys")
		}
		if string(it.Key()) != sorted[i] {
			t.Fatalf("backward position %d: got %q want %q", i, it.Key(), sorted[i])
		}
		if string(it.Value()) != want[sorted[i]] {
			t.Fatalf("backward value mismatch at %q", it.Key())
		}
		i--
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if i != -1 {
		t.Fatalf("backward scan stopped with %d keys remaining", i+1)
	}
}

func TestDirectionSwitching(t *testing.T) {
	db := openTest(t, Options{})
	for i := 0; i < 20; i++ {
		db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i)))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("k05"), []byte("v05b")) // newer version in the memtable

	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	if !it.Seek([]byte("k05")) || string(it.Key()) != "k05" || string(it.Value()) != "v05b" {
		t.Fatalf("Seek(k05) = %q/%q", it.Key(), it.Value())
	}
	if !it.Next() || string(it.Key()) != "k06" {
		t.Fatalf("Next = %q", it.Key())
	}
	if !it.Prev() || string(it.Key()) != "k05" || string(it.Value()) != "v05b" {
		t.Fatalf("Prev after Next = %q/%q (must surface the NEWEST version)", it.Key(), it.Value())
	}
	if !it.Prev() || string(it.Key()) != "k04" {
		t.Fatalf("second Prev = %q", it.Key())
	}
	if !it.Next() || string(it.Key()) != "k05" {
		t.Fatalf("Next after Prev = %q", it.Key())
	}
	// Walk to the boundary.
	if !it.First() || string(it.Key()) != "k00" {
		t.Fatalf("First = %q", it.Key())
	}
	if it.Prev() {
		t.Fatal("Prev before first should invalidate")
	}
	if !it.Last() || string(it.Key()) != "k19" {
		t.Fatalf("Last = %q", it.Key())
	}
	if it.Next() {
		t.Fatal("Next after last should invalidate")
	}
}

func TestBackwardHidesTombstones(t *testing.T) {
	db := openTest(t, Options{})
	db.Put([]byte("a"), []byte("1"))
	db.Put([]byte("b"), []byte("2"))
	db.Put([]byte("c"), []byte("3"))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Delete([]byte("b"))

	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var seen []string
	for ok := it.Last(); ok; ok = it.Prev() {
		seen = append(seen, string(it.Key()))
	}
	if len(seen) != 2 || seen[0] != "c" || seen[1] != "a" {
		t.Fatalf("backward scan = %v, want [c a]", seen)
	}
}

func TestBackwardSnapshotVisibility(t *testing.T) {
	db := openTest(t, Options{})
	db.Put([]byte("k"), []byte("old"))
	snap := db.NewSnapshot()
	defer snap.Release()
	db.Put([]byte("k"), []byte("new"))
	db.Put([]byte("z"), []byte("after"))

	it, err := snap.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if !it.Last() || string(it.Key()) != "k" || string(it.Value()) != "old" {
		t.Fatalf("snapshot Last = %q/%q, want k/old", it.Key(), it.Value())
	}
	if it.Prev() {
		t.Fatal("snapshot should contain only one key")
	}
}

func TestForwardBackwardAgree(t *testing.T) {
	db := openTest(t, smallOpts())
	fillRandom(t, db, 1000, 40, 43)
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var fwd [][]byte
	for ok := it.First(); ok; ok = it.Next() {
		fwd = append(fwd, append([]byte(nil), it.Key()...))
	}
	var bwd [][]byte
	for ok := it.Last(); ok; ok = it.Prev() {
		bwd = append(bwd, append([]byte(nil), it.Key()...))
	}
	if len(fwd) != len(bwd) {
		t.Fatalf("forward %d keys, backward %d", len(fwd), len(bwd))
	}
	for i := range fwd {
		if !bytes.Equal(fwd[i], bwd[len(bwd)-1-i]) {
			t.Fatalf("order disagrees at %d: %q vs %q", i, fwd[i], bwd[len(bwd)-1-i])
		}
	}
}
