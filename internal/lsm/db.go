package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
	"time"

	"fcae/internal/cache"
	"fcae/internal/crc"
	"fcae/internal/dispatch"
	"fcae/internal/keys"
	"fcae/internal/manifest"
	"fcae/internal/memtable"
	"fcae/internal/obs"
	"fcae/internal/wal"
)

// ErrNotFound is returned by Get when the key does not exist.
var ErrNotFound = errors.New("lsm: not found")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("lsm: database closed")

// DB is an LSM-tree key-value store. All methods are safe for concurrent
// use.
type DB struct {
	dir        string
	opts       Options
	vs         *manifest.VersionSet
	blockCache *cache.Cache
	tables     *tableCache
	listener   obs.EventListener // nil when no listener is configured
	reg        *obs.Registry
	met        dbMetrics
	// sched routes compaction merges between the device channel pool and
	// the CPU lane (package dispatch); immutable after Open.
	sched *dispatch.Scheduler
	// poolSize is the number of shared flush/compaction pool workers
	// (DispatchConfig.Workers); immutable after Open.
	poolSize int
	// wg joins every shared pool worker; Close waits on it after the
	// workers observe the closed flag.
	wg sync.WaitGroup
	// evMu serializes event delivery to the listener. Lock order is
	// strictly evMu -> mu (flushEvents); it is never acquired with mu held.
	//
	//fcae:lock-order lsm.DB.evMu -> lsm.DB.mu
	evMu sync.Mutex

	mu        sync.Mutex
	mem       *memtable.MemTable
	imm       *memtable.MemTable
	wal       *wal.Writer
	walFile   *os.File
	walNum    uint64
	seq       uint64
	snapshots map[uint64]int
	bgCond    *sync.Cond
	writeCond *sync.Cond
	writers   []*writer
	bgErr     error
	closed    bool
	memSeed   int64

	committing  bool // a group leader is writing the WAL unlocked
	flushBusy   bool
	compacting  int // compaction workers currently running a job
	manualLevel int // -1 when no manual compaction is requested
	// busyLevels claims level ranges for in-flight compactions: a worker
	// marks its job's input and output levels before releasing mu, so
	// concurrent workers never pick overlapping file sets.
	busyLevels [manifest.NumLevels]bool
	// pendingOutputs holds table numbers being written by an in-flight
	// compaction so the obsolete-file sweep does not reap them before
	// their version edit lands.
	pendingOutputs map[uint64]bool
	// holdDeletions suspends the obsolete-file sweep entirely while an
	// external backup copies the directory (DisableFileDeletions).
	holdDeletions int
	// pendingEvents are delivery closures queued under mu, drained by
	// flushEvents outside it (see events.go).
	pendingEvents []func(obs.EventListener)
	jobSeq        uint64 // flush/compaction job id allocator

	stats Stats
}

// Stats aggregates operational counters.
type Stats struct {
	Writes          int64
	BytesWritten    int64
	GroupCommits    int64 // WAL records written (leaders)
	GroupedWrites   int64 // Write calls committed, including followers
	Flushes         int64
	FlushBytes      int64
	Compactions     int64
	HWCompactions   int64 // executed on the FCAE backend
	SWFallbacks     int64 // exceeded the engine's N and ran in software
	TrivialMoves    int64
	SeekCompactions int64 // triggered by the seek-allowance heuristic
	CompactionRead  int64
	CompactionWrite int64
	KernelTime      time.Duration // modeled engine time
	TransferTime    time.Duration // modeled PCIe time
	StallTime       time.Duration // foreground write throttling
	StallWrites     int64

	// Levels breaks compaction work down by source level (flushes count
	// as level -1 -> 0 and are reported separately above).
	Levels [manifest.NumLevels]LevelStat
}

// LevelStat is per-level compaction accounting.
type LevelStat struct {
	Compactions  int64
	BytesRead    int64
	BytesWritten int64
	Wall         time.Duration
}

func walCRC(t byte, payload []byte) uint32 {
	return crc.Extend(crc.Value([]byte{t}), payload)
}

// Open opens (creating if necessary) the database in dir. Contradictory
// options are rejected with a descriptive error (see Options.Validate).
func Open(dir string, opts Options) (*DB, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	vs, err := manifest.Open(dir, opts.manifestConfig())
	if err != nil {
		return nil, err
	}
	bc := cache.New(opts.BlockCacheBytes)
	reg := obs.NewRegistry()
	dcfg := opts.dispatchConfig()
	sched, err := dispatch.New(dispatch.Config{
		Devices:  dcfg.Devices,
		Injector: dcfg.FaultInjector,
		Tuning:   dcfg.Tuning,
	})
	if err != nil {
		_ = vs.Close()
		return nil, err
	}
	db := &DB{
		dir:            dir,
		opts:           opts,
		vs:             vs,
		blockCache:     bc,
		tables:         newTableCache(dir, opts.tableOpts(), bc, 500),
		listener:       opts.EventListener,
		reg:            reg,
		met:            newDBMetrics(reg),
		sched:          sched,
		poolSize:       dcfg.Workers,
		snapshots:      make(map[uint64]int),
		seq:            vs.LastSeq(),
		memSeed:        opts.SkiplistSeed,
		manualLevel:    -1,
		pendingOutputs: make(map[uint64]bool),
	}
	db.registerGauges()
	db.bgCond = sync.NewCond(&db.mu)
	db.writeCond = sync.NewCond(&db.mu)

	// Recovery is single-threaded, but the helpers it uses follow the
	// *Locked convention, so hold the mutex until the workers start.
	db.mu.Lock()
	db.mem = memtable.New(db.nextMemSeedLocked())

	fail := func(err error) (*DB, error) {
		db.mu.Unlock()
		_ = db.sched.Close()
		_ = vs.Close()
		return nil, err
	}
	if err := db.recoverWALs(); err != nil {
		return fail(err)
	}
	if err := db.newWALLocked(); err != nil {
		return fail(err)
	}
	// Flush recovered entries so the replayed logs can be dropped.
	if !db.mem.Empty() {
		if err := db.flushMem(db.mem, db.nextJobIDLocked()); err != nil {
			return fail(err)
		}
		db.mem = memtable.New(db.nextMemSeedLocked())
	}
	db.deleteObsoleteFilesLocked()
	db.mu.Unlock()
	db.flushEvents() // recovery flush + obsolete-file events

	for i := 0; i < db.poolSize; i++ {
		db.wg.Add(1)
		go db.poolWorker()
	}
	return db, nil
}

func (db *DB) nextMemSeedLocked() int64 {
	db.memSeed++
	return db.memSeed
}

// recoverWALs replays logs newer than the manifest's durable point.
func (db *DB) recoverWALs() error {
	entries, err := os.ReadDir(db.dir)
	if err != nil {
		return err
	}
	var nums []uint64
	minLog := db.vs.LogNum()
	for _, e := range entries {
		if kind, num := parseFileName(e.Name()); kind == kindWAL && num >= minLog {
			nums = append(nums, num)
		}
	}
	sortUint64(nums)
	for _, num := range nums {
		if err := db.replayWALLocked(num); err != nil {
			return fmt.Errorf("lsm: recover %06d.log: %w", num, err)
		}
	}
	return nil
}

func (db *DB) replayWALLocked(num uint64) error {
	f, err := os.Open(walPath(db.dir, num))
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	r := wal.NewReader(f, walCRC)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if errors.Is(err, wal.ErrCorrupt) {
			// Torn tail from a crash: recovery stops here.
			return nil
		}
		if err != nil {
			return err
		}
		applyErr := batchIterate(rec, func(seq uint64, kind keys.Kind, key, value []byte) error {
			db.mem.Add(seq, kind, key, value)
			if seq > db.seq {
				db.seq = seq
			}
			return nil
		})
		if applyErr != nil {
			return applyErr
		}
	}
}

// newWALLocked rotates to a fresh log file.
func (db *DB) newWALLocked() error {
	num := db.vs.AllocFileNum()
	f, err := os.Create(walPath(db.dir, num))
	if err != nil {
		return err
	}
	if db.walFile != nil {
		// The retiring log's records are already applied to the memtable;
		// its fate no longer affects durability.
		_ = db.walFile.Close()
	}
	db.walFile = f
	db.wal = wal.NewWriter(f, walCRC)
	db.walNum = num
	return nil
}

// Put sets key to value.
func (db *DB) Put(key, value []byte) error {
	var b Batch
	b.Put(key, value)
	return db.Write(&b)
}

// Delete removes key.
func (db *DB) Delete(key []byte) error {
	var b Batch
	b.Delete(key)
	return db.Write(&b)
}

// writer is one queued Write call awaiting group commit.
type writer struct {
	batch *Batch
	err   error
	done  bool
}

// Group-commit bounds: a leader coalesces at most this many followers /
// bytes into one WAL record, trading sync count against commit latency.
const (
	maxGroupWriters = 128
	maxGroupBytes   = 1 << 20
)

// Write commits a batch atomically. Concurrent Write calls coalesce: the
// front writer becomes the group leader, appends one combined WAL record
// (and syncs once, if configured) on behalf of everyone queued behind it.
func (db *DB) Write(b *Batch) error {
	err := db.write(b)
	// Deliver anything this write queued (stall begin/end) outside db.mu.
	db.flushEvents()
	return err
}

func (db *DB) write(b *Batch) error {
	if b.Len() == 0 {
		return nil
	}
	w := &writer{batch: b}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.writers = append(db.writers, w)
	for !w.done && db.writers[0] != w {
		db.writeCond.Wait()
	}
	if w.done {
		// A previous leader committed this batch.
		return w.err
	}

	// Leader path.
	if err := db.makeRoomForWrite(); err != nil {
		db.popWritersLocked(1)
		w.done, w.err = true, err
		db.writeCond.Broadcast()
		return err
	}
	group := db.peekGroupLocked(maxGroupWriters, maxGroupBytes)

	total := 0
	for _, g := range group {
		total += g.batch.Len()
	}
	base := db.seq + 1
	var rep []byte
	if len(group) == 1 {
		rep = group[0].batch.seal(base)
	} else {
		rep = make([]byte, batchHeaderSize, maxGroupBytes+batchHeaderSize)
		for _, g := range group {
			rep = append(rep, g.batch.seal(0)[batchHeaderSize:]...)
		}
		binary.LittleEndian.PutUint64(rep[0:8], base)
		binary.LittleEndian.PutUint32(rep[8:12], uint32(total))
	}

	// The slow part — WAL append, optional fsync, memtable insert — runs
	// with the mutex RELEASED so more writers can queue behind this group
	// (that queueing is what makes the next group larger). The committing
	// flag keeps WAL rotation and Close away; the group stays at the
	// queue front so no second leader can start; sequences are published
	// only after the apply, so readers never see a half-applied group.
	mem := db.mem
	db.committing = true
	db.mu.Unlock()
	err := db.wal.Append(rep)
	if err == nil && db.opts.SyncWrites {
		err = db.walFile.Sync()
	}
	if err == nil {
		err = batchIterate(rep, func(seq uint64, kind keys.Kind, key, value []byte) error {
			mem.Add(seq, kind, key, value)
			return nil
		})
	}
	db.mu.Lock()
	db.committing = false

	if err != nil {
		db.bgErr = err
	} else {
		db.seq = base + uint64(total) - 1
		db.stats.Writes += int64(total)
		db.stats.BytesWritten += int64(len(rep))
		db.stats.GroupCommits++
		db.stats.GroupedWrites += int64(len(group))
		db.met.writes.Add(int64(total))
		db.met.writeBytes.Add(int64(len(rep)))
		db.met.groupCommits.Inc()
		db.met.groupedWrites.Add(int64(len(group)))
	}
	db.popWritersLocked(len(group))
	for _, g := range group {
		g.done, g.err = true, err
	}
	db.writeCond.Broadcast()
	db.bgCond.Broadcast() // wake anything waiting out the commit window
	return err
}

// peekGroupLocked returns up to maxN front writers bounded by maxBytes of
// payload, leaving them queued (the group is popped after the commit).
func (db *DB) peekGroupLocked(maxN, maxBytes int) []*writer {
	n := 0
	bytes := 0
	for n < len(db.writers) && n < maxN {
		bytes += db.writers[n].batch.Size()
		n++
		if bytes >= maxBytes {
			break
		}
	}
	return append([]*writer(nil), db.writers[:n]...)
}

// popWritersLocked removes the n front writers from the queue.
func (db *DB) popWritersLocked(n int) {
	db.writers = append(db.writers[:0:0], db.writers[n:]...)
}

// makeRoomForWrite applies LevelDB's throttling rules: slow down when L0
// backs up, switch memtables when full, and stop when both memtables and
// L0 are saturated (paper §I: "system jam may occur, as flushing new data
// to disk is hindered by frequent compaction").
func (db *DB) makeRoomForWrite() error {
	slept := false
	for {
		switch {
		case db.bgErr != nil:
			return db.bgErr
		case db.closed:
			return ErrClosed
		case !slept && db.vs.Current().NumFiles(0) >= db.opts.L0SlowdownTrigger:
			db.queueEventLocked(func(l obs.EventListener) {
				l.WriteStallBegin(obs.WriteStallBeginEvent{Reason: obs.StallL0Slowdown})
			})
			db.mu.Unlock()
			time.Sleep(time.Millisecond)
			db.mu.Lock()
			db.recordStallLocked(obs.StallL0Slowdown, time.Millisecond)
			slept = true
		case db.mem.ApproximateSize() < db.opts.MemTableBytes:
			return nil
		case db.imm != nil:
			// Previous flush still running: wait.
			db.waitStalledLocked(obs.StallMemTableFull)
		case db.vs.Current().NumFiles(0) >= db.opts.L0StopTrigger:
			db.waitStalledLocked(obs.StallL0Stop)
		default:
			// Switch to a fresh memtable and WAL.
			if err := db.newWALLocked(); err != nil {
				db.bgErr = err
				return err
			}
			db.imm = db.mem
			db.mem = memtable.New(db.nextMemSeedLocked())
			db.bgCond.Broadcast()
		}
	}
}

// waitStalledLocked blocks the writer on the background condition. The
// stall events are queued, not delivered, because unlocking here could
// miss the only wakeup broadcast; the background workers (and this write's
// own trailing drain) deliver them.
func (db *DB) waitStalledLocked(reason obs.StallReason) {
	db.queueEventLocked(func(l obs.EventListener) {
		l.WriteStallBegin(obs.WriteStallBeginEvent{Reason: reason})
	})
	start := time.Now()
	db.bgCond.Wait()
	db.recordStallLocked(reason, time.Since(start))
}

// recordStallLocked folds one stall into stats, metrics and the event
// queue. Callers hold db.mu.
func (db *DB) recordStallLocked(reason obs.StallReason, d time.Duration) {
	db.stats.StallTime += d
	db.stats.StallWrites++
	db.met.stallCount.Inc()
	db.met.stallNanos.Add(d.Nanoseconds())
	db.met.stallWait.ObserveDuration(d)
	db.queueEventLocked(func(l obs.EventListener) {
		l.WriteStallEnd(obs.WriteStallEndEvent{Reason: reason, Duration: d})
	})
}

// Get returns the value for key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	seq := db.seq
	db.mu.Unlock()
	return db.getRetry(key, seq)
}

// getRetry reads at seq, re-capturing the version when a concurrent
// compaction unlinks a table between the version snapshot and the file
// open (versions are not refcounted; an ErrNotExist on a table open can
// only mean the version moved on).
func (db *DB) getRetry(key []byte, seq uint64) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		db.mu.Lock()
		if db.closed {
			db.mu.Unlock()
			return nil, ErrClosed
		}
		mem, imm := db.mem, db.imm
		v := db.vs.Current()
		db.mu.Unlock()
		val, err := db.getAt(key, seq, mem, imm, v)
		if (errors.Is(err, fs.ErrNotExist) || errors.Is(err, fs.ErrClosed)) && attempt < 100 {
			continue
		}
		return val, err
	}
}

// GetAt performs a read at an explicit snapshot sequence.
func (db *DB) getAt(key []byte, seq uint64, mem, imm *memtable.MemTable, v *manifest.Version) ([]byte, error) {
	if val, del, found := mem.Get(key, seq); found {
		if del {
			return nil, ErrNotFound
		}
		return val, nil
	}
	if imm != nil {
		if val, del, found := imm.Get(key, seq); found {
			if del {
				return nil, ErrNotFound
			}
			return val, nil
		}
	}
	var (
		result []byte
		found  bool
		del    bool
		ferr   error
		// firstMiss is the first file probed without yielding the key;
		// LevelDB charges it a seek and compacts it when its allowance
		// runs out, so hot misses get merged away.
		firstMiss *manifest.FileMetadata
		firstLvl  int
		probed    int
	)
	v.ForEachOverlapping(key, func(level int, f *manifest.FileMetadata) bool {
		probed++
		r, err := db.tables.get(f.Num)
		if err != nil {
			ferr = err
			return false
		}
		val, d, ok, err := r.Get(key, seq)
		if err != nil {
			ferr = err
			return false
		}
		if ok {
			result, del, found = val, d, true
			return false
		}
		if firstMiss == nil {
			firstMiss, firstLvl = f, level
		}
		return true
	})
	if ferr != nil {
		return nil, ferr
	}
	if firstMiss != nil && probed > 1 {
		db.chargeSeek(firstLvl, firstMiss)
	}
	if !found || del {
		return nil, ErrNotFound
	}
	return result, nil
}

// Has reports whether key exists.
func (db *DB) Has(key []byte) (bool, error) {
	_, err := db.Get(key)
	if err == ErrNotFound {
		return false, nil
	}
	return err == nil, err
}

// Stats returns a copy of the operational counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.stats
}

// DispatchStats returns a snapshot of the offload scheduler's routing
// counters (per-lane jobs, faults, retries, fallback reasons).
func (db *DB) DispatchStats() dispatch.Stats {
	return db.sched.Stats()
}

// LevelFiles returns the file count per level.
func (db *DB) LevelFiles() [manifest.NumLevels]int {
	v := db.vs.Current()
	var out [manifest.NumLevels]int
	for i := range out {
		out[i] = v.NumFiles(i)
	}
	return out
}

// LevelBytes returns the byte total per level.
func (db *DB) LevelBytes() [manifest.NumLevels]uint64 {
	v := db.vs.Current()
	var out [manifest.NumLevels]uint64
	for i := range out {
		out[i] = v.LevelBytes(i)
	}
	return out
}

// Close flushes state and stops background work. Pending memtable contents
// remain recoverable from the WAL.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.bgCond.Broadcast()
	for db.flushBusy || db.compacting > 0 || db.committing {
		db.bgCond.Wait()
	}
	err := db.bgErr
	if db.walFile != nil {
		if e := db.walFile.Sync(); e != nil && err == nil {
			err = e
		}
		if e := db.walFile.Close(); e != nil && err == nil {
			err = e
		}
		db.walFile = nil
	}
	db.mu.Unlock()
	// Join the flush and compaction workers before tearing down the state
	// they use; the busy counters above only prove no job is mid-flight.
	db.wg.Wait()
	if e := db.sched.Close(); e != nil && err == nil {
		err = e
	}
	// The workers have exited; drain any events they queued on the way out
	// so Close guarantees full delivery.
	db.flushEvents()
	db.tables.close()
	if e := db.vs.Close(); e != nil && err == nil {
		err = e
	}
	return err
}

func sortUint64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
