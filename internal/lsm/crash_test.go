package lsm

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCrashRecoveryFromLiveSnapshots simulates crashes by copying the
// database directory WHILE writes and compactions are running, then
// opening each copy and checking prefix consistency: every readable key
// maps to a value some Put actually wrote, recovery never errors, and the
// recovered write count is a plausible prefix of the committed history.
func TestCrashRecoveryFromLiveSnapshots(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const total = 6000
	var committed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			k := []byte(fmt.Sprintf("key%06d", i%1500))
			v := []byte(fmt.Sprintf("val-%06d", i))
			if err := db.Put(k, v); err != nil {
				t.Errorf("put: %v", err)
				return
			}
			committed.Store(int64(i + 1))
		}
	}()

	// Take live snapshots at several points.
	var snaps []string
	var snapCommitted []int64
	for s := 0; s < 5; s++ {
		for committed.Load() < int64((s+1)*total/6) {
		}
		snap := filepath.Join(t.TempDir(), fmt.Sprintf("crash-%d", s))
		// Record the committed floor BEFORE copying: everything up to
		// this point was acknowledged before the "crash".
		floor := committed.Load()
		// Hold the obsolete-file sweep for the copy so it observes the
		// crash invariant (see copyDirLive).
		db.DisableFileDeletions()
		err := copyDirLive(dir, snap)
		db.EnableFileDeletions()
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snap)
		snapCommitted = append(snapCommitted, floor)
		_ = floor
	}
	wg.Wait()

	for i, snap := range snaps {
		crash, err := Open(snap, opts)
		if err != nil {
			t.Fatalf("snapshot %d failed to recover: %v", i, err)
		}
		// Every visible value must be one that was actually written for
		// that key (val-% with matching key modulo).
		it, err := crash.NewIterator()
		if err != nil {
			t.Fatal(err)
		}
		seen := 0
		maxSerial := -1
		for ok := it.First(); ok; ok = it.Next() {
			k, v := string(it.Key()), string(it.Value())
			if !strings.HasPrefix(k, "key") || !strings.HasPrefix(v, "val-") {
				t.Fatalf("snapshot %d: foreign entry %q=%q", i, k, v)
			}
			serial, err := strconv.Atoi(v[len("val-"):])
			if err != nil {
				t.Fatalf("snapshot %d: corrupt value %q", i, v)
			}
			keyIdx, _ := strconv.Atoi(k[len("key"):])
			if serial%1500 != keyIdx {
				t.Fatalf("snapshot %d: value %q does not belong to key %q", i, v, k)
			}
			if serial > maxSerial {
				maxSerial = serial
			}
			seen++
		}
		if err := it.Error(); err != nil {
			t.Fatalf("snapshot %d scan: %v", i, err)
		}
		it.Close()
		if seen == 0 && snapCommitted[i] > 200 {
			t.Fatalf("snapshot %d recovered nothing despite %d committed writes", i, snapCommitted[i])
		}
		crash.Close()
		t.Logf("snapshot %d: %d keys visible, newest serial %d (committed floor %d)",
			i, seen, maxSerial, snapCommitted[i])
	}
}

// copyDirLive copies a directory that is being actively written,
// approximating the on-disk state at a crash: torn file tails are
// tolerated. CURRENT and the manifests are copied BEFORE the data files,
// and the caller holds DisableFileDeletions around the whole copy. That
// pair reproduces the invariant a real crash preserves: a table or WAL is
// synced before the manifest edit referencing it, so every file the
// copied manifest prefix references existed when the prefix was captured
// — and, with deletions held, still exists when the second pass reaches
// it. Files created after the manifest copy appear as unreferenced
// extras, exactly as after a crash, and recovery's sweep removes them.
func copyDirLive(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	pass := func(manifests bool) error {
		entries, err := os.ReadDir(src)
		if err != nil {
			return err
		}
		for _, e := range entries {
			name := e.Name()
			isManifest := name == "CURRENT" || strings.HasPrefix(name, "MANIFEST-")
			if isManifest != manifests {
				continue
			}
			in, err := os.Open(filepath.Join(src, name))
			if err != nil {
				continue // deleted mid-copy: like a crash after the unlink
			}
			out, err := os.Create(filepath.Join(dst, name))
			if err != nil {
				in.Close()
				return err
			}
			_, _ = io.Copy(out, in) // short copies are fine: torn file
			in.Close()
			out.Close()
		}
		return nil
	}
	if err := pass(true); err != nil {
		return err
	}
	return pass(false)
}
