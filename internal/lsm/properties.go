package lsm

import (
	"fmt"
	"strings"
	"time"

	"fcae/internal/keys"
	"fcae/internal/manifest"
	"fcae/internal/obs"
)

// PropertyString renders a human-readable summary of the store's shape and
// counters, in the spirit of LevelDB's GetProperty("leveldb.stats").
func (db *DB) PropertyString() string {
	db.mu.Lock()
	st := db.stats
	memBytes := db.mem.ApproximateSize()
	immPending := db.imm != nil
	db.mu.Unlock()
	v := db.vs.Current()

	var b strings.Builder
	fmt.Fprintf(&b, "Level  Files  Size(MB)  Runs  Compactions  Read(MB)  Write(MB)  Time\n")
	fmt.Fprintf(&b, "--------------------------------------------------------------------\n")
	for level := 0; level < manifest.NumLevels; level++ {
		ls := st.Levels[level]
		if v.NumFiles(level) == 0 && ls.Compactions == 0 {
			continue
		}
		fmt.Fprintf(&b, "%5d  %5d  %8.2f  %4d  %11d  %8.2f  %9.2f  %v\n",
			level, v.NumFiles(level), float64(v.LevelBytes(level))/(1<<20),
			v.NumRuns(level), ls.Compactions,
			float64(ls.BytesRead)/(1<<20), float64(ls.BytesWritten)/(1<<20),
			ls.Wall.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "memtable: %.2f MB (immutable pending: %v)\n", float64(memBytes)/(1<<20), immPending)
	fmt.Fprintf(&b, "writes: %d (%.2f MB), flushes: %d (%.2f MB)\n",
		st.Writes, float64(st.BytesWritten)/(1<<20), st.Flushes, float64(st.FlushBytes)/(1<<20))
	fmt.Fprintf(&b, "compactions: %d (engine %d, sw fallback %d, trivial %d)\n",
		st.Compactions, st.HWCompactions, st.SWFallbacks, st.TrivialMoves)
	fmt.Fprintf(&b, "compaction io: read %.2f MB, wrote %.2f MB\n",
		float64(st.CompactionRead)/(1<<20), float64(st.CompactionWrite)/(1<<20))
	if st.HWCompactions > 0 {
		fmt.Fprintf(&b, "engine: kernel %v, pcie %v\n",
			st.KernelTime.Round(time.Microsecond), st.TransferTime.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "write stalls: %v across %d waits\n", st.StallTime.Round(time.Millisecond), st.StallWrites)
	return b.String()
}

// Metrics snapshots the store's metrics registry: counters and histograms
// published by the write path, flushes and compactions, plus callback
// gauges for level shape, cache hit ratios and (when the FCAE executor is
// configured) engine totals. It complements Stats with typed, named,
// machine-renderable instruments.
func (db *DB) Metrics() obs.Metrics {
	return db.reg.Snapshot()
}

// Registry exposes the store's metrics registry so embedding layers (the
// network server) can register their own instruments alongside the
// store's and serve one unified snapshot.
func (db *DB) Registry() *obs.Registry {
	return db.reg
}

// WriteAmplification returns bytes written by flush+compaction divided by
// bytes flushed, the standard WA metric.
func (db *DB) WriteAmplification() float64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.stats.FlushBytes == 0 {
		return 0
	}
	return float64(db.stats.FlushBytes+db.stats.CompactionWrite) / float64(db.stats.FlushBytes)
}

// ApproximateSize estimates the on-disk bytes holding user keys in
// [start, limit). Files fully inside the range count whole; files
// straddling a boundary count half (a coarse but cheap interpolation, as
// in LevelDB's GetApproximateSizes). Memtable contents are excluded.
func (db *DB) ApproximateSize(start, limit []byte) uint64 {
	v := db.vs.Current()
	var total uint64
	for level := range v.Levels {
		for _, f := range v.Levels[level] {
			lo := keys.UserKey(f.Smallest)
			hi := keys.UserKey(f.Largest)
			loIn := start == nil || keys.CompareUser(lo, start) >= 0
			hiIn := limit == nil || keys.CompareUser(hi, limit) < 0
			switch {
			case loIn && hiIn:
				total += f.Size
			case !rangeTouchesFile(keys.Range{Start: start, Limit: limit}, f):
				// disjoint: contributes nothing
			default:
				total += f.Size / 2
			}
		}
	}
	return total
}

// CompactRange compacts every level intersecting the user-key range
// [start, limit) down the tree, flushing first, so the range ends up fully
// merged. A nil limit means "to the end"; nil start means "from the
// beginning".
func (db *DB) CompactRange(start, limit []byte) error {
	if err := db.Flush(); err != nil {
		return err
	}
	r := keys.Range{Start: start, Limit: limit}
	for level := 0; level < manifest.NumLevels-1; level++ {
		for {
			v := db.vs.Current()
			touched := false
			for _, f := range v.Levels[level] {
				fr := keys.Range{Start: keys.UserKey(f.Smallest), Limit: nil}
				_ = fr
				if rangeTouchesFile(r, f) {
					touched = true
					break
				}
			}
			if !touched {
				break
			}
			if err := db.CompactLevel(level); err != nil {
				return err
			}
			// CompactLevel rotates through the level; loop until the
			// range no longer has files here.
			nv := db.vs.Current()
			if sameFiles(v.Levels[level], nv.Levels[level]) {
				// No progress (e.g. single trivial state); avoid spinning.
				break
			}
		}
	}
	return nil
}

func rangeTouchesFile(r keys.Range, f *manifest.FileMetadata) bool {
	lo := keys.UserKey(f.Smallest)
	hi := keys.UserKey(f.Largest)
	if r.Limit != nil && keys.CompareUser(lo, r.Limit) >= 0 {
		return false
	}
	if r.Start != nil && keys.CompareUser(hi, r.Start) < 0 {
		return false
	}
	return true
}

func sameFiles(a, b []*manifest.FileMetadata) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Num != b[i].Num {
			return false
		}
	}
	return true
}
