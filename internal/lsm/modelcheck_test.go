package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"

	"fcae/internal/core"
)

// TestModelCheck drives the store with random operations — puts, deletes,
// batches, gets, scans, flushes, manual compactions and full reopens —
// and checks every observation against an in-memory model map. It runs
// once per backend.
func TestModelCheck(t *testing.T) {
	backends := map[string]func() Options{
		"cpu": smallOpts,
		"fcae": func() Options {
			o := smallOpts()
			o.Executor, _ = core.NewExecutor(core.MultiInputConfig())
			return o
		},
	}
	for name, mkOpts := range backends {
		t.Run(name, func(t *testing.T) {
			runModelCheck(t, mkOpts, 4000, 99)
		})
	}
}

func runModelCheck(t *testing.T, mkOpts func() Options, steps int, seed int64) {
	dir := t.TempDir()
	opts := mkOpts()
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { db.Close() }()

	rng := rand.New(rand.NewSource(seed))
	model := map[string]string{}
	key := func() []byte { return []byte(fmt.Sprintf("key%05d", rng.Intn(800))) }
	value := func() []byte {
		v := make([]byte, 1+rng.Intn(120))
		rng.Read(v)
		return v
	}

	for step := 0; step < steps; step++ {
		switch op := rng.Intn(100); {
		case op < 40: // put
			k, v := key(), value()
			if err := db.Put(k, v); err != nil {
				t.Fatalf("step %d put: %v", step, err)
			}
			model[string(k)] = string(v)

		case op < 50: // delete
			k := key()
			if err := db.Delete(k); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			delete(model, string(k))

		case op < 55: // batch
			var b Batch
			touched := map[string]*string{}
			for i := 0; i < 1+rng.Intn(10); i++ {
				k := key()
				if rng.Intn(4) == 0 {
					b.Delete(k)
					touched[string(k)] = nil
				} else {
					v := value()
					b.Put(k, v)
					s := string(v)
					touched[string(k)] = &s
				}
			}
			if err := db.Write(&b); err != nil {
				t.Fatalf("step %d batch: %v", step, err)
			}
			for k, v := range touched {
				if v == nil {
					delete(model, k)
				} else {
					model[k] = *v
				}
			}

		case op < 85: // get
			k := key()
			got, err := db.Get(k)
			want, ok := model[string(k)]
			switch {
			case err == ErrNotFound && ok:
				t.Fatalf("step %d: %q missing, model has %d bytes", step, k, len(want))
			case err == nil && !ok:
				t.Fatalf("step %d: %q returned %d bytes, model says deleted", step, k, len(got))
			case err == nil && string(got) != want:
				t.Fatalf("step %d: %q value mismatch", step, k)
			case err != nil && err != ErrNotFound:
				t.Fatalf("step %d get: %v", step, err)
			}

		case op < 92: // short scan
			start := key()
			it, err := db.NewIterator()
			if err != nil {
				t.Fatalf("step %d iterator: %v", step, err)
			}
			var got []string
			for ok := it.Seek(start); ok && len(got) < 10; ok = it.Next() {
				got = append(got, string(it.Key())+"="+string(it.Value()))
			}
			if err := it.Error(); err != nil {
				t.Fatalf("step %d scan: %v", step, err)
			}
			it.Close()
			var keys []string
			for k := range model {
				if k >= string(start) {
					keys = append(keys, k)
				}
			}
			sort.Strings(keys)
			if len(keys) > 10 {
				keys = keys[:10]
			}
			if len(got) != len(keys) {
				t.Fatalf("step %d scan: %d results, model %d", step, len(got), len(keys))
			}
			for i := range keys {
				if got[i] != keys[i]+"="+model[keys[i]] {
					t.Fatalf("step %d scan position %d: %q vs model %q", step, i, got[i], keys[i])
				}
			}

		case op < 95: // flush
			if err := db.Flush(); err != nil {
				t.Fatalf("step %d flush: %v", step, err)
			}

		case op < 97: // manual compaction
			if err := db.CompactLevel(rng.Intn(3)); err != nil {
				t.Fatalf("step %d compact: %v", step, err)
			}

		default: // reopen
			if err := db.Close(); err != nil {
				t.Fatalf("step %d close: %v", step, err)
			}
			db, err = Open(dir, opts)
			if err != nil {
				t.Fatalf("step %d reopen: %v", step, err)
			}
		}
	}

	// Final full verification: scan equals model.
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	got := map[string]string{}
	for ok := it.First(); ok; ok = it.Next() {
		got[string(it.Key())] = string(it.Value())
	}
	if len(got) != len(model) {
		t.Fatalf("final scan has %d keys, model %d", len(got), len(model))
	}
	for k, v := range model {
		if got[k] != v {
			t.Fatalf("final mismatch at %q", k)
		}
	}
}

// TestCorruptTableDetected flips bytes in a live table file; reads must
// fail with a checksum error, never return wrong data.
func TestCorruptTableDetected(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{DisableCompression: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	val := bytes.Repeat([]byte("sentinel-value-"), 10)
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("key%04d", i)), val)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	// Corrupt every table file's data region.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if kind, _ := parseFileName(e.Name()); kind != kindTable {
			continue
		}
		path := dir + "/" + e.Name()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for off := 50; off < len(data)/2; off += 97 {
			data[off] ^= 0xff
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Evict cached blocks/readers so reads hit the corrupted bytes.
	db.tables.close()
	db.blockCache.EvictFile(0)

	sawError := false
	for i := 0; i < 200; i++ {
		v, err := db.Get([]byte(fmt.Sprintf("key%04d", i)))
		if err == nil && !bytes.Equal(v, val) {
			t.Fatalf("corruption returned wrong data for key%04d", i)
		}
		if err != nil && err != ErrNotFound {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("no read reported the corruption")
	}
}
