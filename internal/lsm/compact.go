package lsm

import (
	"io"
	"os"
	"path/filepath"
	"time"

	"fcae/internal/compaction"
	"fcae/internal/dispatch"
	"fcae/internal/keys"
	"fcae/internal/manifest"
	"fcae/internal/memtable"
	"fcae/internal/obs"
	"fcae/internal/sstable"
)

// poolWorker is one goroutine of the shared flush/compaction pool
// (DispatchConfig.Workers instances). Flushes are the highest priority: a
// worker always drains a pending memtable before picking a merge
// compaction, mirroring the dispatch scheduler's L0-first lane so that —
// as in the paper's FCAE schedule (§VI-A) — flushes proceed while merge
// compactions execute on the engine. Merge compactions each claim their
// input and output levels under db.mu (busyLevels), so in-flight jobs
// never share a level and therefore never reference the same files — a
// W-worker pool keeps up to W-1 device channels busy while the manifest
// path stays serialized under db.mu.
func (db *DB) poolWorker() {
	defer db.wg.Done()
	db.mu.Lock()
	for {
		if db.closed || db.bgErr != nil {
			db.bgCond.Broadcast()
			db.mu.Unlock()
			db.flushEvents()
			return
		}
		if db.imm != nil && !db.flushBusy {
			db.runFlushLocked()
			continue
		}
		if c := db.pickCompactionLocked(); c != nil {
			// Claim c's levels, execute it through the dispatch scheduler
			// and deliver its events. db.mu is released during the merge
			// (runCompaction drops it around the device round-trip) and
			// during event delivery.
			db.setLevelClaimsLocked(c, true)
			db.compacting++
			err := db.runCompaction(c)
			if err != nil {
				db.bgErr = err
				db.queueEventLocked(func(l obs.EventListener) {
					l.BackgroundError(obs.BackgroundErrorEvent{Op: "compaction", Err: err})
				})
			}
			db.setLevelClaimsLocked(c, false)
			db.deleteObsoleteFilesLocked()
			// Deliver outside the mutex; compacting stays raised until
			// delivery completes so CompactLevel/WaitIdle/Close imply
			// delivery.
			db.mu.Unlock()
			db.flushEvents()
			db.mu.Lock()
			db.compacting--
			db.bgCond.Broadcast()
			continue
		}
		db.bgCond.Wait()
	}
}

// runFlushLocked drains db.imm into an L0 table (the first type of
// compaction, paper §II-A). Callers hold db.mu with db.imm != nil and
// !db.flushBusy; the mutex is released during the table build and event
// delivery and held again on return.
func (db *DB) runFlushLocked() {
	db.flushBusy = true
	imm := db.imm
	if err := db.flushMem(imm, db.nextJobIDLocked()); err != nil {
		db.bgErr = err
		db.queueEventLocked(func(l obs.EventListener) {
			l.BackgroundError(obs.BackgroundErrorEvent{Op: "flush", Err: err})
		})
	} else {
		db.imm = nil
	}
	db.deleteObsoleteFilesLocked()
	// Deliver outside the mutex. flushBusy stays set until delivery
	// completes, so Flush/WaitIdle/Close returning implies the
	// listener has observed this flush.
	db.mu.Unlock()
	db.flushEvents()
	db.mu.Lock()
	db.flushBusy = false
	db.bgCond.Broadcast()
}

// flushMem writes mem as an L0 table and logs the edit. Callers hold
// db.mu; the mutex is released during the table build so foreground writes
// and compactions continue. Every path queues a FlushEnd matching the
// FlushBegin queued here.
func (db *DB) flushMem(mem *memtable.MemTable, jobID uint64) (err error) {
	start := time.Now()
	db.queueEventLocked(func(l obs.EventListener) {
		l.FlushBegin(obs.FlushBeginEvent{JobID: jobID, MemTableBytes: mem.ApproximateSize()})
	})
	var output obs.TableInfo
	defer func() {
		wall := time.Since(start)
		ferr := err
		db.queueEventLocked(func(l obs.EventListener) {
			l.FlushEnd(obs.FlushEndEvent{JobID: jobID, Output: output, Wall: wall, Err: ferr})
		})
	}()

	num := db.vs.AllocFileNum()
	walNum := db.walNum
	// Guard the half-built table from the obsolete-file sweep until its
	// edit lands (a concurrent compaction's sweep must not reap it).
	db.pendingOutputs[num] = true
	defer delete(db.pendingOutputs, num)
	db.mu.Unlock()
	db.flushEvents() // let the listener see FlushBegin before the build
	meta, err := db.buildTable(num, mem)
	db.mu.Lock()
	if err != nil {
		return err
	}
	edit := &manifest.VersionEdit{}
	edit.SetLogNum(walNum)
	edit.SetLastSeq(db.seq)
	if meta != nil {
		edit.AddFile(0, meta)
	}
	if err := db.vs.LogAndApply(edit); err != nil {
		return err
	}
	if meta != nil {
		db.stats.Flushes++
		db.stats.FlushBytes += int64(meta.Size)
		db.met.flushes.Inc()
		db.met.flushBytes.Add(int64(meta.Size))
		db.met.tablesCreated.Inc()
		output = obs.TableInfo{Num: meta.Num, Level: 0, Size: int64(meta.Size)}
		db.queueEventLocked(func(l obs.EventListener) {
			l.TableCreated(obs.TableCreatedEvent{JobID: jobID, Table: output})
		})
	}
	db.met.flushWall.ObserveDuration(time.Since(start))
	db.bgCond.Broadcast() // compactions may now be needed
	return nil
}

// buildTable renders mem into table file num. Returns nil metadata when
// the memtable is empty.
func (db *DB) buildTable(num uint64, mem *memtable.MemTable) (*manifest.FileMetadata, error) {
	it := mem.NewIterator()
	it.SeekToFirst()
	if !it.Valid() {
		return nil, nil
	}
	path := tablePath(db.dir, num)
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := sstable.NewWriter(f, db.opts.tableOpts())
	for ; it.Valid(); it.Next() {
		if err := w.Add(it.Key(), it.Value()); err != nil {
			_ = f.Close()
			os.Remove(path)
			return nil, err
		}
	}
	stats, err := w.Finish()
	if err != nil {
		_ = f.Close()
		os.Remove(path)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return &manifest.FileMetadata{
		Num:      num,
		Size:     uint64(stats.FileSize),
		RunID:    num, // every flush output is its own sorted run
		Smallest: stats.Smallest,
		Largest:  stats.Largest,
	}, nil
}

// maxCompactingLocked bounds concurrent merge compactions. With more than
// one pool worker, one slot stays reserved for flushes so a full set of
// merges cannot wedge memtable rotation; a single-worker pool gets its one
// slot back — poolWorker's flush preference keeps flushes live between
// jobs. Callers hold db.mu.
func (db *DB) maxCompactingLocked() int {
	if db.poolSize > 1 {
		return db.poolSize - 1
	}
	return db.poolSize
}

// pickCompactionLocked returns the next claimable merge compaction (the
// second type, paper §II-A), or nil when none is runnable. Callers hold
// db.mu; level claims for the returned compaction are taken by the
// poolWorker loop, not here.
func (db *DB) pickCompactionLocked() *manifest.Compaction {
	if db.compacting >= db.maxCompactingLocked() {
		return nil
	}
	if db.manualLevel >= 0 {
		c := db.vs.PickCompactionAtLevel(db.manualLevel)
		switch {
		case c == nil:
			// The requested level emptied before a worker got here; drop
			// the request and fall through to the size/seek picker.
			db.manualLevel = -1
			db.bgCond.Broadcast()
		case db.levelRangeFreeLocked(c.Level, c.OutputLevel()):
			db.manualLevel = -1
			return c
		default:
			// Another worker owns one of the levels; the manual request
			// stays posted until it can be claimed.
			return nil
		}
	}
	return db.vs.PickCompactionFiltered(db.levelRangeFreeLocked)
}

// levelRangeFreeLocked reports whether a compaction reading level and
// writing outputLevel would overlap an in-flight job's claims. Callers
// hold db.mu (it is also the filter passed to PickCompactionFiltered,
// which invokes it with vs.mu additionally held — db.mu -> vs.mu is the
// established order).
func (db *DB) levelRangeFreeLocked(level, outputLevel int) bool {
	return !db.busyLevels[level] && !db.busyLevels[outputLevel]
}

// setLevelClaimsLocked claims or releases c's input and output levels.
// Callers hold db.mu.
func (db *DB) setLevelClaimsLocked(c *manifest.Compaction, claimed bool) {
	db.busyLevels[c.Level] = claimed
	db.busyLevels[c.OutputLevel()] = claimed
}

// chargeSeek decrements a file's seek allowance after a read had to probe
// past it (LevelDB's seek-compaction heuristic: a seek costs roughly the
// same as compacting 16 KiB). When the allowance runs out, a compaction
// at the file's level is requested.
func (db *DB) chargeSeek(level int, f *manifest.FileMetadata) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if f.AllowedSeeks > 0 {
		f.AllowedSeeks--
		if f.AllowedSeeks == 0 && db.manualLevel < 0 && level < manifest.NumLevels-1 {
			db.stats.SeekCompactions++
			db.met.seekCompactions.Inc()
			db.manualLevel = level
			db.bgCond.Broadcast()
		}
	}
}

// smallestSnapshotLocked returns the oldest sequence any reader may need.
func (db *DB) smallestSnapshotLocked() uint64 {
	smallest := db.seq
	for s := range db.snapshots {
		if s < smallest {
			smallest = s
		}
	}
	return smallest
}

// runCompaction executes one picked compaction. Called with db.mu held;
// the mutex is released while the executor runs. Once a CompactionBegin is
// queued, every return path queues the matching CompactionEnd.
func (db *DB) runCompaction(c *manifest.Compaction) (err error) {
	jobID := db.nextJobIDLocked()
	start := time.Now()
	inputs := tableInfos(c.Inputs[0], c.Level)
	inputs = append(inputs, tableInfos(c.Inputs[1], c.Level+1)...)

	// L0 compactions ride the dispatcher's high-priority lane: they gate
	// flushes (and therefore writes), so they must not queue behind deep
	// merges (paper §VI-A).
	pri := dispatch.PriorityDeep
	if c.Level == 0 {
		pri = dispatch.PriorityL0
	}

	if !c.Tiered && c.IsTrivialMove() {
		f := c.Inputs[0][0]
		db.queueEventLocked(func(l obs.EventListener) {
			l.CompactionBegin(obs.CompactionBeginEvent{
				JobID: jobID, Level: c.Level, OutputLevel: c.Level + 1,
				TrivialMove: true, Priority: pri, Inputs: inputs,
			})
		})
		edit := &manifest.VersionEdit{}
		edit.DeleteFile(c.Level, f.Num)
		// The moved file joins the target level's single run 0 (its L0
		// run id must not leak downward, or the level would silently
		// split into overlapping runs).
		moved := *f
		moved.RunID = 0
		edit.AddFile(c.Level+1, &moved)
		c.RecordCompactPointer(edit)
		db.stats.TrivialMoves++
		db.met.trivialMoves.Inc()
		err = db.vs.LogAndApply(edit)
		movedInfo := obs.TableInfo{Num: f.Num, Level: c.Level + 1, Size: int64(f.Size)}
		wall := time.Since(start)
		moveErr := err
		db.queueEventLocked(func(l obs.EventListener) {
			l.CompactionEnd(obs.CompactionEndEvent{
				JobID: jobID, Level: c.Level, OutputLevel: c.Level + 1,
				TrivialMove: true, Priority: pri, Inputs: inputs,
				Outputs: []obs.TableInfo{movedInfo},
				Wall:    wall, Err: moveErr,
			})
		})
		return err
	}

	outLevel := c.OutputLevel()
	db.queueEventLocked(func(l obs.EventListener) {
		l.CompactionBegin(obs.CompactionBeginEvent{
			JobID: jobID, Level: c.Level, OutputLevel: outLevel,
			Priority: pri, Inputs: inputs,
		})
	})
	tr := obs.NewTrace()
	var (
		outputs []obs.TableInfo
		route   dispatch.Route
		cstats  compaction.Stats
	)
	defer func() {
		wall := time.Since(start)
		endErr := err
		db.queueEventLocked(func(l obs.EventListener) {
			l.CompactionEnd(obs.CompactionEndEvent{
				JobID: jobID, Level: c.Level, OutputLevel: outLevel,
				Executor: route.Executor, Fallback: route.Fallback(),
				Lane: route.Lane, RouteReason: route.Reason,
				Priority:       pri,
				DeviceAttempts: route.DeviceAttempts,
				Inputs:         inputs, Outputs: outputs,
				PairsIn: cstats.PairsIn, PairsOut: cstats.PairsOut,
				PairsDropped: cstats.PairsDropped,
				BytesRead:    cstats.BytesRead, BytesWritten: cstats.BytesWritten,
				KernelTime: cstats.KernelTime, TransferTime: cstats.TransferTime,
				Wall: wall, Trace: tr, Err: endErr,
			})
		})
	}()

	job := &compaction.Job{
		SmallestSnapshot: db.smallestSnapshotLocked(),
		BottomLevel:      c.IsBottomLevel(db.vs.Current()),
		TableOpts:        db.opts.tableOpts(),
		MaxOutputBytes:   db.opts.MaxOutputFileBytes,
		Trace:            tr,
	}

	// Level-0 inputs each form their own sorted run; a deeper level's
	// files concatenate into one run (paper §IV step 2).
	openDone := tr.StartSpan("open_runs")
	var opened []*os.File
	defer func() {
		for _, f := range opened {
			// Read-only inputs; close errors cannot lose data.
			_ = f.Close()
		}
	}()
	openRun := func(files []*manifest.FileMetadata) error {
		var run []compaction.Table
		for _, fm := range files {
			f, err := os.Open(tablePath(db.dir, fm.Num))
			if err != nil {
				return err
			}
			opened = append(opened, f)
			run = append(run, compaction.Table{Num: fm.Num, Size: int64(fm.Size), Data: f})
		}
		job.Runs = append(job.Runs, run)
		return nil
	}
	if c.Level == 0 {
		for _, fm := range c.Inputs[0] {
			if err := openRun([]*manifest.FileMetadata{fm}); err != nil {
				return err
			}
		}
	} else if c.Tiered {
		// Tiered levels: one merge input per sorted run (paper §VII-C).
		for _, run := range manifest.RunGroupsOf(c.Inputs[0]) {
			if err := openRun(run); err != nil {
				return err
			}
		}
	} else if len(c.Inputs[0]) > 0 {
		if err := openRun(c.Inputs[0]); err != nil {
			return err
		}
	}
	if len(c.Inputs[1]) > 0 {
		if err := openRun(c.Inputs[1]); err != nil {
			return err
		}
	}
	openDone()

	env := &dbEnv{db: db}
	db.mu.Unlock()
	db.flushEvents() // let the listener see CompactionBegin before the merge
	// The dispatch scheduler routes the job between the device channel
	// pool and the CPU lane (paper Fig 6: fan-in, budget and backpressure
	// route to software) and owns retry/fallback when a channel faults.
	mergeDone := tr.StartSpan("merge")
	var res *compaction.Result
	res, route, err = db.sched.Execute(job, env, pri)
	mergeDone()
	db.mu.Lock()
	defer func() {
		// This job's outputs are either referenced by the applied edit or
		// garbage; either way the sweep may now consider them.
		for _, num := range env.nums {
			delete(db.pendingOutputs, num)
		}
	}()
	if err != nil {
		return err
	}
	cstats = res.Stats

	edit := &manifest.VersionEdit{}
	for level, side := range c.Inputs {
		for _, fm := range side {
			edit.DeleteFile(c.Level+level, fm.Num)
		}
	}
	// Tiered outputs form one fresh run; leveled outputs join the target
	// level's single run 0.
	var runID uint64
	if db.opts.TieredRuns > 0 {
		runID = db.vs.AllocFileNum()
	}
	for _, out := range res.Outputs {
		edit.AddFile(c.OutputLevel(), &manifest.FileMetadata{
			Num:      out.Num,
			Size:     uint64(out.Size),
			RunID:    runID,
			Smallest: out.Smallest,
			Largest:  out.Largest,
		})
	}
	c.RecordCompactPointer(edit)
	applyDone := tr.StartSpan("manifest_apply")
	if err = db.vs.LogAndApply(edit); err != nil {
		return err
	}
	applyDone()

	for _, out := range res.Outputs {
		info := obs.TableInfo{Num: out.Num, Level: outLevel, Size: out.Size}
		outputs = append(outputs, info)
		db.queueEventLocked(func(l obs.EventListener) {
			l.TableCreated(obs.TableCreatedEvent{JobID: jobID, Table: info})
		})
	}

	db.stats.Compactions++
	db.met.compactions.Inc()
	if route.OnDevice() {
		db.stats.HWCompactions++
		db.met.hwCompactions.Inc()
	}
	if route.Fallback() {
		db.stats.SWFallbacks++
		db.met.swFallbacks.Inc()
	}
	db.stats.CompactionRead += res.Stats.BytesRead
	db.stats.CompactionWrite += res.Stats.BytesWritten
	db.stats.KernelTime += res.Stats.KernelTime
	db.stats.TransferTime += res.Stats.TransferTime
	db.met.compactionRead.Add(res.Stats.BytesRead)
	db.met.compactionWrite.Add(res.Stats.BytesWritten)
	db.met.kernelNanos.Add(res.Stats.KernelTime.Nanoseconds())
	db.met.transferNanos.Add(res.Stats.TransferTime.Nanoseconds())
	db.met.tablesCreated.Add(int64(len(res.Outputs)))
	db.met.compactionWall.ObserveDuration(time.Since(start))
	if pl := res.Stats.Pipeline; pl.Blocks > 0 {
		db.met.pipelineBlocks.Add(pl.Blocks)
		db.met.pipelinePrefetchStalls.Add(pl.PrefetchStalls)
		db.met.pipelinePrefetchNanos.Add(pl.PrefetchStallNanos)
		db.met.pipelineEncodeStalls.Add(pl.EncodeStalls)
		db.met.pipelineEncodeNanos.Add(pl.EncodeStallNanos)
		db.met.pipelineSubmitStalls.Add(pl.SubmitStalls)
		db.met.pipelineSubmitNanos.Add(pl.SubmitStallNanos)
		db.met.pipelineSizeSyncs.Add(pl.SizeSyncs)
	}
	ls := &db.stats.Levels[c.Level]
	ls.Compactions++
	ls.BytesRead += res.Stats.BytesRead
	ls.BytesWritten += res.Stats.BytesWritten
	ls.Wall += time.Since(start)
	db.met.levelCompactions[c.Level].Inc()
	db.met.levelRead[c.Level].Add(res.Stats.BytesRead)
	db.met.levelWrite[c.Level].Add(res.Stats.BytesWritten)
	return nil
}

// dbEnv implements compaction.Env over the database directory.
type dbEnv struct {
	db   *DB
	nums []uint64 // file numbers allocated by this job
}

// NewOutput implements compaction.Env. Called without db.mu held (the
// executor runs with the mutex released).
func (e *dbEnv) NewOutput() (uint64, io.WriteCloser, error) {
	num := e.db.vs.AllocFileNum()
	e.db.mu.Lock()
	e.db.pendingOutputs[num] = true
	e.nums = append(e.nums, num)
	e.db.mu.Unlock()
	f, err := os.Create(tablePath(e.db.dir, num))
	if err != nil {
		return 0, nil, err
	}
	return num, f, nil
}

// CompactLevel forces one compaction at level and waits for it.
func (db *DB) CompactLevel(level int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	db.manualLevel = level
	db.bgCond.Broadcast()
	for db.manualLevel >= 0 || db.compacting > 0 {
		if db.bgErr != nil {
			return db.bgErr
		}
		if db.closed {
			// Close raced the wait: report the typed sentinel, not the
			// (nil) background error, so callers can tell "store closing"
			// from "compaction succeeded".
			return ErrClosed
		}
		db.bgCond.Wait()
	}
	return db.bgErr
}

// Flush forces the current memtable to disk and waits for completion.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.mem.Empty() && db.imm == nil {
		return nil
	}
	for db.imm != nil || db.committing {
		// Rotating the WAL or swapping memtables under a group leader's
		// unlocked commit window would tear that group.
		if db.bgErr != nil {
			return db.bgErr
		}
		if db.closed {
			return ErrClosed
		}
		db.bgCond.Wait()
	}
	if db.mem.Empty() {
		return db.bgErr
	}
	if err := db.newWALLocked(); err != nil {
		return err
	}
	db.imm = db.mem
	db.mem = memtable.New(db.nextMemSeedLocked())
	db.bgCond.Broadcast()
	// flushBusy clears only after the flush worker delivered its events,
	// so a returned Flush implies the listener saw FlushEnd.
	for (db.imm != nil || db.flushBusy) && db.bgErr == nil && !db.closed {
		db.bgCond.Wait()
	}
	if db.bgErr == nil && db.closed && (db.imm != nil || db.flushBusy) {
		// Close interrupted the wait before the flush completed.
		return ErrClosed
	}
	return db.bgErr
}

// WaitIdle blocks until no flush or compaction work is pending, useful for
// deterministic benchmarks.
func (db *DB) WaitIdle() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for {
		if db.bgErr != nil {
			return db.bgErr
		}
		if db.closed {
			return ErrClosed
		}
		idle := db.imm == nil && !db.flushBusy && db.compacting == 0 &&
			db.manualLevel < 0 && db.vs.PickCompaction() == nil
		if idle {
			return nil
		}
		db.bgCond.Wait()
	}
}

// deleteObsoleteFiles removes files no longer referenced by the version
// state. Called with db.mu held.
func (db *DB) deleteObsoleteFilesLocked() {
	if db.holdDeletions > 0 {
		return // an external backup is copying the directory
	}
	entries, err := os.ReadDir(db.dir)
	if err != nil {
		return
	}
	live := db.vs.LiveFileNums()
	minLog := db.vs.LogNum()
	for _, e := range entries {
		kind, num := parseFileName(e.Name())
		keep := true
		switch kind {
		case kindWAL:
			keep = num >= minLog || num == db.walNum
		case kindTable:
			keep = live[num] || db.pendingOutputs[num]
		case kindTemp:
			keep = false
		}
		if !keep {
			if kind == kindTable {
				db.tables.evict(num)
			}
			if os.Remove(filepath.Join(db.dir, e.Name())) == nil && kind == kindTable {
				db.met.tablesDeleted.Inc()
				tableNum := num
				db.queueEventLocked(func(l obs.EventListener) {
					l.TableDeleted(obs.TableDeletedEvent{Num: tableNum})
				})
			}
		}
	}
}

// compactionKeyRange is exposed for tests.
func compactionKeyRange(c *manifest.Compaction) keys.Range {
	return keys.Range{Start: c.SmallestUser, Limit: c.LargestUser}
}
