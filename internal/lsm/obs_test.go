package lsm

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"

	"fcae/internal/core"
	"fcae/internal/obs"
)

// recordingListener appends every event, in delivery order, to one slice.
type recordingListener struct {
	mu     sync.Mutex
	events []any
}

func (r *recordingListener) record(e any) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *recordingListener) snapshot() []any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]any(nil), r.events...)
}

func (r *recordingListener) FlushBegin(e obs.FlushBeginEvent)           { r.record(e) }
func (r *recordingListener) FlushEnd(e obs.FlushEndEvent)               { r.record(e) }
func (r *recordingListener) CompactionBegin(e obs.CompactionBeginEvent) { r.record(e) }
func (r *recordingListener) CompactionEnd(e obs.CompactionEndEvent)     { r.record(e) }
func (r *recordingListener) WriteStallBegin(e obs.WriteStallBeginEvent) { r.record(e) }
func (r *recordingListener) WriteStallEnd(e obs.WriteStallEndEvent)     { r.record(e) }
func (r *recordingListener) TableCreated(e obs.TableCreatedEvent)       { r.record(e) }
func (r *recordingListener) TableDeleted(e obs.TableDeletedEvent)       { r.record(e) }
func (r *recordingListener) BackgroundError(e obs.BackgroundErrorEvent) { r.record(e) }

// fillForCompactions writes enough shadowing data to force flushes and at
// least one real merge compaction under smallOpts.
func fillForCompactions(t *testing.T, db *DB) {
	t.Helper()
	value := bytes.Repeat([]byte("v"), 400)
	for round := 0; round < 6; round++ {
		for i := 0; i < 200; i++ {
			if err := db.Put([]byte(fmt.Sprintf("key%06d", i)), value); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactLevel(0); err != nil {
		t.Fatal(err)
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
}

// TestEventOrdering checks the pairing invariants of the event stream:
// every Begin is matched by exactly one later End with the same job id, and
// no job ends before it begins.
func TestEventOrdering(t *testing.T) {
	rec := &recordingListener{}
	opts := smallOpts()
	opts.EventListener = rec
	db := openTest(t, opts)
	fillForCompactions(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	events := rec.snapshot()
	flushBegun := make(map[uint64]bool)
	compactBegun := make(map[uint64]bool)
	flushEnded := make(map[uint64]bool)
	compactEnded := make(map[uint64]bool)
	stallDepth := 0
	for i, e := range events {
		switch e := e.(type) {
		case obs.FlushBeginEvent:
			if flushBegun[e.JobID] {
				t.Fatalf("event %d: duplicate FlushBegin for job %d", i, e.JobID)
			}
			flushBegun[e.JobID] = true
		case obs.FlushEndEvent:
			if !flushBegun[e.JobID] {
				t.Fatalf("event %d: FlushEnd for job %d without FlushBegin", i, e.JobID)
			}
			if flushEnded[e.JobID] {
				t.Fatalf("event %d: duplicate FlushEnd for job %d", i, e.JobID)
			}
			flushEnded[e.JobID] = true
			if e.Err != nil {
				t.Fatalf("flush job %d failed: %v", e.JobID, e.Err)
			}
		case obs.CompactionBeginEvent:
			if compactBegun[e.JobID] {
				t.Fatalf("event %d: duplicate CompactionBegin for job %d", i, e.JobID)
			}
			compactBegun[e.JobID] = true
			if len(e.Inputs) == 0 {
				t.Fatalf("event %d: CompactionBegin job %d has no inputs", i, e.JobID)
			}
		case obs.CompactionEndEvent:
			if !compactBegun[e.JobID] {
				t.Fatalf("event %d: CompactionEnd for job %d without CompactionBegin", i, e.JobID)
			}
			if compactEnded[e.JobID] {
				t.Fatalf("event %d: duplicate CompactionEnd for job %d", i, e.JobID)
			}
			compactEnded[e.JobID] = true
			if e.Err != nil {
				t.Fatalf("compaction job %d failed: %v", e.JobID, e.Err)
			}
			if !e.TrivialMove {
				if e.Executor == "" {
					t.Fatalf("merge job %d has empty Executor", e.JobID)
				}
				if e.Trace == nil || len(e.Trace.Spans()) == 0 {
					t.Fatalf("merge job %d has no trace spans", e.JobID)
				}
			}
		case obs.WriteStallBeginEvent:
			stallDepth++
		case obs.WriteStallEndEvent:
			stallDepth--
			if stallDepth < 0 {
				t.Fatalf("event %d: WriteStallEnd without matching Begin", i)
			}
		case obs.BackgroundErrorEvent:
			t.Fatalf("event %d: unexpected background error: %v (%s)", i, e.Err, e.Op)
		}
	}
	if stallDepth != 0 {
		t.Fatalf("%d WriteStallBegin events left unmatched", stallDepth)
	}
	for id := range flushBegun {
		if !flushEnded[id] {
			t.Fatalf("flush job %d never ended", id)
		}
	}
	for id := range compactBegun {
		if !compactEnded[id] {
			t.Fatalf("compaction job %d never ended", id)
		}
	}
	if len(flushBegun) == 0 {
		t.Fatal("no flush events recorded")
	}
	if len(compactBegun) == 0 {
		t.Fatal("no compaction events recorded")
	}
}

// panicker panics on its first FlushBegin, then records what follows.
type panicker struct {
	recordingListener
	armed bool
}

func (p *panicker) FlushBegin(e obs.FlushBeginEvent) {
	p.mu.Lock()
	fire := !p.armed
	p.armed = true
	p.mu.Unlock()
	if fire {
		panic("listener bug")
	}
	p.record(e)
}

// TestListenerPanicRecovered checks that a panicking listener is converted
// into a BackgroundError event and that the store keeps working.
func TestListenerPanicRecovered(t *testing.T) {
	p := &panicker{}
	opts := smallOpts()
	opts.EventListener = p
	db := openTest(t, opts)

	if err := db.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush after listener panic: %v", err)
	}
	// The store survives: another write + flush round-trips.
	if err := db.Put([]byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("a"))
	if err != nil || string(v) != "1" {
		t.Fatalf("Get after panic = %q, %v", v, err)
	}

	var bg *obs.BackgroundErrorEvent
	for _, e := range p.snapshot() {
		if e, ok := e.(obs.BackgroundErrorEvent); ok {
			bg = &e
			break
		}
	}
	if bg == nil {
		t.Fatal("no BackgroundError event after listener panic")
	}
	if bg.Op != "listener" {
		t.Fatalf("BackgroundError.Op = %q, want \"listener\"", bg.Op)
	}
	if !errors.Is(bg.Err, obs.ErrListenerPanic) {
		t.Fatalf("BackgroundError.Err = %v, want ErrListenerPanic", bg.Err)
	}
}

// TestMetricsConcurrent hammers DB.Metrics and DB.Stats against concurrent
// writers; run with -race to check the snapshot path takes no shortcuts.
func TestMetricsConcurrent(t *testing.T) {
	opts := smallOpts()
	opts.EventListener = obs.NoopListener{}
	db := openTest(t, opts)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			value := bytes.Repeat([]byte("x"), 256)
			for i := 0; i < 300; i++ {
				if err := db.Put([]byte(fmt.Sprintf("w%d-%06d", w, i)), value); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m := db.Metrics()
				if m.Counters == nil || m.Gauges == nil || m.Histograms == nil {
					t.Error("Metrics snapshot missing a section")
					return
				}
				_ = db.Stats()
			}
		}()
	}
	wg.Wait()

	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if got := m.Counters["writes"]; got != 4*300 {
		t.Fatalf("writes counter = %d, want %d", got, 4*300)
	}
}

// TestTraceMatchesStats is the acceptance check: run the engine executor
// with a TraceWriter (the dbbench -trace path), then verify that the
// per-job kernel and transfer nanoseconds in the JSONL sum to the aggregate
// Stats, and that the metrics registry agrees with Stats counter for
// counter.
func TestTraceMatchesStats(t *testing.T) {
	exec, err := core.NewExecutor(core.MultiInputConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := obs.NewTraceWriter(&buf)
	opts := smallOpts()
	opts.Executor = exec
	opts.EventListener = tw
	db := openTest(t, opts)

	fillForCompactions(t, db)
	if err := tw.Err(); err != nil {
		t.Fatalf("trace writer: %v", err)
	}
	st := db.Stats()
	m := db.Metrics()

	var recs []obs.TraceRecord
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	sc.Buffer(nil, 1<<20)
	for sc.Scan() {
		var r obs.TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if int64(len(recs)) != st.Compactions+st.TrivialMoves {
		t.Fatalf("trace has %d records, stats say %d compactions + %d trivial moves",
			len(recs), st.Compactions, st.TrivialMoves)
	}

	var kernel, transfer, read, written int64
	var hw int
	for _, r := range recs {
		kernel += r.KernelNanos
		transfer += r.TransferNanos
		read += r.BytesRead
		written += r.BytesWritten
		if r.Executor == exec.Name() && !r.TrivialMove && !r.Fallback {
			hw++
		}
		if r.Error != "" {
			t.Fatalf("job %d recorded error %q", r.Job, r.Error)
		}
	}
	if kernel != st.KernelTime.Nanoseconds() {
		t.Fatalf("trace kernel sum %d != Stats.KernelTime %d", kernel, st.KernelTime.Nanoseconds())
	}
	if transfer != st.TransferTime.Nanoseconds() {
		t.Fatalf("trace transfer sum %d != Stats.TransferTime %d", transfer, st.TransferTime.Nanoseconds())
	}
	if read != st.CompactionRead || written != st.CompactionWrite {
		t.Fatalf("trace io (%d read, %d written) != stats (%d, %d)",
			read, written, st.CompactionRead, st.CompactionWrite)
	}
	if int64(hw) != st.HWCompactions {
		t.Fatalf("trace counts %d engine jobs, stats say %d", hw, st.HWCompactions)
	}
	if st.HWCompactions == 0 {
		t.Fatal("no engine compactions ran; test did not exercise the FCAE path")
	}

	// The registry and the flat Stats struct are fed by the same code
	// paths; they must agree exactly once the store is idle.
	counters := map[string]int64{
		"writes":                    st.Writes,
		"flush_count":               st.Flushes,
		"flush_bytes":               st.FlushBytes,
		"compaction_count":          st.Compactions,
		"compaction_hw":             st.HWCompactions,
		"compaction_sw_fallback":    st.SWFallbacks,
		"compaction_trivial":        st.TrivialMoves,
		"compaction_read_bytes":     st.CompactionRead,
		"compaction_write_bytes":    st.CompactionWrite,
		"compaction_kernel_nanos":   st.KernelTime.Nanoseconds(),
		"compaction_transfer_nanos": st.TransferTime.Nanoseconds(),
	}
	for name, want := range counters {
		if got := m.Counters[name]; got != want {
			t.Errorf("metric %s = %d, Stats says %d", name, got, want)
		}
	}
	if got := m.Histograms["compaction_wall_nanos"].Count; got != st.Compactions {
		t.Errorf("compaction_wall_nanos count = %d, want %d", got, st.Compactions)
	}
	if got := m.Histograms["flush_wall_nanos"].Count; got != st.Flushes {
		t.Errorf("flush_wall_nanos count = %d, want %d", got, st.Flushes)
	}
}
