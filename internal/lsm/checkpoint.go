package lsm

import (
	"fmt"
	"io"
	"os"

	"fcae/internal/manifest"
)

// Checkpoint writes a consistent, self-contained copy of the store into
// dest (which must not exist): the memtable is flushed, every live table
// file is copied, and a fresh MANIFEST/CURRENT pair referencing them is
// written. The checkpoint can be opened as a normal database.
func (db *DB) Checkpoint(dest string) error {
	if _, err := os.Stat(dest); err == nil {
		return fmt.Errorf("lsm: checkpoint destination %s already exists", dest)
	}
	if err := db.Flush(); err != nil {
		return err
	}

	// Pin the current file set against the obsolete-file sweep while the
	// copy runs.
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	v := db.vs.Current()
	seq := db.seq
	var pinned []uint64
	for level := range v.Levels {
		for _, f := range v.Levels[level] {
			if !db.pendingOutputs[f.Num] {
				db.pendingOutputs[f.Num] = true
				pinned = append(pinned, f.Num)
			}
		}
	}
	db.mu.Unlock()
	defer func() {
		db.mu.Lock()
		for _, n := range pinned {
			delete(db.pendingOutputs, n)
		}
		db.mu.Unlock()
	}()

	if err := os.MkdirAll(dest, 0o755); err != nil {
		return err
	}
	var maxNum uint64
	for level := range v.Levels {
		for _, f := range v.Levels[level] {
			if err := copyFile(tablePath(db.dir, f.Num), tablePath(dest, f.Num)); err != nil {
				return fmt.Errorf("lsm: checkpoint copy table %d: %w", f.Num, err)
			}
			if f.Num > maxNum {
				maxNum = f.Num
			}
		}
	}

	// Fresh manifest referencing the copied tables.
	vs, err := manifest.Open(dest, db.opts.manifestConfig())
	if err != nil {
		return err
	}
	edit := &manifest.VersionEdit{}
	edit.SetLastSeq(seq)
	edit.SetNextFileNum(maxNum + 1000) // clear of copied numbers
	for level := range v.Levels {
		for _, f := range v.Levels[level] {
			edit.AddFile(level, &manifest.FileMetadata{
				Num: f.Num, Size: f.Size,
				Smallest: f.Smallest, Largest: f.Largest,
			})
		}
	}
	if err := vs.LogAndApply(edit); err != nil {
		_ = vs.Close()
		return err
	}
	return vs.Close()
}

// DisableFileDeletions suspends the obsolete-file sweep so an external
// tool can copy the directory while the store stays live (hot backup).
// Calls nest; each must be matched by EnableFileDeletions. While held,
// obsolete tables, WALs and manifests accumulate but are never unlinked,
// so any file a copied manifest prefix references remains readable.
func (db *DB) DisableFileDeletions() {
	db.mu.Lock()
	db.holdDeletions++
	db.mu.Unlock()
}

// EnableFileDeletions releases one DisableFileDeletions hold; dropping
// the last hold runs the suppressed sweep immediately.
func (db *DB) EnableFileDeletions() {
	db.mu.Lock()
	if db.holdDeletions > 0 {
		db.holdDeletions--
		if db.holdDeletions == 0 && !db.closed {
			db.deleteObsoleteFilesLocked()
		}
	}
	db.mu.Unlock()
	db.flushEvents()
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer func() { _ = in.Close() }()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		_ = out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		_ = out.Close()
		return err
	}
	return out.Close()
}
