package lsm

import (
	"container/list"
	"os"
	"sync"

	"fcae/internal/cache"
	"fcae/internal/sstable"
)

// tableCache keeps open table readers, bounded by an LRU on file handles.
type tableCache struct {
	mu       sync.Mutex
	dir      string
	opts     sstable.Options
	block    *cache.Cache
	capacity int
	entries  map[uint64]*tcEntry
	lru      *list.List // front = MRU; values are *tcEntry
	hits     int64
	misses   int64
}

type tcEntry struct {
	num    uint64
	f      *os.File
	reader *sstable.Reader
	elem   *list.Element
}

func newTableCache(dir string, opts sstable.Options, block *cache.Cache, capacity int) *tableCache {
	if capacity < 16 {
		capacity = 16
	}
	return &tableCache{
		dir:      dir,
		opts:     opts,
		block:    block,
		capacity: capacity,
		entries:  make(map[uint64]*tcEntry),
		lru:      list.New(),
	}
}

// get returns an open reader for table num, opening it on demand.
func (tc *tableCache) get(num uint64) (*sstable.Reader, error) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if e, ok := tc.entries[num]; ok {
		tc.hits++
		tc.lru.MoveToFront(e.elem)
		return e.reader, nil
	}
	tc.misses++
	f, err := os.Open(tablePath(tc.dir, num))
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	r, err := sstable.NewReader(f, st.Size(), tc.opts, tc.block, num)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	e := &tcEntry{num: num, f: f, reader: r}
	e.elem = tc.lru.PushFront(e)
	tc.entries[num] = e
	for len(tc.entries) > tc.capacity {
		tail := tc.lru.Back()
		tc.evictLocked(tail.Value.(*tcEntry))
	}
	return r, nil
}

// evict drops the cached reader for num (after the file is deleted).
func (tc *tableCache) evict(num uint64) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if e, ok := tc.entries[num]; ok {
		tc.evictLocked(e)
	}
	if tc.block != nil {
		tc.block.EvictFile(num)
	}
}

func (tc *tableCache) evictLocked(e *tcEntry) {
	tc.lru.Remove(e.elem)
	delete(tc.entries, e.num)
	// Read-only handle; nothing buffered can be lost.
	_ = e.f.Close()
}

// stats returns the lifetime hit and miss counts of the reader LRU.
func (tc *tableCache) stats() (hits, misses int64) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.hits, tc.misses
}

// close releases every handle.
func (tc *tableCache) close() {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	for _, e := range tc.entries {
		_ = e.f.Close()
	}
	tc.entries = make(map[uint64]*tcEntry)
	tc.lru.Init()
}
