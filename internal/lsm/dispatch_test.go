package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"fcae/internal/compaction"
	"fcae/internal/core"
	"fcae/internal/dispatch"
	"fcae/internal/obs"
)

// newDeviceChannels builds n independent FCAE engine instances, one per
// simulated device channel.
func newDeviceChannels(t *testing.T, n int) []compaction.Executor {
	t.Helper()
	devs := make([]compaction.Executor, n)
	for i := range devs {
		exec, err := core.NewExecutor(core.MultiInputConfig())
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = exec
	}
	return devs
}

// overlapListener tracks how many non-trivial compactions are in flight at
// once. Events are sequenced under db.mu in state-machine order, so seeing
// a second CompactionBegin before the first job's CompactionEnd proves the
// two merges were genuinely concurrent.
type overlapListener struct {
	obs.NoopListener

	mu     sync.Mutex
	active map[uint64]bool
	peak   int
}

func (o *overlapListener) CompactionBegin(e obs.CompactionBeginEvent) {
	if e.TrivialMove {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.active == nil {
		o.active = make(map[uint64]bool)
	}
	o.active[e.JobID] = true
	if len(o.active) > o.peak {
		o.peak = len(o.active)
	}
}

func (o *overlapListener) CompactionEnd(e obs.CompactionEndEvent) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.active, e.JobID)
}

func (o *overlapListener) Peak() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.peak
}

// TestCompactionConcurrency proves that with two device channels, two
// workers and no faults, merge compactions overlap in time (the tentpole's
// scaling claim: throughput scales with channels).
func TestCompactionConcurrency(t *testing.T) {
	ol := &overlapListener{}
	opts := Options{
		MemTableBytes:      16 << 10,
		BaseLevelBytes:     32 << 10,
		MaxOutputFileBytes: 16 << 10,
		BlockCacheBytes:    1 << 20,
		CompactionWorkers:  2,
		DeviceExecutors:    newDeviceChannels(t, 2),
		// Benign latency on every device merge widens the overlap window
		// without introducing any fault (0% error rate).
		FaultInjector: dispatch.NewProbInjector(1, 0).WithSlow(1.0, 20*time.Millisecond),
		EventListener: ol,
	}
	db := openTest(t, opts)

	rng := rand.New(rand.NewSource(42))
	val := make([]byte, 512)
	deadline := time.Now().Add(60 * time.Second)
	for round := 0; ol.Peak() < 2; round++ {
		if time.Now().After(deadline) {
			t.Fatalf("no overlapping compactions after %d rounds (peak=%d)", round, ol.Peak())
		}
		for i := 0; i < 200; i++ {
			rng.Read(val)
			k := []byte(fmt.Sprintf("key%07d", rng.Intn(1<<16)))
			if err := db.Put(k, val); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	ds := db.DispatchStats()
	if ds.DeviceJobs == 0 {
		t.Fatalf("dispatch stats = %+v, want device jobs > 0", ds)
	}
	t.Logf("peak concurrent compactions = %d, dispatch = %+v", ol.Peak(), ds)
}

// TestFaultInjectionIntegrity runs the acceptance scenario: 20%% device
// fault rate (errors, mid-merge write failures, stalls) across two
// channels and two workers, with retries disabled so every fault degrades
// to the CPU lane. Every key must survive, including across a reopen, and
// the metrics must show CPU-fallback routings.
func TestFaultInjectionIntegrity(t *testing.T) {
	dir := t.TempDir()
	mkOpts := func() Options {
		return Options{
			MemTableBytes:      16 << 10,
			BaseLevelBytes:     32 << 10,
			MaxOutputFileBytes: 16 << 10,
			BlockCacheBytes:    1 << 20,
			CompactionWorkers:  2,
			DeviceExecutors:    newDeviceChannels(t, 2),
			FaultInjector:      dispatch.NewProbInjector(7, 0.2),
			Dispatch: dispatch.Tuning{
				DeviceDeadline:   25 * time.Millisecond,
				RetryBackoff:     time.Millisecond,
				MaxDeviceRetries: -1, // every fault falls straight back to CPU
			},
		}
	}
	db, err := Open(dir, mkOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = db.Close() }()

	rng := rand.New(rand.NewSource(99))
	model := map[string]string{}
	key := func(i int) []byte { return []byte(fmt.Sprintf("key%05d", i)) }
	const keySpace = 1500

	// Keep writing rounds (overwrites and deletes included) until the
	// injector has demonstrably faulted device attempts and the scheduler
	// has routed fallbacks, then a few more rounds for good measure.
	deadline := time.Now().Add(90 * time.Second)
	for round := 0; ; round++ {
		for i := 0; i < 600; i++ {
			n := rng.Intn(keySpace)
			k := key(n)
			if rng.Intn(10) == 0 {
				if err := db.Delete(k); err != nil {
					t.Fatal(err)
				}
				delete(model, string(k))
				continue
			}
			v := make([]byte, 64+rng.Intn(192))
			rng.Read(v)
			if err := db.Put(k, v); err != nil {
				t.Fatal(err)
			}
			model[string(k)] = string(v)
		}
		ds := db.DispatchStats()
		if round >= 3 && ds.Faults > 0 && ds.FallbackFault > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fault injection never fired: dispatch = %+v", ds)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}

	verify := func(stage string, d *DB) {
		t.Helper()
		for i := 0; i < keySpace; i++ {
			k := key(i)
			got, err := d.Get(k)
			want, ok := model[string(k)]
			switch {
			case !ok && err != ErrNotFound:
				t.Fatalf("%s: Get(%s) = %v, want ErrNotFound", stage, k, err)
			case ok && err != nil:
				t.Fatalf("%s: Get(%s) = %v, want value", stage, k, err)
			case ok && string(got) != want:
				t.Fatalf("%s: Get(%s) returned wrong value (%d bytes, want %d)", stage, k, len(got), len(want))
			}
		}
	}
	verify("live", db)

	ds := db.DispatchStats()
	st := db.Stats()
	if ds.Faults == 0 || ds.FallbackFault == 0 || st.SWFallbacks == 0 {
		t.Fatalf("expected faults and CPU fallbacks, dispatch = %+v, SWFallbacks = %d", ds, st.SWFallbacks)
	}
	m := db.Metrics()
	if m.Gauges["dispatch_fallback_fault"] == 0 {
		t.Fatalf("dispatch_fallback_fault gauge = 0, want > 0")
	}
	t.Logf("dispatch = %+v", ds)

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen without fault injection: everything must still be there.
	re, err := Open(dir, Options{BlockCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = re.Close() }()
	verify("reopen", re)
}

// TestDispatchStress is the -race stress scenario run explicitly by CI:
// concurrent writers and readers over a faulty two-channel device pool
// with two compaction workers, then full verification.
func TestDispatchStress(t *testing.T) {
	opts := Options{
		MemTableBytes:      16 << 10,
		BaseLevelBytes:     32 << 10,
		MaxOutputFileBytes: 16 << 10,
		BlockCacheBytes:    1 << 20,
		CompactionWorkers:  2,
		DeviceExecutors:    newDeviceChannels(t, 2),
		FaultInjector:      dispatch.NewProbInjector(3, 0.3),
		Dispatch: dispatch.Tuning{
			DeviceDeadline:   20 * time.Millisecond,
			RetryBackoff:     time.Millisecond,
			MaxDeviceRetries: 1,
		},
	}
	db := openTest(t, opts)

	const (
		writers = 4
		perG    = 2000
	)
	var wg sync.WaitGroup
	value := func(g, i int) []byte {
		return bytes.Repeat([]byte{byte('a' + g)}, 120+(i%80))
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := []byte(fmt.Sprintf("s%d-key%06d", g, i))
				if err := db.Put(k, value(g, i)); err != nil {
					t.Errorf("writer %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	// Readers race the writers; any value observed must be well-formed.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < 2000; i++ {
				g, n := rng.Intn(writers), rng.Intn(perG)
				v, err := db.Get([]byte(fmt.Sprintf("s%d-key%06d", g, n)))
				if err == nil && !bytes.Equal(v, value(g, n)) {
					t.Errorf("reader saw torn value for s%d-key%06d", g, n)
					return
				}
				if err != nil && err != ErrNotFound {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < writers; g++ {
		for i := 0; i < perG; i++ {
			k := []byte(fmt.Sprintf("s%d-key%06d", g, i))
			v, err := db.Get(k)
			if err != nil {
				t.Fatalf("Get(%s) = %v after idle", k, err)
			}
			if !bytes.Equal(v, value(g, i)) {
				t.Fatalf("Get(%s) returned wrong value", k)
			}
		}
	}
	t.Logf("dispatch = %+v, stats fallbacks = %d", db.DispatchStats(), db.Stats().SWFallbacks)
}

// TestDispatchOptionValidation covers the new Options error paths.
func TestDispatchOptionValidation(t *testing.T) {
	devs := newDeviceChannels(t, 1)
	cases := []Options{
		{CompactionWorkers: -1},
		{Executor: devs[0], DeviceExecutors: devs},
		{FaultInjector: dispatch.NewProbInjector(1, 0.5)}, // no devices to fault
		{Dispatch: dispatch.Tuning{QueueDepth: -1}},
	}
	for i, o := range cases {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, o)
		}
	}
	ok := Options{DeviceExecutors: devs, CompactionWorkers: 2,
		FaultInjector: dispatch.NewProbInjector(1, 0.1)}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid dispatch options rejected: %v", err)
	}
}

// TestDispatchConfigValidation covers the consolidated DispatchConfig:
// its own rejection paths plus the deprecated-alias contradictions.
func TestDispatchConfigValidation(t *testing.T) {
	devs := newDeviceChannels(t, 1)
	inj := dispatch.NewProbInjector(1, 0.5)
	bad := []Options{
		{DispatchConfig: DispatchConfig{Workers: -1}},
		{DispatchConfig: DispatchConfig{Devices: []compaction.Executor{nil}}},
		{DispatchConfig: DispatchConfig{FaultInjector: inj}}, // no devices to fault
		{DispatchConfig: DispatchConfig{Tuning: dispatch.Tuning{QueueDepth: -1}}},
		// Setting a deprecated alias alongside its DispatchConfig field
		// is a contradiction, not a merge.
		{DispatchConfig: DispatchConfig{Devices: devs}, DeviceExecutors: devs},
		{DispatchConfig: DispatchConfig{Devices: devs}, Executor: devs[0]},
		{DispatchConfig: DispatchConfig{Workers: 2}, CompactionWorkers: 1},
		{DispatchConfig: DispatchConfig{Devices: devs, FaultInjector: inj}, FaultInjector: inj},
		{DispatchConfig: DispatchConfig{Tuning: dispatch.Tuning{QueueDepth: 4}},
			Dispatch: dispatch.Tuning{QueueDepth: 2}},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, o)
		}
	}
	ok := Options{DispatchConfig: DispatchConfig{
		Devices:       devs,
		Workers:       3,
		FaultInjector: dispatch.NewProbInjector(1, 0.1),
		Tuning:        dispatch.Tuning{QueueDepth: 4},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid DispatchConfig rejected: %v", err)
	}
}

// TestLegacyWorkerAliasMapping proves CompactionWorkers=N maps onto a
// shared pool of N+1 workers (the flush goroutine it used to imply).
func TestLegacyWorkerAliasMapping(t *testing.T) {
	if got := (Options{CompactionWorkers: 2}).dispatchConfig().Workers; got != 3 {
		t.Fatalf("CompactionWorkers=2 -> pool of %d, want 3", got)
	}
	if got := (Options{}).dispatchConfig().Workers; got != 2 {
		t.Fatalf("default pool = %d, want 2", got)
	}
	if got := (Options{DispatchConfig: DispatchConfig{Workers: 5}}).dispatchConfig().Workers; got != 5 {
		t.Fatalf("DispatchConfig.Workers=5 -> pool of %d, want 5", got)
	}
}

// priorityListener records the priority tag of every non-trivial
// compaction event.
type priorityListener struct {
	obs.NoopListener

	mu     sync.Mutex
	begins map[uint64]obs.Priority // job id -> begin priority
	l0     int
	deep   int
	bad    []string
}

func (p *priorityListener) CompactionBegin(e obs.CompactionBeginEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.begins == nil {
		p.begins = make(map[uint64]obs.Priority)
	}
	p.begins[e.JobID] = e.Priority
	want := obs.PriorityDeep
	if e.Level == 0 {
		want = obs.PriorityL0
	}
	if e.Priority != want {
		p.bad = append(p.bad, fmt.Sprintf("job %d: level %d tagged %q", e.JobID, e.Level, e.Priority))
	}
}

func (p *priorityListener) CompactionEnd(e obs.CompactionEndEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if begin, ok := p.begins[e.JobID]; ok && e.Priority != begin {
		p.bad = append(p.bad, fmt.Sprintf("job %d: begin %q != end %q", e.JobID, begin, e.Priority))
	}
	if e.Priority == obs.PriorityL0 {
		p.l0++
	} else {
		p.deep++
	}
}

// TestCompactionPriorityEvents drives the shared pool until both L0 and
// deep compactions have run, then checks every event carries the lane
// priority derived from its source level.
func TestCompactionPriorityEvents(t *testing.T) {
	pl := &priorityListener{}
	opts := Options{
		MemTableBytes:      16 << 10,
		BaseLevelBytes:     32 << 10,
		MaxOutputFileBytes: 16 << 10,
		BlockCacheBytes:    1 << 20,
		DispatchConfig: DispatchConfig{
			Devices: newDeviceChannels(t, 1),
			Workers: 3,
		},
		EventListener: pl,
	}
	db := openTest(t, opts)

	rng := rand.New(rand.NewSource(7))
	val := make([]byte, 512)
	deadline := time.Now().Add(60 * time.Second)
	for {
		pl.mu.Lock()
		done := pl.l0 > 0 && pl.deep > 0
		pl.mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw both priorities: l0=%d deep=%d", pl.l0, pl.deep)
		}
		for i := 0; i < 200; i++ {
			rng.Read(val)
			k := []byte(fmt.Sprintf("key%07d", rng.Intn(1<<16)))
			if err := db.Put(k, val); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if len(pl.bad) > 0 {
		t.Fatalf("mis-tagged compaction events: %v", pl.bad)
	}
}

// TestArenaFallbackIntegrity opens the store with deliberately tiny
// per-channel staging arenas: most merges exceed the arena input budget
// and must route to the CPU lane, and no data may be lost on the way.
func TestArenaFallbackIntegrity(t *testing.T) {
	cfg := core.MultiInputConfig()
	cfg.StagingBytes = 8 << 10 // ~4KiB data region; typical merges exceed it
	exec, err := core.NewExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		MemTableBytes:      16 << 10,
		BaseLevelBytes:     32 << 10,
		MaxOutputFileBytes: 16 << 10,
		BlockCacheBytes:    1 << 20,
		DispatchConfig: DispatchConfig{
			Devices: []compaction.Executor{exec},
			Workers: 2,
		},
	}
	db := openTest(t, opts)

	rng := rand.New(rand.NewSource(11))
	model := map[string]string{}
	deadline := time.Now().Add(60 * time.Second)
	for db.DispatchStats().FallbackArena == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("tiny arena never forced a fallback: dispatch = %+v", db.DispatchStats())
		}
		for i := 0; i < 300; i++ {
			k := []byte(fmt.Sprintf("key%05d", rng.Intn(2000)))
			v := make([]byte, 64+rng.Intn(192))
			rng.Read(v)
			if err := db.Put(k, v); err != nil {
				t.Fatal(err)
			}
			model[string(k)] = string(v)
		}
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	for k, want := range model {
		got, err := db.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%s) = %v after arena fallbacks", k, err)
		}
		if string(got) != want {
			t.Fatalf("Get(%s) returned wrong value", k)
		}
	}
	ds := db.DispatchStats()
	if ds.FallbackArena == 0 {
		t.Fatalf("dispatch = %+v, want arena fallbacks", ds)
	}
	if m := db.Metrics(); m.Gauges["dispatch_fallback_arena"] == 0 {
		t.Fatalf("dispatch_fallback_arena gauge = 0, want > 0")
	}
	t.Logf("dispatch = %+v", ds)
}
