package compaction

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"fcae/internal/keys"
	"fcae/internal/sstable"
)

// buildRun builds one sorted run of n entries drawn from a keyspace of
// width `space`, seeded deterministically, split into tables of at most
// tableEntries entries.
func buildRun(t *testing.T, rng *rand.Rand, opts sstable.Options, n, space, tableEntries int, baseSeq uint64) []Table {
	t.Helper()
	users := make(map[string]bool, n)
	for len(users) < n {
		users[fmt.Sprintf("key%06d", rng.Intn(space))] = true
	}
	sorted := make([]string, 0, n)
	for u := range users {
		sorted = append(sorted, u)
	}
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var tables []Table
	var buf bytes.Buffer
	var w *sstable.Writer
	entries := 0
	num := uint64(1)
	flush := func() {
		if w == nil {
			return
		}
		if _, err := w.Finish(); err != nil {
			t.Fatal(err)
		}
		data := append([]byte(nil), buf.Bytes()...)
		tables = append(tables, Table{Num: num, Size: int64(len(data)), Data: memReaderAt(data)})
		num++
		w = nil
		buf.Reset()
	}
	for _, u := range sorted {
		if w == nil {
			w = sstable.NewWriter(&buf, opts)
			entries = 0
		}
		kind := keys.KindSet
		if rng.Intn(10) == 0 {
			kind = keys.KindDelete
		}
		ik := keys.MakeInternal(nil, []byte(u), baseSeq+uint64(rng.Intn(50)), kind)
		val := bytes.Repeat([]byte(u), 1+rng.Intn(8))
		if err := w.Add(ik, val); err != nil {
			t.Fatal(err)
		}
		entries++
		if entries >= tableEntries {
			flush()
		}
	}
	flush()
	return tables
}

// pipelineJob builds a multi-run job with overlapping keys, tombstones
// and duplicate user keys across runs.
func pipelineJob(t *testing.T, seed int64, opts sstable.Options, maxOut uint64) *Job {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	job := &Job{
		SmallestSnapshot: 40, // keep some shadowed versions, drop others
		BottomLevel:      true,
		TableOpts:        opts,
		MaxOutputBytes:   maxOut,
	}
	for r := 0; r < 3; r++ {
		job.Runs = append(job.Runs,
			buildRun(t, rng, opts, 300, 600, 120, uint64(r)*60))
	}
	return job
}

// TestCompactPipelineByteIdentical is the tentpole property: the same job
// through the sequential and pipelined paths must produce byte-identical
// output files, across block sizes and codecs, including under forced
// size-bound barrier syncs (tiny MaxOutputBytes → many rotations).
func TestCompactPipelineByteIdentical(t *testing.T) {
	cases := []struct {
		name   string
		opts   sstable.Options
		maxOut uint64
	}{
		{"4k-snappy", sstable.Options{Compression: sstable.SnappyCompression}, 6 << 10},
		{"4k-nocompress", sstable.Options{Compression: sstable.NoCompression}, 16 << 10},
		{"256b-snappy", sstable.Options{BlockSize: 256, Compression: sstable.SnappyCompression}, 4 << 10},
		{"256b-nocompress", sstable.Options{BlockSize: 256, Compression: sstable.NoCompression}, 4 << 10},
		{"1k-snappy-filter", sstable.Options{BlockSize: 1024, Compression: sstable.SnappyCompression, FilterBitsPerKey: 10}, 8 << 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				job := pipelineJob(t, seed, tc.opts, tc.maxOut)

				seqEnv := newMemEnv()
				seqRes, err := CPU{}.Compact(job, seqEnv)
				if err != nil {
					t.Fatal(err)
				}
				pipeEnv := newMemEnv()
				pipeRes, err := CPU{Pipeline: PipelineConfig{Depth: 4, Encoders: 3}}.Compact(job, pipeEnv)
				if err != nil {
					t.Fatal(err)
				}

				if len(seqRes.Outputs) != len(pipeRes.Outputs) {
					t.Fatalf("seed %d: %d outputs sequential, %d pipelined",
						seed, len(seqRes.Outputs), len(pipeRes.Outputs))
				}
				if len(seqRes.Outputs) < 2 {
					t.Fatalf("seed %d: want multiple outputs to exercise rotation, got %d", seed, len(seqRes.Outputs))
				}
				for i, so := range seqRes.Outputs {
					po := pipeRes.Outputs[i]
					if so.Num != po.Num || so.Size != po.Size || so.Entries != po.Entries {
						t.Fatalf("seed %d output %d: meta differs: %+v vs %+v", seed, i, so, po)
					}
					sb := seqEnv.files[so.Num].Bytes()
					pb := pipeEnv.files[po.Num].Bytes()
					if !bytes.Equal(sb, pb) {
						t.Fatalf("seed %d output %d (table %d): %d/%d bytes differ",
							seed, i, so.Num, len(sb), len(pb))
					}
				}
				if seqRes.Stats.PairsOut != pipeRes.Stats.PairsOut ||
					seqRes.Stats.PairsDropped != pipeRes.Stats.PairsDropped {
					t.Fatalf("seed %d: pair stats differ: %+v vs %+v", seed, seqRes.Stats, pipeRes.Stats)
				}
			}
		})
	}
}

// failingFile fails every write once `failAfter` bytes have been written
// through the env.
type failingFile struct {
	env *failingEnv
}

func (f failingFile) Write(p []byte) (int, error) {
	if f.env.written >= f.env.failAfter {
		return 0, fmt.Errorf("injected write failure")
	}
	f.env.written += len(p)
	return len(p), nil
}

func (failingFile) Close() error { return nil }

type failingEnv struct {
	next      uint64
	written   int
	failAfter int
}

func (e *failingEnv) NewOutput() (uint64, io.WriteCloser, error) {
	e.next++
	return e.next, failingFile{env: e}, nil
}

// TestCompactPipelineWriteFailure injects a mid-pipeline write failure
// and requires a clean abort: an error surfaced, and every pipeline
// goroutine joined (no leak).
func TestCompactPipelineWriteFailure(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, failAfter := range []int{0, 1 << 10, 8 << 10} {
		job := pipelineJob(t, 7, sstable.Options{BlockSize: 512, Compression: sstable.SnappyCompression}, 4<<10)
		env := &failingEnv{failAfter: failAfter}
		_, err := CPU{Pipeline: PipelineConfig{Depth: 2, Encoders: 2}}.Compact(job, env)
		if err == nil {
			t.Fatalf("failAfter=%d: compaction succeeded despite failing writer", failAfter)
		}
	}
	// The pipeline joins its goroutines synchronously in Close, so only
	// runtime jitter should remain.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestCompactPipelineStress drives many rotations and barrier syncs with
// maximum stage overlap; run under -race in CI.
func TestCompactPipelineStress(t *testing.T) {
	opts := sstable.Options{BlockSize: 256, Compression: sstable.SnappyCompression}
	for seed := int64(10); seed < 14; seed++ {
		job := pipelineJob(t, seed, opts, 2<<10)
		seqEnv := newMemEnv()
		seqRes, err := CPU{}.Compact(job, seqEnv)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []PipelineConfig{
			{Depth: 1, Encoders: 1},
			{Depth: 2, Encoders: 4},
			{Depth: 8, Encoders: 2},
		} {
			env := newMemEnv()
			res, err := CPU{Pipeline: cfg}.Compact(job, env)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Outputs) != len(seqRes.Outputs) {
				t.Fatalf("cfg %+v seed %d: %d outputs, want %d", cfg, seed, len(res.Outputs), len(seqRes.Outputs))
			}
			for i, ot := range res.Outputs {
				if !bytes.Equal(env.files[ot.Num].Bytes(), seqEnv.files[seqRes.Outputs[i].Num].Bytes()) {
					t.Fatalf("cfg %+v seed %d: output %d differs", cfg, seed, i)
				}
			}
			if res.Stats.Pipeline.Blocks == 0 {
				t.Fatalf("cfg %+v: pipeline counters not threaded (Blocks=0)", cfg)
			}
		}
	}
}

// TestCompactPipelineDepthZeroIsSequential pins the config contract:
// depth 0 must take the sequential code path (no pipeline counters).
func TestCompactPipelineDepthZeroIsSequential(t *testing.T) {
	job := pipelineJob(t, 3, sstable.Options{}, 16<<10)
	env := newMemEnv()
	res, err := CPU{Pipeline: PipelineConfig{Depth: 0, Encoders: 8}}.Compact(job, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Pipeline != (PipelineStats{}) {
		t.Fatalf("depth 0 ran the pipeline: %+v", res.Stats.Pipeline)
	}
}
