// Package compaction defines the merge job abstraction shared by the
// software compactor and the FCAE engine, plus the CPU reference executor.
// A Job carries raw table inputs grouped into sorted runs (paper §IV step
// 2: level-0 files each form a run, deeper levels concatenate into one),
// and an Executor merges them into fresh output tables.
package compaction

import (
	"errors"
	"fmt"
	"io"
	"time"

	"fcae/internal/iter"
	"fcae/internal/keys"
	"fcae/internal/obs"
	"fcae/internal/sstable"
)

// ErrArenaExhausted is returned (wrapped) by device executors whose
// per-channel staging arena cannot hold the job's input or output images.
// The dispatcher treats it as a deterministic routing condition — the job
// reruns on the CPU lane without burning device retries — rather than a
// fault.
var ErrArenaExhausted = errors.New("compaction: job exceeds device staging arena")

// Table is one input SSTable's raw bytes.
type Table struct {
	Num  uint64
	Size int64
	Data io.ReaderAt
}

// Job describes one compaction to execute.
type Job struct {
	// Runs are the sorted input streams; tables within a run are disjoint
	// and ordered by key.
	Runs [][]Table
	// SmallestSnapshot is the oldest live snapshot sequence; entries
	// shadowed at or below it are dropped.
	SmallestSnapshot uint64
	// BottomLevel allows tombstones themselves to be dropped.
	BottomLevel bool
	// TableOpts configure the output tables.
	TableOpts sstable.Options
	// MaxOutputBytes caps each output table (paper: ~2 MB per SSTable).
	MaxOutputBytes uint64
	// Trace, when non-nil, collects phase spans as the executor runs
	// (flush_table per output; the FCAE executor adds build_images).
	Trace *obs.Trace
}

// NumRuns returns the number of sorted input streams (the paper's N).
func (j *Job) NumRuns() int { return len(j.Runs) }

// InputBytes returns the total input size.
func (j *Job) InputBytes() int64 {
	var n int64
	for _, run := range j.Runs {
		for _, t := range run {
			n += t.Size
		}
	}
	return n
}

// OutputTable describes one produced table.
type OutputTable struct {
	Num      uint64
	Size     int64
	Entries  int
	Smallest []byte
	Largest  []byte
}

// Stats summarizes an executed job.
type Stats struct {
	BytesRead    int64
	BytesWritten int64
	PairsIn      int
	PairsOut     int
	PairsDropped int
	// KernelTime is the modeled merge time (device cycles for the FCAE
	// executor, CPU model for the software executor); wall-clock callers
	// measure real durations themselves.
	KernelTime time.Duration
	// TransferTime is the modeled PCIe transfer time (FCAE only).
	TransferTime time.Duration
	// Pipeline carries the pipelined CPU path's per-stage stall and
	// occupancy counters; zero when the job ran sequentially.
	Pipeline PipelineStats
}

// PipelineStats counts per-stage stalls of the pipelined CPU data path,
// the software analogues of the paper's pipeline-occupancy counters:
// prefetch stalls mean the read-ahead stage is the bottleneck, encode
// stalls the encoder workers, submit stalls the writer behind them.
type PipelineStats struct {
	// Blocks is the number of output data blocks pushed through the
	// encode stage.
	Blocks int64
	// PrefetchStalls counts merge-side waits for a prefetched input
	// block; PrefetchStallNanos is the summed wait.
	PrefetchStalls     int64
	PrefetchStallNanos int64
	// EncodeStalls counts writer-side waits for an encoder to finish a
	// block; EncodeStallNanos is the summed wait.
	EncodeStalls     int64
	EncodeStallNanos int64
	// SubmitStalls counts merge-side waits for a free output-block slot;
	// SubmitStallNanos is the summed wait.
	SubmitStalls     int64
	SubmitStallNanos int64
	// SizeSyncs counts table-rotation decisions that had to drain
	// in-flight encodes because the size bounds straddled the threshold.
	SizeSyncs int64
}

// Add accumulates o into s (for aggregating job stats into DB totals).
func (s *PipelineStats) Add(o PipelineStats) {
	s.Blocks += o.Blocks
	s.PrefetchStalls += o.PrefetchStalls
	s.PrefetchStallNanos += o.PrefetchStallNanos
	s.EncodeStalls += o.EncodeStalls
	s.EncodeStallNanos += o.EncodeStallNanos
	s.SubmitStalls += o.SubmitStalls
	s.SubmitStallNanos += o.SubmitStallNanos
	s.SizeSyncs += o.SizeSyncs
}

// Result is the outcome of a compaction.
type Result struct {
	Outputs []OutputTable
	Stats   Stats
}

// Env supplies output file creation to executors.
type Env interface {
	// NewOutput allocates a file number and an output writer for one table.
	NewOutput() (num uint64, w io.WriteCloser, err error)
}

// Executor merges a Job's runs into output tables.
type Executor interface {
	// Name identifies the executor in stats ("cpu" or "fcae").
	Name() string
	// MaxRuns returns the largest NumRuns the executor accepts, or 0 for
	// unlimited. Jobs exceeding it must go to a fallback (paper Fig. 6:
	// "#SSTable in L0 > N-1" routes to SW compaction).
	MaxRuns() int
	// Compact executes the job.
	Compact(job *Job, env Env) (*Result, error)
}

// openRun builds one iterator over a run's tables, concatenated in order.
func openRun(run []Table, opts sstable.Options) (iter.Iterator, error) {
	readers := make([]*sstable.Reader, len(run))
	for i, t := range run {
		r, err := sstable.NewReader(t.Data, t.Size, opts, nil, t.Num)
		if err != nil {
			return nil, fmt.Errorf("compaction: open table %d: %w", t.Num, err)
		}
		readers[i] = r
	}
	return newConcatIter(readers), nil
}

// concatIter chains table iterators whose key ranges are disjoint and
// ascending.
type concatIter struct {
	readers []*sstable.Reader
	idx     int
	cur     *sstable.Iterator
	err     error
}

func newConcatIter(readers []*sstable.Reader) *concatIter {
	return &concatIter{readers: readers, idx: -1}
}

func (c *concatIter) open(i int) {
	c.idx = i
	if i >= 0 && i < len(c.readers) {
		c.cur = c.readers[i].NewIterator()
	} else {
		c.cur = nil
	}
}

func (c *concatIter) Valid() bool { return c.err == nil && c.cur != nil && c.cur.Valid() }

func (c *concatIter) SeekToFirst() {
	c.open(0)
	if c.cur != nil {
		c.cur.SeekToFirst()
		c.skipEmpty()
	}
}

func (c *concatIter) SeekGE(target []byte) {
	// Linear probe is fine: runs have few tables and compaction scans.
	for i := range c.readers {
		c.open(i)
		c.cur.SeekGE(target)
		if c.cur.Valid() {
			return
		}
		if err := c.cur.Error(); err != nil {
			c.err = err
			return
		}
	}
	c.cur = nil
}

func (c *concatIter) SeekToLast() {
	c.open(len(c.readers) - 1)
	if c.cur != nil {
		c.cur.SeekToLast()
		c.skipEmptyBackward()
	}
}

func (c *concatIter) Next() {
	if c.cur == nil {
		return
	}
	c.cur.Next()
	c.skipEmpty()
}

func (c *concatIter) Prev() {
	if c.cur == nil {
		return
	}
	c.cur.Prev()
	c.skipEmptyBackward()
}

func (c *concatIter) skipEmptyBackward() {
	for c.err == nil && c.cur != nil && !c.cur.Valid() {
		if err := c.cur.Error(); err != nil {
			c.err = err
			return
		}
		if c.idx-1 < 0 {
			c.cur = nil
			return
		}
		c.open(c.idx - 1)
		c.cur.SeekToLast()
	}
}

func (c *concatIter) skipEmpty() {
	for c.err == nil && c.cur != nil && !c.cur.Valid() {
		if err := c.cur.Error(); err != nil {
			c.err = err
			return
		}
		if c.idx+1 >= len(c.readers) {
			c.cur = nil
			return
		}
		c.open(c.idx + 1)
		c.cur.SeekToFirst()
	}
}

func (c *concatIter) Key() []byte   { return c.cur.Key() }
func (c *concatIter) Value() []byte { return c.cur.Value() }
func (c *concatIter) Error() error {
	if c.err != nil {
		return c.err
	}
	if c.cur != nil {
		return c.cur.Error()
	}
	return nil
}

// dropPolicy implements LevelDB's shadowing rules during a merge. Entries
// arrive in internal-key order (user key ascending, seq descending).
type dropPolicy struct {
	smallestSnapshot uint64
	bottomLevel      bool

	curUser    []byte
	hasCur     bool
	hasPrev    bool   // a previous entry for curUser has been seen
	lastSeqFor uint64 // sequence of the previous entry for curUser
}

// drop reports whether the entry (ikey) is garbage.
func (d *dropPolicy) drop(ikey []byte) bool {
	user := keys.UserKey(ikey)
	seq, kind := keys.DecodeTrailer(ikey)
	if !d.hasCur || keys.CompareUser(user, d.curUser) != 0 {
		d.curUser = append(d.curUser[:0], user...)
		d.hasCur = true
		d.hasPrev = false
	}
	dropped := false
	switch {
	case d.hasPrev && d.lastSeqFor <= d.smallestSnapshot:
		// A newer entry for this user key is already visible to the
		// oldest snapshot: this one is shadowed.
		dropped = true
	case kind == keys.KindDelete && seq <= d.smallestSnapshot && d.bottomLevel:
		// The tombstone itself is obsolete once nothing deeper exists.
		dropped = true
	}
	d.hasPrev = true
	d.lastSeqFor = seq
	return dropped
}

// CPU is the software reference executor: a heap merge over run iterators
// feeding an sstable writer, the paper's "CPU baseline" and the fallback
// for jobs exceeding the engine's input limit. With Pipeline.Depth > 0
// the data path runs stage-parallel (read-ahead → merge → encode, see
// pipelined.go) with byte-identical outputs; the zero value is the
// sequential reference implementation.
type CPU struct {
	Pipeline PipelineConfig
}

// Name implements Executor.
func (CPU) Name() string { return "cpu" }

// MaxRuns implements Executor: the software path takes any fan-in.
func (CPU) MaxRuns() int { return 0 }

// Compact implements Executor.
func (c CPU) Compact(job *Job, env Env) (*Result, error) {
	if c.Pipeline.Depth > 0 {
		return c.compactPipelined(job, env)
	}
	return c.compactSequential(job, env)
}

// compactSequential is the single-goroutine reference data path; the
// pipelined path must produce byte-identical outputs.
func (CPU) compactSequential(job *Job, env Env) (*Result, error) {
	its := make([]iter.Iterator, 0, len(job.Runs))
	for _, run := range job.Runs {
		it, err := openRun(run, job.TableOpts)
		if err != nil {
			return nil, err
		}
		its = append(its, it)
	}
	merged := iter.NewMerging(its...)
	merged.SeekToFirst()

	res := &Result{}
	res.Stats.BytesRead = job.InputBytes()
	drop := dropPolicy{smallestSnapshot: job.SmallestSnapshot, bottomLevel: job.BottomLevel}

	var out *outputWriter
	defer func() {
		if out != nil {
			out.abort()
		}
	}()

	var lastUser []byte
	for ; merged.Valid(); merged.Next() {
		res.Stats.PairsIn++
		ikey := merged.Key()
		if drop.drop(ikey) {
			res.Stats.PairsDropped++
			continue
		}
		// Close a full output only at a user-key boundary so that no user
		// key ever spans two tables in one level (that would break the
		// one-file-per-level lookup invariant).
		if out != nil && uint64(out.w.EstimatedSize()) >= job.MaxOutputBytes &&
			keys.CompareUser(keys.UserKey(ikey), lastUser) != 0 {
			done := job.Trace.StartSpan("flush_table")
			ot, err := out.finish()
			done()
			if err != nil {
				return nil, err
			}
			res.Outputs = append(res.Outputs, ot)
			res.Stats.BytesWritten += ot.Size
			out = nil
		}
		if out == nil {
			var err error
			if out, err = newOutput(env, job.TableOpts); err != nil {
				return nil, err
			}
		}
		if err := out.add(ikey, merged.Value()); err != nil {
			return nil, err
		}
		lastUser = append(lastUser[:0], keys.UserKey(ikey)...)
		res.Stats.PairsOut++
	}
	if err := merged.Error(); err != nil {
		return nil, err
	}
	if out != nil {
		done := job.Trace.StartSpan("flush_table")
		ot, err := out.finish()
		done()
		if err != nil {
			return nil, err
		}
		if ot.Entries > 0 {
			res.Outputs = append(res.Outputs, ot)
			res.Stats.BytesWritten += ot.Size
		}
		out = nil
	}
	return res, nil
}

// outputWriter pairs an sstable writer with its destination file.
type outputWriter struct {
	num uint64
	f   io.WriteCloser
	w   *sstable.Writer
}

func newOutput(env Env, opts sstable.Options) (*outputWriter, error) {
	num, f, err := env.NewOutput()
	if err != nil {
		return nil, err
	}
	return &outputWriter{num: num, f: f, w: sstable.NewWriter(f, opts)}, nil
}

func (o *outputWriter) add(ikey, value []byte) error { return o.w.Add(ikey, value) }

func (o *outputWriter) finish() (OutputTable, error) {
	stats, err := o.w.Finish()
	if err != nil {
		_ = o.f.Close()
		return OutputTable{}, err
	}
	if err := o.f.Close(); err != nil {
		return OutputTable{}, err
	}
	return OutputTable{
		Num:      o.num,
		Size:     stats.FileSize,
		Entries:  stats.Entries,
		Smallest: stats.Smallest,
		Largest:  stats.Largest,
	}, nil
}

// abort discards a half-written output; the file is deleted by the
// obsolete-file sweep, so its close error is irrelevant.
func (o *outputWriter) abort() { _ = o.f.Close() }
