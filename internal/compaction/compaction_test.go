package compaction

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"fcae/internal/keys"
	"fcae/internal/sstable"
)

type memReaderAt []byte

func (m memReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m)) {
		return 0, fmt.Errorf("read past end")
	}
	n := copy(p, m[off:])
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

type memEnv struct {
	next  uint64
	files map[uint64]*bytes.Buffer
}

func newMemEnv() *memEnv { return &memEnv{next: 100, files: map[uint64]*bytes.Buffer{}} }

type bufCloser struct{ *bytes.Buffer }

func (bufCloser) Close() error { return nil }

func (e *memEnv) NewOutput() (uint64, io.WriteCloser, error) {
	num := e.next
	e.next++
	b := &bytes.Buffer{}
	e.files[num] = b
	return num, bufCloser{b}, nil
}

type kv struct {
	user  string
	seq   uint64
	kind  keys.Kind
	value string
}

func table(t *testing.T, entries []kv) Table {
	t.Helper()
	var buf bytes.Buffer
	w := sstable.NewWriter(&buf, sstable.Options{})
	for _, e := range entries {
		ik := keys.MakeInternal(nil, []byte(e.user), e.seq, e.kind)
		if err := w.Add(ik, []byte(e.value)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return Table{Num: 1, Size: int64(buf.Len()), Data: memReaderAt(buf.Bytes())}
}

func scan(t *testing.T, env *memEnv, res *Result) []kv {
	t.Helper()
	var out []kv
	for _, ot := range res.Outputs {
		buf := env.files[ot.Num]
		r, err := sstable.NewReader(memReaderAt(buf.Bytes()), int64(buf.Len()), sstable.Options{}, nil, ot.Num)
		if err != nil {
			t.Fatal(err)
		}
		it := r.NewIterator()
		for it.SeekToFirst(); it.Valid(); it.Next() {
			seq, kind := keys.DecodeTrailer(it.Key())
			out = append(out, kv{string(keys.UserKey(it.Key())), seq, kind, string(it.Value())})
		}
	}
	return out
}

func run(t *testing.T, job *Job) (*memEnv, *Result) {
	t.Helper()
	env := newMemEnv()
	res, err := CPU{}.Compact(job, env)
	if err != nil {
		t.Fatal(err)
	}
	return env, res
}

func TestMergeKeepsNewestVersion(t *testing.T) {
	job := &Job{
		Runs: [][]Table{
			{table(t, []kv{{"k", 9, keys.KindSet, "new"}})},
			{table(t, []kv{{"k", 3, keys.KindSet, "old"}})},
		},
		SmallestSnapshot: keys.MaxSeq,
		TableOpts:        sstable.Options{},
		MaxOutputBytes:   1 << 20,
	}
	env, res := run(t, job)
	got := scan(t, env, res)
	if len(got) != 1 || got[0].value != "new" {
		t.Fatalf("got %v", got)
	}
	if res.Stats.PairsDropped != 1 {
		t.Fatalf("dropped %d, want 1", res.Stats.PairsDropped)
	}
}

func TestTombstoneKeptAboveBottomLevel(t *testing.T) {
	job := &Job{
		Runs:             [][]Table{{table(t, []kv{{"k", 5, keys.KindDelete, ""}})}},
		SmallestSnapshot: keys.MaxSeq,
		BottomLevel:      false,
		TableOpts:        sstable.Options{},
		MaxOutputBytes:   1 << 20,
	}
	env, res := run(t, job)
	got := scan(t, env, res)
	if len(got) != 1 || got[0].kind != keys.KindDelete {
		t.Fatalf("tombstone must survive above the bottom level: %v", got)
	}
	_ = env
}

func TestTombstoneDroppedAtBottomLevel(t *testing.T) {
	job := &Job{
		Runs:             [][]Table{{table(t, []kv{{"k", 5, keys.KindDelete, ""}, {"k", 2, keys.KindSet, "v"}})}},
		SmallestSnapshot: keys.MaxSeq,
		BottomLevel:      true,
		TableOpts:        sstable.Options{},
		MaxOutputBytes:   1 << 20,
	}
	env, res := run(t, job)
	if got := scan(t, env, res); len(got) != 0 {
		t.Fatalf("bottom-level merge kept %v", got)
	}
	if len(res.Outputs) != 0 {
		t.Fatal("empty output table emitted")
	}
}

func TestSnapshotPinsOlderVersions(t *testing.T) {
	job := &Job{
		Runs: [][]Table{{table(t, []kv{
			{"k", 9, keys.KindSet, "v9"},
			{"k", 5, keys.KindSet, "v5"},
			{"k", 2, keys.KindSet, "v2"},
		})}},
		SmallestSnapshot: 5,
		BottomLevel:      true,
		TableOpts:        sstable.Options{},
		MaxOutputBytes:   1 << 20,
	}
	env, res := run(t, job)
	got := scan(t, env, res)
	// v9 is newest, v5 is the version visible at snapshot 5; v2 is shadowed.
	if len(got) != 2 || got[0].seq != 9 || got[1].seq != 5 {
		t.Fatalf("snapshot merge kept %v", got)
	}
}

func TestUserKeyNeverSplitsAcrossOutputs(t *testing.T) {
	// Many versions of one key under a tiny output threshold must still
	// end up in a single table.
	var versions []kv
	for i := 100; i > 0; i-- {
		versions = append(versions, kv{"hot", uint64(i), keys.KindSet, fmt.Sprintf("%0100d", i)})
	}
	tail := []kv{{"z1", 1, keys.KindSet, "a"}, {"z2", 1, keys.KindSet, "b"}}
	job := &Job{
		Runs:             [][]Table{{table(t, append(versions, tail...))}},
		SmallestSnapshot: 0, // every version pinned
		TableOpts:        sstable.Options{},
		MaxOutputBytes:   512,
	}
	env, res := run(t, job)
	if len(res.Outputs) < 2 {
		t.Fatalf("threshold should force several outputs, got %d", len(res.Outputs))
	}
	// All "hot" versions must live in exactly one output table.
	holders := 0
	for _, ot := range res.Outputs {
		buf := env.files[ot.Num]
		r, _ := sstable.NewReader(memReaderAt(buf.Bytes()), int64(buf.Len()), sstable.Options{}, nil, ot.Num)
		it := r.NewIterator()
		found := false
		for it.SeekToFirst(); it.Valid(); it.Next() {
			if string(keys.UserKey(it.Key())) == "hot" {
				found = true
			}
		}
		if found {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("user key split across %d output tables", holders)
	}
}

func TestJobAccounting(t *testing.T) {
	a := table(t, []kv{{"a", 1, keys.KindSet, "1"}})
	b := table(t, []kv{{"b", 2, keys.KindSet, "2"}})
	job := &Job{Runs: [][]Table{{a}, {b}}, SmallestSnapshot: keys.MaxSeq, TableOpts: sstable.Options{}, MaxOutputBytes: 1 << 20}
	if job.NumRuns() != 2 {
		t.Fatalf("NumRuns = %d", job.NumRuns())
	}
	if job.InputBytes() != a.Size+b.Size {
		t.Fatalf("InputBytes = %d", job.InputBytes())
	}
	env, res := run(t, job)
	if res.Stats.PairsIn != 2 || res.Stats.PairsOut != 2 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if res.Stats.BytesRead != job.InputBytes() || res.Stats.BytesWritten <= 0 {
		t.Fatalf("byte accounting wrong: %+v", res.Stats)
	}
	_ = env
}

func TestCPUExecutorInterface(t *testing.T) {
	var x Executor = CPU{}
	if x.Name() != "cpu" || x.MaxRuns() != 0 {
		t.Fatalf("unexpected executor identity: %s/%d", x.Name(), x.MaxRuns())
	}
}

func TestMultiTableRunConcatenates(t *testing.T) {
	t1 := table(t, []kv{{"a", 1, keys.KindSet, "1"}, {"b", 2, keys.KindSet, "2"}})
	t2 := table(t, []kv{{"c", 3, keys.KindSet, "3"}})
	job := &Job{Runs: [][]Table{{t1, t2}}, SmallestSnapshot: keys.MaxSeq, TableOpts: sstable.Options{}, MaxOutputBytes: 1 << 20}
	env, res := run(t, job)
	got := scan(t, env, res)
	if len(got) != 3 || got[0].user != "a" || got[2].user != "c" {
		t.Fatalf("concat merge = %v", got)
	}
}
