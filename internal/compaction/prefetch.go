package compaction

import (
	"fmt"
	"sync"
	"time"

	"fcae/internal/sstable"
)

// prefetchRun is the pipeline's input read-ahead stage for one sorted
// run: a producer goroutine walks the run's tables with a BlockScanner,
// reading and decompressing up to `window` data blocks ahead of the merge
// cursor into pooled buffers, while the consumer side presents the run as
// a forward-only iter.Iterator to the merging heap. This replaces the
// sequential path's cold readBlockContents call at every block boundary
// — the software analogue of the paper's KV transfer + decoder stages
// running ahead of the merger.
type prefetchRun struct {
	readers []*sstable.Reader

	blocks chan prefetchItem
	free   chan *sstable.BlockBuf
	stop   chan struct{}

	wg        sync.WaitGroup
	closeOnce sync.Once

	// Consumer state (merge goroutine only).
	cur    *sstable.BlockIter
	curBuf *sstable.BlockBuf
	inited bool
	eof    bool
	err    error

	stalls     int64
	stallNanos int64
}

// prefetchItem is one hand-off from producer to consumer: a decoded
// block, an error, or the end-of-run sentinel. The sentinel replaces
// closing the blocks channel so that shutdown ownership stays with Close.
type prefetchItem struct {
	buf      *sstable.BlockBuf
	contents []byte
	err      error
	eof      bool
}

var errPrefetchForwardOnly = fmt.Errorf("compaction: prefetch iterator is forward-only")

// newPrefetchRun opens the run's tables and starts the read-ahead
// producer with the given block window. The caller must Close it.
func newPrefetchRun(run []Table, opts sstable.Options, window int) (*prefetchRun, error) {
	if window < 1 {
		window = 1
	}
	readers := make([]*sstable.Reader, len(run))
	for i, t := range run {
		r, err := sstable.NewReader(t.Data, t.Size, opts, nil, t.Num)
		if err != nil {
			return nil, fmt.Errorf("compaction: open table %d: %w", t.Num, err)
		}
		readers[i] = r
	}
	nbufs := window + 2 // window in flight + one at the producer + one held by the consumer
	p := &prefetchRun{
		readers: readers,
		blocks:  make(chan prefetchItem, window),
		free:    make(chan *sstable.BlockBuf, nbufs),
		stop:    make(chan struct{}),
	}
	for i := 0; i < nbufs; i++ {
		select {
		case p.free <- &sstable.BlockBuf{}:
		default:
			// Unreachable: free was just made with capacity nbufs. The
			// select keeps the seeding send shutdown-safe by construction.
		}
	}
	p.wg.Add(1)
	go p.fill()
	return p, nil
}

// fill is the producer: scan every table of the run in order, pushing
// decoded blocks until the run is exhausted, an error occurs, or Close
// fires.
//
//fcae:cycle-accounting
func (p *prefetchRun) fill() {
	defer p.wg.Done()
	var sc sstable.BlockScanner
	for _, r := range p.readers {
		sc.Reset(r)
		for {
			var buf *sstable.BlockBuf
			select {
			case buf = <-p.free:
			case <-p.stop:
				return
			}
			contents, ok, err := sc.Next(buf)
			if err != nil {
				select {
				case p.blocks <- prefetchItem{err: err}:
				case <-p.stop:
				}
				return
			}
			if !ok {
				select {
				case p.free <- buf:
				case <-p.stop:
					return
				}
				break
			}
			select {
			case p.blocks <- prefetchItem{buf: buf, contents: contents}:
			case <-p.stop:
				return
			}
		}
	}
	select {
	case p.blocks <- prefetchItem{eof: true}:
	case <-p.stop:
	}
}

// Close stops the producer and joins it. Idempotent; safe at any point.
//
// newPrefetchRun makes stop, but tearing the producer down is Close's
// one job, declared for chanflow's owner rule.
//
//fcae:chan-owner compaction.prefetchRun.stop
func (p *prefetchRun) Close() {
	p.closeOnce.Do(func() {
		close(p.stop)
		p.wg.Wait()
	})
}

// nextItem receives the next prefetched block, counting the receives the
// producer couldn't stay ahead of.
func (p *prefetchRun) nextItem() prefetchItem {
	select {
	case it := <-p.blocks:
		return it
	default:
	}
	p.stalls++
	start := time.Now()
	it := <-p.blocks
	p.stallNanos += time.Since(start).Nanoseconds()
	return it
}

// loadNext recycles the consumed block's buffer and positions cur at the
// start of the next block, if any.
func (p *prefetchRun) loadNext() {
	if p.curBuf != nil {
		select {
		case p.free <- p.curBuf:
		case <-p.stop:
		}
		p.curBuf = nil
	}
	if p.eof || p.err != nil {
		return
	}
	it := p.nextItem()
	switch {
	case it.err != nil:
		p.err = it.err
	case it.eof:
		p.eof = true
	default:
		p.curBuf = it.buf
		if p.cur == nil {
			bi, err := sstable.NewBlockIter(it.contents)
			if err != nil {
				p.err = err
				return
			}
			p.cur = bi
		} else if err := p.cur.Reset(it.contents); err != nil {
			p.err = err
			return
		}
		p.cur.SeekToFirst()
	}
}

// SeekToFirst implements iter.Iterator; valid exactly once, before any
// other positioning call.
func (p *prefetchRun) SeekToFirst() {
	if p.inited {
		p.err = errPrefetchForwardOnly
		return
	}
	p.inited = true
	p.loadNext()
	p.skipEmpty()
}

// Next implements iter.Iterator.
func (p *prefetchRun) Next() {
	if p.err != nil || p.eof || p.cur == nil {
		return
	}
	p.cur.Next()
	p.skipEmpty()
}

// skipEmpty advances across block boundaries (and any empty blocks)
// until an entry is available or the run ends.
func (p *prefetchRun) skipEmpty() {
	for p.err == nil && !p.eof && (p.cur == nil || !p.cur.Valid()) {
		if p.cur != nil && p.cur.Error() != nil {
			p.err = p.cur.Error()
			return
		}
		p.loadNext()
	}
}

// Valid implements iter.Iterator.
func (p *prefetchRun) Valid() bool {
	return p.err == nil && !p.eof && p.cur != nil && p.cur.Valid()
}

// Key implements iter.Iterator.
func (p *prefetchRun) Key() []byte { return p.cur.Key() }

// Value implements iter.Iterator.
func (p *prefetchRun) Value() []byte { return p.cur.Value() }

// Error implements iter.Iterator.
func (p *prefetchRun) Error() error {
	if p.err != nil {
		return p.err
	}
	if p.cur != nil {
		return p.cur.Error()
	}
	return nil
}

// SeekGE implements iter.Iterator; unsupported — the compaction merge
// only ever scans forward from the start.
func (p *prefetchRun) SeekGE([]byte) { p.err = errPrefetchForwardOnly }

// SeekToLast implements iter.Iterator; unsupported.
func (p *prefetchRun) SeekToLast() { p.err = errPrefetchForwardOnly }

// Prev implements iter.Iterator; unsupported.
func (p *prefetchRun) Prev() { p.err = errPrefetchForwardOnly }
