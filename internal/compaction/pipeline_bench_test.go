package compaction

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"testing"

	"fcae/internal/keys"
	"fcae/internal/sstable"
)

// benchJob builds the Table V-style 2-run workload: two sorted runs of
// interleaved keys with ~100 B values, snappy-compressed 4 KiB blocks,
// ~2 MB output tables.
func benchJob(tb testing.TB, entriesPerRun int) *Job {
	tb.Helper()
	opts := sstable.Options{Compression: sstable.SnappyCompression}
	job := &Job{
		SmallestSnapshot: keys.MaxSeq,
		BottomLevel:      true,
		TableOpts:        opts,
		MaxOutputBytes:   2 << 20,
	}
	val := make([]byte, 100)
	for i := range val {
		val[i] = byte(i * 31)
	}
	for r := 0; r < 2; r++ {
		var buf bytes.Buffer
		w := sstable.NewWriter(&buf, opts)
		for i := 0; i < entriesPerRun; i++ {
			ik := keys.MakeInternal(nil, []byte(fmt.Sprintf("key%09d", i*2+r)), uint64(r*1000000+i), keys.KindSet)
			if err := w.Add(ik, val); err != nil {
				tb.Fatal(err)
			}
		}
		if _, err := w.Finish(); err != nil {
			tb.Fatal(err)
		}
		data := append([]byte(nil), buf.Bytes()...)
		job.Runs = append(job.Runs, []Table{{
			Num:  uint64(r + 1),
			Size: int64(len(data)),
			Data: memReaderAt(data),
		}})
	}
	return job
}

type nullFile struct{}

func (nullFile) Write(p []byte) (int, error) { return len(p), nil }
func (nullFile) Close() error                { return nil }

// nullEnv discards output bytes so the benchmark measures the data path,
// not allocator churn in a growing buffer.
type nullEnv struct{ next uint64 }

func (e *nullEnv) NewOutput() (uint64, io.WriteCloser, error) {
	e.next++
	return e.next, nullFile{}, nil
}

// BenchmarkCompactPipeline compares the sequential and pipelined CPU data
// paths on the 2-run workload. The acceptance bar is >= 1.3x pipelined
// throughput at 4+ cores.
func BenchmarkCompactPipeline(b *testing.B) {
	job := benchJob(b, 40000)
	bytesIn := job.InputBytes()
	run := func(b *testing.B, cpu CPU) {
		b.SetBytes(bytesIn)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cpu.Compact(job, &nullEnv{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, CPU{}) })
	b.Run("pipelined", func(b *testing.B) {
		run(b, CPU{Pipeline: PipelineConfig{Depth: 4}})
	})
	for _, enc := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("pipelined-enc%d", enc), func(b *testing.B) {
			run(b, CPU{Pipeline: PipelineConfig{Depth: 4, Encoders: enc}})
		})
	}
}

// TestPipelinedCompactAllocsBudget pins the pipelined path's allocs/op on
// the benchmark workload, the dynamic counterpart of hotalloc's static
// check over the encoder and prefetch loops: the pools must actually
// recycle, so allocations stay proportional to tables (a handful each),
// not blocks (hundreds) or entries (tens of thousands).
func TestPipelinedCompactAllocsBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed budget; skipped in -short")
	}
	job := benchJob(t, 20000)
	cpu := CPU{Pipeline: PipelineConfig{Depth: 4, Encoders: 2}}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cpu.Compact(job, &nullEnv{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Measured 373 allocs/op: dominated by per-table reader/iterator and
	// pipeline setup for ~40k entries across ~600 blocks — the pools are
	// recycling. The budget trips if a per-block allocation sneaks into
	// the prefetch, merge or encode loop (that alone would add ~600).
	const budget = 600
	if got := res.AllocsPerOp(); got > budget {
		t.Fatalf("pipelined compaction allocates %d allocs/op, budget is %d", got, budget)
	} else {
		t.Logf("pipelined compaction: %d allocs/op (budget %d, GOMAXPROCS %d)",
			got, budget, runtime.GOMAXPROCS(0))
	}
}
