package compaction

import (
	"runtime"
	"time"

	"fcae/internal/iter"
	"fcae/internal/keys"
	"fcae/internal/sstable"
)

// PipelineConfig tunes the stage-parallel CPU data path, mirroring the
// paper's hardware pipeline: an input read-ahead stage per run, the merge
// stage, and a pool of encoder workers behind a write sequencer.
type PipelineConfig struct {
	// Depth is the bounded queue depth between stages (input blocks
	// prefetched ahead of the merge per run, and output blocks in flight
	// behind it). 0 selects the legacy sequential path.
	Depth int
	// Encoders is the encode-stage worker count; <= 0 selects
	// min(GOMAXPROCS, 4).
	Encoders int
}

// withDefaults resolves the encoder count; Depth is left alone (0 is
// meaningful: it disables the pipeline).
func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.Encoders <= 0 {
		c.Encoders = runtime.GOMAXPROCS(0)
		if c.Encoders > 4 {
			c.Encoders = 4
		}
	}
	return c
}

// pendingOutput is one output table whose tail write is in flight on the
// encode pipeline's sequencer.
type pendingOutput struct {
	num     uint64
	entries int
	reply   <-chan sstable.AsyncFinish
}

// compactPipelined is the stage-parallel data path. The merge loop is the
// sequential one; only where bytes enter and leave it changes:
//
//   - each input run reads ahead through a prefetchRun (decode stage);
//   - each completed output block is encoded and written by the shared
//     EncodePipeline (encode stage) while the merge continues;
//   - table rotation decides on size *bounds*, falling back to a barrier
//     sync only when the threshold lands inside them, so every rotation
//     matches the sequential path's decision and outputs stay
//     byte-identical.
func (c CPU) compactPipelined(job *Job, env Env) (*Result, error) {
	cfg := c.Pipeline.withDefaults()

	runs := make([]*prefetchRun, 0, len(job.Runs))
	defer func() {
		for _, p := range runs {
			p.Close()
		}
	}()
	its := make([]iter.Iterator, 0, len(job.Runs))
	for _, run := range job.Runs {
		p, err := newPrefetchRun(run, job.TableOpts, cfg.Depth)
		if err != nil {
			return nil, err
		}
		runs = append(runs, p)
		its = append(its, p)
	}

	// Abort ordering: the current output's file may still be written by
	// the pipeline's sequencer, so its close (registered here) must run
	// after pipe.Close (registered below) has joined the workers.
	var out *outputWriter
	defer func() {
		if out != nil {
			out.abort()
		}
	}()
	pipe := sstable.NewEncodePipeline(job.TableOpts, cfg.Depth, cfg.Encoders)
	defer pipe.Close()

	merged := iter.NewMerging(its...)
	merged.SeekToFirst()

	res := &Result{}
	res.Stats.BytesRead = job.InputBytes()
	drop := dropPolicy{smallestSnapshot: job.SmallestSnapshot, bottomLevel: job.BottomLevel}

	var pending []pendingOutput
	var lastUser []byte
	for ; merged.Valid(); merged.Next() {
		if err := pipe.Err(); err != nil {
			return nil, err
		}
		res.Stats.PairsIn++
		ikey := merged.Key()
		if drop.drop(ikey) {
			res.Stats.PairsDropped++
			continue
		}
		// Same rotation predicate as the sequential path —
		// EstimatedSize >= max at a user-key boundary — evaluated on
		// bounds so the merge rarely waits for in-flight encodes.
		if out != nil && keys.CompareUser(keys.UserKey(ikey), lastUser) != 0 {
			rotate := false
			lo, hi := out.w.SizeBounds()
			switch {
			case uint64(hi) < job.MaxOutputBytes:
				// Even if every in-flight block stays uncompressed the
				// table is under the cap.
			case uint64(lo) >= job.MaxOutputBytes:
				rotate = true
			default:
				rotate = uint64(out.w.SizeExact()) >= job.MaxOutputBytes
			}
			if rotate {
				pending = append(pending, pendingOutput{
					num:     out.num,
					entries: out.w.Entries(),
					reply:   out.w.FinishAsync(),
				})
				out = nil
			}
		}
		if out == nil {
			var err error
			if out, err = newAsyncOutput(env, job.TableOpts, pipe); err != nil {
				return nil, err
			}
		}
		if err := out.add(ikey, merged.Value()); err != nil {
			return nil, err
		}
		// Hand any block the Add completed to the encoders. The hand-off
		// lives here, not inside Add, so lock-holding sync users of the
		// writer never share a code path with channel waits.
		out.w.PumpAsync()
		lastUser = append(lastUser[:0], keys.UserKey(ikey)...)
		res.Stats.PairsOut++
	}
	if err := merged.Error(); err != nil {
		return nil, err
	}
	if out != nil {
		pending = append(pending, pendingOutput{
			num:     out.num,
			entries: out.w.Entries(),
			reply:   out.w.FinishAsync(),
		})
		out = nil
	}

	// Collect tails in table order. Replies resolve as the sequencer
	// reaches each finish item, so this wait is the pipeline drain.
	done := job.Trace.StartSpan("flush_wait")
	for _, p := range pending {
		fin := <-p.reply
		if fin.Err != nil {
			done()
			return nil, fin.Err
		}
		if p.entries == 0 {
			continue
		}
		res.Outputs = append(res.Outputs, OutputTable{
			Num:      p.num,
			Size:     fin.Stats.FileSize,
			Entries:  fin.Stats.Entries,
			Smallest: fin.Stats.Smallest,
			Largest:  fin.Stats.Largest,
		})
		res.Stats.BytesWritten += fin.Stats.FileSize
	}
	done()

	es := pipe.Stats()
	ps := &res.Stats.Pipeline
	ps.Blocks = es.Blocks
	ps.EncodeStalls = es.EncodeStalls
	ps.EncodeStallNanos = es.EncodeStallNanos
	ps.SubmitStalls = es.SubmitStalls
	ps.SubmitStallNanos = es.SubmitStallNanos
	ps.SizeSyncs = es.SizeSyncs
	for _, p := range runs {
		ps.PrefetchStalls += p.stalls
		ps.PrefetchStallNanos += p.stallNanos
	}
	job.Trace.AddSpan("prefetch_stall", time.Duration(ps.PrefetchStallNanos))
	job.Trace.AddSpan("encode_stall", time.Duration(ps.EncodeStallNanos))
	job.Trace.AddSpan("submit_stall", time.Duration(ps.SubmitStallNanos))
	return res, nil
}

// newAsyncOutput opens one output table writing through the encode
// pipeline.
func newAsyncOutput(env Env, opts sstable.Options, pipe *sstable.EncodePipeline) (*outputWriter, error) {
	num, f, err := env.NewOutput()
	if err != nil {
		return nil, err
	}
	return &outputWriter{num: num, f: f, w: sstable.NewWriterAsync(f, opts, pipe)}, nil
}
