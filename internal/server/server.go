package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"fcae/internal/lsm"
	"fcae/internal/obs"
)

// Config tunes the network server. The zero value of every field selects
// a sensible default (Validate rejects negatives); Addr is the only
// mandatory field. AdminAddr == "" disables the admin plane.
type Config struct {
	// Addr is the TCP listen address for the KV protocol, e.g.
	// "127.0.0.1:4490". ":0" picks an ephemeral port (see Server.Addr).
	Addr string
	// AdminAddr is the HTTP admin listen address serving /metrics,
	// /healthz and /stats. Empty disables the admin listener.
	AdminAddr string
	// MaxInFlight bounds concurrently-executing requests across all
	// connections (admission control). Default 256.
	MaxInFlight int
	// WriteQueue is the capacity of the group-commit queue. A write
	// arriving with the queue full is shed with ErrServerBusy. Default
	// 1024.
	WriteQueue int
	// MaxGroupOps caps operations coalesced into one store commit.
	// Default 512.
	MaxGroupOps int
	// MaxGroupBytes caps key+value payload bytes per coalesced commit.
	// Default 1 MiB.
	MaxGroupBytes int
	// CommitWindow is how long the committer lingers collecting more
	// writes after the first of a group arrives. 0 (the default) commits
	// whatever is already queued without waiting — coalescing still
	// happens under load, with no added latency when idle.
	CommitWindow time.Duration
	// MaxFrameBytes bounds a single protocol frame. Default
	// DefaultMaxFrameBytes (16 MiB).
	MaxFrameBytes int
	// WriteTimeout bounds each response write to a client. Default 10s.
	WriteTimeout time.Duration
	// MaxScanEntries caps entries returned by one SCAN regardless of the
	// requested limit. Default 1024.
	MaxScanEntries int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 256
	}
	if c.WriteQueue == 0 {
		c.WriteQueue = 1024
	}
	if c.MaxGroupOps == 0 {
		c.MaxGroupOps = 512
	}
	if c.MaxGroupBytes == 0 {
		c.MaxGroupBytes = 1 << 20
	}
	if c.MaxFrameBytes == 0 {
		c.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MaxScanEntries == 0 {
		c.MaxScanEntries = 1024
	}
	return c
}

// Validate reports configuration contradictions.
func (c Config) Validate() error {
	if c.Addr == "" {
		return errors.New("server: Config.Addr is required")
	}
	if c.MaxInFlight < 0 || c.WriteQueue < 0 || c.MaxGroupOps < 0 ||
		c.MaxGroupBytes < 0 || c.MaxFrameBytes < 0 || c.MaxScanEntries < 0 {
		return errors.New("server: negative Config limit")
	}
	if c.CommitWindow < 0 || c.WriteTimeout < 0 {
		return errors.New("server: negative Config duration")
	}
	if c.MaxFrameBytes != 0 && c.MaxFrameBytes < 1<<10 {
		return fmt.Errorf("server: MaxFrameBytes %d below the 1KiB floor", c.MaxFrameBytes)
	}
	return nil
}

// stallWatcher tracks hard write stalls from the store's event stream so
// admission control can shed writes while the memtable or L0 is blocked.
// The soft L0 slowdown (1ms) is deliberately ignored: it is the store
// pacing itself, not a condition the server should amplify into errors.
type stallWatcher struct {
	obs.NoopListener
	depth atomic.Int64
}

// WriteStallBegin implements obs.EventListener.
func (w *stallWatcher) WriteStallBegin(e obs.WriteStallBeginEvent) {
	if e.Reason == obs.StallMemTableFull || e.Reason == obs.StallL0Stop {
		w.depth.Add(1)
	}
}

// WriteStallEnd implements obs.EventListener.
func (w *stallWatcher) WriteStallEnd(e obs.WriteStallEndEvent) {
	if e.Reason == obs.StallMemTableFull || e.Reason == obs.StallL0Stop {
		w.depth.Add(-1)
	}
}

func (w *stallWatcher) stalled() bool { return w.depth.Load() > 0 }

// Server is the TCP KV service. Construct with Open; shut down with
// Close. Fields above mu are set once in Open (or are internally
// synchronized); conns and closed are guarded by mu.
type Server struct {
	cfg     Config
	db      *lsm.DB
	met     *serverMetrics
	stall   *stallWatcher
	ln      net.Listener
	adminLn net.Listener
	admin   *http.Server
	// stopc broadcasts shutdown; writec feeds the group committer;
	// inflight is the admission-token semaphore.
	stopc    chan struct{}
	writec   chan *pendingWrite
	inflight chan struct{}
	active   atomic.Int64
	draining atomic.Bool
	// connWg joins the acceptor and every connection goroutine; wg joins
	// the committer and the admin listener.
	connWg sync.WaitGroup
	wg     sync.WaitGroup

	mu     sync.Mutex
	conns  map[*conn]struct{}
	closed bool
}

// Open opens (or creates) the store at dir and starts serving it on
// cfg.Addr. The server chains its stall watcher in front of any
// opts.EventListener, registers its instruments into the store's metrics
// registry, and owns the store: Close drains connections and then closes
// the DB.
func Open(dir string, opts lsm.Options, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	s := &Server{
		cfg:      cfg,
		stall:    &stallWatcher{},
		stopc:    make(chan struct{}),
		writec:   make(chan *pendingWrite, cfg.WriteQueue),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		conns:    make(map[*conn]struct{}),
	}
	if opts.EventListener != nil {
		opts.EventListener = obs.MultiListener{s.stall, opts.EventListener}
	} else {
		opts.EventListener = s.stall
	}

	db, err := lsm.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	s.db = db

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		_ = db.Close()
		return nil, err
	}
	s.ln = ln

	if cfg.AdminAddr != "" {
		adminLn, err := net.Listen("tcp", cfg.AdminAddr)
		if err != nil {
			_ = ln.Close()
			_ = db.Close()
			return nil, err
		}
		s.adminLn = adminLn
		s.admin = &http.Server{
			Handler:           s.adminMux(),
			ReadHeaderTimeout: 5 * time.Second,
		}
	}

	s.met = newServerMetrics(db.Registry())
	s.registerGauges(db.Registry())

	s.connWg.Add(1)
	go s.acceptLoop()
	s.wg.Add(1)
	go s.commitLoop()
	if s.admin != nil {
		s.wg.Add(1)
		go s.serveAdmin()
	}
	return s, nil
}

// Addr returns the KV listener's bound address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// AdminAddr returns the admin listener's bound address, or nil when the
// admin plane is disabled.
func (s *Server) AdminAddr() net.Addr {
	if s.adminLn == nil {
		return nil
	}
	return s.adminLn.Addr()
}

// DB exposes the underlying store for read-side inspection (Stats,
// Metrics). The server owns the store's lifecycle; callers must not
// Close it.
func (s *Server) DB() *lsm.DB { return s.db }

func (s *Server) registerGauges(r *obs.Registry) {
	r.GaugeFunc("server_active_conns", func() float64 { return float64(s.active.Load()) })
	r.GaugeFunc("server_inflight", func() float64 { return float64(len(s.inflight)) })
	r.GaugeFunc("server_write_queue", func() float64 { return float64(len(s.writec)) })
	r.GaugeFunc("server_stalled", func() float64 {
		if s.stall.stalled() {
			return 1
		}
		return 0
	})
}

func (s *Server) acceptLoop() {
	defer s.connWg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.stopc:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient accept failure (EMFILE and friends): back off
			// briefly instead of spinning.
			time.Sleep(10 * time.Millisecond)
			continue
		}
		s.connWg.Add(1)
		go s.serveConn(nc)
	}
}

func (s *Server) serveConn(nc net.Conn) {
	defer s.connWg.Done()
	c := &conn{srv: s, nc: nc}
	if !s.addConn(c) {
		_ = nc.Close()
		return
	}
	s.met.connsOpened.Inc()
	s.active.Add(1)
	c.run()
	s.active.Add(-1)
	s.removeConn(c)
	s.met.connsClosed.Inc()
}

func (s *Server) addConn(c *conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
}

// Close drains and shuts the server down: mark draining (healthz flips to
// 503), stop accepting, stop reading new requests on every live
// connection, finish all in-flight requests and flush their responses,
// commit every queued write, then close the store. Idempotent.
//
//fcae:chan-owner server.Server.stopc
//fcae:chan-owner server.Server.writec
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.draining.Store(true)
	close(s.stopc)
	_ = s.ln.Close()
	if s.admin != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = s.admin.Shutdown(ctx)
		cancel()
		_ = s.admin.Close()
	}
	// Half-close every connection's read side: in-flight requests keep
	// executing and their responses still go out, but no new frames are
	// consumed.
	for _, c := range conns {
		c.stopReading()
	}
	s.connWg.Wait()
	// Every request handler has returned, so the committer's queue has
	// no senders left; closing it lets commitLoop drain the tail and
	// exit.
	close(s.writec)
	s.wg.Wait()
	return s.db.Close()
}
