package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"fcae/internal/lsm"
)

// response is one frame queued for a connection's writer.
type response struct {
	id      uint64
	status  Status
	payload []byte
}

// conn serves one client connection: a read loop that admits and spawns
// request handlers, and a single writer goroutine that serializes their
// out-of-order responses back onto the socket. The connection's owner is
// Server.serveConn; run returns only after every handler finished and
// the writer flushed, so the server-wide connWg join covers everything.
type conn struct {
	srv     *Server
	nc      net.Conn
	writech chan response
	// handlers joins the per-request goroutines; writerWg joins the
	// writer.
	handlers sync.WaitGroup
	writerWg sync.WaitGroup
}

// stopReading half-closes the read side so a blocked ReadFrame returns
// and no further requests are consumed, while queued responses still
// flow out.
func (c *conn) stopReading() {
	if tc, ok := c.nc.(*net.TCPConn); ok {
		_ = tc.CloseRead()
		return
	}
	_ = c.nc.SetReadDeadline(time.Now())
}

func (c *conn) run() {
	c.writech = make(chan response, 64)
	c.writerWg.Add(1)
	go c.writeLoop()
	c.readLoop()
	c.handlers.Wait()
	close(c.writech)
	c.writerWg.Wait()
	_ = c.nc.Close()
}

func (c *conn) readLoop() {
	s := c.srv
	br := bufio.NewReaderSize(c.nc, 32<<10)
	for {
		id, opb, payload, err := ReadFrame(br, s.cfg.MaxFrameBytes)
		if err != nil {
			// A malformed or oversized frame desynchronizes the stream;
			// the only safe reaction is dropping the connection.
			if errors.Is(err, ErrMalformedFrame) || errors.Is(err, ErrFrameTooLarge) {
				s.met.protocolErrors.Inc()
			}
			return
		}
		s.met.requests.Inc()
		s.met.requestBytes.Add(int64(frameHeaderSize + framePrefixSize + len(payload)))
		op := Op(opb)
		if op < OpGet || op > OpScan {
			s.met.protocolErrors.Inc()
			c.enqueue(id, StatusErr, []byte(fmt.Sprintf("unknown opcode %d", opb)))
			continue
		}
		c.srv.met.opCount(op).Inc()
		// Stall shedding: while the store is in a hard write stall,
		// refuse writes immediately instead of queueing goroutines
		// behind a blocked memtable. Reads keep flowing.
		if op.writes() && s.stall.stalled() {
			s.met.busyStall.Inc()
			c.enqueue(id, StatusBusy, nil)
			continue
		}
		select {
		case s.inflight <- struct{}{}:
		case <-s.stopc:
			c.enqueue(id, StatusClosing, nil)
			return
		}
		c.handlers.Add(1)
		go c.handle(id, op, payload)
	}
}

func (c *conn) handle(id uint64, op Op, payload []byte) {
	defer c.handlers.Done()
	defer func() { <-c.srv.inflight }()
	start := time.Now()
	status, resp := c.execute(op, payload)
	c.srv.met.opNanos(op).ObserveDuration(time.Since(start))
	c.enqueue(id, status, resp)
}

// execute runs one decoded request against the store.
func (c *conn) execute(op Op, payload []byte) (Status, []byte) {
	s := c.srv
	switch op {
	case OpGet:
		key, rest, err := ReadBytes(payload)
		if err != nil || len(rest) != 0 {
			return c.malformed(op)
		}
		value, err := s.db.Get(key)
		if err != nil {
			return s.statusOf(err)
		}
		return StatusOK, value
	case OpPut:
		key, rest, err := ReadBytes(payload)
		if err != nil {
			return c.malformed(op)
		}
		value, rest, err := ReadBytes(rest)
		if err != nil || len(rest) != 0 {
			return c.malformed(op)
		}
		var b Batch
		b.Put(key, value)
		return s.statusOf(s.submitWrite(AppendWritePayload(nil, &b), b.count, b.size))
	case OpDelete:
		key, rest, err := ReadBytes(payload)
		if err != nil || len(rest) != 0 {
			return c.malformed(op)
		}
		var b Batch
		b.Delete(key)
		return s.statusOf(s.submitWrite(AppendWritePayload(nil, &b), b.count, b.size))
	case OpWrite:
		// Validate the whole batch up front so the committer can never
		// hit a decode error halfway through a merged store batch.
		count, size := 0, 0
		err := DecodeWriteOps(payload, func(kind byte, key, value []byte) error {
			count++
			size += len(key) + len(value)
			return nil
		})
		if err != nil {
			return c.malformed(op)
		}
		return s.statusOf(s.submitWrite(payload, count, size))
	case OpScan:
		start, rest, err := ReadBytes(payload)
		if err != nil {
			return c.malformed(op)
		}
		limit, rest, err := ReadUvarint(rest)
		if err != nil || len(rest) != 0 {
			return c.malformed(op)
		}
		return c.scan(start, limit)
	}
	return StatusErr, []byte(fmt.Sprintf("unhandled opcode %d", op))
}

func (c *conn) malformed(op Op) (Status, []byte) {
	c.srv.met.protocolErrors.Inc()
	return StatusErr, []byte(fmt.Sprintf("malformed %s payload", op))
}

func (c *conn) scan(start []byte, limit uint64) (Status, []byte) {
	s := c.srv
	max := uint64(s.cfg.MaxScanEntries)
	if limit == 0 || limit > max {
		limit = max
	}
	it, err := s.db.NewIterator()
	if err != nil {
		return s.statusOf(err)
	}
	defer func() { _ = it.Close() }()

	// Entries append one at a time; the frame budget (leave room for the
	// frame prefix) caps the payload regardless of the requested limit.
	budget := s.cfg.MaxFrameBytes - 1024
	payload := appendUvarint(nil, 0) // count backpatched below
	count := uint64(0)
	var ok bool
	if len(start) == 0 {
		ok = it.First()
	} else {
		ok = it.Seek(start)
	}
	for ; ok && count < limit; ok = it.Next() {
		k, v := it.Key(), it.Value()
		if len(payload)+len(k)+len(v)+2*10 > budget {
			break
		}
		payload = AppendBytes(payload, k)
		payload = AppendBytes(payload, v)
		count++
	}
	if err := it.Error(); err != nil {
		return s.statusOf(err)
	}
	// Rebuild with the real count prefix (uvarint width may differ from
	// the zero placeholder).
	out := appendUvarint(make([]byte, 0, len(payload)+9), count)
	out = append(out, payload[1:]...)
	return StatusOK, out
}

// statusOf maps a store or admission error onto the wire.
func (s *Server) statusOf(err error) (Status, []byte) {
	switch {
	case err == nil:
		return StatusOK, nil
	case errors.Is(err, lsm.ErrNotFound):
		return StatusNotFound, nil
	case errors.Is(err, ErrServerBusy):
		return StatusBusy, nil
	case errors.Is(err, ErrServerClosing), errors.Is(err, lsm.ErrClosed):
		// lsm.ErrClosed here means the request raced the drain: the
		// store is closing underneath us, which the client should see as
		// the server shutting down, not as a data error.
		return StatusClosing, nil
	default:
		return StatusErr, []byte(err.Error())
	}
}

func (c *conn) enqueue(id uint64, st Status, payload []byte) {
	c.writech <- response{id: id, status: st, payload: payload}
}

func (c *conn) writeLoop() {
	defer c.writerWg.Done()
	bw := bufio.NewWriterSize(c.nc, 32<<10)
	var buf []byte
	failed := false
	for r := range c.writech {
		if failed {
			continue // peer is gone; drain so handlers never block
		}
		buf = AppendFrame(buf[:0], r.id, byte(r.status), r.payload)
		if t := c.srv.cfg.WriteTimeout; t > 0 {
			_ = c.nc.SetWriteDeadline(time.Now().Add(t))
		}
		if _, err := bw.Write(buf); err != nil {
			failed = true
			continue
		}
		// Flush only when the queue is momentarily empty: consecutive
		// pipelined responses coalesce into one syscall.
		if len(c.writech) == 0 {
			if err := bw.Flush(); err != nil {
				failed = true
				continue
			}
		}
		c.srv.met.responseBytes.Add(int64(len(buf)))
	}
	if !failed {
		_ = bw.Flush()
	}
}
