package server

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode feeds hostile bytes through every wire decoder. The
// contract under attack: decoders must return an error for malformed
// input — never panic, and never allocate proportionally to a length
// claimed by the input rather than its actual size.
func FuzzFrameDecode(f *testing.F) {
	// Valid frames seed the corpus so mutation explores near-valid input.
	f.Add(AppendFrame(nil, 1, byte(OpGet), AppendGetPayload(nil, []byte("key"))))
	f.Add(AppendFrame(nil, 2, byte(OpPut), AppendPutPayload(nil, []byte("k"), []byte("v"))))
	var b Batch
	b.Put([]byte("k1"), []byte("v1"))
	b.Delete([]byte("k2"))
	f.Add(AppendFrame(nil, 3, byte(OpWrite), AppendWritePayload(nil, &b)))
	f.Add(AppendFrame(nil, 4, byte(OpScan), AppendScanPayload(nil, []byte("s"), 100)))
	scan := appendUvarint(nil, 1)
	scan = AppendBytes(scan, []byte("key"))
	scan = AppendBytes(scan, []byte("value"))
	f.Add(AppendFrame(nil, 5, byte(StatusOK), scan))
	// Hostile seeds: huge claimed lengths with tiny bodies.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{0, 0, 0, 9, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	const maxFrame = 1 << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > maxFrame {
			data = data[:maxFrame]
		}
		id, op, payload, rest, err := DecodeFrame(data, maxFrame)
		if err == nil {
			// A decoded frame must re-encode to the bytes it came from.
			re := AppendFrame(nil, id, op, payload)
			if !bytes.Equal(re, data[:len(data)-len(rest)]) {
				t.Fatalf("re-encode mismatch: % x vs % x", re, data[:len(data)-len(rest)])
			}
		}
		// Streaming decoder must agree on accept/reject.
		_, _, _, rerr := ReadFrame(bytes.NewReader(data), maxFrame)
		if (err == nil) != (rerr == nil) {
			t.Fatalf("DecodeFrame err=%v but ReadFrame err=%v", err, rerr)
		}

		// Payload decoders: error or succeed, never panic.
		_ = DecodeWriteOps(data, func(kind byte, key, value []byte) error { return nil })
		if kvs, err := DecodeScanPayload(data); err == nil {
			// Pairs must be backed by the input, not fabricated.
			for _, kv := range kvs {
				if len(kv.Key)+len(kv.Value) > len(data) {
					t.Fatalf("scan pair larger than input: %d+%d > %d",
						len(kv.Key), len(kv.Value), len(data))
				}
			}
		}
		if n, _, err := ReadUvarint(data); err == nil && n > uint64(len(data))*8 {
			// ReadUvarint itself just decodes; sanity only.
			_ = n
		}
		if v, _, err := ReadBytes(data); err == nil && len(v) > len(data) {
			t.Fatalf("ReadBytes returned %d bytes from %d input", len(v), len(data))
		}
	})
}
