package server

import "fcae/internal/obs"

// serverMetrics holds the server's instruments, registered into the
// store's registry so one /metrics snapshot covers the whole stack —
// protocol counters next to the dispatch_* and store gauges.
type serverMetrics struct {
	requests       *obs.Counter
	requestBytes   *obs.Counter
	responseBytes  *obs.Counter
	protocolErrors *obs.Counter
	connsOpened    *obs.Counter
	connsClosed    *obs.Counter
	// busyQueue counts writes shed because the commit queue was full;
	// busyStall counts writes shed because the store was in a hard
	// write stall.
	busyQueue *obs.Counter
	busyStall *obs.Counter
	// groupCommits counts store commits issued by the coalescer;
	// groupedWrites counts client write requests folded into them. Their
	// ratio is the group-commit fan-in.
	groupCommits  *obs.Counter
	groupedWrites *obs.Counter

	ops   [OpScan + 1]*obs.Counter
	nanos [OpScan + 1]*obs.Histogram
	// fallbacks for out-of-range ops so callers never nil-deref
	otherOps   *obs.Counter
	otherNanos *obs.Histogram
}

func newServerMetrics(r *obs.Registry) *serverMetrics {
	m := &serverMetrics{
		requests:       r.Counter("server_requests"),
		requestBytes:   r.Counter("server_request_bytes"),
		responseBytes:  r.Counter("server_response_bytes"),
		protocolErrors: r.Counter("server_protocol_errors"),
		connsOpened:    r.Counter("server_conns_opened"),
		connsClosed:    r.Counter("server_conns_closed"),
		busyQueue:      r.Counter("server_busy_queue"),
		busyStall:      r.Counter("server_busy_stall"),
		groupCommits:   r.Counter("server_group_commits"),
		groupedWrites:  r.Counter("server_grouped_writes"),
		otherOps:       r.Counter("server_op_other"),
		otherNanos:     r.Histogram("server_op_other_nanos"),
	}
	for op := OpGet; op <= OpScan; op++ {
		m.ops[op] = r.Counter("server_op_" + op.String())
		m.nanos[op] = r.Histogram("server_op_" + op.String() + "_nanos")
	}
	return m
}

func (m *serverMetrics) opCount(op Op) *obs.Counter {
	if op >= OpGet && op <= OpScan {
		return m.ops[op]
	}
	return m.otherOps
}

func (m *serverMetrics) opNanos(op Op) *obs.Histogram {
	if op >= OpGet && op <= OpScan {
		return m.nanos[op]
	}
	return m.otherNanos
}
