package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"fcae/internal/lsm"
	"fcae/internal/obs"
)

func TestFrameRoundTrip(t *testing.T) {
	t.Parallel()
	frame := AppendFrame(nil, 42, byte(OpPut), []byte("payload"))
	id, op, payload, rest, err := DecodeFrame(frame, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if id != 42 || Op(op) != OpPut || string(payload) != "payload" || len(rest) != 0 {
		t.Fatalf("got id=%d op=%v payload=%q rest=%d", id, Op(op), payload, len(rest))
	}
	// Two frames back to back: rest carries the second.
	frames := AppendFrame(frame, 43, byte(StatusOK), nil)
	_, _, _, rest, err = DecodeFrame(frames, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatalf("DecodeFrame first of two: %v", err)
	}
	id2, _, _, rest2, err := DecodeFrame(rest, DefaultMaxFrameBytes)
	if err != nil || id2 != 43 || len(rest2) != 0 {
		t.Fatalf("second frame: id=%d rest=%d err=%v", id2, len(rest2), err)
	}

	// ReadFrame agrees with DecodeFrame.
	rid, rop, rpayload, err := ReadFrame(bytes.NewReader(frame), DefaultMaxFrameBytes)
	if err != nil || rid != 42 || Op(rop) != OpPut || string(rpayload) != "payload" {
		t.Fatalf("ReadFrame: id=%d op=%v payload=%q err=%v", rid, Op(rop), rpayload, err)
	}
}

func TestDecodeFrameHostile(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrMalformedFrame},
		{"short header", []byte{0, 0, 1}, ErrMalformedFrame},
		{"length below prefix", []byte{0, 0, 0, 4, 1, 2, 3, 4}, ErrMalformedFrame},
		{"oversized length", []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0, 1}, ErrFrameTooLarge},
		{"truncated body", []byte{0, 0, 0, 20, 0, 0, 0, 0, 0, 0, 0, 0, 1}, ErrMalformedFrame},
	}
	for _, tc := range cases {
		if _, _, _, _, err := DecodeFrame(tc.b, 1<<20); !errors.Is(err, tc.want) {
			t.Errorf("%s: DecodeFrame err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// ReadFrame must reject a hostile declared length BEFORE allocating:
	// a 4 GiB claim against a tiny max errors immediately.
	hostile := []byte{0xff, 0xff, 0xff, 0xf0}
	if _, _, _, err := ReadFrame(bytes.NewReader(hostile), 1<<20); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("ReadFrame hostile length err = %v, want ErrFrameTooLarge", err)
	}
}

func TestWriteBatchRoundTrip(t *testing.T) {
	t.Parallel()
	var b Batch
	b.Put([]byte("k1"), []byte("v1"))
	b.Delete([]byte("k2"))
	b.Put([]byte("k3"), []byte("v3"))
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	payload := AppendWritePayload(nil, &b)
	var got []string
	err := DecodeWriteOps(payload, func(kind byte, key, value []byte) error {
		got = append(got, fmt.Sprintf("%d:%s:%s", kind, key, value))
		return nil
	})
	if err != nil {
		t.Fatalf("DecodeWriteOps: %v", err)
	}
	want := []string{"0:k1:v1", "1:k2:", "0:k3:v3"}
	if len(got) != len(want) {
		t.Fatalf("ops = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestDecodeWriteOpsHostile(t *testing.T) {
	t.Parallel()
	var b Batch
	b.Put([]byte("k"), []byte("v"))
	good := AppendWritePayload(nil, &b)

	hostile := [][]byte{
		{},                                       // missing count
		{5},                                      // count 5, no ops
		append(good[:len(good):len(good)], 0xee), // trailing garbage
		{1, 7, 1, 'k'},                           // unknown kind 7
		appendUvarint(nil, 1<<40),                // absurd count, no ops
	}
	for i, p := range hostile {
		err := DecodeWriteOps(p, func(byte, []byte, []byte) error { return nil })
		if !errors.Is(err, ErrMalformedFrame) {
			t.Errorf("case %d: err = %v, want ErrMalformedFrame", i, err)
		}
	}
}

func TestScanPayloadRoundTrip(t *testing.T) {
	t.Parallel()
	payload := appendUvarint(nil, 2)
	payload = AppendBytes(payload, []byte("a"))
	payload = AppendBytes(payload, []byte("1"))
	payload = AppendBytes(payload, []byte("b"))
	payload = AppendBytes(payload, []byte("2"))
	kvs, err := DecodeScanPayload(payload)
	if err != nil || len(kvs) != 2 {
		t.Fatalf("DecodeScanPayload: %v, %d pairs", err, len(kvs))
	}
	if string(kvs[0].Key) != "a" || string(kvs[1].Value) != "2" {
		t.Fatalf("pairs = %v", kvs)
	}
	// A count larger than the encoded pairs must error, not allocate.
	huge := appendUvarint(nil, 1<<50)
	if _, err := DecodeScanPayload(huge); !errors.Is(err, ErrMalformedFrame) {
		t.Fatalf("huge count err = %v, want ErrMalformedFrame", err)
	}
}

func TestOpStatusStrings(t *testing.T) {
	t.Parallel()
	for op := OpGet; op <= OpScan; op++ {
		if op.String() == "invalid" {
			t.Errorf("Op(%d) has no String case", op)
		}
	}
	for st := StatusOK; st <= StatusErr; st++ {
		if st.String() == "invalid" {
			t.Errorf("Status(%d) has no String case", st)
		}
	}
	if Op(0).String() != "invalid" || Status(99).String() != "invalid" {
		t.Errorf("out-of-range enums must stringify as invalid")
	}
}

func TestConfigValidate(t *testing.T) {
	t.Parallel()
	if err := (Config{}).Validate(); err == nil {
		t.Fatal("empty Addr must fail Validate")
	}
	if err := (Config{Addr: "x", MaxInFlight: -1}).Validate(); err == nil {
		t.Fatal("negative limit must fail Validate")
	}
	if err := (Config{Addr: "x", CommitWindow: -time.Second}).Validate(); err == nil {
		t.Fatal("negative window must fail Validate")
	}
	if err := (Config{Addr: "x", MaxFrameBytes: 16}).Validate(); err == nil {
		t.Fatal("tiny MaxFrameBytes must fail Validate")
	}
	if err := (Config{Addr: "x"}).withDefaults().Validate(); err != nil {
		t.Fatalf("defaults must validate: %v", err)
	}
}

func TestStatusOfMapping(t *testing.T) {
	t.Parallel()
	s := &Server{}
	cases := []struct {
		err  error
		want Status
	}{
		{nil, StatusOK},
		{lsm.ErrNotFound, StatusNotFound},
		{ErrServerBusy, StatusBusy},
		{ErrServerClosing, StatusClosing},
		{lsm.ErrClosed, StatusClosing},
		{fmt.Errorf("wrapped: %w", lsm.ErrClosed), StatusClosing},
		{errors.New("boom"), StatusErr},
	}
	for _, tc := range cases {
		if st, _ := s.statusOf(tc.err); st != tc.want {
			t.Errorf("statusOf(%v) = %v, want %v", tc.err, st, tc.want)
		}
	}
}

func TestSubmitWriteQueueFull(t *testing.T) {
	t.Parallel()
	// A bare server with an unbuffered queue and no committer: the
	// non-blocking enqueue must shed immediately.
	s := &Server{
		met:    newServerMetrics(obs.NewRegistry()),
		writec: make(chan *pendingWrite),
	}
	if err := s.submitWrite([]byte{0}, 1, 0); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("submitWrite on full queue = %v, want ErrServerBusy", err)
	}
	if s.met.busyQueue.Value() != 1 {
		t.Fatalf("server_busy_queue = %d, want 1", s.met.busyQueue.Value())
	}
}

// openTestServer starts a server on ephemeral ports over a fresh store.
func openTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := Open(t.TempDir(), lsm.Options{}, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil && !errors.Is(err, lsm.ErrClosed) {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

// rawConn is a minimal frame-level test client.
type rawConn struct {
	t  *testing.T
	nc net.Conn
	br *bufio.Reader
}

func dialRaw(t *testing.T, s *Server) *rawConn {
	t.Helper()
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { _ = nc.Close() })
	return &rawConn{t: t, nc: nc, br: bufio.NewReader(nc)}
}

func (r *rawConn) send(id uint64, op Op, payload []byte) {
	r.t.Helper()
	if _, err := r.nc.Write(AppendFrame(nil, id, byte(op), payload)); err != nil {
		r.t.Fatalf("send frame %d: %v", id, err)
	}
}

func (r *rawConn) recv() (uint64, Status, []byte) {
	r.t.Helper()
	_ = r.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	id, st, payload, err := ReadFrame(r.br, DefaultMaxFrameBytes)
	if err != nil {
		r.t.Fatalf("recv: %v", err)
	}
	return id, Status(st), payload
}

func TestServeBasicOps(t *testing.T) {
	t.Parallel()
	s := openTestServer(t, Config{})
	rc := dialRaw(t, s)

	rc.send(1, OpPut, AppendPutPayload(nil, []byte("alpha"), []byte("1")))
	if id, st, _ := rc.recv(); id != 1 || st != StatusOK {
		t.Fatalf("put: id=%d st=%v", id, st)
	}
	rc.send(2, OpGet, AppendGetPayload(nil, []byte("alpha")))
	if id, st, v := rc.recv(); id != 2 || st != StatusOK || string(v) != "1" {
		t.Fatalf("get: id=%d st=%v v=%q", id, st, v)
	}
	rc.send(3, OpGet, AppendGetPayload(nil, []byte("missing")))
	if _, st, _ := rc.recv(); st != StatusNotFound {
		t.Fatalf("get missing: st=%v", st)
	}
	rc.send(4, OpDelete, AppendDeletePayload(nil, []byte("alpha")))
	if _, st, _ := rc.recv(); st != StatusOK {
		t.Fatalf("delete: st=%v", st)
	}
	rc.send(5, OpGet, AppendGetPayload(nil, []byte("alpha")))
	if _, st, _ := rc.recv(); st != StatusNotFound {
		t.Fatalf("get deleted: st=%v", st)
	}

	var b Batch
	b.Put([]byte("s1"), []byte("x"))
	b.Put([]byte("s2"), []byte("y"))
	rc.send(6, OpWrite, AppendWritePayload(nil, &b))
	if _, st, _ := rc.recv(); st != StatusOK {
		t.Fatalf("write batch: st=%v", st)
	}
	rc.send(7, OpScan, AppendScanPayload(nil, []byte("s"), 10))
	_, st, payload := rc.recv()
	if st != StatusOK {
		t.Fatalf("scan: st=%v", st)
	}
	kvs, err := DecodeScanPayload(payload)
	if err != nil || len(kvs) != 2 {
		t.Fatalf("scan decoded %d pairs (err %v), want 2", len(kvs), err)
	}
	if string(kvs[0].Key) != "s1" || string(kvs[1].Key) != "s2" {
		t.Fatalf("scan keys = %q,%q", kvs[0].Key, kvs[1].Key)
	}
}

func TestServePipelinedById(t *testing.T) {
	t.Parallel()
	s := openTestServer(t, Config{})
	rc := dialRaw(t, s)

	// Pipeline a burst without reading between sends; responses within a
	// burst may arrive in any order but every id must come back exactly
	// once. Requests across bursts are ordered by draining responses in
	// between (handlers for one burst run concurrently, so a GET
	// pipelined behind a PUT is not guaranteed to observe it).
	const n = 64
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("k%03d", i))
		rc.send(uint64(1000+i), OpPut, AppendPutPayload(nil, key, key))
	}
	seen := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		id, st, _ := rc.recv()
		if seen[id] || id < 1000 || id >= 1000+n {
			t.Fatalf("put burst: unexpected or duplicate id %d", id)
		}
		seen[id] = true
		if st != StatusOK {
			t.Fatalf("put id=%d: st=%v", id, st)
		}
	}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("k%03d", i))
		rc.send(uint64(2000+i), OpGet, AppendGetPayload(nil, key))
	}
	for i := 0; i < n; i++ {
		id, st, payload := rc.recv()
		if seen[id] || id < 2000 || id >= 2000+n {
			t.Fatalf("get burst: unexpected or duplicate id %d", id)
		}
		seen[id] = true
		want := fmt.Sprintf("k%03d", id-2000)
		if st != StatusOK || string(payload) != want {
			t.Fatalf("get id=%d: st=%v payload=%q want %q", id, st, payload, want)
		}
	}
}

func TestUnknownOpcodeAndMalformedPayload(t *testing.T) {
	t.Parallel()
	s := openTestServer(t, Config{})
	rc := dialRaw(t, s)

	rc.send(1, Op(200), nil)
	if id, st, _ := rc.recv(); id != 1 || st != StatusErr {
		t.Fatalf("unknown op: id=%d st=%v", id, st)
	}
	// Valid op, garbage payload: typed error response, connection lives.
	rc.send(2, OpGet, []byte{0xff})
	if id, st, _ := rc.recv(); id != 2 || st != StatusErr {
		t.Fatalf("malformed get: id=%d st=%v", id, st)
	}
	rc.send(3, OpPut, AppendPutPayload(nil, []byte("k"), []byte("v")))
	if _, st, _ := rc.recv(); st != StatusOK {
		t.Fatalf("conn must survive malformed payloads; put st=%v", st)
	}
	if s.met.protocolErrors.Value() < 2 {
		t.Fatalf("server_protocol_errors = %d, want >= 2", s.met.protocolErrors.Value())
	}
}

// TestStallShedsWritesServesReads is the stall-injection acceptance test:
// with the store reporting a hard write stall, writes shed with
// StatusBusy (ErrServerBusy on the wire) while reads keep serving.
func TestStallShedsWritesServesReads(t *testing.T) {
	t.Parallel()
	s := openTestServer(t, Config{})
	rc := dialRaw(t, s)

	rc.send(1, OpPut, AppendPutPayload(nil, []byte("pre"), []byte("v")))
	if _, st, _ := rc.recv(); st != StatusOK {
		t.Fatalf("pre-stall put: st=%v", st)
	}

	// Inject the stall exactly as the store's event stream would.
	s.stall.WriteStallBegin(obs.WriteStallBeginEvent{Reason: obs.StallL0Stop})
	if !s.stall.stalled() {
		t.Fatal("stall watcher did not arm")
	}

	rc.send(2, OpPut, AppendPutPayload(nil, []byte("shed"), []byte("v")))
	if id, st, _ := rc.recv(); id != 2 || st != StatusBusy {
		t.Fatalf("stalled put: id=%d st=%v, want StatusBusy", id, st)
	}
	var b Batch
	b.Delete([]byte("pre"))
	rc.send(3, OpWrite, AppendWritePayload(nil, &b))
	if _, st, _ := rc.recv(); st != StatusBusy {
		t.Fatalf("stalled batch write: st=%v, want StatusBusy", st)
	}
	// Reads keep serving mid-stall.
	rc.send(4, OpGet, AppendGetPayload(nil, []byte("pre")))
	if _, st, v := rc.recv(); st != StatusOK || string(v) != "v" {
		t.Fatalf("read during stall: st=%v v=%q", st, v)
	}
	rc.send(5, OpScan, AppendScanPayload(nil, nil, 5))
	if _, st, _ := rc.recv(); st != StatusOK {
		t.Fatalf("scan during stall: st=%v", st)
	}
	if s.met.busyStall.Value() != 2 {
		t.Fatalf("server_busy_stall = %d, want 2", s.met.busyStall.Value())
	}

	// The soft L0 slowdown must NOT shed.
	s.stall.WriteStallEnd(obs.WriteStallEndEvent{Reason: obs.StallL0Stop})
	s.stall.WriteStallBegin(obs.WriteStallBeginEvent{Reason: obs.StallL0Slowdown})
	rc.send(6, OpPut, AppendPutPayload(nil, []byte("soft"), []byte("v")))
	if _, st, _ := rc.recv(); st != StatusOK {
		t.Fatalf("put during soft slowdown: st=%v, want StatusOK", st)
	}
	s.stall.WriteStallEnd(obs.WriteStallEndEvent{Reason: obs.StallL0Slowdown})

	rc.send(7, OpPut, AppendPutPayload(nil, []byte("post"), []byte("v")))
	if _, st, _ := rc.recv(); st != StatusOK {
		t.Fatalf("post-stall put: st=%v", st)
	}
}

func TestAdminPlane(t *testing.T) {
	t.Parallel()
	s := openTestServer(t, Config{AdminAddr: "127.0.0.1:0"})
	base := "http://" + s.AdminAddr().String()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer func() { _ = resp.Body.Close() }()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, body
	}

	if code, body := get("/healthz"); code != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// Generate one request so counters move.
	rc := dialRaw(t, s)
	rc.send(1, OpPut, AppendPutPayload(nil, []byte("k"), []byte("v")))
	if _, st, _ := rc.recv(); st != StatusOK {
		t.Fatalf("put: %v", st)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	var m struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if m.Counters["server_requests"] < 1 || m.Counters["server_op_put"] < 1 {
		t.Fatalf("server counters missing from /metrics: %v", m.Counters)
	}
	if _, ok := m.Gauges["server_active_conns"]; !ok {
		t.Fatalf("server_active_conns gauge missing from /metrics")
	}

	if code, body := get("/metrics?format=text"); code != http.StatusOK ||
		!bytes.Contains(body, []byte("server_requests")) {
		t.Fatalf("/metrics?format=text = %d, missing server_requests:\n%s", code, body)
	}

	code, body = get("/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats = %d", code)
	}
	var st adminStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/stats not JSON: %v", err)
	}
	if st.ActiveConns < 1 {
		t.Fatalf("/stats active_conns = %d, want >= 1", st.ActiveConns)
	}
}
