// Package server implements the fcae network serving layer: a TCP
// key-value service speaking a length-prefixed binary protocol with
// pipelined requests and out-of-order responses, a group-commit write
// coalescer that merges concurrent client writes into one store batch per
// commit window, stall-aware admission control that sheds writes with a
// typed busy error while the store throttles, and an HTTP admin plane
// serving the metrics registry.
//
// # Frame layout
//
// Every request and response is one frame:
//
//	uint32 (big endian)  n — byte length of the rest of the frame
//	uint64 (big endian)  request id, chosen by the client, echoed verbatim
//	uint8                opcode (request) / status (response)
//	[n-9]byte            payload
//
// Frames on one connection are independent: a client may pipeline any
// number of requests without waiting, and the server responds in
// completion order, not arrival order — responses are matched to requests
// by id. Payload fields are uvarint length-prefixed byte strings unless
// noted.
//
//	GET    key                  -> OK value | NOT_FOUND
//	PUT    key value            -> OK
//	DELETE key                  -> OK
//	WRITE  count {kind key [value]}* -> OK            (atomic batch)
//	SCAN   start limit(uvarint) -> OK count {key value}*
//
// Any write may instead answer BUSY (admission control shed it) or
// CLOSING (the server is draining); any request may answer ERR with a
// human-readable message payload.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame geometry. The length word counts the id, the op byte and the
// payload — not itself.
const (
	frameHeaderSize = 4
	framePrefixSize = 9 // 8-byte id + 1-byte op/status

	// DefaultMaxFrameBytes bounds a single frame (and therefore a single
	// key+value or scan result) unless Config/Options override it.
	DefaultMaxFrameBytes = 16 << 20
)

// Op is a request opcode.
type Op uint8

// Request opcodes. Zero is deliberately invalid so an all-zero frame is
// rejected.
const (
	OpGet Op = iota + 1
	OpPut
	OpDelete
	OpWrite
	OpScan
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpWrite:
		return "write"
	case OpScan:
		return "scan"
	}
	return "invalid"
}

// writes reports whether the opcode mutates the store (and is therefore
// subject to write admission control).
func (o Op) writes() bool {
	return o == OpPut || o == OpDelete || o == OpWrite
}

// Status is a response status byte.
type Status uint8

// Response statuses.
const (
	StatusOK Status = iota
	StatusNotFound
	StatusBusy
	StatusClosing
	StatusErr
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNotFound:
		return "not-found"
	case StatusBusy:
		return "busy"
	case StatusClosing:
		return "closing"
	case StatusErr:
		return "error"
	}
	return "invalid"
}

// Typed protocol errors. ErrServerBusy and ErrServerClosing travel the
// wire as StatusBusy/StatusClosing and come back out of the client as
// these exact values, so callers select on them with errors.Is.
var (
	// ErrServerBusy reports that admission control shed the write: the
	// store is stalled or the commit queue is full. The request was not
	// applied; retrying after a backoff is safe.
	ErrServerBusy = errors.New("server: busy: write shed by admission control")
	// ErrServerClosing reports that the server is draining and no longer
	// accepts new work.
	ErrServerClosing = errors.New("server: shutting down")
	// ErrFrameTooLarge reports a frame whose declared length exceeds the
	// configured maximum. The declared length is never allocated.
	ErrFrameTooLarge = errors.New("server: frame exceeds size limit")
	// ErrMalformedFrame reports a frame that violates the wire layout.
	ErrMalformedFrame = errors.New("server: malformed frame")
)

// AppendFrame appends one encoded frame to dst and returns the extended
// slice. op carries an Op on the request path and a Status on the
// response path.
func AppendFrame(dst []byte, id uint64, op byte, payload []byte) []byte {
	var hdr [frameHeaderSize + framePrefixSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(framePrefixSize+len(payload)))
	binary.BigEndian.PutUint64(hdr[4:12], id)
	hdr[12] = op
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeFrame parses one complete frame from the front of b, returning
// the remaining bytes. The payload aliases b. A frame whose declared
// length exceeds maxFrame (DefaultMaxFrameBytes when maxFrame <= 0)
// fails with ErrFrameTooLarge before any allocation or copy; a truncated
// or undersized frame fails with ErrMalformedFrame wrapped around the
// detail.
func DecodeFrame(b []byte, maxFrame int) (id uint64, op byte, payload, rest []byte, err error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrameBytes
	}
	if len(b) < frameHeaderSize {
		return 0, 0, nil, nil, fmt.Errorf("%w: %d header bytes", ErrMalformedFrame, len(b))
	}
	n := binary.BigEndian.Uint32(b[0:4])
	if n < framePrefixSize {
		return 0, 0, nil, nil, fmt.Errorf("%w: declared length %d below frame prefix", ErrMalformedFrame, n)
	}
	if n > uint32(maxFrame) {
		return 0, 0, nil, nil, fmt.Errorf("%w: declared length %d", ErrFrameTooLarge, n)
	}
	if uint32(len(b)-frameHeaderSize) < n {
		return 0, 0, nil, nil, fmt.Errorf("%w: %d bytes for declared length %d", ErrMalformedFrame, len(b)-frameHeaderSize, n)
	}
	body := b[frameHeaderSize : frameHeaderSize+int(n)]
	id = binary.BigEndian.Uint64(body[0:8])
	return id, body[8], body[framePrefixSize:], b[frameHeaderSize+int(n):], nil
}

// ReadFrame reads one frame from r. The returned payload is freshly
// allocated (safe to retain across subsequent reads — the serving path
// hands payloads to concurrent handlers). Hostile declared lengths fail
// before allocation: nothing larger than maxFrame (DefaultMaxFrameBytes
// when maxFrame <= 0) is ever made.
func ReadFrame(r io.Reader, maxFrame int) (id uint64, op byte, payload []byte, err error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrameBytes
	}
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < framePrefixSize {
		return 0, 0, nil, fmt.Errorf("%w: declared length %d below frame prefix", ErrMalformedFrame, n)
	}
	if n > uint32(maxFrame) {
		return 0, 0, nil, fmt.Errorf("%w: declared length %d", ErrFrameTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, err
	}
	return binary.BigEndian.Uint64(body[0:8]), body[8], body[framePrefixSize:], nil
}

// appendUvarint appends v in uvarint form.
func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(dst, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

// AppendBytes appends a uvarint length-prefixed byte string field.
func AppendBytes(dst, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// ReadBytes decodes one uvarint length-prefixed field from the front of
// p, returning the field (aliasing p) and the remainder. The decoded
// length is validated against the remaining bytes before use.
func ReadBytes(p []byte) (field, rest []byte, err error) {
	n, w := binary.Uvarint(p)
	if w <= 0 || uint64(len(p)-w) < n {
		return nil, nil, fmt.Errorf("%w: bad length-prefixed field", ErrMalformedFrame)
	}
	return p[w : w+int(n)], p[w+int(n):], nil
}

// ReadUvarint decodes one uvarint from the front of p.
func ReadUvarint(p []byte) (v uint64, rest []byte, err error) {
	v, w := binary.Uvarint(p)
	if w <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint field", ErrMalformedFrame)
	}
	return v, p[w:], nil
}

// Batch op kinds inside a WRITE payload.
const (
	wireKindPut    = 0
	wireKindDelete = 1
)

// Batch accumulates Put/Delete operations for one atomic WRITE request.
// The zero value is ready to use; Reset recycles the buffer.
type Batch struct {
	ops   []byte
	count int
	size  int // summed key+value payload bytes, for group accounting
}

// Put queues a key/value set.
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, wireKindPut)
	b.ops = AppendBytes(b.ops, key)
	b.ops = AppendBytes(b.ops, value)
	b.count++
	b.size += len(key) + len(value)
}

// Delete queues a tombstone.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, wireKindDelete)
	b.ops = AppendBytes(b.ops, key)
	b.count++
	b.size += len(key)
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return b.count }

// Reset clears the batch for reuse.
func (b *Batch) Reset() {
	b.ops = b.ops[:0]
	b.count = 0
	b.size = 0
}

// AppendWritePayload appends b's WRITE payload (uvarint count + ops).
func AppendWritePayload(dst []byte, b *Batch) []byte {
	dst = appendUvarint(dst, uint64(b.count))
	return append(dst, b.ops...)
}

// DecodeWriteOps walks a WRITE payload, invoking fn per operation (value
// is nil for deletes). It validates the whole payload — trailing garbage
// or a count mismatching the encoded ops is ErrMalformedFrame — so a
// payload that decodes once decodes identically again.
func DecodeWriteOps(p []byte, fn func(kind byte, key, value []byte) error) error {
	count, p, err := ReadUvarint(p)
	if err != nil {
		return err
	}
	for i := uint64(0); i < count; i++ {
		if len(p) == 0 {
			return fmt.Errorf("%w: write batch truncated at op %d", ErrMalformedFrame, i)
		}
		kind := p[0]
		p = p[1:]
		var key, value []byte
		if key, p, err = ReadBytes(p); err != nil {
			return err
		}
		switch kind {
		case wireKindPut:
			if value, p, err = ReadBytes(p); err != nil {
				return err
			}
		case wireKindDelete:
			// no value
		default:
			return fmt.Errorf("%w: unknown batch op kind %d", ErrMalformedFrame, kind)
		}
		if err := fn(kind, key, value); err != nil {
			return err
		}
	}
	if len(p) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after write batch", ErrMalformedFrame, len(p))
	}
	return nil
}

// KV is one key/value pair in a SCAN result.
type KV struct {
	Key   []byte
	Value []byte
}

// DecodeScanPayload decodes an OK SCAN response payload. Pairs alias p.
// The declared count never sizes an allocation — entries append one at a
// time and a count exceeding the encoded pairs is ErrMalformedFrame.
func DecodeScanPayload(p []byte) ([]KV, error) {
	count, p, err := ReadUvarint(p)
	if err != nil {
		return nil, err
	}
	var out []KV
	for i := uint64(0); i < count; i++ {
		var k, v []byte
		if k, p, err = ReadBytes(p); err != nil {
			return nil, err
		}
		if v, p, err = ReadBytes(p); err != nil {
			return nil, err
		}
		out = append(out, KV{Key: k, Value: v})
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after scan result", ErrMalformedFrame, len(p))
	}
	return out, nil
}

// Request payload builders, shared by the client and the tests.

// AppendGetPayload appends a GET payload.
func AppendGetPayload(dst, key []byte) []byte { return AppendBytes(dst, key) }

// AppendPutPayload appends a PUT payload.
func AppendPutPayload(dst, key, value []byte) []byte {
	dst = AppendBytes(dst, key)
	return AppendBytes(dst, value)
}

// AppendDeletePayload appends a DELETE payload.
func AppendDeletePayload(dst, key []byte) []byte { return AppendBytes(dst, key) }

// AppendScanPayload appends a SCAN payload.
func AppendScanPayload(dst, start []byte, limit int) []byte {
	dst = AppendBytes(dst, start)
	return appendUvarint(dst, uint64(limit))
}
