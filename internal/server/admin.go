package server

import (
	"encoding/json"
	"net/http"

	"fcae/internal/dispatch"
	"fcae/internal/lsm"
	"fcae/internal/manifest"
)

// adminMux builds the admin plane: /metrics (the unified obs registry,
// JSON by default, ?format=text for the flat text encoding), /healthz
// (200 "ok" serving, 503 "draining" once Close began), and /stats (a
// JSON roll-up of store + dispatch counters and the level shape).
func (s *Server) adminMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.db.Metrics()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = m.WriteText(w)
		return
	}
	b, err := m.JSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

// adminStats is the /stats document.
type adminStats struct {
	ActiveConns int64                   `json:"active_conns"`
	Inflight    int                     `json:"inflight"`
	WriteQueue  int                     `json:"write_queue"`
	Stalled     bool                    `json:"stalled"`
	Store       lsm.Stats               `json:"store"`
	Dispatch    dispatch.Stats          `json:"dispatch"`
	LevelFiles  [manifest.NumLevels]int `json:"level_files"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	doc := adminStats{
		ActiveConns: s.active.Load(),
		Inflight:    len(s.inflight),
		WriteQueue:  len(s.writec),
		Stalled:     s.stall.stalled(),
		Store:       s.db.Stats(),
		Dispatch:    s.db.DispatchStats(),
		LevelFiles:  s.db.LevelFiles(),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

func (s *Server) serveAdmin() {
	defer s.wg.Done()
	// Serve returns http.ErrServerClosed on Shutdown/Close; any other
	// error means the admin plane died, which is survivable — the KV
	// plane keeps serving.
	_ = s.admin.Serve(s.adminLn)
}
