// Package client is the Go client for the fcae network server: a small
// connection pool whose every connection pipelines requests (many
// outstanding ops share one socket, responses demultiplexed by request
// id), with per-op deadlines and typed protocol errors. All methods are
// safe for concurrent use; throughput comes from calling them from many
// goroutines so the pipeline fills.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fcae/internal/lsm"
	"fcae/internal/server"
)

// Options configures a Client. Zero values select defaults; Addr is
// mandatory.
type Options struct {
	// Addr is the server's KV address, e.g. "127.0.0.1:4490".
	Addr string
	// Conns is the connection-pool size. Default 2.
	Conns int
	// MaxPipeline bounds outstanding requests per connection. Default 128.
	MaxPipeline int
	// DialTimeout bounds each TCP dial. Default 5s.
	DialTimeout time.Duration
	// OpTimeout bounds each operation end to end (slot wait + write +
	// response). 0 means no deadline. Default 30s.
	OpTimeout time.Duration
	// MaxFrameBytes bounds response frames (0 = server.DefaultMaxFrameBytes).
	MaxFrameBytes int
}

func (o Options) withDefaults() Options {
	if o.Conns == 0 {
		o.Conns = 2
	}
	if o.MaxPipeline == 0 {
		o.MaxPipeline = 128
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.OpTimeout == 0 {
		o.OpTimeout = 30 * time.Second
	}
	return o
}

// Typed client errors. Server-side conditions come back as the server
// package's sentinels (server.ErrServerBusy, server.ErrServerClosing) or
// lsm.ErrNotFound, so one errors.Is vocabulary spans library and wire use.
var (
	// ErrClientClosed reports an operation on a closed client.
	ErrClientClosed = errors.New("client: closed")
	// ErrOpTimeout reports an operation that outlived Options.OpTimeout.
	// The request may still execute on the server; only the wait ended.
	ErrOpTimeout = errors.New("client: operation timed out")
)

// ServerError carries a StatusErr response's message.
type ServerError struct {
	Msg string
}

// Error implements error.
func (e *ServerError) Error() string { return "client: server error: " + e.Msg }

// result is one demultiplexed response.
type result struct {
	status  server.Status
	payload []byte
	err     error
}

// Client is a pooled, pipelining connection to one server.
type Client struct {
	opts   Options
	closec chan struct{}
	wg     sync.WaitGroup

	mu     sync.Mutex
	conns  []*poolConn
	next   int
	closed bool
}

// poolConn is one pooled socket: ids allocates request ids, tokens is
// the pipeline-depth semaphore, wmu serializes frame writes, and the
// mu-guarded pending map is the response demultiplexer's routing table.
type poolConn struct {
	cl     *Client
	nc     net.Conn
	ids    atomic.Uint64
	tokens chan struct{}

	wmu  sync.Mutex
	wbuf []byte

	mu      sync.Mutex
	pending map[uint64]chan result
	dead    bool
	deadErr error
}

// Dial connects the pool and returns a ready client. Every connection is
// established eagerly so a bad address fails here, not on first use.
func Dial(opts Options) (*Client, error) {
	opts = opts.withDefaults()
	if opts.Addr == "" {
		return nil, errors.New("client: Options.Addr is required")
	}
	c := &Client{opts: opts, closec: make(chan struct{})}
	for i := 0; i < opts.Conns; i++ {
		pc, err := c.dialConn()
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		c.mu.Lock()
		c.conns = append(c.conns, pc)
		c.mu.Unlock()
	}
	return c, nil
}

func (c *Client) dialConn() (*poolConn, error) {
	nc, err := net.DialTimeout("tcp", c.opts.Addr, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", c.opts.Addr, err)
	}
	pc := &poolConn{
		cl:      c,
		nc:      nc,
		tokens:  make(chan struct{}, c.opts.MaxPipeline),
		pending: make(map[uint64]chan result),
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		pc.readLoop()
	}()
	return pc, nil
}

// conn picks the next live connection round-robin, redialing dead slots
// in place.
func (c *Client) conn() (*poolConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClientClosed
	}
	var lastErr error
	for i := 0; i < len(c.conns); i++ {
		slot := c.next % len(c.conns)
		c.next++
		pc := c.conns[slot]
		if pc != nil && !pc.isDead() {
			return pc, nil
		}
		npc, err := c.dialConn()
		if err != nil {
			lastErr = err
			continue
		}
		c.conns[slot] = npc
		return npc, nil
	}
	if lastErr == nil {
		lastErr = errors.New("client: no connections configured")
	}
	return nil, lastErr
}

// Close tears the pool down: outstanding operations fail with
// ErrClientClosed and every demultiplexer goroutine is joined.
// Idempotent.
//
//fcae:chan-owner client.Client.closec
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := append([]*poolConn(nil), c.conns...)
	c.mu.Unlock()
	close(c.closec)
	for _, pc := range conns {
		if pc != nil {
			pc.fail(ErrClientClosed)
		}
	}
	c.wg.Wait()
	return nil
}

// Get fetches key's value; lsm.ErrNotFound when absent.
func (c *Client) Get(key []byte) ([]byte, error) {
	st, payload, err := c.do(server.OpGet, server.AppendGetPayload(nil, key))
	if err != nil {
		return nil, err
	}
	if err := statusErr(st, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Put sets key to value.
func (c *Client) Put(key, value []byte) error {
	st, payload, err := c.do(server.OpPut, server.AppendPutPayload(nil, key, value))
	if err != nil {
		return err
	}
	return statusErr(st, payload)
}

// Delete removes key (a missing key is not an error).
func (c *Client) Delete(key []byte) error {
	st, payload, err := c.do(server.OpDelete, server.AppendDeletePayload(nil, key))
	if err != nil {
		return err
	}
	return statusErr(st, payload)
}

// Write applies b atomically on the server.
func (c *Client) Write(b *server.Batch) error {
	st, payload, err := c.do(server.OpWrite, server.AppendWritePayload(nil, b))
	if err != nil {
		return err
	}
	return statusErr(st, payload)
}

// Scan returns up to limit pairs from start (inclusive) in key order.
// limit <= 0 requests the server's maximum; the server also caps the
// result by its own MaxScanEntries and frame size.
func (c *Client) Scan(start []byte, limit int) ([]server.KV, error) {
	if limit < 0 {
		limit = 0
	}
	st, payload, err := c.do(server.OpScan, server.AppendScanPayload(nil, start, limit))
	if err != nil {
		return nil, err
	}
	if err := statusErr(st, payload); err != nil {
		return nil, err
	}
	kvs, err := server.DecodeScanPayload(payload)
	if err != nil {
		return nil, fmt.Errorf("client: bad scan response: %w", err)
	}
	return kvs, nil
}

// do runs one request/response exchange on a pooled connection.
func (c *Client) do(op server.Op, payload []byte) (server.Status, []byte, error) {
	pc, err := c.conn()
	if err != nil {
		return 0, nil, err
	}
	var deadline <-chan time.Time
	if c.opts.OpTimeout > 0 {
		timer := time.NewTimer(c.opts.OpTimeout)
		defer timer.Stop()
		deadline = timer.C
	}
	// Pipeline slot: bounds outstanding requests per connection.
	select {
	case pc.tokens <- struct{}{}:
	case <-c.closec:
		return 0, nil, ErrClientClosed
	case <-deadline:
		return 0, nil, fmt.Errorf("%w: %s awaiting pipeline slot", ErrOpTimeout, op)
	}
	defer func() { <-pc.tokens }()

	id := pc.ids.Add(1)
	ch := make(chan result, 1)
	if err := pc.register(id, ch); err != nil {
		return 0, nil, err
	}
	if err := pc.writeFrame(id, byte(op), payload, c.opts.OpTimeout); err != nil {
		pc.unregister(id)
		return 0, nil, err
	}
	select {
	case r := <-ch:
		return r.status, r.payload, r.err
	case <-c.closec:
		pc.unregister(id)
		return 0, nil, ErrClientClosed
	case <-deadline:
		// The response may still arrive; the demultiplexer will find no
		// waiter and drop it.
		pc.unregister(id)
		return 0, nil, fmt.Errorf("%w: %s", ErrOpTimeout, op)
	}
}

func statusErr(st server.Status, payload []byte) error {
	switch st {
	case server.StatusOK:
		return nil
	case server.StatusNotFound:
		return lsm.ErrNotFound
	case server.StatusBusy:
		return server.ErrServerBusy
	case server.StatusClosing:
		return server.ErrServerClosing
	default:
		return &ServerError{Msg: string(payload)}
	}
}

func (pc *poolConn) register(id uint64, ch chan result) error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.dead {
		return pc.deadErr
	}
	pc.pending[id] = ch
	return nil
}

func (pc *poolConn) unregister(id uint64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	delete(pc.pending, id)
}

func (pc *poolConn) isDead() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.dead
}

// writeFrame serializes one frame onto the socket. A write failure kills
// the connection (the stream is in an unknown state).
func (pc *poolConn) writeFrame(id uint64, op byte, payload []byte, timeout time.Duration) error {
	pc.wmu.Lock()
	if timeout > 0 {
		_ = pc.nc.SetWriteDeadline(time.Now().Add(timeout))
	}
	pc.wbuf = server.AppendFrame(pc.wbuf[:0], id, op, payload)
	_, err := pc.nc.Write(pc.wbuf)
	pc.wmu.Unlock()
	if err != nil {
		// fail's waiter notifications block on channels, so it must run
		// outside wmu.
		pc.fail(err)
		return fmt.Errorf("client: write: %w", err)
	}
	return nil
}

// readLoop demultiplexes responses to their waiting ops until the
// connection dies.
func (pc *poolConn) readLoop() {
	br := bufio.NewReaderSize(pc.nc, 32<<10)
	for {
		id, statusb, payload, err := server.ReadFrame(br, pc.cl.opts.MaxFrameBytes)
		if err != nil {
			pc.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		pc.complete(id, result{status: server.Status(statusb), payload: payload})
	}
}

func (pc *poolConn) complete(id uint64, r result) {
	pc.mu.Lock()
	ch := pc.pending[id]
	delete(pc.pending, id)
	pc.mu.Unlock()
	if ch != nil {
		ch <- r // buffered; at most one send per channel ever happens
	}
}

// fail marks the connection dead exactly once, closes the socket, and
// errors out every waiter.
func (pc *poolConn) fail(err error) {
	pc.mu.Lock()
	if pc.dead {
		pc.mu.Unlock()
		return
	}
	pc.dead = true
	pc.deadErr = err
	pending := pc.pending
	pc.pending = nil
	pc.mu.Unlock()
	_ = pc.nc.Close()
	for _, ch := range pending {
		ch <- result{err: err}
	}
}
