package server_test

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fcae/internal/lsm"
	"fcae/internal/server"
	"fcae/internal/server/client"
)

func openServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := server.Open(t.TempDir(), lsm.Options{}, cfg)
	if err != nil {
		t.Fatalf("server.Open: %v", err)
	}
	return s
}

func dialClient(t *testing.T, s *server.Server, opts client.Options) *client.Client {
	t.Helper()
	opts.Addr = s.Addr().String()
	c, err := client.Dial(opts)
	if err != nil {
		t.Fatalf("client.Dial: %v", err)
	}
	return c
}

// waitGoroutines polls until the goroutine count drops back to within
// slack of the baseline, failing the test if it never does. Leak tests
// must not run in parallel with other tests.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestClientRoundTrip(t *testing.T) {
	s := openServer(t, server.Config{})
	defer func() { _ = s.Close() }()
	c := dialClient(t, s, client.Options{})
	defer func() { _ = c.Close() }()

	if err := c.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, err := c.Get([]byte("k1"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := c.Get([]byte("nope")); !errors.Is(err, lsm.ErrNotFound) {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}
	var b server.Batch
	b.Put([]byte("k2"), []byte("v2"))
	b.Delete([]byte("k1"))
	if err := c.Write(&b); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := c.Get([]byte("k1")); !errors.Is(err, lsm.ErrNotFound) {
		t.Fatalf("Get deleted = %v, want ErrNotFound", err)
	}
	kvs, err := c.Scan([]byte("k"), 10)
	if err != nil || len(kvs) != 1 || string(kvs[0].Key) != "k2" {
		t.Fatalf("Scan = %v, %v", kvs, err)
	}
	if err := c.Delete([]byte("k2")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
}

// TestGroupCommitCoalescing is the group-commit acceptance test: N
// concurrent pipelined writers must land in measurably fewer store
// commits than N writes, proven by the server's own metrics.
func TestGroupCommitCoalescing(t *testing.T) {
	s := openServer(t, server.Config{
		CommitWindow: 2 * time.Millisecond,
		MaxGroupOps:  512,
	})
	defer func() { _ = s.Close() }()
	c := dialClient(t, s, client.Options{Conns: 4, MaxPipeline: 256})
	defer func() { _ = c.Close() }()

	const (
		writers       = 32
		putsPerWriter = 20
		totalWrites   = writers * putsPerWriter
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < putsPerWriter; i++ {
				key := []byte(fmt.Sprintf("w%02d-%03d", w, i))
				if err := c.Put(key, key); err != nil {
					errs <- fmt.Errorf("writer %d put %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	m := s.DB().Metrics()
	grouped := m.Counters["server_grouped_writes"]
	commits := m.Counters["server_group_commits"]
	if grouped != totalWrites {
		t.Fatalf("server_grouped_writes = %d, want %d", grouped, totalWrites)
	}
	if commits <= 0 || commits >= totalWrites/2 {
		t.Fatalf("server_group_commits = %d for %d writes: expected coalescing (< %d)",
			commits, totalWrites, totalWrites/2)
	}
	t.Logf("group commit: %d writes in %d commits (%.1f writes/commit)",
		grouped, commits, float64(grouped)/float64(commits))

	// Every write must be durable and readable.
	for w := 0; w < writers; w++ {
		key := []byte(fmt.Sprintf("w%02d-%03d", w, putsPerWriter-1))
		if v, err := c.Get(key); err != nil || string(v) != string(key) {
			t.Fatalf("Get %q after group commit = %q, %v", key, v, err)
		}
	}
}

// TestDrainUnderLoad closes the server while pipelined clients are
// mid-flight: in-flight requests finish or fail with a typed closing
// error, and no goroutine outlives Close.
func TestDrainUnderLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s := openServer(t, server.Config{CommitWindow: time.Millisecond})
	c := dialClient(t, s, client.Options{Conns: 2, MaxPipeline: 64})

	var stop atomic.Bool
	var okOps, closedOps atomic.Int64
	var wg sync.WaitGroup
	unexpected := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				key := []byte(fmt.Sprintf("d%02d-%06d", w, i))
				err := c.Put(key, key)
				switch {
				case err == nil:
					okOps.Add(1)
				case errors.Is(err, server.ErrServerClosing),
					errors.Is(err, server.ErrServerBusy),
					errors.Is(err, client.ErrClientClosed),
					errors.Is(err, lsm.ErrClosed),
					errors.Is(err, io.EOF),
					isConnErr(err):
					closedOps.Add(1)
					return
				default:
					select {
					case unexpected <- fmt.Errorf("writer %d: %w", w, err):
					default:
					}
					return
				}
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatalf("Close under load: %v", err)
	}
	stop.Store(true)
	wg.Wait()
	close(unexpected)
	for err := range unexpected {
		t.Fatalf("unexpected error during drain: %v", err)
	}
	if okOps.Load() == 0 {
		t.Fatal("no writes succeeded before drain")
	}
	t.Logf("drain: %d ok, %d rejected at shutdown", okOps.Load(), closedOps.Load())

	if err := c.Close(); err != nil {
		t.Fatalf("client Close: %v", err)
	}
	// Close is idempotent.
	if err := s.Close(); err != nil && !errors.Is(err, lsm.ErrClosed) {
		t.Fatalf("second Close: %v", err)
	}
	waitGoroutines(t, baseline)
}

// isConnErr reports transport-level failures that are expected when the
// server tears the connection down mid-flight.
func isConnErr(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}

// TestStressKillConns hammers the server with pipelined clients while
// killing connections mid-flight, then verifies a clean shutdown with
// zero leaked goroutines. Run with -race.
func TestStressKillConns(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s := openServer(t, server.Config{
		CommitWindow: time.Millisecond,
		MaxInFlight:  64,
	})

	const clients = 6
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := client.Dial(client.Options{
				Addr:        s.Addr().String(),
				Conns:       2,
				MaxPipeline: 32,
				OpTimeout:   5 * time.Second,
			})
			if err != nil {
				t.Errorf("client %d dial: %v", ci, err)
				return
			}
			defer func() { _ = c.Close() }()
			var inner sync.WaitGroup
			for g := 0; g < 4; g++ {
				inner.Add(1)
				go func(g int) {
					defer inner.Done()
					for i := 0; i < 50; i++ {
						key := []byte(fmt.Sprintf("s%02d-%d-%03d", ci, g, i))
						err := c.Put(key, key)
						if err == nil {
							_, err = c.Get(key)
						}
						// Killed conns surface transport or typed
						// errors; anything is fine except a hang or a
						// data race — correctness of survivors is
						// checked below.
						_ = err
					}
				}(g)
			}
			inner.Wait()
		}(ci)
	}

	// Kill raw connections mid-flight while the clients run.
	for k := 0; k < 10; k++ {
		nc, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatalf("kill-conn dial: %v", err)
		}
		frame := server.AppendFrame(nil, uint64(k), byte(server.OpPut),
			server.AppendPutPayload(nil, []byte("kill"), []byte("v")))
		_, _ = nc.Write(frame[:len(frame)-3]) // truncated mid-frame
		_ = nc.Close()
	}
	// And one that sends garbage.
	if nc, err := net.Dial("tcp", s.Addr().String()); err == nil {
		_, _ = nc.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xde, 0xad})
		_ = nc.Close()
	}

	wg.Wait()

	// Server must still be fully functional afterwards.
	c := dialClient(t, s, client.Options{})
	if err := c.Put([]byte("after"), []byte("storm")); err != nil {
		t.Fatalf("put after storm: %v", err)
	}
	if v, err := c.Get([]byte("after")); err != nil || string(v) != "storm" {
		t.Fatalf("get after storm = %q, %v", v, err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("client close: %v", err)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
	waitGoroutines(t, baseline)
}

func TestClientOpsAfterClose(t *testing.T) {
	s := openServer(t, server.Config{})
	defer func() { _ = s.Close() }()
	c := dialClient(t, s, client.Options{})
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.Put([]byte("k"), []byte("v")); !errors.Is(err, client.ErrClientClosed) {
		t.Fatalf("Put after Close = %v, want ErrClientClosed", err)
	}
	if _, err := c.Get([]byte("k")); !errors.Is(err, client.ErrClientClosed) {
		t.Fatalf("Get after Close = %v, want ErrClientClosed", err)
	}
	// Close is idempotent.
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
