package server

import (
	"time"

	"fcae/internal/lsm"
)

// pendingWrite is one client write request queued for the group
// committer: a validated WRITE-format payload plus its op/byte counts
// for group accounting. resp is buffered so the committer's reply never
// blocks on the handler.
type pendingWrite struct {
	payload []byte
	count   int
	bytes   int
	resp    chan error
}

// submitWrite hands a validated write payload to the group committer and
// waits for its commit. The enqueue is non-blocking: a full queue sheds
// the write with ErrServerBusy instead of stacking goroutines behind a
// stalled store (the client retries with backoff; the data was never
// accepted).
func (s *Server) submitWrite(payload []byte, count, bytes int) error {
	pw := &pendingWrite{payload: payload, count: count, bytes: bytes, resp: make(chan error, 1)}
	// Handlers are joined before Close closes writec, so this send can
	// never hit a closed channel.
	select {
	case s.writec <- pw:
	default:
		s.met.busyQueue.Inc()
		return ErrServerBusy
	}
	// The committer drains the queue completely (including after
	// shutdown begins), so the reply always arrives.
	return <-pw.resp
}

// commitLoop is the single group committer: it drains the write queue,
// merging every concurrently-queued write into one store batch per
// commit, leader/follower style — the first write of a group pays the
// commit, the rest ride along. With CommitWindow > 0 the leader lingers
// that long to let followers arrive; with the default 0 it commits
// whatever the queue already holds, which still coalesces under load.
// The loop exits when Close closes the queue, after committing the tail.
func (s *Server) commitLoop() {
	defer s.wg.Done()
	var batch lsm.Batch
	group := make([]*pendingWrite, 0, 64)
	for first := range s.writec {
		group = append(group[:0], first)
		ops, bytes := first.count, first.bytes

		var window <-chan time.Time
		var timer *time.Timer
		if s.cfg.CommitWindow > 0 {
			timer = time.NewTimer(s.cfg.CommitWindow)
			window = timer.C
		}
	collect:
		for ops < s.cfg.MaxGroupOps && bytes < s.cfg.MaxGroupBytes {
			if window != nil {
				select {
				case next, ok := <-s.writec:
					if !ok {
						break collect
					}
					group = append(group, next)
					ops += next.count
					bytes += next.bytes
				case <-window:
					break collect
				}
			} else {
				select {
				case next, ok := <-s.writec:
					if !ok {
						break collect
					}
					group = append(group, next)
					ops += next.count
					bytes += next.bytes
				default:
					break collect
				}
			}
		}
		if timer != nil {
			timer.Stop()
		}
		s.commitGroup(&batch, group)
	}
}

// commitGroup merges one group into a single store batch, commits it,
// and fans the result back to every waiting handler.
func (s *Server) commitGroup(batch *lsm.Batch, group []*pendingWrite) {
	batch.Reset()
	var decodeErr error
	for _, pw := range group {
		// Payloads were validated at admission; a failure here is a
		// server bug, surfaced to the whole group rather than silently
		// committing a partial merge.
		if err := DecodeWriteOps(pw.payload, func(kind byte, key, value []byte) error {
			if kind == wireKindDelete {
				batch.Delete(key)
			} else {
				batch.Put(key, value)
			}
			return nil
		}); err != nil {
			decodeErr = err
			break
		}
	}
	err := decodeErr
	if err == nil {
		err = s.db.Write(batch)
	}
	s.met.groupCommits.Inc()
	s.met.groupedWrites.Add(int64(len(group)))
	for _, pw := range group {
		pw.resp <- err
	}
}
