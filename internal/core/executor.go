package core

import (
	"fmt"
	"sync"

	"fcae/internal/compaction"
	"fcae/internal/model"
	"fcae/internal/obs"
	"fcae/internal/sstable"
)

// Executor adapts the engine to the store's compaction.Executor interface.
// It performs the full host-side protocol of paper §IV: build the device
// memory images, DMA them over PCIe, run the engine, DMA the results back
// and combine them into standard SSTable files. A mutex serializes jobs —
// the card has one pipeline.
type Executor struct {
	engine *Engine // immutable after NewExecutor

	mu sync.Mutex

	// arena is the channel's persistent device-memory staging allocation
	// (nil when disabled via Config.StagingBytes < 0); Reset at the start
	// of every job, so each compaction reuses the same backing slab.
	arena *Arena

	// Totals since creation, surfaced in DB stats.
	jobs          int
	kernelCycles  float64
	bytesShipped  int64
	bytesReturned int64
}

// NewExecutor returns a compaction executor backed by an engine with cfg.
func NewExecutor(cfg Config) (*Executor, error) {
	eng, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &Executor{engine: eng, arena: NewArena(eng.cfg.ArenaBytes())}, nil
}

// ArenaBytes reports the channel's staging-arena capacity (0 when the
// arena is disabled), implementing the dispatcher's ArenaSizer.
func (x *Executor) ArenaBytes() int64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.arena.Cap()
}

// ArenaInputBudget reports the largest job input size the arena can
// stage (0 when disabled), implementing the dispatcher's ArenaSizer.
func (x *Executor) ArenaInputBudget() int64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.arena.InputBudget()
}

// ArenaHighWater reports the peak staging-arena occupancy over the
// channel's lifetime (0 when disabled), implementing the dispatcher's
// ArenaSizer. Near-capacity values mean jobs are about to spill to heap
// fallback; far-below-capacity values mean the carve is oversized.
func (x *Executor) ArenaHighWater() int64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.arena.HighWater()
}

// Name implements compaction.Executor.
func (x *Executor) Name() string { return "fcae" }

// MaxRuns implements compaction.Executor: the engine takes up to N sorted
// inputs; beyond that the host compacts in software (§VI-A: "when the
// number of involved SSTables in Level 0 is larger than N-1, the
// compaction task will be processed completely by the software").
func (x *Executor) MaxRuns() int { return x.engine.cfg.N }

// Compact implements compaction.Executor.
func (x *Executor) Compact(job *compaction.Job, env compaction.Env) (*compaction.Result, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if len(job.Runs) > x.engine.cfg.N {
		return nil, fmt.Errorf("%w: %d runs", ErrTooManyInputs, len(job.Runs))
	}

	// Step 3-4 (paper §IV): serialize each input into its device image.
	// The MetaIn block crosses the DMA boundary as real bytes (Fig 8);
	// the "device side" decodes it back before the engine starts.
	// The previous job's staged images are dead once its result has been
	// assembled; rewind the arena so this job reuses the backing slab.
	x.arena.Reset()

	buildDone := job.Trace.StartSpan("build_images")
	images := make([]*InputImage, 0, len(job.Runs))
	for _, run := range job.Runs {
		img, err := BuildInputImageArena(run, x.engine.cfg.WIn, job.TableOpts, x.arena)
		if err != nil {
			return nil, err
		}
		descs, err := DecodeMetaIn(EncodeMetaIn(img))
		if err != nil {
			return nil, fmt.Errorf("core: MetaIn round trip: %w", err)
		}
		img.Tables = descs
		images = append(images, img)
	}
	var shipBytes int64
	for _, img := range images {
		shipBytes += img.Bytes()
	}
	buildDone()

	// Step 5-7: run the engine.
	er, err := x.engine.Run(images, Params{
		BlockSize:         job.TableOpts.BlockSize,
		TableBytes:        int64(job.MaxOutputBytes),
		RestartInterval:   job.TableOpts.RestartInterval,
		Compress:          job.TableOpts.Compression == sstable.SnappyCompression,
		SmallestSnapshot:  job.SmallestSnapshot,
		BottomLevel:       job.BottomLevel,
		CollectFilterKeys: job.TableOpts.FilterBitsPerKey > 0,
		Arena:             x.arena,
	})
	if err != nil {
		return nil, err
	}

	// Step 7-8: fetch results and combine into standard table files. The
	// MetaOut block also crosses the boundary as bytes; the host checks
	// it against the assembled tables.
	metaOut, err := DecodeMetaOut(EncodeMetaOut(er.Outputs, x.engine.cfg.WOut))
	if err != nil {
		return nil, fmt.Errorf("core: MetaOut round trip: %w", err)
	}
	res := &compaction.Result{}
	var returnBytes int64
	for i, img := range er.Outputs {
		returnBytes += img.DataBytes(x.engine.cfg.WOut) + img.IndexBytes() + int64(len(metaOut[i].Smallest)+len(metaOut[i].Largest)+metaOutEntryFixedLen)
		done := job.Trace.StartSpan("flush_table")
		ot, err := assembleTable(img, env, job.TableOpts)
		done()
		if err != nil {
			return nil, err
		}
		if ot.Entries != metaOut[i].Entries {
			return nil, fmt.Errorf("core: MetaOut entry count %d != assembled %d", metaOut[i].Entries, ot.Entries)
		}
		res.Outputs = append(res.Outputs, ot)
		res.Stats.BytesWritten += ot.Size
	}

	res.Stats.BytesRead = job.InputBytes()
	res.Stats.PairsIn = er.Stats.PairsIn
	res.Stats.PairsOut = er.Stats.PairsOut
	res.Stats.PairsDropped = er.Stats.PairsDropped
	res.Stats.KernelTime = er.Stats.KernelTime(x.engine.cfg.ClockHz)
	res.Stats.TransferTime = model.PCIeTransferTime(shipBytes) + model.PCIeTransferTime(returnBytes)

	x.addTotalsLocked(er.Stats.Cycles, shipBytes, returnBytes)
	return res, nil
}

// addTotalsLocked folds one job's outcome into the lifetime counters.
//
//fcae:cycle-accounting
func (x *Executor) addTotalsLocked(cycles float64, shipped, returned int64) {
	x.jobs++
	x.kernelCycles += cycles
	x.bytesShipped += shipped
	x.bytesReturned += returned
}

// Totals reports lifetime executor statistics.
func (x *Executor) Totals() (jobs int, kernelCycles float64, shipped, returned int64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.jobs, x.kernelCycles, x.bytesShipped, x.bytesReturned
}

// PublishMetrics implements obs.MetricsPublisher: the engine's lifetime
// totals appear as callback gauges. The callbacks wait for an in-flight
// job (they take the executor mutex) but never touch the registry, so
// snapshotting cannot deadlock against a running compaction.
func (x *Executor) PublishMetrics(r *obs.Registry) {
	r.GaugeFunc("engine_jobs", func() float64 {
		jobs, _, _, _ := x.Totals()
		return float64(jobs)
	})
	r.GaugeFunc("engine_kernel_cycles", func() float64 {
		_, cycles, _, _ := x.Totals()
		return cycles
	})
	r.GaugeFunc("engine_shipped_bytes", func() float64 {
		_, _, shipped, _ := x.Totals()
		return float64(shipped)
	})
	r.GaugeFunc("engine_returned_bytes", func() float64 {
		_, _, _, returned := x.Totals()
		return float64(returned)
	})
}

// BuildInputImage serializes one sorted run of tables into a device image
// (paper Fig 7: index blocks continuous, data blocks WIn-aligned).
func BuildInputImage(run []compaction.Table, wIn int, opts sstable.Options) (*InputImage, error) {
	return BuildInputImageArena(run, wIn, opts, nil)
}

// BuildInputImageArena is BuildInputImage staging into a channel arena (a
// nil arena heap-allocates). It fails with an error wrapping
// compaction.ErrArenaExhausted when the run does not fit the arena.
func BuildInputImageArena(run []compaction.Table, wIn int, opts sstable.Options, a *Arena) (*InputImage, error) {
	b := NewInputBuilderArena(wIn, a)
	for _, t := range run {
		r, err := sstable.NewReader(t.Data, t.Size, opts, nil, t.Num)
		if err != nil {
			return nil, fmt.Errorf("core: open input table %d: %w", t.Num, err)
		}
		b.BeginTable()
		err = r.VisitRawBlocks(func(rb sstable.RawBlock) error {
			return b.AddBlock(rb.IndexKey, rb.CType, rb.Payload)
		})
		if err != nil {
			return nil, err
		}
	}
	return b.Finish(), nil
}

// assembleTable writes one output image as a standard table file.
func assembleTable(img *OutputTableImage, env compaction.Env, opts sstable.Options) (compaction.OutputTable, error) {
	num, f, err := env.NewOutput()
	if err != nil {
		return compaction.OutputTable{}, err
	}
	a := sstable.NewAssembler(f, opts)
	for _, blk := range img.Blocks {
		if err := a.AddRawBlock(blk.LastKey, blk.CType, blk.Payload, blk.Entries); err != nil {
			_ = f.Close()
			return compaction.OutputTable{}, err
		}
	}
	for _, k := range img.FilterKeys {
		a.AddFilterKey(k)
	}
	a.SetBounds(img.Smallest, img.Largest)
	stats, err := a.Finish()
	if err != nil {
		_ = f.Close()
		return compaction.OutputTable{}, err
	}
	if err := f.Close(); err != nil {
		return compaction.OutputTable{}, err
	}
	return compaction.OutputTable{
		Num:      num,
		Size:     stats.FileSize,
		Entries:  stats.Entries,
		Smallest: stats.Smallest,
		Largest:  stats.Largest,
	}, nil
}
