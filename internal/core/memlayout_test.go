package core

import (
	"bytes"
	"testing"
)

func TestInputImageRoundTrip(t *testing.T) {
	b := NewInputBuilder(64)
	b.BeginTable()
	b.AddBlock([]byte("key-a"), 1, []byte("payload-one"))
	b.AddBlock([]byte("key-b"), 0, []byte("payload-two-longer"))
	b.BeginTable()
	b.AddBlock([]byte("key-c"), 1, []byte("p3"))
	img := b.Finish()

	if len(img.Tables) != 2 {
		t.Fatalf("tables = %d", len(img.Tables))
	}
	if img.Tables[0].NumBlocks != 2 || img.Tables[1].NumBlocks != 1 {
		t.Fatalf("block counts = %d, %d", img.Tables[0].NumBlocks, img.Tables[1].NumBlocks)
	}

	entries, err := img.DecodeIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("index entries = %d", len(entries))
	}
	if string(entries[0].LastKey) != "key-a" || string(entries[1].LastKey) != "key-b" {
		t.Fatalf("keys = %q, %q", entries[0].LastKey, entries[1].LastKey)
	}
	// Recover block one: ctype byte + payload at the recorded offset.
	e := entries[0]
	raw := img.DataMem[e.Offset : e.Offset+e.Size]
	if raw[0] != 1 || !bytes.Equal(raw[1:], []byte("payload-one")) {
		t.Fatalf("block payload = %x", raw)
	}
}

func TestInputImageAlignment(t *testing.T) {
	// Data blocks must be WIn-aligned (paper Fig 7).
	for _, align := range []int{8, 16, 64} {
		b := NewInputBuilder(align)
		b.BeginTable()
		b.AddBlock([]byte("k1"), 0, []byte("xyz"))
		b.AddBlock([]byte("k2"), 0, []byte("0123456789abcdef0123"))
		img := b.Finish()
		entries, err := img.DecodeIndex(0)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range entries {
			if e.Offset%uint64(align) != 0 {
				t.Fatalf("align=%d: block %d at offset %d", align, i, e.Offset)
			}
		}
		if len(img.DataMem)%align != 0 {
			t.Fatalf("align=%d: data memory length %d not padded", align, len(img.DataMem))
		}
	}
}

func TestDecodeIndexErrors(t *testing.T) {
	img := &InputImage{}
	if _, err := img.DecodeIndex(0); err == nil {
		t.Fatal("out-of-range table accepted")
	}
	// Corrupt index stream.
	img = &InputImage{
		Tables:   []TableDesc{{IndexOff: 0, IndexLen: 3, NumBlocks: 1}},
		IndexMem: []byte{0xff, 0xff, 0xff},
	}
	if _, err := img.DecodeIndex(0); err == nil {
		t.Fatal("corrupt index stream accepted")
	}
}

func TestImageBytesAccounting(t *testing.T) {
	b := NewInputBuilder(8)
	b.BeginTable()
	b.AddBlock([]byte("k"), 0, bytes.Repeat([]byte("x"), 1000))
	img := b.Finish()
	if img.Bytes() < 1000 {
		t.Fatalf("Bytes = %d", img.Bytes())
	}
}

func TestOutputTableImageAccounting(t *testing.T) {
	o := &OutputTableImage{
		Blocks: []OutputBlock{
			{CType: 1, Payload: make([]byte, 100), LastKey: []byte("k1")},
			{CType: 0, Payload: make([]byte, 63), LastKey: []byte("k2")},
		},
	}
	// 101 -> 128 aligned, 64 -> 64 aligned at WOut=64.
	if got := o.DataBytes(64); got != 128+64 {
		t.Fatalf("DataBytes = %d", got)
	}
	if o.IndexBytes() <= 0 {
		t.Fatal("IndexBytes must be positive")
	}
}

func TestMetaInRoundTrip(t *testing.T) {
	b := NewInputBuilder(16)
	b.BeginTable()
	b.AddBlock([]byte("a"), 0, []byte("one"))
	b.AddBlock([]byte("b"), 1, []byte("two"))
	b.BeginTable()
	b.AddBlock([]byte("c"), 0, []byte("three"))
	img := b.Finish()

	got, err := DecodeMetaIn(EncodeMetaIn(img))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(img.Tables) {
		t.Fatalf("decoded %d tables", len(got))
	}
	for i := range got {
		if got[i] != img.Tables[i] {
			t.Fatalf("table %d: %+v != %+v", i, got[i], img.Tables[i])
		}
	}
	if _, err := DecodeMetaIn([]byte{1, 2}); err == nil {
		t.Fatal("short MetaIn accepted")
	}
	if _, err := DecodeMetaIn([]byte{9, 0, 0, 0, 1}); err == nil {
		t.Fatal("inconsistent MetaIn accepted")
	}
}

func TestMetaOutRoundTrip(t *testing.T) {
	outputs := []*OutputTableImage{
		{
			Blocks:   []OutputBlock{{CType: 0, Payload: make([]byte, 100), LastKey: []byte("k1")}},
			Smallest: []byte("aaa"),
			Largest:  []byte("mmm"),
			Entries:  42,
		},
		{
			Blocks:   []OutputBlock{{CType: 1, Payload: make([]byte, 63), LastKey: []byte("k2")}},
			Smallest: []byte("nnn"),
			Largest:  []byte("zzz"),
			Entries:  7,
		},
	}
	got, err := DecodeMetaOut(EncodeMetaOut(outputs, 64))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d entries", len(got))
	}
	if got[0].Entries != 42 || string(got[0].Smallest) != "aaa" || string(got[0].Largest) != "mmm" {
		t.Fatalf("entry 0 = %+v", got[0])
	}
	if got[1].DataBytes != outputs[1].DataBytes(64) {
		t.Fatalf("entry 1 data bytes %d", got[1].DataBytes)
	}
	if _, err := DecodeMetaOut([]byte{1, 0, 0, 0}); err == nil {
		t.Fatal("truncated MetaOut accepted")
	}
}
