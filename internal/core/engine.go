package core

import (
	"errors"
	"fmt"
	"io"
	"time"

	"fcae/internal/keys"
	"fcae/internal/snappy"
	"fcae/internal/sstable"
)

// Params configure one engine run (the host sets these per job).
type Params struct {
	// BlockSize is the uncompressed output data block threshold (§V-A:
	// "when the size of a data block reaches a threshold (e.g., 4KB)").
	BlockSize int
	// TableBytes is the output SSTable size threshold (§V-A: "the size of
	// an SSTable also has a threshold (e.g., 2MB)").
	TableBytes int64
	// RestartInterval for output blocks.
	RestartInterval int
	// Compress selects snappy re-compression of output blocks (§V-A: "the
	// selected keys are compressed using snappy compression").
	Compress bool
	// SmallestSnapshot and BottomLevel drive the Validity Check module's
	// drop decisions (§V-A: "if the Delete flag is set, this key-value
	// should be considered invalid").
	SmallestSnapshot uint64
	BottomLevel      bool
	// CollectFilterKeys returns user keys in MetaOut so the host can
	// attach bloom filters while combining the output.
	CollectFilterKeys bool
	// Arena, when non-nil, backs the run's retained output (table bounds,
	// block last-keys, compressed payloads, filter keys) with the
	// channel's staging arena instead of per-item heap allocations. The
	// caller owns the arena's lifetime; output slices die at its Reset.
	Arena *Arena

	// TraceWriter, when set, receives a CSV stream of per-selection
	// pipeline timestamps (cycle numbers for FIFO-head readiness, Comparer
	// start/end, Transfer end, Encoder end) — a software waveform of the
	// Fig 5 pipeline. TraceLimit bounds the number of traced selections
	// (default 1000).
	TraceWriter io.Writer
	TraceLimit  int
}

func (p Params) withDefaults() Params {
	if p.BlockSize <= 0 {
		p.BlockSize = 4096
	}
	if p.TableBytes <= 0 {
		p.TableBytes = 2 << 20
	}
	if p.RestartInterval <= 0 {
		p.RestartInterval = 16
	}
	return p
}

// Stats reports one engine run's outcome.
type Stats struct {
	Cycles       float64
	PairsIn      int
	PairsOut     int
	PairsDropped int
	BytesIn      int64 // device DRAM bytes read
	BytesOut     int64 // device DRAM bytes written (WOut-aligned)
	// Per-stage busy cycles, for bottleneck analysis and the ablation
	// benches. DecoderBusy is the busiest single lane.
	DecoderBusy  float64
	ComparerBusy float64
	TransferBusy float64
	EncoderBusy  float64
}

// KernelTime converts cycles to wall time at the configured clock.
//
//fcae:cycle-accounting
func (s Stats) KernelTime(clockHz float64) time.Duration {
	return time.Duration(s.Cycles / clockHz * float64(time.Second))
}

// SpeedMBps is input bytes over kernel time, the paper's compaction-speed
// metric (§VII-B1).
//
//fcae:cycle-accounting
func (s Stats) SpeedMBps(clockHz float64) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.BytesIn) / (s.Cycles / clockHz) / 1e6
}

// Result is the engine's output: the produced tables plus run statistics.
type Result struct {
	Outputs []*OutputTableImage
	Stats   Stats
}

// ErrTooManyInputs is returned when a job exceeds the engine's decoder
// lanes; the host must fall back to software compaction (§VI-A).
var ErrTooManyInputs = errors.New("core: job exceeds engine input lanes")

// lane is one decoder path: index stream + data block decoding for one
// sorted input.
type lane struct {
	img      *InputImage
	tableIdx int
	index    indexStream
	blocks   int // blocks remaining in current table's index
	// it is the lane's persistent block iterator, Reset onto each new
	// data block so the decode loop does no per-block parse allocation;
	// itLive marks whether it currently holds undrained entries.
	it     *sstable.BlockIter
	itLive bool
	decomp []byte

	key, value []byte
	live       bool

	decClock  float64 // decoder's own timeline (runs ahead through FIFOs)
	headReady float64 // when the current head pair became available
	busy      float64 // accumulated decode service cycles

	// hist is a ring of the last FIFODepth consumption times: the decoder
	// can only decode pair k once pair k-FIFODepth has left the FIFO.
	hist     []float64
	histPos  int
	consumed int
}

// pushConsume records the time the current head left the FIFO and returns
// the earliest time the decoder may start on the pair FIFODepth ahead.
func (l *lane) pushConsume(t float64) {
	l.hist[l.histPos] = t
	l.histPos = (l.histPos + 1) % len(l.hist)
	l.consumed++
}

// fifoConstraint returns the time the FIFO slot for the next decode frees.
func (l *lane) fifoConstraint() float64 {
	if l.consumed < len(l.hist) {
		return 0
	}
	// The oldest entry in the ring is the consume time of pair k-Depth.
	return l.hist[l.histPos]
}

// Engine is a configured FCAE instance. One Engine processes one job at a
// time (the chip has a single pipeline); the host serializes jobs.
type Engine struct {
	cfg Config
}

// NewEngine validates cfg and returns an engine.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg}, nil
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Run merges the input images into output table images, accounting device
// cycles. Inputs must each be internally sorted; len(inputs) must not
// exceed the configured N.
//
//fcae:cycle-accounting
func (e *Engine) Run(inputs []*InputImage, p Params) (*Result, error) {
	if len(inputs) == 0 {
		return &Result{}, nil
	}
	if len(inputs) > e.cfg.N {
		return nil, fmt.Errorf("%w: %d inputs, engine has N=%d", ErrTooManyInputs, len(inputs), e.cfg.N)
	}
	p = p.withDefaults()

	lanes := make([]*lane, len(inputs))
	res := &Result{}
	// One backing array for every lane's FIFO occupancy history: the
	// per-lane windows are fixed-size slices of it, so lane setup does
	// one allocation instead of one per input run.
	histBacking := make([]float64, len(inputs)*e.cfg.FIFODepth)
	for i, img := range inputs {
		l := &lane{img: img, tableIdx: -1, hist: histBacking[i*e.cfg.FIFODepth : (i+1)*e.cfg.FIFODepth]}
		// Initial index fetch latency before the first pair can decode.
		l.decClock = float64(e.cfg.DRAMLatencyCycles)
		if err := e.advance(l, -1); err != nil {
			return nil, err
		}
		lanes[i] = l
		res.Stats.BytesIn += img.Bytes()
	}

	var cmpClock, xferClock, encClock float64
	drop := engineDropPolicy{smallestSnapshot: p.SmallestSnapshot, bottomLevel: p.BottomLevel}
	out := newOutputBuilder(e.cfg, p)

	traceLimit := p.TraceLimit
	if traceLimit <= 0 {
		traceLimit = 1000
	}
	if p.TraceWriter != nil {
		fmt.Fprintln(p.TraceWriter, "pair,lane,keyLen,valueLen,ready,cmpStart,cmpEnd,xferEnd,encEnd,dropped")
	}

	for {
		// The Key Compare module waits for every live FIFO head (§V-A).
		ready := 0.0
		winner := -1
		for i, l := range lanes {
			if !l.live {
				continue
			}
			if l.headReady > ready {
				ready = l.headReady
			}
			if winner < 0 || keys.Compare(l.key, lanes[winner].key) < 0 {
				winner = i
			}
		}
		if winner < 0 {
			break
		}
		w := lanes[winner]
		res.Stats.PairsIn++

		_, cmpP, xferP, encP := e.cfg.stagePeriods(len(w.key), len(w.value))
		start := cmpClock
		if ready > start {
			start = ready
		}
		cmpClock = start + cmpP
		res.Stats.ComparerBusy += cmpP

		dropped := drop.drop(w.key)
		if dropped {
			res.Stats.PairsDropped++
		} else {
			// Key-Value Transfer then Encoder (§V-C: the Drop flag selects
			// the key stream and value stream at the same time).
			if t := cmpClock; t > xferClock {
				xferClock = t
			}
			xferClock += xferP
			res.Stats.TransferBusy += xferP
			if t := xferClock; t > encClock {
				encClock = t
			}
			encClock += encP
			res.Stats.EncoderBusy += encP
			flushCycles, err := out.add(w.key, w.value)
			if err != nil {
				return nil, err
			}
			encClock += flushCycles
			res.Stats.PairsOut++
		}
		if p.TraceWriter != nil && res.Stats.PairsIn <= traceLimit {
			//fcae:alloc-ok trace is off in production (TraceWriter nil) and bounded by traceLimit rows when on
			fmt.Fprintf(p.TraceWriter, "%d,%d,%d,%d,%.0f,%.0f,%.0f,%.0f,%.0f,%v\n",
				res.Stats.PairsIn, winner, len(w.key), len(w.value),
				ready, start, cmpClock, xferClock, encClock, dropped)
		}
		if err := e.advance(w, start); err != nil {
			return nil, err
		}
	}
	finalFlush, err := out.finish()
	if err != nil {
		return nil, err
	}
	encClock += finalFlush

	res.Outputs = out.tables
	for _, t := range res.Outputs {
		res.Stats.BytesOut += t.DataBytes(e.cfg.WOut) + t.IndexBytes()
	}
	res.Stats.Cycles = cmpClock
	if encClock > res.Stats.Cycles {
		res.Stats.Cycles = encClock
	}
	for _, l := range lanes {
		if l.busy > res.Stats.DecoderBusy {
			res.Stats.DecoderBusy = l.busy
		}
	}
	return res, nil
}

// advance decodes the lane's next pair, charging decoder cycles and block
// switch latencies. consumeTime is when the previous head left the FIFO
// (negative during the initial fill).
//
//fcae:cycle-accounting
func (e *Engine) advance(l *lane, consumeTime float64) error {
	if consumeTime >= 0 {
		l.pushConsume(consumeTime)
	}
	for {
		if l.itLive {
			l.it.Next()
			if l.it.Valid() {
				l.setPair(e.cfg)
				return nil
			}
			if err := l.it.Error(); err != nil {
				return err
			}
			l.itLive = false
		}
		// Need the next data block.
		if l.blocks == 0 {
			// Next table in this input, if any.
			if l.tableIdx+1 >= len(l.img.Tables) {
				l.live = false
				return nil
			}
			l.tableIdx++
			t := l.img.Tables[l.tableIdx]
			idx, err := l.img.IndexSlice(t)
			if err != nil {
				return err
			}
			l.index = indexStream{buf: idx}
			l.blocks = t.NumBlocks
			if l.blocks == 0 {
				continue
			}
		}
		entry, err := l.index.next()
		if err != nil {
			return err
		}
		l.blocks--
		raw, err := l.img.BlockSlice(entry)
		if err != nil {
			return err
		}
		ctype, payload := raw[0], raw[1:]
		var contents []byte
		switch sstable.Compression(ctype) {
		case sstable.NoCompression:
			contents = payload
		case sstable.SnappyCompression:
			contents, err = snappy.Decode(l.decomp[:0], payload)
			if err != nil {
				return fmt.Errorf("core: decoder lane: %w", err)
			}
			l.decomp = contents
		default:
			return fmt.Errorf("%w: unknown block compression %d", ErrLayout, ctype)
		}
		if l.it == nil {
			l.it, err = sstable.NewBlockIter(contents)
			if err != nil {
				return err
			}
		} else if err := l.it.Reset(contents); err != nil {
			return err
		}
		l.it.SeekToFirst()
		if !l.it.Valid() {
			continue // empty block: skip
		}
		l.itLive = true
		// Block switch: index fetch (hidden or serialized per §V-B) plus
		// the DRAM burst for the block itself.
		l.decClock += e.cfg.blockSwitchCycles()
		l.setPair(e.cfg)
		return nil
	}
}

// setPair captures the lane's current pair and charges its decode service,
// honoring the FIFO backpressure constraint. The block iterator reuses
// its buffers across Next, so the head pair is copied into lane-owned
// storage (this is also what the hardware FIFO does: the head registers
// hold bytes, not references).
//
//fcae:cycle-accounting
func (l *lane) setPair(cfg Config) {
	l.key = append(l.key[:0], l.it.Key()...)
	l.value = append(l.value[:0], l.it.Value()...)
	dec, _, _, _ := cfg.stagePeriods(len(l.key), len(l.value))
	if c := l.fifoConstraint(); c > l.decClock {
		l.decClock = c
	}
	l.decClock += dec
	l.busy += dec
	l.headReady = l.decClock
	l.live = true
}

// engineDropPolicy mirrors the software compactor's shadowing rules; this
// is the Validity Check module of §V-A.
type engineDropPolicy struct {
	smallestSnapshot uint64
	bottomLevel      bool
	curUser          []byte
	hasCur           bool
	hasPrev          bool
	lastSeqFor       uint64
}

func (d *engineDropPolicy) drop(ikey []byte) bool {
	user := keys.UserKey(ikey)
	seq, kind := keys.DecodeTrailer(ikey)
	if !d.hasCur || keys.CompareUser(user, d.curUser) != 0 {
		d.curUser = append(d.curUser[:0], user...)
		d.hasCur = true
		d.hasPrev = false
	}
	dropped := false
	switch {
	case d.hasPrev && d.lastSeqFor <= d.smallestSnapshot:
		dropped = true
	case kind == keys.KindDelete && seq <= d.smallestSnapshot && d.bottomLevel:
		dropped = true
	}
	d.hasPrev = true
	d.lastSeqFor = seq
	return dropped
}

// outputBuilder is the Encoder side: Data Block Encoder + Index Block
// Encoder + output buffer (§V-A).
type outputBuilder struct {
	cfg          Config
	p            Params
	bw           *sstable.BlockWriter
	cbuf         []byte
	fbuf         []byte // finished-block scratch, reused across flushes
	tables       []*OutputTableImage
	cur          *OutputTableImage
	curous       int64 // current table's accumulated block bytes
	last         []byte
	blockEntries int
	wantClose    bool // table is full; close at the next user-key boundary
}

func newOutputBuilder(cfg Config, p Params) *outputBuilder {
	return &outputBuilder{cfg: cfg, p: p, bw: sstable.NewBlockWriter(p.RestartInterval)}
}

// retain copies b into the arena's retained-output region when one is
// attached and has room; otherwise it heap-allocates the copy (the
// pre-arena behavior, also the overflow path once the region fills).
//
//fcae:cycle-accounting
func (o *outputBuilder) retain(b []byte) []byte {
	if dst, ok := o.p.Arena.takeOut(len(b)); ok {
		//fcae:alloc-ok arena-backed: takeOut pre-carved exactly len(b) capacity, append cannot grow
		return append(dst, b...)
	}
	//fcae:alloc-ok retained output must outlive the merge loop; the arena is absent or its output region is full
	return append([]byte(nil), b...)
}

// add encodes one pair, returning any extra encoder cycles spent flushing
// a finished block or table.
//
//fcae:cycle-accounting
func (o *outputBuilder) add(ikey, value []byte) (float64, error) {
	var cycles float64
	// A full table closes only at a user-key boundary, preserving the
	// one-file-per-level lookup invariant.
	if o.wantClose && keys.CompareUser(keys.UserKey(ikey), keys.UserKey(o.last)) != 0 {
		cycles += o.flushBlock()
		o.closeTable()
		cycles += blockFlushFixed // index block write-back
		o.wantClose = false
	}
	if o.cur == nil {
		//fcae:alloc-ok one table image per output table, not per pair; its bound bytes go through retain
		o.cur = &OutputTableImage{Smallest: o.retain(ikey)}
		o.curous = 0
	}
	o.bw.Add(ikey, value)
	o.blockEntries++
	o.last = append(o.last[:0], ikey...)
	if o.p.CollectFilterKeys {
		//fcae:alloc-ok filter keys are retained output handed to the host assembler; key bytes go through retain
		o.cur.FilterKeys = append(o.cur.FilterKeys, o.retain(keys.UserKey(ikey)))
	}
	o.cur.Entries++
	if o.bw.EstimatedSize() >= o.p.BlockSize {
		cycles += o.flushBlock()
		// Table threshold check (§V-A: when the accumulated size of data
		// blocks exceeds the threshold, the SSTable is completed).
		if o.curous >= o.p.TableBytes {
			o.wantClose = true
		}
	}
	return cycles, nil
}

// flushBlock finalizes the current data block into the output image.
func (o *outputBuilder) flushBlock() float64 {
	if o.bw.Empty() {
		return 0
	}
	// FinishInto reuses fbuf as the finished-block scratch, so contents
	// is NOT safe to retain directly: whichever encoding wins, the kept
	// payload goes through retain (arena region or heap copy).
	contents := o.bw.FinishInto(o.fbuf[:0])
	o.fbuf = contents
	ctype := byte(sstable.NoCompression)
	payload := contents
	if o.p.Compress {
		o.cbuf = snappy.Encode(o.cbuf[:0], contents)
		if len(o.cbuf) < len(contents)-len(contents)/8 {
			payload = o.cbuf
			ctype = byte(sstable.SnappyCompression)
		}
	}
	o.cur.Blocks = append(o.cur.Blocks, OutputBlock{
		CType:    ctype,
		Payload:  o.retain(payload),
		LastKey:  o.retain(o.last),
		RawBytes: len(contents),
		Entries:  o.blockEntries,
	})
	o.curous += int64(len(payload)) + 1
	o.blockEntries = 0
	return o.cfg.outputFlushCycles(len(payload))
}

func (o *outputBuilder) closeTable() {
	if o.cur == nil {
		return
	}
	o.cur.Largest = o.retain(o.last)
	o.tables = append(o.tables, o.cur)
	o.cur = nil
}

// finish flushes trailing state at end of stream.
//
//fcae:cycle-accounting
func (o *outputBuilder) finish() (float64, error) {
	var cycles float64
	if !o.bw.Empty() {
		cycles += o.flushBlock()
	}
	if o.cur != nil && len(o.cur.Blocks) > 0 {
		o.closeTable()
		cycles += blockFlushFixed
	}
	o.cur = nil
	return cycles, nil
}
