// Package core implements the FCAE compaction engine — the paper's primary
// contribution — as a functional simulator: it executes the exact merge the
// KCU1500 pipeline would (real SSTable bytes in, real SSTable blocks out,
// through the paper's device memory layouts) while accounting elapsed
// device cycles with the pipeline model of §V (Tables II/III) plus
// calibrated per-block overheads. The surrounding host integration
// (package lsm) treats it as a drop-in compaction executor.
package core

import (
	"errors"
	"fmt"
)

// Default hardware parameters (paper §VII-A).
const (
	// DefaultClockHz is the engine clock (200 MHz).
	DefaultClockHz = 200e6
	// DefaultDRAMBytes is the card's off-chip DRAM (16 GiB).
	DefaultDRAMBytes = 16 << 30
	// MaxAXIBytesPerCycle is the AXI limit of 512 bits per cycle (§V-D2).
	MaxAXIBytesPerCycle = 64
	// DefaultDRAMLatencyCycles is the off-chip DRAM read latency (§V-B:
	// "the read latency of DRAM is 7-8 cycles").
	DefaultDRAMLatencyCycles = 8
	// DefaultFIFODepth sizes each lane's decoded-stream FIFO in entries.
	DefaultFIFODepth = 32
	// DefaultArenaPerLane is the modeled staging-arena share per decoder
	// lane: each input run needs room for its serialized image, plus the
	// shared output region, carved from the card's DRAM.
	DefaultArenaPerLane = 16 << 20
	// MaxArenaBytes caps the modeled arena at a small fraction of the
	// card DRAM — the rest holds data at rest between jobs.
	MaxArenaBytes = DefaultDRAMBytes / 64
)

// Config describes one synthesized engine configuration. The triple
// (N, WIn, V) is what Table VII sweeps.
type Config struct {
	// N is the number of decoder lanes: the maximum sorted inputs merged
	// in hardware. Jobs with more runs fall back to software (§VI-A).
	N int
	// V is the value-lane width in bytes/cycle (§V-D1).
	V int
	// WIn is the DRAM read width for data blocks in bytes/cycle (§V-D2).
	WIn int
	// WOut is the DRAM write width for output data blocks.
	WOut int
	// ClockHz is the engine clock frequency.
	ClockHz float64

	// KeyValueSeparation enables the §V-C optimization (default on). With
	// it off, values traverse the Comparer path byte-serially — the basic
	// pipeline of Fig 2, kept for ablation.
	KeyValueSeparation bool
	// IndexDataSeparation enables the §V-B optimization (default on).
	// With it off, the decoder's read pointer switches between index and
	// data blocks (Algorithm 1), serializing index fetches with decode.
	IndexDataSeparation bool
	// DRAMLatencyCycles is the off-chip read latency.
	DRAMLatencyCycles int
	// FIFODepth is the per-lane key/value FIFO capacity in entries
	// (§V-C: FIFOs hold the decoded key and value streams). It bounds how
	// far a decoder can run ahead of the Comparer.
	FIFODepth int
	// StagingBytes sizes the channel's persistent device-memory arena
	// that input/output images are staged in. Zero selects the modeled
	// default (ArenaBytes); a negative value disables the arena entirely
	// (every job heap-allocates, the pre-arena behavior).
	StagingBytes int64
}

// DefaultConfig returns the 2-input configuration of §VII-B.
func DefaultConfig() Config {
	return Config{
		N: 2, V: 16, WIn: 64, WOut: 64,
		ClockHz:             DefaultClockHz,
		KeyValueSeparation:  true,
		IndexDataSeparation: true,
		DRAMLatencyCycles:   DefaultDRAMLatencyCycles,
		FIFODepth:           DefaultFIFODepth,
	}
}

// MultiInputConfig returns the 9-input configuration of §VII-C (W_in and V
// reduced to 8 so the design fits the chip; see Table VII).
func MultiInputConfig() Config {
	c := DefaultConfig()
	c.N, c.V, c.WIn = 9, 8, 8
	return c
}

// ErrConfig reports an invalid engine configuration.
var ErrConfig = errors.New("core: invalid engine configuration")

// Validate checks structural constraints and, via the resource model,
// whether the configuration fits the chip.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("%w: N=%d, need at least 2 inputs", ErrConfig, c.N)
	}
	if c.V < 1 || c.V > MaxAXIBytesPerCycle {
		return fmt.Errorf("%w: V=%d out of [1,%d]", ErrConfig, c.V, MaxAXIBytesPerCycle)
	}
	if c.WIn < c.V {
		return fmt.Errorf("%w: WIn=%d must be >= V=%d (the Stream Downsizer narrows, never widens)", ErrConfig, c.WIn, c.V)
	}
	if c.WIn > MaxAXIBytesPerCycle || c.WOut > MaxAXIBytesPerCycle {
		return fmt.Errorf("%w: AXI widths capped at %d bytes/cycle", ErrConfig, MaxAXIBytesPerCycle)
	}
	if c.WOut < 1 {
		return fmt.Errorf("%w: WOut=%d", ErrConfig, c.WOut)
	}
	if c.ClockHz <= 0 {
		return fmt.Errorf("%w: ClockHz=%v", ErrConfig, c.ClockHz)
	}
	return nil
}

// Fits reports whether the configuration's resource estimate stays within
// the chip (LUTs are the binding resource, Table VII).
func (c Config) Fits() bool {
	u := c.Resources()
	return u.LUT <= 100 && u.BRAM <= 100 && u.FF <= 100
}

// ArenaBytes resolves the channel's staging-arena size: StagingBytes when
// set (negative disables, returning 0), otherwise N lanes' worth of
// DefaultArenaPerLane capped at MaxArenaBytes.
func (c Config) ArenaBytes() int64 {
	if c.StagingBytes < 0 {
		return 0
	}
	if c.StagingBytes > 0 {
		return c.StagingBytes
	}
	n := c.N
	if n <= 0 {
		n = DefaultConfig().N
	}
	total := int64(n) * DefaultArenaPerLane
	if total > MaxArenaBytes {
		total = MaxArenaBytes
	}
	return total
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.N == 0 {
		c.N = d.N
	}
	if c.V == 0 {
		c.V = d.V
	}
	if c.WIn == 0 {
		c.WIn = d.WIn
	}
	if c.WOut == 0 {
		c.WOut = d.WOut
	}
	if c.ClockHz == 0 {
		c.ClockHz = d.ClockHz
	}
	if c.DRAMLatencyCycles == 0 {
		c.DRAMLatencyCycles = d.DRAMLatencyCycles
	}
	if c.FIFODepth == 0 {
		c.FIFODepth = d.FIFODepth
	}
	return c
}
