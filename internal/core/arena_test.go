package core

import (
	"bytes"
	"errors"
	"testing"

	"fcae/internal/compaction"
	"fcae/internal/sstable"
)

func TestArenaSizing(t *testing.T) {
	if a := NewArena(0); a != nil {
		t.Fatal("NewArena(0) must disable the arena")
	}
	if a := NewArena(-4096); a != nil {
		t.Fatal("NewArena(<0) must disable the arena")
	}
	a := NewArena(8192)
	if got := a.Cap(); got != 8192 {
		t.Fatalf("Cap = %d, want 8192", got)
	}
	// 1/8 index, 1/2 data, remainder output.
	if got := a.InputBudget(); got != 4096-4096/8 {
		t.Fatalf("InputBudget = %d, want %d", got, 4096-4096/8)
	}
	if got := a.InUse(); got != 0 {
		t.Fatalf("fresh arena InUse = %d, want 0", got)
	}
}

func TestNilArenaSafe(t *testing.T) {
	var a *Arena
	a.Reset() // must not panic
	if a.Cap() != 0 || a.InUse() != 0 || a.InputBudget() != 0 || a.HighWater() != 0 {
		t.Fatalf("nil arena reported non-zero sizes: cap=%d use=%d budget=%d hw=%d",
			a.Cap(), a.InUse(), a.InputBudget(), a.HighWater())
	}
	if _, ok := a.takeOut(1); ok {
		t.Fatal("nil arena handed out memory")
	}
}

// TestArenaHighWater proves the high-water mark tracks peak occupancy and
// survives Reset: it is the lifetime provisioning figure, not a per-job one.
func TestArenaHighWater(t *testing.T) {
	a := NewArena(8192)
	if got := a.HighWater(); got != 0 {
		t.Fatalf("fresh arena HighWater = %d, want 0", got)
	}
	a.commitStaging(100, 200)
	if got := a.HighWater(); got != 300 {
		t.Fatalf("after commitStaging(100,200): HighWater = %d, want 300", got)
	}
	if _, ok := a.takeOut(50); !ok {
		t.Fatal("takeOut(50) failed on a fresh region")
	}
	if got := a.HighWater(); got != 350 {
		t.Fatalf("after takeOut(50): HighWater = %d, want 350", got)
	}
	a.Reset()
	if got := a.InUse(); got != 0 {
		t.Fatalf("after Reset: InUse = %d, want 0", got)
	}
	if got := a.HighWater(); got != 350 {
		t.Fatalf("Reset must not rewind HighWater: got %d, want 350", got)
	}
	// A smaller next job must not lower the mark; a larger one raises it.
	a.commitStaging(10, 20)
	if got := a.HighWater(); got != 350 {
		t.Fatalf("smaller job lowered HighWater to %d, want 350", got)
	}
	a.commitStaging(400, 500)
	if got := a.HighWater(); got != 930 {
		t.Fatalf("larger job: HighWater = %d, want 930", got)
	}
}

func TestConfigArenaBytes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StagingBytes = 12345
	if got := cfg.ArenaBytes(); got != 12345 {
		t.Fatalf("explicit StagingBytes: ArenaBytes = %d, want 12345", got)
	}
	cfg.StagingBytes = -1
	if got := cfg.ArenaBytes(); got != 0 {
		t.Fatalf("negative StagingBytes: ArenaBytes = %d, want 0 (disabled)", got)
	}
	cfg.StagingBytes = 0
	want := int64(cfg.N) * DefaultArenaPerLane
	if want > MaxArenaBytes {
		want = MaxArenaBytes
	}
	if got := cfg.ArenaBytes(); got != want {
		t.Fatalf("modeled default: ArenaBytes = %d, want %d", got, want)
	}
}

func TestArenaTakeOutAndReset(t *testing.T) {
	a := NewArena(8192)
	outRegion := int(a.Cap()) - len(a.index) - len(a.data)
	dst, ok := a.takeOut(16)
	if !ok || len(dst) != 0 || cap(dst) != 16 {
		t.Fatalf("takeOut(16) = len %d cap %d ok %v, want empty slice with cap 16", len(dst), cap(dst), ok)
	}
	dst = append(dst, bytes.Repeat([]byte{0xAB}, 16)...)
	if got := a.InUse(); got != 16 {
		t.Fatalf("InUse = %d after takeOut(16), want 16", got)
	}
	// A second reservation must not alias the first.
	dst2, ok := a.takeOut(16)
	if !ok {
		t.Fatal("second takeOut failed")
	}
	dst2 = append(dst2, bytes.Repeat([]byte{0xCD}, 16)...)
	if dst[0] != 0xAB || dst2[0] != 0xCD {
		t.Fatal("takeOut reservations alias each other")
	}
	if _, ok := a.takeOut(outRegion); ok {
		t.Fatal("takeOut handed out more than the output region holds")
	}
	a.Reset()
	if got := a.InUse(); got != 0 {
		t.Fatalf("InUse = %d after Reset, want 0", got)
	}
	if _, ok := a.takeOut(outRegion); !ok {
		t.Fatal("full output region unavailable after Reset")
	}
}

func TestArenaBuilderExhaustion(t *testing.T) {
	a := NewArena(1024) // 512B data region
	b := NewInputBuilderArena(64, a)
	b.BeginTable()
	if err := b.AddBlock([]byte("k1"), 0, make([]byte, 1024)); err == nil {
		t.Fatal("AddBlock accepted a block larger than the data region")
	} else if !errors.Is(err, compaction.ErrArenaExhausted) {
		t.Fatalf("AddBlock error = %v, want ErrArenaExhausted", err)
	}
}

// TestArenaImageMatchesHeap proves arena staging is invisible in the image
// bytes: the same run serialized with and without an arena is identical.
func TestArenaImageMatchesHeap(t *testing.T) {
	opts := sstable.Options{Compression: sstable.SnappyCompression}
	run := []compaction.Table{buildTable(t, opts, genRun("key-", 500, 64, 100))}

	heap, err := BuildInputImage(run, 64, opts)
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena(1 << 20)
	staged, err := BuildInputImageArena(run, 64, opts, a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(heap.IndexMem, staged.IndexMem) {
		t.Fatal("arena-staged index memory differs from heap-built")
	}
	if !bytes.Equal(heap.DataMem, staged.DataMem) {
		t.Fatal("arena-staged data memory differs from heap-built")
	}
	if a.InUse() != int64(len(staged.IndexMem)+len(staged.DataMem)) {
		t.Fatalf("arena InUse = %d, want staged %d", a.InUse(), len(staged.IndexMem)+len(staged.DataMem))
	}
}

// TestExecutorArenaEquivalence proves an arena-backed executor produces
// byte-identical outputs to one with the arena disabled, across repeated
// jobs on the same channel (exercising Reset-and-reuse).
func TestExecutorArenaEquivalence(t *testing.T) {
	mkJob := func(seqBase uint64) *compaction.Job {
		opts := sstable.Options{Compression: sstable.SnappyCompression, FilterBitsPerKey: 10}
		runA := genRun("key-a", 400, 64, seqBase)
		runB := genRun("key-b", 300, 64, seqBase+1000)
		return defaultJob(
			[]compaction.Table{buildTable(t, opts, runA)},
			[]compaction.Table{buildTable(t, opts, runB)},
		)
	}

	withArena, err := NewExecutor(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if withArena.ArenaBytes() == 0 {
		t.Fatal("default config must enable the arena")
	}
	noCfg := DefaultConfig()
	noCfg.StagingBytes = -1
	without, err := NewExecutor(noCfg)
	if err != nil {
		t.Fatal(err)
	}
	if without.ArenaBytes() != 0 || without.ArenaInputBudget() != 0 {
		t.Fatal("StagingBytes < 0 must disable the arena")
	}

	for round := 0; round < 3; round++ {
		job := mkJob(uint64(100 * (round + 1)))
		envA, envB := newMemEnv(), newMemEnv()
		resA, err := withArena.Compact(job, envA)
		if err != nil {
			t.Fatalf("round %d arena compact: %v", round, err)
		}
		resB, err := without.Compact(job, envB)
		if err != nil {
			t.Fatalf("round %d heap compact: %v", round, err)
		}
		a, b := scanOutputs(t, envA, resA), scanOutputs(t, envB, resB)
		if len(a) != len(b) {
			t.Fatalf("round %d: arena %d entries, heap %d", round, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round %d entry %d differs: arena=%+v heap=%+v", round, i, a[i], b[i])
			}
		}
	}
	if hw, cap := withArena.ArenaHighWater(), withArena.ArenaBytes(); hw <= 0 || hw > cap {
		t.Fatalf("ArenaHighWater = %d after arena-backed jobs, want in (0, %d]", hw, cap)
	}
	if got := without.ArenaHighWater(); got != 0 {
		t.Fatalf("disabled arena ArenaHighWater = %d, want 0", got)
	}
}

// TestExecutorArenaExhausted proves a job too large for a deliberately
// tiny arena surfaces the sentinel the dispatcher routes on.
func TestExecutorArenaExhausted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StagingBytes = 2048 // 1KiB data region; the run below cannot fit
	x, err := NewExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := sstable.Options{Compression: sstable.SnappyCompression}
	job := defaultJob([]compaction.Table{buildTable(t, opts, genRun("key-", 500, 64, 100))})
	if _, err := x.Compact(job, newMemEnv()); !errors.Is(err, compaction.ErrArenaExhausted) {
		t.Fatalf("Compact = %v, want ErrArenaExhausted", err)
	}
}
