package core

import (
	"fcae/internal/model"
)

// Pipeline timing model (paper §V, Tables II and III). The closed-form
// stage periods below are the paper's analytical bounds; the calibration
// constants add the costs the analysis abstracts away (snappy codec lanes,
// FIFO refill, AXI burst setup), fitted so the simulated 2-input engine
// reproduces Table V within ~10%.
const (
	// decValueAlpha + decValueBeta/V is the effective decoder cycles per
	// value byte: the 1/V transfer term of Table III plus a per-byte
	// decompression cost independent of lane width.
	decValueAlpha = 0.121
	decValueBeta  = 2.24
	// decPerPairFixed covers per-entry varint parsing and FIFO handshakes
	// in the Data Block Decoder.
	decPerPairFixed = 39.5
	// cmpPerSelectFixed covers the validity check and mux settling added
	// to the compare tree's (2+ceil(log2 N))*Lkey period.
	cmpPerSelectFixed = 20.0
	// encPerPairFixed covers the Data Block Encoder's restart bookkeeping.
	encPerPairFixed = 4.0
	// indexEntryCycles is the Index Block Decoder/Encoder cost per entry
	// (low duty cycle; only visible when IndexDataSeparation is off).
	indexEntryCycles = 24.0
	// blockFlushFixed is charged when an output data block closes: index
	// entry append plus AXI write burst setup.
	blockFlushFixed = 16.0
)

// stagePeriods returns the per-pair service cycles of each pipeline stage
// for an entry with the given key and value lengths (paper Table III; with
// KeyValueSeparation off, Table II's basic pipeline where the value rides
// through every stage byte-serially).
func (c Config) stagePeriods(keyLen, valueLen int) (dec, cmp, xfer, enc float64) {
	lk := float64(keyLen)
	lv := float64(valueLen)
	if c.KeyValueSeparation {
		dec = lk + lv*(decValueAlpha+decValueBeta/float64(c.V)) + decPerPairFixed
		cmp = float64(2+model.CeilLog2(c.N))*lk + cmpPerSelectFixed
		xfer = lk
		if v := lv / float64(c.V); v > xfer {
			xfer = v
		}
		enc = lk + lv/float64(c.WOut) + encPerPairFixed
		return dec, cmp, xfer, enc
	}
	// Basic pipeline (Fig 2): key and value move together at one byte per
	// cycle through decode, compare selection and transfer.
	dec = lk + lv*(1+decValueAlpha) + decPerPairFixed
	cmp = float64(2+model.CeilLog2(c.N))*lk + cmpPerSelectFixed
	xfer = lk + lv
	enc = lk + lv + encPerPairFixed
	return dec, cmp, xfer, enc
}

// blockSwitchCycles is charged by a Data Block Decoder when it crosses
// into the next data block. With IndexDataSeparation the index fetch is
// pipelined and only the DRAM burst latency shows; without it the read
// pointer switches to the index block and back (Algorithm 1), serializing
// two DRAM round trips plus the index entry decode.
//
//fcae:cycle-accounting
func (c Config) blockSwitchCycles() float64 {
	if c.IndexDataSeparation {
		return float64(c.DRAMLatencyCycles)
	}
	return 2*float64(c.DRAMLatencyCycles) + indexEntryCycles
}

// outputFlushCycles is charged when an output data block of the given
// compressed size is flushed to DRAM through the Stream Upsizer.
func (c Config) outputFlushCycles(blockBytes int) float64 {
	// The upsizer drains at WOut bytes/cycle but overlaps with encoding;
	// only the burst setup and the index entry append remain exposed.
	_ = blockBytes
	return blockFlushFixed
}

// BottleneckPeriod returns the steady-state cycles per pair for uniform
// entries of the given sizes: the max stage period (paper §V-D1, "the
// module with the longest cycles determines the average execution time in
// a pipeline system"). Exposed for tests and the analytic LSM simulator.
func (c Config) BottleneckPeriod(keyLen, valueLen int) float64 {
	dec, cmp, xfer, enc := c.stagePeriods(keyLen, valueLen)
	m := dec
	for _, v := range []float64{cmp, xfer, enc} {
		if v > m {
			m = v
		}
	}
	return m
}

// BottleneckStage names the limiting stage for uniform entries, matching
// the paper's crossover analysis (L_key vs L_value/((1+ceil(log2 N))*V)).
func (c Config) BottleneckStage(keyLen, valueLen int) string {
	dec, cmp, xfer, enc := c.stagePeriods(keyLen, valueLen)
	best, name := dec, "decoder"
	if cmp > best {
		best, name = cmp, "comparer"
	}
	if xfer > best {
		best, name = xfer, "transfer"
	}
	if enc > best {
		name = "encoder"
	}
	return name
}

// SpeedMBps returns the modeled steady-state compaction speed in MB/s for
// uniform entries, counting keyLen+valueLen input bytes per pair. Used by
// the analytic simulator; the engine itself reports measured cycles.
//
//fcae:cycle-accounting
func (c Config) SpeedMBps(keyLen, valueLen int) float64 {
	period := c.BottleneckPeriod(keyLen, valueLen)
	bytesPerPair := float64(keyLen + valueLen)
	return bytesPerPair * c.ClockHz / period / 1e6
}
