package core

import (
	"math"
	"testing"
	"testing/quick"

	"fcae/internal/model"
)

// TestBottleneckCrossover verifies the paper's §V-D1 analysis: the Data
// Block Decoder becomes the bottleneck once
// L_key < L_value / ((1 + ceil(log2 N)) * V), otherwise the Comparer is.
// The calibrated constants shift the exact crossover, so the test checks
// the asymptotics rather than the precise boundary.
func TestBottleneckCrossover(t *testing.T) {
	cfg := DefaultConfig() // N=2, V=16
	keyLen := 24
	if got := cfg.BottleneckStage(keyLen, 16); got != "comparer" {
		t.Fatalf("tiny values should be comparer-bound, got %s", got)
	}
	if got := cfg.BottleneckStage(keyLen, 4096); got != "decoder" {
		t.Fatalf("huge values should be decoder-bound, got %s", got)
	}
}

// TestComparerPeriodFormula checks the Table II period (2+ceil(log2 N)) *
// Lkey plus the calibrated fixed offset.
func TestComparerPeriodFormula(t *testing.T) {
	for _, n := range []int{2, 4, 9} {
		cfg := DefaultConfig()
		cfg.N = n
		_, cmp, _, _ := cfg.stagePeriods(24, 64)
		want := float64(2+model.CeilLog2(n))*24 + cmpPerSelectFixed
		if math.Abs(cmp-want) > 1e-9 {
			t.Fatalf("N=%d comparer period %.1f, want %.1f", n, cmp, want)
		}
	}
}

// TestSpeedMatchesTableVShape checks the analytic speed model against the
// paper's Table V FCAE cells within 25%.
func TestSpeedMatchesTableVShape(t *testing.T) {
	paper := map[int]map[int]float64{
		8:  {64: 178.5, 512: 446.9, 2048: 506.3},
		16: {64: 164.5, 512: 627.9, 2048: 709.0},
		64: {64: 175.8, 512: 745.4, 2048: 1205.6},
	}
	for v, cells := range paper {
		cfg := DefaultConfig()
		cfg.V = v
		for lv, want := range cells {
			got := cfg.SpeedMBps(24, lv)
			if got < want*0.75 || got > want*1.3 {
				t.Errorf("V=%d Lv=%d: modeled %.0f MB/s, paper %.0f", v, lv, got, want)
			}
		}
	}
}

// TestSpeedGrowsWithV: wider value lanes never slow the engine.
func TestSpeedGrowsWithV(t *testing.T) {
	f := func(lvRaw uint16) bool {
		lv := int(lvRaw%4096) + 1
		prev := 0.0
		for _, v := range []int{8, 16, 32, 64} {
			cfg := DefaultConfig()
			cfg.V = v
			s := cfg.SpeedMBps(24, lv)
			if s < prev {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSpeedFallsWithKeyLength mirrors Fig 15a's mechanism: longer keys
// slow every stage.
func TestSpeedFallsWithKeyLength(t *testing.T) {
	cfg := MultiInputConfig()
	prev := 0.0
	for _, kl := range []int{16, 32, 64, 128, 256} {
		period := cfg.BottleneckPeriod(kl+8, 128)
		if period <= prev {
			t.Fatalf("period must grow with key length at %d: %.1f <= %.1f", kl, period, prev)
		}
		prev = period
	}
}

// TestNineInputSlowerAtShortValues mirrors Fig 12: at short values the
// 9-input engine is comparer-bound and slower than the 2-input one; at
// long values both are decoder-bound and converge.
func TestNineInputSlowerAtShortValues(t *testing.T) {
	two := DefaultConfig()
	two.V = 8
	nine := MultiInputConfig()
	shortRatio := nine.SpeedMBps(24, 64) / two.SpeedMBps(24, 64)
	longRatio := nine.SpeedMBps(24, 2048) / two.SpeedMBps(24, 2048)
	if shortRatio >= 0.9 {
		t.Fatalf("9-input should be clearly slower at short values: ratio %.2f", shortRatio)
	}
	if longRatio < 0.95 {
		t.Fatalf("9-input should converge at long values: ratio %.2f", longRatio)
	}
}

// TestBasicPipelineSlower: the Fig 2 basic pipeline (no key-value
// separation) must be slower for any non-trivial value length.
func TestBasicPipelineSlower(t *testing.T) {
	f := func(lvRaw uint16) bool {
		lv := int(lvRaw%4096) + 32
		on := DefaultConfig()
		off := DefaultConfig()
		off.KeyValueSeparation = false
		return off.BottleneckPeriod(24, lv) > on.BottleneckPeriod(24, lv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelTimeAndSpeedConsistent(t *testing.T) {
	s := Stats{Cycles: 200e6, BytesIn: 100 << 20} // one second of work
	if got := s.KernelTime(200e6).Seconds(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("KernelTime = %v", got)
	}
	if got := s.SpeedMBps(200e6); math.Abs(got-float64(100<<20)/1e6) > 1e-6 {
		t.Fatalf("SpeedMBps = %v", got)
	}
}
