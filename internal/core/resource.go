package core

import "fcae/internal/model"

// Resource model (paper Table VII). Utilization of the KCU1500 is
// estimated from the configuration with linear component costs fitted
// against the paper's six synthesized configurations:
//
//	N  WIn  V  | BRAM  FF   LUT
//	2  64  16  | 18%   10%  72%
//	2  64   8  | 17%    9%  63%
//	9  64   8  | 35%   27%  206%   (does not fit)
//	9  16  16  | 30%   18%  125%   (does not fit)
//	9  16   8  | 26%   16%  103%   (does not fit)
//	9   8   8  | 25%   14%  84%
//
// Component interpretation: the shared base covers the AXI/PCIe shell and
// the Encoder; each decoder lane costs BRAM for its FIFOs (scaling with
// WIn bursts and V-wide key/value paths), FF for stream registers, and LUT
// dominated by the Stream Downsizer (the paper notes "the Stream Downsizer
// module on FPGA consumes considerable LUT resource"); the Comparer tree
// adds LUT per level of its log2(N)-deep compare network.
const (
	bramBase, bramPerLane, bramPerWIn, bramPerV = 11.86, 0.861, 0.0198, 0.055
	ffBase, ffPerLane, ffPerWIn, ffPerV         = 3.91, 0.695, 0.02546, 0.0278
	lutBase, lutPerLane, lutPerWIn, lutPerV     = 24.7, 0.386, 0.2384, 0.40
	lutPerCompareLevel                          = 0.30
)

// Utilization is a chip resource estimate in percent of the KCU1500.
type Utilization struct {
	BRAM float64
	FF   float64
	LUT  float64
}

// vEffective saturates the value-lane width cost above 16 bytes/cycle:
// wider lanes reuse the existing AXI datapath, so the incremental LUT/FF
// cost per byte drops past the 128-bit boundary. (The paper synthesized
// and measured V=64 at N=2 for Table V, so that configuration must fit;
// the linear fit from Table VII's V∈{8,16} points alone would not.)
func vEffective(v float64) float64 {
	if v <= 16 {
		return v
	}
	return 16 + 0.35*(v-16)
}

// Resources estimates chip utilization for the configuration.
func (c Config) Resources() Utilization {
	c = c.withDefaults()
	n := float64(c.N)
	win := float64(c.WIn)
	v := vEffective(float64(c.V))
	return Utilization{
		BRAM: bramBase + n*(bramPerLane+bramPerWIn*win+bramPerV*v),
		FF:   ffBase + n*(ffPerLane+ffPerWIn*win+ffPerV*v),
		LUT:  lutBase + n*(lutPerLane+lutPerWIn*win+lutPerV*v) + lutPerCompareLevel*n*float64(model.CeilLog2(c.N)),
	}
}

// MaxFittingV returns the widest value lane V (power of two, <= WIn) for
// which the configuration fits the chip, or 0 if none does. Used by the
// host to auto-tune a configuration, mirroring how §VII-C settles on
// WIn=8, V=8 for the 9-input engine.
func (c Config) MaxFittingV() int {
	for v := c.WIn; v >= 1; v /= 2 {
		t := c
		t.V = v
		if t.Fits() {
			return v
		}
	}
	return 0
}
