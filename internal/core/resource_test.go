package core

import (
	"math"
	"testing"
)

// TestResourcesMatchTableVII checks the calibrated resource model against
// the paper's six synthesized configurations.
func TestResourcesMatchTableVII(t *testing.T) {
	rows := []struct {
		n, win, v     int
		bram, ff, lut float64
	}{
		{2, 64, 16, 18, 10, 72},
		{2, 64, 8, 17, 9, 63},
		{9, 64, 8, 35, 27, 206},
		{9, 16, 16, 30, 18, 125},
		{9, 16, 8, 26, 16, 103},
		{9, 8, 8, 25, 14, 84},
	}
	for _, row := range rows {
		cfg := Config{N: row.n, WIn: row.win, WOut: 64, V: row.v}
		u := cfg.Resources()
		check := func(name string, got, want, tol float64) {
			if math.Abs(got-want) > tol {
				t.Errorf("N=%d WIn=%d V=%d: %s = %.1f, paper %.0f", row.n, row.win, row.v, name, got, want)
			}
		}
		check("BRAM", u.BRAM, row.bram, 2)
		check("FF", u.FF, row.ff, 2)
		check("LUT", u.LUT, row.lut, 7)
	}
}

// TestFitsMatchesPaper: only the 2-input configs and the 9-input WIn=8
// config fit the chip.
func TestFitsMatchesPaper(t *testing.T) {
	fits := []Config{
		{N: 2, WIn: 64, WOut: 64, V: 16},
		{N: 2, WIn: 64, WOut: 64, V: 8},
		{N: 9, WIn: 8, WOut: 64, V: 8},
	}
	overflows := []Config{
		{N: 9, WIn: 64, WOut: 64, V: 8},
		{N: 9, WIn: 16, WOut: 64, V: 16},
		{N: 9, WIn: 16, WOut: 64, V: 8},
	}
	for _, c := range fits {
		if !c.Fits() {
			t.Errorf("config %+v should fit (paper Table VII)", c)
		}
	}
	for _, c := range overflows {
		if c.Fits() {
			t.Errorf("config %+v should overflow the chip", c)
		}
	}
}

func TestResourcesMonotonicInN(t *testing.T) {
	prev := 0.0
	for n := 2; n <= 16; n++ {
		u := Config{N: n, WIn: 8, WOut: 64, V: 8}.Resources()
		if u.LUT <= prev {
			t.Fatalf("LUT not monotonic at N=%d", n)
		}
		prev = u.LUT
	}
}

func TestMaxFittingV(t *testing.T) {
	// The paper settles on WIn=8, V=8 for N=9; with WIn=8 the widest
	// fitting V is 8.
	c := Config{N: 9, WIn: 8, WOut: 64}
	if v := c.MaxFittingV(); v != 8 {
		t.Fatalf("MaxFittingV = %d, want 8", v)
	}
	// At WIn=64 no V fits for N=9.
	c = Config{N: 9, WIn: 64, WOut: 64}
	if v := c.MaxFittingV(); v != 0 {
		t.Fatalf("MaxFittingV = %d, want 0 (nothing fits)", v)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{N: 1, V: 8, WIn: 8, WOut: 8, ClockHz: 1},
		{N: 2, V: 0, WIn: 8, WOut: 8, ClockHz: 1},
		{N: 2, V: 16, WIn: 8, WOut: 8, ClockHz: 1},  // V > WIn
		{N: 2, V: 8, WIn: 128, WOut: 8, ClockHz: 1}, // WIn > AXI max
		{N: 2, V: 8, WIn: 8, WOut: 0, ClockHz: 1},   // WOut < 1
		{N: 2, V: 8, WIn: 8, WOut: 8, ClockHz: 0},   // no clock
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestTableVConfigurationsFit(t *testing.T) {
	// The paper measured Table V with V up to 64 at N=2, so those
	// configurations must fit the chip.
	for _, v := range []int{8, 16, 32, 64} {
		cfg := Config{N: 2, WIn: 64, WOut: 64, V: v}
		if !cfg.Fits() {
			t.Errorf("N=2 V=%d must fit (Table V measured it): %+v", v, cfg.Resources())
		}
	}
}
