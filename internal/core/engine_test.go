package core

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"testing"

	"fcae/internal/compaction"
	"fcae/internal/keys"
	"fcae/internal/sstable"
)

// memReaderAt adapts a byte slice for table input.
type memReaderAt []byte

func (m memReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m)) {
		return 0, fmt.Errorf("read past end")
	}
	n := copy(p, m[off:])
	if n < len(p) {
		return n, fmt.Errorf("short read")
	}
	return n, nil
}

// memEnv implements compaction.Env, collecting outputs in memory.
type memEnv struct {
	next  uint64
	files map[uint64]*bytes.Buffer
	order []uint64
}

func newMemEnv() *memEnv { return &memEnv{next: 100, files: map[uint64]*bytes.Buffer{}} }

type bufCloser struct{ *bytes.Buffer }

func (bufCloser) Close() error { return nil }

func (e *memEnv) NewOutput() (uint64, io.WriteCloser, error) {
	num := e.next
	e.next++
	buf := &bytes.Buffer{}
	e.files[num] = buf
	e.order = append(e.order, num)
	return num, bufCloser{buf}, nil
}

type entry struct {
	user  string
	seq   uint64
	kind  keys.Kind
	value string
}

// buildTable renders entries (must be sorted by internal key) into a table.
func buildTable(t *testing.T, opts sstable.Options, entries []entry) compaction.Table {
	t.Helper()
	var buf bytes.Buffer
	w := sstable.NewWriter(&buf, opts)
	for _, e := range entries {
		ik := keys.MakeInternal(nil, []byte(e.user), e.seq, e.kind)
		if err := w.Add(ik, []byte(e.value)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return compaction.Table{Num: 1, Size: int64(buf.Len()), Data: memReaderAt(buf.Bytes())}
}

// scanOutputs reads every output table in creation order and returns the
// concatenated entries.
func scanOutputs(t *testing.T, e *memEnv, res *compaction.Result) []entry {
	t.Helper()
	var out []entry
	for _, ot := range res.Outputs {
		buf := e.files[ot.Num]
		r, err := sstable.NewReader(memReaderAt(buf.Bytes()), int64(buf.Len()), sstable.Options{}, nil, ot.Num)
		if err != nil {
			t.Fatalf("open output %d: %v", ot.Num, err)
		}
		it := r.NewIterator()
		for it.SeekToFirst(); it.Valid(); it.Next() {
			seq, kind := keys.DecodeTrailer(it.Key())
			out = append(out, entry{
				user:  string(keys.UserKey(it.Key())),
				seq:   seq,
				kind:  kind,
				value: string(it.Value()),
			})
		}
		if err := it.Error(); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// genRun produces n sorted unique-keyed entries with the given prefix.
func genRun(prefix string, n, valueLen int, seqBase uint64) []entry {
	out := make([]entry, n)
	for i := range out {
		out[i] = entry{
			user:  fmt.Sprintf("%s%08d", prefix, i*3),
			seq:   seqBase + uint64(i),
			kind:  keys.KindSet,
			value: fmt.Sprintf("%0*d", valueLen, i),
		}
	}
	return out
}

func defaultJob(runs ...[]compaction.Table) *compaction.Job {
	return &compaction.Job{
		Runs:             runs,
		SmallestSnapshot: keys.MaxSeq,
		BottomLevel:      true,
		TableOpts:        sstable.Options{Compression: sstable.SnappyCompression, FilterBitsPerKey: 10},
		MaxOutputBytes:   2 << 20,
	}
}

func TestEngineMatchesCPUExecutor(t *testing.T) {
	opts := sstable.Options{Compression: sstable.SnappyCompression, FilterBitsPerKey: 10}
	// Two interleaved runs with overlapping key space and some shadowing.
	runA := genRun("key-a", 600, 64, 1000)
	runB := genRun("key-a", 400, 64, 5000) // same prefix: overlaps and shadows
	for i := range runB {
		runB[i].user = fmt.Sprintf("key-a%08d", i*5)
	}
	tA := buildTable(t, opts, runA)
	tB := buildTable(t, opts, runB)

	job := defaultJob([]compaction.Table{tA}, []compaction.Table{tB})

	cpuEnv := newMemEnv()
	cpuRes, err := compaction.CPU{}.Compact(job, cpuEnv)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := NewExecutor(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fpgaEnv := newMemEnv()
	fpgaRes, err := fx.Compact(job, fpgaEnv)
	if err != nil {
		t.Fatal(err)
	}

	cpuEntries := scanOutputs(t, cpuEnv, cpuRes)
	fpgaEntries := scanOutputs(t, fpgaEnv, fpgaRes)
	if len(cpuEntries) != len(fpgaEntries) {
		t.Fatalf("CPU produced %d entries, FCAE %d", len(cpuEntries), len(fpgaEntries))
	}
	for i := range cpuEntries {
		if cpuEntries[i] != fpgaEntries[i] {
			t.Fatalf("entry %d differs: cpu=%+v fcae=%+v", i, cpuEntries[i], fpgaEntries[i])
		}
	}
	if fpgaRes.Stats.PairsIn != cpuRes.Stats.PairsIn ||
		fpgaRes.Stats.PairsOut != cpuRes.Stats.PairsOut ||
		fpgaRes.Stats.PairsDropped != cpuRes.Stats.PairsDropped {
		t.Fatalf("stats diverge: cpu=%+v fcae=%+v", cpuRes.Stats, fpgaRes.Stats)
	}
	if fpgaRes.Stats.KernelTime <= 0 || fpgaRes.Stats.TransferTime <= 0 {
		t.Fatal("FCAE must report modeled kernel and transfer times")
	}
}

func TestEngineDropsShadowedAndDeleted(t *testing.T) {
	opts := sstable.Options{}
	newRun := []entry{
		{"a", 10, keys.KindSet, "new-a"},
		{"b", 11, keys.KindDelete, ""},
	}
	oldRun := []entry{
		{"a", 2, keys.KindSet, "old-a"},
		{"b", 3, keys.KindSet, "old-b"},
		{"c", 4, keys.KindSet, "old-c"},
	}
	job := defaultJob([]compaction.Table{buildTable(t, opts, newRun)}, []compaction.Table{buildTable(t, opts, oldRun)})
	job.TableOpts = opts

	fx, err := NewExecutor(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	env := newMemEnv()
	res, err := fx.Compact(job, env)
	if err != nil {
		t.Fatal(err)
	}
	got := scanOutputs(t, env, res)
	want := []entry{{"a", 10, keys.KindSet, "new-a"}, {"c", 4, keys.KindSet, "old-c"}}
	if len(got) != len(want) {
		t.Fatalf("got %d entries %v, want %v", len(got), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if res.Stats.PairsDropped != 3 {
		t.Fatalf("PairsDropped = %d, want 3 (old-a, delete-b, old-b)", res.Stats.PairsDropped)
	}
}

func TestEngineKeepsEntriesAboveSnapshot(t *testing.T) {
	opts := sstable.Options{}
	run := []entry{
		{"k", 20, keys.KindSet, "v20"},
		{"k", 10, keys.KindSet, "v10"},
		{"k", 3, keys.KindSet, "v3"},
	}
	job := defaultJob([]compaction.Table{buildTable(t, opts, run)}, nil)
	job.Runs = job.Runs[:1]
	job.TableOpts = opts
	job.SmallestSnapshot = 10 // a snapshot at seq 10 still needs v10

	fx, _ := NewExecutor(DefaultConfig())
	env := newMemEnv()
	res, err := fx.Compact(job, env)
	if err != nil {
		t.Fatal(err)
	}
	got := scanOutputs(t, env, res)
	if len(got) != 2 || got[0].seq != 20 || got[1].seq != 10 {
		t.Fatalf("snapshot merge kept %v", got)
	}
	_ = res
}

func TestEngineRejectsTooManyInputs(t *testing.T) {
	opts := sstable.Options{}
	var runs [][]compaction.Table
	for i := 0; i < 3; i++ {
		runs = append(runs, []compaction.Table{buildTable(t, opts, genRun(fmt.Sprintf("r%d", i), 5, 8, uint64(i*100)))})
	}
	job := defaultJob(runs...)
	fx, _ := NewExecutor(DefaultConfig()) // N=2
	if _, err := fx.Compact(job, newMemEnv()); err == nil {
		t.Fatal("3-run job accepted by 2-input engine")
	}
}

func TestEngineMultiTableRunConcatenation(t *testing.T) {
	// A run of two disjoint tables must behave as one concatenated input
	// (paper §IV step 2).
	opts := sstable.Options{}
	t1 := buildTable(t, opts, genRun("a", 100, 16, 1))
	t2 := buildTable(t, opts, genRun("b", 100, 16, 200))
	job := defaultJob([]compaction.Table{t1, t2}, []compaction.Table{buildTable(t, opts, genRun("ab", 50, 16, 500))})
	job.TableOpts = opts

	fx, _ := NewExecutor(DefaultConfig())
	env := newMemEnv()
	res, err := fx.Compact(job, env)
	if err != nil {
		t.Fatal(err)
	}
	got := scanOutputs(t, env, res)
	if len(got) != 250 {
		t.Fatalf("merged %d entries, want 250", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].user < got[j].user }) {
		t.Fatal("output not sorted")
	}
}

func TestEngineSplitsOutputTables(t *testing.T) {
	opts := sstable.Options{}
	job := defaultJob([]compaction.Table{buildTable(t, opts, genRun("k", 3000, 256, 1))})
	job.TableOpts = opts
	job.MaxOutputBytes = 64 << 10 // force multiple outputs

	fx, _ := NewExecutor(DefaultConfig())
	env := newMemEnv()
	res, err := fx.Compact(job, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) < 5 {
		t.Fatalf("expected several output tables, got %d", len(res.Outputs))
	}
	// Outputs must be disjoint and ascending.
	for i := 1; i < len(res.Outputs); i++ {
		prev, cur := res.Outputs[i-1], res.Outputs[i]
		if keys.Compare(prev.Largest, cur.Smallest) >= 0 {
			t.Fatalf("output %d overlaps previous", i)
		}
	}
	if got := scanOutputs(t, env, res); len(got) != 3000 {
		t.Fatalf("outputs hold %d entries, want 3000", len(got))
	}
}

func TestEngineCyclesMatchBottleneckModel(t *testing.T) {
	// For uniform entries the measured cycles/pair must stay within ~35%
	// of the analytic bottleneck period (pipeline fill, block switches and
	// flush overheads account for the slack).
	opts := sstable.Options{Compression: sstable.SnappyCompression}
	const n, valueLen = 4000, 128
	run := genRun("k", n, valueLen, 1)
	job := defaultJob([]compaction.Table{buildTable(t, opts, run)}, []compaction.Table{buildTable(t, opts, genRun("q", n, valueLen, 50000))})

	cfg := DefaultConfig()
	eng, _ := NewEngine(cfg)
	var images []*InputImage
	for _, r := range job.Runs {
		img, err := BuildInputImage(r, cfg.WIn, job.TableOpts)
		if err != nil {
			t.Fatal(err)
		}
		images = append(images, img)
	}
	res, err := eng.Run(images, Params{Compress: true, SmallestSnapshot: keys.MaxSeq, BottomLevel: true})
	if err != nil {
		t.Fatal(err)
	}
	keyLen := len("k00000000") + keys.TrailerSize
	perPair := res.Stats.Cycles / float64(res.Stats.PairsIn)
	bottleneck := cfg.BottleneckPeriod(keyLen, valueLen)
	if perPair < bottleneck*0.95 {
		t.Fatalf("cycles/pair %.1f below analytic bound %.1f", perPair, bottleneck)
	}
	if perPair > bottleneck*1.35 {
		t.Fatalf("cycles/pair %.1f too far above analytic bound %.1f", perPair, bottleneck)
	}
}

func TestKeyValueSeparationAblation(t *testing.T) {
	// With long values, disabling key-value separation (§V-C) must slow
	// the engine substantially: values then ride through the Comparer.
	keyLen := 24
	for _, lv := range []int{512, 2048} {
		on := DefaultConfig()
		off := DefaultConfig()
		off.KeyValueSeparation = false
		if on.BottleneckPeriod(keyLen, lv) >= off.BottleneckPeriod(keyLen, lv) {
			t.Fatalf("Lvalue=%d: separation did not reduce the bottleneck", lv)
		}
		ratio := off.BottleneckPeriod(keyLen, lv) / on.BottleneckPeriod(keyLen, lv)
		if ratio < 2 {
			t.Fatalf("Lvalue=%d: expected >2x benefit from key-value separation, got %.2fx", lv, ratio)
		}
	}
}

func TestIndexSeparationAblation(t *testing.T) {
	on := DefaultConfig()
	off := DefaultConfig()
	off.IndexDataSeparation = false
	if on.blockSwitchCycles() >= off.blockSwitchCycles() {
		t.Fatal("index/data separation must hide index fetch latency")
	}
}

func TestEngineEmptyInput(t *testing.T) {
	eng, _ := NewEngine(DefaultConfig())
	res, err := eng.Run(nil, Params{})
	if err != nil || len(res.Outputs) != 0 {
		t.Fatalf("empty run: %v, %d outputs", err, len(res.Outputs))
	}
}

func TestEngineRandomizedEquivalence(t *testing.T) {
	// Property: for random overlapping runs, FCAE output == CPU output.
	rng := rand.New(rand.NewSource(42))
	opts := sstable.Options{Compression: sstable.SnappyCompression}
	for trial := 0; trial < 5; trial++ {
		nRuns := 2 + rng.Intn(7) // up to 9 inputs
		var runs [][]compaction.Table
		seq := uint64(1)
		for r := 0; r < nRuns; r++ {
			n := 50 + rng.Intn(300)
			es := make([]entry, 0, n)
			used := map[string]bool{}
			for i := 0; i < n; i++ {
				u := fmt.Sprintf("key%06d", rng.Intn(2000))
				if used[u] {
					continue
				}
				used[u] = true
				kind := keys.KindSet
				if rng.Intn(5) == 0 {
					kind = keys.KindDelete
				}
				es = append(es, entry{u, seq, kind, fmt.Sprintf("v%d", rng.Intn(1000))})
				seq++
			}
			sort.Slice(es, func(i, j int) bool { return es[i].user < es[j].user })
			runs = append(runs, []compaction.Table{buildTable(t, opts, es)})
		}
		job := defaultJob(runs...)
		job.BottomLevel = rng.Intn(2) == 0

		cpuEnv := newMemEnv()
		cpuRes, err := compaction.CPU{}.Compact(job, cpuEnv)
		if err != nil {
			t.Fatal(err)
		}
		fx, _ := NewExecutor(MultiInputConfig())
		fEnv := newMemEnv()
		fRes, err := fx.Compact(job, fEnv)
		if err != nil {
			t.Fatal(err)
		}
		c, f := scanOutputs(t, cpuEnv, cpuRes), scanOutputs(t, fEnv, fRes)
		if len(c) != len(f) {
			t.Fatalf("trial %d: cpu %d entries, fcae %d", trial, len(c), len(f))
		}
		for i := range c {
			if c[i] != f[i] {
				t.Fatalf("trial %d entry %d: %+v vs %+v", trial, i, c[i], f[i])
			}
		}
	}
}

func TestEngineRejectsCorruptDeviceImage(t *testing.T) {
	opts := sstable.Options{Compression: sstable.SnappyCompression}
	table := buildTable(t, opts, genRun("k", 500, 64, 1))
	img, err := BuildInputImage([]compaction.Table{table}, 64, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng, _ := NewEngine(DefaultConfig())

	// Corrupt a compressed block payload: snappy decode must fail loudly.
	corrupted := *img
	corrupted.DataMem = append([]byte(nil), img.DataMem...)
	entries, err := corrupted.DecodeIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	off := entries[0].Offset + 3
	corrupted.DataMem[off] ^= 0xff
	if _, err := eng.Run([]*InputImage{&corrupted}, Params{}); err == nil {
		t.Fatal("corrupted block payload accepted")
	}

	// Truncate the index stream: layout error.
	truncated := *img
	truncated.Tables = append([]TableDesc(nil), img.Tables...)
	truncated.Tables[0].IndexLen = 2
	truncated.Tables[0].NumBlocks = 3
	if _, err := eng.Run([]*InputImage{&truncated}, Params{}); err == nil {
		t.Fatal("truncated index stream accepted")
	}

	// Out-of-range block reference.
	oob := *img
	oob.IndexMem = appendIndexEntry(nil, IndexEntry{LastKey: []byte("x"), Offset: 1 << 40, Size: 64})
	oob.Tables = []TableDesc{{IndexOff: 0, IndexLen: uint64(len(oob.IndexMem)), NumBlocks: 1}}
	if _, err := eng.Run([]*InputImage{&oob}, Params{}); err == nil {
		t.Fatal("out-of-range block reference accepted")
	}
}

func TestEngineStageBusyAccounting(t *testing.T) {
	opts := sstable.Options{Compression: sstable.SnappyCompression}
	job := defaultJob(
		[]compaction.Table{buildTable(t, opts, genRun("a", 1500, 512, 1))},
		[]compaction.Table{buildTable(t, opts, genRun("b", 1500, 512, 50_000))},
	)
	cfg := DefaultConfig()
	eng, _ := NewEngine(cfg)
	var images []*InputImage
	for _, r := range job.Runs {
		img, err := BuildInputImage(r, cfg.WIn, job.TableOpts)
		if err != nil {
			t.Fatal(err)
		}
		images = append(images, img)
	}
	res, err := eng.Run(images, Params{Compress: true, SmallestSnapshot: keys.MaxSeq})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	for name, busy := range map[string]float64{
		"decoder": st.DecoderBusy, "comparer": st.ComparerBusy,
		"transfer": st.TransferBusy, "encoder": st.EncoderBusy,
	} {
		if busy <= 0 {
			t.Errorf("stage %s reported no busy cycles", name)
		}
		if busy > st.Cycles*1.01 {
			t.Errorf("stage %s busier (%.0f) than the whole run (%.0f)", name, busy, st.Cycles)
		}
	}
	// At 512-byte values the decoder should dominate (paper §V-D1).
	if st.DecoderBusy < st.ComparerBusy {
		t.Error("decoder should be the busiest stage at 512-byte values")
	}
	if st.BytesOut <= 0 || st.BytesIn <= 0 {
		t.Error("byte accounting missing")
	}
}

func TestEngineTrace(t *testing.T) {
	opts := sstable.Options{}
	job := defaultJob(
		[]compaction.Table{buildTable(t, opts, genRun("a", 50, 32, 1))},
		[]compaction.Table{buildTable(t, opts, genRun("b", 50, 32, 100))},
	)
	cfg := DefaultConfig()
	eng, _ := NewEngine(cfg)
	var images []*InputImage
	for _, r := range job.Runs {
		img, err := BuildInputImage(r, cfg.WIn, job.TableOpts)
		if err != nil {
			t.Fatal(err)
		}
		images = append(images, img)
	}
	var trace bytes.Buffer
	_, err := eng.Run(images, Params{
		SmallestSnapshot: keys.MaxSeq,
		TraceWriter:      &trace,
		TraceLimit:       20,
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(trace.Bytes()), []byte("\n"))
	if len(lines) != 21 { // header + 20 selections
		t.Fatalf("trace has %d lines, want 21", len(lines))
	}
	if !bytes.HasPrefix(lines[0], []byte("pair,lane")) {
		t.Fatalf("bad trace header: %s", lines[0])
	}
	// Timestamps on each line must be monotone within the pipeline.
	for _, line := range lines[1:] {
		fields := bytes.Split(line, []byte(","))
		if len(fields) != 10 {
			t.Fatalf("bad trace line: %s", line)
		}
	}
}
