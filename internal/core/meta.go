package core

import (
	"encoding/binary"
	"fmt"
)

// Byte-level MetaIn / MetaOut serialization (paper Fig 8). The host writes
// one MetaIn block per input before starting the engine — "it stores the
// number of SSTables and the offset of index block and first data block in
// their corresponding memory region" — and reads MetaOut back afterwards:
// "the smallest and the largest key of each SSTable are maintained ... In
// addition, the number of output SSTables and the size of each are
// needed." The executor round-trips both across the simulated DMA
// boundary so the layouts are genuinely exercised.

// The wire widths of both meta blocks, validated by the devmem analyzer
// against the paper's layout. Spelled as field sums so a layout change
// is a one-line edit here and a deliberate analyzer update.
const (
	metaInHeaderLen      = 4         // u32 numSSTables
	metaInEntryLen       = 8 + 8 + 4 // u64 indexOff + u64 indexLen + u32 numBlocks
	metaOutHeaderLen     = 4         // u32 numSSTables
	metaOutEntryFixedLen = 4 + 8     // u32 entries + u64 dataBytes (keys are length-prefixed)
)

// EncodeMetaIn serializes an input image's meta block:
//
//	u32 numSSTables
//	per table: u64 indexOff, u64 indexLen, u32 numBlocks
func EncodeMetaIn(img *InputImage) []byte {
	buf := make([]byte, 0, metaInHeaderLen+metaInEntryLen*len(img.Tables))
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(img.Tables)))
	buf = append(buf, tmp[:4]...)
	for _, t := range img.Tables {
		binary.LittleEndian.PutUint64(tmp[:], t.IndexOff)
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint64(tmp[:], t.IndexLen)
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(t.NumBlocks))
		buf = append(buf, tmp[:4]...)
	}
	return buf
}

// DecodeMetaIn parses a MetaIn block into table descriptors.
func DecodeMetaIn(buf []byte) ([]TableDesc, error) {
	if len(buf) < metaInHeaderLen {
		return nil, fmt.Errorf("%w: MetaIn too short", ErrLayout)
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[metaInHeaderLen:]
	if len(buf) != metaInEntryLen*n {
		return nil, fmt.Errorf("%w: MetaIn is %d bytes for %d tables", ErrLayout, len(buf), n)
	}
	out := make([]TableDesc, n)
	for i := range out {
		out[i].IndexOff = binary.LittleEndian.Uint64(buf)
		out[i].IndexLen = binary.LittleEndian.Uint64(buf[8:])
		out[i].NumBlocks = int(binary.LittleEndian.Uint32(buf[16:]))
		buf = buf[metaInEntryLen:]
	}
	return out, nil
}

// EncodeMetaOut serializes the engine's output summary:
//
//	u32 numSSTables
//	per table: u32 entries, u64 dataBytes, smallest key, largest key
//	(keys length-prefixed with u32)
func EncodeMetaOut(outputs []*OutputTableImage, wOut int) []byte {
	var buf []byte
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(outputs)))
	buf = append(buf, tmp[:4]...)
	appendBytes := func(b []byte) {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(b)))
		buf = append(buf, tmp[:4]...)
		buf = append(buf, b...)
	}
	for _, o := range outputs {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(o.Entries))
		buf = append(buf, tmp[:4]...)
		binary.LittleEndian.PutUint64(tmp[:], uint64(o.DataBytes(wOut)))
		buf = append(buf, tmp[:]...)
		appendBytes(o.Smallest)
		appendBytes(o.Largest)
	}
	return buf
}

// MetaOutEntry is one output table's host-visible summary.
type MetaOutEntry struct {
	Entries   int
	DataBytes int64
	Smallest  []byte
	Largest   []byte
}

// DecodeMetaOut parses a MetaOut block.
func DecodeMetaOut(buf []byte) ([]MetaOutEntry, error) {
	if len(buf) < metaOutHeaderLen {
		return nil, fmt.Errorf("%w: MetaOut too short", ErrLayout)
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[metaOutHeaderLen:]
	// Every entry needs at least its fixed fields plus two key-length
	// prefixes, so a count the payload cannot hold is hostile — reject it
	// before sizing the allocation with it.
	if n > len(buf)/(metaOutEntryFixedLen+8) {
		return nil, fmt.Errorf("%w: MetaOut count %d exceeds payload", ErrLayout, n)
	}
	readBytes := func() ([]byte, error) {
		if len(buf) < 4 {
			return nil, fmt.Errorf("%w: MetaOut truncated", ErrLayout)
		}
		l := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if len(buf) < l {
			return nil, fmt.Errorf("%w: MetaOut key truncated", ErrLayout)
		}
		b := append([]byte(nil), buf[:l]...)
		buf = buf[l:]
		return b, nil
	}
	out := make([]MetaOutEntry, n)
	for i := range out {
		if len(buf) < metaOutEntryFixedLen {
			return nil, fmt.Errorf("%w: MetaOut entry truncated", ErrLayout)
		}
		out[i].Entries = int(binary.LittleEndian.Uint32(buf))
		out[i].DataBytes = int64(binary.LittleEndian.Uint64(buf[4:]))
		buf = buf[metaOutEntryFixedLen:]
		var err error
		if out[i].Smallest, err = readBytes(); err != nil {
			return nil, err
		}
		if out[i].Largest, err = readBytes(); err != nil {
			return nil, err
		}
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing MetaOut bytes", ErrLayout, len(buf))
	}
	return out, nil
}
