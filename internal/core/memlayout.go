package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"fcae/internal/compaction"
)

// Device memory layouts (paper §VI-B, Figs 7 and 8). The host serializes
// every compaction input into three regions per input — MetaIn, Index
// Block Memory and Data Block Memory — and DMAs them to the card's DRAM.
// Data blocks are stored WIn-aligned so the chip can stream them at WIn
// bytes per cycle; index blocks are placed continuously (they are read at
// low frequency, §V-D2).

// ErrLayout reports a malformed device memory image.
var ErrLayout = errors.New("core: corrupt device memory image")

// IndexEntry is one record of a table's index stream: the key separating
// this data block from the next, and the block's location in Data Block
// Memory. Size excludes alignment padding and includes the leading
// compression-type byte.
type IndexEntry struct {
	LastKey []byte
	Offset  uint64
	Size    uint64
}

// TableDesc locates one SSTable inside an input image.
type TableDesc struct {
	IndexOff  uint64 // offset of the table's index stream in IndexMem
	IndexLen  uint64
	NumBlocks int
}

// InputImage is one compaction input (one sorted run) in device memory
// form: possibly several SSTables concatenated in key order (paper §IV
// step 2).
type InputImage struct {
	Tables   []TableDesc
	IndexMem []byte
	DataMem  []byte
}

// Bytes returns the total DMA payload of the image including its meta
// block, for PCIe accounting.
func (im *InputImage) Bytes() int64 {
	return int64(len(im.IndexMem)) + int64(len(im.DataMem)) + int64(16+24*len(im.Tables))
}

// IndexSlice returns the index-stream region of IndexMem described by t,
// bounds-checked. All extent arithmetic on TableDesc lives here so
// callers cannot construct an out-of-range view of Index Block Memory.
func (im *InputImage) IndexSlice(t TableDesc) ([]byte, error) {
	end := t.IndexOff + t.IndexLen
	if end < t.IndexOff || end > uint64(len(im.IndexMem)) {
		return nil, fmt.Errorf("%w: index stream out of range", ErrLayout)
	}
	return im.IndexMem[t.IndexOff:end], nil
}

// BlockSlice returns the data-block region of DataMem described by e,
// bounds-checked. Size includes the leading compression-type byte, so a
// valid block is never empty.
func (im *InputImage) BlockSlice(e IndexEntry) ([]byte, error) {
	if e.Size < 1 {
		return nil, fmt.Errorf("%w: empty data block", ErrLayout)
	}
	end := e.Offset + e.Size
	if end < e.Offset || end > uint64(len(im.DataMem)) {
		return nil, fmt.Errorf("%w: data block out of range", ErrLayout)
	}
	return im.DataMem[e.Offset:end], nil
}

// Arena is one channel's persistent device-memory staging allocation,
// modeling the card DRAM regions a job's images occupy: an index-block
// region, a data-block region and a retained-output region, carved once
// from a single backing slab and bump-allocated per job. Reset rewinds
// all three so the next compaction reuses the same backing memory — the
// point is that steady-state offload does no per-job `make`s.
//
// An Arena is NOT safe for concurrent use; the owning Executor serializes
// jobs per channel. A nil *Arena is valid everywhere and means "no arena"
// (heap allocation, the pre-arena behavior).
type Arena struct {
	index []byte
	data  []byte
	out   []byte

	indexOff int
	dataOff  int
	outOff   int

	// highWater is the peak InUse ever observed, surviving Reset: the
	// figure that says how close steady-state jobs come to the carve
	// sizes, and therefore whether the arena is over- or under-provisioned.
	highWater int64
}

// NewArena carves a staging arena from total bytes: 1/8 index region,
// 1/2 data region, the remainder for retained output. total <= 0 returns
// nil (arena disabled).
func NewArena(total int64) *Arena {
	if total <= 0 {
		return nil
	}
	slab := make([]byte, total)
	idx := total / 8
	data := total / 2
	return &Arena{
		index: slab[:idx:idx],
		data:  slab[idx : idx+data : idx+data],
		out:   slab[idx+data:],
	}
}

// Reset rewinds all three regions; previously returned slices are dead
// after Reset and must not be retained across jobs.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.indexOff, a.dataOff, a.outOff = 0, 0, 0
}

// Cap returns the arena's total backing size in bytes; 0 for nil.
func (a *Arena) Cap() int64 {
	if a == nil {
		return 0
	}
	return int64(len(a.index) + len(a.data) + len(a.out))
}

// InUse returns the bytes currently consumed across all regions.
func (a *Arena) InUse() int64 {
	if a == nil {
		return 0
	}
	return int64(a.indexOff + a.dataOff + a.outOff)
}

// HighWater returns the peak InUse the arena has ever reached. Unlike
// InUse it is not rewound by Reset, so it reports lifetime pressure:
// HighWater near Cap means jobs are close to spilling to heap fallback.
// 0 for nil.
func (a *Arena) HighWater() int64 {
	if a == nil {
		return 0
	}
	return a.highWater
}

// noteHighWater records the current InUse if it is a new peak.
func (a *Arena) noteHighWater() {
	if u := a.InUse(); u > a.highWater {
		a.highWater = u
	}
}

// InputBudget returns a conservative bound on a job's total input bytes
// such that image staging fits the data region: the region size less a
// 1/8 margin for per-block compression-type bytes and alignment padding.
// The dispatcher uses it for admission; jobs above it route to CPU.
func (a *Arena) InputBudget() int64 {
	if a == nil {
		return 0
	}
	return int64(len(a.data) - len(a.data)/8)
}

// indexRegion returns the unconsumed index region as an empty slice with
// the remaining capacity; appends fill the arena in place.
func (a *Arena) indexRegion() []byte {
	return a.index[a.indexOff:a.indexOff]
}

// dataRegion is indexRegion's data-side counterpart.
func (a *Arena) dataRegion() []byte {
	return a.data[a.dataOff:a.dataOff]
}

// commitStaging advances the bump pointers past a finished image's
// staged bytes, so the next builder on the same arena starts after them.
func (a *Arena) commitStaging(indexLen, dataLen int) {
	if a == nil {
		return
	}
	a.indexOff += indexLen
	a.dataOff += dataLen
	a.noteHighWater()
}

// takeOut reserves n bytes of the retained-output region, returning an
// empty slice with capacity exactly n for the caller to append into.
// ok is false when the region is exhausted (the caller heap-allocates).
func (a *Arena) takeOut(n int) (dst []byte, ok bool) {
	if a == nil || n > len(a.out)-a.outOff {
		return nil, false
	}
	dst = a.out[a.outOff : a.outOff : a.outOff+n]
	a.outOff += n
	a.noteHighWater()
	return dst, true
}

// InputBuilder assembles an InputImage table by table. With an arena
// attached (NewInputBuilderArena) the image's index and data memory are
// staged inside the arena's regions and AddBlock reports
// compaction.ErrArenaExhausted when a block would overflow them; without
// one, appends grow heap slices and AddBlock never fails.
type InputBuilder struct {
	img   InputImage
	align int
	arena *Arena
}

// NewInputBuilder returns a builder aligning data blocks to wIn bytes.
func NewInputBuilder(wIn int) *InputBuilder {
	return NewInputBuilderArena(wIn, nil)
}

// NewInputBuilderArena returns a builder staging the image inside a (nil
// means heap allocation). Builders on the same arena must be finished in
// sequence; Finish commits the staged bytes.
func NewInputBuilderArena(wIn int, a *Arena) *InputBuilder {
	if wIn < 1 {
		wIn = 1
	}
	b := &InputBuilder{align: wIn, arena: a}
	if a != nil {
		b.img.IndexMem = a.indexRegion()
		b.img.DataMem = a.dataRegion()
	}
	return b
}

// BeginTable starts a new SSTable within the input.
func (b *InputBuilder) BeginTable() {
	b.img.Tables = append(b.img.Tables, TableDesc{
		IndexOff: uint64(len(b.img.IndexMem)),
	})
}

// AddBlock appends one raw data block (compression-type byte + payload)
// and its index entry to the current table. On an arena-backed builder it
// returns an error wrapping compaction.ErrArenaExhausted when the block
// would overflow a staging region; heap-backed builders never fail.
func (b *InputBuilder) AddBlock(lastKey []byte, ctype byte, payload []byte) error {
	if b.arena != nil {
		// Conservative worst-case growth so append can never reallocate
		// out of the arena: ctype + payload + full alignment pad on the
		// data side, three max-width varints + key on the index side.
		dataNeed := 1 + len(payload) + b.align
		idxNeed := len(lastKey) + 3*binary.MaxVarintLen64
		if len(b.img.DataMem)+dataNeed > cap(b.img.DataMem) {
			return fmt.Errorf("%w: data region (%d staged, block needs %d, cap %d)",
				compaction.ErrArenaExhausted, len(b.img.DataMem), dataNeed, cap(b.img.DataMem))
		}
		if len(b.img.IndexMem)+idxNeed > cap(b.img.IndexMem) {
			return fmt.Errorf("%w: index region (%d staged, entry needs %d, cap %d)",
				compaction.ErrArenaExhausted, len(b.img.IndexMem), idxNeed, cap(b.img.IndexMem))
		}
	}
	if len(b.img.Tables) == 0 {
		b.BeginTable()
	}
	t := &b.img.Tables[len(b.img.Tables)-1]

	// Data Block Memory: ctype byte + payload, padded to alignment.
	off := uint64(len(b.img.DataMem))
	b.img.DataMem = append(b.img.DataMem, ctype)
	b.img.DataMem = append(b.img.DataMem, payload...)
	size := uint64(len(b.img.DataMem)) - off
	for len(b.img.DataMem)%b.align != 0 {
		b.img.DataMem = append(b.img.DataMem, 0)
	}

	// Index stream entry.
	e := IndexEntry{LastKey: lastKey, Offset: off, Size: size}
	b.img.IndexMem = appendIndexEntry(b.img.IndexMem, e)
	t.IndexLen = uint64(len(b.img.IndexMem)) - t.IndexOff
	t.NumBlocks++
	return nil
}

// Finish returns the completed image. On an arena-backed builder it also
// commits the staged bytes, so a following builder on the same arena
// (the job's next run) starts past them.
func (b *InputBuilder) Finish() *InputImage {
	if b.arena != nil {
		b.arena.commitStaging(len(b.img.IndexMem), len(b.img.DataMem))
	}
	return &b.img
}

func appendIndexEntry(dst []byte, e IndexEntry) []byte {
	var tmp [binary.MaxVarintLen64]byte
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(len(e.LastKey)))]...)
	dst = append(dst, e.LastKey...)
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], e.Offset)]...)
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], e.Size)]...)
	return dst
}

// indexStream decodes a table's index stream on the device side.
type indexStream struct {
	buf []byte
}

func (s *indexStream) next() (IndexEntry, error) {
	var e IndexEntry
	kl, n := binary.Uvarint(s.buf)
	if n <= 0 || uint64(len(s.buf)-n) < kl {
		return e, fmt.Errorf("%w: bad index key length", ErrLayout)
	}
	e.LastKey = s.buf[n : n+int(kl)]
	s.buf = s.buf[n+int(kl):]
	off, n := binary.Uvarint(s.buf)
	if n <= 0 {
		return e, fmt.Errorf("%w: bad index offset", ErrLayout)
	}
	s.buf = s.buf[n:]
	size, n := binary.Uvarint(s.buf)
	if n <= 0 {
		return e, fmt.Errorf("%w: bad index size", ErrLayout)
	}
	s.buf = s.buf[n:]
	e.Offset, e.Size = off, size
	return e, nil
}

func (s *indexStream) empty() bool { return len(s.buf) == 0 }

// DecodeIndex parses a table's full index stream, for tests and the host
// combiner.
func (im *InputImage) DecodeIndex(table int) ([]IndexEntry, error) {
	if table < 0 || table >= len(im.Tables) {
		return nil, fmt.Errorf("%w: table %d out of range", ErrLayout, table)
	}
	t := im.Tables[table]
	idx, err := im.IndexSlice(t)
	if err != nil {
		return nil, err
	}
	s := indexStream{buf: idx}
	var out []IndexEntry
	for !s.empty() {
		e, err := s.next()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	if len(out) != t.NumBlocks {
		return nil, fmt.Errorf("%w: table %d has %d index entries, descriptor says %d",
			ErrLayout, table, len(out), t.NumBlocks)
	}
	return out, nil
}

// OutputBlock is one encoded output data block: contents are in the
// sstable block format, compressed per CType.
type OutputBlock struct {
	CType    byte
	Payload  []byte
	LastKey  []byte
	RawBytes int // uncompressed contents size
	Entries  int
}

// OutputTableImage is one produced SSTable in device memory form plus the
// MetaOut fields returned to the host (paper Fig 8: smallest and largest
// key and the size of each output SSTable).
type OutputTableImage struct {
	Blocks   []OutputBlock
	Smallest []byte
	Largest  []byte
	Entries  int
	// FilterKeys are the user keys routed to the host so it can attach a
	// bloom filter while combining blocks into the final file.
	FilterKeys [][]byte
}

// DataBytes returns the table's data-block bytes padded to wOut alignment,
// for PCIe and DRAM accounting.
func (o *OutputTableImage) DataBytes(wOut int) int64 {
	if wOut < 1 {
		wOut = 1
	}
	var n int64
	for _, b := range o.Blocks {
		sz := int64(len(b.Payload)) + 1
		if rem := sz % int64(wOut); rem != 0 {
			sz += int64(wOut) - rem
		}
		n += sz
	}
	return n
}

// IndexBytes returns the table's index stream size.
func (o *OutputTableImage) IndexBytes() int64 {
	var n int64
	for _, b := range o.Blocks {
		n += int64(len(b.LastKey)) + 2*binary.MaxVarintLen64
	}
	return n
}
