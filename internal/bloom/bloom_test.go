package bloom

import (
	"encoding/binary"
	"fmt"
	"testing"
)

func key(i int) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(i))
	return b[:]
}

func TestEmptyFilter(t *testing.T) {
	t.Parallel()
	f := New(10)
	filter := f.Append(nil, nil)
	if f.MayContain(filter, []byte("anything")) {
		t.Fatal("empty filter should not match")
	}
	if f.MayContain(nil, []byte("x")) {
		t.Fatal("nil filter data should not match")
	}
}

func TestNoFalseNegatives(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 10, 100, 1000, 10000} {
		f := New(10)
		var ks [][]byte
		for i := 0; i < n; i++ {
			ks = append(ks, key(i))
		}
		filter := f.Append(nil, ks)
		for i := 0; i < n; i++ {
			if !f.MayContain(filter, key(i)) {
				t.Fatalf("n=%d: false negative for key %d", n, i)
			}
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	t.Parallel()
	f := New(10)
	const n = 10000
	var ks [][]byte
	for i := 0; i < n; i++ {
		ks = append(ks, key(i))
	}
	filter := f.Append(nil, ks)
	fp := 0
	for i := 0; i < n; i++ {
		if f.MayContain(filter, key(i+1000000000)) {
			fp++
		}
	}
	rate := float64(fp) / n
	// 10 bits/key targets ~1%; allow generous slack.
	if rate > 0.03 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestVaryingLengthKeys(t *testing.T) {
	t.Parallel()
	f := New(10)
	var ks [][]byte
	for i := 0; i < 200; i++ {
		ks = append(ks, []byte(fmt.Sprintf("%0*d", 1+i%40, i)))
	}
	filter := f.Append(nil, ks)
	for _, k := range ks {
		if !f.MayContain(filter, k) {
			t.Fatalf("false negative for %q", k)
		}
	}
}

func TestFilterSizeScalesWithBitsPerKey(t *testing.T) {
	t.Parallel()
	var ks [][]byte
	for i := 0; i < 1000; i++ {
		ks = append(ks, key(i))
	}
	small := New(5).Append(nil, ks)
	large := New(20).Append(nil, ks)
	if len(large) <= len(small) {
		t.Fatalf("20 bits/key filter (%dB) not larger than 5 bits/key (%dB)", len(large), len(small))
	}
}

func TestReservedProbeCountMatchesEverything(t *testing.T) {
	t.Parallel()
	f := New(10)
	filter := []byte{0x00, 0x00, 31} // k=31 is reserved
	if !f.MayContain(filter, []byte("whatever")) {
		t.Fatal("reserved encodings must be treated as a match")
	}
}

func BenchmarkAppend10K(b *testing.B) {
	f := New(10)
	var ks [][]byte
	for i := 0; i < 10000; i++ {
		ks = append(ks, key(i))
	}
	for i := 0; i < b.N; i++ {
		f.Append(nil, ks)
	}
}

func BenchmarkMayContain(b *testing.B) {
	f := New(10)
	var ks [][]byte
	for i := 0; i < 10000; i++ {
		ks = append(ks, key(i))
	}
	filter := f.Append(nil, ks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(filter, key(i%20000))
	}
}
