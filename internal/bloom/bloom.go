// Package bloom implements the bloom filter policy used in SSTable filter
// blocks, following LevelDB's double-hashing construction so the read path
// can skip data blocks that cannot contain a key.
package bloom

// Filter builds and queries bloom filters with a fixed bits-per-key budget.
type Filter struct {
	bitsPerKey int
	k          int // number of probes
}

// New returns a policy using about bitsPerKey bits per key. 10 bits/key
// yields a ~1% false positive rate.
func New(bitsPerKey int) Filter {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	// k = ln(2) * bits/key rounded, clamped to [1,30].
	k := int(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return Filter{bitsPerKey: bitsPerKey, k: k}
}

// Name identifies the policy in the table's meta block.
func (f Filter) Name() string { return "fcae.BuiltinBloomFilter" }

// hash is LevelDB's bloom hash (a Murmur-like mix).
func hash(data []byte) uint32 {
	const (
		seed = 0xbc9f1d34
		m    = 0xc6a4a793
	)
	h := uint32(seed) ^ uint32(len(data))*m
	i := 0
	for ; i+4 <= len(data); i += 4 {
		w := uint32(data[i]) | uint32(data[i+1])<<8 | uint32(data[i+2])<<16 | uint32(data[i+3])<<24
		h += w
		h *= m
		h ^= h >> 16
	}
	switch len(data) - i {
	case 3:
		h += uint32(data[i+2]) << 16
		fallthrough
	case 2:
		h += uint32(data[i+1]) << 8
		fallthrough
	case 1:
		h += uint32(data[i])
		h *= m
		h ^= h >> 24
	}
	return h
}

// Append builds a filter over keys and appends it to dst, returning the
// extended slice. The final byte records the probe count.
func (f Filter) Append(dst []byte, keys [][]byte) []byte {
	bits := len(keys) * f.bitsPerKey
	if bits < 64 {
		bits = 64
	}
	nBytes := (bits + 7) / 8
	bits = nBytes * 8

	start := len(dst)
	dst = append(dst, make([]byte, nBytes+1)...)
	array := dst[start : start+nBytes]
	for _, key := range keys {
		h := hash(key)
		delta := h>>17 | h<<15
		for j := 0; j < f.k; j++ {
			pos := h % uint32(bits)
			array[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	dst[start+nBytes] = byte(f.k)
	return dst
}

// MayContain reports whether key may be in the set encoded in filter.
// False positives are possible; false negatives are not. The probe count
// is read from the filter's trailing byte, so the policy receiver carries
// no state the query needs.
func (f Filter) MayContain(filter, key []byte) bool {
	return MayContain(filter, key)
}

// MayContain reports whether key may be in the set encoded in filter. The
// encoding is self-describing (bit array plus trailing probe count), so
// readers need no policy value — in particular not the bits-per-key the
// filter was built with.
func MayContain(filter, key []byte) bool {
	if len(filter) < 2 {
		return false
	}
	nBytes := len(filter) - 1
	bits := uint32(nBytes * 8)
	k := int(filter[nBytes])
	if k > 30 {
		// Reserved for future encodings: treat as a match.
		return true
	}
	h := hash(key)
	delta := h>>17 | h<<15
	for j := 0; j < k; j++ {
		pos := h % bits
		if filter[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}
