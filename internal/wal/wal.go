// Package wal implements the write-ahead log in the LevelDB log format:
// the file is a sequence of 32 KiB blocks, each holding physical records
//
//	checksum uint32  // masked CRC-32C of type+payload
//	length   uint16
//	type     uint8   // FULL, FIRST, MIDDLE, LAST
//	payload  []byte
//
// Logical records longer than the space left in a block are fragmented.
// The same format backs the MANIFEST (package manifest), matching the
// store the paper integrates with.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// BlockSize is the physical block size of the log file.
const BlockSize = 32 * 1024

// headerSize is the physical record header length.
const headerSize = 7

type recordType uint8

const (
	typeZero recordType = iota // reserved for preallocated files
	typeFull
	typeFirst
	typeMiddle
	typeLast
)

// ErrCorrupt reports a damaged log file region.
var ErrCorrupt = errors.New("wal: corrupt record")

// crcFunc computes the masked checksum of type byte + payload.
type crcFunc func(t byte, payload []byte) uint32

// Writer appends logical records to an io.Writer.
type Writer struct {
	w          io.Writer
	blockOff   int // offset within the current block
	buf        [headerSize]byte
	crc        crcFunc
	written    int64
	flushAfter bool
	flusher    interface{ Flush() error }
	syncer     interface{ Sync() error }
}

// NewWriter returns a Writer emitting records to w. If w implements
// Flush/Sync those are used by the corresponding methods.
func NewWriter(w io.Writer, crc crcFunc) *Writer {
	nw := &Writer{w: w, crc: crc}
	if f, ok := w.(interface{ Flush() error }); ok {
		nw.flusher = f
	}
	if s, ok := w.(interface{ Sync() error }); ok {
		nw.syncer = s
	}
	return nw
}

// Append writes one logical record, fragmenting across blocks as needed.
func (w *Writer) Append(record []byte) error {
	begin := true
	for {
		leftover := BlockSize - w.blockOff
		if leftover < headerSize {
			// Fill trailer with zeros; readers skip it.
			if leftover > 0 {
				var zeros [headerSize]byte
				if _, err := w.w.Write(zeros[:leftover]); err != nil {
					return err
				}
				w.written += int64(leftover)
			}
			w.blockOff = 0
			leftover = BlockSize
		}
		avail := leftover - headerSize
		frag := record
		if len(frag) > avail {
			frag = frag[:avail]
		}
		record = record[len(frag):]
		end := len(record) == 0

		var t recordType
		switch {
		case begin && end:
			t = typeFull
		case begin:
			t = typeFirst
		case end:
			t = typeLast
		default:
			t = typeMiddle
		}
		if err := w.emit(t, frag); err != nil {
			return err
		}
		begin = false
		if end {
			return nil
		}
	}
}

func (w *Writer) emit(t recordType, payload []byte) error {
	binary.LittleEndian.PutUint32(w.buf[0:4], w.crc(byte(t), payload))
	binary.LittleEndian.PutUint16(w.buf[4:6], uint16(len(payload)))
	w.buf[6] = byte(t)
	if _, err := w.w.Write(w.buf[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	w.blockOff += headerSize + len(payload)
	w.written += int64(headerSize + len(payload))
	return nil
}

// Size returns the bytes written so far.
func (w *Writer) Size() int64 { return w.written }

// Flush flushes any buffering writer beneath the log.
func (w *Writer) Flush() error {
	if w.flusher != nil {
		return w.flusher.Flush()
	}
	return nil
}

// Sync flushes and then syncs the underlying file if it supports it.
func (w *Writer) Sync() error {
	if err := w.Flush(); err != nil {
		return err
	}
	if w.syncer != nil {
		return w.syncer.Sync()
	}
	return nil
}

// Reader reads logical records written by Writer. Torn or corrupt tails are
// reported via ErrCorrupt from Next; callers recovering a WAL typically
// stop at the first corruption, dropping the unsynced tail.
type Reader struct {
	r       io.Reader
	crc     crcFunc
	block   [BlockSize]byte
	n       int // valid bytes in block
	off     int // read offset in block
	eof     bool
	scratch []byte
}

// NewReader returns a Reader consuming records from r.
func NewReader(r io.Reader, crc crcFunc) *Reader {
	return &Reader{r: r, crc: crc}
}

// Next returns the next logical record, valid until the following call.
// io.EOF signals a clean end of log.
func (r *Reader) Next() ([]byte, error) {
	r.scratch = r.scratch[:0]
	inFragmented := false
	for {
		t, payload, err := r.nextPhysical()
		if err != nil {
			if err == io.EOF && inFragmented {
				// A record started but the log ended: torn write.
				return nil, ErrCorrupt
			}
			return nil, err
		}
		switch t {
		case typeFull:
			if inFragmented {
				return nil, ErrCorrupt
			}
			return payload, nil
		case typeFirst:
			if inFragmented {
				return nil, ErrCorrupt
			}
			inFragmented = true
			r.scratch = append(r.scratch, payload...)
		case typeMiddle:
			if !inFragmented {
				return nil, ErrCorrupt
			}
			r.scratch = append(r.scratch, payload...)
		case typeLast:
			if !inFragmented {
				return nil, ErrCorrupt
			}
			return append(r.scratch, payload...), nil
		default:
			return nil, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, t)
		}
	}
}

func (r *Reader) nextPhysical() (recordType, []byte, error) {
	for {
		if r.n-r.off < headerSize {
			if err := r.fill(); err != nil {
				return 0, nil, err
			}
			continue
		}
		h := r.block[r.off : r.off+headerSize]
		// A zero header means block trailer padding.
		if h[4] == 0 && h[5] == 0 && h[6] == byte(typeZero) {
			r.off = r.n // skip to next block
			continue
		}
		length := int(binary.LittleEndian.Uint16(h[4:6]))
		t := recordType(h[6])
		if r.off+headerSize+length > r.n {
			return 0, nil, ErrCorrupt
		}
		payload := r.block[r.off+headerSize : r.off+headerSize+length]
		want := binary.LittleEndian.Uint32(h[0:4])
		if r.crc(byte(t), payload) != want {
			return 0, nil, ErrCorrupt
		}
		r.off += headerSize + length
		return t, payload, nil
	}
}

// fill loads the next block from the underlying reader.
func (r *Reader) fill() error {
	if r.eof {
		return io.EOF
	}
	n, err := io.ReadFull(r.r, r.block[:])
	r.off = 0
	r.n = n
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		r.eof = true
		if n == 0 {
			return io.EOF
		}
		return nil
	}
	return err
}
