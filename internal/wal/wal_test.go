package wal

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"fcae/internal/crc"
)

func testCRC(t byte, payload []byte) uint32 {
	return crc.Extend(crc.Value([]byte{t}), payload)
}

func roundTrip(t *testing.T, records [][]byte) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, testCRC)
	for _, r := range records {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(bytes.NewReader(buf.Bytes()), testCRC)
	for i, want := range records {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestRoundTripSmallRecords(t *testing.T) {
	t.Parallel()
	roundTrip(t, [][]byte{[]byte("one"), []byte("two"), {}, []byte("four")})
}

func TestRoundTripFragmented(t *testing.T) {
	t.Parallel()
	// Records larger than one block must fragment and reassemble.
	big := bytes.Repeat([]byte("x"), BlockSize*3+123)
	roundTrip(t, [][]byte{[]byte("pre"), big, []byte("post")})
}

func TestRoundTripBlockBoundary(t *testing.T) {
	t.Parallel()
	// A record that leaves less than a header of trailer space forces
	// zero padding, which the reader must skip.
	first := bytes.Repeat([]byte("a"), BlockSize-headerSize-3)
	roundTrip(t, [][]byte{first, []byte("second")})
}

func TestRoundTripExactBlockFill(t *testing.T) {
	t.Parallel()
	first := bytes.Repeat([]byte("a"), BlockSize-headerSize)
	roundTrip(t, [][]byte{first, []byte("second")})
}

func TestRoundTripManyRandomRecords(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	var records [][]byte
	for i := 0; i < 200; i++ {
		r := make([]byte, rng.Intn(5000))
		rng.Read(r)
		records = append(records, r)
	}
	roundTrip(t, records)
}

func TestReaderDetectsCorruption(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w := NewWriter(&buf, testCRC)
	if err := w.Append([]byte("a clean record")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[headerSize+2] ^= 0xff // flip a payload byte
	r := NewReader(bytes.NewReader(data), testCRC)
	if _, err := r.Next(); err == nil {
		t.Fatal("corrupted payload passed checksum")
	}
}

func TestReaderDetectsTornWrite(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w := NewWriter(&buf, testCRC)
	big := bytes.Repeat([]byte("y"), BlockSize*2)
	if err := w.Append(big); err != nil {
		t.Fatal(err)
	}
	// Drop the final fragment: simulates a crash mid-write.
	data := buf.Bytes()[:BlockSize+100]
	r := NewReader(bytes.NewReader(data), testCRC)
	if _, err := r.Next(); err == nil {
		t.Fatal("torn record should not be returned")
	}
}

func TestReaderStopsAtTruncatedTail(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w := NewWriter(&buf, testCRC)
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Truncate in the middle of record 3's header.
	data := buf.Bytes()[:3*(headerSize+len("record-0"))+4]
	r := NewReader(bytes.NewReader(data), testCRC)
	n := 0
	for {
		_, err := r.Next()
		if err != nil {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("recovered %d records, want 3", n)
	}
}

func TestWriterSizeTracksBytes(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w := NewWriter(&buf, testCRC)
	if err := w.Append([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if w.Size() != int64(buf.Len()) {
		t.Fatalf("Size = %d, buffer has %d", w.Size(), buf.Len())
	}
}

func BenchmarkAppend(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testCRC)
	record := bytes.Repeat([]byte("payload-"), 64) // 512 bytes
	b.SetBytes(int64(len(record)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf.Len() > 64<<20 {
			buf.Reset()
			w = NewWriter(&buf, testCRC)
		}
		if err := w.Append(record); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplay(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testCRC)
	record := bytes.Repeat([]byte("payload-"), 64)
	for i := 0; i < 10000; i++ {
		w.Append(record)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(buf.Bytes()), testCRC)
		n := 0
		for {
			if _, err := r.Next(); err != nil {
				break
			}
			n++
		}
		if n != 10000 {
			b.Fatalf("replayed %d records", n)
		}
	}
}
