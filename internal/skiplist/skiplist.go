// Package skiplist provides the ordered in-memory index backing the
// MemTable (paper §II: "the newest data are stored in the MemTable in main
// memory using skiplists"). Writes must be externally serialized (the DB
// holds its write mutex); reads may proceed concurrently with a writer
// because node links are published with atomic stores, mirroring LevelDB's
// single-writer/multi-reader skiplist contract.
package skiplist

import (
	"math/rand"
	"sync/atomic"
)

const (
	maxHeight = 12
	// branching gives P(promote) = 1/branching per level.
	branching = 4
)

// Comparer orders the keys stored in the list.
type Comparer func(a, b []byte) int

type node struct {
	key  []byte
	next []atomic.Pointer[node]
}

func newNode(key []byte, height int) *node {
	return &node{key: key, next: make([]atomic.Pointer[node], height)}
}

// List is a skiplist of byte-slice keys. The zero value is not usable; call
// New.
type List struct {
	cmp    Comparer
	head   *node
	height atomic.Int32
	rnd    *rand.Rand
	count  atomic.Int64
	bytes  atomic.Int64
}

// New returns an empty list ordered by cmp. seed fixes the tower-height
// RNG so tests are reproducible.
func New(cmp Comparer, seed int64) *List {
	l := &List{
		cmp:  cmp,
		head: newNode(nil, maxHeight),
		rnd:  rand.New(rand.NewSource(seed)),
	}
	l.height.Store(1)
	return l
}

// Len returns the number of inserted keys.
func (l *List) Len() int { return int(l.count.Load()) }

// Bytes returns the total length of inserted keys.
func (l *List) Bytes() int64 { return l.bytes.Load() }

func (l *List) randomHeight() int {
	h := 1
	for h < maxHeight && l.rnd.Intn(branching) == 0 {
		h++
	}
	return h
}

// findGE returns the first node with key >= k, filling prev[i] with the
// rightmost node at level i whose key < k when prev is non-nil.
func (l *List) findGE(k []byte, prev *[maxHeight]*node) *node {
	x := l.head
	level := int(l.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil && l.cmp(next.key, k) < 0 {
			x = next
			continue
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return next
		}
		level--
	}
}

// findLT returns the rightmost node with key < k, or nil if none.
func (l *List) findLT(k []byte) *node {
	x := l.head
	level := int(l.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil && l.cmp(next.key, k) < 0 {
			x = next
			continue
		}
		if level == 0 {
			if x == l.head {
				return nil
			}
			return x
		}
		level--
	}
}

// findLast returns the last node in the list, or nil if empty.
func (l *List) findLast() *node {
	x := l.head
	level := int(l.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil {
			x = next
			continue
		}
		if level == 0 {
			if x == l.head {
				return nil
			}
			return x
		}
		level--
	}
}

// Insert adds key to the list. The caller must not insert a key equal to
// one already present (the MemTable guarantees this by suffixing unique
// sequence numbers) and must serialize Insert calls.
func (l *List) Insert(key []byte) {
	var prev [maxHeight]*node
	l.findGE(key, &prev)

	h := l.randomHeight()
	if cur := int(l.height.Load()); h > cur {
		for i := cur; i < h; i++ {
			prev[i] = l.head
		}
		// Concurrent readers that observe the old height simply skip
		// the new upper levels; publishing height before links is safe.
		l.height.Store(int32(h))
	}

	n := newNode(key, h)
	for i := 0; i < h; i++ {
		n.next[i].Store(prev[i].next[i].Load())
		prev[i].next[i].Store(n)
	}
	l.count.Add(1)
	l.bytes.Add(int64(len(key)))
}

// Contains reports whether key is present.
func (l *List) Contains(key []byte) bool {
	n := l.findGE(key, nil)
	return n != nil && l.cmp(n.key, key) == 0
}

// Iterator walks the list. It is valid only while positioned on a node.
// Multiple iterators may be used concurrently with a single writer.
type Iterator struct {
	list *List
	node *node
}

// NewIterator returns an unpositioned iterator.
func (l *List) NewIterator() *Iterator { return &Iterator{list: l} }

// Valid reports whether the iterator is positioned on a key.
func (it *Iterator) Valid() bool { return it.node != nil }

// Key returns the current key; only valid when Valid().
func (it *Iterator) Key() []byte { return it.node.key }

// Next advances to the following key.
func (it *Iterator) Next() { it.node = it.node.next[0].Load() }

// Prev moves to the preceding key (O(log n)).
func (it *Iterator) Prev() { it.node = it.list.findLT(it.node.key) }

// SeekGE positions at the first key >= target.
func (it *Iterator) SeekGE(target []byte) { it.node = it.list.findGE(target, nil) }

// SeekLT positions at the last key < target.
func (it *Iterator) SeekLT(target []byte) { it.node = it.list.findLT(target) }

// SeekToFirst positions at the smallest key.
func (it *Iterator) SeekToFirst() { it.node = it.list.head.next[0].Load() }

// SeekToLast positions at the largest key.
func (it *Iterator) SeekToLast() { it.node = it.list.findLast() }
