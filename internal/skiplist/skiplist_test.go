package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func newList() *List { return New(bytes.Compare, 1) }

func TestEmptyList(t *testing.T) {
	t.Parallel()
	l := newList()
	if l.Len() != 0 {
		t.Fatal("new list should be empty")
	}
	it := l.NewIterator()
	it.SeekToFirst()
	if it.Valid() {
		t.Fatal("iterator over empty list must be invalid")
	}
	it.SeekToLast()
	if it.Valid() {
		t.Fatal("SeekToLast on empty list must be invalid")
	}
	if l.Contains([]byte("x")) {
		t.Fatal("empty list contains nothing")
	}
}

func TestInsertAndContains(t *testing.T) {
	t.Parallel()
	l := newList()
	keys := []string{"delta", "alpha", "charlie", "bravo", "echo"}
	for _, k := range keys {
		l.Insert([]byte(k))
	}
	if l.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", l.Len(), len(keys))
	}
	for _, k := range keys {
		if !l.Contains([]byte(k)) {
			t.Errorf("missing %q", k)
		}
	}
	if l.Contains([]byte("zulu")) {
		t.Error("found key never inserted")
	}
}

func TestIterationIsSorted(t *testing.T) {
	t.Parallel()
	l := newList()
	var want []string
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%06d", rng.Intn(1000000))
		if l.Contains([]byte(k)) {
			continue
		}
		l.Insert([]byte(k))
		want = append(want, k)
	}
	sort.Strings(want)
	var got []string
	it := l.NewIterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestSeekGE(t *testing.T) {
	t.Parallel()
	l := newList()
	for _, k := range []string{"b", "d", "f"} {
		l.Insert([]byte(k))
	}
	cases := []struct{ target, want string }{
		{"a", "b"}, {"b", "b"}, {"c", "d"}, {"d", "d"}, {"e", "f"}, {"f", "f"},
	}
	it := l.NewIterator()
	for _, c := range cases {
		it.SeekGE([]byte(c.target))
		if !it.Valid() || string(it.Key()) != c.want {
			t.Errorf("SeekGE(%q): got %q", c.target, it.Key())
		}
	}
	it.SeekGE([]byte("g"))
	if it.Valid() {
		t.Error("SeekGE past end must be invalid")
	}
}

func TestSeekLTAndPrev(t *testing.T) {
	t.Parallel()
	l := newList()
	for _, k := range []string{"b", "d", "f"} {
		l.Insert([]byte(k))
	}
	it := l.NewIterator()
	it.SeekLT([]byte("e"))
	if !it.Valid() || string(it.Key()) != "d" {
		t.Fatalf("SeekLT(e) = %q", it.Key())
	}
	it.Prev()
	if !it.Valid() || string(it.Key()) != "b" {
		t.Fatalf("Prev = %q", it.Key())
	}
	it.Prev()
	if it.Valid() {
		t.Fatal("Prev before first must invalidate")
	}
	it.SeekLT([]byte("b"))
	if it.Valid() {
		t.Fatal("SeekLT(first) must be invalid")
	}
}

func TestSeekToLast(t *testing.T) {
	t.Parallel()
	l := newList()
	for i := 0; i < 100; i++ {
		l.Insert([]byte(fmt.Sprintf("%04d", i)))
	}
	it := l.NewIterator()
	it.SeekToLast()
	if !it.Valid() || string(it.Key()) != "0099" {
		t.Fatalf("SeekToLast = %q", it.Key())
	}
}

func TestBytesAccounting(t *testing.T) {
	t.Parallel()
	l := newList()
	l.Insert([]byte("abc"))
	l.Insert([]byte("defgh"))
	if l.Bytes() != 8 {
		t.Fatalf("Bytes = %d, want 8", l.Bytes())
	}
}

// TestConcurrentReadersWithWriter exercises the single-writer /
// multi-reader contract under the race detector.
func TestConcurrentReadersWithWriter(t *testing.T) {
	t.Parallel()
	l := newList()
	const total = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				it := l.NewIterator()
				prev := []byte(nil)
				for it.SeekToFirst(); it.Valid(); it.Next() {
					if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
						t.Error("keys out of order during concurrent read")
						return
					}
					prev = append(prev[:0], it.Key()...)
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		l.Insert([]byte(fmt.Sprintf("k%08d", i*2654435761%total)))
	}
	close(stop)
	wg.Wait()
	if l.Len() != total {
		t.Fatalf("Len = %d, want %d", l.Len(), total)
	}
}

func BenchmarkInsert(b *testing.B) {
	l := newList()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert([]byte(fmt.Sprintf("key-%012d", i*2654435761)))
	}
}

func BenchmarkSeekGE(b *testing.B) {
	l := newList()
	for i := 0; i < 100000; i++ {
		l.Insert([]byte(fmt.Sprintf("key-%012d", i)))
	}
	it := l.NewIterator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.SeekGE([]byte(fmt.Sprintf("key-%012d", i%100000)))
	}
}
