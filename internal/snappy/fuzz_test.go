package snappy

import (
	"bytes"
	"testing"
)

// FuzzSnappyRoundtrip checks Encode∘Decode is the identity on arbitrary
// input, and that Decode survives the same bytes interpreted as a
// (probably corrupt) compressed stream.
func FuzzSnappyRoundtrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello hello hello hello"))
	f.Add(bytes.Repeat([]byte{0xab}, 70000)) // spans two encode blocks
	f.Add([]byte{0x04, 0x0c, 'a', 'b', 'c', 'd'})

	f.Fuzz(func(t *testing.T, data []byte) {
		enc := Encode(nil, data)
		dec, err := Decode(nil, enc)
		if err != nil {
			t.Fatalf("decoding our own encoding: %v", err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("roundtrip mismatch: %d bytes in, %d out", len(data), len(dec))
		}

		// Treat the raw input as a compressed stream; it must decode or
		// fail cleanly, never panic. Skip absurd claimed lengths so the
		// fuzzer does not spend its time allocating.
		if n, err := DecodedLen(data); err == nil && n <= 4<<20 {
			_, _ = Decode(nil, data)
		}
	})
}
