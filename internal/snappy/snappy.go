// Package snappy implements the Snappy block compression format from
// scratch using only the standard library. The paper's engine compresses
// and decompresses SSTable data blocks with Snappy (§V-A: "the Snappy
// compression method is often applied to save storage space. As a result,
// decompression is needed in Decoder"); both the software store and the
// FCAE simulator use this codec so output tables stay format-compatible.
//
// The implemented format is the raw block format: a uvarint preamble with
// the decoded length followed by a sequence of literal and copy elements.
package snappy

import (
	"encoding/binary"
	"errors"
)

var (
	// ErrCorrupt is returned when decoding malformed input.
	ErrCorrupt = errors.New("snappy: corrupt input")
	// ErrTooLarge is returned when the decoded length exceeds the
	// implementation limit.
	ErrTooLarge = errors.New("snappy: decoded block is too large")
)

const (
	tagLiteral = 0x00
	tagCopy1   = 0x01
	tagCopy2   = 0x02
	tagCopy4   = 0x03

	// maxBlockSize is the largest source block compressed as one unit;
	// inputs larger than this are split (matching the reference codec).
	maxBlockSize = 65536

	// maxDecodedLen bounds decode allocations against hostile input.
	maxDecodedLen = 1 << 30

	inputMargin            = 16 - 1
	minNonLiteralBlockSize = 1 + 1 + inputMargin
)

// MaxEncodedLen returns the worst-case encoded length for a source of n
// bytes, or -1 if n is negative or too large.
func MaxEncodedLen(n int) int {
	if n < 0 || uint64(n) > 0xffffffff {
		return -1
	}
	// Preamble plus one literal tag per 6 source bytes in the worst case,
	// matching the reference formula 32 + n + n/6.
	return 32 + n + n/6
}

// MinEncodedLen returns a lower bound on the encoded length of any n
// source bytes: the densest element the format allows is a copy-2 tag,
// whose 3 encoded bytes cover at most 64 source bytes, and the length
// preamble takes at least 1 byte. Used to bracket in-flight block sizes
// before their encodes resolve.
func MinEncodedLen(n int) int {
	return 1 + 3*n/64
}

// DecodedLen returns the decoded length of src without decoding it.
func DecodedLen(src []byte) (int, error) {
	n, w := binary.Uvarint(src)
	if w <= 0 {
		return 0, ErrCorrupt
	}
	if n > maxDecodedLen {
		return 0, ErrTooLarge
	}
	return int(n), nil
}

// Decode decompresses src, appending nothing: dst is used as the output
// buffer when large enough, otherwise a new buffer is allocated. It returns
// the decoded bytes.
func Decode(dst, src []byte) ([]byte, error) {
	dLen, err := DecodedLen(src)
	if err != nil {
		return nil, err
	}
	_, w := binary.Uvarint(src)
	src = src[w:]
	if cap(dst) < dLen {
		//fcae:alloc-ok grow-on-demand scratch: callers pass a reused dst, so steady state re-slices
		dst = make([]byte, dLen)
	} else {
		dst = dst[:dLen]
	}

	var d, s int
	for s < len(src) {
		tag := src[s]
		switch tag & 0x03 {
		case tagLiteral:
			x := int(tag >> 2)
			s++
			if x >= 60 {
				extra := x - 59
				if s+extra > len(src) {
					return nil, ErrCorrupt
				}
				x = 0
				for i := extra - 1; i >= 0; i-- {
					x = x<<8 | int(src[s+i])
				}
				s += extra
			}
			length := x + 1
			if length <= 0 || s+length > len(src) || d+length > dLen {
				return nil, ErrCorrupt
			}
			copy(dst[d:], src[s:s+length])
			d += length
			s += length

		case tagCopy1:
			if s+2 > len(src) {
				return nil, ErrCorrupt
			}
			length := int(tag>>2)&0x07 + 4
			offset := int(tag>>5)<<8 | int(src[s+1])
			s += 2
			if err := copyMatch(dst, &d, dLen, offset, length); err != nil {
				return nil, err
			}

		case tagCopy2:
			if s+3 > len(src) {
				return nil, ErrCorrupt
			}
			length := int(tag>>2) + 1
			offset := int(binary.LittleEndian.Uint16(src[s+1 : s+3]))
			s += 3
			if err := copyMatch(dst, &d, dLen, offset, length); err != nil {
				return nil, err
			}

		case tagCopy4:
			if s+5 > len(src) {
				return nil, ErrCorrupt
			}
			length := int(tag>>2) + 1
			offset := int(binary.LittleEndian.Uint32(src[s+1 : s+5]))
			s += 5
			if err := copyMatch(dst, &d, dLen, offset, length); err != nil {
				return nil, err
			}
		}
	}
	if d != dLen {
		return nil, ErrCorrupt
	}
	return dst, nil
}

// copyMatch applies a back-reference copy, which may self-overlap.
func copyMatch(dst []byte, d *int, dLen, offset, length int) error {
	if offset <= 0 || offset > *d || *d+length > dLen {
		return ErrCorrupt
	}
	for i := 0; i < length; i++ {
		dst[*d+i] = dst[*d+i-offset]
	}
	*d += length
	return nil
}

// Encode compresses src, returning the encoded block. dst is used when
// large enough.
func Encode(dst, src []byte) []byte {
	n := MaxEncodedLen(len(src))
	if n < 0 {
		panic("snappy: source too large")
	}
	if cap(dst) < n {
		//fcae:alloc-ok grow-on-demand scratch: callers pass a reused dst, so steady state re-slices
		dst = make([]byte, n)
	} else {
		dst = dst[:n]
	}

	d := binary.PutUvarint(dst, uint64(len(src)))
	for len(src) > 0 {
		p := src
		if len(p) > maxBlockSize {
			p, src = p[:maxBlockSize], src[maxBlockSize:]
		} else {
			src = nil
		}
		if len(p) < minNonLiteralBlockSize {
			d += emitLiteral(dst[d:], p)
		} else {
			d += encodeBlock(dst[d:], p)
		}
	}
	return dst[:d]
}

func emitLiteral(dst, lit []byte) int {
	i := 0
	n := len(lit) - 1
	switch {
	case n < 60:
		dst[0] = byte(n)<<2 | tagLiteral
		i = 1
	case n < 1<<8:
		dst[0] = 60<<2 | tagLiteral
		dst[1] = byte(n)
		i = 2
	case n < 1<<16:
		dst[0] = 61<<2 | tagLiteral
		dst[1] = byte(n)
		dst[2] = byte(n >> 8)
		i = 3
	case n < 1<<24:
		dst[0] = 62<<2 | tagLiteral
		dst[1] = byte(n)
		dst[2] = byte(n >> 8)
		dst[3] = byte(n >> 16)
		i = 4
	default:
		dst[0] = 63<<2 | tagLiteral
		binary.LittleEndian.PutUint32(dst[1:], uint32(n))
		i = 5
	}
	return i + copy(dst[i:], lit)
}

// emitCopy writes copy elements for a match of the given offset/length.
func emitCopy(dst []byte, offset, length int) int {
	i := 0
	// Emit 64-byte copies while the remaining length is large.
	for length >= 68 {
		dst[i] = 63<<2 | tagCopy2
		binary.LittleEndian.PutUint16(dst[i+1:], uint16(offset))
		i += 3
		length -= 64
	}
	if length > 64 {
		// Leave at least 4 bytes for the final copy.
		dst[i] = 59<<2 | tagCopy2
		binary.LittleEndian.PutUint16(dst[i+1:], uint16(offset))
		i += 3
		length -= 60
	}
	if length >= 12 || offset >= 2048 {
		dst[i] = byte(length-1)<<2 | tagCopy2
		binary.LittleEndian.PutUint16(dst[i+1:], uint16(offset))
		return i + 3
	}
	dst[i] = byte(offset>>8)<<5 | byte(length-4)<<2 | tagCopy1
	dst[i+1] = byte(offset)
	return i + 2
}

const (
	hashTableBits = 14
	hashTableSize = 1 << hashTableBits
)

func hash4(u uint32) uint32 {
	return (u * 0x1e35a7bd) >> (32 - hashTableBits)
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i : i+4])
}

// encodeBlock compresses one block (len(src) <= maxBlockSize) using a
// greedy hash-chain match finder like the reference implementation.
func encodeBlock(dst, src []byte) int {
	var table [hashTableSize]uint16

	sLimit := len(src) - inputMargin
	d := 0
	nextEmit := 0
	s := 1
	nextHash := hash4(load32(src, s))

	for {
		skip := 32
		nextS := s
		candidate := 0
		for {
			s = nextS
			bytesBetweenHashLookups := skip >> 5
			nextS = s + bytesBetweenHashLookups
			skip += bytesBetweenHashLookups
			if nextS > sLimit {
				goto emitRemainder
			}
			candidate = int(table[nextHash])
			table[nextHash] = uint16(s)
			nextHash = hash4(load32(src, nextS))
			if load32(src, s) == load32(src, candidate) {
				break
			}
		}

		d += emitLiteral(dst[d:], src[nextEmit:s])

		for {
			base := s
			s += 4
			i := candidate + 4
			for s < len(src) && src[i] == src[s] {
				i++
				s++
			}
			d += emitCopy(dst[d:], base-candidate, s-base)
			nextEmit = s
			if s >= sLimit {
				goto emitRemainder
			}

			x := load32(src, s-1)
			prevHash := hash4(x)
			table[prevHash] = uint16(s - 1)
			x = load32(src, s)
			currHash := hash4(x)
			candidate = int(table[currHash])
			table[currHash] = uint16(s)
			if x != load32(src, candidate) {
				nextHash = hash4(load32(src, s+1))
				s++
				break
			}
		}
	}

emitRemainder:
	if nextEmit < len(src) {
		d += emitLiteral(dst[d:], src[nextEmit:])
	}
	return d
}
