package snappy

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) {
	t.Helper()
	enc := Encode(nil, src)
	got, err := Decode(nil, enc)
	if err != nil {
		t.Fatalf("Decode after Encode(%d bytes): %v", len(src), err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: %d bytes in, %d out", len(src), len(got))
	}
}

func TestRoundTripEmpty(t *testing.T) { roundTrip(t, nil) }

func TestRoundTripShort(t *testing.T) {
	t.Parallel()
	roundTrip(t, []byte("a"))
	roundTrip(t, []byte("hello world"))
}

func TestRoundTripRepetitive(t *testing.T) {
	t.Parallel()
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 500))
	enc := Encode(nil, src)
	if len(enc) >= len(src)/4 {
		t.Errorf("repetitive text compressed to %d of %d bytes; expected strong compression", len(enc), len(src))
	}
	roundTrip(t, src)
}

func TestRoundTripIncompressible(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	src := make([]byte, 100000)
	rng.Read(src)
	enc := Encode(nil, src)
	if len(enc) > MaxEncodedLen(len(src)) {
		t.Fatalf("encoded %d bytes exceeds MaxEncodedLen %d", len(enc), MaxEncodedLen(len(src)))
	}
	roundTrip(t, src)
}

func TestRoundTripAllByteValues(t *testing.T) {
	t.Parallel()
	src := make([]byte, 256*7)
	for i := range src {
		src[i] = byte(i)
	}
	roundTrip(t, src)
}

func TestRoundTripLongRuns(t *testing.T) {
	t.Parallel()
	// Long runs exercise the 64-byte copy loop and overlapping copies.
	roundTrip(t, bytes.Repeat([]byte{0xaa}, 1<<16))
	roundTrip(t, bytes.Repeat([]byte("ab"), 40000))
}

func TestRoundTripMultiBlock(t *testing.T) {
	t.Parallel()
	// Inputs above 64 KiB are split into multiple encoded blocks.
	rng := rand.New(rand.NewSource(5))
	src := make([]byte, 3*65536+17)
	for i := range src {
		if rng.Intn(4) == 0 {
			src[i] = byte(rng.Intn(256))
		} else {
			src[i] = byte(i % 31)
		}
	}
	roundTrip(t, src)
}

func TestQuickRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(src []byte) bool {
		enc := Encode(nil, src)
		got, err := Decode(nil, enc)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripStructured(t *testing.T) {
	t.Parallel()
	// Structured inputs with repeats exercise the copy paths more than
	// quick's random bytes.
	rng := rand.New(rand.NewSource(99))
	words := []string{"alpha", "beta", "gamma", "delta", "zipf", "0000001"}
	for i := 0; i < 300; i++ {
		var b bytes.Buffer
		n := rng.Intn(5000)
		for b.Len() < n {
			b.WriteString(words[rng.Intn(len(words))])
		}
		roundTrip(t, b.Bytes())
	}
}

func TestDecodedLen(t *testing.T) {
	t.Parallel()
	src := []byte("some text worth compressing, some text worth compressing")
	enc := Encode(nil, src)
	n, err := DecodedLen(enc)
	if err != nil || n != len(src) {
		t.Fatalf("DecodedLen = %d, %v; want %d", n, err, len(src))
	}
}

func TestDecodeCorruptInputs(t *testing.T) {
	t.Parallel()
	cases := [][]byte{
		{},                       // no preamble
		{0x80},                   // truncated varint
		{0x03, 0x0c, 'a'},        // literal longer than remaining input
		{0x02, 0x01, 0x01},       // copy with offset 257 > produced bytes... offset encoding
		{0x05, 0xf0, 0xff},       // literal length overruns
		{0x04, 0x0d, 0x01, 0x00}, // copy before any output
		{0x01, 0x00, 'a', 'b'},   // trailing garbage after full output
	}
	for i, c := range cases {
		if _, err := Decode(nil, c); err == nil {
			t.Errorf("case %d: Decode accepted corrupt input %x", i, c)
		}
	}
}

func TestDecodeRejectsHugeLength(t *testing.T) {
	t.Parallel()
	// Preamble claiming 2^40 bytes must not allocate.
	pre := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x20}
	if _, err := Decode(nil, pre); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestMaxEncodedLen(t *testing.T) {
	t.Parallel()
	if MaxEncodedLen(-1) != -1 {
		t.Error("negative length must return -1")
	}
	if MaxEncodedLen(0) <= 0 {
		t.Error("zero length still needs preamble space")
	}
}

func TestEncodeReusesDst(t *testing.T) {
	t.Parallel()
	src := []byte("reuse me, reuse me, reuse me")
	dst := make([]byte, 0, MaxEncodedLen(len(src)))
	enc := Encode(dst, src)
	if &enc[0] != &dst[:1][0] {
		t.Error("Encode should reuse a sufficiently large dst")
	}
}

func BenchmarkEncode4KBlock(b *testing.B) {
	src := bytes.Repeat([]byte("key-000001value-padding-"), 4096/24)
	b.SetBytes(int64(len(src)))
	var dst []byte
	for i := 0; i < b.N; i++ {
		dst = Encode(dst[:0], src)
	}
}

func BenchmarkDecode4KBlock(b *testing.B) {
	src := bytes.Repeat([]byte("key-000001value-padding-"), 4096/24)
	enc := Encode(nil, src)
	b.SetBytes(int64(len(src)))
	var dst []byte
	var err error
	for i := 0; i < b.N; i++ {
		dst, err = Decode(dst, enc)
		if err != nil {
			b.Fatal(err)
		}
	}
}
