package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetSet(t *testing.T) {
	t.Parallel()
	c := New(1 << 20)
	k := Key{ID: 1, Offset: 0}
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache returned a value")
	}
	c.Set(k, []byte("hello"))
	v, ok := c.Get(k)
	if !ok || string(v) != "hello" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
}

func TestUpdateExisting(t *testing.T) {
	t.Parallel()
	c := New(1 << 20)
	k := Key{ID: 1, Offset: 8}
	c.Set(k, []byte("v1"))
	c.Set(k, []byte("v2-longer"))
	v, ok := c.Get(k)
	if !ok || string(v) != "v2-longer" {
		t.Fatalf("Get = %q", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestEvictionBoundsSize(t *testing.T) {
	t.Parallel()
	c := New(16 * 1024)
	for i := 0; i < 1000; i++ {
		c.Set(Key{ID: uint64(i), Offset: uint64(i)}, make([]byte, 256))
	}
	if c.Size() > 16*1024 {
		t.Fatalf("cache size %d exceeds capacity", c.Size())
	}
	if c.Len() == 0 {
		t.Fatal("cache should retain recent entries")
	}
}

func TestLRUOrder(t *testing.T) {
	t.Parallel()
	// Single-shard-sized capacity to make eviction deterministic per shard:
	// use keys that land in the same shard by fixing ID and offset pattern.
	c := New(shardCount * 300)
	base := Key{ID: 42, Offset: 0}
	sh := c.shard(base)
	// Pick offsets that map to the same shard as base.
	var sameShard []Key
	for off := uint64(0); len(sameShard) < 3; off++ {
		k := Key{ID: 42, Offset: off}
		if c.shard(k) == sh {
			sameShard = append(sameShard, k)
		}
	}
	c.Set(sameShard[0], make([]byte, 150))
	c.Set(sameShard[1], make([]byte, 100))
	// Touch [0] so [1] becomes LRU.
	c.Get(sameShard[0])
	// Inserting 100 more bytes must evict [1], not [0].
	c.Set(sameShard[2], make([]byte, 100))
	if _, ok := c.Get(sameShard[0]); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Get(sameShard[1]); ok {
		t.Fatal("LRU entry survived over-capacity insert")
	}
}

func TestEvictFile(t *testing.T) {
	t.Parallel()
	c := New(1 << 20)
	for i := 0; i < 50; i++ {
		c.Set(Key{ID: 7, Offset: uint64(i)}, []byte("a"))
		c.Set(Key{ID: 8, Offset: uint64(i)}, []byte("b"))
	}
	c.EvictFile(7)
	for i := 0; i < 50; i++ {
		if _, ok := c.Get(Key{ID: 7, Offset: uint64(i)}); ok {
			t.Fatal("file 7 entry survived EvictFile")
		}
		if _, ok := c.Get(Key{ID: 8, Offset: uint64(i)}); !ok {
			t.Fatal("file 8 entry evicted wrongly")
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	t.Parallel()
	c := New(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := Key{ID: uint64(g), Offset: uint64(i % 100)}
				c.Set(k, []byte(fmt.Sprintf("%d-%d", g, i)))
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkGetHit(b *testing.B) {
	c := New(64 << 20)
	for i := 0; i < 1000; i++ {
		c.Set(Key{ID: 1, Offset: uint64(i)}, make([]byte, 4096))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(Key{ID: 1, Offset: uint64(i % 1000)}); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkSetEvict(b *testing.B) {
	c := New(1 << 20)
	block := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Set(Key{ID: uint64(i), Offset: uint64(i)}, block)
	}
}
