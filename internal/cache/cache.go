// Package cache implements a sharded LRU cache, used as the store's block
// cache. Entries are keyed by (file id, block offset) and charged by byte
// size.
package cache

import (
	"sync"
	"sync/atomic"
)

const shardCount = 16

// Key identifies a cached block.
type Key struct {
	ID     uint64 // table file number
	Offset uint64 // block offset within the file
}

// Cache is a fixed-capacity sharded LRU. The zero value is unusable; call
// New.
type Cache struct {
	hits   atomic.Int64
	misses atomic.Int64
	shards [shardCount]shard
}

// New returns a cache bounded to capacity bytes in total.
func New(capacity int64) *Cache {
	c := &Cache{}
	per := capacity / shardCount
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].capacity = per
		c.shards[i].table = make(map[Key]*entry)
	}
	return c
}

func (c *Cache) shard(k Key) *shard {
	h := k.ID*0x9e3779b97f4a7c15 + k.Offset
	return &c.shards[(h>>32)%shardCount]
}

// Get returns the cached value for k, if present.
func (c *Cache) Get(k Key) ([]byte, bool) {
	v, ok := c.shard(k).get(k)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// Stats returns the lifetime hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) { return c.hits.Load(), c.misses.Load() }

// Set inserts v under k, evicting LRU entries to stay within capacity.
func (c *Cache) Set(k Key, v []byte) { c.shard(k).set(k, v) }

// EvictFile drops all entries belonging to file id.
func (c *Cache) EvictFile(id uint64) {
	for i := range c.shards {
		c.shards[i].evictFile(id)
	}
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].table)
		c.shards[i].mu.Unlock()
	}
	return n
}

// Size returns the resident bytes.
func (c *Cache) Size() int64 {
	var n int64
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].used
		c.shards[i].mu.Unlock()
	}
	return n
}

type entry struct {
	key        Key
	value      []byte
	prev, next *entry
}

// shard is one LRU segment. The sentinel head's next is the most recently
// used entry.
type shard struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	table    map[Key]*entry
	head     entry // sentinel; head.next = MRU, head.prev = LRU
	init     bool
}

func (s *shard) lazyInitLocked() {
	if !s.init {
		s.head.next = &s.head
		s.head.prev = &s.head
		s.init = true
	}
}

func (s *shard) get(k Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lazyInitLocked()
	e, ok := s.table[k]
	if !ok {
		return nil, false
	}
	s.unlinkLocked(e)
	s.pushFrontLocked(e)
	return e.value, true
}

func (s *shard) set(k Key, v []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lazyInitLocked()
	if e, ok := s.table[k]; ok {
		s.used += int64(len(v)) - int64(len(e.value))
		e.value = v
		s.unlinkLocked(e)
		s.pushFrontLocked(e)
	} else {
		e := &entry{key: k, value: v}
		s.table[k] = e
		s.pushFrontLocked(e)
		s.used += int64(len(v))
	}
	for s.used > s.capacity && s.head.prev != &s.head {
		s.evictLocked(s.head.prev)
	}
}

func (s *shard) evictFile(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lazyInitLocked()
	for k, e := range s.table {
		if k.ID == id {
			s.evictLocked(e)
		}
	}
}

func (s *shard) evictLocked(e *entry) {
	s.unlinkLocked(e)
	delete(s.table, e.key)
	s.used -= int64(len(e.value))
}

func (s *shard) unlinkLocked(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (s *shard) pushFrontLocked(e *entry) {
	e.prev = &s.head
	e.next = s.head.next
	e.prev.next = e
	e.next.prev = e
}
