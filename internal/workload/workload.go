// Package workload provides the key/value and request-distribution
// generators behind the db_bench and YCSB style benchmarks (paper §VII-A:
// "the built-in benchmark of LevelDB, db_bench, and YCSB benchmark are
// used"). Generators are deterministic given a seed.
package workload

import (
	"encoding/binary"
	"math"
	"math/rand"
)

// KeyGen produces fixed-width keys for a chosen ordering.
type KeyGen struct {
	Width int
	buf   []byte
}

// NewKeyGen returns a generator of width-byte keys (paper default: 16).
func NewKeyGen(width int) *KeyGen {
	if width < 8 {
		width = 8
	}
	return &KeyGen{Width: width, buf: make([]byte, width)}
}

// Key renders index i as a zero-padded big-endian decimal key, so numeric
// order equals lexicographic order. The returned slice is reused.
func (g *KeyGen) Key(i uint64) []byte {
	for p := range g.buf {
		g.buf[p] = '0'
	}
	pos := g.Width - 1
	for i > 0 && pos >= 0 {
		g.buf[pos] = byte('0' + i%10)
		i /= 10
		pos--
	}
	return g.buf
}

// ValueGen produces values with a target compressibility, like db_bench's
// RandomGenerator: a large pseudo-random buffer built from repeated
// snippets, sliced per request.
type ValueGen struct {
	data []byte
	pos  int
	size int
}

// NewRand returns the deterministic stream the generators draw from.
// Passing one shared stream to several *Rand constructors makes an entire
// benchmark run a function of a single seed; the seed-taking constructors
// below each derive an independent stream instead.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// NewValueGen returns a generator of size-byte values whose snappy
// compression ratio is roughly ratio (0.5 matches db_bench's default).
func NewValueGen(size int, ratio float64, seed int64) *ValueGen {
	return NewValueGenRand(size, ratio, NewRand(seed))
}

// NewValueGenRand is NewValueGen drawing from an injected stream.
func NewValueGenRand(size int, ratio float64, rng *rand.Rand) *ValueGen {
	if size < 1 {
		size = 1
	}
	if ratio <= 0 || ratio > 1 {
		ratio = 0.5
	}
	// Compose ~1 MiB from snippets of length raw = 100*ratio repeated to
	// 100 bytes, the db_bench trick for tunable compressibility.
	raw := int(100 * ratio)
	if raw < 1 {
		raw = 1
	}
	var data []byte
	for len(data) < 1<<20 {
		snippet := make([]byte, raw)
		for i := range snippet {
			snippet[i] = byte(' ' + rng.Intn(95))
		}
		for len(snippet) < 100 {
			snippet = append(snippet, snippet[:min(raw, 100-len(snippet))]...)
		}
		data = append(data, snippet...)
	}
	return &ValueGen{data: data, size: size}
}

// Value returns the next value slice. The slice aliases the generator's
// buffer and is valid until the next call.
func (v *ValueGen) Value() []byte {
	if v.pos+v.size > len(v.data) {
		v.pos = 0
	}
	out := v.data[v.pos : v.pos+v.size]
	v.pos += v.size + 7
	if v.pos >= len(v.data)-v.size {
		v.pos %= 97
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Sequence yields key indices for a request distribution.
type Sequence interface {
	// Next returns the next key index in [0, N).
	Next() uint64
}

// Sequential counts 0,1,2,... (db_bench fillseq).
type Sequential struct{ next uint64 }

// Next implements Sequence.
func (s *Sequential) Next() uint64 {
	i := s.next
	s.next++
	return i
}

// Uniform samples uniformly from [0, N).
type Uniform struct {
	N   uint64
	rng *rand.Rand
}

// NewUniform returns a uniform sampler over [0, n).
func NewUniform(n uint64, seed int64) *Uniform {
	return NewUniformRand(n, NewRand(seed))
}

// NewUniformRand is NewUniform drawing from an injected stream.
func NewUniformRand(n uint64, rng *rand.Rand) *Uniform {
	return &Uniform{N: n, rng: rng}
}

// Next implements Sequence.
func (u *Uniform) Next() uint64 { return uint64(u.rng.Int63n(int64(u.N))) }

// Zipfian samples from a zipfian distribution over [0, N) using the
// Gray et al. rejection-free method, as in the YCSB reference client.
type Zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
	// scramble spreads popular items across the key space, as YCSB's
	// ScrambledZipfian does, so hot keys are not all adjacent.
	scramble bool
}

// ZipfianTheta is YCSB's default skew.
const ZipfianTheta = 0.99

// NewZipfian returns a scrambled zipfian sampler over [0, n).
func NewZipfian(n uint64, seed int64) *Zipfian {
	return NewZipfianRand(n, NewRand(seed))
}

// NewZipfianRand is NewZipfian drawing from an injected stream.
func NewZipfianRand(n uint64, rng *rand.Rand) *Zipfian {
	z := &Zipfian{n: n, theta: ZipfianTheta, rng: rng, scramble: true}
	z.zetan = zeta(n, z.theta)
	z.alpha = 1 / (1 - z.theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-z.theta)) / (1 - zeta(2, z.theta)/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	// Exact for small n; approximate by integral beyond a cutoff to keep
	// construction O(1)-ish for huge key spaces.
	const cutoff = 1 << 20
	var sum float64
	m := n
	if m > cutoff {
		m = cutoff
	}
	for i := uint64(1); i <= m; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	if n > m {
		// ∫ x^-theta dx from m to n.
		sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(m), 1-theta)) / (1 - theta)
	}
	return sum
}

// Next implements Sequence.
func (z *Zipfian) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if rank >= z.n {
		rank = z.n - 1
	}
	if z.scramble {
		return fnv64(rank) % z.n
	}
	return rank
}

// Latest favors recently inserted keys (YCSB's "latest" distribution):
// rank r from a zipfian is mapped to maxKey - r.
type Latest struct {
	z      *Zipfian
	MaxKey uint64
}

// NewLatest returns a latest-distribution sampler; call Observe as inserts
// grow the key space.
func NewLatest(n uint64, seed int64) *Latest {
	return NewLatestRand(n, NewRand(seed))
}

// NewLatestRand is NewLatest drawing from an injected stream.
func NewLatestRand(n uint64, rng *rand.Rand) *Latest {
	z := NewZipfianRand(n, rng)
	z.scramble = false
	return &Latest{z: z, MaxKey: n - 1}
}

// Observe advances the newest key index after an insert.
func (l *Latest) Observe(max uint64) {
	if max > l.MaxKey {
		l.MaxKey = max
	}
}

// Next implements Sequence.
func (l *Latest) Next() uint64 {
	r := l.z.Next()
	if r > l.MaxKey {
		return 0
	}
	return l.MaxKey - r
}

// fnv64 hashes x for key scrambling.
func fnv64(x uint64) uint64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// Op is one client operation kind.
type Op int

// Operation kinds for mixed workloads.
const (
	OpRead Op = iota
	OpUpdate
	OpInsert
	OpScan
	OpRMW
)

// Mix selects operations according to YCSB workload proportions.
type Mix struct {
	cum [5]float64
	rng *rand.Rand
}

// NewMix returns an operation chooser; fractions must sum to ~1.
func NewMix(read, update, insert, scan, rmw float64, seed int64) *Mix {
	return NewMixRand(read, update, insert, scan, rmw, NewRand(seed))
}

// NewMixRand is NewMix drawing from an injected stream.
func NewMixRand(read, update, insert, scan, rmw float64, rng *rand.Rand) *Mix {
	m := &Mix{rng: rng}
	m.cum[0] = read
	m.cum[1] = m.cum[0] + update
	m.cum[2] = m.cum[1] + insert
	m.cum[3] = m.cum[2] + scan
	m.cum[4] = m.cum[3] + rmw
	return m
}

// Next implements the operation choice.
func (m *Mix) Next() Op {
	u := m.rng.Float64() * m.cum[4]
	for i, c := range m.cum {
		if u < c {
			return Op(i)
		}
	}
	return OpRead
}
