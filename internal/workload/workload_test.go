package workload

import (
	"bytes"
	"testing"

	"fcae/internal/snappy"
)

func TestKeyGenWidthAndOrder(t *testing.T) {
	t.Parallel()
	g := NewKeyGen(16)
	prev := append([]byte(nil), g.Key(0)...)
	for i := uint64(1); i < 1000; i++ {
		k := g.Key(i * 7)
		if len(k) != 16 {
			t.Fatalf("key width %d", len(k))
		}
		if bytes.Compare(prev, k) >= 0 {
			t.Fatalf("keys not ordered: %q >= %q", prev, k)
		}
		prev = append(prev[:0], k...)
	}
}

func TestValueGenCompressibility(t *testing.T) {
	t.Parallel()
	for _, ratio := range []float64{0.25, 0.5, 1.0} {
		g := NewValueGen(4096, ratio, 1)
		var total, comp int
		for i := 0; i < 50; i++ {
			v := g.Value()
			enc := snappy.Encode(nil, v)
			total += len(v)
			comp += len(enc)
		}
		got := float64(comp) / float64(total)
		if got < ratio-0.25 || got > ratio+0.3 {
			t.Errorf("ratio %.2f: compressed to %.2f", ratio, got)
		}
	}
}

func TestValueGenSize(t *testing.T) {
	t.Parallel()
	g := NewValueGen(512, 0.5, 2)
	for i := 0; i < 10000; i++ {
		if len(g.Value()) != 512 {
			t.Fatal("value size drifted")
		}
	}
}

func TestSequential(t *testing.T) {
	t.Parallel()
	var s Sequential
	for i := uint64(0); i < 100; i++ {
		if s.Next() != i {
			t.Fatal("sequential broke")
		}
	}
}

func TestUniformInRangeAndSpread(t *testing.T) {
	t.Parallel()
	u := NewUniform(1000, 3)
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		k := u.Next()
		if k >= 1000 {
			t.Fatalf("out of range: %d", k)
		}
		seen[k] = true
	}
	if len(seen) < 900 {
		t.Fatalf("uniform hit only %d of 1000 keys", len(seen))
	}
}

func TestZipfianSkew(t *testing.T) {
	t.Parallel()
	z := NewZipfian(100000, 5)
	counts := make(map[uint64]int)
	const n = 200000
	for i := 0; i < n; i++ {
		k := z.Next()
		if k >= 100000 {
			t.Fatalf("out of range: %d", k)
		}
		counts[k]++
	}
	// The hottest key should take a few percent of requests; the
	// distribution must be far from uniform.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < n/100 {
		t.Fatalf("hottest key got %d of %d: not zipfian", max, n)
	}
	if len(counts) < 1000 {
		t.Fatalf("only %d distinct keys: too concentrated", len(counts))
	}
}

func TestZipfianHugeKeySpace(t *testing.T) {
	t.Parallel()
	// Construction must stay fast and sane for billion-key spaces.
	z := NewZipfian(2_000_000_000, 7)
	for i := 0; i < 1000; i++ {
		if k := z.Next(); k >= 2_000_000_000 {
			t.Fatalf("out of range: %d", k)
		}
	}
}

func TestLatestFavorsRecent(t *testing.T) {
	t.Parallel()
	l := NewLatest(100000, 9)
	recent := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if k := l.Next(); k > 90000 {
			recent++
		}
	}
	// The newest 10% of keys should absorb well over half the reads.
	if recent < n/2 {
		t.Fatalf("only %d/%d reads hit the newest 10%%", recent, n)
	}
	l.Observe(200000)
	if l.MaxKey != 200000 {
		t.Fatal("Observe did not advance")
	}
}

func TestMixProportions(t *testing.T) {
	t.Parallel()
	m := NewMix(0.5, 0.5, 0, 0, 0, 11)
	var reads, updates int
	for i := 0; i < 100000; i++ {
		switch m.Next() {
		case OpRead:
			reads++
		case OpUpdate:
			updates++
		default:
			t.Fatal("unexpected op kind")
		}
	}
	if reads < 48000 || reads > 52000 {
		t.Fatalf("50/50 mix gave %d reads", reads)
	}
	_ = updates
}

func TestMixAllKinds(t *testing.T) {
	t.Parallel()
	m := NewMix(0.2, 0.2, 0.2, 0.2, 0.2, 13)
	seen := map[Op]bool{}
	for i := 0; i < 1000; i++ {
		seen[m.Next()] = true
	}
	for _, op := range []Op{OpRead, OpUpdate, OpInsert, OpScan, OpRMW} {
		if !seen[op] {
			t.Fatalf("op %d never chosen", op)
		}
	}
}

func TestInjectedRandReproducible(t *testing.T) {
	t.Parallel()
	sample := func() []uint64 {
		rng := NewRand(99)
		z := NewZipfianRand(1000, rng)
		m := NewMixRand(0.5, 0.5, 0, 0, 0, rng)
		var out []uint64
		for i := 0; i < 200; i++ {
			out = append(out, z.Next(), uint64(m.Next()))
		}
		return out
	}
	a, b := sample(), sample()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %d != %d", i, a[i], b[i])
		}
	}
}
