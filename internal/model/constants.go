// Package model holds the calibrated timing models that stand in for the
// paper's measured hardware: the CPU compaction cost model (i7-8700K @
// 3.7 GHz running LevelDB's single-thread merge), the PCIe gen3 x16 link,
// and the storage device. Every constant is fitted against a specific
// table or figure of the paper; EXPERIMENTS.md records the residuals.
package model

import "time"

// CPU compaction cost model, fitted against Table V's CPU column
// (compaction speed 5.3-14.8 MB/s for value lengths 64-2048 at N=2).
//
// The per-pair time is
//
//	t = (Fixed + KeyByte*Lkey + ValueByte*Lvalue + Spill*max(0,Lvalue-SpillAt))
//	    * MergePenalty(N)
//
// where MergePenalty models the deeper compare tree and extra input
// switching of a wider merge (fitted so the 9-input CPU baseline lands
// near 1/2.26 of the 2-input speed, reproducing Fig 13's 92x peak).
const (
	// CPUFixedPerPair covers varint parsing, iterator bookkeeping, crc and
	// branch costs independent of entry size.
	CPUFixedPerPair = 10440 * time.Nanosecond
	// CPUPerKeyByte is charged per internal-key byte (decode+compare+encode).
	CPUPerKeyByte = 60 * time.Nanosecond
	// CPUPerValueByte is charged per value byte (copy + snappy in/out).
	CPUPerValueByte = 60 * time.Nanosecond
	// CPUSpillPerByte adds cache-spill cost for value bytes past CPUSpillAt,
	// reproducing Table V's CPU slowdown at 2048-byte values.
	CPUSpillPerByte = 30 * time.Nanosecond
	// CPUSpillAt is the value length where the working set leaves L2.
	CPUSpillAt = 1024
	// CPUMergePenaltyPerLevel scales per-pair cost for each doubling of
	// the merge width beyond two inputs.
	CPUMergePenaltyPerLevel = 0.42
)

// CPUMergePenalty returns the multiplicative cost of an n-way merge.
func CPUMergePenalty(n int) float64 {
	if n < 2 {
		n = 2
	}
	levels := ceilLog2(n)
	return 1 + CPUMergePenaltyPerLevel*float64(levels-1)
}

// CPUPairTime returns the modeled single-thread CPU time to merge one
// key-value pair of the given sizes in an n-way compaction.
func CPUPairTime(keyLen, valueLen, n int) time.Duration {
	t := float64(CPUFixedPerPair) +
		float64(CPUPerKeyByte)*float64(keyLen) +
		float64(CPUPerValueByte)*float64(valueLen)
	if valueLen > CPUSpillAt {
		t += float64(CPUSpillPerByte) * float64(valueLen-CPUSpillAt)
	}
	return time.Duration(t * CPUMergePenalty(n))
}

// PCIe gen3 x16 between host and the FPGA card (paper §VII-A). The
// effective data rate is below the 15.75 GB/s line rate due to TLP
// overhead and DMA setup; Table VIII's transfer percentages calibrate it.
// The per-transfer latency covers DMA descriptor setup, driver syscalls
// and the host-side staging memcpy; it dominates for compaction-sized
// buffers and is what makes Table VIII's transfer share fall from ~9% on
// small datasets (frequent compactions) to <1% at 1 TB (compaction rate
// throttled by deep-level work).
const (
	// PCIeBandwidth is the effective DMA bandwidth in bytes/second,
	// including the host-side staging memcpy (well under the gen3 x16
	// line rate).
	PCIeBandwidth = 2.0e9
	// PCIeLatency is the fixed per-transfer setup cost.
	PCIeLatency = 300 * time.Microsecond
)

// PCIeTransferTime models one DMA of n bytes.
func PCIeTransferTime(n int64) time.Duration {
	return PCIeLatency + time.Duration(float64(n)/PCIeBandwidth*float64(time.Second))
}

// Storage device model for the end-to-end simulation: an NVMe-class SSD.
// The paper's modest absolute write throughput (2-3 MB/s random load on
// LevelDB, Table VI) is compaction-bound, not device-bound.
const (
	// DiskWriteBandwidth is the sequential write rate in bytes/second.
	DiskWriteBandwidth = 900e6
	// DiskReadBandwidth is the sequential read rate in bytes/second.
	DiskReadBandwidth = 1.2e9
	// DiskOpLatency is the fixed per-request latency.
	DiskOpLatency = 80 * time.Microsecond
)

// DiskWriteTime models writing n bytes sequentially.
func DiskWriteTime(n int64) time.Duration {
	return DiskOpLatency + time.Duration(float64(n)/DiskWriteBandwidth*float64(time.Second))
}

// DiskReadTime models reading n bytes sequentially.
func DiskReadTime(n int64) time.Duration {
	return DiskOpLatency + time.Duration(float64(n)/DiskReadBandwidth*float64(time.Second))
}

// WAL + memtable insert cost per write on the foreground path, calibrated
// against Table VI's LevelDB throughput ceiling for small data sizes
// (Fig 10 shows ~12 MB/s at 0.2 GB where compaction pressure is low).
const (
	// WriteFixed is the per-operation foreground cost (WAL append, memtable
	// skiplist insert, batching overhead).
	WriteFixed = 10 * time.Microsecond
	// WritePerByte is the per-byte foreground cost (WAL write + entry copy).
	WritePerByte = 75 * time.Nanosecond
)

// Live (in-system) CPU compaction cost, used by the end-to-end simulation.
// The isolated Table V harness pays cold caches and per-pair
// instrumentation that the steady-state background thread does not, so its
// per-pair cost overstates the live cost, especially for short entries.
// The live model is fitted against Table VI's LevelDB column (2.3-2.9 MB/s
// roughly flat across value lengths):
const (
	// CPULiveFixedPerPair is the per-entry cost of the live merge loop.
	CPULiveFixedPerPair = 1500 * time.Nanosecond
	// CPULivePerByte is the live per-byte merge cost.
	CPULivePerByte = 35 * time.Nanosecond
)

// CPULivePairTime returns the in-system per-pair merge cost for an n-way
// compaction.
func CPULivePairTime(keyLen, valueLen, n int) time.Duration {
	t := float64(CPULiveFixedPerPair) + float64(CPULivePerByte)*float64(keyLen+valueLen)
	_ = n // the live heap merge amortizes compare depth; width is ignored
	return time.Duration(t)
}

// WriteTime models the foreground cost of inserting one entry.
func WriteTime(entryBytes int) time.Duration {
	return WriteFixed + time.Duration(entryBytes)*WritePerByte
}

// Flush cost: dumping one memtable entry to an L0 table (skiplist scan,
// block encode, checksum). Flushing is far cheaper per pair than merging.
const (
	// FlushFixedPerEntry is the per-entry CPU cost of a flush.
	FlushFixedPerEntry = 2 * time.Microsecond
	// FlushPerByte is the per-byte encode cost of a flush.
	FlushPerByte = 12 * time.Nanosecond
)

// FlushPerEntry returns the CPU time to flush one entry.
func FlushPerEntry(keyLen, valueLen int) time.Duration {
	return FlushFixedPerEntry + time.Duration(keyLen+valueLen)*FlushPerByte
}

// Read path cost model for the YCSB experiments (Fig 16).
const (
	// ReadMemHit is the cost of a memtable or block-cache hit.
	ReadMemHit = 4 * time.Microsecond
	// ReadDiskSeek is the cost of loading a block from the device.
	ReadDiskSeek = 90 * time.Microsecond
	// ReadPerLevelProbe is the per-level bloom/index probe cost.
	ReadPerLevelProbe = 1 * time.Microsecond
)

// ceilLog2 returns ceil(log2(n)) for n >= 1.
func ceilLog2(n int) int {
	l, v := 0, 1
	for v < n {
		v <<= 1
		l++
	}
	return l
}

// CeilLog2 is the exported form used by the engine's Comparer model
// (paper Table II: comparer period is (2+ceil(log2 N)) * Lkey).
func CeilLog2(n int) int { return ceilLog2(n) }
