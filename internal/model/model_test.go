package model

import (
	"testing"
	"time"
)

// TestCPUPairTimeMatchesTableV checks the calibrated CPU model against the
// paper's measured compaction speeds (Table V, CPU column) within 20%.
func TestCPUPairTimeMatchesTableV(t *testing.T) {
	t.Parallel()
	paper := map[int]float64{64: 5.3, 128: 6.9, 256: 9.0, 512: 12.2, 1024: 14.8, 2048: 13.3}
	for lv, want := range paper {
		bytesPerPair := float64(16 + 8 + lv + 6)
		speed := bytesPerPair / CPUPairTime(24, lv, 2).Seconds() / 1e6
		if speed < want*0.8 || speed > want*1.25 {
			t.Errorf("Lvalue=%d: modeled CPU speed %.1f MB/s, paper %.1f", lv, speed, want)
		}
	}
}

func TestCPUSpillKicksInAboveThreshold(t *testing.T) {
	t.Parallel()
	below := CPUPairTime(24, CPUSpillAt, 2)
	above := CPUPairTime(24, CPUSpillAt+512, 2)
	linear := below + 512*CPUPerValueByte
	if above <= linear {
		t.Fatal("spill term missing above the threshold")
	}
}

func TestCPUMergePenaltyMonotonic(t *testing.T) {
	t.Parallel()
	if CPUMergePenalty(2) != 1 {
		t.Fatalf("2-way penalty = %v, want 1", CPUMergePenalty(2))
	}
	prev := 0.0
	for _, n := range []int{2, 3, 5, 9, 17} {
		p := CPUMergePenalty(n)
		if p < prev {
			t.Fatalf("penalty not monotonic at n=%d", n)
		}
		prev = p
	}
	// Fig 13 calibration: the 9-way merge costs ~2.26x the 2-way merge.
	if p := CPUMergePenalty(9); p < 2.0 || p > 2.5 {
		t.Fatalf("9-way penalty = %.2f, want ~2.26", p)
	}
}

func TestPCIeTransferTime(t *testing.T) {
	t.Parallel()
	small := PCIeTransferTime(0)
	if small != PCIeLatency {
		t.Fatalf("zero-byte transfer = %v", small)
	}
	gb := PCIeTransferTime(1 << 30)
	if gb < 400*time.Millisecond || gb > 700*time.Millisecond {
		t.Fatalf("1 GiB transfer = %v, expected ~0.54s at 2 GB/s", gb)
	}
}

func TestDiskTimes(t *testing.T) {
	t.Parallel()
	if DiskWriteTime(0) != DiskOpLatency {
		t.Fatal("zero write should cost only latency")
	}
	w := DiskWriteTime(900e6)
	if w < time.Second || w > 1100*time.Millisecond {
		t.Fatalf("900 MB write = %v, want ~1s", w)
	}
	if DiskReadTime(1<<20) >= DiskWriteTime(1<<20) {
		t.Fatal("reads should be faster than writes")
	}
}

func TestWriteTimeScales(t *testing.T) {
	t.Parallel()
	if WriteTime(2048) <= WriteTime(64) {
		t.Fatal("write cost must grow with entry size")
	}
}

func TestFlushCheaperThanLiveMerge(t *testing.T) {
	t.Parallel()
	if FlushPerEntry(24, 512) >= CPULivePairTime(24, 512, 2) {
		t.Fatal("flushing a pair must cost less than merging it")
	}
}

func TestCeilLog2(t *testing.T) {
	t.Parallel()
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5}
	for n, want := range cases {
		if got := CeilLog2(n); got != want {
			t.Errorf("CeilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}
