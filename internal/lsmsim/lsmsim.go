// Package lsmsim models the whole key-value store on a virtual clock for
// the paper's end-to-end experiments (Figs 10, 14, 15, 16; Tables VI and
// VIII). It reproduces the contention the paper measures — foreground
// writes vs background flush and compaction, write stalls, the FPGA
// offload freeing the host core — at data sizes (up to 1 TB) that would be
// impractical to materialize. The timing constants come from
// internal/model and the engine pipeline model in internal/core.
package lsmsim

import (
	"time"

	"fcae/internal/core"
	"fcae/internal/model"
	"fcae/internal/sim"
)

// Backend selects the compaction execution engine.
type Backend int

const (
	// BackendCPU is the software baseline: original LevelDB with two host
	// cores (paper §VII-A: "LevelDB runs with 2 CPU cores").
	BackendCPU Backend = iota
	// BackendFCAE offloads merges to the engine: one host core plus the
	// FPGA card ("LevelDB-FCAE runs with 1 CPU core + FPGA card").
	BackendFCAE
)

func (b Backend) String() string {
	switch b {
	case BackendCPU:
		return "LevelDB"
	case BackendFCAE:
		return "LevelDB-FCAE"
	}
	return "unknown"
}

// Config parameterizes one simulated run; zero fields take the paper's
// defaults (Table IV).
type Config struct {
	KeyLen    int   // user key bytes (default 16)
	ValueLen  int   // value bytes (default 128)
	DataBytes int64 // total payload to write

	MemTableBytes  int64
	BlockSize      int
	LevelRatio     int
	BaseLevelBytes int64
	FileBytes      int64 // compaction output table size (2 MiB)

	L0Trigger  int
	L0Slowdown int
	L0Stop     int

	Backend Backend
	Engine  core.Config // engine configuration for BackendFCAE

	// DiskCompression is the on-disk bytes per payload byte after snappy
	// (db_bench's synthetic values compress about 2:1; set 1.0 for
	// incompressible data). Affects table sizes, disk and PCIe traffic.
	DiskCompression float64

	// SerializeFlush forces flushes to wait for the running engine
	// compaction, disabling the paper's §VI-A overlap optimization
	// (ablation only; meaningful for BackendFCAE).
	SerializeFlush bool

	// Placement locates the engine for BackendFCAE: the paper's
	// PCIe-attached card (default), or embedded in the SSD controller —
	// the §VII-E near-storage direction (see nearstorage.go).
	Placement Placement

	// TieredRuns, when > 0, models tiered (lazy) compaction: each level
	// accumulates up to TieredRuns sorted runs before a full-level merge
	// pushes one run down (§VII-C). Tiered merges have run-count fan-in,
	// so engines with small N fall back to software more often.
	TieredRuns int

	// OverlapCPUFlush gives the CPU backend's flushes their own core
	// instead of LevelDB's single background thread (ablation only:
	// quantifies how much of the FCAE schedule benefit comes from
	// overlapping flushes with long software merges).
	OverlapCPUFlush bool
}

func (c Config) withDefaults() Config {
	if c.KeyLen <= 0 {
		c.KeyLen = 16
	}
	if c.ValueLen <= 0 {
		c.ValueLen = 128
	}
	if c.DataBytes <= 0 {
		c.DataBytes = 1 << 30
	}
	if c.MemTableBytes <= 0 {
		c.MemTableBytes = 4 << 20
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 4096
	}
	if c.LevelRatio <= 0 {
		c.LevelRatio = 10
	}
	if c.BaseLevelBytes <= 0 {
		c.BaseLevelBytes = 10 << 20
	}
	if c.FileBytes <= 0 {
		c.FileBytes = 2 << 20
	}
	if c.L0Trigger <= 0 {
		c.L0Trigger = 4
	}
	if c.L0Slowdown <= 0 {
		c.L0Slowdown = 8
	}
	if c.L0Stop <= 0 {
		c.L0Stop = 12
	}
	if c.Engine.N == 0 {
		c.Engine = core.MultiInputConfig()
	}
	if c.DiskCompression <= 0 {
		c.DiskCompression = 0.5
	}
	return c
}

// entryBytes is the on-disk footprint of one entry: key + trailer + value
// plus block format overheads (varint lengths, restarts, trailers).
func (c Config) entryBytes() int64 {
	overhead := 6 // varints + restart amortization
	perBlock := c.BlockSize / (c.KeyLen + 8 + c.ValueLen + overhead)
	if perBlock < 1 {
		perBlock = 1
	}
	blockOverhead := (5 + 8) / perBlock // trailer + index entry share
	return int64(c.KeyLen + 8 + c.ValueLen + overhead + blockOverhead)
}

// diskEntryBytes is the post-compression on-disk footprint of one entry.
func (c Config) diskEntryBytes() int64 {
	n := int64(float64(c.entryBytes()) * c.DiskCompression)
	if n < int64(c.KeyLen+16) {
		n = int64(c.KeyLen + 16)
	}
	return n
}

// Result reports one simulated run.
type Result struct {
	Cfg        Config
	Elapsed    time.Duration
	Ops        int64
	Throughput float64 // payload MB/s, the paper's write-throughput metric

	Flushes       int64
	Compactions   int64
	HWCompactions int64
	SWFallbacks   int64

	BytesFlushed   int64
	CompactionIn   int64
	CompactionOut  int64
	WriteAmp       float64
	KernelTime     time.Duration
	PCIeTime       time.Duration
	PCIeBytes      int64
	DiskTime       time.Duration
	StallTime      time.Duration
	SlowdownWrites int64
	StopStalls     int64
	MaxLevel       int
}

// state is one live simulation.
type state struct {
	cfg       Config
	sim       *sim.Sim
	entry     int64
	diskEntry int64

	remaining int64 // client operations still to run
	total     int64

	// Mixed-workload shaping (YCSB): writeFrac of operations are writes;
	// extraPerOp is the expected read-side cost per operation.
	writeFrac  float64
	extraPerOp time.Duration

	mem        int64
	immBytes   int64 // immutable memtable being flushed (0 = none)
	l0         []int64
	levels     [8]int64
	runs       [8]int // sorted runs per level (tiered mode)
	maxLevel   int
	writerBusy bool
	writerWait bool // blocked on flush/compaction completion

	// hostBusyUntil is when the shared host core's background work (flush,
	// software-fallback compaction) finishes, for the FCAE backend where
	// the writer shares that core.
	hostBusyUntil time.Duration

	// bgBusy marks the LevelDB background thread (flush+compaction
	// serialized on the second core).
	bgBusy  bool
	bgQueue []bgTask

	compacting bool

	// pendingFlush holds a deferred flush when SerializeFlush is set.
	pendingFlush func()

	res Result
}

type bgTask struct {
	dur  time.Duration
	done func()
}

const writerChunk = 2048 // entries simulated per writer event

// readDisturbFactor is the extra read cost while a compaction is running
// (device contention and cache churn).
const readDisturbFactor = 0.35

// overlapFactor scales the size-proportional next-level overlap of a
// compaction: the compact pointer rotates through the key space, so the
// average merge sees less than the full proportional share. Calibrated
// against Table VI's LevelDB column together with the live CPU cost model.
const overlapFactor = 0.6

// RunFill simulates a db_bench-style random-load: a single client writing
// DataBytes of key-value payload as fast as the store admits, returning
// end-to-end statistics. This is the workload behind Table VI and Figs
// 10, 14 and 15.
func RunFill(cfg Config) Result {
	cfg = cfg.withDefaults()
	s := &state{cfg: cfg, sim: &sim.Sim{}, entry: cfg.entryBytes(), diskEntry: cfg.diskEntryBytes(), writeFrac: 1}
	s.total = cfg.DataBytes / int64(cfg.KeyLen+cfg.ValueLen)
	if s.total < 1 {
		s.total = 1
	}
	s.remaining = s.total
	s.res.Cfg = cfg
	s.res.Ops = s.total

	s.writerStep()
	s.sim.Run()

	s.res.Elapsed = s.sim.Now()
	if s.res.Elapsed > 0 {
		s.res.Throughput = float64(cfg.DataBytes) / s.res.Elapsed.Seconds() / 1e6
	}
	if s.res.BytesFlushed > 0 {
		s.res.WriteAmp = float64(s.res.BytesFlushed+s.res.CompactionOut) / float64(s.res.BytesFlushed)
	}
	s.res.MaxLevel = s.maxLevel
	return s.res
}

// writerStep runs the foreground client state machine.
func (s *state) writerStep() {
	if s.writerBusy || s.remaining <= 0 {
		return
	}
	// Stall rules (paper §I / LevelDB's MakeRoomForWrite).
	memFull := s.mem >= s.cfg.MemTableBytes
	switch {
	case len(s.l0) >= s.cfg.L0Stop, memFull && s.immBytes > 0:
		// Hard stop: wait for background progress.
		if !s.writerWait {
			s.writerWait = true
			s.res.StopStalls++
		}
		return
	case memFull:
		// Rotate memtables and schedule the flush.
		s.immBytes = s.mem
		s.mem = 0
		s.scheduleFlush()
		// fall through to keep writing into the fresh memtable
	}

	n := s.remaining
	if n > writerChunk {
		n = writerChunk
	}
	if s.writeFrac > 0 {
		until := (s.cfg.MemTableBytes - s.mem + s.entry - 1) / s.entry
		until = int64(float64(until) / s.writeFrac)
		if until < 1 {
			until = 1
		}
		if n > until {
			n = until
		}
	}

	writes := int64(float64(n) * s.writeFrac)
	dur := time.Duration(writes)*model.WriteTime(s.cfg.KeyLen+s.cfg.ValueLen) +
		time.Duration(n)*s.extraPerOp
	// Reads are disturbed while a compaction churns the device and the
	// caches; the slower software merges disturb for longer.
	if s.extraPerOp > 0 && s.compacting {
		dur += time.Duration(float64(n) * float64(s.extraPerOp) * readDisturbFactor)
	}
	// With one shared host core (FCAE), the writer runs at half speed
	// while background CPU work overlaps (processor sharing): only the
	// overlapping window is charged twice.
	if s.cfg.Backend == BackendFCAE && s.hostBusyUntil > s.sim.Now() {
		window := s.hostBusyUntil - s.sim.Now()
		if dur <= window {
			// Entirely inside the busy window: half speed throughout.
			dur *= 2
		} else {
			// Half speed during the window costs half the window extra.
			dur += window / 2
		}
	}
	// Slowdown trigger: LevelDB sleeps 1ms per write while L0 backs up.
	if len(s.l0) >= s.cfg.L0Slowdown {
		dur += time.Duration(n) * time.Millisecond
		s.res.StallTime += time.Duration(n) * time.Millisecond
		s.res.SlowdownWrites += n
	}

	s.writerBusy = true
	s.sim.After(dur, func() {
		s.writerBusy = false
		s.mem += writes * s.entry
		s.remaining -= n
		s.writerStep()
	})
}

// wakeWriter resumes a stalled client after background progress.
func (s *state) wakeWriter() {
	if s.writerWait {
		s.writerWait = false
		s.writerStep()
	}
}

// flushDuration models dumping one memtable to an L0 table: CPU encode
// plus the sequential device write.
func (s *state) flushDuration(memBytes int64) (cpu, disk time.Duration) {
	entries := memBytes / s.entry
	cpu = time.Duration(entries) * model.FlushPerEntry(s.cfg.KeyLen+8, s.cfg.ValueLen)
	disk = model.DiskWriteTime(entries * s.diskEntry)
	s.res.DiskTime += disk
	return cpu, disk
}

// scheduleFlush queues the immutable memtable flush on the appropriate
// core: the LevelDB background thread, or the shared host core for FCAE
// (where it overlaps with engine compactions, paper §VI-A).
func (s *state) scheduleFlush() {
	memBytes := s.immBytes
	diskBytes := memBytes / s.entry * s.diskEntry
	cpu, disk := s.flushDuration(memBytes)
	finish := func() {
		s.l0 = append(s.l0, diskBytes)
		s.immBytes = 0
		s.res.Flushes++
		s.res.BytesFlushed += diskBytes
		s.wakeWriter()
		s.maybeCompact()
	}
	if s.cfg.Backend == BackendCPU {
		if s.cfg.OverlapCPUFlush {
			// Ablation: flush on its own core, overlapping the merge.
			s.sim.After(cpu+disk, finish)
			return
		}
		s.enqueueBG(bgTask{dur: cpu + disk, done: finish})
		return
	}
	// Shared host core: the flush's CPU part runs at half speed against
	// the writer; the disk part overlaps freely.
	start := func() {
		dur := 2*cpu + disk
		s.noteHostBusy(dur)
		s.sim.After(dur, finish)
	}
	if s.cfg.SerializeFlush && s.compacting {
		// Ablation: the paper's "default schedule" pauses the flush while
		// a merge compaction runs (§VI-A).
		s.pendingFlush = start
		return
	}
	start()
}

// noteHostBusy extends the shared core's busy window.
func (s *state) noteHostBusy(d time.Duration) {
	if until := s.sim.Now() + d; until > s.hostBusyUntil {
		s.hostBusyUntil = until
	}
}

// enqueueBG serializes flush and compaction on LevelDB's single background
// thread; flushes are appended like compactions but the queue is short.
func (s *state) enqueueBG(t bgTask) {
	s.bgQueue = append(s.bgQueue, t)
	s.pumpBG()
}

func (s *state) pumpBG() {
	if s.bgBusy || len(s.bgQueue) == 0 {
		return
	}
	t := s.bgQueue[0]
	s.bgQueue = s.bgQueue[1:]
	s.bgBusy = true
	s.sim.After(t.dur, func() {
		s.bgBusy = false
		t.done()
		s.pumpBG()
	})
}

// compactionJob describes one picked merge.
type compactionJob struct {
	level    int
	inBytes  int64
	outBytes int64
	runs     int
	apply    func()
}

// pick selects the most urgent compaction, mirroring the real store's
// score rule.
func (s *state) pick() *compactionJob {
	if s.cfg.TieredRuns > 0 {
		return s.pickTiered()
	}
	bestLevel, bestScore := -1, 0.0
	if sc := float64(len(s.l0)) / float64(s.cfg.L0Trigger); sc >= 1 && sc > bestScore {
		bestLevel, bestScore = 0, sc
	}
	for level := 1; level < 7; level++ {
		max := s.maxBytes(level)
		if sc := float64(s.levels[level]) / float64(max); sc >= 1 && sc > bestScore {
			bestLevel, bestScore = level, sc
		}
	}
	switch {
	case bestLevel < 0:
		return nil
	case bestLevel == 0:
		var l0Bytes int64
		for _, f := range s.l0 {
			l0Bytes += f
		}
		// Random keys: every L0 file spans the key space, so the merge
		// rewrites all of L1 (paper §VII-C: "eight SSTables on Level 0 and
		// Level 1 are involved ... in most cases").
		overlap := s.levels[1]
		runs := len(s.l0)
		if overlap > 0 {
			runs++
		}
		in := l0Bytes + overlap
		return &compactionJob{level: 0, inBytes: in, outBytes: in, runs: runs, apply: func() {
			s.l0 = s.l0[:0]
			s.levels[1] += l0Bytes
			if s.maxLevel < 1 {
				s.maxLevel = 1
			}
		}}
	default:
		level := bestLevel
		file := s.cfg.FileBytes
		if file > s.levels[level] {
			file = s.levels[level]
		}
		// Expected overlap of one file with the next level: the file spans
		// file/levels[level] of the key space, so it overlaps that share
		// of the next level's bytes (≈ half the worst-case ratio+1 files
		// once both levels are at their steady-state ratio, since the
		// compact pointer rotates through the key space).
		overlap := s.levels[level+1]
		if s.levels[level] > file {
			overlap = int64(float64(s.levels[level+1]) * float64(file) / float64(s.levels[level]) * overlapFactor)
			overlap += s.cfg.FileBytes / 2 // boundary effect
		}
		if overlap > s.levels[level+1] {
			overlap = s.levels[level+1]
		}
		in := file + overlap
		return &compactionJob{level: level, inBytes: in, outBytes: in, runs: 2, apply: func() {
			s.levels[level] -= file
			s.levels[level+1] += file
			if s.maxLevel < level+1 {
				s.maxLevel = level + 1
			}
		}}
	}
}

// pickTiered models full-level lazy merges: a level's runs combine into
// one run at the next level once the run count reaches the threshold.
// Each merge reads and writes only the level's own bytes — the
// write-amplification saving of tiering.
func (s *state) pickTiered() *compactionJob {
	bestLevel, bestScore := -1, 0.0
	if sc := float64(len(s.l0)) / float64(s.cfg.L0Trigger); sc >= 1 {
		bestLevel, bestScore = 0, sc
	}
	for level := 1; level < 7; level++ {
		if sc := float64(s.runs[level]) / float64(s.cfg.TieredRuns); sc >= 1 && sc > bestScore {
			bestLevel, bestScore = level, sc
		}
	}
	if bestLevel < 0 {
		return nil
	}
	if bestLevel == 0 {
		var l0Bytes int64
		for _, f := range s.l0 {
			l0Bytes += f
		}
		nRuns := len(s.l0)
		return &compactionJob{level: 0, inBytes: l0Bytes, outBytes: l0Bytes, runs: nRuns, apply: func() {
			s.l0 = s.l0[:0]
			s.levels[1] += l0Bytes
			s.runs[1]++
			if s.maxLevel < 1 {
				s.maxLevel = 1
			}
		}}
	}
	level := bestLevel
	bytes := s.levels[level]
	nRuns := s.runs[level]
	out := level + 1
	if out > 6 {
		out = 6 // deepest level rewrites in place
	}
	return &compactionJob{level: level, inBytes: bytes, outBytes: bytes, runs: nRuns, apply: func() {
		s.levels[level] -= bytes
		s.runs[level] -= nRuns
		s.levels[out] += bytes
		s.runs[out]++
		if s.maxLevel < out {
			s.maxLevel = out
		}
	}}
}

func (s *state) maxBytes(level int) int64 {
	b := s.cfg.BaseLevelBytes
	for l := 1; l < level; l++ {
		b *= int64(s.cfg.LevelRatio)
	}
	return b
}

// maybeCompact starts the next compaction when one is due and none is
// running (the store runs one merge at a time).
func (s *state) maybeCompact() {
	if s.compacting {
		return
	}
	job := s.pick()
	if job == nil {
		return
	}
	s.compacting = true
	s.res.Compactions++
	s.res.CompactionIn += job.inBytes
	s.res.CompactionOut += job.outBytes

	pairs := job.inBytes / s.diskEntry

	finish := func() {
		s.compacting = false
		job.apply()
		if s.pendingFlush != nil {
			start := s.pendingFlush
			s.pendingFlush = nil
			start()
		}
		s.wakeWriter()
		s.maybeCompact()
	}

	useHW := s.cfg.Backend == BackendFCAE && job.runs <= s.cfg.Engine.N
	if useHW {
		// Offloaded merge: data staging + kernel; the host core stays
		// free for flushes (paper §VI-A).
		kernel := time.Duration(float64(pairs) * s.cfg.Engine.BottleneckPeriod(s.cfg.KeyLen+8, s.cfg.ValueLen) / s.cfg.Engine.ClockHz * float64(time.Second))
		total, transfer := s.compactionDeviceTime(job.inBytes, job.outBytes, kernel)
		s.res.HWCompactions++
		s.res.KernelTime += kernel
		s.res.PCIeTime += transfer
		s.res.PCIeBytes += job.inBytes + job.outBytes
		s.sim.After(total, finish)
		return
	}
	// Software merge on the CPU.
	disk := model.DiskReadTime(job.inBytes) + model.DiskWriteTime(job.outBytes)
	s.res.DiskTime += disk
	cpu := time.Duration(pairs) * model.CPULivePairTime(s.cfg.KeyLen+8, s.cfg.ValueLen, job.runs)
	dur := cpu + disk
	if s.cfg.Backend == BackendCPU {
		s.enqueueBG(bgTask{dur: dur, done: func() {
			s.compacting = false
			job.apply()
			s.wakeWriter()
			s.maybeCompact()
		}})
		// s.compacting stays true until the task runs; finish duplicated
		// to keep the queue semantics explicit.
		return
	}
	// FCAE fallback: runs on the shared host core at half speed.
	s.res.SWFallbacks++
	dur = 2*cpu + disk
	s.noteHostBusy(dur)
	s.sim.After(dur, finish)
}
