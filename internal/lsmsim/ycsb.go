package lsmsim

import (
	"time"

	"fcae/internal/model"
	"fcae/internal/sim"
)

// YCSB workload mixes (paper Table IX). Fractions sum to 1.
type YCSBWorkload struct {
	Name   string
	Read   float64
	Update float64 // update = write of an existing key
	Insert float64
	Scan   float64
	RMW    float64 // read-modify-write
	// Distribution drives the block-cache hit probability of reads.
	Distribution string // "zipfian", "latest", "uniform"
}

// The six workloads of Table IX plus the load phase.
var (
	WorkloadLoad = YCSBWorkload{Name: "Load", Insert: 1.0, Distribution: "zipfian"}
	WorkloadA    = YCSBWorkload{Name: "A", Read: 0.5, Update: 0.5, Distribution: "zipfian"}
	WorkloadB    = YCSBWorkload{Name: "B", Read: 0.95, Update: 0.05, Distribution: "zipfian"}
	WorkloadC    = YCSBWorkload{Name: "C", Read: 1.0, Distribution: "zipfian"}
	WorkloadD    = YCSBWorkload{Name: "D", Read: 0.95, Insert: 0.05, Distribution: "latest"}
	WorkloadE    = YCSBWorkload{Name: "E", Scan: 0.95, Insert: 0.05, Distribution: "zipfian"}
	WorkloadF    = YCSBWorkload{Name: "F", Read: 0.5, RMW: 0.5, Distribution: "zipfian"}
)

// YCSBWorkloads lists the paper's evaluation order.
var YCSBWorkloads = []YCSBWorkload{WorkloadLoad, WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF}

// cacheHitProb maps request distributions to block-cache hit rates; the
// skewed distributions keep their working set resident.
func cacheHitProb(dist string) float64 {
	switch dist {
	case "latest":
		return 0.95
	case "zipfian":
		return 0.80
	default:
		return 0.30
	}
}

// YCSBResult reports one simulated workload run.
type YCSBResult struct {
	Workload   YCSBWorkload
	Backend    Backend
	Ops        int64
	Elapsed    time.Duration
	KOpsPerSec float64
	WriteFrac  float64
}

const scanLength = 50 // YCSB default scan length

// readCost models one point read against the current tree shape.
func (s *state) readCost(hitProb float64) time.Duration {
	levels := 1 // memtable
	for l := 1; l < 7; l++ {
		if s.levels[l] > 0 {
			levels++
		}
	}
	probe := time.Duration(levels+len(s.l0)) * model.ReadPerLevelProbe
	// Expected block fetch cost.
	miss := (1 - hitProb) * float64(model.ReadDiskSeek)
	hit := hitProb * float64(model.ReadMemHit)
	return probe + time.Duration(miss+hit)
}

// RunYCSB simulates one YCSB workload of opCount operations against a
// store pre-loaded with loadBytes of data (paper §VII-D: 20 M records of
// 16 B keys and 1 KiB values, then 20 M operations).
func RunYCSB(cfg Config, w YCSBWorkload, loadBytes int64, opCount int64) YCSBResult {
	cfg = cfg.withDefaults()
	s := &state{cfg: cfg, sim: &sim.Sim{}, entry: cfg.entryBytes(), diskEntry: cfg.diskEntryBytes(), writeFrac: 1}
	s.preload(loadBytes)

	writeFrac := w.Update + w.Insert + w.RMW
	hitProb := cacheHitProb(w.Distribution)

	// Per-op expected cost of the read-side work (reads, scans, and the
	// read half of RMW); writes go through the usual write path.
	read := s.readCost(hitProb)
	scan := s.readCost(hitProb) + scanLength*time.Microsecond

	s.total = opCount
	s.remaining = opCount
	s.res.Cfg = cfg

	// The client thread interleaves reads and writes; model the read-side
	// time as a per-op surcharge on the writer loop.
	s.extraPerOp = time.Duration(w.Read*float64(read) + w.Scan*float64(scan) + w.RMW*float64(read))
	s.writeFrac = writeFrac

	s.writerStep()
	s.sim.Run()

	res := YCSBResult{
		Workload:  w,
		Backend:   cfg.Backend,
		Ops:       opCount,
		Elapsed:   s.sim.Now(),
		WriteFrac: writeFrac,
	}
	if res.Elapsed > 0 {
		res.KOpsPerSec = float64(opCount) / res.Elapsed.Seconds() / 1e3
	}
	return res
}

// preload fills the tree shape with loadBytes of existing data, bottom
// level first, so reads probe a realistic number of levels.
func (s *state) preload(loadBytes int64) {
	disk := int64(float64(loadBytes) * s.cfg.DiskCompression)
	for level := 1; level <= 6 && disk > 0; level++ {
		take := disk
		if cap := s.maxBytes(level); take > cap && level < 6 {
			take = cap
		}
		s.levels[level] += take
		disk -= take
		if s.maxLevel < level {
			s.maxLevel = level
		}
	}
}
