package lsmsim

import (
	"testing"

	"fcae/internal/core"
)

func fill(t *testing.T, cfg Config) Result {
	t.Helper()
	r := RunFill(cfg)
	if r.Elapsed <= 0 || r.Throughput <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	return r
}

func TestFCAEBeatsLevelDBOnRandomFill(t *testing.T) {
	base := Config{ValueLen: 512, DataBytes: 256 << 20}
	cpu := fill(t, base)
	fcaeCfg := base
	fcaeCfg.Backend = BackendFCAE
	fcae := fill(t, fcaeCfg)
	ratio := fcae.Throughput / cpu.Throughput
	if ratio < 1.5 {
		t.Fatalf("FCAE speedup %.2f, expected well above 1 (paper: 2.25-6.4x)", ratio)
	}
	if fcae.HWCompactions == 0 {
		t.Fatal("no compactions offloaded to the engine")
	}
}

func TestSpeedupGrowsWithValueLength(t *testing.T) {
	ratio := func(lv int) float64 {
		base := Config{ValueLen: lv, DataBytes: 256 << 20}
		cpu := fill(t, base)
		f := base
		f.Backend = BackendFCAE
		return fill(t, f).Throughput / cpu.Throughput
	}
	small, large := ratio(64), ratio(2048)
	if large <= small {
		t.Fatalf("speedup at 2048B (%.2f) should exceed 64B (%.2f), per Table VI", large, small)
	}
}

func TestLevelDBDegradesWithDataSize(t *testing.T) {
	small := fill(t, Config{ValueLen: 512, DataBytes: 128 << 20})
	large := fill(t, Config{ValueLen: 512, DataBytes: 2 << 30})
	if large.Throughput >= small.Throughput {
		t.Fatalf("LevelDB should slow with size (Fig 10): %.1f -> %.1f", small.Throughput, large.Throughput)
	}
}

func TestFCAEDegradesMoreGentlyThanLevelDB(t *testing.T) {
	run := func(b Backend, bytes int64) float64 {
		return fill(t, Config{ValueLen: 512, DataBytes: bytes, Backend: b}).Throughput
	}
	cpuDrop := run(BackendCPU, 128<<20) / run(BackendCPU, 2<<30)
	fcaeDrop := run(BackendFCAE, 128<<20) / run(BackendFCAE, 2<<30)
	if fcaeDrop >= cpuDrop {
		t.Fatalf("FCAE degradation %.2fx should be gentler than LevelDB's %.2fx (Fig 10)", fcaeDrop, cpuDrop)
	}
}

func TestTwoInputEngineFallsBackOnL0(t *testing.T) {
	cfg := Config{ValueLen: 512, DataBytes: 256 << 20, Backend: BackendFCAE, Engine: core.DefaultConfig()}
	r := fill(t, cfg)
	if r.SWFallbacks == 0 {
		t.Fatal("N=2 engine must fall back to software for L0 merges (paper §VII-B)")
	}
	nine := Config{ValueLen: 512, DataBytes: 256 << 20, Backend: BackendFCAE}
	r9 := fill(t, nine)
	if r9.SWFallbacks >= r.SWFallbacks {
		t.Fatalf("9-input engine should take more jobs in hardware: %d vs %d fallbacks", r9.SWFallbacks, r.SWFallbacks)
	}
}

func TestWriteAmplificationReasonable(t *testing.T) {
	r := fill(t, Config{ValueLen: 512, DataBytes: 1 << 30})
	if r.WriteAmp < 2 || r.WriteAmp > 40 {
		t.Fatalf("write amplification %.1f out of plausible range", r.WriteAmp)
	}
	if r.MaxLevel < 2 {
		t.Fatalf("1 GB should reach at least L2, got L%d", r.MaxLevel)
	}
}

func TestStallsAppearUnderCompactionPressure(t *testing.T) {
	r := fill(t, Config{ValueLen: 512, DataBytes: 2 << 30})
	if r.StallTime == 0 && r.StopStalls == 0 {
		t.Fatal("a 2 GB CPU-backend fill should hit write stalls (paper §I)")
	}
}

func TestBlockSizeInsensitive(t *testing.T) {
	// Paper Fig 15c: throughput is flat in data block size.
	small := fill(t, Config{ValueLen: 128, BlockSize: 2 << 10, DataBytes: 256 << 20, Backend: BackendFCAE})
	large := fill(t, Config{ValueLen: 128, BlockSize: 1 << 20, DataBytes: 256 << 20, Backend: BackendFCAE})
	ratio := small.Throughput / large.Throughput
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("block size changed throughput by %.2fx; paper says flat", ratio)
	}
}

func TestLevelingRatioReducesSpeedup(t *testing.T) {
	// Paper Fig 15d: larger leveling ratio -> less frequent compaction ->
	// smaller FCAE advantage.
	speedup := func(ratio int) float64 {
		base := Config{ValueLen: 128, LevelRatio: ratio, DataBytes: 512 << 20}
		cpu := fill(t, base)
		f := base
		f.Backend = BackendFCAE
		return fill(t, f).Throughput / cpu.Throughput
	}
	if s4, s16 := speedup(4), speedup(16); s16 >= s4 {
		t.Fatalf("speedup should fall with leveling ratio: ratio4=%.2f ratio16=%.2f", s4, s16)
	}
}

func TestFlushOverlapMattersForLongMerges(t *testing.T) {
	// The §VI-A schedule benefit (flushes overlapping compactions) is
	// large when merges are long, i.e. on the CPU backend: giving the
	// baseline's flushes their own core must speed it up clearly.
	base := Config{ValueLen: 512, DataBytes: 1 << 30}
	serialized := fill(t, base)
	over := base
	over.OverlapCPUFlush = true
	overlapped := fill(t, over)
	if overlapped.Throughput < serialized.Throughput*1.1 {
		t.Fatalf("overlapping flushes with long merges should help: %.1f vs %.1f",
			overlapped.Throughput, serialized.Throughput)
	}
}

func TestSerializeFlushNearNeutralForShortMerges(t *testing.T) {
	// With the engine's short merges, serializing flushes behind them
	// barely matters (and deferral batches L0 work); the two schedules
	// must stay within ~15% of each other.
	base := Config{ValueLen: 512, DataBytes: 512 << 20, Backend: BackendFCAE}
	over := fill(t, base)
	ser := base
	ser.SerializeFlush = true
	serialized := fill(t, ser)
	ratio := serialized.Throughput / over.Throughput
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("FCAE schedule variants diverged by %.2fx", ratio)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{ValueLen: 256, DataBytes: 128 << 20, Backend: BackendFCAE}
	a, b := RunFill(cfg), RunFill(cfg)
	if a.Elapsed != b.Elapsed || a.Compactions != b.Compactions {
		t.Fatalf("simulation not deterministic: %v/%d vs %v/%d", a.Elapsed, a.Compactions, b.Elapsed, b.Compactions)
	}
}

func TestYCSBReadOnlyUnchanged(t *testing.T) {
	// Paper Fig 16: workload C (read only) is identical across backends.
	cpu := RunYCSB(Config{ValueLen: 1024}, WorkloadC, 2<<30, 1_000_000)
	fcae := RunYCSB(Config{ValueLen: 1024, Backend: BackendFCAE}, WorkloadC, 2<<30, 1_000_000)
	ratio := fcae.KOpsPerSec / cpu.KOpsPerSec
	if ratio < 0.99 || ratio > 1.01 {
		t.Fatalf("read-only workload changed by %.3fx across backends", ratio)
	}
}

func TestYCSBSpeedupGrowsWithWriteRatio(t *testing.T) {
	ratio := func(w YCSBWorkload) float64 {
		cpu := RunYCSB(Config{ValueLen: 1024}, w, 2<<30, 1_000_000)
		f := RunYCSB(Config{ValueLen: 1024, Backend: BackendFCAE}, w, 2<<30, 1_000_000)
		return f.KOpsPerSec / cpu.KOpsPerSec
	}
	b, a, load := ratio(WorkloadB), ratio(WorkloadA), ratio(WorkloadLoad)
	if !(load >= a && a >= b && b >= 0.99) {
		t.Fatalf("speedups should grow with write ratio: B=%.2f A=%.2f Load=%.2f", b, a, load)
	}
}

func TestYCSBNoRegressionAnywhere(t *testing.T) {
	// Paper: "LevelDB-FCAE outperforms LevelDB in all workloads".
	for _, w := range YCSBWorkloads {
		cpu := RunYCSB(Config{ValueLen: 1024}, w, 1<<30, 500_000)
		f := RunYCSB(Config{ValueLen: 1024, Backend: BackendFCAE}, w, 1<<30, 500_000)
		if f.KOpsPerSec < cpu.KOpsPerSec*0.98 {
			t.Errorf("workload %s regressed: %.1f vs %.1f kops", w.Name, f.KOpsPerSec, cpu.KOpsPerSec)
		}
	}
}

func TestPCIeAccountingPresent(t *testing.T) {
	r := fill(t, Config{ValueLen: 512, DataBytes: 512 << 20, Backend: BackendFCAE})
	if r.PCIeTime <= 0 || r.PCIeBytes <= 0 || r.KernelTime <= 0 {
		t.Fatalf("device accounting missing: %+v", r)
	}
	if float64(r.PCIeTime) > 0.5*float64(r.Elapsed) {
		t.Fatalf("PCIe share %.0f%% implausibly high", float64(r.PCIeTime)/float64(r.Elapsed)*100)
	}
}

func TestNearStoragePlacementAtLeastAsFast(t *testing.T) {
	// §VII-E extension: embedding the engine in the SSD removes the host
	// disk round trip and the PCIe DMA, so throughput must not regress,
	// and the transfer accounting must shrink.
	base := Config{ValueLen: 512, DataBytes: 1 << 30, Backend: BackendFCAE}
	pcie := fill(t, base)
	ns := base
	ns.Placement = PlacementNearStorage
	near := fill(t, ns)
	if near.Throughput < pcie.Throughput*0.99 {
		t.Fatalf("near-storage placement regressed: %.2f vs %.2f", near.Throughput, pcie.Throughput)
	}
	if near.PCIeTime >= pcie.PCIeTime {
		t.Fatalf("near-storage transfer time %v should undercut PCIe %v", near.PCIeTime, pcie.PCIeTime)
	}
}

func TestNearStorageHelpsWhenCompactionBound(t *testing.T) {
	// At large data sizes the PCIe design's compaction pipeline begins to
	// saturate; the near-storage engine should sustain more.
	base := Config{ValueLen: 512, DataBytes: 64 << 30, Backend: BackendFCAE}
	pcie := fill(t, base)
	ns := base
	ns.Placement = PlacementNearStorage
	near := fill(t, ns)
	if near.Throughput < pcie.Throughput {
		t.Fatalf("near-storage should win once staging dominates: %.2f vs %.2f", near.Throughput, pcie.Throughput)
	}
}

func TestTieredSimReducesWriteAmp(t *testing.T) {
	leveled := fill(t, Config{ValueLen: 512, DataBytes: 1 << 30})
	tiered := fill(t, Config{ValueLen: 512, DataBytes: 1 << 30, TieredRuns: 4})
	if tiered.WriteAmp >= leveled.WriteAmp {
		t.Fatalf("tiered WA %.2f should undercut leveled %.2f", tiered.WriteAmp, leveled.WriteAmp)
	}
	if tiered.Throughput <= leveled.Throughput {
		t.Fatalf("tiered throughput %.2f should beat leveled %.2f on the CPU backend", tiered.Throughput, leveled.Throughput)
	}
}

func TestTieredSimNineInputCoversMoreJobs(t *testing.T) {
	// Tiered merges carry multi-run fan-in; the 9-input engine absorbs
	// them, the 2-input engine falls back (paper §VII-C).
	two := fill(t, Config{ValueLen: 512, DataBytes: 1 << 30, TieredRuns: 4,
		Backend: BackendFCAE, Engine: core.DefaultConfig()})
	nine := fill(t, Config{ValueLen: 512, DataBytes: 1 << 30, TieredRuns: 4,
		Backend: BackendFCAE})
	if two.SWFallbacks <= nine.SWFallbacks {
		t.Fatalf("2-input engine should fall back more: %d vs %d", two.SWFallbacks, nine.SWFallbacks)
	}
	if nine.HWCompactions == 0 {
		t.Fatal("9-input engine took no tiered merges")
	}
}

// BenchmarkSimFill measures how fast the virtual-clock simulation itself
// runs on this machine (simulated GB per wall second), which bounds how
// quickly the 1 TB experiments regenerate.
func BenchmarkSimFill(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunFill(Config{ValueLen: 512, DataBytes: 1 << 30, Backend: BackendFCAE})
	}
}
