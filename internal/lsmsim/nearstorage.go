package lsmsim

import (
	"time"

	"fcae/internal/model"
)

// Near-storage placement (paper §VII-E): "another recent trend is near
// storage computing ... the FPGA is placed in SSD as an embedded
// controller. In this architecture, FPGA can fully utilize the internal
// bandwidth of SSD, so that the redundant data transfer is minimized."
// The paper leaves this as future work; this file implements the model so
// the placement trade-off can be explored: the engine reads and writes
// table data over the device's internal channels (no PCIe DMA, no host
// staging), at the SSD's internal aggregate bandwidth.

// Placement selects where the engine sits relative to the data.
type Placement int

const (
	// PlacementPCIe is the paper's evaluated design: a PCIe-attached card
	// with its own DRAM; inputs and outputs cross the link.
	PlacementPCIe Placement = iota
	// PlacementNearStorage embeds the engine in the SSD controller:
	// table data moves over the device's internal channels only.
	PlacementNearStorage
)

func (p Placement) String() string {
	switch p {
	case PlacementPCIe:
		return "pcie"
	case PlacementNearStorage:
		return "near-storage"
	}
	return "unknown"
}

// SSD internal-channel model for the near-storage placement. Open-channel
// style devices expose several independent channels whose aggregate
// bandwidth exceeds the external interface (the FlashKV observation the
// paper cites).
const (
	// SSDInternalBandwidth is the aggregate internal channel bandwidth in
	// bytes/second.
	SSDInternalBandwidth = 3.2e9
	// SSDInternalLatency is the per-operation internal latency.
	SSDInternalLatency = 60 * time.Microsecond
)

// nearStorageMoveTime models moving n bytes across the device's internal
// channels.
func nearStorageMoveTime(n int64) time.Duration {
	return SSDInternalLatency + time.Duration(float64(n)/SSDInternalBandwidth*float64(time.Second))
}

// compactionDeviceTime returns the engine-side time of one offloaded job
// for the configured placement: data staging plus the kernel.
func (s *state) compactionDeviceTime(inBytes, outBytes int64, kernel time.Duration) (total, transfer time.Duration) {
	switch s.cfg.Placement {
	case PlacementNearStorage:
		// No disk round trip through the host, no PCIe: inputs stream
		// from flash into the embedded engine and outputs back.
		move := nearStorageMoveTime(inBytes) + nearStorageMoveTime(outBytes)
		return move + kernel, move
	default:
		// Host reads tables from the device, DMAs them to card DRAM,
		// fetches results and writes them back (paper §IV steps 3-8).
		disk := model.DiskReadTime(inBytes) + model.DiskWriteTime(outBytes)
		s.res.DiskTime += disk
		pcie := model.PCIeTransferTime(inBytes) + model.PCIeTransferTime(outBytes)
		return disk + pcie + kernel, pcie
	}
}
