// Package memtable implements the mutable in-memory write buffer. Entries
// are stored in a skiplist as a single encoded record
//
//	varint(len(ikey)) ikey varint(len(value)) value
//
// ordered by the internal-key comparator, exactly as in LevelDB, so that a
// flush ("the first type of compaction", paper §II-A) is a simple in-order
// scan into an SSTable builder.
package memtable

import (
	"encoding/binary"
	"errors"

	"fcae/internal/keys"
	"fcae/internal/skiplist"
)

// ErrNotFound is returned by Get when the key has no entry in this table.
var ErrNotFound = errors.New("memtable: not found")

// MemTable is a sorted in-memory buffer of recent writes. Add calls must be
// serialized by the caller; reads may run concurrently with one writer.
type MemTable struct {
	list *skiplist.List
}

// New returns an empty MemTable. seed fixes skiplist randomness.
func New(seed int64) *MemTable {
	return &MemTable{list: skiplist.New(compareEntries, seed)}
}

// compareEntries orders encoded entries by their internal key.
func compareEntries(a, b []byte) int {
	return keys.Compare(decodeKey(a), decodeKey(b))
}

func decodeKey(entry []byte) []byte {
	n, w := binary.Uvarint(entry)
	if w <= 0 || n > uint64(len(entry)-w) {
		return nil // corrupt self-encoded entry; compare as empty key
	}
	return entry[w : w+int(n)]
}

func decodeKV(entry []byte) (ikey, value []byte) {
	n, w := binary.Uvarint(entry)
	if w <= 0 || n > uint64(len(entry)-w) {
		return nil, nil
	}
	ikey = entry[w : w+int(n)]
	rest := entry[w+int(n):]
	vn, vw := binary.Uvarint(rest)
	if vw <= 0 || vn > uint64(len(rest)-vw) {
		return ikey, nil
	}
	return ikey, rest[vw : vw+int(vn)]
}

func encodeEntry(ikey, value []byte) []byte {
	buf := make([]byte, 0, len(ikey)+len(value)+2*binary.MaxVarintLen32)
	var tmp [binary.MaxVarintLen32]byte
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(ikey)))]...)
	buf = append(buf, ikey...)
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(value)))]...)
	return append(buf, value...)
}

// Add inserts a (user key, value) pair at the given sequence number. kind
// distinguishes sets from deletion tombstones.
func (m *MemTable) Add(seq uint64, kind keys.Kind, user, value []byte) {
	ikey := keys.MakeInternal(nil, user, seq, kind)
	m.list.Insert(encodeEntry(ikey, value))
}

// Get looks up the newest entry for user visible at snapshot seq. found
// reports whether any entry exists; deleted reports a tombstone.
func (m *MemTable) Get(user []byte, seq uint64) (value []byte, deleted, found bool) {
	lookup := keys.MakeInternal(nil, user, seq, keys.KindSet)
	it := m.list.NewIterator()
	it.SeekGE(encodeEntry(lookup, nil))
	if !it.Valid() {
		return nil, false, false
	}
	ikey, val := decodeKV(it.Key())
	if keys.CompareUser(keys.UserKey(ikey), user) != 0 {
		return nil, false, false
	}
	_, kind := keys.DecodeTrailer(ikey)
	if kind == keys.KindDelete {
		return nil, true, true
	}
	return val, false, true
}

// Len returns the number of entries.
func (m *MemTable) Len() int { return m.list.Len() }

// ApproximateSize returns the bytes consumed by stored entries, used to
// decide when the table is full and must become immutable (paper §II-A).
func (m *MemTable) ApproximateSize() int64 { return m.list.Bytes() }

// Empty reports whether the table has no entries.
func (m *MemTable) Empty() bool { return m.list.Len() == 0 }

// Iterator yields entries in internal-key order.
type Iterator struct {
	it *skiplist.Iterator
}

// NewIterator returns an unpositioned iterator over the table.
func (m *MemTable) NewIterator() *Iterator {
	return &Iterator{it: m.list.NewIterator()}
}

// Valid reports whether the iterator is positioned.
func (it *Iterator) Valid() bool { return it.it.Valid() }

// Key returns the current internal key.
func (it *Iterator) Key() []byte { k, _ := decodeKV(it.it.Key()); return k }

// Value returns the current value.
func (it *Iterator) Value() []byte { _, v := decodeKV(it.it.Key()); return v }

// Next advances the iterator.
func (it *Iterator) Next() { it.it.Next() }

// Prev steps the iterator backwards.
func (it *Iterator) Prev() { it.it.Prev() }

// SeekGE positions at the first entry with internal key >= ikey.
func (it *Iterator) SeekGE(ikey []byte) { it.it.SeekGE(encodeEntry(ikey, nil)) }

// SeekToFirst positions at the smallest entry.
func (it *Iterator) SeekToFirst() { it.it.SeekToFirst() }

// SeekToLast positions at the largest entry.
func (it *Iterator) SeekToLast() { it.it.SeekToLast() }

// Error always returns nil: memtable iteration cannot fail.
func (it *Iterator) Error() error { return nil }
