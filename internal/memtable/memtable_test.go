package memtable

import (
	"bytes"
	"fmt"
	"testing"

	"fcae/internal/keys"
)

func TestGetLatestWins(t *testing.T) {
	t.Parallel()
	m := New(1)
	m.Add(1, keys.KindSet, []byte("k"), []byte("v1"))
	m.Add(2, keys.KindSet, []byte("k"), []byte("v2"))
	v, del, found := m.Get([]byte("k"), keys.MaxSeq)
	if !found || del || string(v) != "v2" {
		t.Fatalf("Get = %q del=%v found=%v", v, del, found)
	}
}

func TestGetSnapshotIsolation(t *testing.T) {
	t.Parallel()
	m := New(1)
	m.Add(1, keys.KindSet, []byte("k"), []byte("v1"))
	m.Add(5, keys.KindSet, []byte("k"), []byte("v5"))
	v, _, found := m.Get([]byte("k"), 3)
	if !found || string(v) != "v1" {
		t.Fatalf("Get@3 = %q found=%v, want v1", v, found)
	}
	_, _, found = m.Get([]byte("zzz"), keys.MaxSeq)
	if found {
		t.Fatal("absent key reported found")
	}
}

func TestGetTombstone(t *testing.T) {
	t.Parallel()
	m := New(1)
	m.Add(1, keys.KindSet, []byte("k"), []byte("v"))
	m.Add(2, keys.KindDelete, []byte("k"), nil)
	_, del, found := m.Get([]byte("k"), keys.MaxSeq)
	if !found || !del {
		t.Fatalf("deleted key: del=%v found=%v", del, found)
	}
	v, del, found := m.Get([]byte("k"), 1)
	if !found || del || string(v) != "v" {
		t.Fatal("older snapshot should still see the value")
	}
}

func TestIteratorOrder(t *testing.T) {
	t.Parallel()
	m := New(1)
	for i := 99; i >= 0; i-- {
		m.Add(uint64(100-i), keys.KindSet, []byte(fmt.Sprintf("key%03d", i)), []byte{byte(i)})
	}
	it := m.NewIterator()
	n := 0
	var prev []byte
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if prev != nil && keys.Compare(prev, it.Key()) >= 0 {
			t.Fatal("iterator out of order")
		}
		prev = append(prev[:0], it.Key()...)
		n++
	}
	if n != 100 {
		t.Fatalf("iterated %d entries, want 100", n)
	}
}

func TestIteratorSeekGE(t *testing.T) {
	t.Parallel()
	m := New(1)
	m.Add(10, keys.KindSet, []byte("b"), []byte("vb"))
	m.Add(11, keys.KindSet, []byte("d"), []byte("vd"))
	it := m.NewIterator()
	it.SeekGE(keys.MakeInternal(nil, []byte("c"), keys.MaxSeq, keys.KindSet))
	if !it.Valid() || !bytes.Equal(keys.UserKey(it.Key()), []byte("d")) {
		t.Fatalf("SeekGE(c) landed on %q", it.Key())
	}
	if string(it.Value()) != "vd" {
		t.Fatalf("Value = %q", it.Value())
	}
}

func TestApproximateSizeGrows(t *testing.T) {
	t.Parallel()
	m := New(1)
	before := m.ApproximateSize()
	m.Add(1, keys.KindSet, []byte("key"), make([]byte, 1000))
	if m.ApproximateSize() < before+1000 {
		t.Fatalf("size %d did not grow by value length", m.ApproximateSize())
	}
	if m.Empty() || m.Len() != 1 {
		t.Fatal("table should have one entry")
	}
}

func TestLargeValues(t *testing.T) {
	t.Parallel()
	m := New(1)
	val := bytes.Repeat([]byte{0xab}, 1<<16)
	m.Add(1, keys.KindSet, []byte("big"), val)
	got, _, found := m.Get([]byte("big"), keys.MaxSeq)
	if !found || !bytes.Equal(got, val) {
		t.Fatal("large value round trip failed")
	}
}
